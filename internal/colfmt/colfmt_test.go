package colfmt

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/synthetic"
)

func testNetwork(t testing.TB, scale float64, seed int64) *dataset.Network {
	t.Helper()
	cfg, err := synthetic.Preset("A", seed)
	if err != nil {
		t.Fatalf("preset: %v", err)
	}
	cfg, err = cfg.Scaled(scale)
	if err != nil {
		t.Fatalf("scale: %v", err)
	}
	net, _, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return net
}

func encode(t testing.TB, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	net := testNetwork(t, 0.05, 17)
	d, err := FromNetwork(net)
	if err != nil {
		t.Fatalf("FromNetwork: %v", err)
	}
	raw := encode(t, d)
	got, err := Read(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Region != d.Region || got.ObservedFrom != d.ObservedFrom || got.ObservedTo != d.ObservedTo {
		t.Fatalf("meta mismatch: got %q [%d,%d], want %q [%d,%d]",
			got.Region, got.ObservedFrom, got.ObservedTo, d.Region, d.ObservedFrom, d.ObservedTo)
	}
	if !reflect.DeepEqual(got.Pipes, d.Pipes) {
		t.Fatal("pipe columns changed across round trip")
	}
	if !reflect.DeepEqual(got.Events, d.Events) {
		t.Fatal("event columns changed across round trip")
	}

	// The materialized network must match the original exactly.
	back, err := got.Network()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if !reflect.DeepEqual(back.Pipes(), net.Pipes()) {
		t.Fatal("materialized pipes differ from the original network")
	}
	if !reflect.DeepEqual(back.Failures(), net.Failures()) {
		t.Fatal("materialized failures differ from the original network")
	}
}

func TestWriteFileReadFile(t *testing.T) {
	net := testNetwork(t, 0.03, 5)
	d, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), DatasetFile)
	if err := WriteFile(path, d); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got.Pipes, d.Pipes) || !reflect.DeepEqual(got.Events, d.Events) {
		t.Fatal("file round trip changed the columns")
	}
}

func TestOpenSniffing(t *testing.T) {
	net := testNetwork(t, 0.03, 9)
	d, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}

	csvDir := t.TempDir()
	if err := dataset.SaveDir(net, csvDir); err != nil {
		t.Fatal(err)
	}
	colDir := t.TempDir()
	if err := WriteFile(filepath.Join(colDir, DatasetFile), d); err != nil {
		t.Fatal(err)
	}
	bothDir := t.TempDir()
	if err := dataset.SaveDir(net, bothDir); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join(bothDir, DatasetFile), d); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		path, format string
	}{
		{csvDir, FormatCSV},
		{colDir, FormatColumnar},
		{bothDir, FormatColumnar},
		{filepath.Join(colDir, DatasetFile), FormatColumnar},
	}
	for _, c := range cases {
		data, err := Open(c.path)
		if err != nil {
			t.Fatalf("Open(%s): %v", c.path, err)
		}
		if data.Format != c.format {
			t.Fatalf("Open(%s): format %q, want %q", c.path, data.Format, c.format)
		}
		if data.NumPipes() != net.NumPipes() || data.NumFailures() != len(net.Failures()) {
			t.Fatalf("Open(%s): %d pipes / %d failures, want %d / %d",
				c.path, data.NumPipes(), data.NumFailures(), net.NumPipes(), len(net.Failures()))
		}
		if data.Region() != net.Region {
			t.Fatalf("Open(%s): region %q, want %q", c.path, data.Region(), net.Region)
		}
		if id := data.PipeID(3); id != net.Pipes()[3].ID {
			t.Fatalf("Open(%s): PipeID(3) = %q, want %q", c.path, id, net.Pipes()[3].ID)
		}
	}

	if _, err := Open(filepath.Join(csvDir, "no-such-path")); err == nil {
		t.Fatal("Open of a missing path succeeded")
	}
}

// TestColumnarBuilderBitIdentical is the differential harness for the
// acceptance criterion: feeding feature.Builder from the columnar source
// must produce bit-for-bit the same design matrices as feeding it from the
// materialized network.
func TestColumnarBuilderBitIdentical(t *testing.T) {
	net := testNetwork(t, 0.08, 23)
	split, err := dataset.PaperSplit(net)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	raw := encode(t, d)
	col, err := Read(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}

	for _, std := range []bool{false, true} {
		opts := feature.Options{Groups: feature.AllGroups(), Standardize: std}
		nb, err := feature.NewBuilder(net, opts)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := feature.NewBuilderFromSource(col, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(nb.Names(), cb.Names()) {
			t.Fatalf("standardize=%v: feature names differ:\n net: %v\n col: %v", std, nb.Names(), cb.Names())
		}
		for _, phase := range []string{"train", "test"} {
			var ns, cs *feature.Set
			if phase == "train" {
				ns, err = nb.TrainSet(split)
				if err != nil {
					t.Fatal(err)
				}
				cs, err = cb.TrainSet(split)
			} else {
				ns, err = nb.TestSet(split)
				if err != nil {
					t.Fatal(err)
				}
				cs, err = cb.TestSet(split)
			}
			if err != nil {
				t.Fatal(err)
			}
			nf, nstride := ns.Flat()
			cf, cstride := cs.Flat()
			if nstride != cstride || len(nf) != len(cf) {
				t.Fatalf("standardize=%v %s: shape %dx%d vs %dx%d",
					std, phase, len(nf), nstride, len(cf), cstride)
			}
			for i := range nf {
				if nf[i] != cf[i] {
					t.Fatalf("standardize=%v %s: flat backing differs at %d: %v vs %v",
						std, phase, i, nf[i], cf[i])
				}
			}
			if !reflect.DeepEqual(ns.Label, cs.Label) ||
				!reflect.DeepEqual(ns.Age, cs.Age) ||
				!reflect.DeepEqual(ns.LengthM, cs.LengthM) ||
				!reflect.DeepEqual(ns.PipeIdx, cs.PipeIdx) ||
				!reflect.DeepEqual(ns.Year, cs.Year) {
				t.Fatalf("standardize=%v %s: set metadata differs", std, phase)
			}
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	net := testNetwork(t, 0.02, 41)
	d, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	raw := encode(t, d)

	decode := func(b []byte) error {
		_, err := Read(bytes.NewReader(b), int64(len(b)))
		return err
	}

	t.Run("valid", func(t *testing.T) {
		if err := decode(raw); err != nil {
			t.Fatalf("pristine file rejected: %v", err)
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[0] = 'X'
		if err := decode(b); err == nil {
			t.Fatal("accepted wrong magic")
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[4] = 99
		if err := decode(b); err == nil {
			t.Fatal("accepted future version")
		}
	})
	t.Run("nonzero flags", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[6] = 1
		if err := decode(b); err == nil {
			t.Fatal("accepted unknown flags")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, 8, 20, len(raw) / 3, len(raw) - 1} {
			if err := decode(raw[:n]); err == nil {
				t.Fatalf("accepted file truncated to %d bytes", n)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		b := append(append([]byte(nil), raw...), 0)
		if err := decode(b); err == nil {
			t.Fatal("accepted trailing data")
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		// Flip one byte inside the pipe-ID blob (well past the headers);
		// the section CRC must catch it.
		b := append([]byte(nil), raw...)
		b[100] ^= 0x40
		if err := decode(b); err == nil {
			t.Fatal("accepted corrupted payload")
		}
	})
}

func TestReadRejectsBadContent(t *testing.T) {
	net := testNetwork(t, 0.02, 43)

	t.Run("duplicate IDs", func(t *testing.T) {
		d, err := FromNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		d.Pipes.ID[1] = d.Pipes.ID[0]
		raw := encode(t, d)
		if _, err := Read(bytes.NewReader(raw), int64(len(raw))); err == nil {
			t.Fatal("accepted duplicate pipe IDs")
		}
	})
	t.Run("event ref out of range", func(t *testing.T) {
		d, err := FromNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumEvents() == 0 {
			t.Skip("no events at this scale")
		}
		d.Events.Pipe[0] = uint32(d.NumPipes())
		raw := encode(t, d)
		if _, err := Read(bytes.NewReader(raw), int64(len(raw))); err == nil {
			t.Fatal("accepted event referencing a row outside the registry")
		}
	})
	t.Run("non-finite float", func(t *testing.T) {
		d, err := FromNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		d.Pipes.DiameterMM[0] = nan()
		raw := encode(t, d)
		if _, err := Read(bytes.NewReader(raw), int64(len(raw))); err == nil {
			t.Fatal("accepted NaN diameter")
		}
	})
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestSourceAgainstNetwork(t *testing.T) {
	net := testNetwork(t, 0.05, 29)
	d, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	ns := feature.NetworkSource(net)
	if d.NumPipes() != ns.NumPipes() {
		t.Fatalf("NumPipes %d vs %d", d.NumPipes(), ns.NumPipes())
	}
	var cp, np dataset.Pipe
	for i := 0; i < d.NumPipes(); i++ {
		d.PipeAt(i, &cp)
		ns.PipeAt(i, &np)
		if cp != np {
			t.Fatalf("pipe %d differs: %+v vs %+v", i, cp, np)
		}
		for y := net.ObservedFrom - 1; y <= net.ObservedTo+1; y++ {
			if got, want := d.FailedInYearAt(i, y), ns.FailedInYearAt(i, y); got != want {
				t.Fatalf("pipe %d FailedInYearAt(%d): %v vs %v", i, y, got, want)
			}
		}
		if got, want := d.FailureCountAt(i, net.ObservedFrom, net.ObservedTo),
			ns.FailureCountAt(i, net.ObservedFrom, net.ObservedTo); got != want {
			t.Fatalf("pipe %d FailureCountAt: %d vs %d", i, got, want)
		}
		if got, want := d.FailureCountAt(i, net.ObservedTo, net.ObservedFrom), 0; got != want {
			t.Fatalf("pipe %d empty-window FailureCountAt: %d", i, got)
		}
	}
}

// TestCSVColumnarCSVRoundTrip is the cross-format property: rendering a
// network as CSV, converting it to columnar and back, and rendering CSV
// again must reproduce the original CSV bytes exactly, across presets and
// seeds. This is what lets pipeconv round-trip utility exports losslessly.
func TestCSVColumnarCSVRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		preset string
		seed   int64
		scale  float64
	}{
		{"A", 1, 0.04},
		{"B", 2, 0.04},
		{"C", 3, 0.03},
		{"metro", 4, 0.002},
	} {
		cfg, err := synthetic.Preset(tc.preset, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err = cfg.Scaled(tc.scale)
		if err != nil {
			t.Fatal(err)
		}
		net, _, err := synthetic.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}

		var pipes1, fails1 bytes.Buffer
		if err := dataset.WritePipes(&pipes1, net.Pipes()); err != nil {
			t.Fatal(err)
		}
		if err := dataset.WriteFailures(&fails1, net.Failures()); err != nil {
			t.Fatal(err)
		}

		// CSV -> columnar -> encoded -> decoded -> network -> CSV.
		d, err := FromNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		raw := encode(t, d)
		got, err := Read(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatal(err)
		}
		back, err := got.Network()
		if err != nil {
			t.Fatal(err)
		}
		var pipes2, fails2 bytes.Buffer
		if err := dataset.WritePipes(&pipes2, back.Pipes()); err != nil {
			t.Fatal(err)
		}
		if err := dataset.WriteFailures(&fails2, back.Failures()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pipes1.Bytes(), pipes2.Bytes()) {
			t.Fatalf("%s seed %d: pipes.csv changed across CSV->columnar->CSV", tc.preset, tc.seed)
		}
		if !bytes.Equal(fails1.Bytes(), fails2.Bytes()) {
			t.Fatalf("%s seed %d: failures.csv changed across CSV->columnar->CSV", tc.preset, tc.seed)
		}
	}
}
