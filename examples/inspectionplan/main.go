// Inspection planning: the paper's motivating industrial use-case. A water
// utility can physically inspect only ~1 % of its network per year; this
// example builds next year's inspection plan under a length budget using
// the full stack — ranking model, isotonic score calibration, and the
// knapsack-density planner — then compares the data-mining plan against
// the oldest-first policy the industry used historically and prices the
// difference.
//
//	go run ./examples/inspectionplan
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/plan"
)

func main() {
	log.SetFlags(0)

	net, err := pipefail.GenerateRegion("B", 11, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	p, err := pipefail.NewPipeline(net, pipefail.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	cost := plan.CostModel{
		InspectionPerKM: 8000,   // condition assessment, $/km
		FailureCost:     150000, // emergency repair + damage, $/event
		PreventionRate:  0.8,    // inspections are imperfect
	}
	budget := plan.Budget{MaxLengthM: 0.01 * net.TotalLengthM()} // 1 % of length

	fmt.Printf("planning year %d inspections for region %s (%d pipes, %.0f km, budget %.1f km)\n\n",
		p.Split().TestYear, net.Region, net.NumPipes(),
		net.TotalLengthM()/1000, budget.MaxLengthM/1000)

	for _, model := range []string{"DirectAUC-ES", "Heuristic-Age"} {
		ranking, err := p.TrainAndRank(model)
		if err != nil {
			log.Fatal(err)
		}

		// Calibrate scores into probabilities so the planner can price
		// candidates. (Fitted on the held-out year here for brevity; a
		// deployment would calibrate on a validation year.)
		var cal core.IsotonicCalibrator
		if err := cal.FitCal(ranking.Scores, ranking.Failed); err != nil {
			log.Fatal(err)
		}
		cands := make([]plan.Candidate, ranking.Len())
		failed := make(map[string]bool, ranking.Len())
		for i, id := range ranking.PipeIDs {
			cands[i] = plan.Candidate{
				ID:       id,
				FailProb: cal.Prob(ranking.Scores[i]),
				LengthM:  ranking.LengthM[i],
			}
			failed[id] = ranking.Failed[i]
		}

		pl, err := plan.Greedy(cands, cost, budget)
		if err != nil {
			log.Fatal(err)
		}
		out := plan.Evaluate(pl, cost, failed)

		fmt.Printf("policy %-14s: inspect %d pipes (%.1f km, $%.0f)\n",
			model, out.Inspected, pl.TotalLengthM/1000, pl.InspectionCost)
		fmt.Printf("  expected: %.1f failures prevented, net $%.0f\n",
			pl.ExpectedPrevented, pl.ExpectedNet)
		fmt.Printf("  realized: catches %d of %d next-year failures (%.1f%%), net $%.0f\n\n",
			out.Caught, out.TotalFailures, 100*out.DetectionRate, out.RealizedNet)
	}
}
