package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// SavedModel is the on-disk representation of a fitted linear ranker,
// versioned so future formats can coexist.
type SavedModel struct {
	// Format is the schema version (currently 1).
	Format int `json:"format"`
	// Kind is the model name (DirectAUC-ES or RankSVM).
	Kind string `json:"kind"`
	// FeatureNames documents the column order the weights apply to.
	FeatureNames []string `json:"feature_names"`
	// Weights is the linear scoring vector.
	Weights []float64 `json:"weights"`
	// TrainAUC records the training AUC at save time (0 when unknown).
	TrainAUC float64 `json:"train_auc,omitempty"`
}

// Persistable reports whether SaveLinear can serialize m — i.e. whether
// the model is one of the linear rankers with an on-disk format.
func Persistable(m Model) bool {
	switch m.(type) {
	case *DirectAUC, *RankSVM:
		return true
	}
	return false
}

// SaveLinear serializes a fitted linear model (DirectAUC or RankSVM) as
// JSON. featureNames must match the training builder's column order.
func SaveLinear(w io.Writer, m Model, featureNames []string) error {
	var sm SavedModel
	sm.Format = 1
	sm.FeatureNames = featureNames
	switch v := m.(type) {
	case *DirectAUC:
		if v.W == nil {
			return fmt.Errorf("core: save of unfitted %s", v.Name())
		}
		sm.Kind = v.Name()
		sm.Weights = v.W
		sm.TrainAUC = v.TrainAUC
	case *RankSVM:
		if v.W == nil {
			return fmt.Errorf("core: save of unfitted %s", v.Name())
		}
		sm.Kind = v.Name()
		sm.Weights = v.W
	default:
		return fmt.Errorf("core: model %s is not a persistable linear ranker", m.Name())
	}
	if len(sm.FeatureNames) != len(sm.Weights) {
		return fmt.Errorf("core: %d feature names for %d weights", len(sm.FeatureNames), len(sm.Weights))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sm); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return nil
}

// LoadLinear deserializes a model saved by SaveLinear. The returned model
// is ready to score feature sets whose columns match FeatureNames.
func LoadLinear(r io.Reader) (Model, *SavedModel, error) {
	var sm SavedModel
	if err := json.NewDecoder(r).Decode(&sm); err != nil {
		return nil, nil, fmt.Errorf("core: decode model: %w", err)
	}
	if sm.Format != 1 {
		return nil, nil, fmt.Errorf("core: unsupported model format %d", sm.Format)
	}
	if len(sm.Weights) == 0 {
		return nil, nil, fmt.Errorf("core: model has no weights")
	}
	if len(sm.FeatureNames) != len(sm.Weights) {
		return nil, nil, fmt.Errorf("core: %d feature names for %d weights", len(sm.FeatureNames), len(sm.Weights))
	}
	switch sm.Kind {
	case "DirectAUC-ES":
		m := NewDirectAUC(DirectAUCConfig{})
		m.W = sm.Weights
		m.TrainAUC = sm.TrainAUC
		return m, &sm, nil
	case "RankSVM":
		m := NewRankSVM(RankSVMConfig{})
		m.W = sm.Weights
		return m, &sm, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown model kind %q", sm.Kind)
	}
}
