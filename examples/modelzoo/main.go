// Model zoo: train every registered model on the same region, compare
// ranking quality, and demonstrate score calibration — mapping the raw
// ranking scores of the paper's method to usable failure probabilities
// with Platt scaling and isotonic regression.
//
//	go run ./examples/modelzoo
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/core"
	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)

	net, err := pipefail.GenerateRegion("C", 21, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	p, err := pipefail.NewPipeline(net, pipefail.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name      string
		auc, det1 float64
	}
	var rows []row
	var directScores []float64
	var directLabels []bool
	for _, name := range pipefail.Models() {
		ranking, err := p.TrainAndRank(name)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name, ranking.AUC(), ranking.DetectionAt(0.01)})
		if name == "DirectAUC-ES" {
			directScores = ranking.Scores
			directLabels = ranking.Failed
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].auc > rows[j].auc })

	tb := eval.NewTable("model zoo on region C (sorted by AUC)", "model", "AUC", "det@1%")
	for _, r := range rows {
		tb.AddRow(r.name, eval.FormatPercent(r.auc), eval.FormatPercent(r.det1))
	}
	fmt.Print(tb.String())

	// Calibration: ranking scores are relative; when a renewal cost-benefit
	// model needs absolute probabilities, fit a calibrator on historical
	// outcomes. (Here we fit on the test year for demonstration; in
	// production, calibrate on a validation year.)
	var platt core.PlattCalibrator
	if err := platt.FitCal(directScores, directLabels); err != nil {
		log.Fatal(err)
	}
	var iso core.IsotonicCalibrator
	if err := iso.FitCal(directScores, directLabels); err != nil {
		log.Fatal(err)
	}
	lo, hi := directScores[0], directScores[0]
	for _, s := range directScores {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	fmt.Println("\ncalibrated failure probabilities for DirectAUC-ES scores:")
	fmt.Println("score     platt     isotonic")
	for i := 0; i <= 4; i++ {
		s := lo + float64(i)*(hi-lo)/4
		fmt.Printf("%8.3f  %8.4f  %8.4f\n", s, platt.Prob(s), iso.Prob(s))
	}
}
