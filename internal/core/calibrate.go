package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Calibrator maps raw ranking scores to failure probabilities. Ranking
// models only order pipes; when a renewal-cost model needs probabilities,
// a calibrator fitted on held-out (score, label) pairs provides them.
type Calibrator interface {
	// Name identifies the calibration method.
	Name() string
	// FitCal fits the mapping on scores with binary outcomes.
	FitCal(scores []float64, labels []bool) error
	// Prob maps a raw score to a probability in [0, 1].
	Prob(score float64) float64
	// ProbAll maps every score through the same function as Prob in one
	// batch, writing into dst when it has the capacity (a fresh slice is
	// allocated otherwise) and returning the filled slice. Callers that
	// price a whole ranking (the serve snapshot builder) pay one call
	// instead of one virtual dispatch per pipe, and each element is
	// guaranteed bit-identical to Prob of the same score.
	ProbAll(scores []float64, dst []float64) []float64
}

// fillProbs sizes dst for len(scores) results, reusing its backing array
// when possible — the shared plumbing behind both ProbAll implementations.
func fillProbs(scores, dst []float64) []float64 {
	if cap(dst) < len(scores) {
		return make([]float64, len(scores))
	}
	return dst[:len(scores)]
}

// PlattCalibrator fits P(y=1|s) = sigmoid(a·s + b) by Newton iterations on
// the log-likelihood (logistic regression in one dimension).
type PlattCalibrator struct {
	A, B   float64
	fitted bool
}

// Name implements Calibrator.
func (p *PlattCalibrator) Name() string { return "platt" }

// FitCal implements Calibrator.
func (p *PlattCalibrator) FitCal(scores []float64, labels []bool) error {
	if len(scores) != len(labels) {
		return fmt.Errorf("core: platt length mismatch %d vs %d", len(scores), len(labels))
	}
	if len(scores) < 2 {
		return fmt.Errorf("core: platt needs at least 2 points")
	}
	// Standardize scores internally for stable Newton steps.
	mean := stats.Mean(scores)
	sd := stats.StdDev(scores)
	if sd == 0 {
		return fmt.Errorf("core: platt with constant scores")
	}
	zs := make([]float64, len(scores))
	for i, s := range scores {
		zs[i] = (s - mean) / sd
	}
	a, b := 1.0, 0.0
	for iter := 0; iter < 50; iter++ {
		var ga, gb, haa, hab, hbb float64
		for i, z := range zs {
			mu := stats.Logistic(a*z + b)
			y := 0.0
			if labels[i] {
				y = 1
			}
			d := y - mu
			wgt := mu * (1 - mu)
			ga += d * z
			gb += d
			haa += wgt * z * z
			hab += wgt * z
			hbb += wgt
		}
		// Solve 2x2 system (H + ridge) step = grad.
		haa += 1e-9
		hbb += 1e-9
		det := haa*hbb - hab*hab
		if det <= 1e-18 {
			break
		}
		da := (ga*hbb - gb*hab) / det
		db := (gb*haa - ga*hab) / det
		a += da
		b += db
		if math.Abs(da)+math.Abs(db) < 1e-10 {
			break
		}
	}
	// Fold the standardization back into the parameters.
	p.A = a / sd
	p.B = b - a*mean/sd
	p.fitted = true
	return nil
}

// Prob implements Calibrator. It returns 0.5 before fitting.
func (p *PlattCalibrator) Prob(score float64) float64 {
	if !p.fitted {
		return 0.5
	}
	return stats.Logistic(p.A*score + p.B)
}

// ProbAll implements Calibrator.
func (p *PlattCalibrator) ProbAll(scores []float64, dst []float64) []float64 {
	dst = fillProbs(scores, dst)
	for i, s := range scores {
		dst[i] = p.Prob(s)
	}
	return dst
}

// IsotonicCalibrator fits a monotone non-decreasing step function by the
// pool-adjacent-violators algorithm (PAV) — the nonparametric calibration
// that preserves the model's ranking exactly.
type IsotonicCalibrator struct {
	// thresholds and values define the step function: Prob(s) is the value
	// of the last block whose threshold is <= s.
	thresholds []float64
	values     []float64
}

// Name implements Calibrator.
func (c *IsotonicCalibrator) Name() string { return "isotonic" }

// FitCal implements Calibrator.
func (c *IsotonicCalibrator) FitCal(scores []float64, labels []bool) error {
	if len(scores) != len(labels) {
		return fmt.Errorf("core: isotonic length mismatch %d vs %d", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return fmt.Errorf("core: isotonic with no data")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// PAV over blocks (value = mean label, weight = count).
	type block struct {
		value  float64
		weight float64
		minS   float64
	}
	blocks := make([]block, 0, len(scores))
	for _, i := range idx {
		y := 0.0
		if labels[i] {
			y = 1
		}
		blocks = append(blocks, block{value: y, weight: 1, minS: scores[i]})
		for len(blocks) > 1 && blocks[len(blocks)-2].value >= blocks[len(blocks)-1].value {
			b2 := blocks[len(blocks)-1]
			b1 := blocks[len(blocks)-2]
			merged := block{
				value:  (b1.value*b1.weight + b2.value*b2.weight) / (b1.weight + b2.weight),
				weight: b1.weight + b2.weight,
				minS:   b1.minS,
			}
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, merged)
		}
	}
	c.thresholds = c.thresholds[:0]
	c.values = c.values[:0]
	for _, b := range blocks {
		c.thresholds = append(c.thresholds, b.minS)
		c.values = append(c.values, b.value)
	}
	return nil
}

// Prob implements Calibrator. Scores below the first block get the first
// block's value; it returns 0.5 before fitting.
func (c *IsotonicCalibrator) Prob(score float64) float64 {
	if len(c.thresholds) == 0 {
		return 0.5
	}
	// Binary search for the last threshold <= score.
	lo, hi := 0, len(c.thresholds)-1
	if score < c.thresholds[0] {
		return c.values[0]
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.thresholds[mid] <= score {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return c.values[lo]
}

// ProbAll implements Calibrator: one binary search per score into the
// fitted step function. The block list is typically tiny after PAV
// merging, so the per-element cost is a handful of comparisons; batching
// exists so callers can price an entire ranking once at train time and
// never touch the calibrator on the request path.
func (c *IsotonicCalibrator) ProbAll(scores []float64, dst []float64) []float64 {
	dst = fillProbs(scores, dst)
	for i, s := range scores {
		dst[i] = c.Prob(s)
	}
	return dst
}
