package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.975, 0.9999, 1 - 1e-10} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEqual(got, p, 1e-10) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestStudentTCDFAgainstKnown(t *testing.T) {
	// Reference values from R's pt().
	cases := []struct{ t, df, want float64 }{
		{0, 5, 0.5},
		{2.015048372669157, 5, 0.95},  // qt(0.95, 5)
		{-2.015048372669157, 5, 0.05}, // symmetry
		{1.812461122811676, 10, 0.95},
		{2.262157162740992, 9, 0.975},
	}
	for _, c := range cases {
		if got := StudentTCDF(c.t, c.df); !almostEqual(got, c.want, 1e-8) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestStudentTCDFLargeDFApproachesNormal(t *testing.T) {
	for _, x := range []float64{-2, -0.5, 0, 1, 2.5} {
		tv := StudentTCDF(x, 1e6)
		nv := NormalCDF(x)
		if !almostEqual(tv, nv, 1e-5) {
			t.Errorf("t-CDF(df=1e6) at %v = %v, normal = %v", x, tv, nv)
		}
	}
}

func TestStudentTCDFPanicsOnBadDF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for df=0")
		}
	}()
	StudentTCDF(1, 0)
}

func TestWeibullCDFExponentialSpecialCase(t *testing.T) {
	// shape=1 reduces to exponential with rate 1/scale.
	for _, tt := range []float64{0.1, 1, 3, 10} {
		got := WeibullCDF(tt, 1, 2)
		want := ExpCDF(tt, 0.5)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("WeibullCDF(%v,1,2) = %v, want %v", tt, got, want)
		}
	}
	if WeibullCDF(-1, 2, 1) != 0 {
		t.Fatal("negative time must give 0")
	}
}

func TestWeibullHazardMonotonicity(t *testing.T) {
	// shape > 1: increasing hazard (aging); shape < 1: decreasing.
	hUp1 := WeibullHazard(1, 2.5, 50)
	hUp2 := WeibullHazard(10, 2.5, 50)
	if hUp2 <= hUp1 {
		t.Fatalf("shape>1 hazard must increase: %v vs %v", hUp1, hUp2)
	}
	hDn1 := WeibullHazard(1, 0.5, 50)
	hDn2 := WeibullHazard(10, 0.5, 50)
	if hDn2 >= hDn1 {
		t.Fatalf("shape<1 hazard must decrease: %v vs %v", hDn1, hDn2)
	}
}

func TestLogisticBasics(t *testing.T) {
	if got := Logistic(0); got != 0.5 {
		t.Fatalf("Logistic(0) = %v", got)
	}
	if got := Logistic(1000); got != 1 {
		t.Fatalf("Logistic(1000) = %v, want 1", got)
	}
	if got := Logistic(-1000); got != 0 {
		t.Fatalf("Logistic(-1000) = %v, want 0", got)
	}
	// Symmetry: sigma(-x) = 1 - sigma(x).
	for _, x := range []float64{-3, -0.2, 0.7, 5} {
		if !almostEqual(Logistic(-x), 1-Logistic(x), 1e-15) {
			t.Errorf("symmetry violated at %v", x)
		}
	}
}

func TestLog1pExpExtremes(t *testing.T) {
	if got := Log1pExp(100); got != 100 {
		t.Fatalf("Log1pExp(100) = %v", got)
	}
	if got := Log1pExp(-100); !almostEqual(got, math.Exp(-100), 1e-50) {
		t.Fatalf("Log1pExp(-100) = %v", got)
	}
	if got := Log1pExp(0); !almostEqual(got, math.Ln2, 1e-15) {
		t.Fatalf("Log1pExp(0) = %v, want ln 2", got)
	}
}

// Property: NormalCDF is monotone non-decreasing.
func TestNormalCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		a, b = math.Mod(a, 50), math.Mod(b, 50)
		if a > b {
			a, b = b, a
		}
		return NormalCDF(a) <= NormalCDF(b)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: StudentTCDF(t) + StudentTCDF(-t) == 1 (symmetry).
func TestStudentSymmetryProperty(t *testing.T) {
	f := func(x float64, dfRaw uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 30)
		df := float64(dfRaw%60) + 1
		s := StudentTCDF(x, df) + StudentTCDF(-x, df)
		return almostEqual(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
