package serve

// parsePlanFast's contract is "strict subset of encoding/json": whenever
// the fast path accepts a body it must produce bit-identical fields to
// the stdlib fallback, and everything else — malformed input included —
// must be declined so decodePlanSlow can reproduce the stdlib's exact
// behavior and error text. These tests pin both halves, plus the
// zero-allocation property the cached plan path depends on.

import (
	"math"
	"testing"
)

func planFieldsEqual(a, b planFields) bool {
	return string(a.model) == string(b.model) &&
		math.Float64bits(a.budgetKM) == math.Float64bits(b.budgetKM) &&
		a.maxPipes == b.maxPipes &&
		math.Float64bits(a.inspPerKM) == math.Float64bits(b.inspPerKM) &&
		math.Float64bits(a.failCost) == math.Float64bits(b.failCost) &&
		math.Float64bits(a.maxSpend) == math.Float64bits(b.maxSpend) &&
		a.hasInsp == b.hasInsp && a.hasFail == b.hasFail && a.hasSpend == b.hasSpend
}

// planReqCorpus mixes well-formed, exotic and malformed bodies; the
// subset property must hold across all of them.
var planReqCorpus = []string{
	`{}`,
	`{"model":"Logistic","budget_km":5}`,
	`{"budget_km":5.0}`,
	`{"budget_km":5}`,
	`{"model":"Logistic","budget_km":2.5,"max_pipes":12,"inspection_per_km":9000,"failure_cost":120000,"max_spend":50000.25}`,
	`  {  "budget_km" :  3 ,
	     "max_pipes" : 4 }  `,
	`{"budget_km":1e3}`,
	`{"budget_km":1.25e-2}`,
	`{"budget_km":-2.5}`,
	`{"budget_km":-0}`,
	`{"budget_km":-0.0}`,
	`{"budget_km":0.1234567890123456789}`,          // >15 digits: slow float path
	`{"budget_km":1.7976931348623157e308}`,         // MaxFloat64
	`{"budget_km":5e-324}`,                         // smallest denormal
	`{"budget_km":1e-30}`,                          // exponent outside ±22
	`{"budget_km":123456789012345678901234567890}`, // huge integer literal
	`{"budget_km":1,"budget_km":2}`,                // duplicate key: last wins
	`{"unknown_number":12.5,"budget_km":3}`,
	`{"unknown_string":"x","budget_km":3}`,
	`{"model":""}`,
	`{"max_pipes":0}`,
	`{"max_pipes":-3}`,
	`{"max_spend":0}`,
	`{"budget_km":3} trailing garbage`, // json.Decoder reads one value
	// Fallback-only and malformed bodies: the fast path must decline all.
	`{"model":"a\"b"}`,
	`{"model":"café"}`,
	"{\"model\":\"caf\xc3\xa9\"}",
	`{"model":null}`,
	`{"draining":true,"budget_km":1}`,
	`{"nested":{"x":1},"budget_km":1}`,
	`{"list":[1,2],"budget_km":1}`,
	`{"max_pipes":1.5}`,
	`{"max_pipes":1e2}`,
	`{"max_pipes":9007199254740993}`,
	`{"budget_km":"5"}`,
	`{"model":5}`,
	`{"budget_km":01}`,
	`{"budget_km":.5}`,
	`{"budget_km":5.}`,
	`{"budget_km":5e}`,
	`{"budget_km":+5}`,
	`{bad`,
	`{"a":}`,
	`[1]`,
	`"str"`,
	`42`,
	``,
	`{"budget_km":3`,
	`{"budget_km" 3}`,
	`{"budget_km":3 "max_pipes":1}`,
}

// TestParsePlanFastSubsetOfStdlib is the core property: fast-path accept
// implies stdlib accept with bit-identical decoded fields.
func TestParsePlanFastSubsetOfStdlib(t *testing.T) {
	for _, body := range planReqCorpus {
		var fast planFields
		ok := parsePlanFast([]byte(body), &fast)
		var slow planFields
		err := decodePlanSlow([]byte(body), &slow)
		if !ok {
			continue // declined: the fallback owns the body either way
		}
		if err != nil {
			t.Errorf("body %q: fast path accepted what encoding/json rejects: %v", body, err)
			continue
		}
		if !planFieldsEqual(fast, slow) {
			t.Errorf("body %q: decoded fields diverge\nfast: %+v\nslow: %+v", body, fast, slow)
		}
	}
}

// TestParsePlanFastCoverage pins which shapes actually take the fast
// path — the zero-alloc guarantee is worthless if common requests
// silently fall back — and which must decline.
func TestParsePlanFastCoverage(t *testing.T) {
	mustFast := []string{
		`{}`,
		`{"model":"Logistic","budget_km":5}`,
		`{"budget_km":2.5,"max_pipes":12}`,
		`{"model":"Logistic","budget_km":4,"max_spend":15000,"inspection_per_km":9000,"failure_cost":120000}`,
		`{"budget_km":1e3}`,
	}
	for _, body := range mustFast {
		var pf planFields
		if !parsePlanFast([]byte(body), &pf) {
			t.Errorf("body %q fell back to encoding/json", body)
		}
	}
	mustDecline := []string{
		`{"model":"a\"b"}`,
		`{"model":null}`,
		`{"max_pipes":1.5}`,
		`{"budget_km":"5"}`,
		`{bad`,
		``,
	}
	for _, body := range mustDecline {
		var pf planFields
		if parsePlanFast([]byte(body), &pf) {
			t.Errorf("body %q accepted by the fast path", body)
		}
	}
}

func TestParsePlanFastValues(t *testing.T) {
	var pf planFields
	body := `{"model":"Logistic","budget_km":2.5,"max_pipes":12,"inspection_per_km":9000,"failure_cost":1.2e5,"max_spend":50000.25}`
	if !parsePlanFast([]byte(body), &pf) {
		t.Fatal("fast path declined a plain body")
	}
	if string(pf.model) != "Logistic" || pf.budgetKM != 2.5 || pf.maxPipes != 12 {
		t.Fatalf("decoded %+v", pf)
	}
	if !pf.hasInsp || pf.inspPerKM != 9000 || !pf.hasFail || pf.failCost != 120000 || !pf.hasSpend || pf.maxSpend != 50000.25 {
		t.Fatalf("decoded %+v", pf)
	}
}

// TestParsePlanFastZeroAlloc: the typical request body must decode with
// no heap allocations at all.
func TestParsePlanFastZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc gate runs without -race: race instrumentation inflates counts")
	}
	body := []byte(`{"model":"Heuristic-Age","budget_km":10,"max_pipes":25,"max_spend":40000}`)
	var pf planFields
	allocs := testing.AllocsPerRun(500, func() {
		pf = planFields{}
		if !parsePlanFast(body, &pf) {
			t.Fatal("fast path declined")
		}
	})
	if allocs != 0 {
		t.Fatalf("fast parse allocated %.1f times per run, want 0", allocs)
	}
}
