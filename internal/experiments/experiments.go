// Package experiments contains one runner per table and figure of the
// reproduced evaluation. Each runner generates (or receives) synthetic
// region data, trains the configured models, computes the paper-analogue
// metrics, and renders the same rows/series the paper reports.
//
// The experiment IDs (T1..T6, F1..F4) and their mapping to the paper are
// documented in DESIGN.md; EXPERIMENTS.md records expected-shape versus
// measured results.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/feature"
	"repro/internal/obs"
	"repro/internal/synthetic"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives data generation and every stochastic learner.
	Seed int64
	// Scale shrinks the region presets (1 = full paper scale). Benches and
	// tests run at small scales; the default is 1.
	Scale float64
	// Regions lists the region presets to run (default A, B, C).
	Regions []string
	// Models lists the model names to evaluate (default: the standard
	// suite in StandardModelNames order).
	Models []string
	// ESGenerations overrides the DirectAUC ES generation count when > 0
	// (benches use a reduced budget).
	ESGenerations int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Regions) == 0 {
		o.Regions = []string{"A", "B", "C"}
	}
	if len(o.Models) == 0 {
		o.Models = StandardModelNames()
	}
	return o
}

// StandardModelNames returns the standard comparison suite in table order:
// the paper's method first, then the learned baselines, the survival
// models, the aggregate age models, and the heuristics.
func StandardModelNames() []string {
	return []string{
		"DirectAUC-ES", "RankSVM", "RankBoost", "RankNet", "Ensemble",
		"Logistic", "RandomForest", "Cox", "Weibull",
		"TimeExp", "TimePower", "TimeLinear",
		"Heuristic-Age", "Heuristic-Length", "Random",
	}
}

// NewRegistry returns a registry with the full standard suite, all seeded
// deterministically from seed. esGenerations <= 0 keeps the default budget.
func NewRegistry(seed int64, esGenerations int) *core.Registry {
	r := core.NewRegistry()
	r.Register(func() core.Model {
		cfg := core.DefaultDirectAUCConfig(seed)
		if esGenerations > 0 {
			cfg.Generations = esGenerations
		}
		return core.NewDirectAUC(cfg)
	})
	r.Register(func() core.Model { return core.NewRankSVM(core.RankSVMConfig{Seed: seed + 1}) })
	r.Register(func() core.Model { return core.NewRankBoost(core.RankBoostConfig{}) })
	r.Register(func() core.Model { return core.NewRankNet(core.RankNetConfig{Seed: seed + 5}) })
	r.Register(func() core.Model {
		cfg := core.DefaultDirectAUCConfig(seed + 11)
		if esGenerations > 0 {
			cfg.Generations = esGenerations
		}
		return core.NewEnsemble(nil,
			core.NewDirectAUC(cfg),
			core.NewRankSVM(core.RankSVMConfig{Seed: seed + 12}),
			core.NewRankBoost(core.RankBoostConfig{}),
		)
	})
	r.Register(func() core.Model { return baseline.NewLogistic(baseline.LogisticConfig{}) })
	r.Register(func() core.Model { return baseline.NewRandomForest(baseline.ForestConfig{Seed: seed + 6}) })
	r.Register(func() core.Model { return baseline.NewCox(baseline.CoxConfig{}) })
	r.Register(func() core.Model { return baseline.NewWeibullNHPP(baseline.WeibullConfig{}) })
	r.Register(func() core.Model { return baseline.NewAgeRateModel(baseline.TimeExponential) })
	r.Register(func() core.Model { return baseline.NewAgeRateModel(baseline.TimePower) })
	r.Register(func() core.Model { return baseline.NewAgeRateModel(baseline.TimeLinear) })
	r.Register(func() core.Model { return baseline.NewHeuristic(baseline.ByAge, seed+2) })
	r.Register(func() core.Model { return baseline.NewHeuristic(baseline.ByLength, seed+3) })
	r.Register(func() core.Model { return baseline.NewHeuristic(baseline.Random, seed+4) })
	return r
}

// GenerateRegion builds the named region at the configured scale and seed.
func GenerateRegion(name string, opts Options) (*dataset.Network, *synthetic.Truth, error) {
	opts = opts.withDefaults()
	cfg, err := synthetic.Preset(name, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	cfg, err = cfg.Scaled(opts.Scale)
	if err != nil {
		return nil, nil, err
	}
	return synthetic.Generate(cfg)
}

// ModelEval is the full per-model evaluation on one split: every metric any
// table or figure needs, computed once.
type ModelEval struct {
	Model string
	// AUC is the full ROC AUC on the held-out year ("AUC 100%").
	AUC float64
	// Det1, Det5, Det10 are detection rates at 1/5/10 % of pipes inspected.
	Det1, Det5, Det10 float64
	// PAUC1 is the partial detection area up to 1 % inspected ("AUC 1%",
	// reported in basis points by the tables).
	PAUC1 float64
	// Curve is the detection curve (100 points).
	Curve []eval.CurvePoint
	// FitSeconds and ScoreSeconds are wall-clock training/scoring times.
	FitSeconds, ScoreSeconds float64
	// Scores are the raw test scores (kept for significance tests and the
	// risk map).
	Scores []float64
	// Labels are the test labels aligned with Scores.
	Labels []bool
}

// EvaluateSplit trains and evaluates the named models on one split.
// groups selects the feature groups (zero value = all).
func EvaluateSplit(net *dataset.Network, split dataset.Split, reg *core.Registry, names []string, groups feature.Groups) ([]ModelEval, error) {
	b, err := feature.NewBuilder(net, feature.Options{Groups: groups, Standardize: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	train, err := b.TrainSet(split)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	test, err := b.TestSet(split)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	out := make([]ModelEval, 0, len(names))
	for _, name := range names {
		me, err := evalOne(net, reg, name, train, test)
		if err != nil {
			return nil, err
		}
		out = append(out, me)
	}
	return out, nil
}

// evalOne trains one fresh model and computes its full ModelEval. Each
// evaluation is timed twice for observability: the whole train+score
// pass into `experiments.eval_seconds.<region>.<model>`, and the fit
// alone into the shared per-model `core.fit_seconds.<model>` histogram.
func evalOne(net *dataset.Network, reg *core.Registry, name string, train, test *feature.Set) (ModelEval, error) {
	m, err := reg.New(name)
	if err != nil {
		return ModelEval{}, err
	}
	defer obs.Span("experiments.eval_seconds." + net.Region + "." + name)()
	t0 := time.Now()
	if err := m.Fit(train); err != nil {
		return ModelEval{}, fmt.Errorf("experiments: fit %s on region %s: %w", name, net.Region, err)
	}
	fitDur := time.Since(t0)
	obs.Default().Histogram("core.fit_seconds."+name, nil).Observe(fitDur.Seconds())
	t1 := time.Now()
	scores, err := m.Scores(test)
	if err != nil {
		return ModelEval{}, fmt.Errorf("experiments: score %s: %w", name, err)
	}
	scoreDur := time.Since(t1)
	return ModelEval{
		Model:        name,
		AUC:          eval.AUC(scores, test.Label),
		Det1:         eval.DetectionAt(scores, test.Label, 0.01),
		Det5:         eval.DetectionAt(scores, test.Label, 0.05),
		Det10:        eval.DetectionAt(scores, test.Label, 0.10),
		PAUC1:        eval.PartialDetectionArea(scores, test.Label, 0.01),
		Curve:        eval.DetectionCurve(scores, test.Label, 100),
		FitSeconds:   fitDur.Seconds(),
		ScoreSeconds: scoreDur.Seconds(),
		Scores:       scores,
		Labels:       append([]bool(nil), test.Label...),
	}, nil
}

// RegionResult bundles a region's network with its model evaluations.
type RegionResult struct {
	Region string
	Net    *dataset.Network
	Evals  []ModelEval
}

// RunRegions generates each configured region, applies the paper split, and
// evaluates the configured models — the shared engine behind T2, T3 and F1.
func RunRegions(opts Options) ([]RegionResult, error) {
	opts = opts.withDefaults()
	var nets []*dataset.Network
	for _, name := range opts.Regions {
		net, _, err := GenerateRegion(name, opts)
		if err != nil {
			return nil, err
		}
		nets = append(nets, net)
	}
	return RunNetworks(opts, nets)
}

// RunNetworks is RunRegions over already-loaded networks (e.g. datasets
// read from disk by pipeeval -data): each network gets the paper split and
// the configured model suite. Only experiments that need nothing beyond
// the observed data (T2, T3, F1) can be driven this way — sweeps that
// regenerate or perturb a region need a synthetic.Config, not a Network.
func RunNetworks(opts Options, nets []*dataset.Network) ([]RegionResult, error) {
	opts = opts.withDefaults()
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	var out []RegionResult
	for _, net := range nets {
		split, err := dataset.PaperSplit(net)
		if err != nil {
			return nil, err
		}
		evals, err := EvaluateSplitParallel(net, split, reg, opts.Models, feature.Groups{})
		if err != nil {
			return nil, err
		}
		out = append(out, RegionResult{Region: net.Region, Net: net, Evals: evals})
	}
	return out, nil
}
