package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/feature"
)

func TestParallelMatchesSequential(t *testing.T) {
	opts := fastOpts()
	net, _, err := GenerateRegion("A", opts)
	if err != nil {
		t.Fatal(err)
	}
	split, err := dataset.PaperSplit(net)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	names := []string{"DirectAUC-ES", "Logistic", "Cox", "Heuristic-Age"}
	seq, err := EvaluateSplit(net, split, reg, names, feature.Groups{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := EvaluateSplitParallel(net, split, reg, names, feature.Groups{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Model != par[i].Model {
			t.Fatalf("order differs at %d: %s vs %s", i, seq[i].Model, par[i].Model)
		}
		if seq[i].AUC != par[i].AUC {
			t.Fatalf("%s AUC differs: %v vs %v", seq[i].Model, seq[i].AUC, par[i].AUC)
		}
		for j := range seq[i].Scores {
			if seq[i].Scores[j] != par[i].Scores[j] {
				t.Fatalf("%s scores differ at %d", seq[i].Model, j)
			}
		}
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	opts := fastOpts()
	net, _, err := GenerateRegion("A", opts)
	if err != nil {
		t.Fatal(err)
	}
	split, err := dataset.PaperSplit(net)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	if _, err := EvaluateSplitParallel(net, split, reg, []string{"Cox", "bogus"}, feature.Groups{}); err == nil {
		t.Fatal("unknown model must propagate")
	}
}

func TestT7Agreement(t *testing.T) {
	opts := fastOpts()
	opts.Models = []string{"DirectAUC-ES", "RankSVM", "Heuristic-Age"}
	res, err := T7Agreement(opts, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("regions = %d", len(res))
	}
	r := res[0]
	if len(r.Models) != 3 || len(r.Tau) != 3 {
		t.Fatalf("matrix shape %dx%d", len(r.Models), len(r.Tau))
	}
	for i := range r.Tau {
		if r.Tau[i][i] != 1 {
			t.Fatalf("diagonal tau = %v", r.Tau[i][i])
		}
		for j := range r.Tau {
			if r.Tau[i][j] != r.Tau[j][i] {
				t.Fatal("matrix not symmetric")
			}
			if r.Tau[i][j] < -1 || r.Tau[i][j] > 1 {
				t.Fatalf("tau out of range: %v", r.Tau[i][j])
			}
		}
	}
	// The two linear rankers should agree with each other more than either
	// agrees with the bare age heuristic.
	idx := map[string]int{}
	for i, m := range r.Models {
		idx[m] = i
	}
	linPair := r.Tau[idx["DirectAUC-ES"]][idx["RankSVM"]]
	agePair := r.Tau[idx["DirectAUC-ES"]][idx["Heuristic-Age"]]
	if linPair <= agePair {
		t.Fatalf("expected linear rankers to agree most: tau(lin,lin)=%v tau(lin,age)=%v", linPair, agePair)
	}
	tb := T7Table(r)
	if tb.NumRows() != 3 || !strings.Contains(tb.String(), "Kendall") {
		t.Fatalf("T7 table:\n%s", tb.String())
	}
}
