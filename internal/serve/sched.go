package serve

// Background rebuild scheduler: a single loop under the server
// lifecycle that periodically sweeps every shard, (re)training the
// default model where no snapshot exists yet and refreshing published
// snapshots older than the rebuild interval. Rebuilds run through the
// exact same per-shard singleflight, cancellation and atomic-publish
// machinery as request-triggered training, so:
//
//   - readers never block: the published copy-on-write map keeps
//     serving the old snapshot until the new one swaps in atomically
//     (with its ETag re-derived — deterministic training reproduces the
//     same validator, so client caches stay warm across rebuilds);
//   - a scheduled rebuild and a request-triggered train of the same
//     model collapse into one run (whoever gets the pending slot first
//     wins, the other joins or skips);
//   - BeginShutdown cancels the sweep and any in-flight rebuild via the
//     lifecycle context.

import (
	"context"
	"sort"
	"time"

	"repro/internal/parallel"
)

// StartRebuildScheduler launches the background rebuild loop: every
// interval it rebuilds each shard's unbuilt default model and any
// published snapshot older than interval, fanning work across at most
// workers concurrent rebuilds (workers <= 0 means GOMAXPROCS). An
// interval <= 0 disables the scheduler; starting twice is a no-op. The
// loop exits when BeginShutdown cancels the server lifecycle.
func (s *Server) StartRebuildScheduler(interval time.Duration, workers int) {
	if interval <= 0 {
		return
	}
	if !s.schedOn.CompareAndSwap(false, true) {
		return
	}
	s.schedInterval = interval
	s.schedPool = parallel.New(workers)
	s.log.Printf("serve: rebuild scheduler on: interval %s, %d workers", interval, s.schedPool.Workers())
	go s.schedulerLoop()
}

func (s *Server) schedulerLoop() {
	ticker := time.NewTicker(s.schedInterval)
	defer ticker.Stop()
	// One immediate pass so cold shards warm at boot instead of a full
	// interval later.
	s.schedulerPass(false)
	for {
		select {
		case <-s.lifecycle.Done():
			return
		case <-ticker.C:
			s.schedulerPass(false)
		}
	}
}

// rebuildTarget is one (shard, model) pair a pass decided to rebuild.
type rebuildTarget struct {
	sh   *shard
	name string
}

// schedulerPass sweeps every shard once and rebuilds what it finds
// stale (or everything published, when force is set — the benchmark
// hook). Targets are sorted (region, model) so a pass is deterministic
// regardless of map iteration order.
func (s *Server) schedulerPass(force bool) {
	s.metrics.schedPasses.Inc()
	now := time.Now()
	def := string(s.defaultModel)
	var targets []rebuildTarget
	for _, sh := range s.shards {
		models := *sh.models.Load()
		if _, ok := models[def]; !ok {
			targets = append(targets, rebuildTarget{sh, def})
		}
		// A snapshot is stale when it is old — or when live events have
		// been ingested past the seq it trained at, so the streaming
		// ingest path retrains on the next pass instead of a full age
		// interval later.
		seqNow := sh.eventSeqNow()
		for name, tm := range models {
			if force || now.Sub(tm.builtAt) >= s.schedInterval || tm.eventSeq < seqNow {
				targets = append(targets, rebuildTarget{sh, name})
			}
		}
	}
	if len(targets) == 0 {
		return
	}
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].sh.region != targets[j].sh.region {
			return targets[i].sh.region < targets[j].sh.region
		}
		return targets[i].name < targets[j].name
	})
	// Bounded fan-out; the lifecycle context stops handing out targets
	// once shutdown begins (in-flight rebuilds abort via their own
	// lifecycle-derived contexts).
	s.schedPool.ForEachDynamicCtx(s.lifecycle, len(targets), func(i int) {
		s.rebuild(targets[i].sh, targets[i].name)
	})
}

// rebuild retrains one model on one shard through the shard's
// singleflight: if a request (or an earlier target) is already training
// it, the rebuild is already happening and this one skips. The train
// runs synchronously inside the scheduler worker; request-path waiters
// that arrive meanwhile join the pending job as usual.
func (s *Server) rebuild(sh *shard, name string) {
	sh.mu.Lock()
	if _, inflight := sh.pending[name]; inflight {
		sh.mu.Unlock()
		return
	}
	tctx, cancel := context.WithCancel(s.lifecycle)
	job := &trainJob{done: make(chan struct{}), cancel: cancel, waiters: 1}
	sh.pending[name] = job
	sh.mu.Unlock()

	s.metrics.schedRebuilds.Inc()
	sh.rebuilds.Inc()
	s.runTrain(tctx, sh, name, job)
	if job.err != nil {
		s.metrics.schedFailures.Inc()
		sh.rebuildFailures.Inc()
		s.log.Printf("serve: scheduled rebuild of %s/%s failed: %v", sh.region, name, job.err)
	}
}
