package faulty

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections from l and writes back whatever each
// one sends, until the listener closes.
func echoServer(t *testing.T, l net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPassthroughEcho(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Wrap(inner, nil)
	defer l.Close()
	echoServer(t, l)

	c := dial(t, l.Addr().String())
	msg := "hello through the harness"
	if _, err := io.WriteString(c, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != msg {
		t.Fatalf("echoed %q", buf)
	}
	st := l.Stats()
	if st.Accepted != 1 || st.Faulted != 0 || st.Cut != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestEveryNthPlan pins the deterministic fault assignment: with n=3,
// exactly connections 2, 5, 8, ... (0-based) are faulted.
func TestEveryNthPlan(t *testing.T) {
	plan := EveryNth(3, Fault{CutAfter: 1})
	var faulted []int
	for i := 0; i < 9; i++ {
		if !plan(i).isZero() {
			faulted = append(faulted, i)
		}
	}
	if len(faulted) != 3 || faulted[0] != 2 || faulted[1] != 5 || faulted[2] != 8 {
		t.Fatalf("faulted connections %v", faulted)
	}
	if EveryNth(1, Fault{Delay: time.Millisecond})(0).isZero() {
		t.Fatal("EveryNth(1) must fault every connection")
	}
	if !EveryNth(0, Fault{Delay: time.Millisecond})(5).isZero() {
		t.Fatal("EveryNth(0) must never fault")
	}
}

// TestCutTruncatesResponse sends a payload larger than the byte budget
// and asserts the client receives exactly the budget, then an error —
// a torn response, not a clean message.
func TestCutTruncatesResponse(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 64
	l := Wrap(inner, EveryNth(1, Fault{CutAfter: budget}))
	defer l.Close()
	echoServer(t, l)

	c := dial(t, l.Addr().String())
	payload := strings.Repeat("x", 4*budget)
	if _, err := io.WriteString(c, payload); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(c)
	if err == nil && len(got) >= len(payload) {
		t.Fatal("cut connection delivered the full payload cleanly")
	}
	if len(got) > budget {
		t.Fatalf("client received %d bytes past the %d-byte budget", len(got), budget)
	}
	st := l.Stats()
	if st.Cut != 1 {
		t.Fatalf("stats %+v, want exactly one cut", st)
	}
}

// TestDelayHoldsFirstRead wires a delay fault and checks the server's
// first read of the connection waits at least that long.
func TestDelayHoldsFirstRead(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const delay = 50 * time.Millisecond
	l := Wrap(inner, EveryNth(1, Fault{Delay: delay}))
	defer l.Close()

	type result struct {
		elapsed time.Duration
		err     error
	}
	results := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			results <- result{0, err}
			return
		}
		defer c.Close()
		start := time.Now()
		buf := make([]byte, 1)
		_, err = c.Read(buf)
		results <- result{time.Since(start), err}
	}()

	c := dial(t, l.Addr().String())
	if _, err := io.WriteString(c, "x"); err != nil {
		t.Fatal(err)
	}
	r := <-results
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.elapsed < delay {
		t.Fatalf("first read returned after %v, want >= %v", r.elapsed, delay)
	}
}

// TestCutWriteReportsClosed pins the writer-side contract: the write
// crossing the budget returns net.ErrClosed and later writes fail too.
func TestCutWriteReportsClosed(t *testing.T) {
	server, client := net.Pipe()
	defer client.Close()
	go io.Copy(io.Discard, client) // drain so Pipe writes don't block
	c := &conn{Conn: server, fault: Fault{CutAfter: 10}}
	if _, err := c.Write(make([]byte, 10)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if _, err := c.Write(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("budget-crossing write error %v, want net.ErrClosed", err)
	}
	if _, err := c.Write(make([]byte, 1)); err == nil {
		t.Fatal("write after cut succeeded")
	}
}
