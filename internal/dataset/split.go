package dataset

import "fmt"

// Split is a temporal train/test partition of a network's observation
// window: the model sees failures from TrainFrom..TrainTo and is evaluated
// on predicting failures in TestYear, exactly as a utility would run the
// model at the end of TrainTo to plan the next year's inspections.
type Split struct {
	Network   *Network
	TrainFrom int
	TrainTo   int
	TestYear  int
}

// NewSplit validates the window arithmetic against the network's
// observation span and returns the split.
func NewSplit(n *Network, trainFrom, trainTo, testYear int) (Split, error) {
	switch {
	case trainFrom > trainTo:
		return Split{}, fmt.Errorf("dataset: train window [%d, %d] inverted", trainFrom, trainTo)
	case testYear <= trainTo:
		return Split{}, fmt.Errorf("dataset: test year %d not after train window end %d", testYear, trainTo)
	case trainFrom < n.ObservedFrom:
		return Split{}, fmt.Errorf("dataset: train start %d before observation start %d", trainFrom, n.ObservedFrom)
	case testYear > n.ObservedTo:
		return Split{}, fmt.Errorf("dataset: test year %d after observation end %d", testYear, n.ObservedTo)
	}
	return Split{Network: n, TrainFrom: trainFrom, TrainTo: trainTo, TestYear: testYear}, nil
}

// PaperSplit reproduces the paper's protocol: all observed history except
// the final year for training, the final year held out for testing.
func PaperSplit(n *Network) (Split, error) {
	return NewSplit(n, n.ObservedFrom, n.ObservedTo-1, n.ObservedTo)
}

// TrainYears returns the number of training years.
func (s Split) TrainYears() int { return s.TrainTo - s.TrainFrom + 1 }

// TrainFailures returns the failures visible to the model.
func (s Split) TrainFailures() []Failure {
	return s.Network.FailuresInYears(s.TrainFrom, s.TrainTo)
}

// TestLabels returns, for each pipe in Network.Pipes() order, whether the
// pipe failed in the test year — the ground truth the rankings are scored
// against.
func (s Split) TestLabels() []bool {
	pipes := s.Network.Pipes()
	out := make([]bool, len(pipes))
	for i := range pipes {
		out[i] = s.Network.FailedInYear(pipes[i].ID, s.TestYear)
	}
	return out
}

// TestFailureCount returns the number of pipes that failed in the test year
// (pipes, not events: a pipe failing twice counts once, matching how
// detection rates are reported).
func (s Split) TestFailureCount() int {
	c := 0
	for _, v := range s.TestLabels() {
		if v {
			c++
		}
	}
	return c
}

// RollingSplits enumerates rolling-origin splits: for each test year in
// [firstTest, n.ObservedTo], train on [n.ObservedFrom, testYear-1].
// It is the protocol behind the significance tests, which need multiple
// paired observations per method.
func RollingSplits(n *Network, firstTest int) ([]Split, error) {
	if firstTest <= n.ObservedFrom {
		return nil, fmt.Errorf("dataset: first test year %d must leave at least one training year after %d",
			firstTest, n.ObservedFrom)
	}
	if firstTest > n.ObservedTo {
		return nil, fmt.Errorf("dataset: first test year %d after observation end %d", firstTest, n.ObservedTo)
	}
	var out []Split
	for y := firstTest; y <= n.ObservedTo; y++ {
		s, err := NewSplit(n, n.ObservedFrom, y-1, y)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// WindowSplit trains on the w years immediately preceding the network's
// final observed year and tests on that final year. It is the protocol of
// the training-history-length experiment.
func WindowSplit(n *Network, w int) (Split, error) {
	if w < 1 {
		return Split{}, fmt.Errorf("dataset: window %d must be >= 1", w)
	}
	testYear := n.ObservedTo
	trainFrom := testYear - w
	if trainFrom < n.ObservedFrom {
		trainFrom = n.ObservedFrom
	}
	return NewSplit(n, trainFrom, testYear-1, testYear)
}
