package plan

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestPrefixMatchesGreedyProperty is the exact-equivalence contract:
// across randomized candidate sets, cost models and budgets — including
// the skip-tail cases where a too-long pipe is passed over but a later
// smaller one fits, and every combination of the three budget
// dimensions — Prefix.Plan must return a Plan that is byte-identical
// (JSON) and value-identical (DeepEqual, so float bits and nil-ness
// match) to what Greedy builds from the same inputs.
func TestPrefixMatchesGreedyProperty(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := stats.NewRNG(seed)
		n := rng.Intn(60) // 0 included: empty candidate sets must agree too
		cands := make([]Candidate, n)
		for i := range cands {
			length := 10 + rng.Float64()*300
			if rng.Float64() < 0.25 {
				length = 500 + rng.Float64()*5000 // long pipes force skips
			}
			cands[i] = Candidate{
				ID:       fmt.Sprintf("p%02d", i),
				FailProb: rng.Float64(),
				LengthM:  length,
			}
		}
		cm := CostModel{
			InspectionPerKM: rng.Float64() * 20000,
			FailureCost:     1 + rng.Float64()*300000,
		}
		if rng.Float64() < 0.2 {
			cm.InspectionPerKM = 0 // zero-cost inspections: cumCost stays flat
		}
		if rng.Float64() < 0.3 {
			cm.PreventionRate = rng.Float64()
		}
		px, err := BuildPrefix(cands, cm)
		if err != nil {
			t.Fatalf("seed %d: BuildPrefix: %v", seed, err)
		}

		for trial := 0; trial < 12; trial++ {
			var b Budget
			if rng.Float64() < 0.7 {
				b.MaxLengthM = rng.Float64() * 4000 // often smaller than one long pipe
			}
			if rng.Float64() < 0.5 {
				b.MaxCount = rng.Intn(25)
			}
			if rng.Float64() < 0.5 {
				b.MaxSpend = rng.Float64() * 50000
			}

			want, wantErr := Greedy(cands, cm, b)
			got, gotErr := px.Plan(b)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d trial %d: error mismatch: greedy=%v prefix=%v", seed, trial, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("seed %d trial %d: error text: greedy=%q prefix=%q", seed, trial, wantErr, gotErr)
				}
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d trial %d (budget %+v): plans diverge\ngreedy: %+v\nprefix: %+v", seed, trial, b, want, got)
			}
			wj, _ := json.Marshal(want)
			gj, _ := json.Marshal(got)
			if string(wj) != string(gj) {
				t.Fatalf("seed %d trial %d: JSON bodies diverge\ngreedy: %s\nprefix: %s", seed, trial, wj, gj)
			}
		}
	}
}

// TestPrefixSkipTail pins the tail semantics on a hand-built case: the
// highest-density pipe busts the length budget, the scan continues, and
// later smaller pipes are still taken — exactly Greedy's `continue`.
func TestPrefixSkipTail(t *testing.T) {
	cands := []Candidate{
		{ID: "long", FailProb: 0.95, LengthM: 300}, // highest density, busts the budget
		{ID: "mid", FailProb: 0.3, LengthM: 150},
		{ID: "short", FailProb: 0.1, LengthM: 40},
	}
	px, err := BuildPrefix(cands, cm)
	if err != nil {
		t.Fatal(err)
	}
	p, err := px.Plan(Budget{MaxLengthM: 200})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Greedy(cands, cm, Budget{MaxLengthM: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("skip-tail plan %+v, want %+v", p, want)
	}
	if len(p.Selected) != 2 || p.Selected[0].ID != "short" || p.Selected[1].ID != "mid" {
		t.Fatalf("selected %+v, want [short mid]", p.Selected)
	}
}

func TestPrefixErrorsMatchGreedy(t *testing.T) {
	good := []Candidate{{ID: "a", FailProb: 0.5, LengthM: 100}}
	px, err := BuildPrefix(good, cm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := px.Plan(Budget{}); !errors.Is(err, ErrNoBudget) {
		t.Fatalf("want ErrNoBudget, got %v", err)
	}
	if px.CostModel() != cm {
		t.Fatalf("CostModel() = %+v", px.CostModel())
	}
	if px.Len() != 1 {
		t.Fatalf("Len() = %d", px.Len())
	}

	// Build-time validation mirrors Greedy's per-call validation.
	for _, tc := range []struct {
		cands []Candidate
		cm    CostModel
	}{
		{[]Candidate{{ID: "x", FailProb: 2, LengthM: 1}}, cm},
		{[]Candidate{{ID: "x", FailProb: 0.5, LengthM: 0}}, cm},
		{good, CostModel{InspectionPerKM: -1, FailureCost: 150000}},
		{good, CostModel{InspectionPerKM: 8000, FailureCost: 0}},
	} {
		_, gerr := Greedy(tc.cands, tc.cm, Budget{MaxCount: 1})
		_, perr := BuildPrefix(tc.cands, tc.cm)
		if gerr == nil || perr == nil || gerr.Error() != perr.Error() {
			t.Fatalf("validation mismatch: greedy=%v prefix=%v", gerr, perr)
		}
	}
}

// TestPrefixDoesNotRetainInput: mutating the caller's slice after
// BuildPrefix must not change later plans.
func TestPrefixDoesNotRetainInput(t *testing.T) {
	cands := []Candidate{
		{ID: "a", FailProb: 0.9, LengthM: 100},
		{ID: "b", FailProb: 0.8, LengthM: 100},
	}
	px, err := BuildPrefix(cands, cm)
	if err != nil {
		t.Fatal(err)
	}
	cands[0] = Candidate{ID: "zz", FailProb: 0, LengthM: 1}
	p, err := px.Plan(Budget{MaxCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Selected) != 2 || p.Selected[0].ID != "a" {
		t.Fatalf("prefix aliased caller slice: %+v", p.Selected)
	}
}

func BenchmarkGreedyPlan(b *testing.B) {
	cands := benchCands(20000)
	bud := Budget{MaxLengthM: 50000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(cands, cm, bud); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefixPlan(b *testing.B) {
	cands := benchCands(20000)
	px, err := BuildPrefix(cands, cm)
	if err != nil {
		b.Fatal(err)
	}
	bud := Budget{MaxLengthM: 50000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := px.Plan(bud); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCands(n int) []Candidate {
	rng := stats.NewRNG(7)
	cands := make([]Candidate, n)
	for i := range cands {
		cands[i] = Candidate{
			ID:       fmt.Sprintf("p%05d", i),
			FailProb: rng.Float64(),
			LengthM:  10 + rng.Float64()*2000,
		}
	}
	return cands
}
