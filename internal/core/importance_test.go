package core

import (
	"testing"
)

func TestImportanceSortsByMagnitude(t *testing.T) {
	names := []string{"small", "big-neg", "mid", "zero"}
	w := []float64{0.1, -3, 1.5, 0}
	imps, err := Importance(names, w)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"big-neg", "mid", "small", "zero"}
	for i, want := range wantOrder {
		if imps[i].Name != want {
			t.Fatalf("order %v", imps)
		}
	}
	if imps[0].Weight != -3 {
		t.Fatal("weight value lost")
	}
	if _, err := Importance(names, w[:2]); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestLinearWeights(t *testing.T) {
	if _, ok := LinearWeights(NewDirectAUC(DirectAUCConfig{})); ok {
		t.Fatal("unfitted DirectAUC must not expose weights")
	}
	train := gaussianSet(101, 200, 0.3, 2, 3)
	m := NewRankSVM(RankSVMConfig{Seed: 1, Epochs: 2})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	w, ok := LinearWeights(m)
	if !ok || len(w) != 3 {
		t.Fatalf("weights %v ok=%v", w, ok)
	}
	if _, ok := LinearWeights(NewRankBoost(RankBoostConfig{})); ok {
		t.Fatal("RankBoost is not linear")
	}
}

func TestImportanceFindsInformativeFeature(t *testing.T) {
	// Features 0 and 1 carry the signal in gaussianSet; after fitting, the
	// top-2 importance entries must include feature index 0.
	train := gaussianSet(102, 1000, 0.2, 3, 6)
	m := NewDirectAUC(DirectAUCConfig{Seed: 2, Generations: 30})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	names := []string{"f0", "f1", "f2", "f3", "f4", "f5"}
	imps, err := Importance(names, m.W)
	if err != nil {
		t.Fatal(err)
	}
	if imps[0].Name != "f0" && imps[1].Name != "f0" {
		t.Fatalf("f0 not among top weights: %v", imps)
	}
}
