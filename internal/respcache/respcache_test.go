package respcache

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"reflect"
	"repro/internal/obs"
)

func newTestCache(t *testing.T, maxBytes int64) (*Cache, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry("test")
	return New(t.Name(), maxBytes, reg), reg
}

func counters(reg *obs.Registry, name string) (hits, misses, evictions int64) {
	prefix := "respcache." + name + "."
	return reg.Counter(prefix + "hits").Value(),
		reg.Counter(prefix + "misses").Value(),
		reg.Counter(prefix + "evictions").Value()
}

func TestGetOrFillCachesAndCounts(t *testing.T) {
	c, reg := newTestCache(t, 1<<20)
	fills := 0
	fill := func() (Entry, error) {
		fills++
		return Entry{Body: []byte(`{"x":1}`), ETag: `"v1"`}, nil
	}
	for i := 0; i < 3; i++ {
		e, err := c.GetOrFill([]byte("k1"), fill)
		if err != nil {
			t.Fatal(err)
		}
		if string(e.Body) != `{"x":1}` || e.ETag != `"v1"` {
			t.Fatalf("entry %+v", e)
		}
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	hits, misses, _ := counters(reg, t.Name())
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	if c.Len() != 1 || c.SizeBytes() != int64(len(`{"x":1}`)) {
		t.Fatalf("len=%d size=%d", c.Len(), c.SizeBytes())
	}
}

func TestFillErrorNeverCached(t *testing.T) {
	c, reg := newTestCache(t, 1<<20)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.GetOrFill([]byte("bad"), func() (Entry, error) {
			calls++
			return Entry{}, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err %v", err)
		}
	}
	if calls != 3 {
		t.Fatalf("failed fill should rerun every time, ran %d", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("error cached: %v", c.Keys())
	}
	if hits, misses, _ := counters(reg, t.Name()); hits != 0 || misses != 3 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget for exactly two 10-byte bodies.
	c, reg := newTestCache(t, 20)
	body := func(i int) []byte { return []byte(fmt.Sprintf("0123456%03d", i)) }
	for i := 0; i < 2; i++ {
		i := i
		c.GetOrFill([]byte("k"+strconv.Itoa(i)), func() (Entry, error) {
			return Entry{Body: body(i)}, nil
		})
	}
	// Touch k0 so k1 is the LRU tail, then insert k2.
	if _, ok := c.Get([]byte("k0")); !ok {
		t.Fatal("k0 missing")
	}
	c.GetOrFill([]byte("k2"), func() (Entry, error) {
		return Entry{Body: body(2)}, nil
	})
	if _, ok := c.Get([]byte("k1")); ok {
		t.Fatal("k1 should have been evicted")
	}
	if _, ok := c.Get([]byte("k0")); !ok {
		t.Fatal("recently used k0 evicted")
	}
	if _, _, ev := counters(reg, t.Name()); ev != 1 {
		t.Fatalf("evictions=%d, want 1", ev)
	}
	if c.SizeBytes() != 20 {
		t.Fatalf("size=%d", c.SizeBytes())
	}
}

func TestOversizedBodyNotInserted(t *testing.T) {
	c, _ := newTestCache(t, 8)
	e, err := c.GetOrFill([]byte("big"), func() (Entry, error) {
		return Entry{Body: make([]byte, 64)}, nil
	})
	if err != nil || len(e.Body) != 64 {
		t.Fatalf("oversized fill must still serve: %v %d", err, len(e.Body))
	}
	if c.Len() != 0 {
		t.Fatal("oversized body inserted")
	}
}

func TestSingleflightSharesOneFill(t *testing.T) {
	c, _ := newTestCache(t, 1<<20)
	var fills atomic.Int64
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := c.GetOrFill([]byte("shared"), func() (Entry, error) {
				fills.Add(1)
				<-gate // hold the fill open so everyone piles up
				return Entry{Body: []byte("shared-body")}, nil
			})
			if err != nil || string(e.Body) != "shared-body" {
				t.Errorf("worker got %v %q", err, e.Body)
			}
		}()
	}
	// Let the workers queue up behind the first fill, then release it.
	close(gate)
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want 1", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len=%d", c.Len())
	}
}

func TestSetHeadersZeroAllocOnHit(t *testing.T) {
	c, _ := newTestCache(t, 1<<20)
	c.GetOrFill([]byte("k"), func() (Entry, error) {
		return Entry{Body: []byte("xyz"), ETag: `"v9"`}, nil
	})
	h := make(http.Header)
	key := []byte("k")
	allocs := testing.AllocsPerRun(200, func() {
		e, ok := c.Get(key)
		if !ok {
			t.Fatal("miss")
		}
		e.SetHeaders(h)
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocated %.1f times per op, want 0", allocs)
	}
	if h.Get("Etag") != `"v9"` || h.Get("Content-Length") != "3" {
		t.Fatalf("headers %v", h)
	}
}

func TestBodyETagDeterministic(t *testing.T) {
	a := BodyETag([]byte("hello"))
	b := BodyETag([]byte("hello"))
	if a != b {
		t.Fatalf("%q != %q", a, b)
	}
	if a == BodyETag([]byte("world")) {
		t.Fatal("different bodies share an ETag")
	}
	if a[0] != '"' || a[len(a)-1] != '"' {
		t.Fatalf("ETag %q not quoted", a)
	}
}

// TestAddInsertsPreparedEntry pins the Get/Add pair the POST /plan path
// uses: Add prepares headers, inserts under the byte budget, and keeps
// an existing entry on a racing double-insert.
func TestAddInsertsPreparedEntry(t *testing.T) {
	c, reg := newTestCache(t, 1<<20)
	if _, ok := c.Get([]byte("p1")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add([]byte("p1"), Entry{Body: []byte(`{"plan":1}`), ETag: `"e1"`})
	e, ok := c.Get([]byte("p1"))
	if !ok || string(e.Body) != `{"plan":1}` {
		t.Fatalf("entry %+v ok=%v", e, ok)
	}
	h := make(http.Header)
	e.SetHeaders(h)
	if h.Get("Etag") != `"e1"` || h.Get("Content-Length") != strconv.Itoa(len(e.Body)) {
		t.Fatalf("prepared headers %v", h)
	}
	// Double-insert keeps the first entry.
	c.Add([]byte("p1"), Entry{Body: []byte(`{"plan":2}`), ETag: `"e2"`})
	if e, _ := c.Get([]byte("p1")); string(e.Body) != `{"plan":1}` {
		t.Fatalf("double Add replaced entry: %s", e.Body)
	}
	if c.Len() != 1 {
		t.Fatalf("len=%d", c.Len())
	}
	// Oversized bodies are refused, like GetOrFill's.
	tiny, _ := newTestCache(t, 4)
	tiny.Add([]byte("big"), Entry{Body: []byte("too large to hold")})
	if tiny.Len() != 0 {
		t.Fatal("oversized Add inserted")
	}
	_, _, evictions := counters(reg, t.Name())
	if evictions != 0 {
		t.Fatalf("unexpected evictions %d", evictions)
	}
}

func TestAppendKeyFloatCanonical(t *testing.T) {
	render := func(f float64) string { return string(AppendKeyFloat(nil, f)) }
	if render(5) != render(5.0) {
		t.Fatal("5 and 5.0 render differently")
	}
	if got := render(math.Copysign(0, -1)); got != "0" {
		t.Fatalf("-0 rendered %q, want \"0\"", got)
	}
	// Distinct values must render distinctly (shortest repr is injective).
	if render(0.1) == render(0.1+math.Nextafter(0, 1)*1e300) && 0.1 != 0.1+math.Nextafter(0, 1)*1e300 {
		t.Fatal("distinct floats share a rendering")
	}
	if got := render(12.5); got != "12.5" {
		t.Fatalf("12.5 rendered %q", got)
	}
	// Appends in place.
	key := AppendKeyFloat([]byte("k\x00"), 3)
	if string(key) != "k\x003" {
		t.Fatalf("append result %q", key)
	}
}

func TestPartitionBudget(t *testing.T) {
	if got := PartitionBudget(100, 0); got != nil {
		t.Errorf("n=0: got %v, want nil", got)
	}
	if got := PartitionBudget(100, -1); got != nil {
		t.Errorf("n<0: got %v, want nil", got)
	}
	if got := PartitionBudget(90, 3); !reflect.DeepEqual(got, []int64{30, 30, 30}) {
		t.Errorf("even split: %v", got)
	}
	if got := PartitionBudget(100, 3); !reflect.DeepEqual(got, []int64{34, 33, 33}) {
		t.Errorf("remainder to the first shard: %v", got)
	}
	// Sub-shard budgets still give every shard a constructible cache
	// (respcache.New panics on a zero budget).
	if got := PartitionBudget(2, 4); !reflect.DeepEqual(got, []int64{1, 1, 1, 1}) {
		t.Errorf("minimum one byte each: %v", got)
	}
	var sum int64
	for _, s := range PartitionBudget(101, 4) {
		sum += s
	}
	if sum != 101 {
		t.Errorf("budget not conserved: %d", sum)
	}
}
