package dataset

import (
	"reflect"
	"testing"
)

func extendFixture() *Network {
	pipes := []Pipe{
		{ID: "P1", Class: CriticalMain, Material: "CI", DiameterMM: 300, LengthM: 120, LaidYear: 1960, Segments: 3},
		{ID: "P2", Class: ReticulationMain, Material: "PVC", DiameterMM: 100, LengthM: 80, LaidYear: 1990, Segments: 2},
	}
	fails := []Failure{
		{PipeID: "P1", Segment: 0, Year: 2001, Day: 40, Mode: ModeBreak},
		{PipeID: "P2", Segment: 1, Year: 2003, Day: 100, Mode: ModeLeak},
	}
	return NewNetwork("X", 2000, 2005, pipes, fails)
}

func TestExtendLiveAppendsAndExtendsWindow(t *testing.T) {
	n := extendFixture()
	ext := n.ExtendLive([]Failure{
		{PipeID: "P1", Segment: 1, Year: 2007, Day: 12, Mode: ModeBreak},
		{PipeID: "P2", Segment: 0, Year: 2002, Day: 5, Mode: ModeBlockage},
	}, nil)
	if ext.NumFailures() != 4 {
		t.Fatalf("NumFailures = %d, want 4", ext.NumFailures())
	}
	if ext.ObservedTo != 2007 {
		t.Fatalf("ObservedTo = %d, want 2007", ext.ObservedTo)
	}
	if ext.ObservedFrom != 2000 {
		t.Fatalf("ObservedFrom = %d, want 2000", ext.ObservedFrom)
	}
	// Sorted merge: the 2002 event lands between the originals.
	years := make([]int, 0, 4)
	for _, f := range ext.Failures() {
		years = append(years, f.Year)
	}
	if !reflect.DeepEqual(years, []int{2001, 2002, 2003, 2007}) {
		t.Fatalf("failure years = %v", years)
	}
	// Base network untouched.
	if n.NumFailures() != 2 || n.ObservedTo != 2005 {
		t.Fatalf("base mutated: %d failures, ObservedTo %d", n.NumFailures(), n.ObservedTo)
	}
}

func TestExtendLiveRenewalsResetLaidYear(t *testing.T) {
	n := extendFixture()
	ext := n.ExtendLive(nil, []Renewal{
		{PipeID: "P1", Year: 2004},
		{PipeID: "P1", Year: 2002},  // older renewal never regresses LaidYear
		{PipeID: "P9", Year: 2004},  // unknown pipe skipped
	})
	p, ok := ext.PipeByID("P1")
	if !ok || p.LaidYear != 2004 {
		t.Fatalf("P1 LaidYear = %v, want 2004", p)
	}
	base, _ := n.PipeByID("P1")
	if base.LaidYear != 1960 {
		t.Fatalf("base P1 mutated to %d", base.LaidYear)
	}
	if ext.ObservedTo != n.ObservedTo {
		t.Fatalf("renewals must not move ObservedTo")
	}
}

func TestExtendLiveDeterministic(t *testing.T) {
	n := extendFixture()
	extra := []Failure{
		{PipeID: "P2", Segment: 0, Year: 2006, Day: 200, Mode: ModeLeak},
		{PipeID: "P1", Segment: 2, Year: 2006, Day: 200, Mode: ModeBreak},
	}
	a := n.ExtendLive(extra, nil)
	b := n.ExtendLive(extra, nil)
	if !reflect.DeepEqual(a.Failures(), b.Failures()) || !reflect.DeepEqual(a.Pipes(), b.Pipes()) {
		t.Fatal("ExtendLive not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestExtendLiveEmptyIsEquivalent(t *testing.T) {
	n := extendFixture()
	ext := n.ExtendLive(nil, nil)
	if !reflect.DeepEqual(ext.Failures(), n.Failures()) || !reflect.DeepEqual(ext.Pipes(), n.Pipes()) {
		t.Fatal("no-op ExtendLive changed data")
	}
	if ext.ObservedFrom != n.ObservedFrom || ext.ObservedTo != n.ObservedTo {
		t.Fatal("no-op ExtendLive changed window")
	}
}
