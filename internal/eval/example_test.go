package eval_test

import (
	"fmt"

	"repro/internal/eval"
)

func ExampleAUC() {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	failed := []bool{true, false, true, false}
	fmt.Printf("%.2f\n", eval.AUC(scores, failed))
	// Output: 0.75
}

func ExampleDetectionAt() {
	// Ten pipes, the two failures ranked 1st and 4th.
	scores := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	failed := []bool{true, false, false, true, false, false, false, false, false, false}
	fmt.Printf("top 10%%: %.0f%%\n", 100*eval.DetectionAt(scores, failed, 0.10))
	fmt.Printf("top 40%%: %.0f%%\n", 100*eval.DetectionAt(scores, failed, 0.40))
	// Output:
	// top 10%: 50%
	// top 40%: 100%
}

func ExampleTable() {
	tb := eval.NewTable("results", "model", "auc")
	tb.AddRow("DirectAUC-ES", eval.FormatPercent(0.8467))
	fmt.Print(tb.String())
	// Output:
	// results
	// model         auc
	// --------------------
	// DirectAUC-ES  84.67%
}
