package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/obs"
)

// counterDeltas reads the singleflight counters so tests can assert on
// deltas — the obs registry is process-global, so absolute values carry
// history from other tests.
type sfCounts struct{ hits, misses, cached, failures int64 }

func readSF() sfCounts {
	reg := obs.Default()
	return sfCounts{
		hits:     reg.Counter("serve.train.singleflight.hits").Value(),
		misses:   reg.Counter("serve.train.singleflight.misses").Value(),
		cached:   reg.Counter("serve.train.cached_hits").Value(),
		failures: reg.Counter("serve.train.failures").Value(),
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	net, err := pipefail.GenerateRegion("A", 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(net, log.New(io.Discard, "", 0), pipefail.WithESGenerations(8))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndNetwork(t *testing.T) {
	_, ts := newTestServer(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("health %v", health)
	}
	var netInfo map[string]any
	if code := getJSON(t, ts.URL+"/api/network", &netInfo); code != 200 {
		t.Fatalf("network status %d", code)
	}
	if netInfo["region"] != "A" {
		t.Fatalf("network %v", netInfo)
	}
	if netInfo["test_year"].(float64) != 2009 {
		t.Fatalf("test year %v", netInfo["test_year"])
	}
}

func TestModelListAndTraining(t *testing.T) {
	_, ts := newTestServer(t)
	var models []map[string]any
	if code := getJSON(t, ts.URL+"/api/models", &models); code != 200 {
		t.Fatalf("models status %d", code)
	}
	if len(models) != len(pipefail.Models()) {
		t.Fatalf("%d models listed", len(models))
	}
	for _, m := range models {
		if m["trained"].(bool) {
			t.Fatalf("model %v trained before any request", m["name"])
		}
	}

	var st map[string]any
	if code := postJSON(t, ts.URL+"/api/models/Cox/train", nil, &st); code != 200 {
		t.Fatalf("train status %d: %v", code, st)
	}
	if st["auc"].(float64) <= 0.4 {
		t.Fatalf("train result %v", st)
	}

	// Unknown model.
	var e map[string]any
	if code := postJSON(t, ts.URL+"/api/models/Nope/train", nil, &e); code != 400 {
		t.Fatalf("unknown model status %d", code)
	}

	// Now the list shows Cox as trained.
	if code := getJSON(t, ts.URL+"/api/models", &models); code != 200 {
		t.Fatal("relist failed")
	}
	found := false
	for _, m := range models {
		if m["name"] == "Cox" && m["trained"].(bool) {
			found = true
		}
	}
	if !found {
		t.Fatal("Cox not marked trained")
	}
}

func TestRankingEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var ranking []map[string]any
	if code := getJSON(t, ts.URL+"/api/models/Heuristic-Age/ranking?top=7", &ranking); code != 200 {
		t.Fatalf("ranking status %d", code)
	}
	if len(ranking) != 7 {
		t.Fatalf("ranking size %d", len(ranking))
	}
	prev := 1e18
	for i, r := range ranking {
		if int(r["rank"].(float64)) != i+1 {
			t.Fatalf("rank field %v at %d", r["rank"], i)
		}
		score := r["score"].(float64)
		if score > prev {
			t.Fatal("ranking not sorted by score")
		}
		prev = score
	}
	var e map[string]any
	if code := getJSON(t, ts.URL+"/api/models/Heuristic-Age/ranking?top=zero", &e); code != 400 {
		t.Fatalf("bad top status %d", code)
	}
}

func TestPipeEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	id := s.def.net.Pipes()[0].ID
	var pipe map[string]any
	if code := getJSON(t, ts.URL+"/api/pipes/"+id, &pipe); code != 200 {
		t.Fatalf("pipe status %d", code)
	}
	if pipe["id"] != id || pipe["material"] == "" {
		t.Fatalf("pipe %v", pipe)
	}
	if code := getJSON(t, ts.URL+"/api/pipes/GHOST", nil); code != 404 {
		t.Fatalf("ghost pipe status %d", code)
	}
	// After training, per-pipe scores appear.
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, nil); code != 200 {
		t.Fatal("train failed")
	}
	if code := getJSON(t, ts.URL+"/api/pipes/"+id, &pipe); code != 200 {
		t.Fatal("pipe refetch failed")
	}
	if _, ok := pipe["scores"]; !ok {
		t.Fatalf("pipe response missing scores: %v", pipe)
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	req := map[string]any{"model": "Logistic", "budget_km": 5}
	var resp map[string]any
	if code := postJSON(t, ts.URL+"/api/plan", req, &resp); code != 200 {
		t.Fatalf("plan status %d: %v", code, resp)
	}
	if resp["model"] != "Logistic" {
		t.Fatalf("plan %v", resp)
	}
	if resp["total_km"].(float64) > 5+1e-9 {
		t.Fatalf("plan exceeds budget: %v", resp)
	}
	// Malformed body.
	r, err := http.Post(ts.URL+"/api/plan", "application/json", bytes.NewBufferString("{"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 400 {
		t.Fatalf("malformed body status %d", r.StatusCode)
	}
	// No budget at all.
	var e map[string]any
	if code := postJSON(t, ts.URL+"/api/plan", map[string]any{"model": "Logistic"}, &e); code != 400 {
		t.Fatalf("no-budget status %d: %v", code, e)
	}
}

func TestCohortsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	for _, by := range []string{"", "material", "age", "diameter"} {
		var rows []map[string]any
		if code := getJSON(t, ts.URL+"/api/cohorts?by="+by, &rows); code != 200 {
			t.Fatalf("cohorts by=%q status %d", by, code)
		}
		if len(rows) == 0 {
			t.Fatalf("cohorts by=%q empty", by)
		}
	}
	if code := getJSON(t, ts.URL+"/api/cohorts?by=phase_of_moon", nil); code != 400 {
		t.Fatal("unknown dimension must 400")
	}
}

func TestHotspotsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var hot []map[string]any
	if code := getJSON(t, ts.URL+"/api/hotspots?min=1", &hot); code != 200 {
		t.Fatalf("hotspots status %d", code)
	}
	if len(hot) == 0 {
		t.Fatal("no hotspots at min=1 on a network with failures")
	}
	if code := getJSON(t, ts.URL+"/api/hotspots?min=banana", nil); code != 400 {
		t.Fatal("bad min must 400")
	}
}

// TestMetricsEndpoint drives the full train→rank→plan sequence and then
// asserts GET /metrics exposes the request latency histograms, the train
// singleflight counters and the per-model fit-duration histograms that
// the sequence must have produced.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	before := readSF()

	if code := postJSON(t, ts.URL+"/api/models/Logistic/train", nil, nil); code != 200 {
		t.Fatal("train failed")
	}
	if code := getJSON(t, ts.URL+"/api/models/Logistic/ranking?top=5", nil); code != 200 {
		t.Fatal("ranking failed")
	}
	if code := postJSON(t, ts.URL+"/api/plan", map[string]any{"model": "Logistic", "budget_km": 3}, nil); code != 200 {
		t.Fatal("plan failed")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("metrics Content-Type %q", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics is not a JSON snapshot: %v", err)
	}

	// Request latency histograms per endpoint.
	for _, route := range []string{"train", "ranking", "plan"} {
		h, ok := snap.Histograms["serve.request_seconds."+route]
		if !ok || h.Count < 1 {
			t.Errorf("missing/empty latency histogram for %s: %+v", route, h)
		}
		if snap.Counters["serve.requests."+route] < 1 {
			t.Errorf("request counter for %s did not move", route)
		}
	}
	// Singleflight counters: the train + the plan's model reuse.
	if snap.Counters["serve.train.singleflight.misses"] < before.misses+1 {
		t.Error("singleflight miss not counted for the first train")
	}
	if snap.Counters["serve.train.cached_hits"] < before.cached+2 {
		t.Error("ranking+plan should have hit the trained-model cache")
	}
	// Per-model fit duration recorded by the pipeline.
	if h, ok := snap.Histograms["core.fit_seconds.Logistic"]; !ok || h.Count < 1 {
		t.Errorf("per-model fit duration missing: %+v", snap.Histograms["core.fit_seconds.Logistic"])
	}
	// In-flight gauge exists and is back to a sane value.
	if g, ok := snap.Gauges["serve.inflight"]; !ok || g < 1 {
		t.Errorf("in-flight gauge %v (the /metrics request itself is in flight)", g)
	}
}

// TestTrainFailureNotCached injects a one-shot training failure through
// the trainFn seam and asserts the failure is returned, counted, and
// NOT cached: the next request retrains and succeeds.
func TestTrainFailureNotCached(t *testing.T) {
	s, ts := newTestServer(t)
	before := readSF()

	realTrain := s.trainFn
	failures := 0
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		failures++
		return nil, errors.New("injected training failure")
	}

	var e map[string]any
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, &e); code != 503 {
		t.Fatalf("failed train status %d, want 503 (internal failures are the service's fault)", code)
	}
	if !strings.Contains(e["error"].(string), "injected") {
		t.Fatalf("error body %v", e)
	}
	if got := readSF(); got.failures != before.failures+1 {
		t.Fatalf("train failure counter = %d, want %d", got.failures, before.failures+1)
	}

	// The failed run must not be cached: restore training and retry.
	s.trainFn = realTrain
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, nil); code != 200 {
		t.Fatal("retry after failure did not retrain")
	}
	if failures != 1 {
		t.Fatalf("injected trainer ran %d times, want 1", failures)
	}
	if got := readSF(); got.misses != before.misses+2 {
		t.Fatalf("miss counter = %d, want %d (failed run + retry both start fresh)", got.misses, before.misses+2)
	}
}

func TestRankingUnknownModel(t *testing.T) {
	_, ts := newTestServer(t)
	var e map[string]any
	if code := getJSON(t, ts.URL+"/api/models/NoSuchModel/ranking", &e); code != 400 {
		t.Fatalf("unknown model ranking status %d, want 400", code)
	}
	if !strings.Contains(e["error"].(string), "unknown model") {
		t.Fatalf("error body %v", e)
	}
}

func TestPlanBadBudget(t *testing.T) {
	_, ts := newTestServer(t)
	var e map[string]any
	if code := postJSON(t, ts.URL+"/api/plan", map[string]any{"model": "Logistic", "budget_km": -4}, &e); code != 400 {
		t.Fatalf("negative budget status %d, want 400", code)
	}
	if e["error"] == "" {
		t.Fatal("no error body for bad budget")
	}
}

// TestErrorResponsesHaveJSONContentType pins the writeErr fix: the
// Content-Type header must be set before the status is written.
func TestErrorResponsesHaveJSONContentType(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/models/NoSuchModel/ranking")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response Content-Type %q, want application/json", ct)
	}
	if c := obs.Default().Counter("serve.errors.ranking").Value(); c < 1 {
		t.Error("error counter for ranking did not move")
	}
}

func TestConcurrentTrainingRequests(t *testing.T) {
	// A dedicated server whose log feeds a buffer, so the test can count
	// training runs. log.Logger serializes writes; the buffer is only read
	// after every request has completed.
	net, err := pipefail.GenerateRegion("A", 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	s, err := New(net, log.New(&logBuf, "", 0), pipefail.WithESGenerations(8))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := readSF()
	const requests = 8
	var wg sync.WaitGroup
	errs := make(chan string, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/api/models/Heuristic-Length/train", "application/json", nil)
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			// Singleflight contract: every concurrent request succeeds —
			// the first trains, the rest block on the in-flight run. No
			// "retry shortly" refusals.
			if resp.StatusCode != 200 {
				body, _ := io.ReadAll(resp.Body)
				errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Exactly one training run served all eight requests.
	if got := strings.Count(logBuf.String(), "serve: trained Heuristic-Length"); got != 1 {
		t.Fatalf("training ran %d times, want exactly 1; log:\n%s", got, logBuf.String())
	}
	// The singleflight counters agree: one miss started the run, and the
	// other seven either joined it in flight or (if they arrived after it
	// published) hit the trained cache.
	after := readSF()
	if after.misses != before.misses+1 {
		t.Fatalf("singleflight misses = %d, want %d", after.misses, before.misses+1)
	}
	if joined := (after.hits - before.hits) + (after.cached - before.cached); joined != requests-1 {
		t.Fatalf("hits+cached = %d, want %d", joined, requests-1)
	}
	if after.failures != before.failures {
		t.Fatalf("unexpected train failures: %d", after.failures-before.failures)
	}
	// Still trained and stable afterwards.
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Length/train", nil, nil); code != 200 {
		t.Fatalf("final train status %d", code)
	}
	if got := readSF(); got.cached != after.cached+1 {
		t.Fatalf("final train should be a cache hit (cached %d → %d)", after.cached, got.cached)
	}
}
