package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-file regression tests for the table renderers: every table is
// rendered from a fixed-seed 4 %-scale region and compared byte-for-byte
// against testdata/*.golden, so report formatting (column set, number
// formats, alignment, row order) cannot drift silently. After an
// intentional formatting change, regenerate with
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the golden diffs like any other code change.

var update = flag.Bool("update", false, "rewrite the experiment-table golden files")

// goldenOpts uses only cheap deterministic models so the goldens render
// in well under a second; determinism across worker counts is pinned by
// the parallel-engine tests, so the rendered bytes are machine-stable.
func goldenOpts() Options {
	return Options{
		Seed:    11,
		Scale:   0.04,
		Regions: []string{"A"},
		Models:  []string{"Heuristic-Age", "Heuristic-Length", "TimeExp", "Logistic"},
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden %s (re-run with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
			name, path, got, want)
	}
}

func TestGoldenDatasetTables(t *testing.T) {
	opts := goldenOpts()
	t0, err := T0Cohorts(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "t0_cohorts", t0.String())

	t1, err := T1DatasetSummary(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "t1_summary", t1.String())
}

func TestGoldenEvaluationTables(t *testing.T) {
	opts := goldenOpts()
	results, err := RunRegions(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "t2_auc", T2AUCTable(results).String())
	checkGolden(t, "t3_budgets", T3BudgetTable(results).String())
	checkGolden(t, "f1_detection", F1DetectionSeries(results, nil).String())
}

func TestGoldenClassBreakdownTable(t *testing.T) {
	opts := goldenOpts()
	opts.Models = []string{"Heuristic-Age", "TimeExp"}
	tb, err := T6ClassBreakdown(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "t6_class_breakdown", tb.String())
}

// TestGoldenRenewalTable pins the F5 counterfactual-renewal table: the
// policy rows, the ground-truth failure counts under the shared future
// seed, and the prevented-percentage formatting.
func TestGoldenRenewalTable(t *testing.T) {
	// At 4 % scale the paper's 2 % replacement budget rounds to a dozen
	// pipes and prevents nothing; 20 % keeps the policy rows
	// distinguishable so the golden pins real counterfactual numbers,
	// not just formatting.
	tb, err := F5RenewalImpact(goldenOpts(), "A", 0.20, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "f5_renewal", tb.String())
}

// TestGoldenSensitivityTable pins the T8 hyperparameter-sensitivity table.
// The ES generation count is cut to keep the six DirectAUC configurations
// cheap; the point of the golden is the row set, CV plumbing and number
// formatting, all of which are generation-count independent.
func TestGoldenSensitivityTable(t *testing.T) {
	opts := goldenOpts()
	opts.ESGenerations = 4
	tb, err := T8Sensitivity(opts, "A", 2)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "t8_sensitivity", tb.String())
}

// TestGoldenCoverage pins the golden set itself: a new table renderer
// should either get a golden here or consciously opt out.
func TestGoldenCoverage(t *testing.T) {
	if *update {
		t.Skip("golden set being rewritten")
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	var goldens []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".golden") {
			goldens = append(goldens, e.Name())
		}
	}
	if len(goldens) < 6 {
		t.Fatalf("expected at least 6 golden files, found %d: %v", len(goldens), goldens)
	}
	for _, g := range goldens {
		b, err := os.ReadFile(filepath.Join("testdata", g))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Errorf("golden %s is empty", g)
		}
		// Every golden is a rendered table: title line, header, rule.
		if !strings.Contains(string(b), "---") {
			t.Errorf("golden %s does not look like a rendered table", g)
		}
	}
}
