package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/feature"
	"repro/internal/parallel"
	"repro/internal/stats"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// gaussianSet builds a two-class Gaussian set: positives centred at +mu
// along a signal direction in the first two dims, negatives at the origin,
// with noise dims appended. sep controls difficulty. The set is dense
// (flat-backed), like everything the feature builder produces, so tests
// exercise the same memory-layout paths as production sets.
func gaussianSet(seed int64, n int, posFrac, sep float64, dim int) *feature.Set {
	rng := stats.NewRNG(seed)
	names := make([]string, dim)
	for j := range names {
		names[j] = "f"
	}
	s := feature.NewDense(names, n, dim)
	for i := 0; i < n; i++ {
		pos := rng.Bernoulli(posFrac)
		row := s.X[i]
		for j := range row {
			row[j] = rng.Norm()
		}
		if pos {
			row[0] += sep
			if dim > 1 {
				row[1] += sep / 2
			}
		}
		s.Label[i] = pos
		s.Age[i] = 10
		s.LengthM[i] = 100
		s.PipeIdx[i] = i
		s.Year[i] = 2000
	}
	return s
}

// viewCopy rebuilds a set as plain row views with no flat backing, to
// exercise the fallback paths of flat-aware kernels.
func viewCopy(s *feature.Set) *feature.Set {
	v := &feature.Set{
		Names:   s.Names,
		Label:   s.Label,
		Age:     s.Age,
		LengthM: s.LengthM,
		PipeIdx: s.PipeIdx,
		Year:    s.Year,
	}
	v.X = make([][]float64, len(s.X))
	for i, row := range s.X {
		v.X[i] = append([]float64(nil), row...)
	}
	return v
}

func TestExactAUCKnownValues(t *testing.T) {
	// Perfect separation.
	if got := exactAUC([]float64{1, 2, 3, 4}, []bool{false, false, true, true}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Perfectly wrong.
	if got := exactAUC([]float64{4, 3, 2, 1}, []bool{false, false, true, true}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All ties → 0.5.
	if got := exactAUC([]float64{7, 7, 7, 7}, []bool{true, false, true, false}); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Hand-computed: scores 1,2,3 labels F,T,F → pairs (2>1)=1, (2<3)=0 → 0.5.
	if got := exactAUC([]float64{1, 2, 3}, []bool{false, true, false}); got != 0.5 {
		t.Fatalf("AUC = %v", got)
	}
	// Single class degenerates to 0.5.
	if got := exactAUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Fatalf("single class AUC = %v", got)
	}
}

// Property: AUC is invariant under strictly monotone transforms of scores.
func TestExactAUCMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 50
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rng.Normal(0, 2)
			labels[i] = rng.Bernoulli(0.3)
		}
		a1 := exactAUC(scores, labels)
		warped := make([]float64, n)
		for i, s := range scores {
			warped[i] = math.Exp(s/3) + 100
		}
		a2 := exactAUC(warped, labels)
		return almostEqual(a1, a2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: AUC(scores) + AUC(-scores) == 1 when there are no ties.
func TestExactAUCComplementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 40
		scores := make([]float64, n)
		labels := make([]bool, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = rng.Float64() // continuous → no ties w.h.p.
			labels[i] = rng.Bernoulli(0.4)
			if labels[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		neg := make([]float64, n)
		for i, s := range scores {
			neg[i] = -s
		}
		return almostEqual(exactAUC(scores, labels)+exactAUC(neg, labels), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(func() Model { return NewDirectAUC(DefaultDirectAUCConfig(1)) })
	r.Register(func() Model { return NewRankSVM(RankSVMConfig{Seed: 1}) })
	if got := r.Names(); len(got) != 2 || got[0] != "DirectAUC-ES" || got[1] != "RankSVM" {
		t.Fatalf("names = %v", got)
	}
	m, err := r.New("RankSVM")
	if err != nil || m.Name() != "RankSVM" {
		t.Fatalf("New: %v %v", m, err)
	}
	if _, err := r.New("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Register(func() Model { return NewRankSVM(RankSVMConfig{}) })
}

func TestValidateFitInputs(t *testing.T) {
	if err := validateFitInputs(nil); err == nil {
		t.Fatal("nil set must error")
	}
	s := gaussianSet(1, 50, 0.3, 2, 3)
	for i := range s.Label {
		s.Label[i] = true
	}
	if err := validateFitInputs(s); err == nil {
		t.Fatal("all-positive set must error")
	}
	for i := range s.Label {
		s.Label[i] = false
	}
	if err := validateFitInputs(s); err == nil {
		t.Fatal("all-negative set must error")
	}
}

func fitAndScore(t *testing.T, m Model, train, test *feature.Set) []float64 {
	t.Helper()
	if err := m.Fit(train); err != nil {
		t.Fatalf("%s fit: %v", m.Name(), err)
	}
	scores, err := m.Scores(test)
	if err != nil {
		t.Fatalf("%s score: %v", m.Name(), err)
	}
	if len(scores) != test.Len() {
		t.Fatalf("%s returned %d scores for %d rows", m.Name(), len(scores), test.Len())
	}
	return scores
}

func TestDirectAUCLearnsSeparableData(t *testing.T) {
	train := gaussianSet(1, 800, 0.15, 2.5, 6)
	test := gaussianSet(2, 400, 0.15, 2.5, 6)
	m := NewDirectAUC(DirectAUCConfig{Seed: 3, Generations: 60})
	scores := fitAndScore(t, m, train, test)
	auc := exactAUC(scores, test.Label)
	if auc < 0.9 {
		t.Fatalf("DirectAUC test AUC = %v, want >= 0.9", auc)
	}
	if m.TrainAUC < 0.9 {
		t.Fatalf("train AUC = %v", m.TrainAUC)
	}
}

func TestDirectAUCDeterminism(t *testing.T) {
	train := gaussianSet(5, 300, 0.2, 2, 4)
	m1 := NewDirectAUC(DirectAUCConfig{Seed: 9, Generations: 20})
	m2 := NewDirectAUC(DirectAUCConfig{Seed: 9, Generations: 20})
	if err := m1.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("same seed must give identical weights")
		}
	}
}

// TestFlatAndViewSetsScoreIdentically pins the memory-layout contract:
// the flat MatVec fast path and the row-view fallback must produce
// bit-identical scores and, through them, bit-identical fitted models.
func TestFlatAndViewSetsScoreIdentically(t *testing.T) {
	dense := gaussianSet(21, 400, 0.2, 2, 5)
	view := viewCopy(dense)
	if flat, _ := view.Flat(); flat != nil {
		t.Fatal("viewCopy must not have a flat backing")
	}
	w := []float64{0.5, -1.25, 2, 0.125, -3}
	pool := parallel.New(2)
	sd := scoreAllPar(dense, w, pool)
	sv := scoreAllPar(view, w, pool)
	for i := range sd {
		if sd[i] != sv[i] {
			t.Fatalf("row %d: flat path %v != view path %v", i, sd[i], sv[i])
		}
	}
	md := NewDirectAUC(DirectAUCConfig{Seed: 9, Generations: 15})
	mv := NewDirectAUC(DirectAUCConfig{Seed: 9, Generations: 15})
	if err := md.Fit(dense); err != nil {
		t.Fatal(err)
	}
	if err := mv.Fit(view); err != nil {
		t.Fatal(err)
	}
	for i := range md.W {
		if md.W[i] != mv.W[i] {
			t.Fatal("flat and view training must give identical weights")
		}
	}
	if md.TrainAUC != mv.TrainAUC {
		t.Fatalf("train AUC %v != %v", md.TrainAUC, mv.TrainAUC)
	}
}

func TestDirectAUCErrors(t *testing.T) {
	m := NewDirectAUC(DirectAUCConfig{Seed: 1})
	if _, err := m.Scores(gaussianSet(1, 10, 0.5, 1, 3)); err == nil {
		t.Fatal("Scores before Fit must error")
	}
	train := gaussianSet(1, 100, 0.3, 1, 3)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Scores(gaussianSet(1, 10, 0.5, 1, 5)); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestRankSVMLearnsSeparableData(t *testing.T) {
	train := gaussianSet(11, 800, 0.15, 2.5, 6)
	test := gaussianSet(12, 400, 0.15, 2.5, 6)
	m := NewRankSVM(RankSVMConfig{Seed: 13})
	scores := fitAndScore(t, m, train, test)
	if auc := exactAUC(scores, test.Label); auc < 0.9 {
		t.Fatalf("RankSVM test AUC = %v", auc)
	}
}

func TestRankSVMErrorsAndDeterminism(t *testing.T) {
	m := NewRankSVM(RankSVMConfig{Seed: 1})
	if _, err := m.Scores(gaussianSet(1, 10, 0.5, 1, 3)); err == nil {
		t.Fatal("Scores before Fit must error")
	}
	train := gaussianSet(21, 300, 0.2, 2, 4)
	m1 := NewRankSVM(RankSVMConfig{Seed: 2, Epochs: 5})
	m2 := NewRankSVM(RankSVMConfig{Seed: 2, Epochs: 5})
	if err := m1.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("RankSVM not deterministic")
		}
	}
	if err := m1.Fit(&feature.Set{}); err == nil {
		t.Fatal("empty train must error")
	}
	if _, err := m1.Scores(gaussianSet(1, 10, 0.5, 1, 9)); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestRankBoostLearnsSeparableData(t *testing.T) {
	train := gaussianSet(31, 800, 0.15, 2.5, 6)
	test := gaussianSet(32, 400, 0.15, 2.5, 6)
	m := NewRankBoost(RankBoostConfig{Rounds: 50})
	scores := fitAndScore(t, m, train, test)
	if auc := exactAUC(scores, test.Label); auc < 0.85 {
		t.Fatalf("RankBoost test AUC = %v", auc)
	}
	if m.Rounds() == 0 {
		t.Fatal("no stumps fitted")
	}
}

func TestRankBoostHandlesNonMonotoneDirection(t *testing.T) {
	// Positives have LOWER feature values: stumps must invert.
	rng := stats.NewRNG(41)
	s := &feature.Set{Names: []string{"f0"}}
	for i := 0; i < 400; i++ {
		pos := rng.Bernoulli(0.3)
		v := rng.Norm()
		if pos {
			v -= 3
		}
		s.X = append(s.X, []float64{v})
		s.Label = append(s.Label, pos)
		s.Age = append(s.Age, 1)
		s.LengthM = append(s.LengthM, 1)
		s.PipeIdx = append(s.PipeIdx, i)
		s.Year = append(s.Year, 2000)
	}
	m := NewRankBoost(RankBoostConfig{Rounds: 20})
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	scores, err := m.Scores(s)
	if err != nil {
		t.Fatal(err)
	}
	if auc := exactAUC(scores, s.Label); auc < 0.9 {
		t.Fatalf("inverted-direction AUC = %v", auc)
	}
}

func TestRankBoostErrors(t *testing.T) {
	m := NewRankBoost(RankBoostConfig{})
	if _, err := m.Scores(gaussianSet(1, 10, 0.5, 1, 3)); err == nil {
		t.Fatal("Scores before Fit must error")
	}
	if err := m.Fit(&feature.Set{}); err == nil {
		t.Fatal("empty train must error")
	}
}
