package colfmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/dataset"
)

// chunkSize is the granularity of payload reads: CRC accumulation and typed
// decoding proceed chunk by chunk through one reused scratch buffer, so a
// hostile payload-length header can never force an allocation larger than
// the bytes actually present.
const chunkSize = 1 << 20

// ReadFile decodes the PCOL file at path in one streaming pass.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colfmt: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("colfmt: %w", err)
	}
	d, err := Read(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("colfmt: read %s: %w", path, err)
	}
	return d, nil
}

// Read decodes a PCOL stream of at most size bytes. The size bound is what
// keeps allocation proportional to real input rather than to whatever a
// corrupt header claims: every declared section length is charged against
// it before any buffer is sized. The decoded Dataset holds one typed slice
// per column — allocation count is O(columns), independent of row count.
func Read(r io.Reader, size int64) (*Dataset, error) {
	rd := &reader{br: bufio.NewReaderSize(r, 1<<16), budget: size}
	return rd.dataset()
}

// expected per-column encodings, in required file order.
var (
	pipeEncodings = [numPipeCols]byte{
		colPipeID:       encStr,
		colPipeClass:    encDict,
		colPipeMaterial: encDict,
		colPipeCoating:  encDict,
		colPipeDiameter: encF64,
		colPipeLength:   encF64,
		colPipeLaidYear: encI32,
		colPipeSoilCorr: encDict,
		colPipeSoilExp:  encDict,
		colPipeSoilGeo:  encDict,
		colPipeSoilMap:  encDict,
		colPipeTraffic:  encF64,
		colPipeX:        encF64,
		colPipeY:        encF64,
		colPipeSegments: encI32,
	}
	eventEncodings = [numEventCols]byte{
		colEventPipe:    encU32,
		colEventSegment: encI32,
		colEventYear:    encI32,
		colEventDay:     encI32,
		colEventMode:    encDict,
	}
)

type reader struct {
	br      *bufio.Reader
	budget  int64
	scratch []byte
}

// take charges n declared bytes against the remaining input budget.
func (r *reader) take(n uint64) error {
	if r.budget < 0 || n > uint64(r.budget) {
		return fmt.Errorf("declared length %d exceeds remaining input", n)
	}
	r.budget -= int64(n)
	return nil
}

func (r *reader) readFull(b []byte) error {
	if _, err := io.ReadFull(r.br, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("truncated file")
		}
		return err
	}
	return nil
}

func (r *reader) chunkBuf() []byte {
	if len(r.scratch) < chunkSize {
		r.scratch = make([]byte, chunkSize)
	}
	return r.scratch
}

type secHdr struct {
	kind, id, enc byte
	rows          uint64
	payloadLen    uint64
}

func (r *reader) sectionHeader() (secHdr, error) {
	if err := r.take(20); err != nil {
		return secHdr{}, fmt.Errorf("section header: %w", err)
	}
	var b [20]byte
	if err := r.readFull(b[:]); err != nil {
		return secHdr{}, err
	}
	if b[3] != 0 {
		return secHdr{}, fmt.Errorf("nonzero reserved byte in section header")
	}
	return secHdr{
		kind:       b[0],
		id:         b[1],
		enc:        b[2],
		rows:       binary.LittleEndian.Uint64(b[4:12]),
		payloadLen: binary.LittleEndian.Uint64(b[12:20]),
	}, nil
}

// payload reads one section body, accumulating its CRC; finish verifies the
// trailing checksum and that exactly the declared bytes were consumed.
type payload struct {
	r    *reader
	left uint64
	crc  uint32
}

func (r *reader) payload(h secHdr) (*payload, error) {
	if err := r.take(h.payloadLen); err != nil {
		return nil, fmt.Errorf("section payload: %w", err)
	}
	if err := r.take(4); err != nil {
		return nil, fmt.Errorf("section checksum: %w", err)
	}
	return &payload{r: r, left: h.payloadLen}, nil
}

func (p *payload) read(b []byte) error {
	if uint64(len(b)) > p.left {
		return fmt.Errorf("section payload shorter than its contents require")
	}
	if err := p.r.readFull(b); err != nil {
		return err
	}
	p.crc = crc32.Update(p.crc, crc32.IEEETable, b)
	p.left -= uint64(len(b))
	return nil
}

func (p *payload) finish() error {
	if p.left != 0 {
		return fmt.Errorf("section payload has %d undecoded trailing bytes", p.left)
	}
	var b [4]byte
	if err := p.r.readFull(b[:]); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint32(b[:]); got != p.crc {
		return fmt.Errorf("section checksum mismatch: file says %#08x, payload hashes to %#08x", got, p.crc)
	}
	return nil
}

func (r *reader) dataset() (*Dataset, error) {
	var hdr [8]byte
	if err := r.take(8); err != nil {
		return nil, fmt.Errorf("colfmt: %w", err)
	}
	if err := r.readFull(hdr[:]); err != nil {
		return nil, fmt.Errorf("colfmt: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("colfmt: bad magic %q: not a PCOL file", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("colfmt: unsupported format version %d (reader supports %d)", v, Version)
	}
	if f := binary.LittleEndian.Uint16(hdr[6:8]); f != 0 {
		return nil, fmt.Errorf("colfmt: unsupported flags %#04x", f)
	}

	d := &Dataset{}
	numPipes, numEvents, err := r.meta(d)
	if err != nil {
		return nil, fmt.Errorf("colfmt: meta section: %w", err)
	}
	for id := 0; id < numPipeCols; id++ {
		if err := r.pipeColumn(d, byte(id), numPipes); err != nil {
			return nil, fmt.Errorf("colfmt: pipe column %d: %w", id, err)
		}
	}
	for id := 0; id < numEventCols; id++ {
		if err := r.eventColumn(d, byte(id), numEvents, numPipes); err != nil {
			return nil, fmt.Errorf("colfmt: event column %d: %w", id, err)
		}
	}
	h, err := r.sectionHeader()
	if err != nil {
		return nil, fmt.Errorf("colfmt: %w", err)
	}
	if h.kind != secEnd || h.id != 0 || h.enc != 0 || h.rows != 0 || h.payloadLen != 0 {
		return nil, fmt.Errorf("colfmt: expected end marker, got section kind %d", h.kind)
	}
	p, err := r.payload(h)
	if err != nil {
		return nil, fmt.Errorf("colfmt: %w", err)
	}
	if err := p.finish(); err != nil {
		return nil, fmt.Errorf("colfmt: end marker: %w", err)
	}
	if _, err := r.br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("colfmt: trailing data after end marker")
	}

	d.buildEventIndex()
	if err := d.check(); err != nil {
		return nil, err
	}
	return d, nil
}

func (r *reader) meta(d *Dataset) (numPipes, numEvents int, err error) {
	h, err := r.sectionHeader()
	if err != nil {
		return 0, 0, err
	}
	if h.kind != secMeta || h.id != 0 || h.enc != 0 || h.rows != 0 {
		return 0, 0, fmt.Errorf("expected meta section first, got kind %d", h.kind)
	}
	p, err := r.payload(h)
	if err != nil {
		return 0, 0, err
	}
	var lenb [4]byte
	if err := p.read(lenb[:]); err != nil {
		return 0, 0, err
	}
	regionLen := uint64(binary.LittleEndian.Uint32(lenb[:]))
	if 4+regionLen+32 != h.payloadLen {
		return 0, 0, fmt.Errorf("payload length %d inconsistent with region length %d", h.payloadLen, regionLen)
	}
	region := make([]byte, regionLen)
	if err := p.read(region); err != nil {
		return 0, 0, err
	}
	var rest [32]byte
	if err := p.read(rest[:]); err != nil {
		return 0, 0, err
	}
	if err := p.finish(); err != nil {
		return 0, 0, err
	}
	d.Region = string(region)
	d.ObservedFrom = int(int64(binary.LittleEndian.Uint64(rest[0:8])))
	d.ObservedTo = int(int64(binary.LittleEndian.Uint64(rest[8:16])))
	pipes := binary.LittleEndian.Uint64(rest[16:24])
	events := binary.LittleEndian.Uint64(rest[24:32])
	if pipes > maxRows {
		return 0, 0, fmt.Errorf("registry of %d pipes exceeds limit %d", pipes, uint64(maxRows))
	}
	if events > maxRows {
		return 0, 0, fmt.Errorf("event log of %d rows exceeds limit %d", events, uint64(maxRows))
	}
	return int(pipes), int(events), nil
}

func (r *reader) column(kind, id byte, rows int) (*payload, secHdr, error) {
	h, err := r.sectionHeader()
	if err != nil {
		return nil, h, err
	}
	var wantEnc byte
	if kind == secPipe {
		wantEnc = pipeEncodings[id]
	} else {
		wantEnc = eventEncodings[id]
	}
	if h.kind != kind || h.id != id {
		return nil, h, fmt.Errorf("expected section kind %d id %d, got kind %d id %d", kind, id, h.kind, h.id)
	}
	if h.enc != wantEnc {
		return nil, h, fmt.Errorf("expected encoding %d, got %d", wantEnc, h.enc)
	}
	if h.rows != uint64(rows) {
		return nil, h, fmt.Errorf("row count %d disagrees with meta (%d)", h.rows, rows)
	}
	p, err := r.payload(h)
	return p, h, err
}

func (r *reader) pipeColumn(d *Dataset, id byte, rows int) error {
	p, h, err := r.column(secPipe, id, rows)
	if err != nil {
		return err
	}
	c := &d.Pipes
	switch id {
	case colPipeID:
		c.ID, err = r.strCol(p, h, rows)
	case colPipeClass:
		c.Class, err = dictCol(r, p, h, rows, dataset.ParsePipeClass)
	case colPipeMaterial:
		c.Material, err = dictCol(r, p, h, rows, asIs[dataset.Material])
	case colPipeCoating:
		c.Coating, err = dictCol(r, p, h, rows, asIs[dataset.Coating])
	case colPipeDiameter:
		c.DiameterMM, err = r.f64Col(p, h, rows)
	case colPipeLength:
		c.LengthM, err = r.f64Col(p, h, rows)
	case colPipeLaidYear:
		c.LaidYear, err = r.i32Col(p, h, rows)
	case colPipeSoilCorr:
		c.SoilCorrosivity, err = dictCol(r, p, h, rows, asIs[string])
	case colPipeSoilExp:
		c.SoilExpansivity, err = dictCol(r, p, h, rows, asIs[string])
	case colPipeSoilGeo:
		c.SoilGeology, err = dictCol(r, p, h, rows, asIs[string])
	case colPipeSoilMap:
		c.SoilMap, err = dictCol(r, p, h, rows, asIs[string])
	case colPipeTraffic:
		c.DistToTrafficM, err = r.f64Col(p, h, rows)
	case colPipeX:
		c.X, err = r.f64Col(p, h, rows)
	case colPipeY:
		c.Y, err = r.f64Col(p, h, rows)
	case colPipeSegments:
		c.Segments, err = r.i32Col(p, h, rows)
	}
	if err != nil {
		return err
	}
	return p.finish()
}

func (r *reader) eventColumn(d *Dataset, id byte, rows, numPipes int) error {
	p, h, err := r.column(secEvent, id, rows)
	if err != nil {
		return err
	}
	ev := &d.Events
	switch id {
	case colEventPipe:
		// Validating row references during decode keeps buildEventIndex
		// panic-free on corrupt inputs.
		ev.Pipe, err = r.u32Col(p, h, rows, uint32(numPipes))
	case colEventSegment:
		ev.Segment, err = r.i32Col(p, h, rows)
	case colEventYear:
		ev.Year, err = r.i32Col(p, h, rows)
	case colEventDay:
		ev.Day, err = r.i32Col(p, h, rows)
	case colEventMode:
		ev.Mode, err = dictCol(r, p, h, rows, asIs[dataset.FailureMode])
	}
	if err != nil {
		return err
	}
	return p.finish()
}

func asIs[T ~string](s string) (T, error) { return T(s), nil }

func (r *reader) f64Col(p *payload, h secHdr, rows int) ([]float64, error) {
	if h.payloadLen != uint64(rows)*8 {
		return nil, fmt.Errorf("payload length %d != %d rows * 8", h.payloadLen, rows)
	}
	out := make([]float64, rows)
	buf := r.chunkBuf()
	for i := 0; i < rows; {
		n := min(len(buf)/8, rows-i)
		b := buf[:n*8]
		if err := p.read(b); err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			out[i+j] = math.Float64frombits(binary.LittleEndian.Uint64(b[j*8:]))
		}
		i += n
	}
	return out, nil
}

func (r *reader) i32Col(p *payload, h secHdr, rows int) ([]int32, error) {
	if h.payloadLen != uint64(rows)*4 {
		return nil, fmt.Errorf("payload length %d != %d rows * 4", h.payloadLen, rows)
	}
	out := make([]int32, rows)
	buf := r.chunkBuf()
	for i := 0; i < rows; {
		n := min(len(buf)/4, rows-i)
		b := buf[:n*4]
		if err := p.read(b); err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			out[i+j] = int32(binary.LittleEndian.Uint32(b[j*4:]))
		}
		i += n
	}
	return out, nil
}

func (r *reader) u32Col(p *payload, h secHdr, rows int, limit uint32) ([]uint32, error) {
	if h.payloadLen != uint64(rows)*4 {
		return nil, fmt.Errorf("payload length %d != %d rows * 4", h.payloadLen, rows)
	}
	out := make([]uint32, rows)
	buf := r.chunkBuf()
	for i := 0; i < rows; {
		n := min(len(buf)/4, rows-i)
		b := buf[:n*4]
		if err := p.read(b); err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			v := binary.LittleEndian.Uint32(b[j*4:])
			if v >= limit {
				return nil, fmt.Errorf("row %d: value %d out of range (limit %d)", i+j, v, limit)
			}
			out[i+j] = v
		}
		i += n
	}
	return out, nil
}

// strCol decodes an encStr column: one shared blob string plus rows+1
// offsets; every row is a zero-copy slice of the blob.
func (r *reader) strCol(p *payload, h secHdr, rows int) ([]string, error) {
	var b8 [8]byte
	if err := p.read(b8[:]); err != nil {
		return nil, err
	}
	blobLen := binary.LittleEndian.Uint64(b8[:])
	if blobLen > h.payloadLen || 8+blobLen+uint64(rows+1)*4 != h.payloadLen {
		return nil, fmt.Errorf("payload length %d inconsistent with blob of %d bytes and %d rows", h.payloadLen, blobLen, rows)
	}
	blob := make([]byte, blobLen)
	if err := p.read(blob); err != nil {
		return nil, err
	}
	s := string(blob)
	offs := make([]uint32, rows+1)
	buf := r.chunkBuf()
	for i := 0; i <= rows; {
		n := min(len(buf)/4, rows+1-i)
		b := buf[:n*4]
		if err := p.read(b); err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			offs[i+j] = binary.LittleEndian.Uint32(b[j*4:])
		}
		i += n
	}
	if offs[0] != 0 || uint64(offs[rows]) != blobLen {
		return nil, fmt.Errorf("string offsets do not span the blob")
	}
	out := make([]string, rows)
	for i := 0; i < rows; i++ {
		if offs[i] > offs[i+1] {
			return nil, fmt.Errorf("string offsets not monotone at row %d", i)
		}
		out[i] = s[offs[i]:offs[i+1]]
	}
	return out, nil
}

// dictCol decodes an encDict column, converting each dictionary entry once
// with conv; rows share the converted entries' backing.
func dictCol[T any](r *reader, p *payload, h secHdr, rows int, conv func(string) (T, error)) ([]T, error) {
	if h.payloadLen < 2+uint64(rows) {
		return nil, fmt.Errorf("payload length %d too short for %d rows", h.payloadLen, rows)
	}
	var b2 [2]byte
	if err := p.read(b2[:]); err != nil {
		return nil, err
	}
	dictLen := int(binary.LittleEndian.Uint16(b2[:]))
	if dictLen > 256 {
		return nil, fmt.Errorf("dictionary of %d entries exceeds the 256-level cap", dictLen)
	}
	entries := make([]T, dictLen)
	buf := r.chunkBuf()
	for k := 0; k < dictLen; k++ {
		if err := p.read(b2[:]); err != nil {
			return nil, err
		}
		l := int(binary.LittleEndian.Uint16(b2[:]))
		if err := p.read(buf[:l]); err != nil {
			return nil, err
		}
		v, err := conv(string(buf[:l]))
		if err != nil {
			return nil, fmt.Errorf("dictionary entry %d: %w", k, err)
		}
		entries[k] = v
	}
	if p.left != uint64(rows) {
		return nil, fmt.Errorf("dictionary leaves %d bytes for %d row codes", p.left, rows)
	}
	out := make([]T, rows)
	for i := 0; i < rows; {
		n := min(len(buf), rows-i)
		if err := p.read(buf[:n]); err != nil {
			return nil, err
		}
		for j, code := range buf[:n] {
			if int(code) >= dictLen {
				return nil, fmt.Errorf("row %d: dictionary code %d out of range (%d entries)", i+j, code, dictLen)
			}
			out[i+j] = entries[code]
		}
		i += n
	}
	return out, nil
}
