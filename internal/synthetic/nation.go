package synthetic

// Nation-scale presets for the million-pipe data plane. Unlike the paper's
// metropolitan regions, these use the hierarchical generator: pipes cluster
// into districts (contiguous ID blocks laid out as a grid of service
// areas) and soil factors correlate across coarse climate zones, so the
// fixtures have the structure real national utility exports have (cf.
// Weeraddana et al., who train on ~100k+ mains spanning decades). They
// exist to stress the ingest and training paths, not to reproduce any
// published table.

// Metro returns a ~120k-pipe multi-district metropolitan-area preset — the
// mid-size stress fixture (24 districts, 6x6 climate zones).
func Metro(seed int64) Config {
	h := DefaultHazard()
	return Config{
		Region:           "METRO",
		Seed:             seed,
		NumPipes:         120_000,
		CWMFraction:      0.24,
		LaidFrom:         1890,
		LaidTo:           2005,
		LaidSkew:         1.7,
		ObservedFrom:     1998,
		ObservedTo:       2010,
		AreaKM2:          2600,
		SoilZones:        48,
		ClimateZones:     6,
		Districts:        24,
		MeanTrafficDistM: 160,
		SegmentLengthM:   110,
		Eras:             defaultEras(),
		Hazard:           h,
		MissProb:         0.03,
		TargetFailures:   33_000,
	}
}

// Nation returns a ~1M-pipe national preset — the full-scale stress
// fixture for the columnar data plane (160 districts, 12x12 climate
// zones). Generation is streaming-friendly: pipegen with this preset keeps
// memory flat via GenerateStream.
func Nation(seed int64) Config {
	h := DefaultHazard()
	return Config{
		Region:           "NAT",
		Seed:             seed,
		NumPipes:         1_000_000,
		CWMFraction:      0.25,
		LaidFrom:         1880,
		LaidTo:           2005,
		LaidSkew:         1.5,
		ObservedFrom:     1998,
		ObservedTo:       2010,
		AreaKM2:          60_000,
		SoilZones:        120,
		ClimateZones:     12,
		Districts:        160,
		MeanTrafficDistM: 220,
		SegmentLengthM:   115,
		Eras:             defaultEras(),
		Hazard:           h,
		MissProb:         0.03,
		TargetFailures:   275_000,
	}
}
