package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"testing"
)

// FuzzWALReplay corrupts a well-formed single-segment log at a
// fuzz-chosen point — truncation, a bit flip, or a duplicated byte
// range — and asserts the recovery invariants:
//
//   - Open never panics and never errors on corruption it is specified
//     to repair (tail damage).
//   - The records it replays are exactly a prefix of the originals —
//     corruption may cost suffix records, never reorder or invent them.
//   - A record whose frame lies entirely before the corruption point
//     always survives, provided the segment header itself is intact.
func FuzzWALReplay(f *testing.F) {
	f.Add(uint8(3), uint16(20), uint8(0))
	f.Add(uint8(5), uint16(9), uint8(1))
	f.Add(uint8(1), uint16(0), uint8(2))
	f.Add(uint8(8), uint16(500), uint8(0xFF))
	f.Fuzz(func(t *testing.T, nRecords uint8, corruptAt uint16, mode uint8) {
		n := int(nRecords%10) + 1
		dir := t.TempDir()
		w, err := Open(dir, Options{Sync: SyncNever, MetricsName: "wal.fuzz"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want [][]byte
		ends := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			p := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i%7)))
			end, err := w.Append(p)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, p)
			ends = append(ends, end)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		path := w.segPath(1)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off := int(corruptAt) % (len(data) + 1)
		switch mode % 3 {
		case 0: // truncate at off
			data = data[:off]
		case 1: // flip a bit at off
			if off < len(data) {
				data[off] ^= 1 << (mode % 8)
			}
		case 2: // duplicate the tail starting at off (garbage append)
			data = append(data, data[off:]...)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		var got [][]byte
		w2, err := Open(dir, Options{Sync: SyncNever, MetricsName: "wal.fuzz"}, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("Open on corrupt log: %v", err)
		}
		defer w2.Close()

		if len(got) > len(want) {
			// A duplicated tail may re-append whole intact frames; every
			// replayed record must still be one of the originals, in an
			// order whose first len(want) entries are the original prefix.
			got = got[:len(want)]
		}
		for i, p := range got {
			if !bytes.Equal(p, want[i]) {
				t.Fatalf("record %d = %q, want %q (not a prefix)", i, p, want[i])
			}
		}
		// Pre-corruption records must survive when the header is intact.
		headerIntact := off >= headerSize || mode%3 == 2
		if headerIntact {
			for i, end := range ends {
				if end <= int64(off) && i >= len(got) {
					t.Fatalf("record %d (frame ends at %d, corruption at %d) was dropped", i, end, off)
				}
			}
		}
	})
}

// FuzzFrameDecode hammers recoverSegment with arbitrary bytes: recovery
// must never panic or over-allocate regardless of input.
func FuzzFrameDecode(f *testing.F) {
	valid := func(payloads ...string) []byte {
		var b []byte
		b = append(b, Magic...)
		b = binary.LittleEndian.AppendUint16(b, Version)
		b = binary.LittleEndian.AppendUint16(b, 0)
		for _, p := range payloads {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
			b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE([]byte(p)))
			b = append(b, p...)
		}
		return b
	}
	f.Add(valid("hello", "world"))
	f.Add([]byte("PWAL\x01\x00\x00\x00\xff\xff\xff\xff\x00\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(dir+"/wal-00000001.seg", data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{Sync: SyncNever, MetricsName: "wal.fuzz2"}, func(p []byte) error { return nil })
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		w.Close()
	})
}
