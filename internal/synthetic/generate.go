package synthetic

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Truth carries the ground-truth quantities of a generated network, kept
// separate from the dataset so models cannot accidentally see them. Tests
// and diagnostics use it to check that learned rankings correlate with the
// true hazard.
type Truth struct {
	// Frailty is the per-pipe lognormal frailty multiplier, indexed like
	// Network.Pipes().
	Frailty []float64
	// FinalYearRate is each pipe's true expected failure count in the last
	// observed year.
	FinalYearRate []float64
	// TrueFailures is the number of failures generated before recording
	// noise dropped a subset.
	TrueFailures int
	// CalibratedHazard is the hazard actually used for sampling, i.e. the
	// configured hazard with GlobalRate rescaled by the calibration pass.
	// Counterfactual future simulation must use this, not Config.Hazard.
	CalibratedHazard HazardParams
}

// Generate builds a network plus its ground truth from the configuration.
// The same Config (including Seed) always produces identical output.
func Generate(cfg Config) (*dataset.Network, *Truth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	truth := &Truth{
		Frailty:       make([]float64, cfg.NumPipes),
		FinalYearRate: make([]float64, cfg.NumPipes),
	}
	pipes := make([]dataset.Pipe, 0, cfg.NumPipes)
	var failures []dataset.Failure
	hz, trueFailures, err := generateCore(cfg,
		func(i int, p *dataset.Pipe, frailty, finalRate float64) error {
			pipes = append(pipes, *p)
			truth.Frailty[i] = frailty
			truth.FinalYearRate[i] = finalRate
			return nil
		},
		func(f *dataset.Failure) error {
			failures = append(failures, *f)
			return nil
		})
	if err != nil {
		return nil, nil, err
	}
	truth.TrueFailures = trueFailures
	truth.CalibratedHazard = hz

	net := dataset.NewNetwork(cfg.Region, cfg.ObservedFrom, cfg.ObservedTo, pipes, failures)
	if err := net.Validate(); err != nil {
		return nil, nil, fmt.Errorf("synthetic: generated network invalid: %w", err)
	}
	return net, truth, nil
}

// StreamSummary is what GenerateStream can report without ever holding the
// network: the aggregate rows Network.Summarize would produce, plus the
// ground-truth counters a caller needs for logging.
type StreamSummary struct {
	// TrueFailures counts failures generated before recording noise.
	TrueFailures int
	// RecordedFailures counts failures that survived recording noise (the
	// rows actually emitted).
	RecordedFailures int
	// CalibratedHazard is the hazard actually used for sampling.
	CalibratedHazard HazardParams
	// Rows matches Network.Summarize() on the equivalent materialized
	// network: All first, then CWM and RWM where present.
	Rows []dataset.Summary
}

// GenerateStream is Generate without materialization: pipes and failures
// are handed to the callbacks in deterministic order (each pipe in registry
// order, immediately followed by its recorded failures) and never collected
// into slices, so memory stays flat regardless of NumPipes. The emitted
// rows are bit-identical to Generate's for the same Config — Generate is a
// thin collector over the same core (see TestGenerateStreamMatchesGenerate).
// onFailure may be nil when the caller only needs pipes.
func GenerateStream(cfg Config, onPipe func(*dataset.Pipe) error, onFailure func(*dataset.Failure) error) (*StreamSummary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type agg struct {
		pipes, fails     int
		laidFrom, laidTo int
		lenM             float64
	}
	add := func(a *agg, p *dataset.Pipe) {
		if a.pipes == 0 || p.LaidYear < a.laidFrom {
			a.laidFrom = p.LaidYear
		}
		if a.pipes == 0 || p.LaidYear > a.laidTo {
			a.laidTo = p.LaidYear
		}
		a.pipes++
		a.lenM += p.LengthM
	}
	var all, cwm, rwm agg
	var curClass dataset.PipeClass
	recorded := 0
	hz, trueFailures, err := generateCore(cfg,
		func(i int, p *dataset.Pipe, _, _ float64) error {
			curClass = p.Class
			add(&all, p)
			if p.Class == dataset.CriticalMain {
				add(&cwm, p)
			} else {
				add(&rwm, p)
			}
			if onPipe != nil {
				return onPipe(p)
			}
			return nil
		},
		func(f *dataset.Failure) error {
			recorded++
			all.fails++
			// Failures follow their pipe in emission order, so curClass is
			// the class of the failed pipe.
			if curClass == dataset.CriticalMain {
				cwm.fails++
			} else {
				rwm.fails++
			}
			if onFailure != nil {
				return onFailure(f)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	sum := &StreamSummary{
		TrueFailures:     trueFailures,
		RecordedFailures: recorded,
		CalibratedHazard: hz,
	}
	row := func(scope string, a agg) dataset.Summary {
		return dataset.Summary{
			Region:       cfg.Region,
			Scope:        scope,
			NumPipes:     a.pipes,
			NumFailures:  a.fails,
			LaidFrom:     a.laidFrom,
			LaidTo:       a.laidTo,
			ObservedFrom: cfg.ObservedFrom,
			ObservedTo:   cfg.ObservedTo,
			TotalKM:      a.lenM / 1000,
		}
	}
	sum.Rows = append(sum.Rows, row("All", all))
	if cwm.pipes > 0 {
		sum.Rows = append(sum.Rows, row(dataset.CriticalMain.String(), cwm))
	}
	if rwm.pipes > 0 {
		sum.Rows = append(sum.Rows, row(dataset.ReticulationMain.String(), rwm))
	}
	return sum, nil
}

// generateCore is the single generation engine behind Generate and
// GenerateStream. It calls onPipe once per pipe in registry order (with the
// pipe's frailty and true final-year rate), then onFailure for each of that
// pipe's recorded failures in sampling order, and returns the calibrated
// hazard plus the pre-noise failure count.
//
// Determinism contract: each randomness consumer draws from its own split
// RNG stream (pipe attributes, frailties, failure sampling, recording
// noise), so interleaving the draws per pipe yields the exact per-stream
// sequences the original collect-then-sample implementation produced. The
// calibration pass replays the pipe and frailty streams from fresh
// identically-seeded RNGs instead of keeping pipes in memory.
func generateCore(cfg Config,
	onPipe func(i int, p *dataset.Pipe, frailty, finalYearRate float64) error,
	onFailure func(f *dataset.Failure) error,
) (HazardParams, int, error) {
	if err := cfg.Validate(); err != nil {
		return HazardParams{}, 0, err
	}
	rng := stats.NewRNG(cfg.Seed)
	pipeRNG := rng.Split()
	frailtyRNG := rng.Split()
	failRNG := rng.Split()
	noiseRNG := rng.Split()

	zones := newSoilZonesConfig(rng.Split(), cfg)
	sideM := math.Sqrt(cfg.AreaKM2) * 1000

	// Calibration pass: compute the expected failure count under the
	// configured hazard, then rescale so the expectation matches the
	// preset's target (if one is set).
	hz := cfg.Hazard
	if cfg.TargetFailures > 0 {
		crng := stats.NewRNG(cfg.Seed)
		cPipeRNG := crng.Split()
		cFrailtyRNG := crng.Split()
		expected := 0.0
		for i := 0; i < cfg.NumPipes; i++ {
			p := genPipe(cfg, cPipeRNG, zones, sideM, i)
			frailty := cFrailtyRNG.LogNormal(0, cfg.Hazard.FrailtySigma)
			for year := firstActiveYear(&p, cfg); year <= cfg.ObservedTo; year++ {
				r, err := cfg.Hazard.AnnualRate(&p, year, frailty)
				if err != nil {
					return HazardParams{}, 0, err
				}
				expected += r
			}
		}
		expected *= 1 - cfg.MissProb
		if expected <= 0 {
			return HazardParams{}, 0, fmt.Errorf("synthetic: zero expected failures; cannot calibrate to %d", cfg.TargetFailures)
		}
		hz.GlobalRate *= float64(cfg.TargetFailures) / expected
	}

	trueFailures := 0
	var buf []dataset.Failure // per-pipe scratch, reused across pipes
	for i := 0; i < cfg.NumPipes; i++ {
		p := genPipe(cfg, pipeRNG, zones, sideM, i)
		frailty := frailtyRNG.LogNormal(0, cfg.Hazard.FrailtySigma)
		finalRate := 0.0
		buf = buf[:0]
		for year := firstActiveYear(&p, cfg); year <= cfg.ObservedTo; year++ {
			rate, err := hz.AnnualRate(&p, year, frailty)
			if err != nil {
				return HazardParams{}, 0, err
			}
			if year == cfg.ObservedTo {
				finalRate = rate
			}
			// Cap pathological rates: no pipe plausibly averages more than
			// one event per segment per year.
			if limit := float64(p.Segments); rate > limit {
				rate = limit
			}
			n := failRNG.Poisson(rate)
			for e := 0; e < n; e++ {
				trueFailures++
				if noiseRNG.Bernoulli(cfg.MissProb) {
					continue // event happened but was never recorded
				}
				mode := dataset.ModeBreak
				if failRNG.Bernoulli(0.3) {
					mode = dataset.ModeLeak
				}
				buf = append(buf, dataset.Failure{
					PipeID:  p.ID,
					Segment: failRNG.Intn(p.Segments),
					Year:    year,
					Day:     1 + failRNG.Intn(365),
					Mode:    mode,
				})
			}
		}
		if err := onPipe(i, &p, frailty, finalRate); err != nil {
			return HazardParams{}, 0, err
		}
		for e := range buf {
			if err := onFailure(&buf[e]); err != nil {
				return HazardParams{}, 0, err
			}
		}
	}
	return hz, trueFailures, nil
}

func firstActiveYear(p *dataset.Pipe, cfg Config) int {
	if p.LaidYear > cfg.ObservedFrom {
		return p.LaidYear
	}
	return cfg.ObservedFrom
}

func genPipe(cfg Config, rng *stats.RNG, zones *soilZones, sideM float64, i int) dataset.Pipe {
	var p dataset.Pipe
	if cfg.Districts > 0 {
		// Hierarchical topology: contiguous ID blocks per district, so IDs
		// stay lexicographically ordered by registry row.
		p.ID = fmt.Sprintf("%s-D%03d-%07d", cfg.Region, districtOf(i, cfg), i)
	} else {
		p.ID = fmt.Sprintf("%s-%06d", cfg.Region, i)
	}

	// Laid year: skewed toward the past for LaidSkew > 1.
	span := float64(cfg.LaidTo - cfg.LaidFrom)
	frac := math.Pow(rng.Float64(), cfg.LaidSkew)
	p.LaidYear = cfg.LaidFrom + int(frac*span+0.5)

	// Class, then diameter conditional on class.
	isCWM := rng.Bernoulli(cfg.CWMFraction)
	if isCWM {
		diams := []float64{300, 375, 450, 500, 600, 750}
		weights := []float64{0.35, 0.25, 0.18, 0.12, 0.07, 0.03}
		p.DiameterMM = diams[rng.Categorical(weights)]
	} else {
		diams := []float64{63, 100, 150, 200, 250}
		weights := []float64{0.08, 0.37, 0.30, 0.17, 0.08}
		p.DiameterMM = diams[rng.Categorical(weights)]
	}
	p.Class = dataset.ClassForDiameter(p.DiameterMM)

	// Length: lognormal; critical mains run longer.
	if isCWM {
		p.LengthM = clamp(rng.LogNormal(math.Log(320), 0.7), 30, 5000)
	} else {
		p.LengthM = clamp(rng.LogNormal(math.Log(130), 0.8), 10, 2500)
	}
	p.Segments = int(math.Ceil(p.LengthM / cfg.SegmentLengthM))
	if p.Segments < 1 {
		p.Segments = 1
	}

	// Material from the era mix of the laid year.
	era := cfg.Eras[0]
	for _, e := range cfg.Eras {
		if p.LaidYear >= e.FromYear {
			era = e
		}
	}
	ws := make([]float64, len(era.Mix))
	for j, m := range era.Mix {
		ws[j] = m.Weight
	}
	p.Material = era.Mix[rng.Categorical(ws)].Material

	p.Coating = genCoating(rng, p.Material)

	// Location and spatially coherent soil. With districts configured the
	// network is laid out as a grid of district cells (each district's
	// pipes cluster spatially, like the service areas of a national
	// utility); otherwise pipes scatter uniformly over the region.
	if cfg.Districts > 0 {
		g := districtGridSize(cfg.Districts)
		d := districtOf(i, cfg)
		cellM := sideM / float64(g)
		p.X = (float64(d%g) + rng.Float64()) * cellM
		p.Y = (float64(d/g) + rng.Float64()) * cellM
	} else {
		p.X = rng.Uniform(0, sideM)
		p.Y = rng.Uniform(0, sideM)
	}
	soil := zones.at(p.X/sideM, p.Y/sideM)
	p.SoilCorrosivity = soil.corrosivity
	p.SoilExpansivity = soil.expansivity
	p.SoilGeology = soil.geology
	p.SoilMap = soil.soilMap

	p.DistToTrafficM = rng.Exp(1 / cfg.MeanTrafficDistM)
	return p
}

// districtOf assigns pipe i to a district as a contiguous block of the
// registry (no RNG draw, so legacy draw sequences are untouched).
func districtOf(i int, cfg Config) int {
	return i * cfg.Districts / cfg.NumPipes
}

// districtGridSize returns the side of the smallest square grid holding n
// district cells.
func districtGridSize(n int) int {
	g := int(math.Ceil(math.Sqrt(float64(n))))
	if g < 1 {
		g = 1
	}
	return g
}

func genCoating(rng *stats.RNG, m dataset.Material) dataset.Coating {
	switch m {
	case dataset.CI:
		if rng.Bernoulli(0.5) {
			return dataset.CoatingTar
		}
	case dataset.CICL:
		if rng.Bernoulli(0.3) {
			return dataset.CoatingTar
		}
	case dataset.DICL:
		if rng.Bernoulli(0.5) {
			return dataset.CoatingPESleeve
		}
	case dataset.STEEL:
		if rng.Bernoulli(0.6) {
			return dataset.CoatingTar
		}
	}
	return dataset.CoatingNone
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// soilZones is a grid of per-cell soil factor draws giving spatially
// coherent categorical fields.
type soilZones struct {
	n     int
	cells []soilCell
}

type soilCell struct {
	corrosivity, expansivity, geology, soilMap string
}

// Base categorical weights of the soil factor fields.
var (
	soilCorrW = []float64{0.3, 0.4, 0.2, 0.1}
	soilExpW  = []float64{0.35, 0.3, 0.25, 0.1}
	soilGeoW  = []float64{0.35, 0.25, 0.2, 0.15, 0.05}
	soilMapW  = []float64{0.2, 0.25, 0.25, 0.25, 0.05}
)

// newSoilZonesConfig picks the flat or climate-correlated zone generator
// from the configuration. The flat path draws exactly the sequence the
// pre-climate generator did, keeping legacy presets bit-identical.
func newSoilZonesConfig(rng *stats.RNG, cfg Config) *soilZones {
	if cfg.ClimateZones > 0 {
		return newSoilZonesHier(rng, cfg.SoilZones, cfg.ClimateZones)
	}
	return newSoilZones(rng, cfg.SoilZones)
}

func newSoilZones(rng *stats.RNG, n int) *soilZones {
	z := &soilZones{n: n, cells: make([]soilCell, n*n)}
	for i := range z.cells {
		z.cells[i] = soilCell{
			corrosivity: dataset.SoilCorrosivityLevels[rng.Categorical(soilCorrW)],
			expansivity: dataset.SoilExpansivityLevels[rng.Categorical(soilExpW)],
			geology:     dataset.SoilGeologyLevels[rng.Categorical(soilGeoW)],
			soilMap:     dataset.SoilMapLevels[rng.Categorical(soilMapW)],
		}
	}
	return z
}

// newSoilZonesHier layers a coarse climate grid over the fine soil grid:
// each climate cell draws a dominant level per soil factor from the base
// weights, and the soil cells inside it draw from the base weights with the
// dominant level boosted. Soil stays locally varied but is correlated
// across whole climate zones — the nation-scale analogue of regional soil
// maps (cf. the hierarchical topology generators used for national network
// synthesis).
func newSoilZonesHier(rng *stats.RNG, n, climate int) *soilZones {
	// climateBoost concentrates a zone's soil draws on its dominant level
	// without eliminating local variation.
	const climateBoost = 4.0
	type climCell struct {
		corr, exp, geo, soilMap int
	}
	clim := make([]climCell, climate*climate)
	for i := range clim {
		clim[i] = climCell{
			corr:    rng.Categorical(soilCorrW),
			exp:     rng.Categorical(soilExpW),
			geo:     rng.Categorical(soilGeoW),
			soilMap: rng.Categorical(soilMapW),
		}
	}
	boost := func(base []float64, dominant int) []float64 {
		w := append([]float64(nil), base...)
		w[dominant] *= climateBoost
		return w
	}
	z := &soilZones{n: n, cells: make([]soilCell, n*n)}
	for i := range z.cells {
		a, b := i/n, i%n
		c := clim[(a*climate/n)*climate+(b*climate/n)]
		z.cells[i] = soilCell{
			corrosivity: dataset.SoilCorrosivityLevels[rng.Categorical(boost(soilCorrW, c.corr))],
			expansivity: dataset.SoilExpansivityLevels[rng.Categorical(boost(soilExpW, c.exp))],
			geology:     dataset.SoilGeologyLevels[rng.Categorical(boost(soilGeoW, c.geo))],
			soilMap:     dataset.SoilMapLevels[rng.Categorical(boost(soilMapW, c.soilMap))],
		}
	}
	return z
}

// at returns the cell for normalized coordinates in [0, 1].
func (z *soilZones) at(u, v float64) soilCell {
	clampIdx := func(x float64) int {
		i := int(x * float64(z.n))
		if i < 0 {
			i = 0
		}
		if i >= z.n {
			i = z.n - 1
		}
		return i
	}
	return z.cells[clampIdx(u)*z.n+clampIdx(v)]
}
