package synthetic

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// smallConfig returns a fast config for unit tests (~1.5k pipes).
func smallConfig(seed int64) Config {
	cfg, err := RegionA(seed).Scaled(0.1)
	if err != nil {
		panic(err)
	}
	return cfg
}

func TestGenerateDeterminism(t *testing.T) {
	a, _, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPipes() != b.NumPipes() || a.NumFailures() != b.NumFailures() {
		t.Fatalf("same seed differs: %d/%d vs %d/%d",
			a.NumPipes(), a.NumFailures(), b.NumPipes(), b.NumFailures())
	}
	for i := range a.Pipes() {
		if a.Pipes()[i] != b.Pipes()[i] {
			t.Fatalf("pipe %d differs", i)
		}
	}
	c, _, err := Generate(smallConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFailures() == a.NumFailures() && c.Pipes()[0] == a.Pipes()[0] {
		t.Fatal("different seeds produced identical output")
	}
}

func TestGenerateValidNetwork(t *testing.T) {
	net, truth, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("generated network invalid: %v", err)
	}
	if len(truth.Frailty) != net.NumPipes() || len(truth.FinalYearRate) != net.NumPipes() {
		t.Fatal("truth arrays sized wrong")
	}
	for i, f := range truth.Frailty {
		if f <= 0 {
			t.Fatalf("frailty %d = %v", i, f)
		}
	}
	if truth.TrueFailures < net.NumFailures() {
		t.Fatalf("recorded %d > true %d failures", net.NumFailures(), truth.TrueFailures)
	}
}

func TestCalibrationHitsTarget(t *testing.T) {
	cfg := smallConfig(7)
	net, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := float64(cfg.TargetFailures)
	got := float64(net.NumFailures())
	// Poisson noise around the calibrated expectation: allow 15 %.
	if math.Abs(got-target)/target > 0.15 {
		t.Fatalf("failures = %v, calibration target %v", got, target)
	}
}

func TestClassMixAndImbalance(t *testing.T) {
	cfg := smallConfig(3)
	net, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cwm := net.SubsetByClass(dataset.CriticalMain)
	frac := float64(cwm.NumPipes()) / float64(net.NumPipes())
	if math.Abs(frac-cfg.CWMFraction) > 0.05 {
		t.Fatalf("CWM fraction %v, want about %v", frac, cfg.CWMFraction)
	}
	// The class imbalance that motivates the paper: most pipes never fail
	// in the test year.
	split, err := dataset.PaperSplit(net)
	if err != nil {
		t.Fatal(err)
	}
	posRate := float64(split.TestFailureCount()) / float64(net.NumPipes())
	if posRate > 0.15 {
		t.Fatalf("test-year positive rate %v implausibly high", posRate)
	}
	if split.TestFailureCount() == 0 {
		t.Fatal("no failures at all in test year; generator broken")
	}
	// CWM failure rate per pipe should be lower than RWM (larger, better
	// protected pipes), matching published summaries.
	rwm := net.SubsetByClass(dataset.ReticulationMain)
	cwmRate := float64(cwm.NumFailures()) / float64(cwm.NumPipes())
	rwmRate := float64(rwm.NumFailures()) / float64(rwm.NumPipes())
	if cwmRate >= rwmRate {
		t.Fatalf("CWM rate %v should be below RWM rate %v", cwmRate, rwmRate)
	}
}

func TestOlderPipesFailMore(t *testing.T) {
	net, _, err := Generate(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	// Split pipes at the median laid year; the older half must account for
	// more failures (the ground truth ages with Weibull shape > 1 for the
	// dominant materials).
	years := make([]float64, net.NumPipes())
	for i, p := range net.Pipes() {
		years[i] = float64(p.LaidYear)
	}
	med := stats.Median(years)
	oldF, newF := 0, 0
	for _, p := range net.Pipes() {
		c := net.FailureCount(p.ID, net.ObservedFrom, net.ObservedTo)
		if float64(p.LaidYear) <= med {
			oldF += c
		} else {
			newF += c
		}
	}
	if oldF <= newF {
		t.Fatalf("older half has %d failures, newer half %d; ageing signal missing", oldF, newF)
	}
}

func TestTruthRateCorrelatesWithObservedFailures(t *testing.T) {
	net, truth, err := Generate(smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, net.NumPipes())
	for i, p := range net.Pipes() {
		counts[i] = float64(net.FailureCount(p.ID, net.ObservedFrom, net.ObservedTo))
	}
	rho := stats.Spearman(truth.FinalYearRate, counts)
	if rho < 0.2 {
		t.Fatalf("truth rate vs observed failures Spearman %v; generator signal too weak", rho)
	}
}

func TestLaidSkewShiftsAges(t *testing.T) {
	young := smallConfig(5)
	young.LaidSkew = 0.5 // concentrate recent
	old := smallConfig(5)
	old.LaidSkew = 3.0 // concentrate past
	ny, _, err := Generate(young)
	if err != nil {
		t.Fatal(err)
	}
	no, _, err := Generate(old)
	if err != nil {
		t.Fatal(err)
	}
	meanYear := func(n *dataset.Network) float64 {
		s := 0.0
		for _, p := range n.Pipes() {
			s += float64(p.LaidYear)
		}
		return s / float64(n.NumPipes())
	}
	if meanYear(ny) <= meanYear(no) {
		t.Fatalf("skew 0.5 mean laid %v should exceed skew 3 mean %v", meanYear(ny), meanYear(no))
	}
}

func TestSoilSpatialCoherence(t *testing.T) {
	net, _, err := Generate(smallConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	// Nearby pipes should share soil more often than far-apart pipes.
	pipes := net.Pipes()
	sameNear, near, sameFar, far := 0, 0, 0, 0
	for i := 0; i < len(pipes); i += 7 {
		for j := i + 1; j < len(pipes) && j < i+40; j++ {
			dx, dy := pipes[i].X-pipes[j].X, pipes[i].Y-pipes[j].Y
			d := math.Hypot(dx, dy)
			same := pipes[i].SoilGeology == pipes[j].SoilGeology
			if d < 500 {
				near++
				if same {
					sameNear++
				}
			} else if d > 5000 {
				far++
				if same {
					sameFar++
				}
			}
		}
	}
	if near < 10 || far < 10 {
		t.Skip("not enough pairs for coherence check")
	}
	pNear := float64(sameNear) / float64(near)
	pFar := float64(sameFar) / float64(far)
	if pNear <= pFar {
		t.Fatalf("soil not spatially coherent: near agreement %v <= far %v", pNear, pFar)
	}
}

func TestPresetLookup(t *testing.T) {
	for _, name := range []string{"A", "B", "C"} {
		cfg, err := Preset(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Region != name {
			t.Fatalf("preset %s region %s", name, cfg.Region)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
	}
	if _, err := Preset("Z", 1); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestConfigValidateRejections(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.NumPipes = 0 },
		func(c *Config) { c.CWMFraction = 1.5 },
		func(c *Config) { c.LaidFrom = 2050 },
		func(c *Config) { c.ObservedFrom = 2050 },
		func(c *Config) { c.LaidTo = 2050 },
		func(c *Config) { c.AreaKM2 = 0 },
		func(c *Config) { c.SoilZones = 0 },
		func(c *Config) { c.SegmentLengthM = 0 },
		func(c *Config) { c.Eras = nil },
		func(c *Config) { c.MissProb = 1 },
		func(c *Config) { c.LaidSkew = 0 },
		func(c *Config) { c.Eras = []Era{{FromYear: 10}, {FromYear: 5}} },
	}
	for i, mut := range mutations {
		cfg := RegionA(1)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestScaled(t *testing.T) {
	cfg := RegionA(1)
	s, err := cfg.Scaled(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPipes != cfg.NumPipes/10 {
		t.Fatalf("scaled pipes %d", s.NumPipes)
	}
	if s.TargetFailures != cfg.TargetFailures/10 {
		t.Fatalf("scaled target %d", s.TargetFailures)
	}
	if _, err := cfg.Scaled(0); err == nil {
		t.Fatal("scale 0 must error")
	}
	if _, err := cfg.Scaled(2); err == nil {
		t.Fatal("scale 2 must error")
	}
}

func TestAgingFactorUnknownMaterial(t *testing.T) {
	h := DefaultHazard()
	if _, err := h.AgingFactor("ADAMANTIUM", 10); err == nil {
		t.Fatal("unknown material must error")
	}
}

func TestAgingFactorMonotoneForAgingMaterials(t *testing.T) {
	h := DefaultHazard()
	f10, err := h.AgingFactor(dataset.CI, 10)
	if err != nil {
		t.Fatal(err)
	}
	f60, err := h.AgingFactor(dataset.CI, 60)
	if err != nil {
		t.Fatal(err)
	}
	if f60 <= f10 {
		t.Fatalf("CI ageing factor must increase: %v vs %v", f10, f60)
	}
	// PVC (shape < 1) must not increase.
	p10, _ := h.AgingFactor(dataset.PVC, 10)
	p60, _ := h.AgingFactor(dataset.PVC, 60)
	if p60 >= p10 {
		t.Fatalf("PVC ageing factor must decrease: %v vs %v", p10, p60)
	}
}

func TestAnnualRateCovariateDirections(t *testing.T) {
	h := DefaultHazard()
	base := dataset.Pipe{
		ID: "X", Material: dataset.CICL, Coating: dataset.CoatingNone,
		DiameterMM: 150, LengthM: 100, LaidYear: 1950,
		SoilCorrosivity: "MODERATE", SoilExpansivity: "SLIGHT",
		SoilGeology: "SANDSTONE", SoilMap: "COLLUVIAL",
		DistToTrafficM: 1000, Segments: 1,
	}
	rate := func(p dataset.Pipe) float64 {
		r, err := h.AnnualRate(&p, 2005, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r0 := rate(base)

	worse := base
	worse.SoilCorrosivity = "SEVERE"
	if rate(worse) <= r0 {
		t.Fatal("severe corrosivity must raise the rate")
	}
	longer := base
	longer.LengthM = 200
	if got := rate(longer); math.Abs(got/r0-2) > 1e-9 {
		t.Fatalf("doubling length must double the rate (LengthExp=1): ratio %v", got/r0)
	}
	nearTraffic := base
	nearTraffic.DistToTrafficM = 0
	if rate(nearTraffic) <= r0 {
		t.Fatal("traffic proximity must raise the rate")
	}
	bigger := base
	bigger.DiameterMM = 600
	if rate(bigger) >= r0 {
		t.Fatal("larger diameter must lower the rate (negative exponent)")
	}
	sleeved := base
	sleeved.Coating = dataset.CoatingPESleeve
	if rate(sleeved) >= r0 {
		t.Fatal("PE sleeve must lower the rate")
	}
	frail, err := h.AnnualRate(&base, 2005, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frail/r0-2) > 1e-9 {
		t.Fatal("frailty must scale the rate linearly")
	}
}
