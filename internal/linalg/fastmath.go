package linalg

import (
	"fmt"
	"sync/atomic"
)

// Fast-math kernels: reassociated, multi-accumulator variants of the hot
// float kernels. They trade the exact sequential summation order for
// independent partial sums that break the loop-carried addition
// dependency, so each add can issue as soon as its lane's previous add
// retires.
//
// The contract (pinned by internal/kerneltest):
//
//   - Exact kernels (DotExact, MatVecExact) are the default and stay
//     bit-identical to the naive sequential loop. Everything downstream —
//     fitted weights, goldens, ETags — is reproducible by construction.
//   - Fast kernels (DotFast, MatVecFast) may differ from the exact sum,
//     but only by reassociation rounding: |fast − exact| is bounded by a
//     small multiple of one ULP of Σ|aᵢ·bᵢ| (the unsigned magnitude of
//     the summation, which is the right anchor under cancellation).
//   - The dispatching wrappers (Dot, MatVec) follow the process-wide
//     SetFastMath switch, which is off by default and opt-in via the
//     -fast-math CLI flags. Flipping it mid-training is not supported:
//     set it once at startup, before any fit.
//
// On inputs whose products are all representable integers the
// reassociated sums are exact, hence bit-identical to the exact kernels —
// the tail tests use that to pin remainder-lane handling.

// fastMath is the process-wide reassociation opt-in. An atomic rather
// than a plain bool only so concurrent readers are race-clean; the
// supported pattern is a single store at startup.
var fastMath atomic.Bool

// SetFastMath enables (or disables) the reassociated fast-math kernels
// behind Dot and MatVec. Call it once at process startup; models trained
// with fast math on are not bit-comparable to exact-mode models.
func SetFastMath(on bool) { fastMath.Store(on) }

// FastMath reports whether the fast-math kernels are enabled.
func FastMath() bool { return fastMath.Load() }

// DotFast is the reassociated inner product: four independent
// accumulator lanes over the unrolled body, combined pairwise at the
// end, with the scalar tail summed separately. It panics on length
// mismatch exactly like DotExact.
func DotFast(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	tail := 0.0
	for ; i < len(a); i++ {
		tail += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + tail
}

// MatVecFast is the reassociated matrix-vector kernel: rows are blocked
// in pairs sharing one streaming pass over x, and each row accumulates
// into four independent lanes (eight live accumulators per block).
// Remainder rows fall back to DotFast. Shape panics match MatVecExact.
func MatVecFast(dst, flat []float64, stride int, x []float64) {
	checkMatVec(dst, flat, stride, x)
	r := 0
	for ; r+2 <= len(dst); r += 2 {
		base := r * stride
		r0 := flat[base : base+stride][:len(x)]
		r1 := flat[base+stride : base+2*stride][:len(x)]
		var a0, a1, a2, a3 float64
		var b0, b1, b2, b3 float64
		j := 0
		for ; j+4 <= len(x); j += 4 {
			x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3]
			a0 += r0[j] * x0
			a1 += r0[j+1] * x1
			a2 += r0[j+2] * x2
			a3 += r0[j+3] * x3
			b0 += r1[j] * x0
			b1 += r1[j+1] * x1
			b2 += r1[j+2] * x2
			b3 += r1[j+3] * x3
		}
		ta, tb := 0.0, 0.0
		for ; j < len(x); j++ {
			ta += r0[j] * x[j]
			tb += r1[j] * x[j]
		}
		dst[r] = ((a0 + a1) + (a2 + a3)) + ta
		dst[r+1] = ((b0 + b1) + (b2 + b3)) + tb
	}
	for ; r < len(dst); r++ {
		dst[r] = DotFast(flat[r*stride:(r+1)*stride], x)
	}
}
