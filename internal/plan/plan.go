// Package plan turns risk rankings into budget-constrained inspection
// plans — the operational step the reproduced paper's prioritisation feeds.
// Given calibrated failure probabilities, a cost model, and a budget, it
// selects the inspection set greedily by expected net benefit per unit
// cost (the classic knapsack-density heuristic utilities actually use) and
// can score a plan against realized failures afterwards.
package plan

import (
	"errors"
	"fmt"
	"sort"
)

// CostModel prices inspections and failures.
type CostModel struct {
	// InspectionPerKM is the condition-assessment cost per kilometre.
	InspectionPerKM float64
	// FailureCost is the expected total cost of one unprevented failure
	// (emergency repair, water loss, third-party damage, disruption).
	FailureCost float64
	// PreventionRate is the probability that inspecting a pipe that would
	// have failed actually prevents the failure (condition assessment is
	// imperfect); 0 defaults to 1.
	PreventionRate float64
}

// Validate checks the cost model for usable values.
func (c CostModel) Validate() error {
	switch {
	case c.InspectionPerKM < 0:
		return fmt.Errorf("plan: negative inspection cost %v", c.InspectionPerKM)
	case c.FailureCost <= 0:
		return fmt.Errorf("plan: non-positive failure cost %v", c.FailureCost)
	case c.PreventionRate < 0 || c.PreventionRate > 1:
		return fmt.Errorf("plan: prevention rate %v out of [0,1]", c.PreventionRate)
	}
	return nil
}

func (c CostModel) preventionRate() float64 {
	if c.PreventionRate == 0 {
		return 1
	}
	return c.PreventionRate
}

// Candidate is one pipe eligible for inspection.
type Candidate struct {
	ID string
	// FailProb is the calibrated probability of failure next year.
	FailProb float64
	// LengthM is the pipe length (drives inspection cost).
	LengthM float64
}

// Budget bounds a plan. Zero fields are unconstrained, but at least one of
// MaxLengthM / MaxCount / MaxSpend must be set.
type Budget struct {
	// MaxLengthM caps the total inspected length in metres.
	MaxLengthM float64
	// MaxCount caps the number of inspected pipes.
	MaxCount int
	// MaxSpend caps the inspection spend under the cost model.
	MaxSpend float64
}

// ErrNoBudget is returned when every budget dimension is unconstrained.
var ErrNoBudget = errors.New("plan: budget must constrain at least one dimension")

// candProbErr and candLenErr are the candidate-validation errors shared
// by Greedy and BuildPrefix, so both paths reject bad input with
// identical messages.
func candProbErr(c Candidate) error {
	return fmt.Errorf("plan: candidate %q probability %v out of [0,1]", c.ID, c.FailProb)
}

func candLenErr(c Candidate) error {
	return fmt.Errorf("plan: candidate %q non-positive length %v", c.ID, c.LengthM)
}

// Plan is a selected inspection set with its expected economics.
type Plan struct {
	Selected []Candidate
	// TotalLengthM is the summed length of the selected pipes.
	TotalLengthM float64
	// InspectionCost is the plan's cost under the cost model.
	InspectionCost float64
	// ExpectedPrevented is the expected number of failures prevented.
	ExpectedPrevented float64
	// ExpectedBenefit is ExpectedPrevented x FailureCost.
	ExpectedBenefit float64
	// ExpectedNet is ExpectedBenefit − InspectionCost.
	ExpectedNet float64
}

// Greedy builds a plan by expected-net-benefit density: candidates are
// ranked by (prevented-failure value − inspection cost) per metre, and
// selected while they fit the budget and have positive expected net
// benefit. Ties and near-zero-length pipes are handled deterministically.
func Greedy(cands []Candidate, cm CostModel, b Budget) (*Plan, error) {
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	if b.MaxLengthM <= 0 && b.MaxCount <= 0 && b.MaxSpend <= 0 {
		return nil, ErrNoBudget
	}
	for _, c := range cands {
		if c.FailProb < 0 || c.FailProb > 1 {
			return nil, candProbErr(c)
		}
		if c.LengthM <= 0 {
			return nil, candLenErr(c)
		}
	}
	prev := cm.preventionRate()
	type scored struct {
		c       Candidate
		net     float64
		density float64
	}
	items := make([]scored, 0, len(cands))
	for _, c := range cands {
		cost := c.LengthM / 1000 * cm.InspectionPerKM
		benefit := c.FailProb * prev * cm.FailureCost
		net := benefit - cost
		items = append(items, scored{c: c, net: net, density: net / c.LengthM})
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].density != items[j].density {
			return items[i].density > items[j].density
		}
		return items[i].c.ID < items[j].c.ID
	})

	p := &Plan{}
	for _, it := range items {
		if it.net <= 0 {
			break // everything after is net-negative too
		}
		cost := it.c.LengthM / 1000 * cm.InspectionPerKM
		if b.MaxLengthM > 0 && p.TotalLengthM+it.c.LengthM > b.MaxLengthM {
			continue
		}
		if b.MaxCount > 0 && len(p.Selected) >= b.MaxCount {
			break
		}
		if b.MaxSpend > 0 && p.InspectionCost+cost > b.MaxSpend {
			continue
		}
		p.Selected = append(p.Selected, it.c)
		p.TotalLengthM += it.c.LengthM
		p.InspectionCost += cost
		p.ExpectedPrevented += it.c.FailProb * prev
	}
	p.ExpectedBenefit = p.ExpectedPrevented * cm.FailureCost
	p.ExpectedNet = p.ExpectedBenefit - p.InspectionCost
	return p, nil
}

// IDs returns the selected pipe IDs in selection order (nil for an
// empty plan, so JSON encodings distinguish "no selection" naturally).
func (p *Plan) IDs() []string {
	if len(p.Selected) == 0 {
		return nil
	}
	ids := make([]string, len(p.Selected))
	for i, c := range p.Selected {
		ids[i] = c.ID
	}
	return ids
}

// Outcome is the realized performance of a plan against the actual
// failures of the planned year.
type Outcome struct {
	// Inspected is the number of planned pipes.
	Inspected int
	// Caught is the number of planned pipes that actually failed.
	Caught int
	// TotalFailures is the number of failing pipes in the whole candidate
	// universe.
	TotalFailures int
	// DetectionRate is Caught / TotalFailures (0 when no failures).
	DetectionRate float64
	// RealizedBenefit prices the caught failures under the cost model.
	RealizedBenefit float64
	// RealizedNet is RealizedBenefit − InspectionCost.
	RealizedNet float64
}

// Evaluate scores a plan against the realized failure set (pipe ID → failed).
func Evaluate(p *Plan, cm CostModel, failed map[string]bool) Outcome {
	out := Outcome{Inspected: len(p.Selected)}
	for _, f := range failed {
		if f {
			out.TotalFailures++
		}
	}
	for _, c := range p.Selected {
		if failed[c.ID] {
			out.Caught++
		}
	}
	if out.TotalFailures > 0 {
		out.DetectionRate = float64(out.Caught) / float64(out.TotalFailures)
	}
	out.RealizedBenefit = float64(out.Caught) * cm.preventionRate() * cm.FailureCost
	out.RealizedNet = out.RealizedBenefit - p.InspectionCost
	return out
}
