package synthetic

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Truth carries the ground-truth quantities of a generated network, kept
// separate from the dataset so models cannot accidentally see them. Tests
// and diagnostics use it to check that learned rankings correlate with the
// true hazard.
type Truth struct {
	// Frailty is the per-pipe lognormal frailty multiplier, indexed like
	// Network.Pipes().
	Frailty []float64
	// FinalYearRate is each pipe's true expected failure count in the last
	// observed year.
	FinalYearRate []float64
	// TrueFailures is the number of failures generated before recording
	// noise dropped a subset.
	TrueFailures int
	// CalibratedHazard is the hazard actually used for sampling, i.e. the
	// configured hazard with GlobalRate rescaled by the calibration pass.
	// Counterfactual future simulation must use this, not Config.Hazard.
	CalibratedHazard HazardParams
}

// Generate builds a network plus its ground truth from the configuration.
// The same Config (including Seed) always produces identical output.
func Generate(cfg Config) (*dataset.Network, *Truth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	pipeRNG := rng.Split()
	frailtyRNG := rng.Split()
	failRNG := rng.Split()
	noiseRNG := rng.Split()

	zones := newSoilZones(rng.Split(), cfg.SoilZones)
	sideM := math.Sqrt(cfg.AreaKM2) * 1000

	pipes := make([]dataset.Pipe, cfg.NumPipes)
	for i := range pipes {
		pipes[i] = genPipe(cfg, pipeRNG, zones, sideM, i)
	}

	truth := &Truth{
		Frailty:       make([]float64, cfg.NumPipes),
		FinalYearRate: make([]float64, cfg.NumPipes),
	}
	for i := range truth.Frailty {
		truth.Frailty[i] = frailtyRNG.LogNormal(0, cfg.Hazard.FrailtySigma)
	}

	// Calibration pass: compute the expected failure count under the
	// configured hazard, then rescale so the expectation matches the
	// preset's target (if one is set).
	hz := cfg.Hazard
	if cfg.TargetFailures > 0 {
		expected := 0.0
		for i := range pipes {
			for year := firstActiveYear(&pipes[i], cfg); year <= cfg.ObservedTo; year++ {
				r, err := hz.AnnualRate(&pipes[i], year, truth.Frailty[i])
				if err != nil {
					return nil, nil, err
				}
				expected += r
			}
		}
		expected *= 1 - cfg.MissProb
		if expected <= 0 {
			return nil, nil, fmt.Errorf("synthetic: zero expected failures; cannot calibrate to %d", cfg.TargetFailures)
		}
		hz.GlobalRate *= float64(cfg.TargetFailures) / expected
	}
	truth.CalibratedHazard = hz

	var failures []dataset.Failure
	for i := range pipes {
		p := &pipes[i]
		for year := firstActiveYear(p, cfg); year <= cfg.ObservedTo; year++ {
			rate, err := hz.AnnualRate(p, year, truth.Frailty[i])
			if err != nil {
				return nil, nil, err
			}
			if year == cfg.ObservedTo {
				truth.FinalYearRate[i] = rate
			}
			// Cap pathological rates: no pipe plausibly averages more than
			// one event per segment per year.
			if limit := float64(p.Segments); rate > limit {
				rate = limit
			}
			n := failRNG.Poisson(rate)
			for e := 0; e < n; e++ {
				truth.TrueFailures++
				if noiseRNG.Bernoulli(cfg.MissProb) {
					continue // event happened but was never recorded
				}
				mode := dataset.ModeBreak
				if failRNG.Bernoulli(0.3) {
					mode = dataset.ModeLeak
				}
				failures = append(failures, dataset.Failure{
					PipeID:  p.ID,
					Segment: failRNG.Intn(p.Segments),
					Year:    year,
					Day:     1 + failRNG.Intn(365),
					Mode:    mode,
				})
			}
		}
	}

	net := dataset.NewNetwork(cfg.Region, cfg.ObservedFrom, cfg.ObservedTo, pipes, failures)
	if err := net.Validate(); err != nil {
		return nil, nil, fmt.Errorf("synthetic: generated network invalid: %w", err)
	}
	return net, truth, nil
}

func firstActiveYear(p *dataset.Pipe, cfg Config) int {
	if p.LaidYear > cfg.ObservedFrom {
		return p.LaidYear
	}
	return cfg.ObservedFrom
}

func genPipe(cfg Config, rng *stats.RNG, zones *soilZones, sideM float64, i int) dataset.Pipe {
	var p dataset.Pipe
	p.ID = fmt.Sprintf("%s-%06d", cfg.Region, i)

	// Laid year: skewed toward the past for LaidSkew > 1.
	span := float64(cfg.LaidTo - cfg.LaidFrom)
	frac := math.Pow(rng.Float64(), cfg.LaidSkew)
	p.LaidYear = cfg.LaidFrom + int(frac*span+0.5)

	// Class, then diameter conditional on class.
	isCWM := rng.Bernoulli(cfg.CWMFraction)
	if isCWM {
		diams := []float64{300, 375, 450, 500, 600, 750}
		weights := []float64{0.35, 0.25, 0.18, 0.12, 0.07, 0.03}
		p.DiameterMM = diams[rng.Categorical(weights)]
	} else {
		diams := []float64{63, 100, 150, 200, 250}
		weights := []float64{0.08, 0.37, 0.30, 0.17, 0.08}
		p.DiameterMM = diams[rng.Categorical(weights)]
	}
	p.Class = dataset.ClassForDiameter(p.DiameterMM)

	// Length: lognormal; critical mains run longer.
	if isCWM {
		p.LengthM = clamp(rng.LogNormal(math.Log(320), 0.7), 30, 5000)
	} else {
		p.LengthM = clamp(rng.LogNormal(math.Log(130), 0.8), 10, 2500)
	}
	p.Segments = int(math.Ceil(p.LengthM / cfg.SegmentLengthM))
	if p.Segments < 1 {
		p.Segments = 1
	}

	// Material from the era mix of the laid year.
	era := cfg.Eras[0]
	for _, e := range cfg.Eras {
		if p.LaidYear >= e.FromYear {
			era = e
		}
	}
	ws := make([]float64, len(era.Mix))
	for j, m := range era.Mix {
		ws[j] = m.Weight
	}
	p.Material = era.Mix[rng.Categorical(ws)].Material

	p.Coating = genCoating(rng, p.Material)

	// Location and spatially coherent soil.
	p.X = rng.Uniform(0, sideM)
	p.Y = rng.Uniform(0, sideM)
	soil := zones.at(p.X/sideM, p.Y/sideM)
	p.SoilCorrosivity = soil.corrosivity
	p.SoilExpansivity = soil.expansivity
	p.SoilGeology = soil.geology
	p.SoilMap = soil.soilMap

	p.DistToTrafficM = rng.Exp(1 / cfg.MeanTrafficDistM)
	return p
}

func genCoating(rng *stats.RNG, m dataset.Material) dataset.Coating {
	switch m {
	case dataset.CI:
		if rng.Bernoulli(0.5) {
			return dataset.CoatingTar
		}
	case dataset.CICL:
		if rng.Bernoulli(0.3) {
			return dataset.CoatingTar
		}
	case dataset.DICL:
		if rng.Bernoulli(0.5) {
			return dataset.CoatingPESleeve
		}
	case dataset.STEEL:
		if rng.Bernoulli(0.6) {
			return dataset.CoatingTar
		}
	}
	return dataset.CoatingNone
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// soilZones is a grid of per-cell soil factor draws giving spatially
// coherent categorical fields.
type soilZones struct {
	n     int
	cells []soilCell
}

type soilCell struct {
	corrosivity, expansivity, geology, soilMap string
}

func newSoilZones(rng *stats.RNG, n int) *soilZones {
	z := &soilZones{n: n, cells: make([]soilCell, n*n)}
	corrW := []float64{0.3, 0.4, 0.2, 0.1}
	expW := []float64{0.35, 0.3, 0.25, 0.1}
	geoW := []float64{0.35, 0.25, 0.2, 0.15, 0.05}
	mapW := []float64{0.2, 0.25, 0.25, 0.25, 0.05}
	for i := range z.cells {
		z.cells[i] = soilCell{
			corrosivity: dataset.SoilCorrosivityLevels[rng.Categorical(corrW)],
			expansivity: dataset.SoilExpansivityLevels[rng.Categorical(expW)],
			geology:     dataset.SoilGeologyLevels[rng.Categorical(geoW)],
			soilMap:     dataset.SoilMapLevels[rng.Categorical(mapW)],
		}
	}
	return z
}

// at returns the cell for normalized coordinates in [0, 1].
func (z *soilZones) at(u, v float64) soilCell {
	clampIdx := func(x float64) int {
		i := int(x * float64(z.n))
		if i < 0 {
			i = 0
		}
		if i >= z.n {
			i = z.n - 1
		}
		return i
	}
	return z.cells[clampIdx(u)*z.n+clampIdx(v)]
}
