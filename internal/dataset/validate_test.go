package dataset

import (
	"strings"
	"testing"
)

func TestValidateCleanNetwork(t *testing.T) {
	if err := testNetwork().Validate(); err != nil {
		t.Fatalf("clean network failed validation: %v", err)
	}
}

func TestValidateCatchesEveryProblemKind(t *testing.T) {
	pipes := []Pipe{
		{ID: "", DiameterMM: 100, LengthM: 10, LaidYear: 1990, Segments: 1, Class: ReticulationMain},                       // empty ID
		{ID: "D", DiameterMM: 100, LengthM: 10, LaidYear: 1990, Segments: 1, Class: ReticulationMain},                      // fine
		{ID: "D", DiameterMM: 100, LengthM: 10, LaidYear: 1990, Segments: 1, Class: ReticulationMain},                      // duplicate
		{ID: "B1", DiameterMM: -5, LengthM: 10, LaidYear: 1990, Segments: 1, Class: ReticulationMain},                      // bad diameter (also class mismatch)
		{ID: "B2", DiameterMM: 100, LengthM: 0, LaidYear: 1990, Segments: 1, Class: ReticulationMain},                      // bad length
		{ID: "B3", DiameterMM: 100, LengthM: 10, LaidYear: 1990, Segments: 0, Class: ReticulationMain},                     // bad segments
		{ID: "B4", DiameterMM: 100, LengthM: 10, LaidYear: 2050, Segments: 1, Class: ReticulationMain},                     // laid after window
		{ID: "B5", DiameterMM: 500, LengthM: 10, LaidYear: 1990, Segments: 1, Class: ReticulationMain},                     // class mismatch
		{ID: "B6", DiameterMM: 100, LengthM: 10, LaidYear: 1990, Segments: 1, Class: ReticulationMain, DistToTrafficM: -1}, // negative traffic
	}
	fails := []Failure{
		{PipeID: "GHOST", Segment: 0, Year: 2000, Day: 1}, // unknown pipe
		{PipeID: "D", Segment: 5, Year: 2000, Day: 1},     // bad segment
		{PipeID: "D", Segment: 0, Year: 1980, Day: 1},     // outside window
		{PipeID: "D", Segment: 0, Year: 2000, Day: 0},     // bad day
		{PipeID: "B4", Segment: 0, Year: 2000, Day: 1},    // predates laid year
	}
	n := NewNetwork("BAD", 1998, 2009, pipes, fails)
	err := n.Validate()
	if err == nil {
		t.Fatal("validation must fail")
	}
	ve, ok := AsValidationError(err)
	if !ok {
		t.Fatalf("error is %T, want *ValidationError", err)
	}
	wantSubstrings := []string{
		"empty ID", "duplicate pipe ID", "non-positive diameter",
		"non-positive length", "non-positive segment count", "laid in 2050",
		"inconsistent with diameter", "negative traffic distance",
		"unknown pipe", "outside [0,", "outside window",
		"day-of-year", "predates laid year",
	}
	joined := strings.Join(ve.Problems, " | ")
	for _, want := range wantSubstrings {
		if !strings.Contains(joined, want) {
			t.Errorf("validation problems missing %q in:\n%s", want, joined)
		}
	}
}

func TestValidateInvertedWindow(t *testing.T) {
	n := NewNetwork("W", 2009, 1998, nil, nil)
	if n.Validate() == nil {
		t.Fatal("inverted window must fail")
	}
}

func TestValidationErrorTruncation(t *testing.T) {
	probs := make([]string, 25)
	for i := range probs {
		probs[i] = "p"
	}
	e := &ValidationError{Problems: probs}
	msg := e.Error()
	if !strings.Contains(msg, "25 validation problem(s)") {
		t.Fatalf("message %q missing count", msg)
	}
	if !strings.Contains(msg, "and 15 more") {
		t.Fatalf("message %q missing truncation note", msg)
	}
}

func TestAsValidationErrorNonMatch(t *testing.T) {
	if _, ok := AsValidationError(ErrNotAValidationError{}); ok {
		t.Fatal("non-validation error must not match")
	}
}

// ErrNotAValidationError is a helper error type for the test above.
type ErrNotAValidationError struct{}

func (ErrNotAValidationError) Error() string { return "other" }
