package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/feature"
	"repro/internal/tune"
)

// T8Sensitivity cross-validates the proposed method's key hyperparameters
// (ES population, generations, negative-batch multiplier) on one region's
// training window — the robustness analysis an adopter runs before
// trusting the defaults. Returns the CV table sorted best-first.
func T8Sensitivity(opts Options, region string, k int) (*eval.Table, error) {
	opts = opts.withDefaults()
	if k < 2 {
		k = 3
	}
	net, _, err := GenerateRegion(region, opts)
	if err != nil {
		return nil, err
	}
	split, err := dataset.PaperSplit(net)
	if err != nil {
		return nil, err
	}
	b, err := feature.NewBuilder(net, feature.Options{})
	if err != nil {
		return nil, err
	}
	train, err := b.TrainSet(split)
	if err != nil {
		return nil, err
	}

	gens := opts.ESGenerations
	if gens <= 0 {
		gens = 120
	}
	mk := func(label string, mutate func(*core.DirectAUCConfig)) tune.Candidate {
		return tune.Candidate{
			Label: label,
			Make: func() core.Model {
				cfg := core.DefaultDirectAUCConfig(opts.Seed)
				cfg.Generations = gens
				mutate(&cfg)
				return core.NewDirectAUC(cfg)
			},
		}
	}
	cands := []tune.Candidate{
		mk("defaults", func(*core.DirectAUCConfig) {}),
		mk("mu=4,lambda=12", func(c *core.DirectAUCConfig) { c.Mu, c.Lambda = 4, 12 }),
		mk("mu=16,lambda=48", func(c *core.DirectAUCConfig) { c.Mu, c.Lambda = 16, 48 }),
		mk("half-generations", func(c *core.DirectAUCConfig) { c.Generations = gens / 2 }),
		mk("neg-batch=1x", func(c *core.DirectAUCConfig) { c.BatchNegatives = train.Positives() }),
		mk("cold-start", func(c *core.DirectAUCConfig) { c.DisableWarmStart = true }),
	}
	results, err := tune.SelectByCV(train, cands, k, opts.Seed)
	if err != nil {
		return nil, err
	}
	tb := eval.NewTable(
		fmt.Sprintf("T8 (extension): DirectAUC-ES hyperparameter sensitivity, region %s (%d-fold CV on the training window)", region, k),
		"configuration", "mean CV AUC")
	for _, r := range results {
		tb.AddRow(r.Label, eval.FormatPercent(r.MeanAUC))
	}
	return tb, nil
}

// F6Staleness measures how a model ages when not retrained: train once on
// an early window, then evaluate on each subsequent year. The gap between
// adjacent-year and far-year AUC is the cost of stale models — the
// operational argument for annual retraining.
func F6Staleness(opts Options, region string, trainYears int) (*eval.Table, error) {
	opts = opts.withDefaults()
	net, _, err := GenerateRegion(region, opts)
	if err != nil {
		return nil, err
	}
	if trainYears < 1 {
		trainYears = 6
	}
	trainTo := net.ObservedFrom + trainYears - 1
	if trainTo >= net.ObservedTo {
		return nil, fmt.Errorf("experiments: train window [%d,%d] leaves no test years", net.ObservedFrom, trainTo)
	}
	reg := NewRegistry(opts.Seed, opts.ESGenerations)

	header := []string{"model"}
	for y := trainTo + 1; y <= net.ObservedTo; y++ {
		header = append(header, fmt.Sprintf("%d", y))
	}
	tb := eval.NewTable(
		fmt.Sprintf("F6 (extension): AUC of a model trained once on %d-%d, evaluated on each later year (region %s)",
			net.ObservedFrom, trainTo, region),
		header...)

	// One builder/training per model; each later year gets its own test
	// set built against the same frozen training window.
	for _, name := range opts.Models {
		b, err := feature.NewBuilder(net, feature.Options{})
		if err != nil {
			return nil, err
		}
		baseSplit, err := dataset.NewSplit(net, net.ObservedFrom, trainTo, trainTo+1)
		if err != nil {
			return nil, err
		}
		train, err := b.TrainSet(baseSplit)
		if err != nil {
			return nil, err
		}
		m, err := reg.New(name)
		if err != nil {
			return nil, err
		}
		if err := m.Fit(train); err != nil {
			return nil, fmt.Errorf("experiments: fit %s: %w", name, err)
		}
		row := []string{name}
		for y := trainTo + 1; y <= net.ObservedTo; y++ {
			split, err := dataset.NewSplit(net, net.ObservedFrom, trainTo, y)
			if err != nil {
				return nil, err
			}
			test, err := b.TestSet(split)
			if err != nil {
				return nil, err
			}
			scores, err := m.Scores(test)
			if err != nil {
				return nil, err
			}
			row = append(row, eval.FormatPercent(eval.AUC(scores, test.Label)))
		}
		tb.AddRow(row...)
	}
	return tb, nil
}
