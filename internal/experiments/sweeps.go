package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/feature"
	"repro/internal/synthetic"
)

// F2WindowSweep measures AUC on the final held-out year as a function of
// training-history length (the paper's data-volume analysis). Windows are
// in years; the default grid is {2, 4, 6, 8, 11}.
func F2WindowSweep(opts Options, windows []int) (*eval.Table, error) {
	opts = opts.withDefaults()
	if len(windows) == 0 {
		windows = []int{2, 4, 6, 8, 11}
	}
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	header := []string{"region", "model"}
	for _, w := range windows {
		header = append(header, fmt.Sprintf("%dy", w))
	}
	tb := eval.NewTable("F2: AUC vs training-history length", header...)
	for _, name := range opts.Regions {
		net, _, err := GenerateRegion(name, opts)
		if err != nil {
			return nil, err
		}
		// aucs[model][windowIdx]
		aucs := make(map[string][]float64)
		for _, w := range windows {
			split, err := dataset.WindowSplit(net, w)
			if err != nil {
				return nil, err
			}
			evals, err := EvaluateSplit(net, split, reg, opts.Models, feature.Groups{})
			if err != nil {
				return nil, err
			}
			for _, e := range evals {
				aucs[e.Model] = append(aucs[e.Model], e.AUC)
			}
		}
		for _, m := range opts.Models {
			row := []string{name, m}
			for _, a := range aucs[m] {
				row = append(row, eval.FormatPercent(a))
			}
			tb.AddRow(row...)
		}
	}
	return tb, nil
}

// AblationResult is one row of the feature-ablation experiment.
type AblationResult struct {
	Region  string
	Dropped string
	AUC     float64
	// DeltaAUC is AUC(full) − AUC(without group); positive means the
	// group helps.
	DeltaAUC float64
}

// T5Ablation measures the value of each feature group for the proposed
// method by dropping one group at a time. The first configured model is
// the one ablated.
func T5Ablation(opts Options) ([]AblationResult, error) {
	opts = opts.withDefaults()
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	model := []string{opts.Models[0]}
	groups := []string{"material", "age", "geometry", "soil", "traffic", "history"}
	var out []AblationResult
	for _, name := range opts.Regions {
		net, _, err := GenerateRegion(name, opts)
		if err != nil {
			return nil, err
		}
		split, err := dataset.PaperSplit(net)
		if err != nil {
			return nil, err
		}
		fullEvals, err := EvaluateSplit(net, split, reg, model, feature.Groups{})
		if err != nil {
			return nil, err
		}
		full := fullEvals[0].AUC
		out = append(out, AblationResult{Region: name, Dropped: "(none)", AUC: full})
		for _, g := range groups {
			reduced, err := feature.AllGroups().Without(g)
			if err != nil {
				return nil, err
			}
			evals, err := EvaluateSplit(net, split, reg, model, reduced)
			if err != nil {
				return nil, err
			}
			out = append(out, AblationResult{
				Region: name, Dropped: g,
				AUC: evals[0].AUC, DeltaAUC: full - evals[0].AUC,
			})
		}
	}
	return out, nil
}

// T5Table renders ablation results.
func T5Table(results []AblationResult) *eval.Table {
	tb := eval.NewTable("T5: feature-group ablation (proposed method)",
		"region", "dropped group", "AUC", "ΔAUC vs full")
	for _, r := range results {
		tb.AddRow(r.Region, r.Dropped,
			eval.FormatPercent(r.AUC), fmt.Sprintf("%+.2fpp", 100*r.DeltaAUC))
	}
	return tb
}

// F3Scalability measures wall-clock training time per model as the network
// grows. sizes are pipe counts; region A's covariate mix is used throughout.
func F3Scalability(opts Options, sizes []int) (*eval.Table, error) {
	opts = opts.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{2000, 5000, 10000, 20000}
	}
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	header := []string{"model"}
	for _, n := range sizes {
		header = append(header, fmt.Sprintf("%d pipes", n))
	}
	tb := eval.NewTable("F3: training wall-time (seconds) vs network size", header...)
	// times[model][sizeIdx]
	times := make(map[string][]float64)
	for _, n := range sizes {
		cfg := synthetic.RegionA(opts.Seed)
		cfg.TargetFailures = int(float64(cfg.TargetFailures) * float64(n) / float64(cfg.NumPipes))
		cfg.NumPipes = n
		net, _, err := synthetic.Generate(cfg)
		if err != nil {
			return nil, err
		}
		split, err := dataset.PaperSplit(net)
		if err != nil {
			return nil, err
		}
		evals, err := EvaluateSplit(net, split, reg, opts.Models, feature.Groups{})
		if err != nil {
			return nil, err
		}
		for _, e := range evals {
			times[e.Model] = append(times[e.Model], e.FitSeconds)
		}
	}
	for _, m := range opts.Models {
		row := []string{m}
		for _, s := range times[m] {
			row = append(row, fmt.Sprintf("%.3f", s))
		}
		tb.AddRow(row...)
	}
	return tb, nil
}
