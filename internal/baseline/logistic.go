// Package baseline implements the statistical failure-prediction models the
// reproduced paper compares its ranking approach against: logistic
// regression, the Cox proportional-hazards model, a Weibull/NHPP time-power
// process with covariates, the classical aggregate age-rate models
// (time-exponential, time-power, time-linear), and naive heuristics.
//
// Every model satisfies core.Model so the evaluation harness treats the
// paper's method and the baselines identically.
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// ErrNotFitted is returned when Scores is called before Fit.
var ErrNotFitted = errors.New("baseline: model not fitted")

// LogisticConfig tunes the logistic-regression baseline.
type LogisticConfig struct {
	// Ridge is the L2 penalty (default 1e-3, scaled by instance count).
	Ridge float64
	// MaxIter caps the Newton iterations (default 30).
	MaxIter int
	// Tol is the convergence threshold on the max coefficient change
	// (default 1e-8).
	Tol float64
}

func (c *LogisticConfig) fillDefaults() {
	if c.Ridge <= 0 {
		c.Ridge = 1e-3
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 30
	}
	if c.Tol <= 0 {
		c.Tol = 1e-8
	}
}

// Logistic is ridge-penalized logistic regression on pipe-year instances,
// fitted by iteratively reweighted least squares (Newton's method). It is
// the standard classification treatment of the prediction problem that the
// ranking methods are measured against.
type Logistic struct {
	cfg LogisticConfig
	// W are the coefficients; the intercept is stored separately.
	W         []float64
	Intercept float64
	fitted    bool
}

// NewLogistic returns an unfitted logistic regression.
func NewLogistic(cfg LogisticConfig) *Logistic {
	cfg.fillDefaults()
	return &Logistic{cfg: cfg}
}

// Name implements core.Model.
func (m *Logistic) Name() string { return "Logistic" }

// Fit implements core.Model.
func (m *Logistic) Fit(train *feature.Set) error {
	if train == nil || train.Len() == 0 {
		return fmt.Errorf("%s: empty training set", m.Name())
	}
	if p := train.Positives(); p == 0 || p == train.Len() {
		return fmt.Errorf("%s: training set needs both classes", m.Name())
	}
	n, d := train.Len(), train.Dim()
	// Design with intercept column appended.
	x := linalg.NewMatrix(n, d+1)
	for i, row := range train.X {
		copy(x.Row(i), row)
		x.Set(i, d, 1)
	}
	y := make([]float64, n)
	for i, v := range train.Label {
		if v {
			y[i] = 1
		}
	}
	beta := make([]float64, d+1)
	ridge := m.cfg.Ridge * float64(n) / float64(d+1)
	mu := make([]float64, n)
	w := make([]float64, n)
	resid := make([]float64, n)
	for iter := 0; iter < m.cfg.MaxIter; iter++ {
		eta := x.MulVec(beta)
		for i := range mu {
			mu[i] = stats.Logistic(eta[i])
			w[i] = mu[i] * (1 - mu[i])
			if w[i] < 1e-10 {
				w[i] = 1e-10
			}
			resid[i] = y[i] - mu[i]
		}
		grad := x.TMulVec(resid)
		// Penalize coefficients but not the intercept.
		for j := 0; j < d; j++ {
			grad[j] -= ridge * beta[j]
		}
		hess := linalg.ATWA(x, w)
		for j := 0; j < d; j++ {
			hess.Set(j, j, hess.At(j, j)+ridge)
		}
		step, err := linalg.SolveRidge(hess, grad, 1e-10)
		if err != nil {
			return fmt.Errorf("%s: newton step: %w", m.Name(), err)
		}
		linalg.Axpy(1, step, beta)
		if linalg.NormInf(step) < m.cfg.Tol {
			break
		}
	}
	m.W = beta[:d]
	m.Intercept = beta[d]
	m.fitted = true
	return nil
}

// Scores implements core.Model; scores are predicted failure probabilities.
func (m *Logistic) Scores(test *feature.Set) ([]float64, error) {
	if !m.fitted {
		return nil, fmt.Errorf("%s: %w", m.Name(), ErrNotFitted)
	}
	if test.Dim() != len(m.W) {
		return nil, fmt.Errorf("%s: test dim %d != model dim %d", m.Name(), test.Dim(), len(m.W))
	}
	out := make([]float64, test.Len())
	for i, row := range test.X {
		out[i] = stats.Logistic(linalg.Dot(row, m.W) + m.Intercept)
	}
	return out, nil
}

// Compile-time interface checks for every model in this package.
var (
	_ core.Model = (*Logistic)(nil)
	_ core.Model = (*Cox)(nil)
	_ core.Model = (*WeibullNHPP)(nil)
	_ core.Model = (*AgeRateModel)(nil)
	_ core.Model = (*Heuristic)(nil)
	_ core.Model = (*RandomForest)(nil)
)
