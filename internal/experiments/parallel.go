package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/feature"
	"repro/internal/parallel"
)

// EvaluateSplitParallel is EvaluateSplit with the per-model work fanned out
// across the bounded worker pool in internal/parallel. Feature sets are
// built once and shared read-only; every model is independent and
// deterministic, so results are identical to the sequential runner
// (wall-clock timings aside). Results come back in the order of names.
func EvaluateSplitParallel(net *dataset.Network, split dataset.Split, reg *core.Registry, names []string, groups feature.Groups) ([]ModelEval, error) {
	b, err := feature.NewBuilder(net, feature.Options{Groups: groups, Standardize: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	train, err := b.TrainSet(split)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	test, err := b.TestSet(split)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	// Dynamic assignment: per-model cost is wildly uneven (ES vs
	// closed-form baselines), and every model writes only its own slot.
	results := make([]ModelEval, len(names))
	errs := make([]error, len(names))
	parallel.New(0).ForEachDynamic(len(names), func(i int) {
		results[i], errs[i] = evalOne(net, reg, names[i], train, test)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// T7AgreementResult is one region's pairwise rank-agreement matrix.
type T7AgreementResult struct {
	Region string
	Models []string
	// Tau[i][j] is the Kendall rank correlation between the test-year
	// score vectors of Models[i] and Models[j].
	Tau [][]float64
}

// T7Agreement computes the pairwise Kendall rank correlation between the
// configured models' rankings — an extension analysis showing which model
// families produce interchangeable inspection lists and which genuinely
// disagree. Scores are subsampled to at most maxItems pipes (default 1500)
// to keep the O(n²) tau affordable.
func T7Agreement(opts Options, maxItems int) ([]T7AgreementResult, error) {
	opts = opts.withDefaults()
	if maxItems <= 0 {
		maxItems = 1500
	}
	results, err := RunRegions(opts)
	if err != nil {
		return nil, err
	}
	var out []T7AgreementResult
	for _, r := range results {
		n := len(r.Evals[0].Scores)
		stride := 1
		if n > maxItems {
			stride = (n + maxItems - 1) / maxItems
		}
		sub := func(xs []float64) []float64 {
			var s []float64
			for i := 0; i < len(xs); i += stride {
				s = append(s, xs[i])
			}
			return s
		}
		res := T7AgreementResult{Region: r.Region}
		subs := make([][]float64, len(r.Evals))
		for i, e := range r.Evals {
			res.Models = append(res.Models, e.Model)
			subs[i] = sub(e.Scores)
		}
		res.Tau = make([][]float64, len(subs))
		for i := range subs {
			res.Tau[i] = make([]float64, len(subs))
			res.Tau[i][i] = 1
			for j := 0; j < i; j++ {
				tau := eval.KendallTau(subs[i], subs[j])
				res.Tau[i][j] = tau
				res.Tau[j][i] = tau
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// T7Table renders one agreement matrix.
func T7Table(r T7AgreementResult) *eval.Table {
	header := append([]string{"model"}, r.Models...)
	tb := eval.NewTable(fmt.Sprintf("T7 (extension): Kendall tau between model rankings, region %s", r.Region), header...)
	for i, m := range r.Models {
		row := []string{m}
		for j := range r.Models {
			row = append(row, fmt.Sprintf("%.2f", r.Tau[i][j]))
		}
		tb.AddRow(row...)
	}
	return tb
}
