package serve

// Region shards: the unit of isolation in the multi-region registry.
// Each shard owns one network, its pipeline, its copy-on-write snapshot
// map, its train singleflight table and its own respcache carved out of
// the global byte budget — so a hot region's cache evictions and train
// storms cannot degrade its neighbours. The Server holds the shards in
// a fixed slice (deterministic fan-out order) plus a region-name index;
// both are immutable after construction, so request paths read them
// without locks.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/obs"
	"repro/internal/respcache"
)

// shard is one region's serving state. All fields are set at
// construction except models/pending, which follow the same
// discipline they did on the single-region Server: models is
// copy-on-write behind an atomic pointer, pending and publication are
// guarded by mu.
type shard struct {
	region string
	net    *pipefail.Network
	pipe   *pipefail.Pipeline

	// opts are the pipeline options the shard was built with, kept so
	// live retrains (trainPipeline) rebuild with identical settings —
	// same seed, same feature groups — which is what makes a replayed
	// event log reproduce a bit-identical model.
	opts []pipefail.PipelineOption

	// ingest is the streaming-ingest state (WAL + live event overlays +
	// drift gauges); nil until Server.SetEventLog wires it. See events.go.
	ingest *ingestState

	// cache holds this shard's encoded responses under its slice of the
	// global budget; cacheName is kept so SetResponseCacheBytes can
	// rebuild it under the same metric series.
	cache     *respcache.Cache
	cacheName string

	// stateDir is this shard's warm-restart directory (a per-region
	// subdirectory of the server's -state-dir when multiple shards
	// exist; the dir itself for a single shard, preserving the layout
	// the single-region server always used).
	stateDir string

	// models is the copy-on-write name → snapshot map: readers Load once
	// and never lock; writers clone-and-swap under mu.
	models atomic.Pointer[map[string]*modelSnapshot]

	mu      sync.Mutex // guards pending, job waiter counts, and models publication
	pending map[string]*trainJob

	// Scheduler outcome counters, per shard so operators can see which
	// region is churning: serve.shard.<region>.rebuilds / .rebuild_failures.
	rebuilds        *obs.Counter
	rebuildFailures *obs.Counter
}

// newShard builds one region's serving state with its slice of the
// response-cache budget.
func newShard(n *pipefail.Network, cacheName string, cacheBytes int64, opts ...pipefail.PipelineOption) (*shard, error) {
	p, err := pipefail.NewPipeline(n, opts...)
	if err != nil {
		return nil, fmt.Errorf("serve: region %q: %w", n.Region, err)
	}
	reg := obs.Default()
	token := obs.SanitizeMetricName(n.Region)
	sh := &shard{
		region:          n.Region,
		net:             n,
		pipe:            p,
		opts:            opts,
		cache:           respcache.New(cacheName, cacheBytes, nil),
		cacheName:       cacheName,
		pending:         make(map[string]*trainJob),
		rebuilds:        reg.Counter("serve.shard." + token + ".rebuilds"),
		rebuildFailures: reg.Counter("serve.shard." + token + ".rebuild_failures"),
	}
	empty := make(map[string]*modelSnapshot)
	sh.models.Store(&empty)
	return sh, nil
}

// publishLocked swaps in a new copy-on-write map containing tm. Callers
// hold sh.mu, so concurrent publishes never lose entries; readers see
// either the old or the new complete map, never a partial write.
func (sh *shard) publishLocked(name string, tm *modelSnapshot) {
	old := *sh.models.Load()
	next := make(map[string]*modelSnapshot, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = tm
	sh.models.Store(&next)
}

// Regions returns the shard region names in serving (fan-out) order.
func (s *Server) Regions() []string {
	out := make([]string, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.region
	}
	return out
}

// shardFromQuery resolves the optional ?region= selector; absent or
// empty selects the default (first) shard, which keeps every
// single-region request byte-identical to the pre-shard server.
func (s *Server) shardFromQuery(rawQuery string) (*shard, error) {
	region, ok, err := queryParam(rawQuery, "region")
	if err != nil {
		return nil, err
	}
	if !ok || region == "" {
		return s.def, nil
	}
	sh, found := s.byRegion[region]
	if !found {
		return nil, fmt.Errorf("unknown region %q", region)
	}
	return sh, nil
}

// getShard returns the trained model snapshot for one shard, training
// it on first use. The fast path is one atomic load of the shard's
// copy-on-write map — no lock. Exactly one goroutine trains any given
// (shard, model) pair; concurrent callers block on the in-flight job's
// done channel and share its result, so the HTTP layer degrades to
// queueing (not errors) under concurrent load. A failed run is not
// published: its waiters all receive the error, and the next request
// starts a fresh attempt.
//
// Training runs on its own goroutine under a context derived from the
// server lifecycle, so BeginShutdown aborts it. Each waiter watches its
// own request context: a waiter whose client disconnects (or whose
// deadline fires) abandons the job, and when the last waiter leaves the
// run itself is cancelled — nobody is left training for an empty room.
func (s *Server) getShard(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
	if tm, ok := (*sh.models.Load())[name]; ok {
		s.metrics.sfCached.Inc()
		return tm, nil
	}
	if !knownModel(name) {
		return nil, fmt.Errorf("%w %q", errUnknownModel, name)
	}
	sh.mu.Lock()
	if tm, ok := (*sh.models.Load())[name]; ok {
		sh.mu.Unlock()
		s.metrics.sfCached.Inc()
		return tm, nil
	}
	job, ok := sh.pending[name]
	if ok {
		job.waiters++
		sh.mu.Unlock()
		s.metrics.sfHits.Inc()
	} else {
		tctx, cancel := context.WithCancel(s.lifecycle)
		job = &trainJob{done: make(chan struct{}), cancel: cancel, waiters: 1}
		sh.pending[name] = job
		sh.mu.Unlock()
		s.metrics.sfMisses.Inc()
		go s.runTrain(tctx, sh, name, job)
	}

	select {
	case <-job.done:
		return job.tm, job.err
	case <-ctx.Done():
		s.abandon(sh, job)
		return nil, fmt.Errorf("training %q abandoned: %w", name, ctx.Err())
	}
}

// get is getShard on the default shard — the single-region entry point
// every pre-shard call site (and test seam) still uses.
func (s *Server) get(ctx context.Context, name string) (*modelSnapshot, error) {
	return s.getShard(ctx, s.def, name)
}

// regionStatus is one row of GET /api/regions: the fleet-operator view
// of a shard.
type regionStatus struct {
	Region        string  `json:"region"`
	Pipes         int     `json:"pipes"`
	Failures      int     `json:"failures"`
	NetworkKM     float64 `json:"network_km"`
	ModelsTrained int     `json:"models_trained"`
	CacheBytes    int64   `json:"cache_bytes"`
	CacheEntries  int     `json:"cache_entries"`
	// Streaming-ingest fields, present only when an event log is wired.
	LiveEvents  int64 `json:"live_events,omitempty"`
	WalSegments int   `json:"wal_segments,omitempty"`
	WalBytes    int64 `json:"wal_bytes,omitempty"`
}

// handleRegions reports per-shard serving state: which regions this
// process holds, how warm each one is, and how much of its cache slice
// is in use.
func (s *Server) handleRegions(w http.ResponseWriter, _ *http.Request) {
	out := make([]regionStatus, len(s.shards))
	for i, sh := range s.shards {
		out[i] = regionStatus{
			Region:        sh.region,
			Pipes:         sh.net.NumPipes(),
			Failures:      sh.net.NumFailures(),
			NetworkKM:     sh.net.TotalLengthM() / 1000,
			ModelsTrained: len(*sh.models.Load()),
			CacheBytes:    sh.cache.SizeBytes(),
			CacheEntries:  sh.cache.Len(),
		}
		if ing := sh.ingest; ing != nil {
			out[i].LiveEvents = sh.eventSeqNow()
			out[i].WalSegments = ing.wal.Segments()
			out[i].WalBytes = ing.wal.SizeBytes()
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}
