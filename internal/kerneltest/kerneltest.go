// Package kerneltest is the differential conformance harness for the
// numeric hot kernels in internal/linalg and internal/eval. Every
// optimized kernel in the tree — blocked, multi-accumulator, counting-
// rank, reassociated fast-math — is checked here against a deliberately
// naive oracle over generated shape/tie/sign-pattern corpora, so future
// kernel rewrites inherit the gates instead of re-deriving them.
//
// The harness distinguishes two strengths of agreement:
//
//   - Bit identity. The exact kernels (linalg.DotExact, linalg.MatVecExact,
//     the default eval.AUCKernel path) promise the same float operation
//     sequence as the oracle, so results must match bitwise — no epsilon.
//   - ULP-bounded. The fast-math kernels (linalg.DotFast, linalg.MatVecFast)
//     reassociate the summation; their error against the oracle is bounded
//     by SumBound, a small multiple of one ULP of Σ|aᵢ·bᵢ|. The magnitude
//     sum is the right anchor: under cancellation the result can be tiny
//     while the rounding error is proportional to the operand magnitudes.
//
// The AUC oracles additionally pin the counting kernel's rank-statistic
// output against both the legacy stable-sort formulation (bitwise — the
// counting kernel replays its exact float sequence) and the O(P·N)
// pairwise definition (also bitwise for the corpus sizes used here: wins
// and rank sums are half-integers below 2^53, hence exact in float64).
package kerneltest

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// DotOracle is the naive sequential inner product: one accumulator,
// left-to-right. This is the definition every Dot variant is judged
// against.
func DotOracle(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// MatVecOracle is the naive matrix-vector product: DotOracle per row.
func MatVecOracle(dst, flat []float64, stride int, x []float64) {
	for r := range dst {
		dst[r] = DotOracle(flat[r*stride:(r+1)*stride], x)
	}
}

// AUCOracleSort is a from-scratch replica of the legacy sort-everything
// rank-statistic AUC: stable sort by score, walk tie groups ascending,
// add each group's average rank once per positive member. It performs
// exactly the float operations the eval kernels promise to replay, so
// kernel output must match it bitwise on NaN-free input.
func AUCOracleSort(scores []float64, labels []bool) float64 {
	n := len(scores)
	if n == 0 {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	var nPos, nNeg, rankSum float64
	i := 0
	rank := 1.0
	for i < n {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := (rank + rank + float64(j-i)) / 2
		for t := i; t <= j; t++ {
			if labels[idx[t]] {
				rankSum += avg
				nPos++
			} else {
				nNeg++
			}
		}
		rank += float64(j - i + 1)
		i = j + 1
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// AUCOraclePairwise is the O(P·N) definition: count positive-over-
// negative wins with half credit for ties. Wins and pair counts are
// half-integers, exact in float64 up to 2^53, so for corpus-sized inputs
// this agrees bitwise with the rank-statistic formulations.
func AUCOraclePairwise(scores []float64, labels []bool) float64 {
	var wins, pairs float64
	for i, si := range scores {
		if !labels[i] {
			continue
		}
		for j, sj := range scores {
			if labels[j] {
				continue
			}
			pairs++
			switch {
			case si > sj:
				wins++
			case si == sj:
				wins += 0.5
			}
		}
	}
	if pairs == 0 {
		return 0.5
	}
	return wins / pairs
}

// Lengths is the shape corpus. It covers every remainder-lane class of
// the 4-wide unrolled kernels (each residue of length mod 4 at several
// block counts), the degenerate zero/one-element shapes, and a couple of
// sizes large enough that accumulated rounding differences between
// summation orders actually materialize.
var Lengths = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 31, 32, 33, 100, 1000}

// RowCounts is the matrix-height corpus for MatVec variants: it crosses
// every remainder class of both the 4-row exact blocking and the 2-row
// fast blocking.
var RowCounts = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}

// Pattern generates an input vector of a given length from a named value
// distribution. Patterns are chosen to stress distinct failure modes of
// reassociated summation: uniform (baseline), alternating signs and
// cancellation (error anchored to magnitudes, not the tiny result), wide
// dynamic range (absorption), constant (heavy ties downstream), and
// small integers (products exactly representable, so every summation
// order is exact and fast kernels must match bitwise).
type Pattern struct {
	Name string
	Gen  func(rng *stats.RNG, n int) []float64
}

// Patterns is the value-pattern corpus shared by the kernel tests.
var Patterns = []Pattern{
	{"uniform", func(rng *stats.RNG, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Uniform(-1, 1)
		}
		return v
	}},
	{"sign-alternating", func(rng *stats.RNG, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
			if i%2 == 1 {
				v[i] = -v[i]
			}
		}
		return v
	}},
	{"cancellation", func(rng *stats.RNG, n int) []float64 {
		// Large paired magnitudes with opposite signs plus small noise:
		// the true sum is near zero while intermediate terms are ~1e8.
		v := make([]float64, n)
		for i := range v {
			base := 1e8 * rng.Float64()
			if i%2 == 1 {
				base = -base
			}
			v[i] = base + rng.Uniform(-1, 1)
		}
		return v
	}},
	{"wide-magnitude", func(rng *stats.RNG, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * math.Pow(10, float64(rng.Intn(33)-16))
			if rng.Bernoulli(0.5) {
				v[i] = -v[i]
			}
		}
		return v
	}},
	{"const-ties", func(rng *stats.RNG, n int) []float64 {
		v := make([]float64, n)
		c := rng.Uniform(-2, 2)
		for i := range v {
			v[i] = c
		}
		return v
	}},
	{"integer", func(rng *stats.RNG, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.Intn(33) - 16)
		}
		return v
	}},
}

// ULP returns the distance from |x| to the next float64 toward +Inf —
// the unit in the last place at x's magnitude. ULP(0) is 0 by
// convention here: a zero anchor means every addend is zero and all
// summation orders are exact.
func ULP(x float64) float64 {
	x = math.Abs(x)
	if x == 0 || math.IsInf(x, 0) {
		return 0
	}
	return math.Nextafter(x, math.Inf(1)) - x
}

// MagSum returns Σ|aᵢ·bᵢ|, the magnitude anchor for summation error
// bounds.
func MagSum(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] * b[i])
	}
	return s
}

// SumBound returns the maximum allowed |fast − exact| for an n-term
// product sum whose magnitude anchor is magSum. Any two summation orders
// of n terms differ by at most ~2(n−1)·u·Σ|terms| with u = 2⁻⁵³;
// 2n·ULP(Σ|terms|) over-covers that (ULP(m) ∈ [u·m, 2u·m]) while staying
// tight enough to catch a genuinely wrong kernel, whose error is
// proportional to a term value rather than to u.
func SumBound(n int, magSum float64) float64 {
	if magSum == 0 || n == 0 {
		return 0
	}
	return 2 * float64(n) * ULP(magSum)
}

// IsInteger reports whether every element of v is an exactly
// representable integer (the precondition for fast kernels being
// bit-identical on the integer pattern).
func IsInteger(v []float64) bool {
	for _, x := range v {
		if x != math.Trunc(x) {
			return false
		}
	}
	return true
}
