GO ?= go
FUZZTIME ?= 10s

.PHONY: build test verify chaos fuzz-smoke bench bench-json bench-data bench-ingest bench-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-submit gate: static checks, the race detector on the
# concurrency-bearing packages (the parallel training engine, the
# pool-fanned eval kernels, the kernel-conformance harness, the metrics
# registry, the singleflight + snapshot HTTP layer, the response cache
# and the experiment fan-out), the kerneltest differential harness (exact
# kernels bitwise vs naive oracles, fast-math kernels ULP-bounded plus
# the AUC rank-equivalence property), the allocation-regression gates on
# the AUC kernel and the serve ranking/plan fast paths (run without
# -race, which inflates allocation counts), the chaos suite, and a short
# fuzz pass over the CSV parsers and the AUC kernel differential.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/parallel/... ./internal/core/... ./internal/eval/... ./internal/kerneltest/... ./internal/obs/... ./internal/serve/... ./internal/respcache/... ./internal/experiments/... ./internal/wal/...
	$(GO) test ./internal/kerneltest -count=1
	$(GO) test ./internal/eval -run='^TestAUCKernelZeroAlloc$$' -count=1
	$(GO) test ./internal/serve -run='^(TestRankingCacheHitZeroAlloc|TestPlanCacheHitZeroAlloc|TestParsePlanFastZeroAlloc|TestBulkRankCacheHitZeroAlloc)$$' -count=1
	$(GO) test ./internal/colfmt -run='^(TestReadAllocsRowIndependent|TestIngestAllocsRowIndependent)$$' -count=1
	$(MAKE) chaos
	$(MAKE) fuzz-smoke

# chaos runs the fault-injection suite under the race detector: the
# internal/faulty harness (listener cuts, delayed clients), the serve
# chaos tests that combine network faults with training failures,
# panics, hangs, shedding and a mid-storm drain, and the WAL crash
# matrix (deterministic kills at labeled append/rotate/sync points, with
# the exactly-once and bit-identical-recovery invariants).
chaos:
	$(GO) test -race ./internal/faulty/...
	$(GO) test -race -run='^TestChaos' -count=1 ./internal/serve/
	$(GO) test -race -run='^TestCrashMatrix|^TestRotateCrashRecovers|^TestTornTail|^TestBitFlipped|^TestCorruptInterior' -count=1 ./internal/wal/

# fuzz-smoke runs each fuzzer briefly (FUZZTIME per target) — enough to
# replay the corpus and shake out shallow regressions without holding up
# the gate. FuzzAUCKernelVsNaive is the kernel differential: arbitrary
# score/label bytes must produce bitwise-identical AUCs from the
# counting-rank kernel, the legacy sort kernel and the pairwise oracle.
fuzz-smoke:
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadPipes$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadFailures$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/eval -run='^$$' -fuzz='^FuzzAUCKernelVsNaive$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/colfmt -run='^$$' -fuzz='^FuzzReadDataset$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wal -run='^$$' -fuzz='^FuzzWALReplay$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wal -run='^$$' -fuzz='^FuzzFrameDecode$$' -fuzztime=$(FUZZTIME)

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# bench-json records the training/serving hot-path benchmarks as JSON so
# perf can be diffed commit to commit (BENCH_core.json and
# BENCH_serve.json are checked in). Each benchmark runs long enough for
# ns/op to stabilize; steady-state B/op for the scratch-reusing kernels
# shrinks toward zero as iteration counts grow, so treat allocs/op (not
# B/op) as the regression signal.
bench-json:
	{ $(GO) test -run='^$$' -bench='BenchmarkFitnessEval|BenchmarkScoreAllFlat' ./internal/core/; \
	  $(GO) test -run='^$$' -bench='BenchmarkAUCKernel|BenchmarkTopK' ./internal/eval/; \
	  $(GO) test -run='^$$' -bench='BenchmarkMatVec|BenchmarkDot' ./internal/linalg/; } \
	| $(GO) run ./cmd/benchjson -o BENCH_core.json
	{ $(GO) test -run='^$$' -bench='BenchmarkRankingHandler|BenchmarkPlanHandler|BenchmarkBulkRank|BenchmarkShardRebuild' ./internal/serve/; \
	  $(GO) test -run='^$$' -bench='BenchmarkRespCache' ./internal/respcache/; } \
	| $(GO) run ./cmd/benchjson -o BENCH_serve.json

# bench-check is the pre-release perf gate (NOT part of verify —
# wall-clock numbers are too machine-sensitive for a merge gate): rerun
# the core hot-path benchmarks and fail if any is >30% slower than the
# checked-in BENCH_core.json, if its allocs/op grew at all, or if a
# recorded benchmark disappeared. Refresh the baseline with bench-json.
# bench-data records the columnar data-plane benchmarks (streaming decode,
# encode, CSV->columnar conversion, feature ingest) at 10k/100k/1M rows
# into BENCH_data.json. BENCH_FULL=1 unlocks the 1M-pipe fixture, which
# takes about a minute of synthesis before measurement starts.
bench-data:
	{ BENCH_FULL=1 $(GO) test -run='^$$' -bench='BenchmarkColRead|BenchmarkColWrite|BenchmarkConvertCSVToCol|BenchmarkIngest' -timeout 60m ./internal/colfmt/; \
	  $(GO) test -run='^$$' -bench='BenchmarkReadPipes|BenchmarkReadFailures' ./internal/dataset/; } \
	| $(GO) run ./cmd/benchjson -o BENCH_data.json

# bench-ingest records the streaming-ingest data plane into
# BENCH_ingest.json: raw WAL append latency per fsync policy (the
# group-commit parallel case included), replay throughput, and the
# /api/events handler end to end. The serve-side benchmarks run a fixed
# iteration count: accepted events accumulate in the live overlays and
# the per-request drift scan is O(overlay), so time-based auto-scaling
# would measure ever-growing windows instead of the steady state.
bench-ingest:
	{ $(GO) test -run='^$$' -bench='BenchmarkWALAppend|BenchmarkWALReplay' ./internal/wal/; \
	  $(GO) test -run='^$$' -bench='BenchmarkEventsIngest' -benchtime=2000x ./internal/serve/; } \
	| $(GO) run ./cmd/benchjson -o BENCH_ingest.json

BENCH_TOL ?= 0.30
bench-check:
	{ $(GO) test -run='^$$' -bench='BenchmarkFitnessEval|BenchmarkScoreAllFlat' ./internal/core/; \
	  $(GO) test -run='^$$' -bench='BenchmarkAUCKernel|BenchmarkTopK' ./internal/eval/; \
	  $(GO) test -run='^$$' -bench='BenchmarkMatVec|BenchmarkDot' ./internal/linalg/; } \
	| $(GO) run ./cmd/benchjson -check BENCH_core.json -tol $(BENCH_TOL)
	{ BENCH_FULL=1 $(GO) test -run='^$$' -bench='BenchmarkColRead|BenchmarkColWrite|BenchmarkConvertCSVToCol|BenchmarkIngest' -timeout 60m ./internal/colfmt/; \
	  $(GO) test -run='^$$' -bench='BenchmarkReadPipes|BenchmarkReadFailures' ./internal/dataset/; } \
	| $(GO) run ./cmd/benchjson -check BENCH_data.json -tol $(BENCH_TOL)
	{ $(GO) test -run='^$$' -bench='BenchmarkWALAppend|BenchmarkWALReplay' ./internal/wal/; \
	  $(GO) test -run='^$$' -bench='BenchmarkEventsIngest' -benchtime=2000x ./internal/serve/; } \
	| $(GO) run ./cmd/benchjson -check BENCH_ingest.json -tol $(BENCH_TOL)
