package serve

// Bulk endpoints: POST /api/bulk/rank and POST /api/bulk/plan take many
// regions (and, for rank, individual pipe IDs) in one request and
// stream one NDJSON line per segment back, flushed as each resolves.
//
// The design goal is that bulk is a framing layer, never a second
// implementation: region segments replay the exact cache entries the
// single-region handlers write (shared appendRankingKey/appendPlanKey,
// shared fill code), so a bulk line's payload is byte-identical to the
// corresponding single call's body. Resolution runs in three phases:
//
//  1. serial: published snapshots + cache hits resolve inline — the
//     all-cached path touches no goroutines, channels or heap;
//  2. fan-out: misses (untrained models, evicted entries) fill
//     concurrently on the server's worker pool through the same
//     singleflight as everyone else, each closing a ready channel;
//  3. ordered writer: lines stream in request order, waiting on each
//     segment's ready channel, flushing per line — so early segments
//     reach the client while late ones still train.
//
// Failures after the stream starts cannot become HTTP errors (the 200
// is gone); they become per-segment {"error": ...} lines instead.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/plan"
	"repro/internal/respcache"
)

// ndjsonCT is the streamed bulk Content-Type, preallocated like jsonCT.
var ndjsonCT = []string{"application/x-ndjson"}

// bulkSeg is one output line in flight: a region segment (pipeID empty)
// or a per-pipe segment. ready is nil when phase 1 resolved the segment
// inline; otherwise the fill fan-out closes it once tm/entry/errMsg are
// final.
type bulkSeg struct {
	sh     *shard
	pipeID []byte // aliases the request body; empty for region segments
	tm     *modelSnapshot
	entry  respcache.Entry
	errMsg string
	ready  chan struct{}
}

// bulkScratch bundles the per-request scratch state so the steady state
// recycles one pool object instead of three slices.
type bulkScratch struct {
	bf   bulkFields
	segs []bulkSeg
	line []byte
}

// release drops references into the request body and snapshots while
// keeping slice capacity for the next request.
func (sc *bulkScratch) release() {
	sc.bf.reset()
	for i := range sc.segs {
		sc.segs[i] = bulkSeg{}
	}
	sc.segs = sc.segs[:0]
}

var scratchPool = sync.Pool{New: func() any { return new(bulkScratch) }}

func (s *Server) handleBulkRank(w http.ResponseWriter, r *http.Request) {
	s.serveBulk(w, r, false)
}

func (s *Server) handleBulkPlan(w http.ResponseWriter, r *http.Request) {
	s.serveBulk(w, r, true)
}

func (s *Server) serveBulk(w http.ResponseWriter, r *http.Request, isPlan bool) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	sc := scratchPool.Get().(*bulkScratch)
	s.streamBulk(w, r, buf, sc, isPlan)
	// streamBulk has waited out every fill before returning, so nothing
	// concurrent still aliases the body buffer or the segments.
	sc.release()
	scratchPool.Put(sc)
	if buf.Cap() <= bufPoolMax {
		bufPool.Put(buf)
	}
}

func (s *Server) streamBulk(w http.ResponseWriter, r *http.Request, buf *bytes.Buffer, sc *bulkScratch, isPlan bool) {
	if _, err := buf.ReadFrom(r.Body); err != nil {
		s.writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	data := buf.Bytes()
	bf := &sc.bf
	if !parseBulkFast(data, bf) {
		bf.reset()
		if err := decodeBulkSlow(data, bf); err != nil {
			s.writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}

	top := 50
	if bf.hasTop {
		if bf.top < 1 {
			s.writeErr(w, http.StatusBadRequest, "bad top %d", bf.top)
			return
		}
		top = bf.top
	}
	var (
		cm plan.CostModel
		b  plan.Budget
	)
	if isPlan {
		if len(bf.pipeIDs) > 0 {
			s.writeErr(w, http.StatusBadRequest, "pipe_ids are not supported on /api/bulk/plan")
			return
		}
		var perr error
		if cm, b, perr = planParams(&bf.plan); perr != nil {
			s.writeErr(w, http.StatusBadRequest, "%v", perr)
			return
		}
	}
	model := bf.plan.model
	if len(model) == 0 {
		model = s.defaultModel
	}
	// Published-on-def is the allocation-free common case; knownModel
	// (which walks the registry) only runs for models nobody trained yet.
	if _, ok := (*s.def.models.Load())[string(model)]; !ok && !knownModel(string(model)) {
		s.writeErr(w, http.StatusBadRequest, "unknown model %q", model)
		return
	}

	// Segment list, in output order: named regions (request order), then
	// pipe IDs (request order); with neither, every shard in fan-out
	// order. Naming errors are still plain HTTP errors here — nothing
	// has streamed yet.
	if len(bf.regions) == 0 && len(bf.pipeIDs) == 0 {
		for _, sh := range s.shards {
			sc.segs = append(sc.segs, bulkSeg{sh: sh})
		}
	} else {
		for _, reg := range bf.regions {
			sh, ok := s.byRegion[string(reg)]
			if !ok {
				s.writeErr(w, http.StatusBadRequest, "unknown region %q", reg)
				return
			}
			sc.segs = append(sc.segs, bulkSeg{sh: sh})
		}
		for _, id := range bf.pipeIDs {
			sh, _, ok := s.findPipe(nil, string(id))
			if !ok {
				s.writeErr(w, http.StatusNotFound, "unknown pipe %q", id)
				return
			}
			sc.segs = append(sc.segs, bulkSeg{sh: sh, pipeID: id})
		}
	}

	// Phase 1: serial resolution off published snapshots and caches.
	var miss []int
	kp := keyPool.Get().(*[]byte)
	key := (*kp)[:0]
	for i := range sc.segs {
		seg := &sc.segs[i]
		tm, ok := (*seg.sh.models.Load())[string(model)]
		if !ok {
			seg.ready = make(chan struct{})
			miss = append(miss, i)
			continue
		}
		s.metrics.sfCached.Inc()
		seg.tm = tm
		if len(seg.pipeID) > 0 {
			continue // pipe lines render straight off the snapshot
		}
		if isPlan {
			if tm.calibrator == nil {
				seg.errMsg = fmt.Sprintf("model %q has no calibrator; cannot price a plan", model)
				s.metrics.bulkSegErrs.Inc()
				continue
			}
			key = appendPlanKey(key[:0], model, tm.etag, cm, b)
			if e, ok := seg.sh.cache.Get(key); ok {
				s.metrics.planCacheHits.Inc()
				seg.entry = e
				continue
			}
		} else {
			// Per-shard key: the canonical entry count clamps to each
			// shard's own ranking length, exactly like the single path.
			key = appendRankingKey(key[:0], model, tm.etag, len(tm.topEntries(top)))
			if e, ok := seg.sh.cache.Get(key); ok {
				seg.entry = e
				continue
			}
		}
		seg.ready = make(chan struct{})
		miss = append(miss, i)
	}
	*kp = key
	keyPool.Put(kp)

	// Phase 2: misses fill concurrently. Each body closes its segment's
	// ready channel as its final touch of shared state, so once phase 3
	// has observed every channel, nothing still references the scratch.
	if len(miss) > 0 {
		ctx := r.Context()
		modelName := string(model)
		go s.pool.ForEachDynamic(len(miss), func(i int) {
			seg := &sc.segs[miss[i]]
			s.fillBulkSeg(ctx, seg, modelName, top, isPlan, cm, b)
			close(seg.ready)
		})
	}

	// Phase 3: ordered streaming writer. A client write failure stops
	// writing but keeps draining ready channels — the scratch cannot be
	// recycled while fills are in flight.
	h := w.Header()
	h["Content-Type"] = ndjsonCT
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	dead := false
	line := sc.line
	for i := range sc.segs {
		seg := &sc.segs[i]
		if seg.ready != nil {
			<-seg.ready
		}
		if dead {
			continue
		}
		line = s.appendBulkLine(line[:0], seg, model, isPlan)
		if _, err := w.Write(line); err != nil {
			s.log.Printf("serve: bulk write: %v", err)
			dead = true
			continue
		}
		s.metrics.bulkSegments.Inc()
		if flusher != nil {
			flusher.Flush()
		}
	}
	sc.line = line
}

// fillBulkSeg resolves one miss segment: train (or join the in-flight
// training of) the model through the shard singleflight, then fill the
// shard's cache entry exactly as the single-region handler would. Every
// failure becomes the segment's error line.
func (s *Server) fillBulkSeg(ctx context.Context, seg *bulkSeg, model string, top int, isPlan bool, cm plan.CostModel, b plan.Budget) {
	tm := seg.tm
	if tm == nil {
		var err error
		if tm, err = s.getShard(ctx, seg.sh, model); err != nil {
			seg.errMsg = err.Error()
			s.metrics.bulkSegErrs.Inc()
			return
		}
		seg.tm = tm
	}
	if len(seg.pipeID) > 0 {
		return // pipe lines render straight off the snapshot
	}
	kp := keyPool.Get().(*[]byte)
	key := (*kp)[:0]
	if isPlan {
		if tm.calibrator == nil {
			seg.errMsg = fmt.Sprintf("model %q has no calibrator; cannot price a plan", model)
			s.metrics.bulkSegErrs.Inc()
		} else {
			key = appendPlanKey(key, model, tm.etag, cm, b)
			if e, ok := seg.sh.cache.Get(key); ok {
				s.metrics.planCacheHits.Inc()
				seg.entry = e
			} else {
				s.metrics.planCacheMisses.Inc()
				e, _, err := s.buildPlanBody(tm, model, cm, b)
				if err != nil {
					seg.errMsg = err.Error()
					s.metrics.bulkSegErrs.Inc()
				} else {
					seg.sh.cache.Add(key, e)
					seg.entry = e
				}
			}
		}
	} else {
		key = appendRankingKey(key, model, tm.etag, len(tm.topEntries(top)))
		e, err := seg.sh.cache.GetOrFill(key, func() (respcache.Entry, error) {
			body, err := encodeBody(tm.topEntries(top))
			if err != nil {
				return respcache.Entry{}, err
			}
			return respcache.Entry{Body: body, ETag: tm.etag}, nil
		})
		if err != nil {
			seg.errMsg = err.Error()
			s.metrics.bulkSegErrs.Inc()
		} else {
			seg.entry = e
		}
	}
	*kp = key
	keyPool.Put(kp)
}

// appendBulkLine renders one NDJSON line. Region lines splice the
// cached single-call body verbatim (minus its trailing newline), so the
// payload is byte-identical to the standalone endpoint's response.
func (s *Server) appendBulkLine(line []byte, seg *bulkSeg, model []byte, isPlan bool) []byte {
	if len(seg.pipeID) > 0 {
		return s.appendPipeLine(line, seg, model)
	}
	line = append(line, `{"region":`...)
	line = writeJSONString(line, seg.sh.region)
	line = append(line, `,"model":`...)
	line = writeJSONString(line, model)
	if seg.errMsg != "" {
		line = append(line, `,"error":`...)
		line = writeJSONString(line, seg.errMsg)
		return append(line, '}', '\n')
	}
	// The stored ETag is already a quoted strong validator, so it is
	// spliced raw as a JSON string.
	line = append(line, `,"etag":`...)
	line = append(line, seg.entry.ETag...)
	if isPlan {
		line = append(line, `,"plan":`...)
	} else {
		line = append(line, `,"ranking":`...)
	}
	line = append(line, trimNL(seg.entry.Body)...)
	return append(line, '}', '\n')
}

// appendPipeLine renders one per-pipe line off the snapshot's rank
// index: two array reads, no scan, no encoder.
func (s *Server) appendPipeLine(line []byte, seg *bulkSeg, model []byte) []byte {
	line = append(line, `{"pipe_id":`...)
	line = writeJSONString(line, seg.pipeID)
	line = append(line, `,"region":`...)
	line = writeJSONString(line, seg.sh.region)
	line = append(line, `,"model":`...)
	line = writeJSONString(line, model)
	errMsg := seg.errMsg
	if errMsg == "" {
		if row, ok := seg.tm.rankIdx[string(seg.pipeID)]; ok {
			e := &seg.tm.entries[seg.tm.rankOf[row]-1]
			line = append(line, `,"rank":`...)
			line = strconv.AppendInt(line, int64(e.Rank), 10)
			line = append(line, `,"score":`...)
			line = writeJSONFloat(line, e.Score)
			// Matches the single ranking's omitempty rendering: present
			// only when calibrated and non-zero.
			if seg.tm.calibrator != nil && e.FailProb != 0 {
				line = append(line, `,"fail_prob":`...)
				line = writeJSONFloat(line, e.FailProb)
			}
			return append(line, '}', '\n')
		}
		errMsg = "pipe has no rank under this model"
		s.metrics.bulkSegErrs.Inc()
	}
	line = append(line, `,"error":`...)
	line = writeJSONString(line, errMsg)
	return append(line, '}', '\n')
}

// trimNL strips the trailing newline json.Encoder leaves on cached
// bodies so they splice mid-object.
func trimNL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return b[:n-1]
	}
	return b
}

const hexDigits = "0123456789abcdef"

// writeJSONString appends s as a JSON string, matching encoding/json's
// default escaping (including the HTML-safe <, >, & escapes) so
// hand-built lines compare byte-equal to stdlib output. Inputs here are
// region names, model names, pipe IDs and error texts — all ASCII, so
// the stdlib's invalid-UTF-8 and U+2028/U+2029 handling is not
// replicated.
func writeJSONString[T ~string | ~[]byte](dst []byte, s T) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"', '\\':
			dst = append(dst, '\\', c)
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// writeJSONFloat appends f exactly as encoding/json renders a float64:
// shortest representation, 'f' form except for very small/large
// magnitudes, which use 'e' form with a cleaned-up exponent.
func writeJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}
