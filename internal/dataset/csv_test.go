package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestPipesCSVRoundTrip(t *testing.T) {
	in := testNetwork().Pipes()
	var buf bytes.Buffer
	if err := WritePipes(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPipes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestFailuresCSVRoundTrip(t *testing.T) {
	in := testNetwork().Failures()
	var buf bytes.Buffer
	if err := WriteFailures(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFailures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestReadPipesRejectsBadHeader(t *testing.T) {
	csv := "id,wrong\nP1,2\n"
	if _, err := ReadPipes(strings.NewReader(csv)); err == nil {
		t.Fatal("bad header must error")
	}
}

func TestReadPipesRejectsBadField(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePipes(&buf, testNetwork().Pipes()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the diameter of the first data row.
	s := buf.String()
	s = strings.Replace(s, "375", "not-a-number", 1)
	_, err := ReadPipes(strings.NewReader(s))
	if err == nil || !strings.Contains(err.Error(), "diameter_mm") {
		t.Fatalf("want diameter parse error, got %v", err)
	}
}

// pipeRow renders one pipe data row under the canonical header, with
// field overrides by column name — the helper behind the parser
// hardening tests (non-finite floats, duplicate/empty IDs).
func pipeRow(t *testing.T, overrides map[string]string) string {
	t.Helper()
	base := map[string]string{
		"id": "P1", "class": "CWM", "material": "CICL", "coating": "NONE",
		"diameter_mm": "375", "length_m": "100", "laid_year": "1970",
		"soil_corrosivity": "high", "soil_expansivity": "low",
		"soil_geology": "clay", "soil_map": "Z1", "dist_traffic_m": "5",
		"x": "0", "y": "0", "segments": "4",
	}
	for k, v := range overrides {
		if _, ok := base[k]; !ok {
			t.Fatalf("unknown column %q", k)
		}
		base[k] = v
	}
	cells := make([]string, len(pipeHeader))
	for i, h := range pipeHeader {
		cells[i] = base[h]
	}
	return strings.Join(cells, ",") + "\n"
}

func TestReadPipesRejectsNonFiniteFloats(t *testing.T) {
	header := strings.Join(pipeHeader, ",") + "\n"
	for _, tc := range []struct{ field, value string }{
		{"diameter_mm", "NaN"},
		{"length_m", "+Inf"},
		{"dist_traffic_m", "-Inf"},
		{"x", "1e999"}, // overflows to +Inf with an ErrRange
	} {
		in := header + pipeRow(t, map[string]string{tc.field: tc.value})
		_, err := ReadPipes(strings.NewReader(in))
		if err == nil || !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s=%s: want parse error naming the field, got %v", tc.field, tc.value, err)
		}
	}
}

func TestReadPipesRejectsDuplicateID(t *testing.T) {
	in := strings.Join(pipeHeader, ",") + "\n" + pipeRow(t, nil) + pipeRow(t, nil)
	_, err := ReadPipes(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "duplicate pipe ID") {
		t.Fatalf("want duplicate-ID error, got %v", err)
	}
}

func TestReadPipesRejectsEmptyID(t *testing.T) {
	in := strings.Join(pipeHeader, ",") + "\n" + pipeRow(t, map[string]string{"id": ""})
	_, err := ReadPipes(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "empty pipe id") {
		t.Fatalf("want empty-ID error, got %v", err)
	}
}

func TestReadFailuresRejectsBadHeaderAndField(t *testing.T) {
	if _, err := ReadFailures(strings.NewReader("nope\n")); err == nil {
		t.Fatal("bad header must error")
	}
	good := "pipe_id,segment,year,day,mode\nP1,x,2000,1,BREAK\n"
	if _, err := ReadFailures(strings.NewReader(good)); err == nil {
		t.Fatal("bad segment must error")
	}
}

func TestSaveLoadDirRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "regionT")
	n := testNetwork()
	if err := SaveDir(n, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Region != "T" || got.ObservedFrom != 1998 || got.ObservedTo != 2009 {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Pipes(), n.Pipes()) {
		t.Fatal("pipes differ after round trip")
	}
	if !reflect.DeepEqual(got.Failures(), n.Failures()) {
		t.Fatal("failures differ after round trip")
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir must error")
	}
}

func TestLoadDirRejectsInvalidNetwork(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bad")
	pipes := []Pipe{{ID: "P1", Class: ReticulationMain, Material: PVC,
		Coating: CoatingNone, DiameterMM: 100, LengthM: 10, LaidYear: 1990, Segments: 1}}
	fails := []Failure{{PipeID: "GHOST", Segment: 0, Year: 2000, Day: 1, Mode: ModeBreak}}
	n := NewNetwork("bad", 1998, 2009, pipes, fails)
	if err := SaveDir(n, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("invalid network must fail LoadDir validation")
	}
}
