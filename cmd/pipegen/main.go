// Command pipegen generates a synthetic metropolitan water-pipe network —
// the documented substitution for the proprietary utility data of the
// reproduced paper — and writes it as CSV (pipes.csv, failures.csv,
// meta.csv).
//
// Usage:
//
//	pipegen -region A -seed 42 -scale 0.25 -out data/regionA
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/synthetic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipegen: ")

	region := flag.String("region", "A", "region preset: A, B or C")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.Float64("scale", 1.0, "network scale in (0, 1]; 1 = full paper size")
	out := flag.String("out", "", "output directory (required)")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := synthetic.Preset(*region, *seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err = cfg.Scaled(*scale)
	if err != nil {
		log.Fatal(err)
	}
	net, truth, err := synthetic.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.SaveDir(net, *out); err != nil {
		log.Fatal(err)
	}

	tb := eval.NewTable(fmt.Sprintf("generated region %s (seed %d, scale %.2f) -> %s",
		*region, *seed, *scale, *out),
		"scope", "pipes", "failures", "laid", "km")
	for _, row := range net.Summarize() {
		tb.AddRow(row.Scope,
			fmt.Sprintf("%d", row.NumPipes),
			fmt.Sprintf("%d", row.NumFailures),
			fmt.Sprintf("%d-%d", row.LaidFrom, row.LaidTo),
			fmt.Sprintf("%.0f", row.TotalKM))
	}
	fmt.Print(tb.String())
	fmt.Printf("true failures before recording noise: %d\n", truth.TrueFailures)
}
