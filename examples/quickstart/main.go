// Quickstart: simulate a region, train the paper's direct-AUC ranker, and
// inspect the resulting prioritisation — the whole public API in ~50 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// 1. Obtain a network. Region "A" is a calibrated preset of a populous
	// suburban water network; scale 0.1 keeps this example fast (~1.5k
	// pipes). Use pipefail.LoadNetwork to read a real CSV export instead.
	net, err := pipefail.GenerateRegion("A", 42, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region %s: %d pipes, %d recorded failures over %d-%d\n",
		net.Region, net.NumPipes(), net.NumFailures(), net.ObservedFrom, net.ObservedTo)

	// 2. Build the pipeline. The default split follows the paper: train on
	// every observed year but the last, evaluate on the held-out year.
	p, err := pipefail.NewPipeline(net, pipefail.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train the paper's method and rank the network.
	ranking, err := p.TrainAndRank("DirectAUC-ES")
	if err != nil {
		log.Fatal(err)
	}

	// 4. Consume the ranking: evaluation metrics against the held-out year
	// and the top of the inspection list.
	fmt.Printf("test-year AUC: %.4f\n", ranking.AUC())
	fmt.Printf("failures caught inspecting top 1%%:  %.1f%%\n", 100*ranking.DetectionAt(0.01))
	fmt.Printf("failures caught inspecting top 10%%: %.1f%%\n", 100*ranking.DetectionAt(0.10))
	fmt.Println("ten highest-risk pipes:")
	for i, id := range ranking.TopIDs(10) {
		fmt.Printf("  %2d. %s\n", i+1, id)
	}
}
