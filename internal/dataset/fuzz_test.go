package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadPipes asserts the pipe-table parser never panics and never
// returns rows from malformed input without an error.
func FuzzReadPipes(f *testing.F) {
	var good bytes.Buffer
	if err := WritePipes(&good, testNetwork().Pipes()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("id,wrong\n")
	f.Add("")
	f.Add("id,class,material,coating,diameter_mm,length_m,laid_year,soil_corrosivity,soil_expansivity,soil_geology,soil_map,dist_traffic_m,x,y,segments\nP,CWM,CICL,NONE,x,1,1,a,b,c,d,1,1,1,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		pipes, err := ReadPipes(strings.NewReader(input))
		if err == nil {
			// Whatever parsed must round-trip.
			var buf bytes.Buffer
			if werr := WritePipes(&buf, pipes); werr != nil {
				t.Fatalf("round trip write failed: %v", werr)
			}
			if _, rerr := ReadPipes(&buf); rerr != nil {
				t.Fatalf("round trip read failed: %v", rerr)
			}
		}
	})
}

// FuzzReadFailures mirrors FuzzReadPipes for the failure log.
func FuzzReadFailures(f *testing.F) {
	var good bytes.Buffer
	if err := WriteFailures(&good, testNetwork().Failures()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("pipe_id,segment,year,day,mode\nP,0,2000,1,BREAK\n")
	f.Add("pipe_id,segment,year,day,mode\nP,a,b,c,BREAK\n")
	f.Fuzz(func(t *testing.T, input string) {
		fails, err := ReadFailures(strings.NewReader(input))
		if err == nil {
			var buf bytes.Buffer
			if werr := WriteFailures(&buf, fails); werr != nil {
				t.Fatalf("round trip write failed: %v", werr)
			}
			if _, rerr := ReadFailures(&buf); rerr != nil {
				t.Fatalf("round trip read failed: %v", rerr)
			}
		}
	})
}
