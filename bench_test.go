package pipefail

// Benchmark harness: one benchmark per table and figure of the reproduced
// evaluation (see the experiment index in DESIGN.md), plus ablation benches
// for the design choices DESIGN.md calls out. Each benchmark regenerates
// its experiment at a reduced scale so `go test -bench=.` stays laptop-
// friendly; pass -benchtime=1x for a single replication, and use
// cmd/pipeeval for full-scale paper-shaped output.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/stats"
)

// benchOpts is the reduced-scale configuration shared by the benches.
func benchOpts(models ...string) experiments.Options {
	return experiments.Options{
		Seed:          1,
		Scale:         0.05,
		Regions:       []string{"A", "B", "C"},
		Models:        models,
		ESGenerations: 20,
	}
}

func BenchmarkT1DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.T1DatasetSummary(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if tb.NumRows() == 0 {
			b.Fatal("empty summary")
		}
	}
}

func BenchmarkT2AUCTable(b *testing.B) {
	opts := benchOpts("DirectAUC-ES", "RankSVM", "Logistic", "Cox", "Weibull")
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunRegions(opts)
		if err != nil {
			b.Fatal(err)
		}
		if experiments.T2AUCTable(results).NumRows() != 5 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkT3Budget(b *testing.B) {
	opts := benchOpts("DirectAUC-ES", "Cox")
	opts.Regions = []string{"A"}
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunRegions(opts)
		if err != nil {
			b.Fatal(err)
		}
		if experiments.T3BudgetTable(results).NumRows() != 2 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkF1DetectionCurves(b *testing.B) {
	opts := benchOpts("DirectAUC-ES", "Cox", "TimeExp")
	opts.Regions = []string{"A"}
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunRegions(opts)
		if err != nil {
			b.Fatal(err)
		}
		if experiments.F1DetectionSeries(results, nil).NumRows() != 3 {
			b.Fatal("unexpected series shape")
		}
	}
}

func BenchmarkT4Significance(b *testing.B) {
	opts := benchOpts("DirectAUC-ES", "Cox", "Heuristic-Age")
	opts.Regions = []string{"A"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.T4Significance(opts, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 2 {
			b.Fatal("unexpected result count")
		}
	}
}

func BenchmarkF2Window(b *testing.B) {
	opts := benchOpts("DirectAUC-ES", "Cox")
	opts.Regions = []string{"A"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F2WindowSweep(opts, []int{2, 5, 11}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT5Ablation(b *testing.B) {
	opts := benchOpts("DirectAUC-ES")
	opts.Regions = []string{"A"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.T5Ablation(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 7 {
			b.Fatal("unexpected ablation rows")
		}
	}
}

func BenchmarkF3Scalability(b *testing.B) {
	opts := benchOpts("DirectAUC-ES", "Logistic")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F3Scalability(opts, []int{500, 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT6PipeClass(b *testing.B) {
	opts := benchOpts("Cox")
	opts.Regions = []string{"A"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.T6ClassBreakdown(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF4RiskMap(b *testing.B) {
	opts := benchOpts("Cox")
	opts.Regions = []string{"A"}
	for i := 0; i < b.N; i++ {
		rm, err := experiments.F4RiskMap(opts, "A")
		if err != nil {
			b.Fatal(err)
		}
		if err := rm.WriteSVG(io.Discard, 400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF5Renewal(b *testing.B) {
	opts := benchOpts("Logistic")
	for i := 0; i < b.N; i++ {
		tb, err := experiments.F5RenewalImpact(opts, "A", 0.02, 3)
		if err != nil {
			b.Fatal(err)
		}
		if tb.NumRows() != 4 {
			b.Fatal("unexpected policy rows")
		}
	}
}

// --- Ablation benches for the design choices called out in DESIGN.md ---

// benchSets prepares one reduced-scale train/test pair for learner-level
// ablations.
func benchSets(b *testing.B) (*feature.Set, *feature.Set) {
	b.Helper()
	net, err := GenerateRegion("A", 1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	split, err := dataset.PaperSplit(net)
	if err != nil {
		b.Fatal(err)
	}
	fb, err := feature.NewBuilder(net, feature.Options{})
	if err != nil {
		b.Fatal(err)
	}
	train, err := fb.TrainSet(split)
	if err != nil {
		b.Fatal(err)
	}
	test, err := fb.TestSet(split)
	if err != nil {
		b.Fatal(err)
	}
	return train, test
}

// BenchmarkAblationLearners compares the three ranking learners of the
// framework on identical data (direct ES vs convex surrogate vs boosting).
func BenchmarkAblationLearners(b *testing.B) {
	train, test := benchSets(b)
	learners := map[string]func() core.Model{
		"DirectAUC": func() core.Model {
			return core.NewDirectAUC(core.DirectAUCConfig{Seed: 1, Generations: 20})
		},
		"RankSVM":   func() core.Model { return core.NewRankSVM(core.RankSVMConfig{Seed: 1}) },
		"RankBoost": func() core.Model { return core.NewRankBoost(core.RankBoostConfig{Rounds: 40}) },
	}
	for name, mk := range learners {
		b.Run(name, func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				m := mk()
				if err := m.Fit(train); err != nil {
					b.Fatal(err)
				}
				scores, err := m.Scores(test)
				if err != nil {
					b.Fatal(err)
				}
				auc = eval.AUC(scores, test.Label)
			}
			b.ReportMetric(auc, "test-AUC")
		})
	}
}

// BenchmarkAblationAUCFitness compares the sampled-pair fitness against
// exact full-set AUC fitness in the ES (cost vs fidelity).
func BenchmarkAblationAUCFitness(b *testing.B) {
	train, test := benchSets(b)
	cases := map[string]core.DirectAUCConfig{
		"sampled": {Seed: 1, Generations: 20},
		"exact":   {Seed: 1, Generations: 20, BatchNegatives: train.Len()},
	}
	for name, cfg := range cases {
		b.Run(name, func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				m := core.NewDirectAUC(cfg)
				if err := m.Fit(train); err != nil {
					b.Fatal(err)
				}
				scores, err := m.Scores(test)
				if err != nil {
					b.Fatal(err)
				}
				auc = eval.AUC(scores, test.Label)
			}
			b.ReportMetric(auc, "test-AUC")
		})
	}
}

// BenchmarkAblationWarmStart measures the value of seeding the ES with the
// convex surrogate solution.
func BenchmarkAblationWarmStart(b *testing.B) {
	train, test := benchSets(b)
	cases := map[string]core.DirectAUCConfig{
		"warm": {Seed: 1, Generations: 20},
		"cold": {Seed: 1, Generations: 20, DisableWarmStart: true},
	}
	for name, cfg := range cases {
		b.Run(name, func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				m := core.NewDirectAUC(cfg)
				if err := m.Fit(train); err != nil {
					b.Fatal(err)
				}
				scores, err := m.Scores(test)
				if err != nil {
					b.Fatal(err)
				}
				auc = eval.AUC(scores, test.Label)
			}
			b.ReportMetric(auc, "test-AUC")
		})
	}
}

// BenchmarkAblationCalibration compares Platt and isotonic calibration of
// the ranking scores (Brier score reported; lower is better).
func BenchmarkAblationCalibration(b *testing.B) {
	train, test := benchSets(b)
	m := core.NewDirectAUC(core.DirectAUCConfig{Seed: 1, Generations: 20})
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	trainScores, err := m.Scores(train)
	if err != nil {
		b.Fatal(err)
	}
	testScores, err := m.Scores(test)
	if err != nil {
		b.Fatal(err)
	}
	calibs := map[string]func() core.Calibrator{
		"platt":    func() core.Calibrator { return &core.PlattCalibrator{} },
		"isotonic": func() core.Calibrator { return &core.IsotonicCalibrator{} },
	}
	for name, mk := range calibs {
		b.Run(name, func(b *testing.B) {
			var brier float64
			for i := 0; i < b.N; i++ {
				c := mk()
				if err := c.FitCal(trainScores, train.Label); err != nil {
					b.Fatal(err)
				}
				brier = 0
				for j, s := range testScores {
					y := 0.0
					if test.Label[j] {
						y = 1
					}
					d := c.Prob(s) - y
					brier += d * d
				}
				brier /= float64(len(testScores))
			}
			b.ReportMetric(brier, "brier")
		})
	}
}

// BenchmarkAblationLabels compares next-year binary labels against
// cumulative-count labels (does richer label construction change the
// ranking quality of the convex learner?).
func BenchmarkAblationLabels(b *testing.B) {
	net, err := GenerateRegion("A", 1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	split, err := dataset.PaperSplit(net)
	if err != nil {
		b.Fatal(err)
	}
	fb, err := feature.NewBuilder(net, feature.Options{})
	if err != nil {
		b.Fatal(err)
	}
	train, err := fb.TrainSet(split)
	if err != nil {
		b.Fatal(err)
	}
	test, err := fb.TestSet(split)
	if err != nil {
		b.Fatal(err)
	}
	// Cumulative variant: relabel an instance positive when the pipe fails
	// in the instance year OR any earlier training year (a noisier, more
	// abundant positive set).
	cumTrain := &feature.Set{Names: train.Names, X: train.X, Age: train.Age,
		LengthM: train.LengthM, PipeIdx: train.PipeIdx, Year: train.Year}
	cumTrain.Label = make([]bool, train.Len())
	pipes := net.Pipes()
	for i := range cumTrain.Label {
		id := pipes[train.PipeIdx[i]].ID
		cumTrain.Label[i] = net.FailureCount(id, split.TrainFrom, train.Year[i]) > 0
	}
	cases := map[string]*feature.Set{"next-year": train, "cumulative": cumTrain}
	for name, tr := range cases {
		b.Run(name, func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				m := core.NewRankSVM(core.RankSVMConfig{Seed: 1})
				if err := m.Fit(tr); err != nil {
					b.Fatal(err)
				}
				scores, err := m.Scores(test)
				if err != nil {
					b.Fatal(err)
				}
				auc = eval.AUC(scores, test.Label)
			}
			b.ReportMetric(auc, "test-AUC")
		})
	}
}

// BenchmarkDirectAUCParallel measures the intra-model parallel training
// engine: the same DirectAUC fit at 1, 2, 4 and GOMAXPROCS fitness
// workers. Exact (full-batch) fitness makes the fanned-out evaluation
// dominate, which is the regime network-scale training runs in. Results
// are bit-identical across worker counts (see
// TestDirectAUCDeterministicAcrossWorkers in internal/core); only
// wall-clock changes. On a multi-core host the 4-worker case is expected
// to be >= 2x faster than workers=1; on a single-core host the fan-out
// is near-neutral (chunked goroutines, no per-item overhead).
func BenchmarkDirectAUCParallel(b *testing.B) {
	train, _ := benchSets(b)
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := core.NewDirectAUC(core.DirectAUCConfig{
					Seed: 1, Generations: 20, BatchNegatives: train.Len(), Workers: w,
				})
				if err := m.Fit(train); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAUCKernel measures the core AUC computation itself.
func BenchmarkAUCKernel(b *testing.B) {
	rng := stats.NewRNG(1)
	n := 100000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Bernoulli(0.03)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a := eval.AUC(scores, labels); a < 0.4 || a > 0.6 {
			b.Fatalf("AUC %v", a)
		}
	}
	b.ReportMetric(float64(n), "instances")
}

// BenchmarkPipelineEndToEnd measures the full public-API flow.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	net, err := GenerateRegion("A", 1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		p, err := NewPipeline(net, WithSeed(int64(i)), WithESGenerations(15))
		if err != nil {
			b.Fatal(err)
		}
		ranking, err := p.TrainAndRank("DirectAUC-ES")
		if err != nil {
			b.Fatal(err)
		}
		if ranking.Len() == 0 {
			b.Fatal("empty ranking")
		}
	}
}

// BenchmarkGenerate measures the synthetic-data generator at bench scale.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := GenerateRegion("A", int64(i), 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if net.NumFailures() == 0 {
			b.Fatal("no failures generated")
		}
	}
}

// Example-style smoke check so `go test` exercises the fmt path of tables.
func ExampleModels() {
	fmt.Println(Models()[0])
	// Output: DirectAUC-ES
}
