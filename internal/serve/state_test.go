package serve

// Tests for warm-restart persistence: save-on-train, byte-identical
// restore (same ranking ETag, no retraining), quarantine of corrupt or
// mismatched state files, and the non-persistable model whitelist.

import (
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// stateTestServer builds a server over a fixed small network with a
// state dir attached. Every call with the same dir sees the same
// network, like a process restart would.
func stateTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	net, err := pipefail.GenerateRegion("A", 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(net, log.New(io.Discard, "", 0), pipefail.WithESGenerations(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetStateDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func fetchRankingETag(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ranking status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("ranking response has no ETag")
	}
	return etag
}

// TestWarmRestartServesIdenticalRankings is the acceptance test for the
// persistence layer: train on one server, boot a second one over the
// same state dir, and the second serves the same ranking (same ETag)
// without ever calling its trainer.
func TestWarmRestartServesIdenticalRankings(t *testing.T) {
	dir := t.TempDir()
	before := counterVal("serve.state.restored")

	_, ts1 := stateTestServer(t, dir)
	if code := postJSON(t, ts1.URL+"/api/models/DirectAUC-ES/train", nil, nil); code != 200 {
		t.Fatal("train failed")
	}
	etag1 := fetchRankingETag(t, ts1.URL+"/api/models/DirectAUC-ES/ranking?top=25")
	if _, err := os.Stat(filepath.Join(dir, "DirectAUC-ES.model.json")); err != nil {
		t.Fatalf("state file not written: %v", err)
	}

	// "Restart": a fresh server over the same dir. Its trainer is booby-
	// trapped — serving the ranking must not need it.
	s2, ts2 := stateTestServer(t, dir)
	s2.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		t.Error("warm restart retrained instead of restoring")
		return s2.train(ctx, sh, name)
	}
	if got := counterVal("serve.state.restored"); got < before+1 {
		t.Fatalf("serve.state.restored = %d, want >= %d", got, before+1)
	}
	var models []map[string]any
	if code := getJSON(t, ts2.URL+"/api/models", &models); code != 200 {
		t.Fatal("models list failed")
	}
	restored := false
	for _, m := range models {
		if m["name"] == "DirectAUC-ES" && m["trained"].(bool) {
			restored = true
		}
	}
	if !restored {
		t.Fatal("restored model not listed as trained")
	}
	if etag2 := fetchRankingETag(t, ts2.URL+"/api/models/DirectAUC-ES/ranking?top=25"); etag2 != etag1 {
		t.Fatalf("warm-restart ETag %q differs from original %q", etag2, etag1)
	}
}

// TestCorruptStateQuarantined drops garbage and a kind-mismatched file
// into the state dir: boot must not fail, both files must move aside to
// *.corrupt, and training must still work from scratch.
func TestCorruptStateQuarantined(t *testing.T) {
	dir := t.TempDir()
	before := counterVal("serve.state.quarantined")
	if err := os.WriteFile(filepath.Join(dir, "RankSVM.model.json"), []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Valid JSON, wrong kind for its filename: stale or hand-renamed.
	mismatch := `{"format":1,"kind":"RankSVM","feature_names":["a"],"weights":[1]}`
	if err := os.WriteFile(filepath.Join(dir, "DirectAUC-ES.model.json"), []byte(mismatch), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := stateTestServer(t, dir)
	if got := counterVal("serve.state.quarantined"); got != before+2 {
		t.Fatalf("serve.state.quarantined = %d, want %d", got, before+2)
	}
	for _, f := range []string{"RankSVM.model.json", "DirectAUC-ES.model.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Fatalf("corrupt %s still in place (err %v)", f, err)
		}
		if _, err := os.Stat(filepath.Join(dir, f+quarantineSuffix)); err != nil {
			t.Fatalf("quarantined copy of %s missing: %v", f, err)
		}
	}
	// The server still trains models normally.
	if code := postJSON(t, ts.URL+"/api/models/RankSVM/train", nil, nil); code != 200 {
		t.Fatal("train after quarantine failed")
	}
}

// TestNonPersistableModelsNotSaved trains a model without an on-disk
// format and asserts no state file (and no save error) appears.
func TestNonPersistableModelsNotSaved(t *testing.T) {
	dir := t.TempDir()
	saveErrs := counterVal("serve.state.save_errors")
	_, ts := stateTestServer(t, dir)
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, nil); code != 200 {
		t.Fatal("train failed")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("non-persistable train left %d files in the state dir", len(entries))
	}
	if got := counterVal("serve.state.save_errors"); got != saveErrs {
		t.Fatal("skipping a non-persistable model counted as a save error")
	}
}

// TestWriteModelFileSyncsStateDir pins the durability contract on the
// save path: after the temp file renames into place, the state
// directory itself is fsynced so the new directory entry survives a
// power cut. The seam swap stands in for a real crash test.
func TestWriteModelFileSyncsStateDir(t *testing.T) {
	dir := t.TempDir()
	var synced []string
	orig := syncDirFn
	syncDirFn = func(d string) error {
		synced = append(synced, d)
		return nil
	}
	t.Cleanup(func() { syncDirFn = orig })

	s, ts := stateTestServer(t, dir)
	if code := postJSON(t, ts.URL+"/api/models/RankSVM/train", nil, nil); code != 200 {
		t.Fatalf("train status %d", code)
	}
	want := s.def.stateDir
	found := false
	for _, d := range synced {
		if d == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("state dir %q never fsynced after rename (synced: %v)", want, synced)
	}
}
