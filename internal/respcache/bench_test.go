package respcache

import (
	"net/http"
	"strconv"
	"testing"

	"repro/internal/obs"
)

// BenchmarkRespCache measures the steady-state hit path — lookup, LRU
// bump, header install — which must stay allocation-free.
func BenchmarkRespCache(b *testing.B) {
	c := New("bench", 1<<20, obs.NewRegistry("bench"))
	body := make([]byte, 4096)
	for i := 0; i < 64; i++ {
		key := []byte("k" + strconv.Itoa(i))
		c.GetOrFill(key, func() (Entry, error) {
			return Entry{Body: body, ETag: `"v1"`}, nil
		})
	}
	key := []byte("k17")
	h := make(http.Header)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, ok := c.Get(key)
		if !ok {
			b.Fatal("miss")
		}
		e.SetHeaders(h)
	}
}
