package core

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// cancelAfterErrCalls is a context whose Err starts reporting Canceled
// after a fixed number of polls. Training loops poll Err exactly once per
// generation/round/epoch boundary, so this cancels a fit at a chosen,
// fully deterministic point — no timers, no goroutines.
type cancelAfterErrCalls struct {
	context.Context
	calls, after int
}

func (c *cancelAfterErrCalls) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestDirectAUCCancellationDeterminism pins the resilience contract the
// serve layer leans on: aborting a training run at generation k must not
// perturb anything — a fresh uncancelled run afterwards produces weights
// bit-identical to a run that was never preceded by a cancellation.
func TestDirectAUCCancellationDeterminism(t *testing.T) {
	train := gaussianSet(5, 300, 0.2, 2, 4)
	cfg := DirectAUCConfig{Seed: 9, Generations: 20}

	// Reference: never-cancelled run.
	ref := NewDirectAUC(cfg)
	if err := ref.Fit(train); err != nil {
		t.Fatal(err)
	}

	// A run cancelled mid-flight must error, leave the model unfitted,
	// and name the abort point.
	cancelled := NewDirectAUC(cfg)
	ctx := &cancelAfterErrCalls{Context: context.Background(), after: 14}
	err := cancelled.FitContext(ctx, train)
	if err == nil {
		t.Fatal("cancelled fit returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fit error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("error %v does not mention cancellation", err)
	}
	if cancelled.W != nil {
		t.Fatal("cancelled fit left weights behind")
	}
	if _, serr := cancelled.Scores(train); serr == nil {
		t.Fatal("cancelled model must refuse to score")
	}

	// Re-run uncancelled: bit-identical to the reference.
	rerun := NewDirectAUC(cfg)
	if err := rerun.FitContext(context.Background(), train); err != nil {
		t.Fatal(err)
	}
	if len(rerun.W) != len(ref.W) {
		t.Fatalf("weight lengths differ: %d vs %d", len(rerun.W), len(ref.W))
	}
	for i := range ref.W {
		if rerun.W[i] != ref.W[i] {
			t.Fatalf("weight %d differs after a cancelled run: %v vs %v", i, rerun.W[i], ref.W[i])
		}
	}
	if rerun.TrainAUC != ref.TrainAUC {
		t.Fatalf("train AUC differs: %v vs %v", rerun.TrainAUC, ref.TrainAUC)
	}
}

// TestFitContextMatchesFit pins that an uncancelled FitContext is the
// same computation as Fit for every cancellable learner.
func TestFitContextMatchesFit(t *testing.T) {
	train := gaussianSet(11, 300, 0.2, 2, 4)
	test := gaussianSet(12, 200, 0.2, 2, 4)
	pairs := []struct {
		name string
		mk   func() Model
	}{
		{"DirectAUC-ES", func() Model { return NewDirectAUC(DirectAUCConfig{Seed: 3, Generations: 10}) }},
		{"RankSVM", func() Model { return NewRankSVM(RankSVMConfig{Seed: 4, Epochs: 5}) }},
		{"RankBoost", func() Model { return NewRankBoost(RankBoostConfig{Rounds: 20}) }},
		{"RankNet", func() Model { return NewRankNet(RankNetConfig{Seed: 6, Epochs: 3}) }},
		{"Ensemble", func() Model {
			return NewEnsemble(nil,
				NewRankSVM(RankSVMConfig{Seed: 4, Epochs: 5}),
				NewRankBoost(RankBoostConfig{Rounds: 20}))
		}},
	}
	for _, p := range pairs {
		plain, ctxed := p.mk(), p.mk()
		if err := plain.Fit(train); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		cf, ok := ctxed.(ContextFitter)
		if !ok {
			t.Fatalf("%s does not implement ContextFitter", p.name)
		}
		if err := cf.FitContext(context.Background(), train); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		a, err := plain.Scores(test)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		b, err := ctxed.(Model).Scores(test)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: score %d differs between Fit and FitContext: %v vs %v", p.name, i, a[i], b[i])
			}
		}
	}
}

// TestCancelledFitsStayUnfitted drives every cancellable learner with an
// immediately-cancelled context and checks the abort contract: an error
// wrapping ctx.Err() and a model that refuses to score.
func TestCancelledFitsStayUnfitted(t *testing.T) {
	train := gaussianSet(13, 200, 0.2, 2, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	models := []Model{
		NewDirectAUC(DirectAUCConfig{Seed: 3, Generations: 10}),
		NewRankSVM(RankSVMConfig{Seed: 4, Epochs: 5}),
		NewRankBoost(RankBoostConfig{Rounds: 20}),
		NewRankNet(RankNetConfig{Seed: 6, Epochs: 3}),
		NewEnsemble(nil, NewRankSVM(RankSVMConfig{Seed: 4, Epochs: 5})),
	}
	for _, m := range models {
		err := FitModel(ctx, m, train)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error %v does not wrap context.Canceled", m.Name(), err)
		}
		if _, serr := m.Scores(train); serr == nil {
			t.Fatalf("%s: cancelled model scored anyway", m.Name())
		}
	}
	// Non-ContextFitter models go through the single up-front check.
	if err := FitModel(ctx, NewDirectAUC(DirectAUCConfig{}), train); err == nil {
		t.Fatal("pre-cancelled FitModel must fail")
	}
}
