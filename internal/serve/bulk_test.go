package serve

// Bulk streaming tests. The load-bearing property is byte-identity:
// every region line's payload must equal the corresponding single-call
// response body (modulo NDJSON framing), whether the segment resolved
// cold (bulk filled the cache) or cached (bulk replayed the single
// call's entry). Beyond that: request-order output, incremental
// flushing, per-segment error lines, the fast-parser subset property
// and the zero-allocation all-cached path.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// bulkLine is the decoded NDJSON line shape shared by both bulk
// endpoints (region lines carry ranking or plan; pipe lines carry
// rank/score).
type bulkLine struct {
	Region   string          `json:"region"`
	PipeID   string          `json:"pipe_id"`
	Model    string          `json:"model"`
	ETag     string          `json:"etag"`
	Ranking  json.RawMessage `json:"ranking"`
	Plan     json.RawMessage `json:"plan"`
	Rank     int             `json:"rank"`
	Score    float64         `json:"score"`
	FailProb float64         `json:"fail_prob"`
	Error    string          `json:"error"`
}

// postBulk issues one bulk request and returns the status, the raw
// body and the response.
func postBulk(t *testing.T, url, body string) (int, []byte, *http.Response) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp
}

// bulkLines splits and decodes an NDJSON body.
func bulkLines(t *testing.T, raw []byte) []bulkLine {
	t.Helper()
	var out []bulkLine
	for _, ln := range bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n")) {
		var l bulkLine
		if err := json.Unmarshal(ln, &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		out = append(out, l)
	}
	return out
}

// getRaw fetches url and returns the body and ETag header.
func getRaw(t *testing.T, url string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body, resp.Header.Get("ETag")
}

// TestBulkRankMatchesSingleCalls is the core byte-identity check, both
// directions: the first bulk call resolves cold (and fills the shard
// caches the single handlers then replay), the second resolves entirely
// from cache — both must match the standalone endpoint byte for byte.
func TestBulkRankMatchesSingleCalls(t *testing.T) {
	_, ts := newMultiTestServer(t)
	for pass, tag := range []string{"cold", "cached"} {
		code, raw, resp := postBulk(t, ts.URL+"/api/bulk/rank", `{"model":"Heuristic-Age","top":7}`)
		if code != 200 {
			t.Fatalf("%s bulk status %d: %s", tag, code, raw)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("Content-Type %q", ct)
		}
		lines := bulkLines(t, raw)
		if len(lines) != 2 || lines[0].Region != "A" || lines[1].Region != "B" {
			t.Fatalf("pass %d: lines %+v, want regions A then B", pass, lines)
		}
		for _, l := range lines {
			single, etag := getRaw(t, ts.URL+"/api/models/Heuristic-Age/ranking?top=7&region="+l.Region)
			want := bytes.TrimSuffix(single, []byte("\n"))
			if !bytes.Equal(l.Ranking, want) {
				t.Errorf("%s region %s: bulk ranking diverges from single call\nbulk:   %s\nsingle: %s",
					tag, l.Region, l.Ranking, want)
			}
			if quoted := `"` + l.ETag + `"`; quoted != etag {
				t.Errorf("%s region %s: bulk etag %s, single ETag %s", tag, l.Region, quoted, etag)
			}
		}
	}
}

// TestBulkRankAfterSingleCalls runs the other fill order: single calls
// populate the caches first, bulk must replay those exact entries.
func TestBulkRankAfterSingleCalls(t *testing.T) {
	_, ts := newMultiTestServer(t)
	singleA, _ := getRaw(t, ts.URL+"/api/models/Heuristic-Length/ranking?top=5&region=A")
	singleB, _ := getRaw(t, ts.URL+"/api/models/Heuristic-Length/ranking?top=5&region=B")

	// Regions in reverse request order: output must follow the request.
	code, raw, _ := postBulk(t, ts.URL+"/api/bulk/rank",
		`{"model":"Heuristic-Length","top":5,"regions":["B","A"]}`)
	if code != 200 {
		t.Fatalf("bulk status %d: %s", code, raw)
	}
	lines := bulkLines(t, raw)
	if len(lines) != 2 || lines[0].Region != "B" || lines[1].Region != "A" {
		t.Fatalf("lines %+v, want request order B then A", lines)
	}
	if want := bytes.TrimSuffix(singleB, []byte("\n")); !bytes.Equal(lines[0].Ranking, want) {
		t.Errorf("region B payload diverges\nbulk:   %s\nsingle: %s", lines[0].Ranking, want)
	}
	if want := bytes.TrimSuffix(singleA, []byte("\n")); !bytes.Equal(lines[1].Ranking, want) {
		t.Errorf("region A payload diverges\nbulk:   %s\nsingle: %s", lines[1].Ranking, want)
	}
}

func TestBulkPlanMatchesSingleCalls(t *testing.T) {
	_, ts := newMultiTestServer(t)
	const params = `"model":"Heuristic-Age","budget_km":3,"max_pipes":10`
	code, raw, _ := postBulk(t, ts.URL+"/api/bulk/plan", `{`+params+`,"regions":["B","A"]}`)
	if code != 200 {
		t.Fatalf("bulk plan status %d: %s", code, raw)
	}
	lines := bulkLines(t, raw)
	if len(lines) != 2 || lines[0].Region != "B" || lines[1].Region != "A" {
		t.Fatalf("lines %+v, want request order B then A", lines)
	}
	for _, l := range lines {
		if l.Error != "" {
			t.Fatalf("region %s error line: %s", l.Region, l.Error)
		}
		resp, err := http.Post(ts.URL+"/api/plan", "application/json",
			strings.NewReader(`{`+params+`,"region":"`+l.Region+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		single, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("single plan region %s: %d %v: %s", l.Region, resp.StatusCode, err, single)
		}
		if want := bytes.TrimSuffix(single, []byte("\n")); !bytes.Equal(l.Plan, want) {
			t.Errorf("region %s plan diverges\nbulk:   %s\nsingle: %s", l.Region, l.Plan, want)
		}
	}
}

// bulkPipeLine mirrors appendPipeLine's field order so json.Marshal of
// the expected values must reproduce the hand-built line exactly.
type bulkPipeLine struct {
	PipeID   string  `json:"pipe_id"`
	Region   string  `json:"region"`
	Model    string  `json:"model"`
	Rank     int     `json:"rank"`
	Score    float64 `json:"score"`
	FailProb float64 `json:"fail_prob,omitempty"`
}

func TestBulkRankPipeLines(t *testing.T) {
	s, ts := newMultiTestServer(t)
	ctx := context.Background()
	shB := s.byRegion["B"]
	tmA, err := s.get(ctx, "Heuristic-Age")
	if err != nil {
		t.Fatal(err)
	}
	tmB, err := s.getShard(ctx, shB, "Heuristic-Age")
	if err != nil {
		t.Fatal(err)
	}
	// Ranked pipes from each shard's snapshot: cross-shard resolution
	// must route each ID to the shard that owns it.
	idA, idB := tmA.entries[0].PipeID, tmB.entries[2].PipeID

	code, raw, _ := postBulk(t, ts.URL+"/api/bulk/rank",
		fmt.Sprintf(`{"model":"Heuristic-Age","pipe_ids":[%q,%q]}`, idB, idA))
	if code != 200 {
		t.Fatalf("bulk pipe status %d: %s", code, raw)
	}
	rawLines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(rawLines) != 2 {
		t.Fatalf("got %d lines: %s", len(rawLines), raw)
	}
	for i, want := range []bulkPipeLine{
		{PipeID: idB, Region: "B", Model: "Heuristic-Age", Rank: tmB.entries[2].Rank,
			Score: tmB.entries[2].Score, FailProb: tmB.entries[2].FailProb},
		{PipeID: idA, Region: "A", Model: "Heuristic-Age", Rank: tmA.entries[0].Rank,
			Score: tmA.entries[0].Score, FailProb: tmA.entries[0].FailProb},
	} {
		wantBytes, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rawLines[i], wantBytes) {
			t.Errorf("pipe line %d diverges from stdlib rendering\ngot:  %s\nwant: %s",
				i, rawLines[i], wantBytes)
		}
	}
}

// TestBulkRankStreamsIncrementally gates region B's training behind a
// channel and checks region A's line arrives on the wire before B
// resolves — the stream must flush per line, not buffer until the end.
func TestBulkRankStreamsIncrementally(t *testing.T) {
	s, ts := newMultiTestServer(t)
	if _, err := s.get(context.Background(), "Heuristic-Age"); err != nil {
		t.Fatal(err) // pre-train A so its segment resolves in phase 1
	}
	release := make(chan struct{})
	realTrain := s.train
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		if sh.region == "B" {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return realTrain(ctx, sh, name)
	}

	resp, err := http.Post(ts.URL+"/api/bulk/rank", "application/json",
		strings.NewReader(`{"model":"Heuristic-Age","top":5,"regions":["A","B"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := make(chan string, 2)
	go func() {
		defer close(lines)
		r := bufio.NewReader(resp.Body)
		for {
			ln, err := r.ReadString('\n')
			if ln != "" {
				lines <- ln
			}
			if err != nil {
				return
			}
		}
	}()

	select {
	case ln := <-lines:
		if !strings.Contains(ln, `"region":"A"`) {
			t.Fatalf("first streamed line %q, want region A", ln)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("region A line did not stream while region B was still training")
	}
	close(release)
	select {
	case ln := <-lines:
		if !strings.Contains(ln, `"region":"B"`) || strings.Contains(ln, `"error"`) {
			t.Fatalf("second streamed line %q, want clean region B", ln)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("region B line never arrived after release")
	}
	if _, more := <-lines; more {
		t.Fatal("unexpected extra line")
	}
}

// TestBulkErrors locks the pre-stream failure modes, which must be
// plain HTTP errors (nothing has streamed yet).
func TestBulkErrors(t *testing.T) {
	_, ts := newMultiTestServer(t)
	cases := []struct {
		name, path, body string
		wantCode         int
		wantErr          string
	}{
		{"bad top", "/api/bulk/rank", `{"top":0}`, 400, "bad top 0"},
		{"unknown region", "/api/bulk/rank", `{"regions":["Z"]}`, 400, `unknown region \"Z\"`},
		{"unknown model", "/api/bulk/rank", `{"model":"nope"}`, 400, `unknown model \"nope\"`},
		{"malformed body", "/api/bulk/rank", `{bad`, 400, "bad request body"},
		{"typed field mismatch", "/api/bulk/rank", `{"top":"5"}`, 400, "bad request body"},
		{"unknown pipe", "/api/bulk/rank", `{"pipe_ids":["nope"]}`, 404, `unknown pipe \"nope\"`},
		{"plan rejects pipe_ids", "/api/bulk/plan", `{"pipe_ids":["x"],"budget_km":1}`, 400, "pipe_ids are not supported"},
		{"plan without budget", "/api/bulk/plan", `{}`, 400, ""},
		{"plan zero failure cost", "/api/bulk/plan", `{"budget_km":1,"failure_cost":0}`, 400, ""},
	}
	for _, tc := range cases {
		code, raw, _ := postBulk(t, ts.URL+tc.path, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.wantCode, raw)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(string(raw), tc.wantErr) {
			t.Errorf("%s: body %s missing %q", tc.name, raw, tc.wantErr)
		}
	}
}

// TestBulkTrainFailureBecomesErrorLine: once streaming has begun a
// failed segment cannot change the status, so it must arrive as a
// {"error": ...} line while healthy segments still stream.
func TestBulkTrainFailureBecomesErrorLine(t *testing.T) {
	s, ts := newMultiTestServer(t)
	realTrain := s.train
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		if sh.region == "B" {
			return nil, errors.New("shard B trainer exploded")
		}
		return realTrain(ctx, sh, name)
	}
	errsBefore := s.metrics.bulkSegErrs.Value()
	code, raw, _ := postBulk(t, ts.URL+"/api/bulk/rank", `{"model":"Heuristic-Age","top":5}`)
	if code != 200 {
		t.Fatalf("status %d, want 200 with a per-segment error line", code)
	}
	lines := bulkLines(t, raw)
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %s", len(lines), raw)
	}
	if lines[0].Error != "" || len(lines[0].Ranking) == 0 {
		t.Fatalf("healthy region A line %+v", lines[0])
	}
	if !strings.Contains(lines[1].Error, "shard B trainer exploded") {
		t.Fatalf("region B line %+v, want the train error", lines[1])
	}
	if got := s.metrics.bulkSegErrs.Value() - errsBefore; got < 1 {
		t.Fatalf("bulk segment error counter delta %d, want >= 1", got)
	}
}

// TestParseBulkFastSubsetOfStdlib mirrors the plan-request property:
// anything the fast parser accepts, encoding/json must accept with
// identical decoded fields.
func TestParseBulkFastSubsetOfStdlib(t *testing.T) {
	corpus := append([]string{}, planReqCorpus...)
	corpus = append(corpus,
		`{"top":5}`,
		`{"top":0}`,
		`{"top":-3}`,
		`{"top":5.5}`,
		`{"top":"5"}`,
		`{"regions":[]}`,
		`{"regions":["A","B"]}`,
		`{"regions":[ "A" , "B" ]}`,
		`{"regions":["A"`,
		`{"regions":[1]}`,
		`{"regions":"A"}`,
		`{"regions":["a\"b"]}`,
		`{"pipe_ids":["P-1","P-2"],"top":9}`,
		`{"pipe_ids":[null]}`,
		`{"model":"Logistic","regions":["B","A"],"budget_km":3,"max_pipes":7}`,
		`{"unknown":["x"]}`,
		`{"unknown":true}`,
		`{"regions":["A"],"regions":["B"]}`,
	)
	for _, body := range corpus {
		var fast bulkFields
		ok := parseBulkFast([]byte(body), &fast)
		var slow bulkFields
		err := decodeBulkSlow([]byte(body), &slow)
		if !ok {
			continue // declined: the fallback owns the body either way
		}
		if err != nil {
			t.Errorf("body %q: fast path accepted what encoding/json rejects: %v", body, err)
			continue
		}
		if !bulkFieldsEqual(fast, slow) {
			t.Errorf("body %q: decoded fields diverge\nfast: %+v\nslow: %+v", body, fast, slow)
		}
	}
}

func bulkFieldsEqual(a, b bulkFields) bool {
	if !planFieldsEqual(a.plan, b.plan) || a.top != b.top || a.hasTop != b.hasTop {
		return false
	}
	if len(a.regions) != len(b.regions) || len(a.pipeIDs) != len(b.pipeIDs) {
		return false
	}
	for i := range a.regions {
		if string(a.regions[i]) != string(b.regions[i]) {
			return false
		}
	}
	for i := range a.pipeIDs {
		if string(a.pipeIDs[i]) != string(b.pipeIDs[i]) {
			return false
		}
	}
	return true
}

// TestBulkRankCacheHitZeroAlloc gates the all-cached bulk path: phase 1
// resolves every segment inline and the writer splices cached bodies,
// so a steady-state bulk request must not allocate.
func TestBulkRankCacheHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	s, _ := newTestServer(t)
	if _, err := s.get(context.Background(), "Heuristic-Age"); err != nil {
		t.Fatal(err)
	}
	rb := &replayBody{r: bytes.NewReader([]byte(`{"model":"Heuristic-Age","top":25}`))}
	req, err := http.NewRequest("POST", "/api/bulk/rank", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Body = rb
	w := &nopWriter{h: make(http.Header)}
	s.handleBulkRank(w, req) // warm: fills the ranking cache entry
	rb.rewind()
	s.handleBulkRank(w, req) // second pass settles pool objects
	allocs := testing.AllocsPerRun(500, func() {
		rb.rewind()
		s.handleBulkRank(w, req)
	})
	if allocs != 0 {
		t.Fatalf("cached bulk rank allocated %.1f times per request, want 0", allocs)
	}
}
