package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/feature"
)

// T1DatasetSummary reproduces the dataset-summary table: pipe and failure
// counts, laid-year ranges and the observation window per region and pipe
// class.
func T1DatasetSummary(opts Options) (*eval.Table, error) {
	opts = opts.withDefaults()
	tb := eval.NewTable(
		"T1: pipe network and failure data summary",
		"region", "scope", "pipes", "failures", "laid", "observed", "km")
	for _, name := range opts.Regions {
		net, _, err := GenerateRegion(name, opts)
		if err != nil {
			return nil, err
		}
		for _, row := range net.Summarize() {
			tb.AddRow(
				row.Region,
				row.Scope,
				fmt.Sprintf("%d", row.NumPipes),
				fmt.Sprintf("%d", row.NumFailures),
				fmt.Sprintf("%d-%d", row.LaidFrom, row.LaidTo),
				fmt.Sprintf("%d-%d", row.ObservedFrom, row.ObservedTo),
				fmt.Sprintf("%.0f", row.TotalKM),
			)
		}
	}
	return tb, nil
}

// T0Cohorts renders the exploratory cohort analysis the paper's data
// section opens with: empirical failure rates by material, age band and
// diameter band for each region.
func T0Cohorts(opts Options) (*eval.Table, error) {
	opts = opts.withDefaults()
	tb := eval.NewTable(
		"T0 (exploratory): empirical failure rates by cohort",
		"region", "cohort", "pipes", "pipe-years", "failures", "rate/pipe-yr", "rate/100km-yr")
	for _, name := range opts.Regions {
		net, _, err := GenerateRegion(name, opts)
		if err != nil {
			return nil, err
		}
		var rows []dataset.CohortRow
		rows = append(rows, net.CohortByMaterial()...)
		age, err := net.CohortByAgeBand(20)
		if err != nil {
			return nil, err
		}
		rows = append(rows, age...)
		diam, err := net.CohortByDiameterBand([]float64{100, 200, 300, 450})
		if err != nil {
			return nil, err
		}
		rows = append(rows, diam...)
		for _, r := range rows {
			tb.AddRow(name, r.Cohort,
				fmt.Sprintf("%d", r.Pipes),
				fmt.Sprintf("%.0f", r.PipeYears),
				fmt.Sprintf("%d", r.Failures),
				fmt.Sprintf("%.4f", r.RatePerPipeYear),
				fmt.Sprintf("%.2f", r.RatePer100KMYear))
		}
	}
	return tb, nil
}

// T2AUCTable renders the method-comparison AUC table (full-network AUC per
// model per region) from precomputed region results.
func T2AUCTable(results []RegionResult) *eval.Table {
	header := []string{"model"}
	for _, r := range results {
		header = append(header, "region "+r.Region)
	}
	tb := eval.NewTable("T2: AUC (100% of pipes) by model and region", header...)
	if len(results) == 0 {
		return tb
	}
	for i := range results[0].Evals {
		row := []string{results[0].Evals[i].Model}
		for _, r := range results {
			row = append(row, eval.FormatPercent(r.Evals[i].AUC))
		}
		tb.AddRow(row...)
	}
	return tb
}

// T3BudgetTable renders detection rates at the utility's inspection budgets
// (1 %, 5 %, 10 % of pipes) plus the partial AUC at 1 % in basis points.
func T3BudgetTable(results []RegionResult) *eval.Table {
	tb := eval.NewTable(
		"T3: detection at inspection budgets (per region: det@1% / det@5% / det@10% / pAUC@1%)",
		append([]string{"model"}, regionHeaders(results)...)...)
	if len(results) == 0 {
		return tb
	}
	for i := range results[0].Evals {
		row := []string{results[0].Evals[i].Model}
		for _, r := range results {
			e := r.Evals[i]
			row = append(row, fmt.Sprintf("%s / %s / %s / %s",
				eval.FormatPercent(e.Det1), eval.FormatPercent(e.Det5),
				eval.FormatPercent(e.Det10), eval.FormatBasisPoints(e.PAUC1)))
		}
		tb.AddRow(row...)
	}
	return tb
}

func regionHeaders(results []RegionResult) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = "region " + r.Region
	}
	return out
}

// F1DetectionSeries renders the detection-rate-vs-inspected-percentage
// curves as a table of y values at the canonical x grid (the paper's
// figure, printed as series).
func F1DetectionSeries(results []RegionResult, xs []float64) *eval.Table {
	if len(xs) == 0 {
		xs = []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50, 0.75, 1.00}
	}
	header := []string{"region", "model"}
	for _, x := range xs {
		header = append(header, eval.FormatPercent(x))
	}
	tb := eval.NewTable("F1: detection rate vs percentage of pipes inspected", header...)
	for _, r := range results {
		for _, e := range r.Evals {
			row := []string{r.Region, e.Model}
			for _, x := range xs {
				row = append(row, eval.FormatPercent(eval.DetectionAt(e.Scores, e.Labels, x)))
			}
			tb.AddRow(row...)
		}
	}
	return tb
}

// T6ClassBreakdown evaluates the models separately on critical mains
// (CWM), reticulation mains (RWM) and the full network of each region —
// the per-class analysis. Only the subset of models in opts.Models runs.
func T6ClassBreakdown(opts Options) (*eval.Table, error) {
	opts = opts.withDefaults()
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	tb := eval.NewTable("T6: AUC by pipe class", "region", "scope", "model", "AUC", "det@1%")
	for _, name := range opts.Regions {
		net, _, err := GenerateRegion(name, opts)
		if err != nil {
			return nil, err
		}
		scopes := []struct {
			label string
			net   *dataset.Network
		}{
			{"All", net},
			{"CWM", net.SubsetByClass(dataset.CriticalMain)},
			{"RWM", net.SubsetByClass(dataset.ReticulationMain)},
		}
		for _, sc := range scopes {
			if sc.net.NumPipes() == 0 {
				continue
			}
			split, err := dataset.PaperSplit(sc.net)
			if err != nil {
				return nil, err
			}
			evals, err := EvaluateSplit(sc.net, split, reg, opts.Models, feature.Groups{})
			if err != nil {
				return nil, err
			}
			for _, e := range evals {
				tb.AddRow(name, sc.label, e.Model,
					eval.FormatPercent(e.AUC), eval.FormatPercent(e.Det1))
			}
		}
	}
	return tb, nil
}
