package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/feature"
	"repro/internal/linalg"
)

// CoxConfig tunes the Cox proportional-hazards baseline.
type CoxConfig struct {
	// Ridge is the L2 penalty on the coefficients (default 1e-3 per pipe).
	Ridge float64
	// MaxIter caps the Newton iterations (default 25).
	MaxIter int
	// Tol is the convergence threshold (default 1e-7).
	Tol float64
	// SmoothWindow is the moving-average window (in years) applied to the
	// Breslow baseline-hazard increments before scoring (default 7).
	SmoothWindow int
}

func (c *CoxConfig) fillDefaults() {
	if c.Ridge <= 0 {
		c.Ridge = 1e-3
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 25
	}
	if c.Tol <= 0 {
		c.Tol = 1e-7
	}
	if c.SmoothWindow <= 0 {
		c.SmoothWindow = 7
	}
}

// Cox is the Cox proportional-hazards model h(t, x) = h0(t)·exp(βᵀx) on the
// pipe-age time scale, the most widely used survival baseline for pipe
// failure prediction.
//
// Pipe-year instances are collapsed into per-pipe survival records with
// delayed entry (pipes enter the risk set at their age when the observation
// window opens), event age = age at first in-window failure, censoring age
// = age at the end of the training window. The partial likelihood uses the
// Breslow convention for ties and is maximized by Newton's method with an
// efficient counting-process sweep. The baseline cumulative hazard is
// estimated with the Breslow estimator; a pipe's score for the test year is
// the predicted probability 1 − exp(−ΔH0(age)·exp(βᵀx)).
type Cox struct {
	cfg CoxConfig
	// Beta are the fitted log-hazard-ratio coefficients.
	Beta []float64
	// hazardByAge is the smoothed annual baseline-hazard increment,
	// indexed by integer age.
	hazardByAge []float64
	fitted      bool
}

// NewCox returns an unfitted Cox model.
func NewCox(cfg CoxConfig) *Cox {
	cfg.fillDefaults()
	return &Cox{cfg: cfg}
}

// Name implements core.Model.
func (m *Cox) Name() string { return "Cox" }

// coxRecord is one pipe's survival record.
type coxRecord struct {
	entry float64 // age at entry into the risk set
	exit  float64 // age at event or censoring
	event bool
	x     []float64
}

// buildRecords collapses pipe-year instances into survival records.
func buildRecords(train *feature.Set) []coxRecord {
	type acc struct {
		minAge, maxAge float64
		eventAge       float64
		event          bool
		x              []float64
	}
	byPipe := make(map[int]*acc)
	order := make([]int, 0, 64)
	for i := range train.X {
		pid := train.PipeIdx[i]
		a, ok := byPipe[pid]
		if !ok {
			a = &acc{minAge: train.Age[i], maxAge: train.Age[i], x: train.X[i]}
			byPipe[pid] = a
			order = append(order, pid)
		}
		if train.Age[i] < a.minAge {
			a.minAge = train.Age[i]
			a.x = train.X[i] // covariates as of first exposure year
		}
		if train.Age[i] > a.maxAge {
			a.maxAge = train.Age[i]
		}
		if train.Label[i] && (!a.event || train.Age[i] < a.eventAge) {
			a.event = true
			a.eventAge = train.Age[i]
		}
	}
	sort.Ints(order)
	recs := make([]coxRecord, 0, len(order))
	for _, pid := range order {
		a := byPipe[pid]
		r := coxRecord{entry: a.minAge, x: a.x}
		if a.event {
			// Event in the middle of the failure year keeps entry < exit
			// even for first-year events.
			r.exit = a.eventAge + 0.5
			r.event = true
		} else {
			r.exit = a.maxAge + 1
		}
		recs = append(recs, r)
	}
	return recs
}

// Fit implements core.Model.
func (m *Cox) Fit(train *feature.Set) error {
	if train == nil || train.Len() == 0 {
		return fmt.Errorf("%s: empty training set", m.Name())
	}
	recs := buildRecords(train)
	d := train.Dim()
	events := 0
	for _, r := range recs {
		if r.event {
			events++
		}
	}
	if events == 0 {
		return fmt.Errorf("%s: no events in training window", m.Name())
	}
	if events == len(recs) {
		return fmt.Errorf("%s: every pipe failed; partial likelihood degenerate", m.Name())
	}

	beta := make([]float64, d)
	ridge := m.cfg.Ridge * float64(len(recs))
	var lastTimes []float64
	var lastS0 []float64
	for iter := 0; iter < m.cfg.MaxIter; iter++ {
		grad, hess, times, s0s := m.sweep(recs, beta, d)
		for j := 0; j < d; j++ {
			grad[j] -= ridge * beta[j]
			hess.Set(j, j, hess.At(j, j)+ridge)
		}
		step, err := linalg.SolveRidge(hess, grad, 1e-9)
		if err != nil {
			return fmt.Errorf("%s: newton step: %w", m.Name(), err)
		}
		// Damp huge steps for stability.
		if n := linalg.NormInf(step); n > 2 {
			linalg.Scale(2/n, step)
		}
		linalg.Axpy(1, step, beta)
		lastTimes, lastS0 = times, s0s
		if linalg.NormInf(step) < m.cfg.Tol {
			break
		}
	}
	m.Beta = beta

	// Breslow baseline: ΔH0(t_k) = d_k / S0(t_k), accumulated into annual
	// increments by integer age, then smoothed.
	maxAge := 0.0
	for _, r := range recs {
		if r.exit > maxAge {
			maxAge = r.exit
		}
	}
	annual := make([]float64, int(maxAge)+2)
	// Recompute S0 at the final beta (lastTimes/lastS0 are from the last
	// sweep, which used the pre-update beta; one more sweep is cheap).
	_, _, lastTimes, lastS0 = m.sweep(recs, beta, d)
	counts := countEvents(recs)
	for i, t := range lastTimes {
		if lastS0[i] <= 0 {
			continue
		}
		inc := counts[t] / lastS0[i]
		age := int(t)
		if age >= 0 && age < len(annual) {
			annual[age] += inc
		}
	}
	m.hazardByAge = movingAverage(annual, m.cfg.SmoothWindow)
	m.fitted = true
	return nil
}

// sweep runs one counting-process pass, returning the partial-likelihood
// gradient and negative Hessian plus the distinct event times and their
// S0 values (for the Breslow baseline).
func (m *Cox) sweep(recs []coxRecord, beta []float64, d int) ([]float64, *linalg.Matrix, []float64, []float64) {
	// Distinct event times, descending.
	timeSet := map[float64]bool{}
	for _, r := range recs {
		if r.event {
			timeSet[r.exit] = true
		}
	}
	times := make([]float64, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(times)))

	// Subjects sorted for the descending sweep: add when exit >= t,
	// remove when entry >= t.
	byExit := make([]int, len(recs))
	byEntry := make([]int, len(recs))
	for i := range recs {
		byExit[i] = i
		byEntry[i] = i
	}
	sort.Slice(byExit, func(a, b int) bool { return recs[byExit[a]].exit > recs[byExit[b]].exit })
	sort.Slice(byEntry, func(a, b int) bool { return recs[byEntry[a]].entry > recs[byEntry[b]].entry })

	s0 := 0.0
	s1 := make([]float64, d)
	s2 := linalg.NewMatrix(d, d)
	addSubject := func(i int, sign float64) {
		w := math.Exp(linalg.Dot(beta, recs[i].x))
		s0 += sign * w
		x := recs[i].x
		for p := 0; p < d; p++ {
			s1[p] += sign * w * x[p]
			row := s2.Row(p)
			wxp := sign * w * x[p]
			for q := 0; q < d; q++ {
				row[q] += wxp * x[q]
			}
		}
	}

	grad := make([]float64, d)
	hess := linalg.NewMatrix(d, d)
	ei, ri := 0, 0
	s0Out := make([]float64, len(times))
	for ti, t := range times {
		for ei < len(byExit) && recs[byExit[ei]].exit >= t {
			addSubject(byExit[ei], 1)
			ei++
		}
		for ri < len(byEntry) && recs[byEntry[ri]].entry >= t {
			addSubject(byEntry[ri], -1)
			ri++
		}
		if s0 <= 1e-300 {
			continue
		}
		s0Out[ti] = s0
		// Events at this time (Breslow ties).
		for _, r := range recs {
			if r.event && r.exit == t {
				for p := 0; p < d; p++ {
					grad[p] += r.x[p] - s1[p]/s0
				}
				for p := 0; p < d; p++ {
					hrow := hess.Row(p)
					srow := s2.Row(p)
					for q := 0; q < d; q++ {
						hrow[q] += srow[q]/s0 - (s1[p]/s0)*(s1[q]/s0)
					}
				}
			}
		}
	}
	return grad, hess, times, s0Out
}

func countEvents(recs []coxRecord) map[float64]float64 {
	counts := map[float64]float64{}
	for _, r := range recs {
		if r.event {
			counts[r.exit]++
		}
	}
	return counts
}

func movingAverage(xs []float64, window int) []float64 {
	if window <= 1 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, len(xs))
	half := window / 2
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// baselineIncrement returns the smoothed annual baseline-hazard increment
// at the given age, extrapolating flat beyond the observed range.
func (m *Cox) baselineIncrement(age float64) float64 {
	if len(m.hazardByAge) == 0 {
		return 0
	}
	i := int(age)
	if i < 0 {
		i = 0
	}
	if i >= len(m.hazardByAge) {
		i = len(m.hazardByAge) - 1
	}
	v := m.hazardByAge[i]
	if v <= 0 {
		// Fall back to the last positive increment so extrapolated ages
		// still separate by exp(βᵀx).
		for j := i; j >= 0; j-- {
			if m.hazardByAge[j] > 0 {
				return m.hazardByAge[j]
			}
		}
		return 1e-12
	}
	return v
}

// Scores implements core.Model; scores are one-year failure probabilities
// 1 − exp(−ΔH0(age)·exp(βᵀx)).
func (m *Cox) Scores(test *feature.Set) ([]float64, error) {
	if !m.fitted {
		return nil, fmt.Errorf("%s: %w", m.Name(), ErrNotFitted)
	}
	if test.Dim() != len(m.Beta) {
		return nil, fmt.Errorf("%s: test dim %d != model dim %d", m.Name(), test.Dim(), len(m.Beta))
	}
	out := make([]float64, test.Len())
	for i, row := range test.X {
		eta := linalg.Dot(row, m.Beta)
		if eta > 50 {
			eta = 50
		}
		dh := m.baselineIncrement(test.Age[i])
		out[i] = 1 - math.Exp(-dh*math.Exp(eta))
	}
	return out, nil
}
