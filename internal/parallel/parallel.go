// Package parallel provides the bounded, deterministic fork-join worker
// pool used by the training and serving hot paths.
//
// The pool makes one guarantee the rest of the repository leans on: the
// *assignment* of work to workers never influences results. Run partitions
// the index space into chunks that depend only on (n, Workers()), and the
// dynamic variant hands out indices one at a time; in both cases a body
// that writes only state owned by its index (out[i], or scratch owned by
// its worker slot) produces bit-identical results for any worker count,
// including 1. Randomized callers keep their RNG draws on the caller's
// goroutine (or derive per-item streams from the seed) so that scheduling
// can never reorder a random stream.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool task metrics. Handles are resolved once at package init; each
// Run/ForEachDynamic call then pays two lock-free atomic adds — noise
// next to spawning even a single goroutine, so the counters are safe on
// the training hot paths. Item counts are added per call, not per item.
var (
	runCalls     = obs.Default().Counter("parallel.run.calls")
	runItems     = obs.Default().Counter("parallel.run.items")
	dynamicCalls = obs.Default().Counter("parallel.dynamic.calls")
	dynamicItems = obs.Default().Counter("parallel.dynamic.items")
)

// Pool is a bounded fork-join executor. The zero value runs everything
// serially on the caller's goroutine; construct with New to size it. A
// Pool is a value and holds no goroutines between calls.
type Pool struct {
	workers int
}

// New returns a pool with the given parallelism. workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Pool{workers: workers}
}

// Workers returns the pool's parallelism (at least 1).
func (p Pool) Workers() int {
	if p.workers < 1 {
		return 1
	}
	return p.workers
}

// Run partitions [0, n) into one contiguous chunk per worker and invokes
// body(worker, lo, hi) once per non-empty chunk, concurrently, then waits
// for all calls to return. worker identifies the chunk's slot in
// [0, Workers()), so callers can keep per-worker scratch buffers without
// locking. Chunk boundaries depend only on n and Workers(), never on
// timing. With one worker (or n <= 1) the body runs inline on the
// caller's goroutine.
func (p Pool) Run(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	runCalls.Inc()
	runItems.Add(int64(n))
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		body(0, 0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for i := 1; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			body(worker, lo, hi)
		}(i, lo, hi)
	}
	// Chunk 0 runs on the caller's goroutine.
	body(0, 0, chunk)
	wg.Wait()
}

// RunCtx is Run with cooperative cancellation: each chunk checks ctx
// before it starts, and the call returns ctx.Err() if any chunk was
// skipped. Chunk boundaries are identical to Run's, and a nil error
// guarantees every chunk ran to completion, so uncancelled results are
// bit-identical to Run. On cancellation the output is partial and the
// caller must discard it — RunCtx aborts promptly between chunks but
// never interrupts a chunk mid-flight.
func (p Pool) RunCtx(ctx context.Context, n int, body func(worker, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	var skipped atomic.Bool
	p.Run(n, func(worker, lo, hi int) {
		if ctx.Err() != nil {
			skipped.Store(true)
			return
		}
		body(worker, lo, hi)
	})
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}

// ForEach runs body(i) for every i in [0, n) across the pool's static
// chunks. Use when per-item cost is uniform.
func (p Pool) ForEach(n int, body func(i int)) {
	p.Run(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForEachDynamic runs body(i) for every i in [0, n), handing indices to
// workers one at a time in claim order. Use when items have very uneven
// costs (e.g. one model per index). Which worker executes which index
// depends on timing, so the determinism contract here is per-item: body
// must write only state owned by i.
func (p Pool) ForEachDynamic(n int, body func(i int)) {
	p.forEachDynamic(context.Background(), n, body)
}

// ForEachDynamicCtx is ForEachDynamic with cooperative cancellation:
// workers check ctx before claiming each index and stop claiming once it
// is done. Returns ctx.Err() when one or more indices were skipped (the
// caller must treat the outputs as partial), nil when every index ran.
func (p Pool) ForEachDynamicCtx(ctx context.Context, n int, body func(i int)) error {
	return p.forEachDynamic(ctx, n, body)
}

func (p Pool) forEachDynamic(ctx context.Context, n int, body func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	dynamicCalls.Inc()
	dynamicItems.Add(int64(n))
	done := ctx.Done()
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if done != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			body(i)
		}
		return nil
	}
	var next atomic.Int64
	var skipped atomic.Bool
	run := func() {
		for {
			if done != nil && ctx.Err() != nil {
				skipped.Store(true)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			body(i)
		}
	}
	var wg sync.WaitGroup
	for g := 1; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}
