package dataset

import "testing"

func TestPaperSplit(t *testing.T) {
	n := testNetwork()
	s, err := PaperSplit(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.TrainFrom != 1998 || s.TrainTo != 2008 || s.TestYear != 2009 {
		t.Fatalf("split %+v", s)
	}
	if s.TrainYears() != 11 {
		t.Fatalf("train years = %d", s.TrainYears())
	}
}

func TestNewSplitValidation(t *testing.T) {
	n := testNetwork()
	cases := []struct{ from, to, test int }{
		{2005, 2000, 2006}, // inverted
		{1998, 2005, 2004}, // test inside train
		{1990, 2000, 2001}, // before observation
		{1998, 2008, 2020}, // after observation
	}
	for _, c := range cases {
		if _, err := NewSplit(n, c.from, c.to, c.test); err == nil {
			t.Errorf("NewSplit(%+v) should fail", c)
		}
	}
}

func TestTrainFailuresAndTestLabels(t *testing.T) {
	n := testNetwork()
	s, err := NewSplit(n, 1998, 2004, 2005)
	if err != nil {
		t.Fatal(err)
	}
	// Train window 1998-2004 contains: P1@2000, P3@2001 x2 = 3 events.
	if got := len(s.TrainFailures()); got != 3 {
		t.Fatalf("train failures = %d", got)
	}
	labels := s.TestLabels()
	// Pipes order P1, P2, P3; only P3 failed in 2005.
	want := []bool{false, false, true}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	if s.TestFailureCount() != 1 {
		t.Fatalf("test failure count = %d", s.TestFailureCount())
	}
}

func TestRollingSplits(t *testing.T) {
	n := testNetwork()
	splits, err := RollingSplits(n, 2005)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 5 { // 2005..2009
		t.Fatalf("want 5 splits, got %d", len(splits))
	}
	for i, s := range splits {
		if s.TestYear != 2005+i {
			t.Fatalf("split %d test year %d", i, s.TestYear)
		}
		if s.TrainFrom != 1998 || s.TrainTo != s.TestYear-1 {
			t.Fatalf("split %d window [%d,%d]", i, s.TrainFrom, s.TrainTo)
		}
	}
	if _, err := RollingSplits(n, 1998); err == nil {
		t.Fatal("first test at observation start must fail")
	}
	if _, err := RollingSplits(n, 2050); err == nil {
		t.Fatal("first test after observation end must fail")
	}
}

func TestWindowSplit(t *testing.T) {
	n := testNetwork()
	s, err := WindowSplit(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.TrainFrom != 2005 || s.TrainTo != 2008 || s.TestYear != 2009 {
		t.Fatalf("window split %+v", s)
	}
	// Window larger than history clamps to observation start.
	s, err = WindowSplit(n, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.TrainFrom != 1998 {
		t.Fatalf("clamped window split %+v", s)
	}
	if _, err := WindowSplit(n, 0); err == nil {
		t.Fatal("w=0 must fail")
	}
}
