// Forecast: long-range renewal planning. Beyond ranking next year's
// failures, a fitted Weibull deterioration process projects each pipe's
// expected failures over a multi-year horizon — the view asset managers
// use to schedule replacements, not just inspections. This example fits
// the NHPP, forecasts five years ahead, aggregates the network-level
// failure trajectory, and lists the pipes whose five-year expected failure
// count crosses a renewal threshold.
//
//	go run ./examples/forecast
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/feature"
)

func main() {
	log.SetFlags(0)

	net, err := pipefail.GenerateRegion("A", 31, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	split, err := dataset.PaperSplit(net)
	if err != nil {
		log.Fatal(err)
	}
	b, err := feature.NewBuilder(net, feature.Options{})
	if err != nil {
		log.Fatal(err)
	}
	train, err := b.TrainSet(split)
	if err != nil {
		log.Fatal(err)
	}
	test, err := b.TestSet(split)
	if err != nil {
		log.Fatal(err)
	}

	m := baseline.NewWeibullNHPP(baseline.WeibullConfig{})
	if err := m.Fit(train); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted Weibull process: alpha=%.4g, shape beta=%.2f (beta>1 = ageing network)\n\n",
		m.Alpha, m.Beta)

	const horizon = 5
	fc, err := m.Forecast(test, horizon)
	if err != nil {
		log.Fatal(err)
	}

	// Network-level trajectory.
	fmt.Println("expected network failures per year:")
	for h := 0; h < horizon; h++ {
		total := 0.0
		for i := range fc {
			total += fc[i][h]
		}
		fmt.Printf("  %d: %6.1f\n", split.TestYear+h, total)
	}

	// Renewal shortlist: pipes with the largest 5-year expected counts.
	type cand struct {
		id  string
		sum float64
	}
	pipes := net.Pipes()
	cands := make([]cand, len(fc))
	for i := range fc {
		s := 0.0
		for _, v := range fc[i] {
			s += v
		}
		cands[i] = cand{pipes[test.PipeIdx[i]].ID, s}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].sum > cands[j].sum })
	fmt.Println("\nrenewal shortlist (largest 5-year expected failure counts):")
	for i := 0; i < 10 && i < len(cands); i++ {
		p, _ := net.PipeByID(cands[i].id)
		fmt.Printf("  %2d. %s  %.2f expected failures  (%s, %d, %.0fmm, %.0fm)\n",
			i+1, cands[i].id, cands[i].sum, p.Material, p.LaidYear, p.DiameterMM, p.LengthM)
	}
}
