package core

import (
	"context"
	"fmt"

	"repro/internal/feature"
	"repro/internal/stats"
)

// Ensemble fuses the rankings of several base models by averaging their
// normalized ranks (Borda-count fusion). Rank fusion is scale-free — it
// combines models whose scores live on incompatible scales (probabilities,
// expected counts, margins) without calibration, and inherits robustness:
// a single misbehaving base model can shift an item by at most 1/k of the
// ranking.
type Ensemble struct {
	// Base holds the member models (fitted by Fit).
	Base []Model
	// Weights optionally weights each member's rank contribution;
	// nil means uniform.
	Weights []float64
	fitted  bool
}

// NewEnsemble returns an unfitted ensemble over the given members.
// Weights may be nil (uniform); otherwise it must match the member count
// and be non-negative with a positive sum (checked at Fit).
func NewEnsemble(weights []float64, base ...Model) *Ensemble {
	return &Ensemble{Base: base, Weights: weights}
}

// Name implements Model.
func (e *Ensemble) Name() string { return "Ensemble" }

// Fit implements Model: it fits every member on the same training set.
func (e *Ensemble) Fit(train *feature.Set) error {
	return e.FitContext(context.Background(), train)
}

// FitContext implements ContextFitter: each member is fitted through
// FitModel, so cancellable members abort mid-fit and the rest are checked
// at member boundaries. A cancelled ensemble stays unfitted.
func (e *Ensemble) FitContext(ctx context.Context, train *feature.Set) error {
	if len(e.Base) == 0 {
		return fmt.Errorf("%s: no base models", e.Name())
	}
	if e.Weights != nil {
		if len(e.Weights) != len(e.Base) {
			return fmt.Errorf("%s: %d weights for %d members", e.Name(), len(e.Weights), len(e.Base))
		}
		sum := 0.0
		for _, w := range e.Weights {
			if w < 0 {
				return fmt.Errorf("%s: negative weight %v", e.Name(), w)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("%s: weights sum to zero", e.Name())
		}
	}
	for _, m := range e.Base {
		if err := FitModel(ctx, m, train); err != nil {
			return fmt.Errorf("%s: member %s: %w", e.Name(), m.Name(), err)
		}
	}
	e.fitted = true
	return nil
}

// Scores implements Model: each member's scores are converted to
// normalized fractional ranks in [0, 1] (ties averaged) and combined by
// weighted mean.
func (e *Ensemble) Scores(test *feature.Set) ([]float64, error) {
	if !e.fitted {
		return nil, fmt.Errorf("%s: Scores before Fit", e.Name())
	}
	n := test.Len()
	fused := make([]float64, n)
	totalW := 0.0
	for i, m := range e.Base {
		w := 1.0
		if e.Weights != nil {
			w = e.Weights[i]
		}
		if w == 0 {
			continue
		}
		scores, err := m.Scores(test)
		if err != nil {
			return nil, fmt.Errorf("%s: member %s: %w", e.Name(), m.Name(), err)
		}
		ranks := stats.Ranks(scores) // 1..n, ties averaged
		for j, r := range ranks {
			fused[j] += w * (r - 1) / float64(n-1+1) // normalize to [0,1)
		}
		totalW += w
	}
	if totalW == 0 {
		return nil, fmt.Errorf("%s: all member weights are zero", e.Name())
	}
	for j := range fused {
		fused[j] /= totalW
	}
	return fused, nil
}
