package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	var zero Pool
	if zero.Workers() != 1 {
		t.Fatalf("zero pool workers = %d, want 1", zero.Workers())
	}
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0) workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3) workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5) workers = %d", got)
	}
}

func TestRunCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 16, 17, 100} {
			p := New(workers)
			hits := make([]int32, n)
			p.Run(n, func(worker, lo, hi int) {
				if worker < 0 || worker >= p.Workers() {
					t.Errorf("worker id %d out of range", worker)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestRunChunksAreDisjointPerWorker(t *testing.T) {
	// Two calls with the same (n, workers) must produce the same chunking,
	// and per-worker scratch indexed by the worker id must never be shared.
	const n, workers = 103, 4
	p := New(workers)
	owner := make([]int, n)
	p.Run(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			owner[i] = worker
		}
	})
	again := make([]int, n)
	p.Run(n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			again[i] = worker
		}
	})
	for i := range owner {
		if owner[i] != again[i] {
			t.Fatalf("chunking not deterministic at %d: %d vs %d", i, owner[i], again[i])
		}
	}
}

func TestForEachResultsIndependentOfWorkers(t *testing.T) {
	const n = 500
	ref := make([]int, n)
	New(1).ForEach(n, func(i int) { ref[i] = i * i })
	for _, workers := range []int{2, 4, 9} {
		got := make([]int, n)
		New(workers).ForEach(n, func(i int) { got[i] = i * i })
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestForEachDynamicCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 3, 50} {
			hits := make([]int32, n)
			New(workers).ForEachDynamic(n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}
