package serve

// Chaos suite: the serve stack under simultaneous network faults
// (internal/faulty listener cuts + delays) and training faults
// (failures, panics and hangs injected through the trainFn seam), with
// shedding, request deadlines and a mid-storm drain. Run under -race by
// `make chaos` (folded into `make verify`). Client-side errors are
// expected — the invariants are strictly server-side: no crash, no
// deadlock, no torn snapshot state, probes keep answering, and a clean
// drain at the end.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/faulty"
)

// chaosTrainer wraps the real trainer, injecting a deterministic fault
// by call index: every 4th call fails, every 5th panics, every 7th
// hangs until cancelled. (Indices sharing multiples fault by the first
// matching rule.)
type chaosTrainer struct {
	real  func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error)
	calls atomic.Int64
}

func (c *chaosTrainer) train(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
	i := c.calls.Add(1)
	switch {
	case i%7 == 0:
		<-ctx.Done() // hang: only cancellation frees this trainer
		return nil, fmt.Errorf("chaos hang: %w", ctx.Err())
	case i%5 == 0:
		panic(fmt.Sprintf("chaos panic on call %d", i))
	case i%4 == 0:
		return nil, errors.New("chaos failure")
	}
	return c.real(ctx, sh, name)
}

func TestChaosServerSurvives(t *testing.T) {
	net0, err := pipefail.GenerateRegion("A", 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(net0, log.New(io.Discard, "", 0), pipefail.WithESGenerations(4))
	if err != nil {
		t.Fatal(err)
	}
	ct := &chaosTrainer{real: s.train}
	s.trainFn = ct.train
	s.SetMaxInflight(6)
	s.SetRequestTimeout(300 * time.Millisecond)

	ts := httptest.NewUnstartedServer(s.Handler())
	fl := faulty.Wrap(ts.Listener, func(i int) faulty.Fault {
		switch {
		case i%5 == 3:
			return faulty.Fault{CutAfter: 256} // torn response mid-body
		case i%5 == 4:
			return faulty.Fault{Delay: 3 * time.Millisecond} // slow client
		}
		return faulty.Fault{}
	})
	ts.Listener = fl
	ts.Start()
	defer ts.Close()

	// Cheap models only: the request deadline must never fire on an
	// honest training run, only on injected hangs.
	models := []string{"Heuristic-Age", "Heuristic-Length", "Logistic", "Cox"}
	paths := []string{"/api/network", "/api/cohorts", "/api/hotspots?min=1", "/metrics"}

	// Per-request client without keep-alive so connection faults land on
	// fresh connections instead of poisoning a shared pool.
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   10 * time.Second,
	}

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	var clientErrs, non2xx atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var resp *http.Response
				var err error
				switch i % 4 {
				case 0:
					resp, err = client.Post(ts.URL+"/api/models/"+models[(w+i)%len(models)]+"/train", "application/json", nil)
				case 1:
					resp, err = client.Get(ts.URL + "/api/models/" + models[(w+i)%len(models)] + "/ranking?top=10")
				case 2:
					resp, err = client.Post(ts.URL+"/api/plan", "application/json",
						strings.NewReader(`{"model":"`+models[(w+i)%len(models)]+`","budget_km":3,"max_pipes":20}`))
				default:
					resp, err = client.Get(ts.URL + paths[(w+i)%len(paths)])
				}
				if err != nil {
					clientErrs.Add(1) // cut/reset connections are expected
					continue
				}
				if _, cerr := io.Copy(io.Discard, resp.Body); cerr != nil {
					clientErrs.Add(1) // torn body after a mid-response cut
				}
				resp.Body.Close()
				if resp.StatusCode >= 300 {
					non2xx.Add(1) // sheds, chaos failures: also expected
				}
			}
		}(w)
	}
	wg.Wait()

	st := fl.Stats()
	if st.Faulted == 0 {
		t.Fatal("chaos run injected no connection faults; the plan is dead")
	}
	if ct.calls.Load() == 0 {
		t.Fatal("chaos run never reached the trainer")
	}
	t.Logf("chaos: %d conns (%d faulted, %d cut), %d trainer calls, %d client errors, %d non-2xx",
		st.Accepted, st.Faulted, st.Cut, ct.calls.Load(), clientErrs.Load(), non2xx.Load())

	// Invariant: the server survived — probes answer, panics were
	// contained, and a real model is still servable end to end.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatal("healthz dead after the storm")
	}
	s.trainFn = s.train // calm the trainer
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, nil); code != 200 {
		t.Fatal("cannot train cleanly after the storm")
	}

	// Every published snapshot is fully formed (a torn publish would
	// leave nil fields that panic the read path).
	for name, tm := range *s.def.models.Load() {
		if tm == nil || tm.ranking == nil || tm.model == nil {
			t.Fatalf("torn snapshot published for %s", name)
		}
	}

	// And the server still drains cleanly: readyz flips, hung training
	// (if any is left) dies with the lifecycle context.
	s.BeginShutdown()
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
		t.Fatal("readyz not draining after BeginShutdown")
	}
	waitFor(t, func() bool {
		s.def.mu.Lock()
		defer s.def.mu.Unlock()
		return len(s.def.pending) == 0
	})
}

// TestChaosSingleflightUnderCancellation hammers one model with waves
// of short-deadline requests against a hanging trainer, then asserts
// the pending map converges to empty and a clean train still works —
// the refcounted abandon path never leaks a job or a goroutine.
func TestChaosSingleflightUnderCancellation(t *testing.T) {
	s, _ := newTestServer(t)
	var hangs atomic.Int64
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		hangs.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	}

	const waves, waiters = 5, 6
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				defer cancel()
				if _, err := s.get(ctx, "Heuristic-Age"); err == nil {
					t.Error("hung training returned a snapshot")
				}
			}()
		}
		wg.Wait()
	}

	waitFor(t, func() bool {
		s.def.mu.Lock()
		defer s.def.mu.Unlock()
		return len(s.def.pending) == 0
	})
	if hangs.Load() == 0 {
		t.Fatal("hanging trainer never ran")
	}

	s.trainFn = s.train
	if _, err := s.get(context.Background(), "Heuristic-Age"); err != nil {
		t.Fatalf("clean train after cancellation storm: %v", err)
	}
}

// TestChaosBulkRankDuringRebuilds hammers the streamed bulk endpoint
// while the rebuild scheduler force-rotates every published snapshot
// under it. Deterministic training means a rebuild must be invisible on
// the wire: every streamed response — read mid-rotation or not — must
// be byte-identical to the pre-chaos expected stream, and every ETag
// constant. Any torn snapshot publish, cache/snapshot mismatch or
// scratch-recycling race shows up as a diverging byte (or, under -race,
// a report).
func TestChaosBulkRankDuringRebuilds(t *testing.T) {
	s, ts := newMultiTestServer(t)
	ctx := context.Background()
	for _, sh := range s.shards {
		if _, err := s.getShard(ctx, sh, "Heuristic-Age"); err != nil {
			t.Fatal(err)
		}
	}

	// The expected stream, assembled from the single-region responses
	// the bulk lines must splice verbatim.
	var expect strings.Builder
	for _, region := range s.Regions() {
		resp, err := http.Get(ts.URL + "/api/models/Heuristic-Age/ranking?top=10&region=" + region)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("single ranking %s: %d %v", region, resp.StatusCode, err)
		}
		fmt.Fprintf(&expect, `{"region":%q,"model":"Heuristic-Age","etag":%s,"ranking":%s}`+"\n",
			region, resp.Header.Get("ETag"), strings.TrimSuffix(string(body), "\n"))
	}
	want := expect.String()

	// Rebuild storm: forced passes retrain and republish every snapshot
	// (plus the default model) as fast as they complete.
	stop := make(chan struct{})
	var rebuilds sync.WaitGroup
	rebuilds.Add(1)
	go func() {
		defer rebuilds.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.schedulerPass(true)
			}
		}
	}()

	var clients sync.WaitGroup
	for c := 0; c < 4; c++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Post(ts.URL+"/api/bulk/rank", "application/json",
					strings.NewReader(`{"model":"Heuristic-Age","top":10}`))
				if err != nil {
					t.Errorf("bulk request: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 {
					t.Errorf("bulk response: %d %v", resp.StatusCode, err)
					return
				}
				if string(body) != want {
					t.Errorf("bulk stream diverged during rebuilds\ngot:  %s\nwant: %s", body, want)
					return
				}
			}
		}()
	}
	clients.Wait()
	close(stop)
	rebuilds.Wait()

	// The storm must not have perturbed what a fresh client sees.
	resp, err := http.Post(ts.URL+"/api/bulk/rank", "application/json",
		strings.NewReader(`{"model":"Heuristic-Age","top":10}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != want {
		t.Fatalf("post-storm stream diverged (%v)\ngot:  %s\nwant: %s", err, body, want)
	}
}
