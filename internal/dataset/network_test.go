package dataset

import (
	"strings"
	"testing"
)

// testNetwork builds a small hand-constructed network used across tests.
func testNetwork() *Network {
	pipes := []Pipe{
		{ID: "P1", Class: CriticalMain, Material: CICL, Coating: CoatingNone,
			DiameterMM: 375, LengthM: 500, LaidYear: 1950, SoilCorrosivity: "HIGH",
			SoilExpansivity: "SLIGHT", SoilGeology: "CLAY", SoilMap: "FLUVIAL",
			DistToTrafficM: 20, X: 100, Y: 100, Segments: 5},
		{ID: "P2", Class: ReticulationMain, Material: PVC, Coating: CoatingNone,
			DiameterMM: 100, LengthM: 120, LaidYear: 1990, SoilCorrosivity: "LOW",
			SoilExpansivity: "STABLE", SoilGeology: "SANDSTONE", SoilMap: "RESIDUAL",
			DistToTrafficM: 300, X: 200, Y: 150, Segments: 2},
		{ID: "P3", Class: CriticalMain, Material: CI, Coating: CoatingTar,
			DiameterMM: 450, LengthM: 900, LaidYear: 1930, SoilCorrosivity: "SEVERE",
			SoilExpansivity: "HIGH", SoilGeology: "SHALE", SoilMap: "SWAMP",
			DistToTrafficM: 5, X: 50, Y: 250, Segments: 9},
	}
	fails := []Failure{
		{PipeID: "P3", Segment: 2, Year: 2001, Day: 40, Mode: ModeBreak},
		{PipeID: "P1", Segment: 0, Year: 2000, Day: 120, Mode: ModeBreak},
		{PipeID: "P3", Segment: 7, Year: 2005, Day: 300, Mode: ModeLeak},
		{PipeID: "P3", Segment: 1, Year: 2001, Day: 10, Mode: ModeBreak},
	}
	return NewNetwork("T", 1998, 2009, pipes, fails)
}

func TestNetworkIndexing(t *testing.T) {
	n := testNetwork()
	if n.NumPipes() != 3 || n.NumFailures() != 4 {
		t.Fatalf("counts: %d pipes, %d failures", n.NumPipes(), n.NumFailures())
	}
	p, ok := n.PipeByID("P2")
	if !ok || p.Material != PVC {
		t.Fatalf("PipeByID(P2) = %+v, %v", p, ok)
	}
	if _, ok := n.PipeByID("NOPE"); ok {
		t.Fatal("unknown pipe must report !ok")
	}
	if n.PipeIndex("P3") != 2 || n.PipeIndex("NOPE") != -1 {
		t.Fatal("PipeIndex wrong")
	}
}

func TestFailureOrderingAndLookup(t *testing.T) {
	n := testNetwork()
	fs := n.Failures()
	for i := 1; i < len(fs); i++ {
		if fs[i].Year < fs[i-1].Year {
			t.Fatalf("failures not sorted by year: %+v", fs)
		}
		if fs[i].Year == fs[i-1].Year && fs[i].Day < fs[i-1].Day {
			t.Fatalf("failures not sorted by day within year: %+v", fs)
		}
	}
	p3 := n.FailuresOf("P3")
	if len(p3) != 3 {
		t.Fatalf("FailuresOf(P3) = %d, want 3", len(p3))
	}
	if p3[0].Year != 2001 || p3[0].Day != 10 {
		t.Fatalf("first P3 failure should be 2001 day 10, got %+v", p3[0])
	}
	if len(n.FailuresOf("P2")) != 0 {
		t.Fatal("P2 has no failures")
	}
}

func TestFailureCountAndFailedInYear(t *testing.T) {
	n := testNetwork()
	if got := n.FailureCount("P3", 1998, 2009); got != 3 {
		t.Fatalf("count = %d", got)
	}
	if got := n.FailureCount("P3", 2001, 2001); got != 2 {
		t.Fatalf("count 2001 = %d", got)
	}
	if got := n.FailureCount("P3", 2006, 2009); got != 0 {
		t.Fatalf("count empty window = %d", got)
	}
	if !n.FailedInYear("P1", 2000) || n.FailedInYear("P1", 2001) {
		t.Fatal("FailedInYear wrong for P1")
	}
}

func TestFailuresInYears(t *testing.T) {
	n := testNetwork()
	if got := len(n.FailuresInYears(1998, 2008)); got != 4 {
		t.Fatalf("window 1998-2008: %d, want 4 (all events)", got)
	}
	if got := len(n.FailuresInYears(2001, 2001)); got != 2 {
		t.Fatalf("window 2001: %d, want 2", got)
	}
	if got := len(n.FailuresInYears(2009, 2009)); got != 0 {
		t.Fatalf("window 2009: %d", got)
	}
}

func TestSubsetByClass(t *testing.T) {
	n := testNetwork()
	cwm := n.SubsetByClass(CriticalMain)
	if cwm.NumPipes() != 2 || cwm.NumFailures() != 4 {
		t.Fatalf("CWM subset: %d pipes, %d failures", cwm.NumPipes(), cwm.NumFailures())
	}
	rwm := n.SubsetByClass(ReticulationMain)
	if rwm.NumPipes() != 1 || rwm.NumFailures() != 0 {
		t.Fatalf("RWM subset: %d pipes, %d failures", rwm.NumPipes(), rwm.NumFailures())
	}
}

func TestSubsetPipes(t *testing.T) {
	n := testNetwork()
	sub, err := n.SubsetPipes([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumPipes() != 2 || sub.NumFailures() != 4 {
		t.Fatalf("subset: %d pipes, %d failures", sub.NumPipes(), sub.NumFailures())
	}
	if _, err := n.SubsetPipes([]int{99}); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

func TestSummarize(t *testing.T) {
	n := testNetwork()
	rows := n.Summarize()
	if len(rows) != 3 {
		t.Fatalf("want 3 rows (All, CWM, RWM), got %d", len(rows))
	}
	all := rows[0]
	if all.Scope != "All" || all.NumPipes != 3 || all.NumFailures != 4 {
		t.Fatalf("All row: %+v", all)
	}
	if all.LaidFrom != 1930 || all.LaidTo != 1990 {
		t.Fatalf("laid range: %+v", all)
	}
	if all.TotalKM != (500+120+900)/1000.0 {
		t.Fatalf("total km: %v", all.TotalKM)
	}
	if rows[1].Scope != "CWM" || rows[1].NumPipes != 2 {
		t.Fatalf("CWM row: %+v", rows[1])
	}
}

func TestLaidYearRangeEmpty(t *testing.T) {
	n := NewNetwork("E", 2000, 2001, nil, nil)
	lo, hi := n.LaidYearRange()
	if lo != 0 || hi != 0 {
		t.Fatal("empty network laid range must be (0,0)")
	}
	if n.AnnualFailureRate() != 0 {
		t.Fatal("empty network rate must be 0")
	}
}

func TestAnnualFailureRate(t *testing.T) {
	n := testNetwork()
	// 4 failures / 12 years / 3 pipes.
	want := 4.0 / 12.0 / 3.0
	if got := n.AnnualFailureRate(); got != want {
		t.Fatalf("rate = %v, want %v", got, want)
	}
}

func TestPipeAgeAt(t *testing.T) {
	p := Pipe{LaidYear: 1950}
	if p.AgeAt(2000) != 50 {
		t.Fatal("age wrong")
	}
	if p.AgeAt(1940) != 0 {
		t.Fatal("age must clamp at 0")
	}
}

func TestSegmentLength(t *testing.T) {
	p := Pipe{LengthM: 100, Segments: 4}
	if p.SegmentLengthM() != 25 {
		t.Fatal("segment length wrong")
	}
	p.Segments = 0
	if p.SegmentLengthM() != 100 {
		t.Fatal("degenerate segments must return full length")
	}
}

func TestPipeClassRoundTrip(t *testing.T) {
	for _, c := range []PipeClass{CriticalMain, ReticulationMain} {
		got, err := ParsePipeClass(c.String())
		if err != nil || got != c {
			t.Fatalf("round trip %v: %v, %v", c, got, err)
		}
	}
	if _, err := ParsePipeClass("XYZ"); err == nil {
		t.Fatal("unknown class must error")
	}
	if !strings.Contains(PipeClass(9).String(), "9") {
		t.Fatal("unknown class String should include the value")
	}
}

func TestClassForDiameter(t *testing.T) {
	if ClassForDiameter(300) != CriticalMain {
		t.Fatal("300mm is critical")
	}
	if ClassForDiameter(299) != ReticulationMain {
		t.Fatal("299mm is reticulation")
	}
}
