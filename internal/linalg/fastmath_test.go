package linalg

import (
	"math"
	"testing"
)

// TestFastMathDefaultOff pins the startup contract: a fresh process runs
// the exact kernels until someone opts in.
func TestFastMathDefaultOff(t *testing.T) {
	if FastMath() {
		t.Fatal("fast math enabled by default")
	}
}

// TestDotFastExactOnIntegerData exercises every lane/tail remainder of
// the 4-lane fast dot on small-integer inputs, where all products and
// partial sums are exactly representable: any summation order gives the
// same float64, so the fast kernel must match the sequential reference
// bit for bit. A botched remainder lane (skipped, doubled, misindexed)
// shows up as an integer discrepancy, not a rounding blur.
func TestDotFastExactOnIntegerData(t *testing.T) {
	for n := 0; n <= 13; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64((i*7)%9 - 4)
			b[i] = float64((i*5)%7 - 3)
		}
		want := dotNaive(a, b)
		if got := DotFast(a, b); got != want {
			t.Fatalf("n=%d: DotFast %v != sequential %v on integer data", n, got, want)
		}
	}
}

// TestMatVecFastExactOnIntegerData is the matrix version: every row
// remainder of the 2-row blocking crossed with every stride remainder of
// the 4-lane inner loop, on integer data where fast must equal exact.
func TestMatVecFastExactOnIntegerData(t *testing.T) {
	for rows := 0; rows <= 9; rows++ {
		for stride := 0; stride <= 13; stride++ {
			flat := make([]float64, rows*stride)
			for i := range flat {
				flat[i] = float64((i*3)%11 - 5)
			}
			x := make([]float64, stride)
			for j := range x {
				x[j] = float64((j*7)%5 - 2)
			}
			dst := make([]float64, rows)
			MatVecFast(dst, flat, stride, x)
			for r := 0; r < rows; r++ {
				if want := dotNaive(flat[r*stride:(r+1)*stride], x); dst[r] != want {
					t.Fatalf("rows=%d stride=%d row %d: MatVecFast %v != sequential %v",
						rows, stride, r, dst[r], want)
				}
			}
		}
	}
}

// TestFastMathDispatchRoutes flips the switch and checks Dot/MatVec
// actually change kernels, using a cancellation-heavy input where the
// reassociated sum differs bitwise from the sequential one.
func TestFastMathDispatchRoutes(t *testing.T) {
	const n = 64
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 1e8 + float64(i)*1.25
		if i%2 == 1 {
			a[i] = -a[i] + 0.5
		}
		b[i] = 1 + float64(i%5)*1e-9
	}
	exact, fast := DotExact(a, b), DotFast(a, b)
	if math.Float64bits(exact) == math.Float64bits(fast) {
		t.Skip("reassociation happened to round identically; dispatch covered by kerneltest")
	}
	defer SetFastMath(false)
	SetFastMath(true)
	if got := Dot(a, b); math.Float64bits(got) != math.Float64bits(fast) {
		t.Fatalf("fast-math Dot %v != DotFast %v", got, fast)
	}
	dst := make([]float64, 1)
	MatVec(dst, a, n, b)
	fastDst := make([]float64, 1)
	MatVecFast(fastDst, a, n, b)
	if math.Float64bits(dst[0]) != math.Float64bits(fastDst[0]) {
		t.Fatalf("fast-math MatVec %v != MatVecFast %v", dst[0], fastDst[0])
	}
	SetFastMath(false)
	if got := Dot(a, b); math.Float64bits(got) != math.Float64bits(exact) {
		t.Fatalf("exact-mode Dot %v != DotExact %v", got, exact)
	}
}

// TestFastKernelPanicParity: the fast kernels enforce the identical
// shape contract as the exact ones, so callers cannot observe which
// kernel ran via error behavior.
func TestFastKernelPanicParity(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("DotFast mismatch", func() { DotFast([]float64{1}, []float64{1, 2}) })
	mustPanic("MatVecFast bad vector", func() {
		MatVecFast(make([]float64, 2), make([]float64, 6), 3, []float64{1, 2})
	})
	mustPanic("MatVecFast bad flat", func() {
		MatVecFast(make([]float64, 2), make([]float64, 5), 3, []float64{1, 2, 3})
	})
}
