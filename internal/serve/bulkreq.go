package serve

// Zero-allocation decoding of the POST /api/bulk/{rank,plan} request
// bodies. The shape is the plan request plus a "top" count and two
// string arrays ("regions", "pipe_ids"); like planreq.go, a hand-rolled
// scanner handles the common shape without touching the heap — the
// region/pipe slices alias the pooled body buffer and their backing
// arrays are recycled with the bulkScratch — and anything outside the
// strict subset falls back to encoding/json over the same bytes for
// stdlib semantics and error text.

import (
	"bytes"
	"encoding/json"
)

// bulkFields is the decoded bulk request. plan carries the model and
// the bulk-plan pricing fields; regions/pipe_ids alias the request body
// buffer and are only valid while that buffer is.
type bulkFields struct {
	plan    planFields
	top     int
	hasTop  bool
	regions [][]byte
	pipeIDs [][]byte
}

// reset clears the fields while keeping the slice capacity for reuse.
func (bf *bulkFields) reset() {
	bf.plan = planFields{}
	bf.top = 0
	bf.hasTop = false
	bf.regions = bf.regions[:0]
	bf.pipeIDs = bf.pipeIDs[:0]
}

// parseBulkFast decodes data into bf. It returns false when the body is
// outside its strict subset (including any malformed input), in which
// case the caller must re-decode with decodeBulkSlow — both for bodies
// the stdlib would accept and for its exact error text on ones it
// would not.
func parseBulkFast(data []byte, bf *bulkFields) bool {
	i := skipJSONSpace(data, 0)
	if i >= len(data) || data[i] != '{' {
		return false
	}
	i = skipJSONSpace(data, i+1)
	if i < len(data) && data[i] == '}' {
		return true // empty object; trailing bytes ignored like json.Decoder
	}
	for {
		key, next, ok := scanJSONString(data, i)
		if !ok {
			return false
		}
		i = skipJSONSpace(data, next)
		if i >= len(data) || data[i] != ':' {
			return false
		}
		i = skipJSONSpace(data, i+1)
		if i >= len(data) {
			return false
		}
		switch data[i] {
		case '"':
			val, next, ok := scanJSONString(data, i)
			if !ok {
				return false
			}
			i = next
			switch string(key) {
			case "model":
				bf.plan.model = val
			case "top", "regions", "pipe_ids",
				"budget_km", "max_pipes", "inspection_per_km", "failure_cost", "max_spend":
				return false // string into a typed field: stdlib error
			}
		case '-', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
			tok, next, ok := scanJSONNumber(data, i)
			if !ok {
				return false
			}
			i = next
			switch string(key) {
			case "model", "regions", "pipe_ids":
				return false // number into a string(-array) field
			case "top":
				n, ok := parseJSONInt(tok)
				if !ok {
					return false
				}
				bf.top, bf.hasTop = n, true
			case "budget_km":
				f, ok := parseJSONFloat(tok)
				if !ok {
					return false
				}
				bf.plan.budgetKM = f
			case "max_pipes":
				n, ok := parseJSONInt(tok)
				if !ok {
					return false
				}
				bf.plan.maxPipes = n
			case "inspection_per_km":
				f, ok := parseJSONFloat(tok)
				if !ok {
					return false
				}
				bf.plan.inspPerKM, bf.plan.hasInsp = f, true
			case "failure_cost":
				f, ok := parseJSONFloat(tok)
				if !ok {
					return false
				}
				bf.plan.failCost, bf.plan.hasFail = f, true
			case "max_spend":
				f, ok := parseJSONFloat(tok)
				if !ok {
					return false
				}
				bf.plan.maxSpend, bf.plan.hasSpend = f, true
			}
		case '[':
			var dst *[][]byte
			switch string(key) {
			case "regions":
				dst = &bf.regions
			case "pipe_ids":
				dst = &bf.pipeIDs
			default:
				// Arrays under any other key (typed fields error, unknown
				// keys skip) are the stdlib's business.
				return false
			}
			// A repeated key replaces the earlier array, matching the
			// stdlib's last-wins duplicate-key semantics.
			*dst = (*dst)[:0]
			next, ok := scanStringArray(data, i, dst)
			if !ok {
				return false
			}
			i = next
		default:
			// true/false/null/object — even under unknown keys the stdlib
			// has opinions (and for known keys, type errors or null
			// no-ops); let it decide.
			return false
		}
		i = skipJSONSpace(data, i)
		if i >= len(data) {
			return false
		}
		switch data[i] {
		case ',':
			i = skipJSONSpace(data, i+1)
		case '}':
			return true // trailing bytes ignored, matching json.Decoder
		default:
			return false
		}
	}
}

// scanStringArray scans a JSON array of simple strings starting at the
// '[' in b[i], appending each element (aliasing b) to *dst. Anything
// but plain strings — escapes, numbers, nesting — is out of the subset.
func scanStringArray(b []byte, i int, dst *[][]byte) (next int, ok bool) {
	i = skipJSONSpace(b, i+1)
	if i < len(b) && b[i] == ']' {
		return i + 1, true
	}
	for {
		val, n, ok := scanJSONString(b, i)
		if !ok {
			return 0, false
		}
		*dst = append(*dst, val)
		i = skipJSONSpace(b, n)
		if i >= len(b) {
			return 0, false
		}
		switch b[i] {
		case ',':
			i = skipJSONSpace(b, i+1)
		case ']':
			return i + 1, true
		default:
			return 0, false
		}
	}
}

// bulkRequest is the encoding/json fallback shape for the bulk
// endpoints. Top is a pointer so "explicitly 0" (a client bug) and
// "absent" (use the default) stay distinguishable, mirroring the priced
// plan parameters.
type bulkRequest struct {
	Model           string   `json:"model"`
	Top             *int     `json:"top"`
	Regions         []string `json:"regions"`
	PipeIDs         []string `json:"pipe_ids"`
	BudgetKM        float64  `json:"budget_km"`
	MaxPipes        int      `json:"max_pipes"`
	InspectionPerKM *float64 `json:"inspection_per_km"`
	FailureCost     *float64 `json:"failure_cost"`
	MaxSpend        *float64 `json:"max_spend"`
}

// decodeBulkSlow is the fallback decoder for bodies outside
// parseBulkFast's subset: full encoding/json semantics (and its exact
// error messages), converted into the same bulkFields shape.
func decodeBulkSlow(data []byte, bf *bulkFields) error {
	var req bulkRequest
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
		return err
	}
	bf.plan.model = []byte(req.Model)
	if req.Top != nil {
		bf.top, bf.hasTop = *req.Top, true
	}
	for _, r := range req.Regions {
		bf.regions = append(bf.regions, []byte(r))
	}
	for _, id := range req.PipeIDs {
		bf.pipeIDs = append(bf.pipeIDs, []byte(id))
	}
	bf.plan.budgetKM = req.BudgetKM
	bf.plan.maxPipes = req.MaxPipes
	if req.InspectionPerKM != nil {
		bf.plan.inspPerKM, bf.plan.hasInsp = *req.InspectionPerKM, true
	}
	if req.FailureCost != nil {
		bf.plan.failCost, bf.plan.hasFail = *req.FailureCost, true
	}
	if req.MaxSpend != nil {
		bf.plan.maxSpend, bf.plan.hasSpend = *req.MaxSpend, true
	}
	return nil
}
