package kerneltest

import (
	"math"
	"testing"

	"repro/internal/eval"
	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// aucCase generates one scores/labels pair from the tie/sign corpus.
type aucCase struct {
	name   string
	scores []float64
	labels []bool
}

// aucCorpus crosses sizes with score distributions (continuous, heavy
// quantized ties, all-equal, mixed signs with both zeros, wide
// magnitudes) and label balances (rare positives like the pipe-failure
// sets, balanced, single-class).
func aucCorpus(seed int64) []aucCase {
	rng := stats.NewRNG(seed)
	var cases []aucCase
	sizes := []int{0, 1, 2, 3, 7, 64, 257, 1000}
	for _, n := range sizes {
		for _, sp := range []struct {
			name string
			gen  func(i int) float64
		}{
			{"continuous", func(int) float64 { return rng.Uniform(-3, 3) }},
			{"quantized2", func(int) float64 { return float64(rng.Intn(2)) }},
			{"quantized5", func(int) float64 { return float64(rng.Intn(5)) - 2 }},
			{"all-equal", func(int) float64 { return 1.25 }},
			{"signed-zeros", func(i int) float64 {
				switch rng.Intn(4) {
				case 0:
					return 0.0
				case 1:
					return math.Copysign(0, -1)
				default:
					return rng.Uniform(-1, 1)
				}
			}},
			{"wide", func(int) float64 {
				return rng.Uniform(-1, 1) * math.Pow(10, float64(rng.Intn(21)-10))
			}},
		} {
			for _, lp := range []struct {
				name string
				gen  func() bool
			}{
				{"rare-pos", func() bool { return rng.Bernoulli(0.05) }},
				{"balanced", func() bool { return rng.Bernoulli(0.5) }},
				{"all-pos", func() bool { return true }},
				{"all-neg", func() bool { return false }},
			} {
				scores := make([]float64, n)
				labels := make([]bool, n)
				for i := range scores {
					scores[i] = sp.gen(i)
					labels[i] = lp.gen()
				}
				cases = append(cases, aucCase{sp.name + "/" + lp.name, scores, labels})
			}
		}
	}
	return cases
}

// TestAUCOraclesAgree pins the harness against itself: the stable-sort
// rank formulation and the O(P·N) pairwise definition must agree bitwise
// (both are half-integer arithmetic below 2^53).
func TestAUCOraclesAgree(t *testing.T) {
	for _, c := range aucCorpus(101) {
		a, b := AUCOracleSort(c.scores, c.labels), AUCOraclePairwise(c.scores, c.labels)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s (n=%d): sort oracle %v != pairwise oracle %v", c.name, len(c.scores), a, b)
		}
	}
}

// TestAUCKernelBitIdenticalToOracles is the exact-mode gate for the
// counting-rank kernel: its whole claim is replaying the legacy float
// sequence, so no epsilon is allowed.
func TestAUCKernelBitIdenticalToOracles(t *testing.T) {
	var k eval.AUCKernel
	for _, c := range aucCorpus(202) {
		want := AUCOracleSort(c.scores, c.labels)
		got := k.Compute(c.scores, c.labels)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s (n=%d): kernel %v != sort oracle %v", c.name, len(c.scores), got, want)
		}
		if pw := AUCOraclePairwise(c.scores, c.labels); math.Float64bits(got) != math.Float64bits(pw) {
			t.Fatalf("%s (n=%d): kernel %v != pairwise oracle %v", c.name, len(c.scores), got, pw)
		}
	}
}

// TestAUCKernelParallelBitIdentical runs the counting pass with several
// worker counts on an input large enough to engage the pool and demands
// bitwise agreement with the serial kernel: per-worker integer count
// slabs merged by integer addition cannot depend on the partition.
func TestAUCKernelParallelBitIdentical(t *testing.T) {
	rng := stats.NewRNG(7)
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = float64(rng.Intn(97)) / 7
		labels[i] = rng.Bernoulli(0.04)
	}
	var serial eval.AUCKernel
	want := serial.Compute(scores, labels)
	for _, w := range []int{2, 3, 8} {
		k := eval.AUCKernel{Pool: parallel.New(w)}
		got := k.Compute(scores, labels)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: %v != serial %v", w, got, want)
		}
	}
}

// TestDotExactBitIdentical pins the default inner product (and its
// explicit DotExact spelling) to the naive sequential oracle over every
// remainder-lane length and value pattern.
func TestDotExactBitIdentical(t *testing.T) {
	rng := stats.NewRNG(11)
	for _, p := range Patterns {
		for _, n := range Lengths {
			a, b := p.Gen(rng, n), p.Gen(rng, n)
			want := DotOracle(a, b)
			if got := linalg.DotExact(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("DotExact %s n=%d: %v != oracle %v", p.Name, n, got, want)
			}
			if got := linalg.Dot(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Dot(default) %s n=%d: %v != oracle %v", p.Name, n, got, want)
			}
		}
	}
}

// TestMatVecExactBitIdentical pins the 4-row blocked kernel to per-row
// naive dots across every row-count remainder class and stride lane.
func TestMatVecExactBitIdentical(t *testing.T) {
	rng := stats.NewRNG(13)
	strides := []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 32, 33}
	for _, p := range Patterns {
		for _, rows := range RowCounts {
			for _, stride := range strides {
				flat := p.Gen(rng, rows*stride)
				x := p.Gen(rng, stride)
				want := make([]float64, rows)
				MatVecOracle(want, flat, stride, x)
				got := make([]float64, rows)
				linalg.MatVecExact(got, flat, stride, x)
				for r := range want {
					if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
						t.Fatalf("MatVecExact %s %dx%d row %d: %v != oracle %v",
							p.Name, rows, stride, r, got[r], want[r])
					}
				}
				linalg.MatVec(got, flat, stride, x)
				for r := range want {
					if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
						t.Fatalf("MatVec(default) %s %dx%d row %d: %v != oracle %v",
							p.Name, rows, stride, r, got[r], want[r])
					}
				}
			}
		}
	}
}

// TestDotFastULPBounded holds the reassociated inner product within
// SumBound of the oracle on every pattern, and bitwise equal on the
// integer pattern, where all partial sums are exactly representable and
// reassociation is lossless.
func TestDotFastULPBounded(t *testing.T) {
	rng := stats.NewRNG(17)
	for _, p := range Patterns {
		for _, n := range Lengths {
			a, b := p.Gen(rng, n), p.Gen(rng, n)
			want := DotOracle(a, b)
			got := linalg.DotFast(a, b)
			bound := SumBound(n, MagSum(a, b))
			if diff := math.Abs(got - want); diff > bound {
				t.Fatalf("DotFast %s n=%d: |%v - %v| = %v > bound %v", p.Name, n, got, want, diff, bound)
			}
			if IsInteger(a) && IsInteger(b) && math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("DotFast %s n=%d: integer inputs must be exact: %v != %v", p.Name, n, got, want)
			}
		}
	}
}

// TestMatVecFastULPBounded is the per-row version for the 2-row blocked
// fast kernel, including the DotFast remainder rows.
func TestMatVecFastULPBounded(t *testing.T) {
	rng := stats.NewRNG(19)
	strides := []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 32, 33}
	for _, p := range Patterns {
		for _, rows := range RowCounts {
			for _, stride := range strides {
				flat := p.Gen(rng, rows*stride)
				x := p.Gen(rng, stride)
				want := make([]float64, rows)
				MatVecOracle(want, flat, stride, x)
				got := make([]float64, rows)
				linalg.MatVecFast(got, flat, stride, x)
				intCase := IsInteger(flat) && IsInteger(x)
				for r := range want {
					row := flat[r*stride : (r+1)*stride]
					bound := SumBound(stride, MagSum(row, x))
					if diff := math.Abs(got[r] - want[r]); diff > bound {
						t.Fatalf("MatVecFast %s %dx%d row %d: |%v - %v| = %v > bound %v",
							p.Name, rows, stride, r, got[r], want[r], diff, bound)
					}
					if intCase && math.Float64bits(got[r]) != math.Float64bits(want[r]) {
						t.Fatalf("MatVecFast %s %dx%d row %d: integer inputs must be exact: %v != %v",
							p.Name, rows, stride, r, got[r], want[r])
					}
				}
			}
		}
	}
}

// divergentDotCase searches the cancellation pattern for an input where
// the reassociated and sequential sums differ bitwise — both to make the
// dispatch test non-vacuous and to document that the fast path really
// does change bits (if it never did, the whole opt-in would be dead
// code).
func divergentDotCase(t *testing.T) (a, b []float64) {
	t.Helper()
	for seed := int64(0); seed < 100; seed++ {
		rng := stats.NewRNG(1000 + seed)
		a = Patterns[2].Gen(rng, 1000) // cancellation
		b = Patterns[2].Gen(rng, 1000)
		if math.Float64bits(linalg.DotFast(a, b)) != math.Float64bits(linalg.DotExact(a, b)) {
			return a, b
		}
	}
	t.Fatal("no input found where DotFast differs from DotExact — fast path appears inert")
	return nil, nil
}

// TestFastMathDispatch checks the process-wide switch actually routes
// Dot/MatVec between the exact and fast kernels, using an input where
// the two differ bitwise so the routing is observable.
func TestFastMathDispatch(t *testing.T) {
	if linalg.FastMath() {
		t.Fatal("fast math must be off by default")
	}
	a, b := divergentDotCase(t)
	defer linalg.SetFastMath(false)
	linalg.SetFastMath(true)
	if !linalg.FastMath() {
		t.Fatal("SetFastMath(true) not observable")
	}
	if got, want := linalg.Dot(a, b), linalg.DotFast(a, b); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("fast-math Dot %v != DotFast %v", got, want)
	}
	dst, dstFast := make([]float64, 1), make([]float64, 1)
	linalg.MatVec(dst, a, len(a), b)
	linalg.MatVecFast(dstFast, a, len(a), b)
	if math.Float64bits(dst[0]) != math.Float64bits(dstFast[0]) {
		t.Fatalf("fast-math MatVec %v != MatVecFast %v", dst[0], dstFast[0])
	}
	linalg.SetFastMath(false)
	if got, want := linalg.Dot(a, b), linalg.DotExact(a, b); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("exact-mode Dot %v != DotExact %v", got, want)
	}
}

// TestFastMathRankEquivalence is the AUC rank-equivalence property test:
// when the gaps between distinct exact scores exceed the fast-math error
// bound, fast-math scoring may change score bits but cannot change any
// ranking decision — tie structure and order are preserved, so the AUC
// (a pure function of the score permutation) is bit-identical.
//
// The corpus is built to make both halves of the property non-vacuous:
// duplicated feature rows force exact ties (identical bytes produce
// identical sums in either mode), distinct rows are checked to be
// separated by more than twice the per-row bound, and the chosen seed
// must produce at least one row whose fast score differs bitwise from
// its exact score.
func TestFastMathRankEquivalence(t *testing.T) {
	const (
		dim   = 24
		base  = 40
		nRows = 400
	)
	for seed := int64(0); seed < 100; seed++ {
		rng := stats.NewRNG(5000 + seed)
		w := make([]float64, dim)
		for i := range w {
			w[i] = rng.Uniform(-1, 1)
		}
		baseRows := make([][]float64, base)
		for i := range baseRows {
			baseRows[i] = make([]float64, dim)
			for j := range baseRows[i] {
				baseRows[i][j] = rng.Uniform(-1, 1)
			}
		}

		// Separation check: distinct base rows must score further apart
		// than the summation error can move them.
		exactBase := make([]float64, base)
		maxBound := 0.0
		for i, row := range baseRows {
			exactBase[i] = DotOracle(row, w)
			if b := SumBound(dim, MagSum(row, w)); b > maxBound {
				maxBound = b
			}
		}
		minGap := math.Inf(1)
		for i := 0; i < base; i++ {
			for j := i + 1; j < base; j++ {
				if g := math.Abs(exactBase[i] - exactBase[j]); g > 0 && g < minGap {
					minGap = g
				}
			}
		}
		if minGap <= 2*maxBound {
			continue // pathological seed: rows too close to separate, try another
		}

		// Assemble the dataset with duplicates (ties) and labels.
		flat := make([]float64, nRows*dim)
		origin := make([]int, nRows)
		labels := make([]bool, nRows)
		for r := 0; r < nRows; r++ {
			origin[r] = rng.Intn(base)
			copy(flat[r*dim:(r+1)*dim], baseRows[origin[r]])
			labels[r] = rng.Bernoulli(0.3)
		}
		exact := make([]float64, nRows)
		fast := make([]float64, nRows)
		linalg.MatVecExact(exact, flat, dim, w)
		linalg.MatVecFast(fast, flat, dim, w)

		diverged := 0
		for r := 0; r < nRows; r++ {
			row := flat[r*dim : (r+1)*dim]
			if diff := math.Abs(fast[r] - exact[r]); diff > SumBound(dim, MagSum(row, w)) {
				t.Fatalf("seed %d row %d: fast %v drifted %v from exact %v, over bound", seed, r, fast[r], diff, exact[r])
			}
			if math.Float64bits(fast[r]) != math.Float64bits(exact[r]) {
				diverged++
			}
		}
		if diverged == 0 {
			continue // fast == exact everywhere: rank equivalence would be vacuous, try another seed
		}

		// Ties preserved: rows sharing a base row must tie in both modes.
		for r := 0; r < nRows; r++ {
			for s := r + 1; s < nRows; s++ {
				if origin[r] == origin[s] {
					if math.Float64bits(fast[r]) != math.Float64bits(fast[s]) {
						t.Fatalf("seed %d: duplicated rows %d,%d scored differently under fast math", seed, r, s)
					}
				} else if (exact[r] < exact[s]) != (fast[r] < fast[s]) {
					t.Fatalf("seed %d: rows %d,%d flipped order under fast math", seed, r, s)
				}
			}
		}

		// Same permutation and tie structure ⇒ bit-identical AUC, even
		// though some score bits differ.
		var k eval.AUCKernel
		aExact := k.Compute(exact, labels)
		aFast := k.Compute(fast, labels)
		if math.Float64bits(aExact) != math.Float64bits(aFast) {
			t.Fatalf("seed %d: AUC diverged under fast math: exact %v fast %v (%d scores differ)",
				seed, aExact, aFast, diverged)
		}
		t.Logf("seed %d: %d/%d scores differ bitwise, AUC bit-identical (%v), min gap %v, max bound %v",
			seed, diverged, nRows, aExact, minGap, maxBound)
		return
	}
	t.Fatal("no seed produced a separated corpus with bitwise-divergent fast scores")
}
