package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/feature"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// RankSVMConfig tunes the pairwise hinge-loss ranker.
type RankSVMConfig struct {
	// Seed drives pair sampling.
	Seed int64
	// Epochs is the number of passes, each drawing PairsPerEpoch pairs
	// (default 30).
	Epochs int
	// PairsPerEpoch is the number of (positive, negative) pairs sampled
	// per epoch (default: 4x the positive count, at least 1000).
	PairsPerEpoch int
	// Lambda is the L2 regularization strength (default 1e-4).
	Lambda float64
	// LearningRate is the initial SGD step (default 0.1, decayed 1/sqrt(t)).
	LearningRate float64
}

func (c *RankSVMConfig) fillDefaults(numPos int) {
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.PairsPerEpoch <= 0 {
		c.PairsPerEpoch = 4 * numPos
		if c.PairsPerEpoch < 1000 {
			c.PairsPerEpoch = 1000
		}
	}
	if c.Lambda <= 0 {
		c.Lambda = 1e-4
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
}

// RankSVM learns a linear scoring function by minimizing the pairwise
// hinge loss Σ max(0, 1 − w·(x⁺ − x⁻)) + λ‖w‖² over sampled
// positive/negative pairs — the convex surrogate of the AUC objective that
// the paper compares its direct optimizer against.
type RankSVM struct {
	cfg RankSVMConfig
	// W is the learned weight vector.
	W []float64
}

// NewRankSVM returns an unfitted RankSVM.
func NewRankSVM(cfg RankSVMConfig) *RankSVM {
	return &RankSVM{cfg: cfg}
}

// Name implements Model.
func (m *RankSVM) Name() string { return "RankSVM" }

// Fit implements Model.
func (m *RankSVM) Fit(train *feature.Set) error {
	return m.FitContext(context.Background(), train)
}

// FitContext implements ContextFitter: Fit with a cancellation check at
// every epoch boundary. The checks never touch the RNG, so uncancelled
// runs match Fit bit for bit.
func (m *RankSVM) FitContext(ctx context.Context, train *feature.Set) error {
	if err := validateFitInputs(train); err != nil {
		return fmt.Errorf("%s: %w", m.Name(), err)
	}
	pos, neg := splitByLabel(train)
	cfg := m.cfg
	cfg.fillDefaults(len(pos))
	rng := stats.NewRNG(cfg.Seed)

	w := make([]float64, train.Dim())
	diff := make([]float64, train.Dim())
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%s: cancelled at epoch %d: %w", m.Name(), epoch, err)
		}
		for k := 0; k < cfg.PairsPerEpoch; k++ {
			t++
			xi := train.X[pos[rng.Intn(len(pos))]]
			xj := train.X[neg[rng.Intn(len(neg))]]
			for d := range diff {
				diff[d] = xi[d] - xj[d]
			}
			lr := cfg.LearningRate / math.Sqrt(float64(t))
			// L2 shrinkage.
			linalg.Scale(1-lr*cfg.Lambda, w)
			if linalg.Dot(w, diff) < 1 {
				linalg.Axpy(lr, diff, w)
			}
		}
	}
	m.W = w
	return nil
}

// Scores implements Model.
func (m *RankSVM) Scores(test *feature.Set) ([]float64, error) {
	if m.W == nil {
		return nil, fmt.Errorf("%s: Scores before Fit", m.Name())
	}
	if test.Dim() != len(m.W) {
		return nil, fmt.Errorf("%s: test dim %d != model dim %d", m.Name(), test.Dim(), len(m.W))
	}
	return scoreAll(test, m.W), nil
}
