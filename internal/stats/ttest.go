package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrInsufficientData is returned by hypothesis tests when too few paired
// observations are supplied to compute a test statistic.
var ErrInsufficientData = errors.New("stats: insufficient data for test")

// TTestResult holds the outcome of a paired t-test. The paper reports the
// statistic alongside whether p < 0.05, so both are exposed.
type TTestResult struct {
	T           float64 // test statistic
	DF          float64 // degrees of freedom (n-1)
	P           float64 // p-value under the configured alternative
	MeanDiff    float64 // mean of (x - y)
	Significant bool    // P < alpha at construction time
	Alpha       float64 // significance level the test was run at
}

// String renders the result the way the paper's significance tables do,
// e.g. "9.37 (<0.05)" or "2.56 (=0.08)".
func (r TTestResult) String() string {
	if r.Significant {
		return fmt.Sprintf("%.2f (<%.2g)", r.T, r.Alpha)
	}
	return fmt.Sprintf("%.2f (=%.2g)", r.T, r.P)
}

// Alternative selects the alternative hypothesis of a test.
type Alternative int

const (
	// Greater tests H1: mean(x-y) > 0 (one-sided), the paper's setting
	// when asking whether the proposed method beats a baseline.
	Greater Alternative = iota
	// Less tests H1: mean(x-y) < 0.
	Less
	// TwoSided tests H1: mean(x-y) != 0.
	TwoSided
)

// PairedTTest performs a paired t-test of xs against ys at level alpha.
// xs and ys must have equal length n >= 2. When every paired difference is
// exactly zero the statistic is defined as 0 with p = 1 (or 0.5 one-sided),
// mirroring the convention of common statistics packages.
func PairedTTest(xs, ys []float64, alt Alternative, alpha float64) (TTestResult, error) {
	if len(xs) != len(ys) {
		return TTestResult{}, fmt.Errorf("stats: paired t-test length mismatch %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	diffs := make([]float64, n)
	for i := range xs {
		diffs[i] = xs[i] - ys[i]
	}
	md := Mean(diffs)
	sd := StdDev(diffs)
	df := float64(n - 1)
	var t float64
	if sd == 0 {
		if md == 0 {
			t = 0
		} else if md > 0 {
			t = math.Inf(1)
		} else {
			t = math.Inf(-1)
		}
	} else {
		t = md / (sd / math.Sqrt(float64(n)))
	}
	var p float64
	switch alt {
	case Greater:
		p = 1 - studentCDFSafe(t, df)
	case Less:
		p = studentCDFSafe(t, df)
	case TwoSided:
		p = 2 * (1 - studentCDFSafe(math.Abs(t), df))
	default:
		return TTestResult{}, fmt.Errorf("stats: unknown alternative %d", alt)
	}
	if p > 1 {
		p = 1
	}
	return TTestResult{
		T: t, DF: df, P: p, MeanDiff: md,
		Significant: p < alpha, Alpha: alpha,
	}, nil
}

// studentCDFSafe extends StudentTCDF to infinite statistics.
func studentCDFSafe(t, df float64) float64 {
	switch {
	case math.IsInf(t, 1):
		return 1
	case math.IsInf(t, -1):
		return 0
	default:
		return StudentTCDF(t, df)
	}
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using b resamples.
func BootstrapCI(rng *RNG, xs []float64, level float64, b int) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrInsufficientData
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: bootstrap level %v out of (0,1)", level)
	}
	if b < 2 {
		return 0, 0, fmt.Errorf("stats: bootstrap resamples %d < 2", b)
	}
	means := make([]float64, b)
	tmp := make([]float64, len(xs))
	for i := 0; i < b; i++ {
		for j := range tmp {
			tmp[j] = xs[rng.Intn(len(xs))]
		}
		means[i] = Mean(tmp)
	}
	tail := (1 - level) / 2
	return Quantile(means, tail), Quantile(means, 1-tail), nil
}
