package baseline

import (
	"fmt"
	"math"

	"repro/internal/feature"
)

// AgeRateForm selects the functional form of an aggregate age-rate model.
type AgeRateForm int

const (
	// TimeExponential is the Shamir–Howard (1979) model:
	// rate(age) = A·exp(B·age), failures per pipe-year.
	TimeExponential AgeRateForm = iota
	// TimePower is the Mavin (1996) style model: rate(age) = A·(age+1)^B.
	TimePower
	// TimeLinear is the Kettler–Goulter (1985) model: rate(age) = A + B·age.
	TimeLinear
)

// String returns the model's display name.
func (f AgeRateForm) String() string {
	switch f {
	case TimeExponential:
		return "TimeExp"
	case TimePower:
		return "TimePower"
	case TimeLinear:
		return "TimeLinear"
	default:
		return fmt.Sprintf("AgeRateForm(%d)", int(f))
	}
}

// AgeRateModel is the family of classical aggregate models that regress the
// network-wide failure rate on pipe age alone, then score a pipe by its
// age-rate times its length exposure. These are the earliest statistical
// pipe models and the weakest baselines in the comparison.
type AgeRateModel struct {
	Form AgeRateForm
	// A and B are the fitted curve parameters.
	A, B   float64
	fitted bool
}

// NewAgeRateModel returns an unfitted aggregate model of the given form.
func NewAgeRateModel(form AgeRateForm) *AgeRateModel {
	return &AgeRateModel{Form: form}
}

// Name implements core.Model.
func (m *AgeRateModel) Name() string { return m.Form.String() }

// Fit implements core.Model. Pipe-year instances are bucketed by integer
// age; the empirical failure rate per bucket is regressed on age with
// exposure-weighted least squares in the form-appropriate transform.
func (m *AgeRateModel) Fit(train *feature.Set) error {
	if train == nil || train.Len() == 0 {
		return fmt.Errorf("%s: empty training set", m.Name())
	}
	if train.Positives() == 0 {
		return fmt.Errorf("%s: no failures in training window", m.Name())
	}
	// Bucket exposures and failures by integer age.
	maxAge := 0
	for _, a := range train.Age {
		if int(a) > maxAge {
			maxAge = int(a)
		}
	}
	exposure := make([]float64, maxAge+1)
	failures := make([]float64, maxAge+1)
	for i, a := range train.Age {
		b := int(a)
		exposure[b]++
		if train.Label[i] {
			failures[b]++
		}
	}

	// Weighted least squares on the transformed rate.
	var sw, swx, swy, swxx, swxy float64
	for age := 0; age <= maxAge; age++ {
		if exposure[age] < 5 {
			continue // too little exposure to estimate a rate
		}
		rate := failures[age] / exposure[age]
		x, y, ok := m.transform(float64(age), rate)
		if !ok {
			continue
		}
		w := exposure[age]
		sw += w
		swx += w * x
		swy += w * y
		swxx += w * x * x
		swxy += w * x * y
	}
	det := sw*swxx - swx*swx
	if sw == 0 || math.Abs(det) < 1e-12 {
		return fmt.Errorf("%s: degenerate age-rate regression", m.Name())
	}
	slope := (sw*swxy - swx*swy) / det
	inter := (swy - slope*swx) / sw
	switch m.Form {
	case TimeExponential, TimePower:
		m.A = math.Exp(inter)
		m.B = slope
	case TimeLinear:
		m.A = inter
		m.B = slope
	default:
		return fmt.Errorf("%s: unknown form", m.Name())
	}
	m.fitted = true
	return nil
}

// transform maps (age, rate) to the linear regression space of the form.
// ok=false drops the bucket (e.g. zero rate under a log transform).
func (m *AgeRateModel) transform(age, rate float64) (x, y float64, ok bool) {
	const eps = 1e-6
	switch m.Form {
	case TimeExponential:
		return age, math.Log(rate + eps), true
	case TimePower:
		return math.Log(age + 1), math.Log(rate + eps), true
	case TimeLinear:
		return age, rate, true
	default:
		return 0, 0, false
	}
}

// Rate returns the fitted failure rate at the given age (clamped at 0).
func (m *AgeRateModel) Rate(age float64) float64 {
	var r float64
	switch m.Form {
	case TimeExponential:
		r = m.A * math.Exp(m.B*age)
	case TimePower:
		r = m.A * math.Pow(age+1, m.B)
	case TimeLinear:
		r = m.A + m.B*age
	}
	if r < 0 {
		return 0
	}
	return r
}

// Scores implements core.Model; a pipe's score is its age-rate scaled by
// length exposure (longer pipes of the same age are proportionally riskier).
func (m *AgeRateModel) Scores(test *feature.Set) ([]float64, error) {
	if !m.fitted {
		return nil, fmt.Errorf("%s: %w", m.Name(), ErrNotFitted)
	}
	out := make([]float64, test.Len())
	for i := range out {
		out[i] = m.Rate(test.Age[i]) * test.LengthM[i] / 100
	}
	return out, nil
}
