// Command pipeserve runs the HTTP risk service over a network: rankings,
// per-pipe risk lookups, and budget-constrained inspection plans as JSON.
//
// Usage:
//
//	pipeserve -data data/regionA -addr :8080
//	pipeserve -region B -scale 0.25 -addr :8080     # synthetic network
//
// Endpoints:
//
//	GET  /healthz
//	GET  /api/network
//	GET  /api/models
//	POST /api/models/{name}/train
//	GET  /api/models/{name}/ranking?top=N
//	GET  /api/pipes/{id}
//	POST /api/plan  {"model": "...", "budget_km": 10}
//	GET  /metrics   (JSON metrics snapshot; disable with -metrics=false)
//
// Ranking, cohort and hotspot responses are served from an in-memory
// encoded-response cache (size via -cache-mb) with strong ETags;
// clients sending If-None-Match get 304 Not-Modified.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pipeserve: ")

	data := flag.String("data", "", "network directory (pipes.csv/failures.csv/meta.csv)")
	region := flag.String("region", "A", "synthetic region preset when -data is unset")
	seed := flag.Int64("seed", 1, "generator / learner seed")
	scale := flag.Float64("scale", 0.25, "synthetic region scale")
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	metrics := flag.Bool("metrics", true, "expose the GET /metrics observability endpoint")
	cacheMB := flag.Int64("cache-mb", serve.DefaultCacheBytes>>20, "response cache budget in MiB (encoded ranking/cohort/hotspot bodies)")
	flag.Parse()
	if *cacheMB < 1 {
		log.Fatalf("-cache-mb must be >= 1, got %d", *cacheMB)
	}

	var network *pipefail.Network
	var err error
	if *data != "" {
		network, err = pipefail.LoadNetwork(*data)
	} else {
		network, err = pipefail.GenerateRegion(*region, *seed, *scale)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving region %s: %d pipes, %d failures", network.Region, network.NumPipes(), network.NumFailures())

	s, err := serve.New(network, log.Default(), pipefail.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	if *cacheMB<<20 != serve.DefaultCacheBytes {
		s.SetResponseCacheBytes(*cacheMB << 20)
	}
	handler := s.Handler()
	if !*metrics {
		handler = withoutMetrics(handler)
	}
	// Listen explicitly (instead of ListenAndServe) so :0 resolves to a
	// real port before the "listening on" line — the e2e test and local
	// scripting both scrape the bound address from it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("listening on %s", ln.Addr())
	log.Fatal(srv.Serve(ln))
}

// withoutMetrics hides GET /metrics when the flag disables it.
func withoutMetrics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			http.NotFound(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}
