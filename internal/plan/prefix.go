package plan

// Prefix is the precomputed greedy-plan structure for one (candidate
// set, cost model) pair: candidates sorted by net-benefit density once,
// with cumulative prefix curves (total length, inspection cost,
// expected prevented failures), so a plan for an arbitrary Budget is a
// binary search over the curves plus a bounded scan of the greedy
// skip tail — instead of a full sort per request.
//
// Plan is proven byte-identical to Greedy over the same candidates and
// cost model (TestPrefixMatchesGreedyProperty): the sort uses the same
// stable comparator, the curves accumulate in the same order with the
// same floating-point operations, and the tail scan replays Greedy's
// loop body exactly from the first skipped item.

import "sort"

// prefixItem carries the per-candidate quantities Greedy computes on
// every call, frozen at build time.
type prefixItem struct {
	cost float64 // inspection cost under the cost model
	net  float64 // expected benefit − cost
}

// Prefix is immutable after BuildPrefix returns and safe for concurrent
// use by any number of goroutines.
type Prefix struct {
	cm   CostModel
	prev float64

	// cands is the candidate slice in greedy selection order (density
	// descending, ties by ID); items holds the matching cost/net pairs.
	cands []Candidate
	items []prefixItem

	// pos is the greedy horizon: the first index whose net benefit is
	// not positive. Greedy breaks there; no later item is ever selected.
	pos int

	// cum*[i] are the running totals after selecting cands[:i], built
	// with the same sequential additions Greedy performs, so the values
	// are bit-identical to its accumulator state at step i.
	cumLen  []float64
	cumCost []float64
	cumPrev []float64

	// minLenFrom[i] / minCostFrom[i] are suffix minima over the positive
	// horizon [i, pos): once the remaining budget cannot admit even the
	// smallest remaining item, the tail scan stops early. Floating-point
	// addition is monotone in the addend, so the early exit can never
	// skip an item Greedy would have selected.
	minLenFrom  []float64
	minCostFrom []float64
}

// BuildPrefix validates the candidates and cost model exactly as Greedy
// does, sorts once, and freezes the prefix curves. The input slice is
// not retained or mutated.
func BuildPrefix(cands []Candidate, cm CostModel) (*Prefix, error) {
	if err := validate(cands, cm); err != nil {
		return nil, err
	}
	prev := cm.preventionRate()
	px := &Prefix{
		cm:    cm,
		prev:  prev,
		cands: make([]Candidate, len(cands)),
		items: make([]prefixItem, len(cands)),
	}
	copy(px.cands, cands)

	// Identical ordering to Greedy: stable sort on (density desc, ID asc).
	density := make([]float64, len(cands))
	for i, c := range px.cands {
		cost := c.LengthM / 1000 * cm.InspectionPerKM
		net := c.FailProb*prev*cm.FailureCost - cost
		density[i] = net / c.LengthM
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if density[a] != density[b] {
			return density[a] > density[b]
		}
		return px.cands[a].ID < px.cands[b].ID
	})
	sorted := make([]Candidate, len(cands))
	for i, idx := range order {
		sorted[i] = px.cands[idx]
	}
	px.cands = sorted
	for i, c := range px.cands {
		cost := c.LengthM / 1000 * cm.InspectionPerKM
		px.items[i] = prefixItem{cost: cost, net: c.FailProb*prev*cm.FailureCost - cost}
	}

	// Greedy's break point: the first non-positive net (NaN nets compare
	// false and are passed over, exactly as Greedy's `net <= 0` does).
	px.pos = len(px.items)
	for i := range px.items {
		if px.items[i].net <= 0 {
			px.pos = i
			break
		}
	}

	px.cumLen = make([]float64, px.pos+1)
	px.cumCost = make([]float64, px.pos+1)
	px.cumPrev = make([]float64, px.pos+1)
	for i := 0; i < px.pos; i++ {
		px.cumLen[i+1] = px.cumLen[i] + px.cands[i].LengthM
		px.cumCost[i+1] = px.cumCost[i] + px.items[i].cost
		px.cumPrev[i+1] = px.cumPrev[i] + px.cands[i].FailProb*prev
	}

	px.minLenFrom = make([]float64, px.pos+1)
	px.minCostFrom = make([]float64, px.pos+1)
	if px.pos > 0 {
		const inf = 1.797693134862315708145274237317043567981e308 // MaxFloat64
		px.minLenFrom[px.pos], px.minCostFrom[px.pos] = inf, inf
		for i := px.pos - 1; i >= 0; i-- {
			px.minLenFrom[i] = min(px.minLenFrom[i+1], px.cands[i].LengthM)
			px.minCostFrom[i] = min(px.minCostFrom[i+1], px.items[i].cost)
		}
	}
	return px, nil
}

// validate applies Greedy's exact input checks so a Prefix-backed
// caller reports the same errors the per-request path did.
func validate(cands []Candidate, cm CostModel) error {
	if err := cm.Validate(); err != nil {
		return err
	}
	for _, c := range cands {
		if c.FailProb < 0 || c.FailProb > 1 {
			return candProbErr(c)
		}
		if c.LengthM <= 0 {
			return candLenErr(c)
		}
	}
	return nil
}

// CostModel returns the cost model the prefix was built for.
func (px *Prefix) CostModel() CostModel { return px.cm }

// Len returns the number of candidates behind the prefix.
func (px *Prefix) Len() int { return len(px.cands) }

// Plan produces the plan Greedy would build for b — byte-identical
// selection, order and economics — in O(log n + tail) instead of
// O(n log n). The returned Plan's Selected slice may alias the prefix's
// internal (immutable) candidate array; callers must not mutate it.
func (px *Prefix) Plan(b Budget) (*Plan, error) {
	if b.MaxLengthM <= 0 && b.MaxCount <= 0 && b.MaxSpend <= 0 {
		return nil, ErrNoBudget
	}

	// The longest all-selected prefix: every item before k passes all
	// three of Greedy's checks, found by binary search over the curves.
	// cum[i+1] is bit-identical to Greedy's `running + item` sum, and
	// the curves are non-decreasing, so the predicates are monotone.
	limit := px.pos
	if b.MaxCount > 0 && b.MaxCount < limit {
		limit = b.MaxCount
	}
	k := limit
	if b.MaxLengthM > 0 {
		if kl := sort.Search(px.pos, func(i int) bool { return px.cumLen[i+1] > b.MaxLengthM }); kl < k {
			k = kl
		}
	}
	if b.MaxSpend > 0 {
		if ks := sort.Search(px.pos, func(i int) bool { return px.cumCost[i+1] > b.MaxSpend }); ks < k {
			k = ks
		}
	}

	p := &Plan{
		TotalLengthM:      px.cumLen[k],
		InspectionCost:    px.cumCost[k],
		ExpectedPrevented: px.cumPrev[k],
	}
	// Full-capacity slice: a tail append copies instead of writing into
	// the shared array.
	selected := px.cands[:k:k]

	// The prefix ended on the net-benefit horizon or the count cap only
	// if k reached them: Greedy selects nothing further in either case.
	// Otherwise item k was a length/spend skip and Greedy keeps
	// scanning — replay its loop body exactly from there (the running
	// totals here equal its accumulators bit for bit).
	if k < px.pos && (b.MaxCount <= 0 || k < b.MaxCount) {
		totalLen, totalCost, prevSum := p.TotalLengthM, p.InspectionCost, p.ExpectedPrevented
		for i := k; i < px.pos; i++ {
			// Early exit: no remaining item fits the exhausted dimension.
			if (b.MaxLengthM > 0 && totalLen+px.minLenFrom[i] > b.MaxLengthM) ||
				(b.MaxSpend > 0 && totalCost+px.minCostFrom[i] > b.MaxSpend) {
				break
			}
			c := px.cands[i]
			if b.MaxLengthM > 0 && totalLen+c.LengthM > b.MaxLengthM {
				continue
			}
			if b.MaxCount > 0 && len(selected) >= b.MaxCount {
				break
			}
			if b.MaxSpend > 0 && totalCost+px.items[i].cost > b.MaxSpend {
				continue
			}
			selected = append(selected, c)
			totalLen += c.LengthM
			totalCost += px.items[i].cost
			prevSum += c.FailProb * px.prev
		}
		p.TotalLengthM, p.InspectionCost, p.ExpectedPrevented = totalLen, totalCost, prevSum
	}

	if len(selected) > 0 {
		p.Selected = selected
	}
	p.ExpectedBenefit = p.ExpectedPrevented * px.cm.FailureCost
	p.ExpectedNet = p.ExpectedBenefit - p.InspectionCost
	return p, nil
}
