package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestPipesCSVRoundTrip(t *testing.T) {
	in := testNetwork().Pipes()
	var buf bytes.Buffer
	if err := WritePipes(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPipes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestFailuresCSVRoundTrip(t *testing.T) {
	in := testNetwork().Failures()
	var buf bytes.Buffer
	if err := WriteFailures(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFailures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestReadPipesRejectsBadHeader(t *testing.T) {
	csv := "id,wrong\nP1,2\n"
	if _, err := ReadPipes(strings.NewReader(csv)); err == nil {
		t.Fatal("bad header must error")
	}
}

func TestReadPipesRejectsBadField(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePipes(&buf, testNetwork().Pipes()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the diameter of the first data row.
	s := buf.String()
	s = strings.Replace(s, "375", "not-a-number", 1)
	_, err := ReadPipes(strings.NewReader(s))
	if err == nil || !strings.Contains(err.Error(), "diameter_mm") {
		t.Fatalf("want diameter parse error, got %v", err)
	}
}

func TestReadFailuresRejectsBadHeaderAndField(t *testing.T) {
	if _, err := ReadFailures(strings.NewReader("nope\n")); err == nil {
		t.Fatal("bad header must error")
	}
	good := "pipe_id,segment,year,day,mode\nP1,x,2000,1,BREAK\n"
	if _, err := ReadFailures(strings.NewReader(good)); err == nil {
		t.Fatal("bad segment must error")
	}
}

func TestSaveLoadDirRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "regionT")
	n := testNetwork()
	if err := SaveDir(n, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Region != "T" || got.ObservedFrom != 1998 || got.ObservedTo != 2009 {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Pipes(), n.Pipes()) {
		t.Fatal("pipes differ after round trip")
	}
	if !reflect.DeepEqual(got.Failures(), n.Failures()) {
		t.Fatal("failures differ after round trip")
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir must error")
	}
}

func TestLoadDirRejectsInvalidNetwork(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bad")
	pipes := []Pipe{{ID: "P1", Class: ReticulationMain, Material: PVC,
		Coating: CoatingNone, DiameterMM: 100, LengthM: 10, LaidYear: 1990, Segments: 1}}
	fails := []Failure{{PipeID: "GHOST", Segment: 0, Year: 2000, Day: 1, Mode: ModeBreak}}
	n := NewNetwork("bad", 1998, 2009, pipes, fails)
	if err := SaveDir(n, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("invalid network must fail LoadDir validation")
	}
}
