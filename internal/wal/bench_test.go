package wal

import (
	"fmt"
	"testing"
)

var benchPayload = []byte(`{"id":"evt-000123","region":"metro","pipe_id":"P004217","segment":3,"year":2009,"day":211,"mode":"BREAK"}`)

func benchAppend(b *testing.B, opts Options) {
	dir := b.TempDir()
	w, err := Open(dir, opts, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end, err := w.Append(benchPayload)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WaitDurable(end); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendAlways(b *testing.B) {
	benchAppend(b, Options{Sync: SyncAlways, MetricsName: "wal.bench.always"})
}

func BenchmarkWALAppendInterval(b *testing.B) {
	benchAppend(b, Options{Sync: SyncInterval, MetricsName: "wal.bench.interval"})
}

func BenchmarkWALAppendNever(b *testing.B) {
	benchAppend(b, Options{Sync: SyncNever, MetricsName: "wal.bench.never"})
}

// BenchmarkWALAppendAlwaysParallel measures group-commit amortization:
// many goroutines appending under SyncAlways should share fsyncs.
func BenchmarkWALAppendAlwaysParallel(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(dir, Options{Sync: SyncAlways, MetricsName: "wal.bench.par"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			end, err := w.Append(benchPayload)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.WaitDurable(end); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(dir, Options{Sync: SyncNever, MetricsName: "wal.bench.replaysrc"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	const records = 10000
	for i := 0; i < records; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf(`{"id":"evt-%06d","pipe_id":"P%06d","year":2009,"day":%d,"mode":"LEAK"}`, i, i%5000, i%366+1))); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	var total int64
	w.mu.Lock()
	total = w.written
	w.mu.Unlock()
	b.SetBytes(total / records * records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		w2, err := Open(dir, Options{Sync: SyncNever, MetricsName: "wal.bench.replay"}, func(p []byte) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d, want %d", n, records)
		}
		w2.Close()
	}
}
