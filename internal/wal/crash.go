package wal

// Deterministic crash-point harness. Labeled points sit on the append,
// rotate and sync paths; at each, one of two kill mechanisms can fire:
//
//   - Cross-process: the PIPEWAL_CRASH environment variable, formatted
//     "<label>" or "<label>:<n>", calls os.Exit(137) on the n-th hit of
//     the label (default first). Exit skips every deferred flush, so the
//     process dies exactly as SIGKILL would — user-space buffers lost,
//     whatever the OS had, kept. The e2e suite uses this to kill
//     pipeserve mid-ingest and assert recovery invariants across a real
//     process boundary.
//
//   - In-process: SetCrashHook installs a callback that returns an
//     Action. Die* actions mark the log dead (every later call fails
//     ErrCrashed, like writing to a dead process) after flushing a
//     controlled amount of the user-space buffer — nothing, half, or all
//     of it — which is how the chaos matrix manufactures clean-loss,
//     torn-frame and durable-but-unacked tails deterministically. The
//     same directory is then re-Opened to play the restarted process.
//
// The decision is label- and count-driven, never clock- or
// randomness-driven, so a chaos run's crash schedule is reproducible.

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Crash-point labels.
const (
	// PointAppendEnter fires at the top of Append, before any bytes of
	// the record exist anywhere.
	PointAppendEnter = "append.enter"
	// PointAppendFramed fires after the record is framed into the
	// user-space buffer, before any durability work.
	PointAppendFramed = "append.framed"
	// PointRotate fires at the start of a segment rotation, before the
	// old segment is sealed.
	PointRotate = "rotate"
	// PointSynced fires after an fsync completes but before the durable
	// watermark moves — the crash-between-fsync-and-ack window.
	PointSynced = "sync.acked"
)

// Action is an in-process crash hook's verdict at one point.
type Action int

const (
	// Continue proceeds normally.
	Continue Action = iota
	// Die drops the whole user-space buffer and kills the log: the
	// strictest SIGKILL model (nothing unflushed survives).
	Die
	// DieFlushHalf flushes half the buffered bytes first, leaving a torn
	// frame on disk — the partially-paged-out crash.
	DieFlushHalf
	// DieFlushAll flushes the full buffer first (but does not fsync):
	// the record may survive even though nobody was acknowledged.
	DieFlushAll
)

// SetCrashHook installs an in-process crash hook on this log. Call
// before the log sees traffic; a nil hook (the default) disables the
// harness. The hook runs under the log's internal locks — it must not
// call back into the WAL.
func (w *WAL) SetCrashHook(h func(label string) Action) { w.crashHook = h }

// envCrash holds the parsed PIPEWAL_CRASH trigger.
var envCrash struct {
	once  sync.Once
	label string
	n     int64
	hits  atomic.Int64
}

// EnvVar is the environment variable naming the cross-process crash
// trigger: "<label>" or "<label>:<n>".
const EnvVar = "PIPEWAL_CRASH"

func envCrashCheck(label string) {
	envCrash.once.Do(func() {
		v := os.Getenv(EnvVar)
		if v == "" {
			return
		}
		envCrash.label, envCrash.n = v, 1
		if l, n, ok := strings.Cut(v, ":"); ok {
			if c, err := strconv.Atoi(n); err == nil && c > 0 {
				envCrash.label, envCrash.n = l, int64(c)
			}
		}
	})
	if envCrash.label != label {
		return
	}
	if envCrash.hits.Add(1) == envCrash.n {
		// Exit without flushing anything: the SIGKILL model.
		os.Exit(137)
	}
}

// pointLocked evaluates one crash point with w.mu held (the append and
// rotate paths), applying the partial-flush semantics of the verdict.
func (w *WAL) pointLocked(label string) error {
	envCrashCheck(label)
	if w.crashHook == nil {
		return nil
	}
	act := w.crashHook(label)
	if act == Continue {
		return nil
	}
	switch act {
	case DieFlushHalf:
		if n := len(w.buf) / 2; n > 0 {
			w.f.Write(w.buf[:n]) // best-effort: the process is "dying"
		}
	case DieFlushAll:
		w.f.Write(w.buf)
	}
	w.buf = w.buf[:0]
	w.dead.Store(true)
	return ErrCrashed
}

// point evaluates a crash point outside w.mu (the sync path, where the
// buffer is already flushed — any Die verdict just kills the log).
func (w *WAL) point(label string) error {
	envCrashCheck(label)
	if w.crashHook == nil {
		return nil
	}
	if w.crashHook(label) == Continue {
		return nil
	}
	w.dead.Store(true)
	return ErrCrashed
}
