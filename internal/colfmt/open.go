package colfmt

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/feature"
)

// Format names for Data.Format.
const (
	FormatColumnar = "columnar"
	FormatCSV      = "csv"
)

// Data is a loaded dataset behind either backend. The columnar path keeps
// the registry in struct-of-arrays form and only materializes a Network on
// demand; the CSV path starts from a Network and builds the columnar view
// lazily. Either way, Source() feeds feature.Builder the same values in
// the same row order, so downstream matrices are bit-identical across
// formats.
type Data struct {
	// Format records which backend the data came from: FormatColumnar or
	// FormatCSV.
	Format string

	col *Dataset
	net *dataset.Network
}

// Open loads the dataset at path, sniffing the format:
//
//   - a regular file is read as a PCOL columnar file;
//   - a directory containing DatasetFile ("dataset.col") loads columnar,
//     even if CSV files sit alongside it;
//   - any other directory loads the pipes/failures/meta CSV trio.
func Open(path string) (*Data, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("colfmt: %w", err)
	}
	if !st.IsDir() {
		d, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		return &Data{Format: FormatColumnar, col: d}, nil
	}
	colPath := filepath.Join(path, DatasetFile)
	if _, err := os.Stat(colPath); err == nil {
		d, err := ReadFile(colPath)
		if err != nil {
			return nil, err
		}
		return &Data{Format: FormatColumnar, col: d}, nil
	}
	net, err := dataset.LoadDir(path)
	if err != nil {
		return nil, err
	}
	return &Data{Format: FormatCSV, net: net}, nil
}

// FromNetworkData wraps an in-memory network as Data (CSV-path semantics).
func FromNetworkData(net *dataset.Network) *Data {
	return &Data{Format: FormatCSV, net: net}
}

// Region returns the region label.
func (d *Data) Region() string {
	if d.col != nil {
		return d.col.Region
	}
	return d.net.Region
}

// ObservedFrom returns the first observed calendar year.
func (d *Data) ObservedFrom() int {
	if d.col != nil {
		return d.col.ObservedFrom
	}
	return d.net.ObservedFrom
}

// ObservedTo returns the last observed calendar year.
func (d *Data) ObservedTo() int {
	if d.col != nil {
		return d.col.ObservedTo
	}
	return d.net.ObservedTo
}

// NumPipes returns the registry size.
func (d *Data) NumPipes() int {
	if d.col != nil {
		return d.col.NumPipes()
	}
	return d.net.NumPipes()
}

// NumFailures returns the failure-log size.
func (d *Data) NumFailures() int {
	if d.col != nil {
		return d.col.NumEvents()
	}
	return len(d.net.Failures())
}

// Source returns the feature.Source view — the fast path that never
// materializes []dataset.Pipe for columnar data.
func (d *Data) Source() feature.Source {
	if d.col != nil {
		return d.col
	}
	return feature.NetworkSource(d.net)
}

// PipeID returns pipe i's ID without materializing the registry.
func (d *Data) PipeID(i int) string {
	if d.col != nil {
		return d.col.Pipes.ID[i]
	}
	return d.net.Pipes()[i].ID
}

// Columnar returns the columnar view, building it from the network on
// first use for CSV-backed data. The result is cached.
func (d *Data) Columnar() (*Dataset, error) {
	if d.col == nil {
		col, err := FromNetwork(d.net)
		if err != nil {
			return nil, err
		}
		d.col = col
	}
	return d.col, nil
}

// Network returns the row-oriented view, materializing and validating it
// from the columns on first use for columnar-backed data. The result is
// cached.
func (d *Data) Network() (*dataset.Network, error) {
	if d.net == nil {
		net, err := d.col.Network()
		if err != nil {
			return nil, err
		}
		d.net = net
	}
	return d.net, nil
}
