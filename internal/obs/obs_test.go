package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("hits")
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if r.Counter("hits") != c {
		t.Fatal("second lookup returned a different handle")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry("t")
	g := r.Gauge("inflight")
	g.Set(2.5)
	g.Add(1.5)
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge after balanced inc/dec = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0001, 50, 1e6, math.Inf(1)} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{1, 1}, {2, 1}, {math.NaN()}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry("t")
	done := r.Span("op.seconds")
	time.Sleep(2 * time.Millisecond)
	done()
	h := r.Histogram("op.seconds", nil)
	if h.Count() != 1 {
		t.Fatalf("span observations = %d, want 1", h.Count())
	}
	if h.Sum() < 0.002 || h.Sum() > 5 {
		t.Fatalf("span duration %v implausible", h.Sum())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry("snap")
	r.Counter("a.b").Add(7)
	r.Gauge("g").Set(1.25)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	r.Histogram("h", []float64{999}).Observe(3) // existing bounds win

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Registry != "snap" || back.Counters["a.b"] != 7 || back.Gauges["g"] != 1.25 {
		t.Fatalf("snapshot round trip: %+v", back)
	}
	hs := back.Histograms["h"]
	if hs.Count != 2 || hs.Sum != 4.5 || hs.Mean != 2.25 {
		t.Fatalf("histogram snapshot: %+v", hs)
	}
	if got := len(hs.Buckets); got != 3 {
		t.Fatalf("bucket count %d, want 3 (incl. +Inf)", got)
	}
	if hs.Buckets[2].LE != "+Inf" || hs.Buckets[2].Count != 1 {
		t.Fatalf("overflow bucket: %+v", hs.Buckets[2])
	}
	if !strings.Contains(buf.String(), `"+Inf"`) {
		t.Fatal("overflow bound not rendered as string")
	}
}

// TestSnapshotSanitizesNonFinite locks the guard that keeps /metrics
// alive when a series goes degenerate: encoding/json refuses NaN and
// ±Inf, so Snapshot must fold them to 0 instead of poisoning the
// whole endpoint.
func TestSnapshotSanitizesNonFinite(t *testing.T) {
	r := NewRegistry("nonfinite")
	r.Gauge("nan").Set(math.NaN())
	r.Gauge("posinf").Set(math.Inf(1))
	r.Gauge("neginf").Set(math.Inf(-1))
	r.Gauge("ok").Set(0.5)
	r.Histogram("h", []float64{1}).Observe(math.Inf(1))

	s := r.Snapshot()
	for _, name := range []string{"nan", "posinf", "neginf"} {
		if got := s.Gauges[name]; got != 0 {
			t.Fatalf("gauge %q = %v, want 0", name, got)
		}
	}
	if s.Gauges["ok"] != 0.5 {
		t.Fatalf("finite gauge disturbed: %v", s.Gauges["ok"])
	}
	if hs := s.Histograms["h"]; hs.Sum != 0 || hs.Mean != 0 {
		t.Fatalf("histogram Sum/Mean not sanitized: %+v", hs)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("snapshot with non-finite inputs must stay encodable: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("snapshot JSON invalid")
	}
}

// TestSnapshotConcurrentWithUpdates exercises Snapshot racing against
// registration and updates; meaningful under -race (make verify).
func TestSnapshotConcurrentWithUpdates(t *testing.T) {
	r := NewRegistry("race")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Counter("c").Inc()
			r.Histogram("h", nil).Observe(float64(i % 3))
			r.Gauge("g").Set(float64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			if s.Counters["c"] < 0 {
				t.Error("negative counter")
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestDefaultRegistryIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return one shared registry")
	}
	done := Span("obs.test.span")
	done()
	if Default().Histogram("obs.test.span", nil).Count() == 0 {
		t.Fatal("package-level Span did not record into Default()")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets)
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry("bench")
	r.Counter("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("x")
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry("bench")
	for i := 0; i < 20; i++ {
		r.Counter("c" + string(rune('a'+i))).Add(int64(i))
		r.Histogram("h"+string(rune('a'+i)), nil).Observe(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := r.Snapshot(); len(s.Counters) != 20 {
			b.Fatal("bad snapshot")
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"A", "a"},
		{"metro", "metro"},
		{"METRO/s01", "metro_s01"},
		{"Region B", "region_b"},
		{"a--b..c", "a_b_c"},   // runs collapse to one separator
		{"--edge--", "edge"},   // leading/trailing separators trim
		{"..", "_"},            // nothing usable
		{"", "_"},
		{"x9", "x9"},
	}
	for _, tc := range cases {
		if got := SanitizeMetricName(tc.in); got != tc.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
