// Package linalg provides the small dense linear-algebra kernel the model
// fitters need: vector arithmetic, dense matrices, and a Cholesky solver for
// the Newton steps of the logistic and Cox regressions.
//
// It is deliberately minimal — no BLAS, no sparse formats — because every
// design matrix in this repository is tall and thin (tens of thousands of
// rows, a few dozen columns).
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics on length mismatch,
// which always indicates a schema bug rather than a data condition.
//
// The loop is 4-way unrolled into a single accumulator: the summation
// order is exactly the sequential left-to-right order, so results are
// bit-identical to a naive loop (and to MatVec, which reuses this body).
// The unroll buys hoisted bounds checks, not a reassociated sum — keeping
// every Dot-based score reproducible regardless of which kernel ran it.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	s := 0.0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// MatVec computes the matrix-vector product of a row-major flat matrix
// against x: dst[i] = dot(flat[i*stride:(i+1)*stride], x). It is the
// scoring kernel of the train/serve hot path — one contiguous streaming
// pass over the backing array with no per-row slice-header loads. Each
// row's sum uses the same sequential order as Dot, so flat-path and
// row-path scores agree bit-for-bit. It panics when len(x) != stride or
// len(flat) != len(dst)*stride.
func MatVec(dst, flat []float64, stride int, x []float64) {
	if len(x) != stride {
		panic(fmt.Sprintf("linalg: MatVec stride %d vs vector length %d", stride, len(x)))
	}
	if len(flat) != len(dst)*stride {
		panic(fmt.Sprintf("linalg: MatVec flat length %d != %d rows x stride %d", len(flat), len(dst), stride))
	}
	for i := range dst {
		dst[i] = Dot(flat[i*stride:(i+1)*stride], x)
	}
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow by
// scaling with the largest magnitude component.
func Norm2(x []float64) float64 {
	maxAbs := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// NormInf returns the maximum absolute component of x (0 for empty x).
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	return append([]float64(nil), x...)
}

// Zeros returns a zeroed vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Add returns a+b as a new vector. It panics on length mismatch.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a new vector. It panics on length mismatch.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
