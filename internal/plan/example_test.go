package plan_test

import (
	"fmt"

	"repro/internal/plan"
)

func ExampleGreedy() {
	cands := []plan.Candidate{
		{ID: "old-main", FailProb: 0.30, LengthM: 400},
		{ID: "new-main", FailProb: 0.01, LengthM: 400},
		{ID: "trunk", FailProb: 0.20, LengthM: 3000},
	}
	cm := plan.CostModel{InspectionPerKM: 8000, FailureCost: 150000}
	p, err := plan.Greedy(cands, cm, plan.Budget{MaxLengthM: 500})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range p.Selected {
		fmt.Println(c.ID)
	}
	fmt.Printf("expected net benefit: $%.0f\n", p.ExpectedNet)
	// Output:
	// old-main
	// expected net benefit: $41800
}
