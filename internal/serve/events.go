package serve

// Streaming ingest: POST /api/events accepts live failure reports and
// registry renewals, makes them durable through a per-shard write-ahead
// log (internal/wal) before acknowledging, and folds them into rolling
// per-shard overlays that the rebuild scheduler retrains from.
//
// Durability contract: an event is acknowledged (counted in "accepted")
// only after its WAL frame is fsynced under the configured policy. A
// crash between fsync and acknowledgment leaves the event on disk with
// the client unaware — the client retries, and the event-ID dedup set
// (rebuilt from the log on every boot) absorbs the duplicate, so every
// acknowledged event is applied exactly once across any crash schedule.
//
// Determinism: the training network is rebuilt via dataset.ExtendLive,
// whose output depends only on the *set* of applied events (failures are
// stably sorted by (Year, Day, PipeID); renewals take the max year per
// pipe) — so a crash-recovered replay retrains to a bit-identical
// snapshot ETag as a no-crash run over the same acknowledged events.
//
// Drift: each shard tracks a rolling temporal window (window_days wide,
// anchored at the newest live event) and exports gauges comparing the
// default model's train-time AUC with its AUC against the live window's
// labels — the operator signal that the serving model has gone stale.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/wal"
)

// maxEventBody bounds one /api/events request body.
const maxEventBody = 4 << 20

// defaultWindowDays is the rolling drift window when the config leaves
// WindowDays zero: one calendar year, matching the paper's test-year
// granularity.
const defaultWindowDays = 366

// EventLogConfig wires streaming ingest into a Server. Dir is the WAL
// root (per-region subdirectories when multiple shards exist, mirroring
// the state-dir layout). MaxBacklogBytes bounds the appended-but-unsynced
// backlog before ingest answers 429 (0 = 16 MiB). WindowDays sets the
// rolling drift window (0 = one year).
type EventLogConfig struct {
	Dir             string
	Sync            wal.SyncPolicy
	SyncInterval    time.Duration
	SegmentBytes    int64
	MaxBacklogBytes int64
	WindowDays      int
}

// ingestState is one shard's streaming-ingest state. The WAL is
// internally synchronized; mu orders append→durable→apply sequences so
// the in-memory overlays always reflect a prefix of the log.
type ingestState struct {
	mu  sync.Mutex
	wal *wal.WAL

	// seen is the event-ID dedup set, rebuilt from the log on boot.
	seen map[string]struct{}
	// failures/renewals are the live overlays ExtendLive folds into the
	// training network. Append-only under mu.
	failures []dataset.Failure
	renewals []pipefail.Renewal

	// seq counts applied events; snapshots record the seq they trained
	// at, and the scheduler treats seq advancement as staleness.
	seq atomic.Int64

	// maxBacklog is the 429 admission bound on wal.BacklogBytes().
	maxBacklog int64

	// drainPending collapses backpressure-triggered background Syncs to
	// at most one in flight.
	drainPending atomic.Bool

	// defModel names the model the drift gauges evaluate (the server's
	// default model), resolved once at SetEventLog time.
	defModel string

	// windowDays and maxDayIdx define the rolling drift window:
	// [maxDayIdx-windowDays, maxDayIdx] in year*366+day space.
	windowDays int
	maxDayIdx  int

	// livePipe memoizes the extended pipeline built at livePipeSeq, so a
	// scheduler pass retraining several models per shard extends the
	// network once, not per model.
	pipeMu      sync.Mutex
	livePipe    *pipefail.Pipeline
	livePipeSeq int64

	// Drift gauges (serve.shard.<region>.drift.*, .window_events,
	// .live_events).
	gLiveAUC, gTrainAUC, gWindowEvents, gLiveEvents *obs.Gauge
}

// SetEventLog opens (and replays) the write-ahead event logs and enables
// POST /api/events. Call before SetStateDir — restored models must rank
// against the live (event-extended) pipeline to reproduce the ETags a
// retrain would — and before serving traffic. Replayed events rebuild
// the dedup set and overlays; records rejected by validation (a schema
// drift since they were logged) are counted and skipped, never fatal.
func (s *Server) SetEventLog(cfg EventLogConfig) error {
	if cfg.Dir == "" {
		return nil
	}
	if cfg.MaxBacklogBytes <= 0 {
		cfg.MaxBacklogBytes = 16 << 20
	}
	if cfg.WindowDays <= 0 {
		cfg.WindowDays = defaultWindowDays
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("serve: event log dir: %w", err)
	}
	reg := obs.Default()
	for _, sh := range s.shards {
		dir := cfg.Dir
		walName := "serve.wal"
		if len(s.shards) > 1 {
			token := obs.SanitizeMetricName(sh.region)
			dir = filepath.Join(cfg.Dir, token)
			walName = "serve.wal." + token
		}
		token := obs.SanitizeMetricName(sh.region)
		ing := &ingestState{
			seen:          make(map[string]struct{}),
			maxBacklog:    cfg.MaxBacklogBytes,
			windowDays:    cfg.WindowDays,
			defModel:      string(s.defaultModel),
			gLiveAUC:      reg.Gauge("serve.shard." + token + ".drift.live_auc"),
			gTrainAUC:     reg.Gauge("serve.shard." + token + ".drift.train_auc"),
			gWindowEvents: reg.Gauge("serve.shard." + token + ".window_events"),
			gLiveEvents:   reg.Gauge("serve.shard." + token + ".live_events"),
		}
		// Wire the shard before replay: checkEvent's year-horizon ratchet
		// reads sh.ingest, so replayed events must see the same bound
		// growth they produced when accepted live.
		sh.ingest = ing
		w, err := wal.Open(dir, wal.Options{
			SegmentBytes: cfg.SegmentBytes,
			Sync:         cfg.Sync,
			Interval:     cfg.SyncInterval,
			MetricsName:  walName,
		}, func(payload []byte) error {
			var ev walEvent
			if err := json.Unmarshal(payload, &ev); err != nil {
				s.metrics.eventsReplayRejected.Inc()
				s.log.Printf("serve: event log %s: skipping undecodable record: %v", sh.region, err)
				return nil
			}
			if err := sh.checkEvent(&ev); err != nil {
				s.metrics.eventsReplayRejected.Inc()
				s.log.Printf("serve: event log %s: skipping invalid record %q: %v", sh.region, ev.ID, err)
				return nil
			}
			if _, dup := ing.seen[ev.ID]; dup {
				return nil
			}
			ing.applyLocked(&ev)
			return nil
		})
		if err != nil {
			sh.ingest = nil // never leave a shard pointing at a nil WAL
			return err
		}
		ing.wal = w
		ing.updateDrift(sh)
		if n := ing.seq.Load(); n > 0 {
			s.log.Printf("serve: region %s: replayed %d live events from %s", sh.region, n, dir)
		}
	}
	s.eventsOn = true
	return nil
}

// closeEventLogs seals every shard's WAL; called from BeginShutdown
// after draining flips, so no new appends race the close (a straggler
// gets ErrClosed → 503, never a lost ack).
func (s *Server) closeEventLogs() {
	for _, sh := range s.shards {
		if sh.ingest != nil {
			if err := sh.ingest.wal.Close(); err != nil {
				s.log.Printf("serve: close event log %s: %v", sh.region, err)
			}
		}
	}
}

// walEvent is one ingested event, also the WAL record schema (canonical
// JSON of the normalized struct). Type is "failure" (default) or
// "renewal". ID is the client-chosen idempotency key.
type walEvent struct {
	ID      string `json:"id"`
	Region  string `json:"region,omitempty"`
	Type    string `json:"type,omitempty"`
	PipeID  string `json:"pipe_id"`
	Segment int    `json:"segment,omitempty"`
	Year    int    `json:"year"`
	Day     int    `json:"day,omitempty"`
	Mode    string `json:"mode,omitempty"`
}

// normalize fills schema defaults in place so the logged record is
// canonical: replay and live application see identical values.
func (ev *walEvent) normalize() {
	if ev.Type == "" {
		ev.Type = "failure"
	}
	if ev.Type == "failure" {
		if ev.Day == 0 {
			ev.Day = 1
		}
		if ev.Mode == "" {
			ev.Mode = string(dataset.ModeBreak)
		}
	}
}

// eventYearSlack is how far past the newest evidence a reported event
// year may reach. Years must be bounded above: dataset.ExtendLive moves
// ObservedTo to the newest failure year and feature.Builder.TrainSet
// allocates rows for pipes × every year in the window, so one absurd
// year (a typo like 20266 on an unauthenticated endpoint) would make
// every subsequent retrain allocate thousands of years of rows per pipe
// — and the poison record, durably logged, would replay on every boot.
// The bound ratchets with applied events, so a live deployment keeps
// reporting into the future one year at a time.
const eventYearSlack = 1

// maxEventYear is the inclusive upper bound on a reported event year:
// the newest year the shard has evidence for — observation window end,
// applied live events, or the wall clock — plus eventYearSlack. It only
// ever grows, so an event accepted live is also accepted on replay.
func (sh *shard) maxEventYear() int {
	max := sh.net.ObservedTo
	if y := time.Now().Year(); y > max {
		max = y
	}
	if ing := sh.ingest; ing != nil {
		ing.mu.Lock()
		if y := (ing.maxDayIdx - 1) / 366; y > max {
			max = y
		}
		ing.mu.Unlock()
	}
	return max + eventYearSlack
}

// checkEvent validates one normalized event against the shard's
// registry; the returned error is client-visible (400).
func (sh *shard) checkEvent(ev *walEvent) error {
	ev.normalize()
	if ev.ID == "" {
		return errors.New("missing event id")
	}
	if len(ev.ID) > 128 {
		return fmt.Errorf("event id longer than 128 bytes")
	}
	p, ok := sh.net.PipeByID(ev.PipeID)
	if !ok {
		return fmt.Errorf("unknown pipe %q", ev.PipeID)
	}
	switch ev.Type {
	case "failure":
		if ev.Year < sh.net.ObservedFrom {
			return fmt.Errorf("failure year %d precedes observation window start %d", ev.Year, sh.net.ObservedFrom)
		}
		if ev.Year < p.LaidYear {
			return fmt.Errorf("failure year %d precedes pipe %s laid year %d", ev.Year, p.ID, p.LaidYear)
		}
		if max := sh.maxEventYear(); ev.Year > max {
			return fmt.Errorf("failure year %d beyond acceptance horizon %d", ev.Year, max)
		}
		if ev.Day < 1 || ev.Day > 366 {
			return fmt.Errorf("day %d out of range [1,366]", ev.Day)
		}
		if ev.Segment < 0 || ev.Segment >= p.Segments {
			return fmt.Errorf("segment %d out of range [0,%d) for pipe %s", ev.Segment, p.Segments, p.ID)
		}
		switch dataset.FailureMode(ev.Mode) {
		case dataset.ModeBreak, dataset.ModeLeak, dataset.ModeBlockage:
		default:
			return fmt.Errorf("unknown failure mode %q", ev.Mode)
		}
	case "renewal":
		if ev.Year <= 0 {
			return fmt.Errorf("renewal needs a positive year, got %d", ev.Year)
		}
		if max := sh.maxEventYear(); ev.Year > max {
			return fmt.Errorf("renewal year %d beyond acceptance horizon %d", ev.Year, max)
		}
	default:
		return fmt.Errorf("unknown event type %q", ev.Type)
	}
	return nil
}

// applyLocked folds one validated, deduplicated event into the overlays.
// Callers hold ing.mu (or have exclusive access during replay).
func (ing *ingestState) applyLocked(ev *walEvent) {
	ing.seen[ev.ID] = struct{}{}
	switch ev.Type {
	case "failure":
		ing.failures = append(ing.failures, dataset.Failure{
			PipeID:  ev.PipeID,
			Segment: ev.Segment,
			Year:    ev.Year,
			Day:     ev.Day,
			Mode:    dataset.FailureMode(ev.Mode),
		})
		if idx := ev.Year*366 + ev.Day; idx > ing.maxDayIdx {
			ing.maxDayIdx = idx
		}
	case "renewal":
		ing.renewals = append(ing.renewals, pipefail.Renewal{PipeID: ev.PipeID, Year: ev.Year})
	}
	ing.seq.Add(1)
}

// eventSeqNow returns how many live events this shard has applied; 0
// when ingest is not wired. The scheduler compares it against each
// snapshot's eventSeq to decide staleness.
func (sh *shard) eventSeqNow() int64 {
	if sh.ingest == nil {
		return 0
	}
	return sh.ingest.seq.Load()
}

// trainPipeline returns the pipeline training should run against — the
// base pipeline when no live events exist, otherwise one rebuilt over
// the event-extended network — plus the event seq it reflects. The
// extended pipeline is memoized per seq so one scheduler pass extends
// the network once, not once per model.
func (sh *shard) trainPipeline() (*pipefail.Pipeline, int64, error) {
	ing := sh.ingest
	if ing == nil {
		return sh.pipe, 0, nil
	}
	seq := ing.seq.Load()
	if seq == 0 {
		return sh.pipe, 0, nil
	}
	ing.pipeMu.Lock()
	defer ing.pipeMu.Unlock()
	// Re-read under the build lock: this pins the (pipeline, seq) pair.
	ing.mu.Lock()
	seq = ing.seq.Load()
	failures := ing.failures[:len(ing.failures):len(ing.failures)]
	renewals := ing.renewals[:len(ing.renewals):len(ing.renewals)]
	ing.mu.Unlock()
	if ing.livePipe != nil && ing.livePipeSeq == seq {
		return ing.livePipe, seq, nil
	}
	net := sh.net.ExtendLive(failures, renewals)
	p, err := pipefail.NewPipeline(net, sh.opts...)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: region %q: extend pipeline at seq %d: %w", sh.region, seq, err)
	}
	ing.livePipe, ing.livePipeSeq = p, seq
	return p, seq, nil
}

// updateDrift refreshes the shard's drift gauges: live/window event
// counts always, and the live-vs-train AUC pair when the default model
// is published and the live window is non-degenerate (at least one
// failed and one intact pipe — AUC is undefined otherwise, and a NaN
// gauge would be worse than a stale one).
func (ing *ingestState) updateDrift(sh *shard) {
	ing.mu.Lock()
	inWindow := make(map[string]struct{})
	cutoff := ing.maxDayIdx - ing.windowDays
	var windowCount int
	for i := range ing.failures {
		f := &ing.failures[i]
		if f.Year*366+f.Day > cutoff {
			inWindow[f.PipeID] = struct{}{}
			windowCount++
		}
	}
	total := ing.seq.Load()
	ing.mu.Unlock()

	ing.gLiveEvents.Set(float64(total))
	ing.gWindowEvents.Set(float64(windowCount))

	tm, ok := (*sh.models.Load())[ing.defModel]
	if !ok || windowCount == 0 {
		return
	}
	labels := make([]bool, len(tm.ranking.PipeIDs))
	pos := 0
	for i, id := range tm.ranking.PipeIDs {
		if _, hit := inWindow[id]; hit {
			labels[i] = true
			pos++
		}
	}
	if pos == 0 || pos == len(labels) {
		return
	}
	ing.gLiveAUC.Set(eval.AUC(tm.ranking.Scores, labels))
	ing.gTrainAUC.Set(tm.ranking.AUC())
}

// eventsResponse is the POST /api/events success body.
type eventsResponse struct {
	Accepted   int   `json:"accepted"`
	Duplicates int   `json:"duplicates"`
	LiveEvents int64 `json:"live_events"`
}

// handleEvents ingests one event (JSON object) or a batch (NDJSON, one
// event per line, Content-Type application/x-ndjson). All events are
// validated before anything is logged — a 400 applies nothing. Events
// route to the shard named by their "region" field (default shard when
// absent). 429 + Retry-After signals WAL backpressure; 503 means the
// log is unconfigured, closed, or failed to make the batch durable.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !s.eventsOn {
		s.writeErr(w, http.StatusServiceUnavailable, "event log not configured (start with -wal-dir)")
		return
	}
	events, err := decodeEvents(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(events) == 0 {
		s.writeErr(w, http.StatusBadRequest, "no events in request")
		return
	}
	// Resolve and validate everything before logging anything: a batch
	// is all-or-nothing at the validation stage.
	byShard := make(map[*shard][]*walEvent)
	order := make([]*shard, 0, 1)
	for i := range events {
		ev := &events[i]
		sh := s.def
		if ev.Region != "" {
			var ok bool
			if sh, ok = s.byRegion[ev.Region]; !ok {
				s.metrics.eventsRejected.Inc()
				s.writeErr(w, http.StatusBadRequest, "event %d: unknown region %q", i, ev.Region)
				return
			}
		}
		if err := sh.checkEvent(ev); err != nil {
			s.metrics.eventsRejected.Inc()
			s.writeErr(w, http.StatusBadRequest, "event %d (%s): %v", i, ev.ID, err)
			return
		}
		if len(byShard[sh]) == 0 {
			order = append(order, sh)
		}
		byShard[sh] = append(byShard[sh], ev)
	}
	// Admission control before any append: a backlogged WAL refuses the
	// whole batch so the client backs off instead of queueing unsynced
	// bytes without bound.
	for _, sh := range order {
		if b := sh.ingest.wal.BacklogBytes(); b > sh.ingest.maxBacklog {
			// Kick one background drain before refusing: under
			// -wal-sync=never the backlog otherwise only shrinks at
			// segment rotation, and rotation needs appends — which
			// backpressure is now refusing. Without the drain, a segment
			// budget at or above the backlog budget would wedge ingest in
			// permanent 429 until restart.
			ing := sh.ingest
			if ing.drainPending.CompareAndSwap(false, true) {
				go func() {
					defer ing.drainPending.Store(false)
					_ = ing.wal.Sync()
				}()
			}
			s.metrics.eventsBackpressure.Inc()
			w.Header()["Retry-After"] = retryAfter1s
			s.writeErr(w, http.StatusTooManyRequests,
				"event log backlog %d bytes over budget %d; retry later", b, ing.maxBacklog)
			return
		}
	}

	var resp eventsResponse
	for _, sh := range order {
		accepted, dups, err := sh.ingestBatch(byShard[sh])
		if err != nil {
			s.metrics.eventsFailed.Inc()
			w.Header()["Retry-After"] = retryAfter1s
			s.writeErr(w, http.StatusServiceUnavailable, "event log append: %v", err)
			return
		}
		s.metrics.eventsAccepted.Add(int64(accepted))
		s.metrics.eventsDuplicates.Add(int64(dups))
		resp.Accepted += accepted
		resp.Duplicates += dups
		sh.ingest.updateDrift(sh)
		resp.LiveEvents = sh.eventSeqNow()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ingestBatch logs and applies one shard's slice of a batch: dedup →
// append frames → wait durable → apply. Nothing is applied (and nothing
// acknowledged) unless the whole slice is durable; a failure after
// append leaves unacknowledged frames in the log, which replay will
// apply and the client's retry will dedup — exactly-once either way.
func (sh *shard) ingestBatch(events []*walEvent) (accepted, dups int, err error) {
	ing := sh.ingest
	ing.mu.Lock()
	defer ing.mu.Unlock()
	var fresh []*walEvent
	var end int64
	// seen only grows at apply time, so a batch-local set catches an ID
	// repeated within this request (otherwise it would log and apply
	// twice).
	inBatch := make(map[string]struct{}, len(events))
	for _, ev := range events {
		if _, dup := ing.seen[ev.ID]; dup {
			dups++
			continue
		}
		if _, dup := inBatch[ev.ID]; dup {
			dups++
			continue
		}
		inBatch[ev.ID] = struct{}{}
		payload, merr := json.Marshal(ev)
		if merr != nil {
			return 0, 0, merr
		}
		if end, err = ing.wal.Append(payload); err != nil {
			return 0, 0, err
		}
		fresh = append(fresh, ev)
	}
	if len(fresh) == 0 {
		return 0, dups, nil
	}
	if err := ing.wal.WaitDurable(end); err != nil {
		return 0, 0, err
	}
	for _, ev := range fresh {
		ing.applyLocked(ev)
	}
	return len(fresh), dups, nil
}

// decodeEvents parses the request body: NDJSON batch when the declared
// Content-Type is application/x-ndjson, a single JSON object otherwise.
func decodeEvents(r *http.Request) ([]walEvent, error) {
	body := http.MaxBytesReader(nil, r.Body, maxEventBody)
	defer body.Close()
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if strings.TrimSpace(ct) == "application/x-ndjson" {
		var events []walEvent
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 64<<10), maxEventBody)
		line := 0
		for sc.Scan() {
			line++
			text := bytes.TrimSpace(sc.Bytes())
			if len(text) == 0 {
				continue
			}
			// Same strict schema as the single-object path: a misspelled
			// field must be a 400, not a silently ignored key that routes
			// the event to default values.
			var ev walEvent
			dec := json.NewDecoder(bytes.NewReader(text))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&ev); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			events = append(events, ev)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("reading body: %v", err)
		}
		return events, nil
	}
	var ev walEvent
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		return nil, fmt.Errorf("decoding event: %v", err)
	}
	return []walEvent{ev}, nil
}
