package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensation, which matters when the
// evaluation harness accumulates millions of small detection increments.
func Sum(xs []float64) float64 {
	s, c := 0.0, 0.0
	for _, x := range xs {
		y := x - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s
}

// Variance returns the unbiased sample variance (n-1 denominator).
// It returns 0 when fewer than two observations are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the spreadsheet and NumPy
// default). It panics on an empty slice or a q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary holds the five-number summary plus mean and standard deviation of
// a sample; it is what the dataset-statistics tables print.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Q25:    Quantile(xs, 0.25),
		Median: Median(xs),
		Q75:    Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}

// String renders the summary as a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g q25=%.4g med=%.4g q75=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Q25, s.Median, s.Q75, s.Max)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either input is constant or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Ranks returns the fractional ranks (1-based, ties averaged) of xs.
// This is the rank transform used by the AUC computation and by Spearman.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation between xs and ys.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(Ranks(xs), Ranks(ys))
}
