package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/feature"
	"repro/internal/stats"
)

// SignificanceResult is one cell of the significance table: the proposed
// method against one baseline in one region.
type SignificanceResult struct {
	Region   string
	Proposed string
	Baseline string
	// AUCTest compares per-test-year full AUCs; Det1Test compares
	// per-test-year detection rates at 1 %.
	AUCTest  stats.TTestResult
	Det1Test stats.TTestResult
}

// T4Significance runs rolling-origin evaluation (one paired observation per
// held-out year) and one-sided paired t-tests of the proposed method
// against every other configured model, mirroring the paper's significance
// table. firstTest is the earliest held-out year; the default (0) leaves
// five observations at the end of the window.
func T4Significance(opts Options, firstTest int) ([]SignificanceResult, error) {
	opts = opts.withDefaults()
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	proposed := opts.Models[0]
	var out []SignificanceResult
	for _, name := range opts.Regions {
		net, _, err := GenerateRegion(name, opts)
		if err != nil {
			return nil, err
		}
		ft := firstTest
		if ft == 0 {
			ft = net.ObservedTo - 4
		}
		splits, err := dataset.RollingSplits(net, ft)
		if err != nil {
			return nil, err
		}
		// aucs[model][splitIdx], det1s[model][splitIdx]
		aucs := make(map[string][]float64)
		det1s := make(map[string][]float64)
		for _, split := range splits {
			evals, err := EvaluateSplit(net, split, reg, opts.Models, feature.Groups{})
			if err != nil {
				return nil, err
			}
			for _, e := range evals {
				aucs[e.Model] = append(aucs[e.Model], e.AUC)
				det1s[e.Model] = append(det1s[e.Model], e.Det1)
			}
		}
		for _, base := range opts.Models[1:] {
			at, err := stats.PairedTTest(aucs[proposed], aucs[base], stats.Greater, 0.05)
			if err != nil {
				return nil, fmt.Errorf("experiments: t-test %s vs %s: %w", proposed, base, err)
			}
			dt, err := stats.PairedTTest(det1s[proposed], det1s[base], stats.Greater, 0.05)
			if err != nil {
				return nil, fmt.Errorf("experiments: t-test %s vs %s: %w", proposed, base, err)
			}
			out = append(out, SignificanceResult{
				Region: name, Proposed: proposed, Baseline: base,
				AUCTest: at, Det1Test: dt,
			})
		}
	}
	return out, nil
}

// T4Table renders significance results in the paper's "t (<0.05)" style.
func T4Table(results []SignificanceResult) *eval.Table {
	tb := eval.NewTable(
		"T4: one-sided paired t-tests, proposed vs baseline (statistic, significance)",
		"region", "baseline", "AUC t-test", "det@1% t-test")
	for _, r := range results {
		tb.AddRow(r.Region, r.Baseline, r.AUCTest.String(), r.Det1Test.String())
	}
	return tb
}
