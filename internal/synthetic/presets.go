package synthetic

import (
	"fmt"

	"repro/internal/dataset"
)

// MaterialShare is one entry of a vintage-conditional material mix.
type MaterialShare struct {
	Material dataset.Material
	Weight   float64
}

// Era is a commissioning era with its own material mix, reflecting how
// network composition changed over the twentieth century (cast iron →
// asbestos cement / CICL → ductile iron and plastics).
type Era struct {
	// FromYear is the first laid year of the era (inclusive).
	FromYear int
	// Mix is the material distribution for pipes laid in this era.
	Mix []MaterialShare
}

// Config fully specifies a synthetic region.
type Config struct {
	// Region names the generated network.
	Region string
	// Seed drives all randomness; the same Config generates the same data.
	Seed int64
	// NumPipes is the registry size.
	NumPipes int
	// CWMFraction is the fraction of pipes that are critical mains
	// (diameter >= 300 mm).
	CWMFraction float64
	// LaidFrom and LaidTo bound commissioning years.
	LaidFrom, LaidTo int
	// LaidSkew in (0, inf) tilts laid years: 1 = uniform; > 1 concentrates
	// pipes in earlier years (older networks).
	LaidSkew float64
	// ObservedFrom and ObservedTo bound the failure observation window.
	ObservedFrom, ObservedTo int
	// AreaKM2 is the square region side used for the spatial layout.
	AreaKM2 float64
	// SoilZones is the number of soil-zone cells per axis; soil factors are
	// constant within a cell, giving the spatial coherence real soil maps
	// have.
	SoilZones int
	// MeanTrafficDistM is the mean distance to the closest intersection.
	MeanTrafficDistM float64
	// SegmentLengthM is the nominal segment length used to derive per-pipe
	// segment counts.
	SegmentLengthM float64
	// Eras is the vintage-conditional material mix, sorted by FromYear.
	Eras []Era
	// Hazard is the ground-truth failure model.
	Hazard HazardParams
	// MissProb is the probability that a real failure never makes it into
	// the work-order system (recording noise).
	MissProb float64
	// TargetFailures, when positive, makes Generate rescale the hazard's
	// GlobalRate so the expected number of recorded failures over the whole
	// observation window matches this target. The presets use it to land on
	// the published failure counts. When scaling a Config down with Scaled,
	// the target is scaled with it.
	TargetFailures int
	// Districts, when positive, lays the network out hierarchically: pipes
	// are assigned to districts in contiguous registry blocks, IDs gain a
	// district component, and each district's pipes cluster in their own
	// spatial cell. 0 keeps the flat single-region layout (and the exact
	// RNG draw sequence) of the metropolitan presets.
	Districts int
	// ClimateZones, when positive, overlays a coarse climate grid on the
	// soil-zone grid so soil factors correlate across whole zones instead
	// of varying cell-by-cell — the structure nation-scale networks have.
	// 0 keeps the flat independent soil cells of the metropolitan presets.
	ClimateZones int
}

// Validate checks the configuration for obvious inconsistencies.
func (c *Config) Validate() error {
	switch {
	case c.NumPipes <= 0:
		return fmt.Errorf("synthetic: NumPipes %d must be positive", c.NumPipes)
	case c.CWMFraction < 0 || c.CWMFraction > 1:
		return fmt.Errorf("synthetic: CWMFraction %v out of [0,1]", c.CWMFraction)
	case c.LaidFrom > c.LaidTo:
		return fmt.Errorf("synthetic: laid window [%d,%d] inverted", c.LaidFrom, c.LaidTo)
	case c.ObservedFrom > c.ObservedTo:
		return fmt.Errorf("synthetic: observation window [%d,%d] inverted", c.ObservedFrom, c.ObservedTo)
	case c.LaidTo > c.ObservedTo:
		return fmt.Errorf("synthetic: laid window ends %d after observation end %d", c.LaidTo, c.ObservedTo)
	case c.AreaKM2 <= 0:
		return fmt.Errorf("synthetic: AreaKM2 %v must be positive", c.AreaKM2)
	case c.SoilZones <= 0:
		return fmt.Errorf("synthetic: SoilZones %d must be positive", c.SoilZones)
	case c.SegmentLengthM <= 0:
		return fmt.Errorf("synthetic: SegmentLengthM %v must be positive", c.SegmentLengthM)
	case len(c.Eras) == 0:
		return fmt.Errorf("synthetic: no eras configured")
	case c.MissProb < 0 || c.MissProb >= 1:
		return fmt.Errorf("synthetic: MissProb %v out of [0,1)", c.MissProb)
	case c.LaidSkew <= 0:
		return fmt.Errorf("synthetic: LaidSkew %v must be positive", c.LaidSkew)
	case c.Districts < 0:
		return fmt.Errorf("synthetic: Districts %d must be non-negative", c.Districts)
	case c.ClimateZones < 0:
		return fmt.Errorf("synthetic: ClimateZones %d must be non-negative", c.ClimateZones)
	}
	for i := 1; i < len(c.Eras); i++ {
		if c.Eras[i].FromYear <= c.Eras[i-1].FromYear {
			return fmt.Errorf("synthetic: eras not strictly ordered at %d", i)
		}
	}
	return nil
}

func defaultEras() []Era {
	return []Era{
		{FromYear: 0, Mix: []MaterialShare{
			{dataset.CI, 0.70}, {dataset.CICL, 0.25}, {dataset.STEEL, 0.05}}},
		{FromYear: 1940, Mix: []MaterialShare{
			{dataset.CICL, 0.55}, {dataset.CI, 0.15}, {dataset.AC, 0.25}, {dataset.STEEL, 0.05}}},
		{FromYear: 1965, Mix: []MaterialShare{
			{dataset.CICL, 0.40}, {dataset.AC, 0.30}, {dataset.DICL, 0.20}, {dataset.STEEL, 0.10}}},
		{FromYear: 1980, Mix: []MaterialShare{
			{dataset.DICL, 0.40}, {dataset.PVC, 0.35}, {dataset.CICL, 0.15}, {dataset.HDPE, 0.10}}},
	}
}

// RegionA returns the preset for a populous suburban region: the largest
// network, moderately old, mid population density. Pipe and failure counts
// are calibrated to land near the published summary of such a region
// (≈15k pipes, ≈4k failures over a 12-year window, ≈25 % critical mains).
func RegionA(seed int64) Config {
	return Config{
		Region:           "A",
		Seed:             seed,
		NumPipes:         15189,
		CWMFraction:      0.25,
		LaidFrom:         1930,
		LaidTo:           1997,
		LaidSkew:         1.6,
		ObservedFrom:     1998,
		ObservedTo:       2009,
		AreaKM2:          334, // 210k people at 629/km2
		SoilZones:        12,
		MeanTrafficDistM: 180,
		SegmentLengthM:   110,
		Eras:             defaultEras(),
		Hazard:           DefaultHazard(),
		MissProb:         0.03,
		TargetFailures:   4093,
	}
}

// RegionB returns the preset for a dense inner-city region: the oldest and
// most compact network (≈12k pipes, ≈3.7k failures, ≈21 % critical mains).
func RegionB(seed int64) Config {
	h := DefaultHazard()
	// Dense inner city: more traffic loading, slightly harsher soils.
	h.TrafficBoost = 0.8
	h.GlobalRate = 0.0125
	return Config{
		Region:           "B",
		Seed:             seed,
		NumPipes:         11836,
		CWMFraction:      0.21,
		LaidFrom:         1888,
		LaidTo:           1997,
		LaidSkew:         2.0,
		ObservedFrom:     1998,
		ObservedTo:       2009,
		AreaKM2:          77, // 182k people at 2374/km2
		SoilZones:        8,
		MeanTrafficDistM: 90,
		SegmentLengthM:   95,
		Eras:             defaultEras(),
		Hazard:           h,
		MissProb:         0.03,
		TargetFailures:   3694,
	}
}

// RegionC returns the preset for a sprawling low-density region: the
// largest area, a younger network with long reticulation runs (≈18k pipes,
// ≈4.4k failures, ≈28 % critical mains).
func RegionC(seed int64) Config {
	h := DefaultHazard()
	h.TrafficBoost = 0.45
	h.GlobalRate = 0.0095
	return Config{
		Region:           "C",
		Seed:             seed,
		NumPipes:         18001,
		CWMFraction:      0.28,
		LaidFrom:         1913,
		LaidTo:           1997,
		LaidSkew:         1.2,
		ObservedFrom:     1998,
		ObservedTo:       2009,
		AreaKM2:          683, // 205k people at 300/km2
		SoilZones:        16,
		MeanTrafficDistM: 320,
		SegmentLengthM:   130,
		Eras:             defaultEras(),
		Hazard:           h,
		MissProb:         0.03,
		TargetFailures:   4421,
	}
}

// Preset returns the named preset: the paper's metropolitan regions ("A",
// "B" or "C") or the nation-scale stress presets ("metro", "nation").
func Preset(name string, seed int64) (Config, error) {
	switch name {
	case "A":
		return RegionA(seed), nil
	case "B":
		return RegionB(seed), nil
	case "C":
		return RegionC(seed), nil
	case "metro":
		return Metro(seed), nil
	case "nation":
		return Nation(seed), nil
	default:
		return Config{}, fmt.Errorf("synthetic: unknown region preset %q (want A, B, C, metro or nation)", name)
	}
}

// Scaled returns a copy of the config with the pipe count scaled by f
// (0 < f <= 1), for fast tests and examples that do not need full-size
// regions. Failure statistics scale approximately linearly.
func (c Config) Scaled(f float64) (Config, error) {
	if f <= 0 || f > 1 {
		return Config{}, fmt.Errorf("synthetic: scale factor %v out of (0,1]", f)
	}
	out := c
	out.NumPipes = int(float64(c.NumPipes) * f)
	if out.NumPipes < 1 {
		out.NumPipes = 1
	}
	out.TargetFailures = int(float64(c.TargetFailures) * f)
	return out, nil
}
