package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/feature"
	"repro/internal/stats"
	"repro/internal/synthetic"
)

// RenewalPolicy selects which pipes a budget replaces.
type RenewalPolicy string

const (
	// PolicyNone replaces nothing (the do-nothing baseline).
	PolicyNone RenewalPolicy = "none"
	// PolicyModel replaces the model's top-ranked pipes.
	PolicyModel RenewalPolicy = "model"
	// PolicyOldest replaces the oldest pipes.
	PolicyOldest RenewalPolicy = "oldest"
	// PolicyRandom replaces uniformly random pipes.
	PolicyRandom RenewalPolicy = "random"
)

// F5RenewalImpact is the real-life-impact experiment: rank one region with
// the first configured model, replace the top `replaceFrac` of pipes under
// each policy, then play the *ground-truth* hazard forward `horizon` years
// and count the failures each policy actually prevents. Because the
// simulator's hazard is known, the comparison is exact counterfactual
// evaluation — the thing the paper could only argue for with a risk map.
func F5RenewalImpact(opts Options, region string, replaceFrac float64, horizon int) (*eval.Table, error) {
	opts = opts.withDefaults()
	if replaceFrac <= 0 || replaceFrac > 0.5 {
		return nil, fmt.Errorf("experiments: replace fraction %v out of (0, 0.5]", replaceFrac)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("experiments: horizon %d must be >= 1", horizon)
	}
	cfg, err := synthetic.Preset(region, opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.Scaled(opts.Scale)
	if err != nil {
		return nil, err
	}
	net, truth, err := synthetic.Generate(cfg)
	if err != nil {
		return nil, err
	}

	// Rank with the proposed model using the paper split (the ranking is
	// produced exactly as in T2; replacement happens after the observation
	// window ends).
	split, err := dataset.PaperSplit(net)
	if err != nil {
		return nil, err
	}
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	model := opts.Models[0]
	evals, err := EvaluateSplit(net, split, reg, []string{model}, feature.Groups{})
	if err != nil {
		return nil, err
	}
	e := evals[0]

	k := int(replaceFrac * float64(net.NumPipes()))
	if k < 1 {
		k = 1
	}

	// Build the replacement set per policy.
	pipes := net.Pipes()
	sets := map[RenewalPolicy]map[string]bool{
		PolicyNone:   {},
		PolicyModel:  {},
		PolicyOldest: {},
		PolicyRandom: {},
	}
	// Model policy: the test rows align with pipes via PipeIdx order.
	rowPipe := make([]string, len(e.Scores))
	row := 0
	for i := range pipes {
		if pipes[i].LaidYear > split.TestYear {
			continue
		}
		rowPipe[row] = pipes[i].ID
		row++
	}
	for _, r := range eval.TopK(e.Scores, k) {
		sets[PolicyModel][rowPipe[r]] = true
	}
	// Oldest policy.
	ages := make([]float64, len(pipes))
	for i := range pipes {
		ages[i] = pipes[i].AgeAt(split.TestYear)
	}
	for _, i := range eval.TopK(ages, k) {
		sets[PolicyOldest][pipes[i].ID] = true
	}
	// Random policy.
	rng := stats.NewRNG(opts.Seed + 99)
	for _, i := range rng.SampleWithoutReplacement(len(pipes), k) {
		sets[PolicyRandom][pipes[i].ID] = true
	}

	// Counterfactual futures share the simulation seed, so the only
	// difference between rows is the replacement set.
	tb := eval.NewTable(
		fmt.Sprintf("F5 (extension): ground-truth failures over %d future years, region %s, replacing top %.1f%% (%d pipes) per policy",
			horizon, region, 100*replaceFrac, k),
		"policy", "total failures", "prevented vs none", "prevented %")
	var baseTotal int
	for _, policy := range []RenewalPolicy{PolicyNone, PolicyModel, PolicyOldest, PolicyRandom} {
		counts, err := synthetic.SimulateFuture(cfg, net, truth, horizon,
			sets[policy], synthetic.Renewal{}, opts.Seed+1234)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if policy == PolicyNone {
			baseTotal = total
		}
		prevented := baseTotal - total
		pct := 0.0
		if baseTotal > 0 {
			pct = 100 * float64(prevented) / float64(baseTotal)
		}
		tb.AddRow(string(policy),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", prevented),
			fmt.Sprintf("%.1f%%", pct))
	}
	return tb, nil
}
