package synthetic

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Renewal describes how a replaced pipe is renewed in place: same route and
// geometry, age reset to zero, fresh frailty, and a modern material.
type Renewal struct {
	// MetallicReplacement is the material replacing CI/CICL/STEEL/DICL
	// (default DICL).
	MetallicReplacement dataset.Material
	// OtherReplacement is the material replacing AC/PVC/HDPE (default PVC).
	OtherReplacement dataset.Material
}

func (r Renewal) fillDefaults() Renewal {
	if r.MetallicReplacement == "" {
		r.MetallicReplacement = dataset.DICL
	}
	if r.OtherReplacement == "" {
		r.OtherReplacement = dataset.PVC
	}
	return r
}

// SimulateFuture plays the ground-truth hazard forward for `years` years
// past the network's observation window and returns the number of failures
// per future year. Pipes whose IDs appear in replaced are renewed at the
// start of the first future year (age reset, fresh frailty, modern
// material per the Renewal policy).
//
// This is the counterfactual engine behind the renewal-impact experiment:
// because the simulator's hazard is the ground truth, the measured
// difference between replacement policies is exact, not model-estimated.
func SimulateFuture(cfg Config, net *dataset.Network, truth *Truth, years int,
	replaced map[string]bool, renewal Renewal, seed int64) ([]int, error) {
	if years < 1 {
		return nil, fmt.Errorf("synthetic: years %d must be >= 1", years)
	}
	if net.NumPipes() != len(truth.Frailty) {
		return nil, fmt.Errorf("synthetic: truth has %d frailties for %d pipes",
			len(truth.Frailty), net.NumPipes())
	}
	renewal = renewal.fillDefaults()
	hz := truth.CalibratedHazard
	if hz.Materials == nil {
		// Truth produced by an older path without calibration info.
		hz = cfg.Hazard
	}
	rng := stats.NewRNG(seed)
	frailtyRNG := rng.Split()
	failRNG := rng.Split()

	// Working copies of the mutable per-pipe state.
	pipes := net.Pipes()
	laid := make([]int, len(pipes))
	mat := make([]dataset.Material, len(pipes))
	frailty := make([]float64, len(pipes))
	startYear := net.ObservedTo + 1
	for i := range pipes {
		laid[i] = pipes[i].LaidYear
		mat[i] = pipes[i].Material
		frailty[i] = truth.Frailty[i]
		if replaced[pipes[i].ID] {
			laid[i] = startYear
			frailty[i] = frailtyRNG.LogNormal(0, hz.FrailtySigma)
			if isMetallic(pipes[i].Material) {
				mat[i] = renewal.MetallicReplacement
			} else {
				mat[i] = renewal.OtherReplacement
			}
		} else {
			// Burn one draw so the frailty stream stays aligned across
			// policies with different replacement sets of the same network.
			_ = frailtyRNG.Float64()
		}
	}

	out := make([]int, years)
	for h := 0; h < years; h++ {
		year := startYear + h
		for i := range pipes {
			p := pipes[i] // copy; override the renewed attributes
			p.LaidYear = laid[i]
			p.Material = mat[i]
			rate, err := hz.AnnualRate(&p, year, frailty[i])
			if err != nil {
				return nil, err
			}
			if limit := float64(p.Segments); rate > limit {
				rate = limit
			}
			out[h] += failRNG.Poisson(rate)
		}
	}
	return out, nil
}

func isMetallic(m dataset.Material) bool {
	switch m {
	case dataset.CI, dataset.CICL, dataset.DICL, dataset.STEEL:
		return true
	default:
		return false
	}
}
