package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/feature"
	"repro/internal/stats"
)

// TreeConfig tunes a single CART decision tree.
type TreeConfig struct {
	// MaxDepth caps the tree depth (default 8).
	MaxDepth int
	// MinLeaf is the minimum number of instances in a leaf (default 20).
	MinLeaf int
	// FeatureSubset, when positive, examines only that many randomly
	// chosen features per split (random-forest mode); 0 examines all.
	FeatureSubset int
	// Thresholds is the number of candidate quantile cuts per feature
	// (default 24).
	Thresholds int
}

func (c *TreeConfig) fillDefaults() {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 20
	}
	if c.Thresholds <= 0 {
		c.Thresholds = 24
	}
}

// treeNode is one node of a fitted CART tree. Leaves have featureIdx == -1.
type treeNode struct {
	featureIdx  int
	threshold   float64
	left, right int // child indices into the node arena
	prob        float64
}

// cartTree is a Gini-impurity CART classification tree over a feature.Set,
// predicting the positive-class probability. It is the building block of
// the RandomForest baseline and usable standalone.
type cartTree struct {
	cfg   TreeConfig
	nodes []treeNode
}

// fitTree grows a tree on the given row subset. rng drives the feature
// subsampling; pass nil for deterministic all-features splits.
func fitTree(train *feature.Set, rows []int, cfg TreeConfig, rng *stats.RNG) *cartTree {
	cfg.fillDefaults()
	t := &cartTree{cfg: cfg}
	t.grow(train, rows, 0, rng)
	return t
}

// grow recursively builds the subtree for rows and returns its node index.
func (t *cartTree) grow(train *feature.Set, rows []int, depth int, rng *stats.RNG) int {
	idx := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{featureIdx: -1, prob: posFraction(train, rows)})

	if depth >= t.cfg.MaxDepth || len(rows) < 2*t.cfg.MinLeaf {
		return idx
	}
	p := t.nodes[idx].prob
	if p == 0 || p == 1 {
		return idx
	}

	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	parentGini := giniOf(p)

	features := t.candidateFeatures(train.Dim(), rng)
	vals := make([]float64, len(rows))
	for _, j := range features {
		for k, r := range rows {
			vals[k] = train.X[r][j]
		}
		cuts := quantileThresholds(vals, t.cfg.Thresholds)
		for _, c := range cuts {
			var nL, nR, posL, posR float64
			for _, r := range rows {
				if train.X[r][j] <= c {
					nL++
					if train.Label[r] {
						posL++
					}
				} else {
					nR++
					if train.Label[r] {
						posR++
					}
				}
			}
			if nL < float64(t.cfg.MinLeaf) || nR < float64(t.cfg.MinLeaf) {
				continue
			}
			n := nL + nR
			gain := parentGini - (nL/n)*giniOf(posL/nL) - (nR/n)*giniOf(posR/nR)
			if gain > bestGain {
				bestGain, bestFeat, bestThresh = gain, j, c
			}
		}
	}
	if bestFeat < 0 || bestGain < 1e-9 {
		return idx
	}

	var left, right []int
	for _, r := range rows {
		if train.X[r][bestFeat] <= bestThresh {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	l := t.grow(train, left, depth+1, rng)
	r := t.grow(train, right, depth+1, rng)
	t.nodes[idx].featureIdx = bestFeat
	t.nodes[idx].threshold = bestThresh
	t.nodes[idx].left = l
	t.nodes[idx].right = r
	return idx
}

func (t *cartTree) candidateFeatures(dim int, rng *stats.RNG) []int {
	if t.cfg.FeatureSubset <= 0 || t.cfg.FeatureSubset >= dim || rng == nil {
		all := make([]int, dim)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return rng.SampleWithoutReplacement(dim, t.cfg.FeatureSubset)
}

// predict returns the positive-class probability for one row.
func (t *cartTree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.featureIdx < 0 {
			return n.prob
		}
		if x[n.featureIdx] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// depth returns the maximum depth of the fitted tree (0 = single leaf).
func (t *cartTree) depth() int {
	var walk func(i int) int
	walk = func(i int) int {
		n := &t.nodes[i]
		if n.featureIdx < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0)
}

func posFraction(train *feature.Set, rows []int) float64 {
	if len(rows) == 0 {
		return 0
	}
	pos := 0
	for _, r := range rows {
		if train.Label[r] {
			pos++
		}
	}
	return float64(pos) / float64(len(rows))
}

func giniOf(p float64) float64 { return 2 * p * (1 - p) }

// quantileThresholds returns up to k distinct interior quantiles of xs.
func quantileThresholds(xs []float64, k int) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var cuts []float64
	for i := 1; i <= k; i++ {
		q := float64(i) / float64(k+1)
		v := s[int(q*float64(len(s)-1))]
		if len(cuts) == 0 || v != cuts[len(cuts)-1] {
			cuts = append(cuts, v)
		}
	}
	return cuts
}

// ForestConfig tunes the RandomForest baseline.
type ForestConfig struct {
	// Seed drives bootstrap and feature subsampling.
	Seed int64
	// Trees is the ensemble size (default 60).
	Trees int
	// Tree configures the individual trees; FeatureSubset defaults to
	// ceil(sqrt(dim)) when zero.
	Tree TreeConfig
	// NegativeSubsample caps the negatives per bootstrap at this multiple
	// of the positives (default 5; class-imbalance handling).
	NegativeSubsample float64
}

func (c *ForestConfig) fillDefaults() {
	if c.Trees <= 0 {
		c.Trees = 60
	}
	if c.NegativeSubsample <= 0 {
		c.NegativeSubsample = 5
	}
}

// RandomForest is a bagged ensemble of Gini CART trees with per-split
// feature subsampling and positive-preserving bootstraps, representing the
// general-purpose classification side of the data-mining comparison. Scores
// are mean leaf probabilities across trees.
type RandomForest struct {
	cfg   ForestConfig
	trees []*cartTree
}

// NewRandomForest returns an unfitted forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	cfg.fillDefaults()
	return &RandomForest{cfg: cfg}
}

// Name implements core.Model.
func (m *RandomForest) Name() string { return "RandomForest" }

// NumTrees returns the number of fitted trees.
func (m *RandomForest) NumTrees() int { return len(m.trees) }

// Fit implements core.Model.
func (m *RandomForest) Fit(train *feature.Set) error {
	if train == nil || train.Len() == 0 {
		return fmt.Errorf("%s: empty training set", m.Name())
	}
	pos := 0
	for _, v := range train.Label {
		if v {
			pos++
		}
	}
	if pos == 0 || pos == train.Len() {
		return fmt.Errorf("%s: training set needs both classes", m.Name())
	}
	rng := stats.NewRNG(m.cfg.Seed)

	var posRows, negRows []int
	for i, v := range train.Label {
		if v {
			posRows = append(posRows, i)
		} else {
			negRows = append(negRows, i)
		}
	}
	negPerTree := int(m.cfg.NegativeSubsample * float64(len(posRows)))
	if negPerTree > len(negRows) {
		negPerTree = len(negRows)
	}
	treeCfg := m.cfg.Tree
	treeCfg.fillDefaults()
	if treeCfg.FeatureSubset <= 0 {
		treeCfg.FeatureSubset = int(math.Ceil(math.Sqrt(float64(train.Dim()))))
	}

	m.trees = m.trees[:0]
	for t := 0; t < m.cfg.Trees; t++ {
		treeRNG := rng.Split()
		// Bootstrap positives (with replacement) + a fresh negative
		// subsample: keeps every tree balanced under extreme imbalance.
		rows := make([]int, 0, len(posRows)+negPerTree)
		for i := 0; i < len(posRows); i++ {
			rows = append(rows, posRows[treeRNG.Intn(len(posRows))])
		}
		for _, j := range treeRNG.SampleWithoutReplacement(len(negRows), negPerTree) {
			rows = append(rows, negRows[j])
		}
		m.trees = append(m.trees, fitTree(train, rows, treeCfg, treeRNG))
	}
	return nil
}

// Scores implements core.Model; scores are ensemble-mean positive-class
// probabilities (on the rebalanced bootstrap distribution — fine for
// ranking, not calibrated for absolute risk).
func (m *RandomForest) Scores(test *feature.Set) ([]float64, error) {
	if len(m.trees) == 0 {
		return nil, fmt.Errorf("%s: %w", m.Name(), ErrNotFitted)
	}
	out := make([]float64, test.Len())
	for i, row := range test.X {
		s := 0.0
		for _, t := range m.trees {
			s += t.predict(row)
		}
		out[i] = s / float64(len(m.trees))
	}
	return out, nil
}
