package eval

// Ranking kernels shared by the evaluation harness, the serve layer and
// (via core) the ES training hot path. Two disciplines hold throughout:
//
//   - Scratch ownership: kernels with reusable state (AUCKernel, Ranker)
//     are NOT safe for concurrent use; each worker owns its own instance.
//     The stateless package functions (AUC, TopK) allocate fresh scratch
//     per call and are safe anywhere.
//   - Deterministic ties: every sort orders by the (score, original
//     index) composite key. The index tiebreak makes the permutation
//     unique, so the unstable pdqsort behind slices.SortFunc yields the
//     exact ordering a stable sort on scores alone would — bit-identical
//     results across Go versions, worker counts and sort algorithms.

import (
	"fmt"
	"slices"
)

// scoreIx pairs a score with its original row index — the composite sort
// key of every ranking kernel.
type scoreIx struct {
	s float64
	i int
}

// cmpScoreIxAsc orders ascending by score, ties by index. A top-level
// function, not a closure, so sorting captures no variables and performs
// no allocation.
func cmpScoreIxAsc(a, b scoreIx) int {
	if a.s < b.s {
		return -1
	}
	if a.s > b.s {
		return 1
	}
	return a.i - b.i
}

// cmpScoreIxDesc orders descending by score, ties by ascending index —
// the rank order every inspection list uses.
func cmpScoreIxDesc(a, b scoreIx) int {
	if a.s > b.s {
		return -1
	}
	if a.s < b.s {
		return 1
	}
	return a.i - b.i
}

// AUCKernel computes empirical AUCs with reusable scratch: after the
// first call at a given size, Compute performs zero allocations. One
// kernel per goroutine — the ES gives each fitness worker its own.
type AUCKernel struct {
	buf []scoreIx
}

// Compute returns the empirical area under the ROC curve of scores
// against labels, using the rank-statistic formulation (ties counted
// half) in O(n log n). Degenerate single-class or empty inputs return
// 0.5. It panics on length mismatch, which always indicates a schema bug
// rather than a data condition.
func (k *AUCKernel) Compute(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("eval: AUC length mismatch %d vs %d", len(scores), len(labels)))
	}
	n := len(scores)
	if n == 0 {
		return 0.5
	}
	buf := k.buf
	if cap(buf) < n {
		buf = make([]scoreIx, n)
	}
	buf = buf[:n]
	for i, s := range scores {
		buf[i] = scoreIx{s, i}
	}
	slices.SortFunc(buf, cmpScoreIxAsc)
	k.buf = buf

	var nPos, nNeg, rankSum float64
	i := 0
	rank := 1.0
	for i < n {
		j := i
		for j+1 < n && buf[j+1].s == buf[i].s {
			j++
		}
		avg := (rank + rank + float64(j-i)) / 2
		for t := i; t <= j; t++ {
			if labels[buf[t].i] {
				rankSum += avg
				nPos++
			} else {
				nNeg++
			}
		}
		rank += float64(j - i + 1)
		i = j + 1
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// Ranker produces descending rank orderings with reusable scratch. The
// slice returned by Order is owned by the Ranker and valid only until
// the next call; copy it to retain. Not safe for concurrent use.
type Ranker struct {
	buf []scoreIx
	idx []int
}

// Order returns indices sorted by score descending, breaking ties by
// original index for determinism.
func (r *Ranker) Order(scores []float64) []int {
	n := len(scores)
	if cap(r.buf) < n {
		r.buf = make([]scoreIx, n)
		r.idx = make([]int, n)
	}
	buf := r.buf[:n]
	idx := r.idx[:n]
	for i, s := range scores {
		buf[i] = scoreIx{s, i}
	}
	slices.SortFunc(buf, cmpScoreIxDesc)
	for i, p := range buf {
		idx[i] = p.i
	}
	return idx
}

// topKHeap is a fixed-capacity min-heap over the descending rank order:
// the root is the *worst* of the kept candidates, so a scan can evict it
// in O(log k) whenever a better candidate arrives.
type topKHeap []scoreIx

// worse reports whether a ranks strictly after b in the descending
// (score, index) order.
func worse(a, b scoreIx) bool {
	if a.s != b.s {
		return a.s < b.s
	}
	return a.i > b.i
}

func (h topKHeap) siftUp(c int) {
	for c > 0 {
		p := (c - 1) / 2
		if !worse(h[c], h[p]) {
			break
		}
		h[c], h[p] = h[p], h[c]
		c = p
	}
}

func (h topKHeap) siftDown(p int) {
	for {
		c := 2*p + 1
		if c >= len(h) {
			return
		}
		if c+1 < len(h) && worse(h[c+1], h[c]) {
			c++
		}
		if !worse(h[c], h[p]) {
			return
		}
		h[p], h[c] = h[c], h[p]
		p = c
	}
}

// TopK returns the indices of the k highest-scoring items in rank order
// (score descending, ties by ascending index). k is clamped to
// [0, len(scores)]. A single O(n) scan maintains a size-k heap — heap
// updates cost O(log k) and only fire when a candidate enters the
// running top k, so unordered inputs cost O(n + k log n) expected rather
// than the full O(n log n) sort — and the kept set is sorted in
// O(k log k) at the end. The selection is identical to sorting the whole
// slice and taking the first k, because the (score, index) key is a
// total order.
func TopK(scores []float64, k int) []int {
	if k < 0 {
		k = 0
	}
	if k > len(scores) {
		k = len(scores)
	}
	if k == 0 {
		return []int{}
	}
	h := make(topKHeap, 0, k)
	for i, s := range scores {
		c := scoreIx{s, i}
		if len(h) < k {
			h = append(h, c)
			h.siftUp(len(h) - 1)
			continue
		}
		if worse(c, h[0]) {
			continue
		}
		h[0] = c
		h.siftDown(0)
	}
	slices.SortFunc(h, cmpScoreIxDesc)
	out := make([]int, k)
	for i, p := range h {
		out[i] = p.i
	}
	return out
}
