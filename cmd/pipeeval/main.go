// Command pipeeval regenerates every table and figure of the reproduced
// evaluation (see DESIGN.md for the experiment index):
//
//	T1  dataset summary            F1  detection curves
//	T2  AUC by model and region    F2  AUC vs training-window length
//	T3  detection at budgets       F3  training-time scalability
//	T4  significance tests         F4  risk map (SVG)
//	T5  feature ablation
//	T6  pipe-class breakdown
//
// Usage:
//
//	pipeeval -exp all -scale 0.25 -seed 1
//	pipeeval -exp T2,T3 -scale 1 -models DirectAUC-ES,Cox,Weibull
//	pipeeval -data data/regionA,data/regionB -models RankSVM,Cox
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipeeval: ")

	exp := flag.String("exp", "all", "comma-separated experiment IDs (T1..T6, F1..F4) or 'all'")
	seed := flag.Int64("seed", 1, "master seed")
	scale := flag.Float64("scale", 0.25, "region scale in (0,1]; 1 = full paper size")
	regions := flag.String("regions", "A,B,C", "comma-separated region presets")
	data := flag.String("data", "", "comma-separated dataset paths (CSV dirs, columnar dirs or .col files); evaluates loaded data instead of generating regions — only T2, T3 and F1 apply")
	models := flag.String("models", "", "comma-separated model subset (default: full suite)")
	esGens := flag.Int("esgens", 0, "override DirectAUC ES generations (0 = default)")
	svgOut := flag.String("riskmap", "riskmap.svg", "output path for the F4 SVG")
	metrics := flag.Bool("metrics", false, "print a JSON metrics snapshot (fit durations, ES progress, pool task counts) after the run")
	fastMath := flag.Bool("fast-math", false,
		"use reassociated multi-accumulator float kernels; faster, but tables are no longer bit-comparable to the checked-in goldens")
	flag.Parse()
	linalg.SetFastMath(*fastMath)

	opts := experiments.Options{
		Seed:          *seed,
		Scale:         *scale,
		Regions:       splitList(*regions),
		ESGenerations: *esGens,
	}
	if *models != "" {
		opts.Models = splitList(*models)
	}

	want := map[string]bool{}
	if *exp == "all" {
		if *data != "" {
			// Loaded datasets carry no synthetic.Config, so only the
			// observed-data experiments apply.
			for _, id := range []string{"T2", "T3", "F1"} {
				want[id] = true
			}
		} else {
			for _, id := range []string{"T0", "T1", "T2", "T3", "F1", "T4", "F2", "T5", "F3", "T6", "F4", "T7", "F5", "T8", "F6"} {
				want[id] = true
			}
		}
	} else {
		for _, id := range splitList(*exp) {
			want[strings.ToUpper(id)] = true
		}
	}
	if *data != "" {
		for id := range want {
			if id != "T2" && id != "T3" && id != "F1" {
				log.Fatalf("%s cannot run on loaded datasets (-data): it regenerates or perturbs a synthetic region; only T2, T3 and F1 apply", id)
			}
		}
	}

	// T2/T3/F1 share one expensive evaluation pass.
	var shared []experiments.RegionResult
	needShared := want["T2"] || want["T3"] || want["F1"]

	run := func(id string, fn func() error) {
		if !want[id] {
			return
		}
		fmt.Printf("== %s ==\n", id)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println()
	}

	run("T0", func() error {
		tb, err := experiments.T0Cohorts(opts)
		if err != nil {
			return err
		}
		fmt.Print(tb.String())
		return nil
	})
	run("T1", func() error {
		tb, err := experiments.T1DatasetSummary(opts)
		if err != nil {
			return err
		}
		fmt.Print(tb.String())
		return nil
	})

	if needShared {
		var err error
		if *data != "" {
			var nets []*dataset.Network
			for _, path := range splitList(*data) {
				net, err := pipefail.LoadNetwork(path)
				if err != nil {
					log.Fatalf("load %s: %v", path, err)
				}
				nets = append(nets, net)
			}
			shared, err = experiments.RunNetworks(opts, nets)
		} else {
			shared, err = experiments.RunRegions(opts)
		}
		if err != nil {
			log.Fatalf("evaluation pass: %v", err)
		}
	}
	run("T2", func() error { fmt.Print(experiments.T2AUCTable(shared).String()); return nil })
	run("T3", func() error { fmt.Print(experiments.T3BudgetTable(shared).String()); return nil })
	run("F1", func() error { fmt.Print(experiments.F1DetectionSeries(shared, nil).String()); return nil })

	run("T4", func() error {
		res, err := experiments.T4Significance(opts, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiments.T4Table(res).String())
		return nil
	})
	run("F2", func() error {
		tb, err := experiments.F2WindowSweep(opts, nil)
		if err != nil {
			return err
		}
		fmt.Print(tb.String())
		return nil
	})
	run("T5", func() error {
		res, err := experiments.T5Ablation(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.T5Table(res).String())
		return nil
	})
	run("F3", func() error {
		tb, err := experiments.F3Scalability(opts, nil)
		if err != nil {
			return err
		}
		fmt.Print(tb.String())
		return nil
	})
	run("T6", func() error {
		tb, err := experiments.T6ClassBreakdown(opts)
		if err != nil {
			return err
		}
		fmt.Print(tb.String())
		return nil
	})
	run("T7", func() error {
		res, err := experiments.T7Agreement(opts, 0)
		if err != nil {
			return err
		}
		for _, r := range res {
			fmt.Print(experiments.T7Table(r).String())
		}
		return nil
	})
	run("T8", func() error {
		tb, err := experiments.T8Sensitivity(opts, opts.Regions[0], 3)
		if err != nil {
			return err
		}
		fmt.Print(tb.String())
		return nil
	})
	run("F6", func() error {
		tb, err := experiments.F6Staleness(opts, opts.Regions[0], 6)
		if err != nil {
			return err
		}
		fmt.Print(tb.String())
		return nil
	})
	run("F5", func() error {
		tb, err := experiments.F5RenewalImpact(opts, opts.Regions[0], 0.02, 5)
		if err != nil {
			return err
		}
		fmt.Print(tb.String())
		return nil
	})
	run("F4", func() error {
		rm, err := experiments.F4RiskMap(opts, opts.Regions[0])
		if err != nil {
			return err
		}
		f, err := os.Create(*svgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rm.WriteSVG(f, 900); err != nil {
			return err
		}
		fmt.Printf("risk map for region %s (model %s) written to %s; top-decile hit %.1f%%\n",
			rm.Region, rm.Model, *svgOut, 100*rm.TopDecileHit)
		return nil
	})

	if *metrics {
		fmt.Println("== metrics ==")
		if err := obs.Default().Snapshot().WriteJSON(os.Stdout); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
