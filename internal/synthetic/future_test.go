package synthetic

import (
	"testing"
)

func TestSimulateFutureBaseline(t *testing.T) {
	cfg := smallConfig(21)
	net, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := SimulateFuture(cfg, net, truth, 5, nil, Renewal{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 5 {
		t.Fatalf("years = %d", len(counts))
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			t.Fatalf("negative count %d", c)
		}
		total += c
	}
	// The future annual failure level should resemble the observed one
	// (same calibrated hazard, slightly older network): within a factor 2.
	obsPerYear := float64(net.NumFailures()) / float64(net.ObservedTo-net.ObservedFrom+1)
	futPerYear := float64(total) / 5
	if futPerYear < obsPerYear/2 || futPerYear > obsPerYear*2 {
		t.Fatalf("future rate %v per year vs observed %v; calibration not carried over",
			futPerYear, obsPerYear)
	}
}

func TestSimulateFutureDeterminism(t *testing.T) {
	cfg := smallConfig(22)
	net, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := SimulateFuture(cfg, net, truth, 3, nil, Renewal{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateFuture(cfg, net, truth, 3, nil, Renewal{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical futures")
		}
	}
}

func TestSimulateFutureReplacementHelps(t *testing.T) {
	cfg := smallConfig(23)
	net, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the pipes with the highest true final-year rates — the
	// oracle policy; it must prevent a solid share of failures.
	k := net.NumPipes() / 20 // 5%
	type pr struct {
		id   string
		rate float64
	}
	prs := make([]pr, net.NumPipes())
	for i, p := range net.Pipes() {
		prs[i] = pr{p.ID, truth.FinalYearRate[i]}
	}
	// Partial selection of top-k by rate.
	replaced := map[string]bool{}
	for n := 0; n < k; n++ {
		best := -1
		for i := range prs {
			if replaced[prs[i].id] {
				continue
			}
			if best < 0 || prs[i].rate > prs[best].rate {
				best = i
			}
		}
		replaced[prs[best].id] = true
	}

	base, err := SimulateFuture(cfg, net, truth, 5, nil, Renewal{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := SimulateFuture(cfg, net, truth, 5, replaced, Renewal{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	b, o := sum(base), sum(oracle)
	if o >= b {
		t.Fatalf("oracle replacement must reduce failures: base %d, oracle %d", b, o)
	}
	// Replacing the truly worst 5% should prevent well over 5% of failures.
	if prevented := float64(b-o) / float64(b); prevented < 0.10 {
		t.Fatalf("oracle prevented only %.1f%%", 100*prevented)
	}
}

func TestSimulateFutureErrors(t *testing.T) {
	cfg := smallConfig(24)
	net, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateFuture(cfg, net, truth, 0, nil, Renewal{}, 1); err == nil {
		t.Fatal("years=0 must error")
	}
	bad := &Truth{Frailty: truth.Frailty[:1]}
	if _, err := SimulateFuture(cfg, net, bad, 3, nil, Renewal{}, 1); err == nil {
		t.Fatal("truth size mismatch must error")
	}
}
