package colfmt

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadDataset hammers the streaming reader with corrupt inputs. The
// invariant: Read either fails cleanly or yields a dataset that survives a
// re-encode/re-decode round trip — it never panics, and its allocations are
// bounded by the input size (enforced structurally by the budget charged in
// reader.take, exercised here by headers declaring absurd lengths).
func FuzzReadDataset(f *testing.F) {
	d, err := FromNetwork(testNetwork(f, 0.02, 7))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()

	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte("PCOL"))
	for _, n := range []int{8, 28, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		if n <= len(raw) {
			f.Add(raw[:n])
		}
	}
	// Wrong magic / future version / nonzero flags.
	for _, i := range []int{0, 4, 6} {
		b := append([]byte(nil), raw...)
		b[i] ^= 0xFF
		f.Add(b)
	}
	// Flip a CRC-protected payload byte and a section-length byte.
	for _, i := range []int{64, 100, len(raw) / 2} {
		if i < len(raw) {
			b := append([]byte(nil), raw...)
			b[i] ^= 0x10
			f.Add(b)
		}
	}
	// Oversized length prefix: blow up the meta section's payload length.
	b := append([]byte(nil), raw...)
	for i := 20; i < 28 && i < len(b); i++ {
		b[i] = 0xFF
	}
	f.Add(b)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Read(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// Anything the reader accepts must re-encode and decode to the
		// same columns (byte layout may differ — e.g. dictionary order is
		// canonicalized — but values must not).
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("re-encode of accepted dataset failed: %v", err)
		}
		d2, err := Read(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("re-read of re-encoded dataset failed: %v", err)
		}
		if !reflect.DeepEqual(d.Pipes, d2.Pipes) || !reflect.DeepEqual(d.Events, d2.Events) {
			t.Fatal("columns changed across re-encode round trip")
		}
	})
}
