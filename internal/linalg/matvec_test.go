package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

// dotNaive is the pre-unroll reference implementation; the unrolled Dot
// must match it bit-for-bit because it preserves the sequential
// summation order (the contract flat-path vs row-path scoring relies on).
func dotNaive(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func TestDotBitIdenticalToNaive(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true // overflow to Inf/NaN makes == vacuous
			}
		}
		return Dot(a, b) == dotNaive(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Exercise every unroll remainder explicitly.
	for n := 0; n < 9; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = 0.1 * float64(i+1)
			b[i] = 1.0 / float64(i+3)
		}
		if Dot(a, b) != dotNaive(a, b) {
			t.Fatalf("n=%d: Dot diverges from sequential sum", n)
		}
	}
}

func TestMatVecMatchesRowDots(t *testing.T) {
	const rows, stride = 7, 5
	flat := make([]float64, rows*stride)
	for i := range flat {
		flat[i] = float64(i%11) - 4.5
	}
	x := []float64{1, -2, 0.5, 3, -0.25}
	dst := make([]float64, rows)
	MatVec(dst, flat, stride, x)
	for i := 0; i < rows; i++ {
		if want := Dot(flat[i*stride:(i+1)*stride], x); dst[i] != want {
			t.Fatalf("row %d: MatVec %v != Dot %v", i, dst[i], want)
		}
	}
}

// TestDotEdgeLengths pins the degenerate shapes: zero-length vectors
// (empty sum is exactly 0), a single element (pure tail, no unrolled
// block), and one value straddling each side of the first block
// boundary.
func TestDotEdgeLengths(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("empty Dot = %v, want 0", got)
	}
	if got := Dot([]float64{}, []float64{}); got != 0 {
		t.Fatalf("empty non-nil Dot = %v, want 0", got)
	}
	if got := Dot([]float64{-2.5}, []float64{4}); got != -10 {
		t.Fatalf("single-element Dot = %v, want -10", got)
	}
	if got := DotExact([]float64{-2.5}, []float64{4}); got != -10 {
		t.Fatalf("single-element DotExact = %v, want -10", got)
	}
}

// TestMatVecRemainderLanes sweeps every row-count remainder of the 4-row
// blocking against every stride remainder of the 4-wide inner unroll
// (lengths ≡ 0..3 mod 4 at several block counts), demanding bit identity
// with per-row sequential dots. Values mix signs and irrational-ish
// magnitudes so a reassociated (wrong) tail would actually change bits.
func TestMatVecRemainderLanes(t *testing.T) {
	for rows := 0; rows <= 9; rows++ {
		for _, stride := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13} {
			flat := make([]float64, rows*stride)
			for i := range flat {
				flat[i] = math.Sin(float64(i)*0.7) * math.Pow(10, float64(i%7-3))
			}
			x := make([]float64, stride)
			for j := range x {
				x[j] = math.Cos(float64(j)*1.3) - 0.4
			}
			dst := make([]float64, rows)
			MatVec(dst, flat, stride, x)
			for r := 0; r < rows; r++ {
				if want := dotNaive(flat[r*stride:(r+1)*stride], x); dst[r] != want {
					t.Fatalf("rows=%d stride=%d row %d: MatVec %v != sequential %v",
						rows, stride, r, dst[r], want)
				}
			}
			exact := make([]float64, rows)
			MatVecExact(exact, flat, stride, x)
			for r := range dst {
				if exact[r] != dst[r] {
					t.Fatalf("rows=%d stride=%d row %d: MatVecExact %v != MatVec %v",
						rows, stride, r, exact[r], dst[r])
				}
			}
		}
	}
}

func TestMatVecPanics(t *testing.T) {
	flat := make([]float64, 6)
	dst := make([]float64, 2)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"bad vector", func() { MatVec(dst, flat, 3, []float64{1, 2}) }},
		{"bad flat", func() { MatVec(dst, flat[:5], 3, []float64{1, 2, 3}) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestMatVecEmpty(t *testing.T) {
	// Zero rows is a no-op, not a panic.
	MatVec(nil, nil, 4, []float64{1, 2, 3, 4})
}

// BenchmarkMatVec measures the flat scoring kernel at fitness-batch shape
// (20k rows x 32 features) — compare against the pre-flat row-pointer
// loop recorded in EXPERIMENTS.md.
func BenchmarkMatVec(b *testing.B) {
	const n, d = 20000, 32
	flat := make([]float64, n*d)
	for i := range flat {
		flat[i] = float64(i%7) * 0.25
	}
	x := make([]float64, d)
	for j := range x {
		x[j] = float64(j%3) - 1
	}
	out := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(out, flat, d, x)
	}
}

// BenchmarkDot measures the unrolled dot product at feature-vector width.
func BenchmarkDot(b *testing.B) {
	const d = 32
	x := make([]float64, d)
	y := make([]float64, d)
	for j := range x {
		x[j] = float64(j%5) * 0.5
		y[j] = float64(j%3) - 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}
