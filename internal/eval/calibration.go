package eval

import (
	"fmt"
	"math"
)

// Brier returns the Brier score (mean squared error of predicted
// probabilities against binary outcomes); lower is better. It panics on
// length mismatch and returns 0 for empty input.
func Brier(probs []float64, labels []bool) float64 {
	if len(probs) != len(labels) {
		panic(fmt.Sprintf("eval: Brier length mismatch %d vs %d", len(probs), len(labels)))
	}
	if len(probs) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range probs {
		y := 0.0
		if labels[i] {
			y = 1
		}
		d := p - y
		s += d * d
	}
	return s / float64(len(probs))
}

// ReliabilityBin is one bin of a reliability diagram.
type ReliabilityBin struct {
	// Lo and Hi bound the predicted-probability bin [Lo, Hi).
	Lo, Hi float64
	// Count is the number of predictions in the bin.
	Count int
	// MeanPredicted is the average predicted probability in the bin.
	MeanPredicted float64
	// ObservedRate is the empirical positive rate in the bin.
	ObservedRate float64
}

// Reliability computes an equal-width reliability diagram with the given
// number of bins (default 10 when bins < 1). Predictions outside [0, 1]
// are clamped into the terminal bins.
func Reliability(probs []float64, labels []bool, bins int) []ReliabilityBin {
	if len(probs) != len(labels) {
		panic(fmt.Sprintf("eval: Reliability length mismatch %d vs %d", len(probs), len(labels)))
	}
	if bins < 1 {
		bins = 10
	}
	out := make([]ReliabilityBin, bins)
	sums := make([]float64, bins)
	pos := make([]int, bins)
	for i := range out {
		out[i].Lo = float64(i) / float64(bins)
		out[i].Hi = float64(i+1) / float64(bins)
	}
	for i, p := range probs {
		b := int(p * float64(bins))
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		out[b].Count++
		sums[b] += p
		if labels[i] {
			pos[b]++
		}
	}
	for i := range out {
		if out[i].Count > 0 {
			out[i].MeanPredicted = sums[i] / float64(out[i].Count)
			out[i].ObservedRate = float64(pos[i]) / float64(out[i].Count)
		}
	}
	return out
}

// ECE returns the expected calibration error: the count-weighted mean
// absolute gap between predicted and observed rates across reliability
// bins. 0 is perfectly calibrated.
func ECE(probs []float64, labels []bool, bins int) float64 {
	rel := Reliability(probs, labels, bins)
	n := 0
	for _, b := range rel {
		n += b.Count
	}
	if n == 0 {
		return 0
	}
	e := 0.0
	for _, b := range rel {
		if b.Count == 0 {
			continue
		}
		e += float64(b.Count) / float64(n) * math.Abs(b.MeanPredicted-b.ObservedRate)
	}
	return e
}

// KendallTau returns the Kendall rank correlation (tau-a) between two score
// vectors over the same items, computed in O(n²) — fine for the model-
// agreement analysis over thousands of pipes, not millions. It returns 0
// for mismatched or sub-2-element input.
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	var concordant, discordant float64
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			s := da * db
			switch {
			case s > 0:
				concordant++
			case s < 0:
				discordant++
			}
		}
	}
	n := float64(len(a))
	pairs := n * (n - 1) / 2
	return (concordant - discordant) / pairs
}
