GO ?= go
FUZZTIME ?= 10s

.PHONY: build test verify fuzz-smoke bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-submit gate: static checks, the race detector on the
# concurrency-bearing packages (the parallel training engine, the metrics
# registry, the singleflight HTTP layer and the experiment fan-out), and
# a short fuzz pass over the CSV parsers.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/parallel/... ./internal/core/... ./internal/obs/... ./internal/serve/... ./internal/experiments/...
	$(MAKE) fuzz-smoke

# fuzz-smoke runs each dataset fuzzer briefly (FUZZTIME per target) —
# enough to replay the corpus and shake out shallow regressions without
# holding up the gate.
fuzz-smoke:
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadPipes$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/dataset -run='^$$' -fuzz='^FuzzReadFailures$$' -fuzztime=$(FUZZTIME)

bench:
	$(GO) test -bench=. -benchtime=1x ./...
