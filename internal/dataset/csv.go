package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The CSV schema mirrors the two registries a utility exports: a pipe table
// and a work-order (failure) table. Headers are written and required so
// files remain self-describing.

var pipeHeader = []string{
	"id", "class", "material", "coating", "diameter_mm", "length_m",
	"laid_year", "soil_corrosivity", "soil_expansivity", "soil_geology",
	"soil_map", "dist_traffic_m", "x", "y", "segments",
}

var failureHeader = []string{"pipe_id", "segment", "year", "day", "mode"}

// PipeWriter streams pipe rows to a CSV table one at a time, so callers
// generating large registries never hold them in memory. The byte output
// is identical to WritePipes on the same rows.
type PipeWriter struct {
	cw  *csv.Writer
	rec [15]string
}

// NewPipeWriter writes the header and returns a row writer.
func NewPipeWriter(w io.Writer) (*PipeWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(pipeHeader); err != nil {
		return nil, fmt.Errorf("dataset: write pipe header: %w", err)
	}
	return &PipeWriter{cw: cw}, nil
}

// Write appends one pipe row.
func (pw *PipeWriter) Write(p *Pipe) error {
	pw.rec = [15]string{
		p.ID,
		p.Class.String(),
		string(p.Material),
		string(p.Coating),
		formatFloat(p.DiameterMM),
		formatFloat(p.LengthM),
		strconv.Itoa(p.LaidYear),
		p.SoilCorrosivity,
		p.SoilExpansivity,
		p.SoilGeology,
		p.SoilMap,
		formatFloat(p.DistToTrafficM),
		formatFloat(p.X),
		formatFloat(p.Y),
		strconv.Itoa(p.Segments),
	}
	if err := pw.cw.Write(pw.rec[:]); err != nil {
		return fmt.Errorf("dataset: write pipe %q: %w", p.ID, err)
	}
	return nil
}

// Flush completes the table; call it exactly once after the last row.
func (pw *PipeWriter) Flush() error {
	pw.cw.Flush()
	return pw.cw.Error()
}

// WritePipes writes the pipe table as CSV.
func WritePipes(w io.Writer, pipes []Pipe) error {
	pw, err := NewPipeWriter(w)
	if err != nil {
		return err
	}
	for i := range pipes {
		if err := pw.Write(&pipes[i]); err != nil {
			return err
		}
	}
	return pw.Flush()
}

// intern deduplicates the low-cardinality string fields (class levels,
// materials, soil factors, failure modes). encoding/csv backs every field
// of a record with one shared string; keeping such a substring alive pins
// the whole record's backing, and storing it per row multiplies the heap by
// the row count. Interning stores each distinct value once.
type intern map[string]string

func (t intern) get(s string) string {
	if v, ok := t[s]; ok {
		return v
	}
	v := strings.Clone(s)
	t[v] = v
	return v
}

// ReadPipes parses a pipe table written by WritePipes.
func ReadPipes(r io.Reader) ([]Pipe, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(pipeHeader)
	// The record slice is scratch: every retained string is cloned
	// (IDs) or interned (categoricals) in parsePipe, so the reader can
	// reuse both the slice and the field backing between rows.
	cr.ReuseRecord = true
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read pipe header: %w", err)
	}
	if err := checkHeader(head, pipeHeader); err != nil {
		return nil, err
	}
	var pipes []Pipe
	tab := make(intern, 64)
	// A duplicated pipe ID would make every ID-keyed structure downstream
	// (failure joins, rank indexes) silently drop rows, so the parser
	// rejects it here rather than deferring to network validation
	// (found by FuzzReadPipes).
	seen := make(map[string]int)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read pipe line %d: %w", line, err)
		}
		p, err := parsePipe(rec, tab)
		if err != nil {
			return nil, fmt.Errorf("dataset: pipe line %d: %w", line, err)
		}
		if prev, dup := seen[p.ID]; dup {
			return nil, fmt.Errorf("dataset: pipe line %d: duplicate pipe ID %q (first seen on line %d)", line, p.ID, prev)
		}
		seen[p.ID] = line
		pipes = append(pipes, p)
	}
	return pipes, nil
}

func parsePipe(rec []string, tab intern) (Pipe, error) {
	var p Pipe
	var err error
	if rec[0] == "" {
		return p, fmt.Errorf("empty pipe id")
	}
	p.ID = strings.Clone(rec[0])
	if p.Class, err = ParsePipeClass(rec[1]); err != nil {
		return p, err
	}
	p.Material = Material(tab.get(rec[2]))
	p.Coating = Coating(tab.get(rec[3]))
	if p.DiameterMM, err = parseFloat("diameter_mm", rec[4]); err != nil {
		return p, err
	}
	if p.LengthM, err = parseFloat("length_m", rec[5]); err != nil {
		return p, err
	}
	if p.LaidYear, err = parseInt("laid_year", rec[6]); err != nil {
		return p, err
	}
	p.SoilCorrosivity = tab.get(rec[7])
	p.SoilExpansivity = tab.get(rec[8])
	p.SoilGeology = tab.get(rec[9])
	p.SoilMap = tab.get(rec[10])
	if p.DistToTrafficM, err = parseFloat("dist_traffic_m", rec[11]); err != nil {
		return p, err
	}
	if p.X, err = parseFloat("x", rec[12]); err != nil {
		return p, err
	}
	if p.Y, err = parseFloat("y", rec[13]); err != nil {
		return p, err
	}
	if p.Segments, err = parseInt("segments", rec[14]); err != nil {
		return p, err
	}
	return p, nil
}

// FailureWriter streams failure rows to a CSV log one at a time; the byte
// output is identical to WriteFailures on the same rows.
type FailureWriter struct {
	cw  *csv.Writer
	n   int
	rec [5]string
}

// NewFailureWriter writes the header and returns a row writer.
func NewFailureWriter(w io.Writer) (*FailureWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(failureHeader); err != nil {
		return nil, fmt.Errorf("dataset: write failure header: %w", err)
	}
	return &FailureWriter{cw: cw}, nil
}

// Write appends one failure row.
func (fw *FailureWriter) Write(f *Failure) error {
	fw.rec = [5]string{
		f.PipeID,
		strconv.Itoa(f.Segment),
		strconv.Itoa(f.Year),
		strconv.Itoa(f.Day),
		string(f.Mode),
	}
	if err := fw.cw.Write(fw.rec[:]); err != nil {
		return fmt.Errorf("dataset: write failure %d: %w", fw.n, err)
	}
	fw.n++
	return nil
}

// Flush completes the log; call it exactly once after the last row.
func (fw *FailureWriter) Flush() error {
	fw.cw.Flush()
	return fw.cw.Error()
}

// WriteFailures writes the failure log as CSV.
func WriteFailures(w io.Writer, failures []Failure) error {
	fw, err := NewFailureWriter(w)
	if err != nil {
		return err
	}
	for i := range failures {
		if err := fw.Write(&failures[i]); err != nil {
			return err
		}
	}
	return fw.Flush()
}

// ReadFailures parses a failure log written by WriteFailures.
func ReadFailures(r io.Reader) ([]Failure, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(failureHeader)
	cr.ReuseRecord = true
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read failure header: %w", err)
	}
	if err := checkHeader(head, failureHeader); err != nil {
		return nil, err
	}
	var out []Failure
	// Pipe IDs repeat across a failure log (a pipe fails many times), so
	// interning them both unpins the reader's reused backing array and
	// stores each ID once.
	tab := make(intern, 1024)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read failure line %d: %w", line, err)
		}
		var f Failure
		f.PipeID = tab.get(rec[0])
		if f.Segment, err = parseInt("segment", rec[1]); err != nil {
			return nil, fmt.Errorf("dataset: failure line %d: %w", line, err)
		}
		if f.Year, err = parseInt("year", rec[2]); err != nil {
			return nil, fmt.Errorf("dataset: failure line %d: %w", line, err)
		}
		if f.Day, err = parseInt("day", rec[3]); err != nil {
			return nil, fmt.Errorf("dataset: failure line %d: %w", line, err)
		}
		f.Mode = FailureMode(tab.get(rec[4]))
		out = append(out, f)
	}
	return out, nil
}

// SaveDir writes a network into dir as pipes.csv, failures.csv and meta.csv.
// The directory is created if needed.
func SaveDir(n *Network, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: create %s: %w", dir, err)
	}
	if err := writeFile(filepath.Join(dir, "pipes.csv"), func(w io.Writer) error {
		return WritePipes(w, n.Pipes())
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, "failures.csv"), func(w io.Writer) error {
		return WriteFailures(w, n.Failures())
	}); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, "meta.csv"), func(w io.Writer) error {
		return WriteMeta(w, n.Region, n.ObservedFrom, n.ObservedTo)
	})
}

// WriteMeta writes the meta.csv table (region and observation window) in
// the format SaveDir emits and LoadDir expects.
func WriteMeta(w io.Writer, region string, observedFrom, observedTo int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"region", "observed_from", "observed_to"}); err != nil {
		return err
	}
	if err := cw.Write([]string{region, strconv.Itoa(observedFrom), strconv.Itoa(observedTo)}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// LoadDir reads a network previously written by SaveDir and validates it.
func LoadDir(dir string) (*Network, error) {
	pipesF, err := os.Open(filepath.Join(dir, "pipes.csv"))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer pipesF.Close()
	pipes, err := ReadPipes(pipesF)
	if err != nil {
		return nil, err
	}

	failsF, err := os.Open(filepath.Join(dir, "failures.csv"))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer failsF.Close()
	fails, err := ReadFailures(failsF)
	if err != nil {
		return nil, err
	}

	metaF, err := os.Open(filepath.Join(dir, "meta.csv"))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer metaF.Close()
	cr := csv.NewReader(metaF)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read meta: %w", err)
	}
	if len(rows) != 2 || len(rows[1]) != 3 {
		return nil, fmt.Errorf("dataset: malformed meta.csv in %s", dir)
	}
	from, err := parseInt("observed_from", rows[1][1])
	if err != nil {
		return nil, err
	}
	to, err := parseInt("observed_to", rows[1][2])
	if err != nil {
		return nil, err
	}
	n := NewNetwork(rows[1][0], from, to, pipes, fails)
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %s failed validation: %w", dir, err)
	}
	return n, nil
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataset: close %s: %w", path, err)
	}
	return nil
}

func checkHeader(got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("dataset: header has %d fields, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("dataset: header field %d is %q, want %q", i, got[i], want[i])
		}
	}
	return nil
}

func parseFloat(field, s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("field %s: %w", field, err)
	}
	// strconv accepts "NaN" and "Inf" spellings; no pipe attribute is
	// legitimately non-finite, and silently admitting them poisons every
	// downstream statistic (found by FuzzReadPipes).
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("field %s: non-finite value %q", field, s)
	}
	return v, nil
}

func parseInt(field, s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("field %s: %w", field, err)
	}
	return v, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
