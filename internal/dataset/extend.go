package dataset

// Renewal records a registry update: the pipe was replaced (or fully
// rehabilitated) in Year, which resets its effective laid year. The
// streaming-ingest path applies renewals alongside live failures when
// rebuilding the training network.
type Renewal struct {
	PipeID string
	Year   int
}

// ExtendLive derives a new Network from n with live events applied:
// extra failures appended to the log and renewals applied to the
// registry (LaidYear := Renewal.Year for each named pipe, in order).
// The observation window's ObservedTo is extended to cover the latest
// appended failure year, so the paper's default split retrains on the
// freshest window and holds out the newest year.
//
// n is never mutated — pipes and failures are copied — and the result is
// deterministic in (n, extra, renewals): the same inputs always produce
// the same Network, which is what makes a replayed event log rebuild a
// bit-identical model. Failures referencing unknown pipes and renewals
// for absent pipes are kept/skipped respectively exactly as given;
// callers wanting integrity guarantees run Validate on the result.
func (n *Network) ExtendLive(extra []Failure, renewals []Renewal) *Network {
	pipes := make([]Pipe, len(n.pipes))
	copy(pipes, n.pipes)
	if len(renewals) > 0 {
		idx := make(map[string]int, len(pipes))
		for i := range pipes {
			idx[pipes[i].ID] = i
		}
		for _, r := range renewals {
			if i, ok := idx[r.PipeID]; ok && r.Year > pipes[i].LaidYear {
				pipes[i].LaidYear = r.Year
			}
		}
	}
	fails := make([]Failure, 0, len(n.failures)+len(extra))
	fails = append(fails, n.failures...)
	fails = append(fails, extra...)
	to := n.ObservedTo
	for i := range extra {
		if extra[i].Year > to {
			to = extra[i].Year
		}
	}
	return NewNetwork(n.Region, n.ObservedFrom, to, pipes, fails)
}
