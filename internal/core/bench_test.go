package core

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/parallel"
)

// BenchmarkFitnessEval measures one ES fitness evaluation — the unit the
// training loop performs µ+λ times per generation (3,840 times per Fit at
// the defaults). Shape mirrors a realistic pipe-year set: 20k rows, 5%
// positives, 4x negative sub-sampling, 32 features.
func BenchmarkFitnessEval(b *testing.B) {
	set := gaussianSet(1, 20000, 0.05, 1.5, 32)
	pos, neg := splitByLabel(set)
	batchNeg := 4 * len(pos)
	if batchNeg > len(neg) {
		batchNeg = len(neg)
	}
	batch := newFitnessBatch(set, pos, neg, batchNeg)
	w := make([]float64, set.Dim())
	for j := range w {
		w[j] = float64(j%5) - 2
	}
	scores := make([]float64, len(batch.rows))
	var k eval.AUCKernel
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a := batch.aucInto(w, scores, &k); a < 0 || a > 1 {
			b.Fatalf("AUC %v", a)
		}
	}
}

// BenchmarkScoreAllFlat measures the full-set scoring pass (exact-final
// re-ranking and serve-side scoring) over a dense flat-backed set.
func BenchmarkScoreAllFlat(b *testing.B) {
	set := gaussianSet(2, 20000, 0.05, 1.5, 32)
	w := make([]float64, set.Dim())
	for j := range w {
		w[j] = float64(j%5) - 2
	}
	pool := parallel.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores := scoreAllPar(set, w, pool)
		if len(scores) != set.Len() {
			b.Fatal("bad scores")
		}
	}
}
