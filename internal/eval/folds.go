package eval

import (
	"fmt"

	"repro/internal/stats"
)

// KFold partitions n items into k shuffled folds of near-equal size,
// returning the item indices per fold. It errors when k is out of [2, n].
func KFold(n, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k-fold k=%d < 2", k)
	}
	if k > n {
		return nil, fmt.Errorf("eval: k-fold k=%d > n=%d", k, n)
	}
	perm := stats.NewRNG(seed).Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	return folds, nil
}

// StratifiedKFold partitions items into k folds preserving the positive
// rate per fold — essential under the extreme class imbalance of failure
// data, where plain folds can end up with zero positives.
func StratifiedKFold(labels []bool, k int, seed int64) ([][]int, error) {
	n := len(labels)
	if k < 2 {
		return nil, fmt.Errorf("eval: stratified k-fold k=%d < 2", k)
	}
	if k > n {
		return nil, fmt.Errorf("eval: stratified k-fold k=%d > n=%d", k, n)
	}
	rng := stats.NewRNG(seed)
	var pos, neg []int
	for i, v := range labels {
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, p := range pos {
		folds[i%k] = append(folds[i%k], p)
	}
	for i, p := range neg {
		folds[i%k] = append(folds[i%k], p)
	}
	return folds, nil
}

// TrainIndices returns every index not in folds[holdout] — the training
// complement of one fold.
func TrainIndices(folds [][]int, holdout int) ([]int, error) {
	if holdout < 0 || holdout >= len(folds) {
		return nil, fmt.Errorf("eval: holdout fold %d out of range [0,%d)", holdout, len(folds))
	}
	var out []int
	for i, f := range folds {
		if i == holdout {
			continue
		}
		out = append(out, f...)
	}
	return out, nil
}
