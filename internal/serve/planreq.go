package serve

// Zero-allocation decoding of the POST /api/v1 plan request body. The
// body is a tiny flat JSON object with a fixed key set, and the cached
// plan path must not allocate, so a hand-rolled scanner handles the
// common shape (simple strings, plain numbers, unknown scalar keys)
// without touching the heap. Anything it is not absolutely sure about —
// escapes, non-ASCII strings, nested values, exotic numbers, malformed
// input — falls back to encoding/json over the same bytes, so the
// accepted language and every error message are exactly the stdlib
// decoder's. The fast path's accept-set is a strict subset of the
// fallback's: it never admits a body encoding/json would reject, and it
// decodes to the same values.

import "strconv"

// planFields is the decoded plan request: value fields plus presence
// flags instead of pointers, so the fast path fills it without
// allocating. model and region alias the request body buffer and are
// only valid while that buffer is.
type planFields struct {
	model    []byte
	region   []byte
	budgetKM float64
	maxPipes int

	inspPerKM float64
	failCost  float64
	maxSpend  float64
	hasInsp   bool
	hasFail   bool
	hasSpend  bool
}

// parsePlanFast decodes data into pf. It returns false when the body is
// outside its strict subset (including any malformed input), in which
// case the caller must re-decode with encoding/json — both for bodies
// the stdlib would accept and for its exact error text on ones it
// would not.
func parsePlanFast(data []byte, pf *planFields) bool {
	i := skipJSONSpace(data, 0)
	if i >= len(data) || data[i] != '{' {
		return false
	}
	i = skipJSONSpace(data, i+1)
	if i < len(data) && data[i] == '}' {
		return true // empty object; trailing bytes ignored like json.Decoder
	}
	for {
		key, next, ok := scanJSONString(data, i)
		if !ok {
			return false
		}
		i = skipJSONSpace(data, next)
		if i >= len(data) || data[i] != ':' {
			return false
		}
		i = skipJSONSpace(data, i+1)
		if i >= len(data) {
			return false
		}
		switch data[i] {
		case '"':
			val, next, ok := scanJSONString(data, i)
			if !ok {
				return false
			}
			i = next
			// A string is only valid for "model"/"region"; a string in a
			// numeric field must fail with the stdlib's error text.
			switch string(key) {
			case "model":
				pf.model = val
			case "region":
				pf.region = val
			case "budget_km", "max_pipes", "inspection_per_km", "failure_cost", "max_spend":
				return false
			}
		case '-', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
			tok, next, ok := scanJSONNumber(data, i)
			if !ok {
				return false
			}
			i = next
			switch string(key) {
			case "model", "region":
				return false // number into a string field: stdlib error
			case "budget_km":
				f, ok := parseJSONFloat(tok)
				if !ok {
					return false
				}
				pf.budgetKM = f
			case "max_pipes":
				n, ok := parseJSONInt(tok)
				if !ok {
					return false
				}
				pf.maxPipes = n
			case "inspection_per_km":
				f, ok := parseJSONFloat(tok)
				if !ok {
					return false
				}
				pf.inspPerKM, pf.hasInsp = f, true
			case "failure_cost":
				f, ok := parseJSONFloat(tok)
				if !ok {
					return false
				}
				pf.failCost, pf.hasFail = f, true
			case "max_spend":
				f, ok := parseJSONFloat(tok)
				if !ok {
					return false
				}
				pf.maxSpend, pf.hasSpend = f, true
			}
		default:
			// true/false/null/object/array — even under unknown keys the
			// stdlib has opinions (and for known keys, type errors or
			// null no-ops); let it decide.
			return false
		}
		i = skipJSONSpace(data, i)
		if i >= len(data) {
			return false
		}
		switch data[i] {
		case ',':
			i = skipJSONSpace(data, i+1)
		case '}':
			return true // trailing bytes ignored, matching json.Decoder
		default:
			return false
		}
	}
}

func skipJSONSpace(b []byte, i int) int {
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\n' || b[i] == '\r') {
		i++
	}
	return i
}

// scanJSONString scans a double-quoted string starting at b[i],
// returning the unescaped content. Escapes, control bytes and non-ASCII
// are out of the subset (encoding/json replaces invalid UTF-8, which a
// byte alias cannot reproduce).
func scanJSONString(b []byte, i int) (val []byte, next int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, 0, false
	}
	j := i + 1
	for j < len(b) {
		c := b[j]
		if c == '"' {
			return b[i+1 : j], j + 1, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, 0, false
		}
		j++
	}
	return nil, 0, false
}

// scanJSONNumber scans a number token under the strict JSON grammar
// (no leading zeros, no bare '.', exponent needs digits).
func scanJSONNumber(b []byte, i int) (tok []byte, next int, ok bool) {
	start := i
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return nil, 0, false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, 0, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, 0, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	return b[start:i], i, true
}

// parseJSONInt parses an integer token; fractions, exponents and
// overflow are outside the subset (the stdlib rejects them for int
// fields with its own message).
func parseJSONInt(tok []byte) (int, bool) {
	i, neg := 0, false
	if i < len(tok) && tok[i] == '-' {
		neg, i = true, 1
	}
	var n int64
	for ; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, false // '.' or exponent: not an int literal
		}
		n = n*10 + int64(c-'0')
		if n > 1<<53 {
			return 0, false // defer giant values to the stdlib
		}
	}
	if neg {
		n = -n
	}
	return int(n), true
}

// parseJSONFloat converts a JSON number token exactly as
// strconv.ParseFloat would, allocation-free on the classic exact fast
// path: a mantissa of ≤ 15 digits and a decimal exponent within ±22
// are both exactly representable as float64s, so one multiply or
// divide is correctly rounded (Gay 1990; the same fast path strconv
// itself uses). Everything else takes one ParseFloat string allocation
// — off the zero-alloc path, but bit-identical.
func parseJSONFloat(tok []byte) (float64, bool) {
	i, neg := 0, false
	if i < len(tok) && tok[i] == '-' {
		neg, i = true, 1
	}
	var mant uint64
	digits := 0
	decExp := 0
	for ; i < len(tok); i++ {
		c := tok[i]
		if c >= '0' && c <= '9' {
			if digits >= 16 {
				return parseFloatSlow(tok)
			}
			if mant > 0 || c != '0' {
				mant = mant*10 + uint64(c-'0')
				digits++
			}
			continue
		}
		break
	}
	if i < len(tok) && tok[i] == '.' {
		i++
		for ; i < len(tok); i++ {
			c := tok[i]
			if c < '0' || c > '9' {
				break
			}
			if digits >= 16 {
				return parseFloatSlow(tok)
			}
			if mant > 0 || c != '0' {
				mant = mant*10 + uint64(c-'0')
				digits++
			}
			decExp--
		}
	}
	if i < len(tok) && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		eneg := false
		if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
			eneg = tok[i] == '-'
			i++
		}
		e := 0
		for ; i < len(tok); i++ {
			e = e*10 + int(tok[i]-'0')
			if e > 400 {
				return parseFloatSlow(tok)
			}
		}
		if eneg {
			e = -e
		}
		decExp += e
	}
	if digits > 15 || decExp < -22 || decExp > 22 {
		return parseFloatSlow(tok)
	}
	f := float64(mant)
	switch {
	case decExp > 0:
		f *= pow10[decExp]
	case decExp < 0:
		f /= pow10[-decExp]
	}
	if neg {
		f = -f
	}
	return f, true
}

// pow10[i] = 10^i exactly, for 0 ≤ i ≤ 22 (the largest power of ten a
// float64 represents exactly).
var pow10 = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

func parseFloatSlow(tok []byte) (float64, bool) {
	f, err := strconv.ParseFloat(string(tok), 64)
	return f, err == nil
}
