// Package tune provides model selection by stratified cross-validation on
// the training window — the standard data-mining practice for picking
// hyperparameters (regularization strengths, ensemble sizes, ES budgets)
// without touching the held-out test year.
package tune

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/feature"
)

// Candidate is one hyperparameter configuration under selection.
type Candidate struct {
	// Label identifies the configuration in reports (e.g. "lambda=1e-4").
	Label string
	// Make constructs a fresh, unfitted model with the configuration.
	Make func() core.Model
}

// Result is the cross-validated score of one candidate.
type Result struct {
	Label string
	// MeanAUC is the mean validation AUC across folds.
	MeanAUC float64
	// FoldAUCs are the per-fold validation AUCs.
	FoldAUCs []float64
}

// SelectByCV scores every candidate with k-fold stratified cross-validation
// over the training instances and returns the results sorted best-first.
// Instances are assigned to folds by row (pipe-years of the same pipe can
// land in different folds; for hyperparameter selection this optimistic
// granularity is standard and cheap).
func SelectByCV(train *feature.Set, cands []Candidate, k int, seed int64) ([]Result, error) {
	if train == nil || train.Len() == 0 {
		return nil, fmt.Errorf("tune: empty training set")
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("tune: no candidates")
	}
	folds, err := eval.StratifiedKFold(train.Label, k, seed)
	if err != nil {
		return nil, fmt.Errorf("tune: %w", err)
	}

	results := make([]Result, 0, len(cands))
	for _, cand := range cands {
		r := Result{Label: cand.Label}
		for hi := range folds {
			trIdx, err := eval.TrainIndices(folds, hi)
			if err != nil {
				return nil, fmt.Errorf("tune: %w", err)
			}
			trSet := subset(train, trIdx)
			vaSet := subset(train, folds[hi])
			m := cand.Make()
			if err := m.Fit(trSet); err != nil {
				return nil, fmt.Errorf("tune: fit %s fold %d: %w", cand.Label, hi, err)
			}
			scores, err := m.Scores(vaSet)
			if err != nil {
				return nil, fmt.Errorf("tune: score %s fold %d: %w", cand.Label, hi, err)
			}
			r.FoldAUCs = append(r.FoldAUCs, eval.AUC(scores, vaSet.Label))
		}
		sum := 0.0
		for _, a := range r.FoldAUCs {
			sum += a
		}
		r.MeanAUC = sum / float64(len(r.FoldAUCs))
		results = append(results, r)
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].MeanAUC > results[j].MeanAUC })
	return results, nil
}

// Best runs SelectByCV and returns the winning candidate alongside the
// full result list.
func Best(train *feature.Set, cands []Candidate, k int, seed int64) (Candidate, []Result, error) {
	results, err := SelectByCV(train, cands, k, seed)
	if err != nil {
		return Candidate{}, nil, err
	}
	for _, c := range cands {
		if c.Label == results[0].Label {
			return c, results, nil
		}
	}
	// Unreachable: results derive from cands.
	return Candidate{}, nil, fmt.Errorf("tune: winner %q not among candidates", results[0].Label)
}

// subset builds a row-subset view of a feature set (copies the index
// slices, shares the row vectors).
func subset(s *feature.Set, rows []int) *feature.Set {
	out := &feature.Set{Names: s.Names}
	for _, i := range rows {
		out.X = append(out.X, s.X[i])
		out.Label = append(out.Label, s.Label[i])
		out.Age = append(out.Age, s.Age[i])
		out.LengthM = append(out.LengthM, s.LengthM[i])
		out.PipeIdx = append(out.PipeIdx, s.PipeIdx[i])
		out.Year = append(out.Year, s.Year[i])
	}
	return out
}
