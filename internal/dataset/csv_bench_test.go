package dataset

import (
	"bytes"
	"fmt"
	"testing"
)

// benchPipes builds a synthetic-free registry big enough that parser
// allocation behaviour dominates the measurement.
func benchPipes(n int) []Pipe {
	soils := []string{"low", "moderate", "high", "severe"}
	mats := []Material{CI, CICL, AC, DICL, PVC}
	pipes := make([]Pipe, n)
	for i := range pipes {
		pipes[i] = Pipe{
			ID:              fmt.Sprintf("BENCH-%06d", i),
			Class:           PipeClass(i % 2),
			Material:        mats[i%len(mats)],
			Coating:         "NONE",
			DiameterMM:      100 + float64(i%8)*50,
			LengthM:         40 + float64(i%13)*10,
			LaidYear:        1900 + i%100,
			SoilCorrosivity: soils[i%4],
			SoilExpansivity: soils[(i/4)%4],
			SoilGeology:     soils[(i/16)%4],
			SoilMap:         fmt.Sprintf("Z%02d", i%24),
			DistToTrafficM:  float64(i % 400),
			X:               float64(i % 1000),
			Y:               float64(i / 1000),
			Segments:        1 + i%9,
		}
	}
	return pipes
}

func benchFailures(n int) []Failure {
	fails := make([]Failure, n)
	for i := range fails {
		fails[i] = Failure{
			PipeID:  fmt.Sprintf("BENCH-%06d", i%2000),
			Segment: i % 7,
			Year:    1998 + i%12,
			Day:     i % 365,
			Mode:    FailureMode([]string{"BREAK", "LEAK"}[i%2]),
		}
	}
	return fails
}

func BenchmarkReadPipes(b *testing.B) {
	var buf bytes.Buffer
	if err := WritePipes(&buf, benchPipes(20_000)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadPipes(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFailures(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteFailures(&buf, benchFailures(40_000)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFailures(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWritePipes(b *testing.B) {
	pipes := benchPipes(20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WritePipes(&buf, pipes); err != nil {
			b.Fatal(err)
		}
	}
}
