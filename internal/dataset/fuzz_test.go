package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadPipes asserts the pipe-table parser never panics, never
// silently accepts malformed input (non-finite floats, duplicate or
// empty IDs — all found and fixed under this fuzzer), and that whatever
// it does accept survives an exact write→read round trip. The on-disk
// seed corpus in testdata/fuzz/FuzzReadPipes holds the regression
// inputs for past findings.
func FuzzReadPipes(f *testing.F) {
	var good bytes.Buffer
	if err := WritePipes(&good, testNetwork().Pipes()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("id,wrong\n")
	f.Add("")
	header := strings.Join(pipeHeader, ",") + "\n"
	// Malformed float.
	f.Add(header + "P,CWM,CICL,NONE,x,1,1,a,b,c,d,1,1,1,1\n")
	// Non-finite floats parse but must be rejected.
	f.Add(header + "P,CWM,CICL,NONE,NaN,1,1,a,b,c,d,1,1,1,1\n")
	f.Add(header + "P,CWM,CICL,NONE,300,+Inf,1,a,b,c,d,1,1,1,1\n")
	// Short record.
	f.Add(header + "P,CWM,CICL\n")
	// Duplicate and empty IDs.
	f.Add(header +
		"P,CWM,CICL,NONE,300,10,1990,a,b,c,d,1,0,0,2\n" +
		"P,CWM,CICL,NONE,300,10,1990,a,b,c,d,1,0,0,2\n")
	f.Add(header + ",CWM,CICL,NONE,300,10,1990,a,b,c,d,1,0,0,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		pipes, err := ReadPipes(strings.NewReader(input))
		if err != nil {
			return
		}
		for i := range pipes {
			if pipes[i].ID == "" {
				t.Fatalf("accepted pipe %d with empty ID", i)
			}
		}
		// Whatever parsed must round-trip exactly: the writer's output
		// re-parses to the identical slice.
		var buf bytes.Buffer
		if werr := WritePipes(&buf, pipes); werr != nil {
			t.Fatalf("round trip write failed: %v", werr)
		}
		back, rerr := ReadPipes(&buf)
		if rerr != nil {
			t.Fatalf("round trip read failed: %v", rerr)
		}
		if !reflect.DeepEqual(pipes, back) {
			t.Fatalf("round trip not identical:\n first=%+v\nsecond=%+v", pipes, back)
		}
	})
}

// FuzzReadFailures mirrors FuzzReadPipes for the failure log.
func FuzzReadFailures(f *testing.F) {
	var good bytes.Buffer
	if err := WriteFailures(&good, testNetwork().Failures()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	header := strings.Join(failureHeader, ",") + "\n"
	f.Add(header + "P,0,2000,1,BREAK\n")
	f.Add(header + "P,a,b,c,BREAK\n")
	// Short record and trailing garbage.
	f.Add(header + "P,0\n")
	f.Add(header + "P,0,2000,1,BREAK,extra\n")
	f.Fuzz(func(t *testing.T, input string) {
		fails, err := ReadFailures(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteFailures(&buf, fails); werr != nil {
			t.Fatalf("round trip write failed: %v", werr)
		}
		back, rerr := ReadFailures(&buf)
		if rerr != nil {
			t.Fatalf("round trip read failed: %v", rerr)
		}
		if !reflect.DeepEqual(fails, back) {
			t.Fatalf("round trip not identical:\n first=%+v\nsecond=%+v", fails, back)
		}
	})
}
