package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/feature"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// ES progress metrics, accumulated once per Fit (never inside the
// per-offspring loops) so instrumentation stays off the hot path.
var (
	esGenerations  = obs.Default().Counter("core.es.generations")
	esFitnessEvals = obs.Default().Counter("core.es.fitness_evals")
)

// DirectAUCConfig tunes the evolution strategy behind DirectAUC.
// Zero values take the documented defaults.
type DirectAUCConfig struct {
	// Seed drives all randomness of the optimizer.
	Seed int64
	// Mu is the parent population size (default 8).
	Mu int
	// Lambda is the offspring count per generation (default 24).
	Lambda int
	// Generations is the number of ES generations (default 120).
	Generations int
	// InitSigma is the initial mutation step size (default 0.5).
	InitSigma float64
	// BatchNegatives caps the number of negative instances in each
	// generation's fitness batch; all positives are always included
	// (default: 4x the positive count). Sub-sampling keeps each fitness
	// evaluation cheap on pipe-year sets with hundreds of thousands of
	// rows while leaving the objective unbiased in expectation.
	BatchNegatives int
	// ExactFinal, when true, re-ranks the final parents by exact AUC on
	// the full training set before picking the winner (default true via
	// DefaultDirectAUCConfig; the ablation bench switches it off).
	ExactFinal bool
	// DisableWarmStart skips seeding the population with the pairwise
	// hinge (RankSVM) solution. The warm start gives the ES a strong
	// convex starting point that it then refines on the exact, not the
	// surrogate, objective; the ablation bench switches it off.
	DisableWarmStart bool
	// Workers bounds the fitness-evaluation worker pool (0 = GOMAXPROCS,
	// 1 = fully serial). Results are bit-identical for every value: all
	// RNG draws (batch resampling, parent selection, mutation) stay on
	// the caller's goroutine in serial order, and only the pure
	// scoring/AUC evaluations fan out, each offspring writing its own
	// fitness slot.
	Workers int
}

// DefaultDirectAUCConfig returns the defaults used by the experiments.
func DefaultDirectAUCConfig(seed int64) DirectAUCConfig {
	return DirectAUCConfig{
		Seed:        seed,
		Mu:          8,
		Lambda:      24,
		Generations: 120,
		InitSigma:   0.5,
		ExactFinal:  true,
	}
}

func (c *DirectAUCConfig) fillDefaults() {
	if c.Mu <= 0 {
		c.Mu = 8
	}
	if c.Lambda <= 0 {
		c.Lambda = 24
	}
	if c.Generations <= 0 {
		c.Generations = 120
	}
	if c.InitSigma <= 0 {
		c.InitSigma = 0.5
	}
}

// DirectAUC is the paper's method: a linear scoring function H(x) = w·x
// whose weights are found by a self-adaptive (µ+λ) evolution strategy that
// maximizes the empirical AUC directly. Because the objective is a step
// function of w, gradient methods need surrogates; the ES does not.
type DirectAUC struct {
	cfg DirectAUCConfig
	// W is the learned weight vector (exported after Fit for inspection
	// and persistence).
	W []float64
	// TrainAUC is the exact training AUC of the selected weights.
	TrainAUC float64
}

// NewDirectAUC returns an unfitted DirectAUC learner.
func NewDirectAUC(cfg DirectAUCConfig) *DirectAUC {
	cfg.fillDefaults()
	return &DirectAUC{cfg: cfg}
}

// Name implements Model.
func (d *DirectAUC) Name() string { return "DirectAUC-ES" }

type esIndividual struct {
	w     []float64
	sigma float64
	fit   float64
}

// Fit implements Model. The optimization is deterministic given the
// configuration seed.
func (d *DirectAUC) Fit(train *feature.Set) error {
	return d.FitContext(context.Background(), train)
}

// FitContext implements ContextFitter: Fit with a cancellation check at
// the top of every ES generation (and before the final exact-AUC pass).
// A run cancelled at generation k consumed exactly the same RNG stream as
// an uncancelled run up to k, so re-running uncancelled reproduces the
// never-cancelled weights bit for bit.
func (d *DirectAUC) FitContext(ctx context.Context, train *feature.Set) error {
	if err := validateFitInputs(train); err != nil {
		return fmt.Errorf("%s: %w", d.Name(), err)
	}
	rng := stats.NewRNG(d.cfg.Seed)
	dim := train.Dim()
	pos, neg := splitByLabel(train)

	batchNeg := d.cfg.BatchNegatives
	if batchNeg <= 0 {
		batchNeg = 4 * len(pos)
	}
	if batchNeg > len(neg) {
		batchNeg = len(neg)
	}

	// Seed population: small random weights plus two informed individuals —
	// the positive-minus-negative class-mean direction, and (unless
	// disabled) the pairwise hinge surrogate solution, which the ES then
	// refines against the exact AUC objective instead of the surrogate.
	meanDiff := classMeanDiff(train, pos, neg)
	var warm []float64
	if !d.cfg.DisableWarmStart {
		svm := NewRankSVM(RankSVMConfig{Seed: d.cfg.Seed + 7919, Epochs: 10})
		if err := svm.FitContext(ctx, train); err == nil {
			warm = svm.W
		} else if ctx.Err() != nil {
			return fmt.Errorf("%s: cancelled during warm start: %w", d.Name(), ctx.Err())
		}
	}
	parents := make([]esIndividual, d.cfg.Mu)
	for i := range parents {
		w := make([]float64, dim)
		for j := range w {
			w[j] = rng.Normal(0, 0.1)
		}
		switch {
		case i == 0 && warm != nil:
			copy(w, warm)
		case i == 1:
			copy(w, meanDiff)
		}
		parents[i] = esIndividual{w: w, sigma: d.cfg.InitSigma}
	}

	// tauSelf is the standard self-adaptation learning rate 1/sqrt(2n).
	tauSelf := 1 / math.Sqrt(2*float64(dim))

	// Fitness evaluations are pure in the weights given the generation's
	// batch, so they fan out across the pool; each worker owns a scratch
	// score buffer so concurrent evaluations never share state. Parent
	// fitness is first assigned inside the generation loop (generation 0
	// evaluates every parent on its first batch).
	pool := parallel.New(d.cfg.Workers)
	batch := newFitnessBatch(train, pos, neg, batchNeg)
	type fitScratch struct {
		scores []float64
		auc    eval.AUCKernel
	}
	scratch := make([]fitScratch, pool.Workers())
	for i := range scratch {
		scratch[i].scores = make([]float64, len(batch.rows))
	}

	offspring := make([]esIndividual, 0, d.cfg.Lambda)
	// merged is the (µ+λ) selection pool, reused every generation.
	merged := make([]esIndividual, 0, d.cfg.Mu+d.cfg.Lambda)
	cancelledAt := func(gen int, err error) error {
		esGenerations.Add(int64(gen))
		esFitnessEvals.Add(int64(gen * (d.cfg.Mu + d.cfg.Lambda)))
		return fmt.Errorf("%s: cancelled at generation %d: %w", d.Name(), gen, err)
	}
	for gen := 0; gen < d.cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return cancelledAt(gen, err)
		}
		// Fresh negative sub-sample each generation: all candidates within
		// a generation share the batch so their fitnesses are comparable,
		// while resampling across generations prevents overfitting the
		// subsample.
		batch.resample(rng)

		// Re-evaluate parents on the new batch. RunCtx: the fitness fan-out
		// is the generation's dominant cost, so cancellation also aborts
		// between chunks inside a generation, not only at its top.
		if err := pool.RunCtx(ctx, len(parents), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				parents[i].fit = batch.aucInto(parents[i].w, scratch[w].scores, &scratch[w].auc)
			}
		}); err != nil {
			return cancelledAt(gen, err)
		}

		// Mutation stays on this goroutine: every RNG draw happens in the
		// same order as a fully serial run, for any worker count.
		offspring = offspring[:0]
		for k := 0; k < d.cfg.Lambda; k++ {
			p := parents[rng.Intn(len(parents))]
			child := esIndividual{
				w:     linalg.Clone(p.w),
				sigma: p.sigma * math.Exp(tauSelf*rng.Norm()),
			}
			if child.sigma < 1e-6 {
				child.sigma = 1e-6
			}
			for j := range child.w {
				child.w[j] += child.sigma * rng.Norm()
			}
			offspring = append(offspring, child)
		}
		// Only scoring fans out; each offspring owns its fitness slot.
		if err := pool.RunCtx(ctx, len(offspring), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				offspring[i].fit = batch.aucInto(offspring[i].w, scratch[w].scores, &scratch[w].auc)
			}
		}); err != nil {
			return cancelledAt(gen, err)
		}

		// (µ+λ) selection: sort the merged pool by fitness (descending)
		// and keep the best µ as the next parents.
		merged = merged[:0]
		merged = append(merged, parents...)
		merged = append(merged, offspring...)
		sortByFitnessDesc(merged)
		copy(parents, merged[:d.cfg.Mu])
	}

	esGenerations.Add(int64(d.cfg.Generations))
	esFitnessEvals.Add(int64(d.cfg.Generations * (d.cfg.Mu + d.cfg.Lambda)))

	// Pick the winner, optionally by exact full-set AUC.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: cancelled before final selection: %w", d.Name(), err)
	}
	// The full-set passes reuse one pool-fanned kernel: scratch persists
	// across the µ re-rankings, and the counting pass itself fans out over
	// the same pool as scoring (per-worker count slabs keep the result
	// bit-identical to a serial pass).
	finalKernel := eval.AUCKernel{Pool: pool}
	best := parents[0]
	if d.cfg.ExactFinal {
		bestAUC := math.Inf(-1)
		for _, p := range parents {
			scores := scoreAllPar(train, p.w, pool)
			a := finalKernel.Compute(scores, train.Label)
			if a > bestAUC {
				bestAUC = a
				best = p
				best.fit = a
			}
		}
		d.TrainAUC = bestAUC
	} else {
		d.TrainAUC = finalKernel.Compute(scoreAllPar(train, best.w, pool), train.Label)
	}
	d.W = linalg.Clone(best.w)
	return nil
}

// Scores implements Model.
func (d *DirectAUC) Scores(test *feature.Set) ([]float64, error) {
	if d.W == nil {
		return nil, fmt.Errorf("%s: Scores before Fit", d.Name())
	}
	if test.Dim() != len(d.W) {
		return nil, fmt.Errorf("%s: test dim %d != model dim %d", d.Name(), test.Dim(), len(d.W))
	}
	return scoreAllPar(test, d.W, parallel.New(d.cfg.Workers)), nil
}

func scoreAll(s *feature.Set, w []float64) []float64 {
	return scoreAllPar(s, w, parallel.Pool{})
}

// scoreAllPar is scoreAll with the row loop fanned out across the pool;
// each row writes only its own output slot, so the result is identical
// for any worker count. Sets with a flat backing (everything the feature
// builder produces) take the contiguous MatVec path; hand-assembled view
// sets fall back to per-row dots with identical results, since MatVec is
// defined as Dot per row.
func scoreAllPar(s *feature.Set, w []float64, pool parallel.Pool) []float64 {
	out := make([]float64, s.Len())
	flat, stride := s.Flat()
	pool.Run(s.Len(), func(_, lo, hi int) {
		if flat != nil {
			linalg.MatVec(out[lo:hi], flat[lo*stride:hi*stride], stride, w)
			return
		}
		for i := lo; i < hi; i++ {
			out[i] = linalg.Dot(s.X[i], w)
		}
	})
	return out
}

func classMeanDiff(s *feature.Set, pos, neg []int) []float64 {
	d := s.Dim()
	mp, mn := make([]float64, d), make([]float64, d)
	for _, i := range pos {
		linalg.Axpy(1, s.X[i], mp)
	}
	for _, i := range neg {
		linalg.Axpy(1, s.X[i], mn)
	}
	linalg.Scale(1/float64(len(pos)), mp)
	linalg.Scale(1/float64(len(neg)), mn)
	return linalg.Sub(mp, mn)
}

// sortByFitnessDesc sorts individuals by fitness, best first. Insertion
// sort is stable and the pools are tiny (µ+λ).
func sortByFitnessDesc(all []esIndividual) {
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].fit > all[j-1].fit; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
}

// fitnessBatch evaluates sampled-pair AUC: all positives against a
// refreshed subsample of negatives. The batch rows are gathered into a
// dense contiguous sub-matrix (sub) once per resample, so each of the
// µ+λ fitness evaluations per generation is a single sequential MatVec
// over the gathered block instead of a pointer-chased pass over row
// views.
type fitnessBatch struct {
	set      *feature.Set
	pos, neg []int
	batchNeg int
	rows     []int
	labels   []bool
	sub      []float64 // dense row-major gather of rows, len(rows) x stride
	stride   int
	scores   []float64      // scratch for the serial auc() convenience
	kernel   eval.AUCKernel // ditto
}

func newFitnessBatch(s *feature.Set, pos, neg []int, batchNeg int) *fitnessBatch {
	b := &fitnessBatch{set: s, pos: pos, neg: neg, batchNeg: batchNeg, stride: s.Dim()}
	b.rows = make([]int, 0, len(pos)+batchNeg)
	b.labels = make([]bool, 0, len(pos)+batchNeg)
	b.rows = append(b.rows, pos...)
	for range pos {
		b.labels = append(b.labels, true)
	}
	// Until the first resample, use the leading negatives.
	for i := 0; i < batchNeg; i++ {
		b.rows = append(b.rows, neg[i])
		b.labels = append(b.labels, false)
	}
	b.sub = make([]float64, len(b.rows)*b.stride)
	b.gather(0, len(b.rows))
	b.scores = make([]float64, len(b.rows))
	return b
}

// gather copies rows [lo, hi) of the batch into the dense sub-matrix.
// Positives occupy the leading block and never change, so resample only
// re-gathers the negative tail.
func (b *fitnessBatch) gather(lo, hi int) {
	for i := lo; i < hi; i++ {
		copy(b.sub[i*b.stride:(i+1)*b.stride], b.set.X[b.rows[i]])
	}
}

func (b *fitnessBatch) resample(rng *stats.RNG) {
	sample := rng.SampleWithoutReplacement(len(b.neg), b.batchNeg)
	for i, s := range sample {
		b.rows[len(b.pos)+i] = b.neg[s]
	}
	b.gather(len(b.pos), len(b.rows))
}

func (b *fitnessBatch) auc(w []float64) float64 {
	return b.aucInto(w, b.scores, &b.kernel)
}

// aucInto is auc with caller-owned score and sort scratch (one pair per
// worker), so concurrent evaluations never share state.
func (b *fitnessBatch) aucInto(w, scores []float64, k *eval.AUCKernel) float64 {
	linalg.MatVec(scores, b.sub, b.stride, w)
	return k.Compute(scores, b.labels)
}
