package feature

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// buildNet constructs a deterministic 4-pipe network with failures placed
// so history/label logic can be verified by hand.
func buildNet() *dataset.Network {
	pipes := []dataset.Pipe{
		{ID: "P0", Class: dataset.CriticalMain, Material: dataset.CICL,
			Coating: dataset.CoatingNone, DiameterMM: 375, LengthM: 400,
			LaidYear: 1950, SoilCorrosivity: "HIGH", SoilExpansivity: "SLIGHT",
			SoilGeology: "CLAY", SoilMap: "FLUVIAL", DistToTrafficM: 10, Segments: 4},
		{ID: "P1", Class: dataset.ReticulationMain, Material: dataset.PVC,
			Coating: dataset.CoatingNone, DiameterMM: 100, LengthM: 80,
			LaidYear: 1985, SoilCorrosivity: "LOW", SoilExpansivity: "STABLE",
			SoilGeology: "SANDSTONE", SoilMap: "RESIDUAL", DistToTrafficM: 500, Segments: 1},
		{ID: "P2", Class: dataset.CriticalMain, Material: dataset.CI,
			Coating: dataset.CoatingTar, DiameterMM: 450, LengthM: 900,
			LaidYear: 1935, SoilCorrosivity: "SEVERE", SoilExpansivity: "HIGH",
			SoilGeology: "SHALE", SoilMap: "SWAMP", DistToTrafficM: 3, Segments: 9},
		{ID: "P3", Class: dataset.ReticulationMain, Material: dataset.AC,
			Coating: dataset.CoatingNone, DiameterMM: 150, LengthM: 200,
			LaidYear: 2003, SoilCorrosivity: "MODERATE", SoilExpansivity: "MODERATE",
			SoilGeology: "ALLUVIUM", SoilMap: "EROSIONAL", DistToTrafficM: 60, Segments: 2},
	}
	fails := []dataset.Failure{
		{PipeID: "P2", Segment: 1, Year: 2000, Day: 10, Mode: dataset.ModeBreak},
		{PipeID: "P2", Segment: 2, Year: 2004, Day: 50, Mode: dataset.ModeBreak},
		{PipeID: "P0", Segment: 0, Year: 2005, Day: 99, Mode: dataset.ModeLeak},
		{PipeID: "P2", Segment: 3, Year: 2009, Day: 200, Mode: dataset.ModeBreak},
	}
	return dataset.NewNetwork("F", 1998, 2009, pipes, fails)
}

func mustSplit(t *testing.T, n *dataset.Network) dataset.Split {
	t.Helper()
	s, err := dataset.PaperSplit(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuilderDefaultsToAllGroups(t *testing.T) {
	b, err := NewBuilder(buildNet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := b.Names()
	for _, want := range []string{"material=", "coating=", "age", "log_diameter",
		"soil_corr=", "soil_exp=", "soil_geo=", "soil_map=", "log_dist_traffic", "prior_failures"} {
		found := false
		for _, n := range names {
			if strings.Contains(n, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("feature name containing %q missing from %v", want, names)
		}
	}
	if b.Dim() != len(names) {
		t.Fatal("Dim mismatch")
	}
}

func TestNilNetworkRejected(t *testing.T) {
	if _, err := NewBuilder(nil, Options{}); err == nil {
		t.Fatal("nil network must error")
	}
}

func TestTrainSetShapeAndLaidFilter(t *testing.T) {
	net := buildNet()
	b, err := NewBuilder(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	split := mustSplit(t, net) // train 1998-2008, test 2009
	tr, err := b.TrainSet(split)
	if err != nil {
		t.Fatal(err)
	}
	// P0, P1, P2 active all 11 years; P3 laid 2003, active 2003-2008 = 6.
	want := 3*11 + 6
	if tr.Len() != want {
		t.Fatalf("train rows = %d, want %d", tr.Len(), want)
	}
	if tr.Dim() != b.Dim() {
		t.Fatal("dim mismatch")
	}
	// Labels: P2 failed 2000, 2004; P0 failed 2005 → 3 positives in train.
	if got := tr.Positives(); got != 3 {
		t.Fatalf("train positives = %d, want 3", got)
	}
	for i := range tr.X {
		if len(tr.X[i]) != tr.Dim() {
			t.Fatal("ragged matrix")
		}
	}
}

func TestTestSetShape(t *testing.T) {
	net := buildNet()
	b, err := NewBuilder(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	split := mustSplit(t, net)
	if _, err := b.TestSet(split); err == nil {
		t.Fatal("TestSet before TrainSet must error")
	}
	if _, err := b.TrainSet(split); err != nil {
		t.Fatal(err)
	}
	te, err := b.TestSet(split)
	if err != nil {
		t.Fatal(err)
	}
	if te.Len() != 4 {
		t.Fatalf("test rows = %d, want 4", te.Len())
	}
	// Only P2 failed in 2009.
	if te.Positives() != 1 {
		t.Fatalf("test positives = %d", te.Positives())
	}
	if !te.Label[2] {
		t.Fatal("P2 must be the positive")
	}
}

func TestHistoryFeatureNoLeakage(t *testing.T) {
	net := buildNet()
	b, err := NewBuilder(net, Options{Groups: Groups{History: true}})
	if err != nil {
		t.Fatal(err)
	}
	split := mustSplit(t, net)
	tr, err := b.TrainSet(split)
	if err != nil {
		t.Fatal(err)
	}
	// Without standardization the raw counts are inspectable.
	// Locate P2's instance for year 2004: prior failures in [1998, 2003] = 1.
	var found bool
	for i := range tr.X {
		if tr.PipeIdx[i] == 2 && tr.Year[i] == 2004 {
			found = true
			if tr.X[i][0] != 1 {
				t.Fatalf("P2@2004 prior_failures = %v, want 1 (no leakage of the 2004 event)", tr.X[i][0])
			}
			if tr.X[i][1] != 1 {
				t.Fatalf("P2@2004 had_failure = %v", tr.X[i][1])
			}
			if !tr.Label[i] {
				t.Fatal("P2@2004 must be labelled positive")
			}
		}
		if tr.PipeIdx[i] == 2 && tr.Year[i] == 1998 {
			if tr.X[i][0] != 0 {
				t.Fatalf("P2@1998 prior_failures = %v, want 0", tr.X[i][0])
			}
		}
	}
	if !found {
		t.Fatal("P2@2004 instance missing")
	}
	// Test set: P2 prior failures over the whole train window = 2.
	te, err := b.TestSet(split)
	if err != nil {
		t.Fatal(err)
	}
	if te.X[2][0] != 2 {
		t.Fatalf("P2 test prior_failures = %v, want 2", te.X[2][0])
	}
}

func TestStandardizationTrainStats(t *testing.T) {
	net := buildNet()
	b, err := NewBuilder(net, Options{Groups: Groups{Age: true, Geometry: true}, Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	split := mustSplit(t, net)
	tr, err := b.TrainSet(split)
	if err != nil {
		t.Fatal(err)
	}
	// Every numeric column must have ~zero mean and ~unit variance on train.
	for j := 0; j < tr.Dim(); j++ {
		sum, ss := 0.0, 0.0
		for _, row := range tr.X {
			sum += row[j]
		}
		mean := sum / float64(tr.Len())
		for _, row := range tr.X {
			d := row[j] - mean
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(tr.Len()))
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean %v after standardization", j, mean)
		}
		if math.Abs(sd-1) > 1e-9 {
			t.Fatalf("column %d sd %v after standardization", j, sd)
		}
	}
}

func TestOneHotExactlyOnePerFactor(t *testing.T) {
	net := buildNet()
	b, err := NewBuilder(net, Options{Groups: Groups{Material: true, Soil: true}})
	if err != nil {
		t.Fatal(err)
	}
	split := mustSplit(t, net)
	tr, err := b.TrainSet(split)
	if err != nil {
		t.Fatal(err)
	}
	names := b.Names()
	prefixes := []string{"material=", "coating=", "soil_corr=", "soil_exp=", "soil_geo=", "soil_map="}
	for _, row := range tr.X {
		for _, pre := range prefixes {
			s := 0.0
			for j, n := range names {
				if strings.HasPrefix(n, pre) {
					s += row[j]
				}
			}
			if s != 1 {
				t.Fatalf("one-hot group %s sums to %v", pre, s)
			}
		}
	}
}

func TestGroupsWithout(t *testing.T) {
	g := AllGroups()
	for _, name := range []string{"material", "age", "geometry", "soil", "traffic", "history"} {
		got, err := g.Without(name)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Any() {
			t.Fatal("removing one group must leave others")
		}
	}
	if _, err := g.Without("bogus"); err == nil {
		t.Fatal("unknown group must error")
	}
	var none Groups
	if none.Any() {
		t.Fatal("zero Groups must report none")
	}
}

func TestSetMatrix(t *testing.T) {
	net := buildNet()
	b, err := NewBuilder(net, Options{Groups: Groups{Age: true}})
	if err != nil {
		t.Fatal(err)
	}
	split := mustSplit(t, net)
	tr, err := b.TrainSet(split)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Matrix()
	if m.Rows != tr.Len() || m.Cols != tr.Dim() {
		t.Fatalf("matrix %dx%d, want %dx%d", m.Rows, m.Cols, tr.Len(), tr.Dim())
	}
	if m.At(0, 0) != tr.X[0][0] {
		t.Fatal("matrix content mismatch")
	}
}

func TestAblationChangesDim(t *testing.T) {
	net := buildNet()
	full, err := NewBuilder(net, Options{Groups: AllGroups()})
	if err != nil {
		t.Fatal(err)
	}
	noSoil, err := AllGroups().Without("soil")
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewBuilder(net, Options{Groups: noSoil})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Dim() >= full.Dim() {
		t.Fatalf("removing soil must shrink dim: %d vs %d", reduced.Dim(), full.Dim())
	}
}
