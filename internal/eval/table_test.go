package eval

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	tb := NewTable("sample", "model", "auc")
	tb.AddRow("Cox", "0.75")
	tb.AddRow("SVM", "0.80")
	return tb
}

func TestTableWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "model" || rows[2][1] != "0.80" {
		t.Fatalf("csv content %v", rows)
	}
	// The title is not part of the CSV.
	if strings.Contains(buf.String(), "sample") {
		t.Fatal("title leaked into CSV")
	}
}

func TestTableWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]string
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("objects = %d", len(out))
	}
	if out[0]["model"] != "Cox" || out[1]["auc"] != "0.80" {
		t.Fatalf("json content %v", out)
	}
}

func TestTableEmptyExport(t *testing.T) {
	tb := NewTable("empty", "a", "b")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
