package eval

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as an aligned text table, the
// format every experiment runner prints its paper-analogue tables in.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row. Rows shorter than the header are padded; longer
// rows are truncated, so sloppy callers cannot corrupt the layout.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v unless it is a float64, which gets %.4f.
func (t *Table) AddRowf(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = fmt.Sprintf("%.4f", v)
		default:
			strs[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(strs...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 { // no trailing whitespace on a line
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// WriteCSV writes the table (header + rows, no title) as CSV, for
// downstream analysis of experiment outputs.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return fmt.Errorf("eval: write table header: %w", err)
	}
	for i, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("eval: write table row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the table as a JSON array of header-keyed objects.
func (t *Table) WriteJSON(w io.Writer) error {
	out := make([]map[string]string, 0, len(t.rows))
	for _, row := range t.rows {
		m := make(map[string]string, len(t.header))
		for i, h := range t.header {
			m[h] = row[i]
		}
		out = append(out, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("eval: encode table: %w", err)
	}
	return nil
}

// FormatPercent renders a fraction as a percentage with two decimals,
// e.g. 0.8267 → "82.67%".
func FormatPercent(v float64) string {
	return fmt.Sprintf("%.2f%%", 100*v)
}

// FormatBasisPoints renders a fraction in basis points (per ten thousand),
// the unit the paper's small-budget AUC table uses, e.g. 8.09 bp.
func FormatBasisPoints(v float64) string {
	return fmt.Sprintf("%.2fbp", 10000*v)
}
