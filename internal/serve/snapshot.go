package serve

// Model snapshots: the immutable, fully materialized serving view built
// once when a training run completes. Everything a read handler needs is
// precomputed here — the ranked entry list with calibrated probabilities,
// the plan candidate slice, the pipe-ID index and the content ETag — so
// the request path is slicing and encoding, never recomputation.
//
// Invariant: a *modelSnapshot and everything reachable from it is
// read-only after newModelSnapshot returns — with one internally
// synchronized exception: planMemo, a bounded sync.Map of plan.Prefix
// structures keyed by cost model, which handlers fill lazily for
// non-default cost models. Each Prefix is itself immutable once built.
// Handlers may share one snapshot across any number of goroutines; the
// only other mutable state is the Server's copy-on-write map of name →
// snapshot (see Server.publish).

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
)

// modelSnapshot is one trained model frozen for serving.
type modelSnapshot struct {
	model      pipefail.Model
	ranking    *pipefail.Ranking
	calibrator core.Calibrator
	fitSeconds float64

	// rankIdx maps pipe ID → row in ranking, built once at train time so
	// per-request handlers never scan PipeIDs.
	rankIdx map[string]int

	// entries is the full ranking in rank order (score descending, ties
	// by row) with FailProb calibrated once; handleRanking serves
	// entries[:top] directly.
	entries []rankedPipe

	// rankOf maps a ranking row (the rankIdx value space) to its
	// 1-based rank, so the bulk per-pipe path answers "what rank is
	// this pipe" with two array reads instead of a scan.
	rankOf []int32

	// cands is the prebuilt plan.Candidate slice in ranking row order —
	// the raw input both plan.Greedy and plan.BuildPrefix consume.
	// Present only when the model calibrated.
	cands []plan.Candidate

	// planDefault is the prefix structure for the default cost model —
	// the overwhelmingly common case — built once at snapshot time so the
	// first /api/plan request already binary-searches instead of sorting.
	// Nil when the model has no calibrator or the candidates fail plan
	// validation (the per-request path reports the error).
	planDefault *plan.Prefix

	// planMemo lazily memoizes prefixes for non-default cost models,
	// keyed by the plan.CostModel value. Bounded at planMemoMax distinct
	// cost models per snapshot; past that, extra cost models rebuild per
	// request (still ~ms, the pre-PR cost) instead of growing memory on
	// attacker-chosen parameters.
	planMemo  sync.Map
	planMemoN atomic.Int32

	// etag is the strong HTTP validator (quoted, as sent on the wire)
	// derived from the model name and score bytes: any change to the
	// ranking changes the tag, and re-training the same data reproduces it.
	etag string

	// builtAt is when this snapshot was frozen; the rebuild scheduler
	// uses it to decide staleness. It does not feed the ETag, so a
	// deterministic retrain still reproduces the same validator.
	builtAt time.Time

	// eventSeq is the shard's live-event sequence this snapshot trained
	// at (0 = base network only). The scheduler treats a shard whose
	// ingest seq has advanced past it as stale, independent of age.
	eventSeq int64
}

// planMemoMax bounds the distinct non-default cost models memoized per
// snapshot.
const planMemoMax = 16

// defaultCostModel is the cost model used when a plan request carries no
// explicit pricing; its prefix is prebuilt into every snapshot.
var defaultCostModel = plan.CostModel{
	InspectionPerKM: defaultInspectionPerKM,
	FailureCost:     defaultFailureCost,
}

// prefixFor returns the plan prefix structure for cm, building and
// memoizing it on first use. builds counts actual BuildPrefix runs (the
// serve.plan.prefix_builds metric). Errors are plan validation errors —
// exactly what plan.Greedy would report for the same inputs.
func (tm *modelSnapshot) prefixFor(cm plan.CostModel, builds *obs.Counter) (*plan.Prefix, error) {
	if cm == defaultCostModel && tm.planDefault != nil {
		return tm.planDefault, nil
	}
	if px, ok := tm.planMemo.Load(cm); ok {
		return px.(*plan.Prefix), nil
	}
	builds.Inc()
	px, err := plan.BuildPrefix(tm.cands, cm)
	if err != nil {
		return nil, err
	}
	if tm.planMemoN.Load() < planMemoMax {
		if _, loaded := tm.planMemo.LoadOrStore(cm, px); !loaded {
			tm.planMemoN.Add(1)
		}
	}
	return px, nil
}

// newModelSnapshot freezes a trained model. calibrator may be nil (plans
// are refused for the model, rankings omit fail_prob); everything else
// is mandatory.
func newModelSnapshot(name string, m pipefail.Model, ranking *pipefail.Ranking, calibrator core.Calibrator, fitSeconds float64) *modelSnapshot {
	tm := &modelSnapshot{
		model:      m,
		ranking:    ranking,
		calibrator: calibrator,
		fitSeconds: fitSeconds,
		rankIdx:    make(map[string]int, ranking.Len()),
		etag:       rankingETag(name, ranking.Scores),
		builtAt:    time.Now(),
	}
	for i, id := range ranking.PipeIDs {
		tm.rankIdx[id] = i
	}

	var probs []float64
	if calibrator != nil {
		probs = calibrator.ProbAll(ranking.Scores, nil)
		tm.cands = make([]plan.Candidate, ranking.Len())
		for i, id := range ranking.PipeIDs {
			tm.cands[i] = plan.Candidate{
				ID:       id,
				FailProb: probs[i],
				LengthM:  ranking.LengthM[i],
			}
		}
		// Pay the density sort once at publish time for the default cost
		// model. A build error (out-of-range probability, zero length) is
		// deliberately not fatal: planDefault stays nil and the request
		// path rebuilds per call, surfacing the same 400 Greedy would.
		if px, err := plan.BuildPrefix(tm.cands, defaultCostModel); err == nil {
			tm.planDefault = px
		}
	}

	ids := ranking.TopIDs(ranking.Len())
	tm.entries = make([]rankedPipe, len(ids))
	tm.rankOf = make([]int32, ranking.Len())
	for i, id := range ids {
		row := tm.rankIdx[id]
		e := rankedPipe{Rank: i + 1, PipeID: id, Score: ranking.Scores[row]}
		if probs != nil {
			e.FailProb = probs[row]
		}
		tm.entries[i] = e
		tm.rankOf[row] = int32(i + 1)
	}
	return tm
}

// topEntries returns the highest-risk prefix of the precomputed ranking,
// clamping top to the ranking length. The returned slice aliases the
// snapshot and must not be mutated.
func (tm *modelSnapshot) topEntries(top int) []rankedPipe {
	if top > len(tm.entries) {
		top = len(tm.entries)
	}
	if top < 0 {
		top = 0
	}
	return tm.entries[:top]
}

// rankingETag hashes the model name and every score's bit pattern into a
// quoted strong validator. Scores determine the served ranking bytes
// (order, probabilities and IDs all derive from them for a fixed
// network), so equal tags imply equal representations.
func rankingETag(name string, scores []float64) string {
	h := fnv.New64a()
	h.Write([]byte(name))
	var buf [8]byte
	for _, s := range scores {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], h.Sum64())
	const hex = "0123456789abcdef"
	out := make([]byte, 0, 20)
	out = append(out, '"', 'r', '-')
	for _, b := range buf {
		out = append(out, hex[b>>4], hex[b&0xf])
	}
	out = append(out, '"')
	return string(out)
}
