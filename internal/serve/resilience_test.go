package serve

// Tests for the resilience middleware: panic containment (handler and
// training goroutine), load shedding at the in-flight cap, drain
// refusal + the readiness probe, per-request deadlines, and
// last-waiter-out training cancellation. `make verify` runs these under
// -race.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func counterVal(name string) int64 { return obs.Default().Counter(name).Value() }

// TestHandlerPanicRecovered wraps a deliberately panicking handler in
// the full middleware chain and asserts the request dies as a clean 500
// while the server (and the counter) keep working.
func TestHandlerPanicRecovered(t *testing.T) {
	s, _ := newTestServer(t)
	before := counterVal("serve.panics.recovered")

	h := s.middleware("boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/boom", nil))

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler status %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("panic 500 Content-Type %q", ct)
	}
	if got := counterVal("serve.panics.recovered"); got != before+1 {
		t.Fatalf("serve.panics.recovered = %d, want %d", got, before+1)
	}
	// A panic after bytes have flushed cannot 500; it must still recover.
	h2 := s.middleware("boom2", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("mid-body")
	})
	rec2 := httptest.NewRecorder()
	h2(rec2, httptest.NewRequest("GET", "/boom2", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("mid-body panic rewrote status to %d", rec2.Code)
	}
	if got := counterVal("serve.panics.recovered"); got != before+2 {
		t.Fatal("mid-body panic not counted")
	}
}

// TestTrainingPanicContained injects a panic through the trainFn seam:
// the waiter gets a 503 naming the panic, the process survives, and the
// next request retrains successfully.
func TestTrainingPanicContained(t *testing.T) {
	s, ts := newTestServer(t)
	beforePanics := counterVal("serve.train.panics")
	beforeFailures := counterVal("serve.train.failures")

	realTrain := s.trainFn
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		panic("injected trainer panic")
	}
	var e map[string]any
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, &e); code != 503 {
		t.Fatalf("panicked train status %d, want 503", code)
	}
	if !strings.Contains(e["error"].(string), "panicked") {
		t.Fatalf("error body %v does not name the panic", e)
	}
	if got := counterVal("serve.train.panics"); got != beforePanics+1 {
		t.Fatalf("serve.train.panics = %d, want %d", got, beforePanics+1)
	}
	if got := counterVal("serve.train.failures"); got != beforeFailures+1 {
		t.Fatal("a contained panic must also count as a train failure")
	}

	// Server is still alive and the panicked run was not cached.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatal("server died after a contained training panic")
	}
	s.trainFn = realTrain
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, nil); code != 200 {
		t.Fatal("retrain after contained panic failed")
	}
}

// TestLoadSheddingAtCap saturates a capacity-1 server with a training
// run parked on a channel and asserts the overflow request is shed with
// 503 + Retry-After while probes stay exempt.
func TestLoadSheddingAtCap(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetMaxInflight(1)
	before := counterVal("serve.shed.capacity")

	release := make(chan struct{})
	entered := make(chan struct{})
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		close(entered)
		<-release
		return nil, errors.New("parked trainer done")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, nil)
	}()
	<-entered // the slot is definitely occupied

	resp, err := http.Get(ts.URL + "/api/network")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap request status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := counterVal("serve.shed.capacity"); got != before+1 {
		t.Fatalf("serve.shed.capacity = %d, want %d", got, before+1)
	}
	// Probes bypass the shedder even at capacity.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatal("healthz shed at capacity")
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 200 {
		t.Fatal("readyz shed at capacity")
	}
	close(release)
	wg.Wait()

	// Cap released: normal traffic flows again.
	if code := getJSON(t, ts.URL+"/api/network", nil); code != 200 {
		t.Fatal("request failed after the cap cleared")
	}
}

// TestDrainingRefusesWork pins the shutdown-visible behavior:
// BeginShutdown flips /readyz to 503, sheds API routes with
// Retry-After, keeps /healthz answering, and cancels the lifecycle
// context that in-flight training hangs off.
func TestDrainingRefusesWork(t *testing.T) {
	s, ts := newTestServer(t)
	before := counterVal("serve.shed.draining")

	var ready map[string]any
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != 200 || ready["status"] != "ready" {
		t.Fatalf("pre-drain readyz %v (%v)", ready, code)
	}

	s.BeginShutdown()
	s.BeginShutdown() // idempotent

	if err := s.lifecycle.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("lifecycle context not cancelled: %v", err)
	}
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != 503 || ready["status"] != "draining" {
		t.Fatalf("draining readyz %v (%v)", ready, code)
	}
	resp, err := http.Get(ts.URL + "/api/network")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining API request: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if got := counterVal("serve.shed.draining"); got != before+1 {
		t.Fatalf("serve.shed.draining = %d, want %d", got, before+1)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatal("healthz must answer while draining")
	}
}

// TestRequestTimeoutAbandonsTraining sets a short request deadline over
// a trainer that only returns on cancellation: the request comes back
// 503 "abandoned", and the training run itself is cancelled because its
// only waiter left.
func TestRequestTimeoutAbandonsTraining(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetRequestTimeout(50 * time.Millisecond)

	trainerDone := make(chan error, 1)
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		<-ctx.Done() // a hung trainer that at least honors cancellation
		trainerDone <- ctx.Err()
		return nil, fmt.Errorf("trainer: %w", ctx.Err())
	}

	var e map[string]any
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, &e); code != 503 {
		t.Fatalf("timed-out train status %d, want 503", code)
	}
	if !strings.Contains(e["error"].(string), "abandoned") {
		t.Fatalf("error body %v", e)
	}
	select {
	case err := <-trainerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trainer ctx error %v, want Canceled (last waiter left)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("training run was never cancelled after its waiter left")
	}
}

// TestLastWaiterOutCancelsTraining drives get() directly with two
// waiters: one abandons (no cancellation yet — someone still waits),
// then the other abandons and the run's context must die.
func TestLastWaiterOutCancelsTraining(t *testing.T) {
	s, _ := newTestServer(t)

	trainCtx := make(chan context.Context, 1)
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		trainCtx <- ctx
		<-ctx.Done()
		return nil, ctx.Err()
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	errs := make(chan error, 2)
	go func() { _, err := s.get(ctx1, "Heuristic-Age"); errs <- err }()
	tctx := <-trainCtx
	go func() { _, err := s.get(ctx2, "Heuristic-Age"); errs <- err }()

	// Both waiters must be registered before the first abandons, or the
	// job could be cancelled while waiters == 1.
	waitFor(t, func() bool {
		s.def.mu.Lock()
		defer s.def.mu.Unlock()
		job := s.def.pending["Heuristic-Age"]
		return job != nil && job.waiters == 2
	})

	cancel1()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("first waiter error %v", err)
	}
	select {
	case <-tctx.Done():
		t.Fatal("training cancelled while a waiter remained")
	case <-time.After(50 * time.Millisecond):
	}

	cancel2()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("second waiter error %v", err)
	}
	select {
	case <-tctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("training context survived the last waiter leaving")
	}
}

// waitFor polls cond for up to 5s; the serve package has no test
// clock, so the handful of cross-goroutine assertions above use this.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
