package plan

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

var cm = CostModel{InspectionPerKM: 8000, FailureCost: 150000}

func TestGreedyPrefersHighDensity(t *testing.T) {
	cands := []Candidate{
		{ID: "risky-short", FailProb: 0.5, LengthM: 100},
		{ID: "risky-long", FailProb: 0.5, LengthM: 2000},
		{ID: "safe", FailProb: 0.001, LengthM: 100},
	}
	p, err := Greedy(cands, cm, Budget{MaxLengthM: 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Selected) != 1 || p.Selected[0].ID != "risky-short" {
		t.Fatalf("selected %+v", p.Selected)
	}
	if p.TotalLengthM != 100 {
		t.Fatalf("length %v", p.TotalLengthM)
	}
	wantCost := 0.1 * 8000
	if math.Abs(p.InspectionCost-wantCost) > 1e-9 {
		t.Fatalf("cost %v, want %v", p.InspectionCost, wantCost)
	}
	if math.Abs(p.ExpectedPrevented-0.5) > 1e-12 {
		t.Fatalf("expected prevented %v", p.ExpectedPrevented)
	}
	if p.ExpectedNet <= 0 {
		t.Fatalf("net %v should be positive", p.ExpectedNet)
	}
}

func TestGreedySkipsNetNegative(t *testing.T) {
	// Inspection cost 8000/km; a 1 km pipe with tiny probability has
	// benefit ~15, cost 8000 → net negative → never selected even with
	// unlimited length budget.
	cands := []Candidate{{ID: "dud", FailProb: 0.0001, LengthM: 1000}}
	p, err := Greedy(cands, cm, Budget{MaxLengthM: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Selected) != 0 {
		t.Fatalf("selected %+v", p.Selected)
	}
}

func TestGreedyBudgetDimensions(t *testing.T) {
	cands := []Candidate{
		{ID: "a", FailProb: 0.9, LengthM: 500},
		{ID: "b", FailProb: 0.8, LengthM: 500},
		{ID: "c", FailProb: 0.7, LengthM: 500},
	}
	// Count budget.
	p, err := Greedy(cands, cm, Budget{MaxCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Selected) != 2 || p.Selected[0].ID != "a" || p.Selected[1].ID != "b" {
		t.Fatalf("count budget selected %+v", p.Selected)
	}
	// Spend budget: each pipe costs 4000.
	p, err = Greedy(cands, cm, Budget{MaxSpend: 8500})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Selected) != 2 {
		t.Fatalf("spend budget selected %d", len(p.Selected))
	}
	// Length budget skips a too-long pipe but can take a later one.
	mixed := []Candidate{
		{ID: "long", FailProb: 0.9, LengthM: 900},
		{ID: "short", FailProb: 0.5, LengthM: 100},
	}
	p, err = Greedy(mixed, cm, Budget{MaxLengthM: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Selected) != 1 || p.Selected[0].ID != "short" {
		t.Fatalf("length budget selected %+v", p.Selected)
	}
}

func TestGreedyErrors(t *testing.T) {
	good := []Candidate{{ID: "a", FailProb: 0.5, LengthM: 100}}
	if _, err := Greedy(good, cm, Budget{}); !errors.Is(err, ErrNoBudget) {
		t.Fatalf("want ErrNoBudget, got %v", err)
	}
	if _, err := Greedy([]Candidate{{ID: "x", FailProb: 2, LengthM: 1}}, cm, Budget{MaxCount: 1}); err == nil {
		t.Fatal("bad probability must error")
	}
	if _, err := Greedy([]Candidate{{ID: "x", FailProb: 0.5, LengthM: 0}}, cm, Budget{MaxCount: 1}); err == nil {
		t.Fatal("bad length must error")
	}
	bad := cm
	bad.FailureCost = 0
	if _, err := Greedy(good, bad, Budget{MaxCount: 1}); err == nil {
		t.Fatal("bad cost model must error")
	}
	bad = cm
	bad.PreventionRate = 2
	if _, err := Greedy(good, bad, Budget{MaxCount: 1}); err == nil {
		t.Fatal("bad prevention rate must error")
	}
	bad = cm
	bad.InspectionPerKM = -1
	if _, err := Greedy(good, bad, Budget{MaxCount: 1}); err == nil {
		t.Fatal("negative inspection cost must error")
	}
}

func TestPreventionRateScalesBenefit(t *testing.T) {
	cands := []Candidate{{ID: "a", FailProb: 0.5, LengthM: 100}}
	half := cm
	half.PreventionRate = 0.5
	p, err := Greedy(cands, half, Budget{MaxCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.ExpectedPrevented-0.25) > 1e-12 {
		t.Fatalf("prevented %v, want 0.25", p.ExpectedPrevented)
	}
}

func TestEvaluateOutcome(t *testing.T) {
	p := &Plan{
		Selected:       []Candidate{{ID: "a"}, {ID: "b"}},
		InspectionCost: 1000,
	}
	failed := map[string]bool{"a": true, "c": true, "d": false}
	out := Evaluate(p, cm, failed)
	if out.Inspected != 2 || out.Caught != 1 || out.TotalFailures != 2 {
		t.Fatalf("outcome %+v", out)
	}
	if out.DetectionRate != 0.5 {
		t.Fatalf("detection %v", out.DetectionRate)
	}
	if out.RealizedBenefit != 150000 {
		t.Fatalf("benefit %v", out.RealizedBenefit)
	}
	if out.RealizedNet != 149000 {
		t.Fatalf("net %v", out.RealizedNet)
	}
	// No failures at all.
	empty := Evaluate(p, cm, nil)
	if empty.DetectionRate != 0 || empty.TotalFailures != 0 {
		t.Fatalf("empty outcome %+v", empty)
	}
}

// Property: the greedy plan never exceeds any configured budget dimension
// and never selects a net-negative candidate.
func TestGreedyBudgetInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(40)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = Candidate{
				ID:       string(rune('a'+i%26)) + string(rune('0'+i/26)),
				FailProb: rng.Float64(),
				LengthM:  10 + rng.Float64()*2000,
			}
		}
		b := Budget{MaxLengthM: 500 + rng.Float64()*3000, MaxCount: 1 + rng.Intn(20)}
		p, err := Greedy(cands, cm, b)
		if err != nil {
			return false
		}
		if p.TotalLengthM > b.MaxLengthM+1e-9 {
			return false
		}
		if len(p.Selected) > b.MaxCount {
			return false
		}
		for _, c := range p.Selected {
			cost := c.LengthM / 1000 * cm.InspectionPerKM
			if c.FailProb*cm.FailureCost-cost <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanIDs(t *testing.T) {
	p := &Plan{Selected: []Candidate{
		{ID: "b", FailProb: 0.2, LengthM: 10},
		{ID: "a", FailProb: 0.1, LengthM: 20},
	}}
	ids := p.IDs()
	if len(ids) != 2 || ids[0] != "b" || ids[1] != "a" {
		t.Fatalf("IDs() = %v, want selection order [b a]", ids)
	}
	if got := (&Plan{}).IDs(); got != nil {
		t.Fatalf("empty plan IDs() = %#v, want nil", got)
	}
}
