package dataset

import (
	"fmt"
	"sort"
)

// CohortRow is one row of an exploratory cohort-statistics table: a slice
// of the network (by material, age band, diameter band, …) with its
// exposure and empirical failure rate.
type CohortRow struct {
	// Cohort labels the slice (e.g. "CICL", "age 40-49", "100-199mm").
	Cohort string
	// Pipes is the number of pipes ever in the cohort.
	Pipes int
	// PipeYears is the exposure: summed years each pipe spent in the
	// cohort inside the observation window.
	PipeYears float64
	// KMYears is the length-weighted exposure in kilometre-years.
	KMYears float64
	// Failures is the number of recorded failures attributed to the cohort.
	Failures int
	// RatePerPipeYear is Failures / PipeYears.
	RatePerPipeYear float64
	// RatePer100KMYear is Failures per 100 km-years, the unit the early
	// age-rate literature reports.
	RatePer100KMYear float64
}

func finishRow(r *CohortRow) {
	if r.PipeYears > 0 {
		r.RatePerPipeYear = float64(r.Failures) / r.PipeYears
	}
	if r.KMYears > 0 {
		r.RatePer100KMYear = float64(r.Failures) / r.KMYears * 100
	}
}

// activeYears returns the number of observed years the pipe existed.
func (n *Network) activeYears(p *Pipe) float64 {
	from := n.ObservedFrom
	if p.LaidYear > from {
		from = p.LaidYear
	}
	years := n.ObservedTo - from + 1
	if years < 0 {
		return 0
	}
	return float64(years)
}

// CohortByMaterial returns failure statistics per material, sorted by
// descending failure rate per pipe-year.
func (n *Network) CohortByMaterial() []CohortRow {
	rows := map[Material]*CohortRow{}
	for i := range n.pipes {
		p := &n.pipes[i]
		r, ok := rows[p.Material]
		if !ok {
			r = &CohortRow{Cohort: string(p.Material)}
			rows[p.Material] = r
		}
		y := n.activeYears(p)
		r.Pipes++
		r.PipeYears += y
		r.KMYears += y * p.LengthM / 1000
		r.Failures += n.FailureCount(p.ID, n.ObservedFrom, n.ObservedTo)
	}
	out := make([]CohortRow, 0, len(rows))
	for _, r := range rows {
		finishRow(r)
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RatePerPipeYear != out[j].RatePerPipeYear {
			return out[i].RatePerPipeYear > out[j].RatePerPipeYear
		}
		return out[i].Cohort < out[j].Cohort
	})
	return out
}

// CohortByAgeBand returns failure statistics per pipe-age band of the
// given width (in years). Exposure and failures are attributed to the band
// the pipe was in during each observed year, so a pipe contributes to
// several bands over a long window.
func (n *Network) CohortByAgeBand(bandYears int) ([]CohortRow, error) {
	if bandYears < 1 {
		return nil, fmt.Errorf("dataset: age band width %d must be >= 1", bandYears)
	}
	type acc struct {
		pipes     map[string]bool
		pipeYears float64
		kmYears   float64
		failures  int
	}
	bands := map[int]*acc{}
	get := func(b int) *acc {
		a, ok := bands[b]
		if !ok {
			a = &acc{pipes: map[string]bool{}}
			bands[b] = a
		}
		return a
	}
	for i := range n.pipes {
		p := &n.pipes[i]
		for year := maxInt(p.LaidYear, n.ObservedFrom); year <= n.ObservedTo; year++ {
			b := int(p.AgeAt(year)) / bandYears
			a := get(b)
			a.pipes[p.ID] = true
			a.pipeYears++
			a.kmYears += p.LengthM / 1000
		}
	}
	for _, f := range n.failures {
		p, ok := n.PipeByID(f.PipeID)
		if !ok {
			continue
		}
		b := int(p.AgeAt(f.Year)) / bandYears
		get(b).failures++
	}
	keys := make([]int, 0, len(bands))
	for b := range bands {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	out := make([]CohortRow, 0, len(keys))
	for _, b := range keys {
		a := bands[b]
		r := CohortRow{
			Cohort:    fmt.Sprintf("age %d-%d", b*bandYears, (b+1)*bandYears-1),
			Pipes:     len(a.pipes),
			PipeYears: a.pipeYears,
			KMYears:   a.kmYears,
			Failures:  a.failures,
		}
		finishRow(&r)
		out = append(out, r)
	}
	return out, nil
}

// CohortByDiameterBand returns failure statistics per diameter band.
// bounds are the ascending band upper limits in mm; a final open-ended
// band is appended automatically.
func (n *Network) CohortByDiameterBand(bounds []float64) ([]CohortRow, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("dataset: no diameter bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("dataset: diameter bounds not ascending at %d", i)
		}
	}
	label := func(b int) string {
		if b == 0 {
			return fmt.Sprintf("<%.0fmm", bounds[0])
		}
		if b == len(bounds) {
			return fmt.Sprintf(">=%.0fmm", bounds[len(bounds)-1])
		}
		return fmt.Sprintf("%.0f-%.0fmm", bounds[b-1], bounds[b])
	}
	bandOf := func(d float64) int {
		for i, u := range bounds {
			if d < u {
				return i
			}
		}
		return len(bounds)
	}
	rows := make([]CohortRow, len(bounds)+1)
	for b := range rows {
		rows[b].Cohort = label(b)
	}
	for i := range n.pipes {
		p := &n.pipes[i]
		b := bandOf(p.DiameterMM)
		y := n.activeYears(p)
		rows[b].Pipes++
		rows[b].PipeYears += y
		rows[b].KMYears += y * p.LengthM / 1000
		rows[b].Failures += n.FailureCount(p.ID, n.ObservedFrom, n.ObservedTo)
	}
	out := rows[:0]
	for _, r := range rows {
		if r.Pipes == 0 {
			continue
		}
		finishRow(&r)
		out = append(out, r)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SegmentHotspot is a pipe segment with repeated failures — the strongest
// renewal signal a work-order log can give.
type SegmentHotspot struct {
	PipeID   string
	Segment  int
	Failures int
}

// SegmentHotspots returns segments with at least minFailures recorded
// failures, sorted by failure count descending (ties by pipe then segment).
func (n *Network) SegmentHotspots(minFailures int) []SegmentHotspot {
	if minFailures < 1 {
		minFailures = 1
	}
	type key struct {
		id  string
		seg int
	}
	counts := map[key]int{}
	for i := range n.failures {
		f := &n.failures[i]
		counts[key{f.PipeID, f.Segment}]++
	}
	var out []SegmentHotspot
	for k, c := range counts {
		if c >= minFailures {
			out = append(out, SegmentHotspot{PipeID: k.id, Segment: k.seg, Failures: c})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Failures != out[b].Failures {
			return out[a].Failures > out[b].Failures
		}
		if out[a].PipeID != out[b].PipeID {
			return out[a].PipeID < out[b].PipeID
		}
		return out[a].Segment < out[b].Segment
	})
	return out
}
