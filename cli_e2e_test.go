package pipefail

// End-to-end test of the command-line tools: builds the binaries once and
// drives the pipegen → pipetrain workflow the README documents, plus a
// pipeeval experiment and a riskmap render. Skipped under -short.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles every cmd/ binary into a temp dir and returns their
// paths keyed by name.
func buildCmds(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := map[string]string{}
	for _, name := range []string{"pipegen", "pipetrain", "pipeeval", "riskmap"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	msg, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, msg)
	}
	return string(msg)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	bins := buildCmds(t)
	work := t.TempDir()
	dataDir := filepath.Join(work, "regionA")

	// 1. Generate a small region.
	out := runCmd(t, bins["pipegen"], "-region", "A", "-seed", "3", "-scale", "0.04", "-out", dataDir)
	if !strings.Contains(out, "generated region A") || !strings.Contains(out, "CWM") {
		t.Fatalf("pipegen output:\n%s", out)
	}
	for _, f := range []string{"pipes.csv", "failures.csv", "meta.csv"} {
		if _, err := os.Stat(filepath.Join(dataDir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}

	// 2. Train on it and persist the model.
	modelPath := filepath.Join(work, "model.json")
	out = runCmd(t, bins["pipetrain"],
		"-data", dataDir, "-model", "DirectAUC-ES", "-esgens", "10",
		"-top", "5", "-save", modelPath)
	if !strings.Contains(out, "AUC") || !strings.Contains(out, "top 5 pipes") {
		t.Fatalf("pipetrain output:\n%s", out)
	}
	if !strings.Contains(out, "top feature weights") {
		t.Fatalf("pipetrain missing importance table:\n%s", out)
	}
	blob, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "DirectAUC-ES") {
		t.Fatalf("persisted model malformed:\n%s", blob)
	}

	// 3. One cheap experiment through pipeeval.
	out = runCmd(t, bins["pipeeval"],
		"-exp", "T1", "-scale", "0.04", "-regions", "A")
	if !strings.Contains(out, "T1: pipe network") {
		t.Fatalf("pipeeval output:\n%s", out)
	}

	// 4. Risk map SVG.
	svgPath := filepath.Join(work, "map.svg")
	out = runCmd(t, bins["riskmap"],
		"-region", "A", "-model", "Heuristic-Age", "-scale", "0.04", "-out", svgPath)
	if !strings.Contains(out, "top-decile hit") {
		t.Fatalf("riskmap output:\n%s", out)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("riskmap did not produce an SVG")
	}
}
