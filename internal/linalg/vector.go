// Package linalg provides the small dense linear-algebra kernel the model
// fitters need: vector arithmetic, dense matrices, and a Cholesky solver for
// the Newton steps of the logistic and Cox regressions.
//
// It is deliberately minimal — no BLAS, no sparse formats — because every
// design matrix in this repository is tall and thin (tens of thousands of
// rows, a few dozen columns).
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics on length mismatch,
// which always indicates a schema bug rather than a data condition.
//
// With fast math off (the default) it is DotExact — sequential summation
// order, bit-identical to a naive loop. With SetFastMath(true) it routes
// to DotFast, the reassociated 4-lane variant (see fastmath.go for the
// contract).
func Dot(a, b []float64) float64 {
	if fastMath.Load() {
		return DotFast(a, b)
	}
	return DotExact(a, b)
}

// DotExact is the reference inner product: the loop is 4-way unrolled
// into a *single* accumulator, so the summation order is exactly the
// sequential left-to-right order and results are bit-identical to a
// naive loop (and to MatVecExact, which preserves the same per-row
// order). The unroll buys hoisted bounds checks, not a reassociated sum —
// keeping every Dot-based score reproducible regardless of which kernel
// ran it. It panics on length mismatch.
func DotExact(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	s := 0.0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// MatVec computes the matrix-vector product of a row-major flat matrix
// against x: dst[i] = dot(flat[i*stride:(i+1)*stride], x). It is the
// scoring kernel of the train/serve hot path — one contiguous streaming
// pass over the backing array with no per-row slice-header loads. With
// fast math off (the default) it is MatVecExact: each row's sum uses the
// same sequential order as DotExact, so flat-path and row-path scores
// agree bit-for-bit. With SetFastMath(true) it routes to MatVecFast. It
// panics when len(x) != stride or len(flat) != len(dst)*stride.
func MatVec(dst, flat []float64, stride int, x []float64) {
	if fastMath.Load() {
		MatVecFast(dst, flat, stride, x)
		return
	}
	MatVecExact(dst, flat, stride, x)
}

// MatVecExact is the reference matrix-vector kernel. Rows are processed
// in blocks of four that share one streaming pass over x, but each row
// still owns a single accumulator fed in sequential element order — the
// blocking reuses x loads across rows without reassociating any row's
// sum, so every dst[i] is bit-identical to DotExact of that row (the
// kerneltest harness pins this against the naive oracle).
func MatVecExact(dst, flat []float64, stride int, x []float64) {
	checkMatVec(dst, flat, stride, x)
	r := 0
	for ; r+4 <= len(dst); r += 4 {
		base := r * stride
		r0 := flat[base : base+stride][:len(x)]
		r1 := flat[base+stride : base+2*stride][:len(x)]
		r2 := flat[base+2*stride : base+3*stride][:len(x)]
		r3 := flat[base+3*stride : base+4*stride][:len(x)]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		dst[r], dst[r+1], dst[r+2], dst[r+3] = s0, s1, s2, s3
	}
	for ; r < len(dst); r++ {
		dst[r] = DotExact(flat[r*stride:(r+1)*stride], x)
	}
}

// checkMatVec validates the shared MatVec shape contract; every variant
// panics identically so callers cannot depend on which kernel ran.
func checkMatVec(dst, flat []float64, stride int, x []float64) {
	if len(x) != stride {
		panic(fmt.Sprintf("linalg: MatVec stride %d vs vector length %d", stride, len(x)))
	}
	if len(flat) != len(dst)*stride {
		panic(fmt.Sprintf("linalg: MatVec flat length %d != %d rows x stride %d", len(flat), len(dst), stride))
	}
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow by
// scaling with the largest magnitude component.
func Norm2(x []float64) float64 {
	maxAbs := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// NormInf returns the maximum absolute component of x (0 for empty x).
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	return append([]float64(nil), x...)
}

// Zeros returns a zeroed vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Add returns a+b as a new vector. It panics on length mismatch.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a new vector. It panics on length mismatch.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
