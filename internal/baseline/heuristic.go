package baseline

import (
	"fmt"

	"repro/internal/feature"
	"repro/internal/stats"
)

// HeuristicKind selects a naive ranking rule.
type HeuristicKind int

const (
	// ByAge ranks oldest pipes first.
	ByAge HeuristicKind = iota
	// ByLength ranks longest pipes first (pure exposure).
	ByLength
	// Random ranks uniformly at random (the floor every model must beat).
	Random
)

// String returns the heuristic's display name.
func (k HeuristicKind) String() string {
	switch k {
	case ByAge:
		return "Heuristic-Age"
	case ByLength:
		return "Heuristic-Length"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("HeuristicKind(%d)", int(k))
	}
}

// Heuristic implements the non-statistical ranking rules utilities actually
// used before data-driven prioritisation: oldest-first, longest-first, and
// a random ranking as the sanity floor.
type Heuristic struct {
	Kind HeuristicKind
	// Seed drives the Random kind.
	Seed   int64
	fitted bool
}

// NewHeuristic returns the named heuristic.
func NewHeuristic(kind HeuristicKind, seed int64) *Heuristic {
	return &Heuristic{Kind: kind, Seed: seed}
}

// Name implements core.Model.
func (m *Heuristic) Name() string { return m.Kind.String() }

// Fit implements core.Model. Heuristics have nothing to learn but still
// validate their input so misuse fails fast.
func (m *Heuristic) Fit(train *feature.Set) error {
	if train == nil || train.Len() == 0 {
		return fmt.Errorf("%s: empty training set", m.Name())
	}
	m.fitted = true
	return nil
}

// Scores implements core.Model.
func (m *Heuristic) Scores(test *feature.Set) ([]float64, error) {
	if !m.fitted {
		return nil, fmt.Errorf("%s: %w", m.Name(), ErrNotFitted)
	}
	out := make([]float64, test.Len())
	switch m.Kind {
	case ByAge:
		copy(out, test.Age)
	case ByLength:
		copy(out, test.LengthM)
	case Random:
		rng := stats.NewRNG(m.Seed)
		for i := range out {
			out[i] = rng.Float64()
		}
	default:
		return nil, fmt.Errorf("baseline: unknown heuristic kind %d", m.Kind)
	}
	return out, nil
}
