package synthetic

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func scaledPreset(t *testing.T, name string, seed int64, scale float64) Config {
	t.Helper()
	cfg, err := Preset(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = cfg.Scaled(scale)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestGenerateStreamMatchesGenerate is the conformance proof for the
// streaming generator: the emitted rows must be bit-identical to what the
// materializing Generate produces, for both the flat metropolitan presets
// and the hierarchical nation-scale ones.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	for _, tc := range []struct {
		preset string
		scale  float64
	}{
		{"A", 0.04},
		{"B", 0.04},
		{"metro", 0.004},
	} {
		t.Run(tc.preset, func(t *testing.T) {
			cfg := scaledPreset(t, tc.preset, 77, tc.scale)
			net, truth, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}

			var pipes []dataset.Pipe
			var fails []dataset.Failure
			sum, err := GenerateStream(cfg,
				func(p *dataset.Pipe) error { pipes = append(pipes, *p); return nil },
				func(f *dataset.Failure) error { fails = append(fails, *f); return nil })
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(pipes, net.Pipes()) {
				t.Fatal("streamed pipes differ from Generate's")
			}
			// Generate's network sorts failures by (Year, Day, PipeID);
			// apply the same stable sort to the streamed rows.
			sort.SliceStable(fails, func(a, b int) bool {
				fa, fb := &fails[a], &fails[b]
				if fa.Year != fb.Year {
					return fa.Year < fb.Year
				}
				if fa.Day != fb.Day {
					return fa.Day < fb.Day
				}
				return fa.PipeID < fb.PipeID
			})
			if !reflect.DeepEqual(fails, net.Failures()) {
				t.Fatal("streamed failures differ from Generate's")
			}

			if sum.TrueFailures != truth.TrueFailures {
				t.Fatalf("TrueFailures %d vs %d", sum.TrueFailures, truth.TrueFailures)
			}
			if sum.RecordedFailures != len(net.Failures()) {
				t.Fatalf("RecordedFailures %d vs %d", sum.RecordedFailures, len(net.Failures()))
			}
			if !reflect.DeepEqual(sum.CalibratedHazard, truth.CalibratedHazard) {
				t.Fatalf("CalibratedHazard %+v vs %+v", sum.CalibratedHazard, truth.CalibratedHazard)
			}
			if !reflect.DeepEqual(sum.Rows, net.Summarize()) {
				t.Fatalf("summary rows differ:\n stream: %+v\n    net: %+v", sum.Rows, net.Summarize())
			}
		})
	}
}

func TestNationPresets(t *testing.T) {
	for _, name := range []string{"metro", "nation"} {
		cfg, err := Preset(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s preset invalid: %v", name, err)
		}
		if cfg.Districts <= 1 || cfg.ClimateZones <= 1 {
			t.Fatalf("%s preset should be hierarchical, got Districts=%d ClimateZones=%d",
				name, cfg.Districts, cfg.ClimateZones)
		}
	}

	// A small slice of the metro preset: hierarchical IDs, valid network,
	// districts in contiguous blocks.
	cfg := scaledPreset(t, "metro", 5, 0.01)
	net, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	lastDistrict := ""
	seen := map[string]bool{}
	for _, p := range net.Pipes() {
		parts := strings.Split(p.ID, "-")
		if len(parts) != 3 || !strings.HasPrefix(parts[1], "D") {
			t.Fatalf("pipe ID %q lacks the district component", p.ID)
		}
		d := parts[1]
		if d != lastDistrict && seen[d] {
			t.Fatalf("district %s appears in non-contiguous registry blocks", d)
		}
		seen[d] = true
		lastDistrict = d
	}
	if len(seen) < 2 {
		t.Fatalf("expected multiple districts, got %d", len(seen))
	}
}

// TestClimateZonesCorrelateSoil checks the hierarchical soil structure:
// with a climate overlay, soil factors inside one climate zone concentrate
// on the zone's dominant level, so the per-zone entropy of the soil map
// must drop relative to the flat generator.
func TestClimateZonesCorrelateSoil(t *testing.T) {
	base := scaledPreset(t, "metro", 11, 0.02)
	flat := base
	flat.ClimateZones = 0

	dominantShare := func(cfg Config) float64 {
		net, _, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Partition pipes into a coarse spatial grid matching the climate
		// grid and measure how dominant each cell's most common
		// corrosivity level is.
		const g = 6
		counts := make([]map[string]int, g*g)
		sideM := 0.0
		for _, p := range net.Pipes() {
			if p.X > sideM {
				sideM = p.X
			}
			if p.Y > sideM {
				sideM = p.Y
			}
		}
		for _, p := range net.Pipes() {
			cx, cy := int(p.X/sideM*g), int(p.Y/sideM*g)
			if cx >= g {
				cx = g - 1
			}
			if cy >= g {
				cy = g - 1
			}
			cell := cx*g + cy
			if counts[cell] == nil {
				counts[cell] = map[string]int{}
			}
			counts[cell][p.SoilCorrosivity]++
		}
		share, cells := 0.0, 0
		for _, m := range counts {
			total, best := 0, 0
			for _, c := range m {
				total += c
				if c > best {
					best = c
				}
			}
			if total >= 20 {
				share += float64(best) / float64(total)
				cells++
			}
		}
		if cells == 0 {
			t.Fatal("no populated cells")
		}
		return share / float64(cells)
	}

	withClimate := dominantShare(base)
	without := dominantShare(flat)
	if withClimate <= without {
		t.Fatalf("climate overlay should concentrate soil levels: dominant share %.3f (climate) vs %.3f (flat)",
			withClimate, without)
	}
}
