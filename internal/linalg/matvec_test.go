package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

// dotNaive is the pre-unroll reference implementation; the unrolled Dot
// must match it bit-for-bit because it preserves the sequential
// summation order (the contract flat-path vs row-path scoring relies on).
func dotNaive(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func TestDotBitIdenticalToNaive(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true // overflow to Inf/NaN makes == vacuous
			}
		}
		return Dot(a, b) == dotNaive(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Exercise every unroll remainder explicitly.
	for n := 0; n < 9; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = 0.1 * float64(i+1)
			b[i] = 1.0 / float64(i+3)
		}
		if Dot(a, b) != dotNaive(a, b) {
			t.Fatalf("n=%d: Dot diverges from sequential sum", n)
		}
	}
}

func TestMatVecMatchesRowDots(t *testing.T) {
	const rows, stride = 7, 5
	flat := make([]float64, rows*stride)
	for i := range flat {
		flat[i] = float64(i%11) - 4.5
	}
	x := []float64{1, -2, 0.5, 3, -0.25}
	dst := make([]float64, rows)
	MatVec(dst, flat, stride, x)
	for i := 0; i < rows; i++ {
		if want := Dot(flat[i*stride:(i+1)*stride], x); dst[i] != want {
			t.Fatalf("row %d: MatVec %v != Dot %v", i, dst[i], want)
		}
	}
}

func TestMatVecPanics(t *testing.T) {
	flat := make([]float64, 6)
	dst := make([]float64, 2)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"bad vector", func() { MatVec(dst, flat, 3, []float64{1, 2}) }},
		{"bad flat", func() { MatVec(dst, flat[:5], 3, []float64{1, 2, 3}) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestMatVecEmpty(t *testing.T) {
	// Zero rows is a no-op, not a panic.
	MatVec(nil, nil, 4, []float64{1, 2, 3, 4})
}

// BenchmarkMatVec measures the flat scoring kernel at fitness-batch shape
// (20k rows x 32 features) — compare against the pre-flat row-pointer
// loop recorded in EXPERIMENTS.md.
func BenchmarkMatVec(b *testing.B) {
	const n, d = 20000, 32
	flat := make([]float64, n*d)
	for i := range flat {
		flat[i] = float64(i%7) * 0.25
	}
	x := make([]float64, d)
	for j := range x {
		x[j] = float64(j%3) - 1
	}
	out := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(out, flat, d, x)
	}
}

// BenchmarkDot measures the unrolled dot product at feature-vector width.
func BenchmarkDot(b *testing.B) {
	const d = 32
	x := make([]float64, d)
	y := make([]float64, d)
	for j := range x {
		x[j] = float64(j%5) * 0.5
		y[j] = float64(j%3) - 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}
