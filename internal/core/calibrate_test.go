package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

// calibrationData draws scores and labels from a known sigmoid model.
func calibrationData(seed int64, n int) (scores []float64, labels []bool) {
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		s := rng.Normal(0, 2)
		p := stats.Logistic(1.5*s - 0.5)
		scores = append(scores, s)
		labels = append(labels, rng.Bernoulli(p))
	}
	return scores, labels
}

func TestPlattRecoversSigmoid(t *testing.T) {
	scores, labels := calibrationData(1, 5000)
	var c PlattCalibrator
	if err := c.FitCal(scores, labels); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c.A, 1.5, 0.15) {
		t.Fatalf("A = %v, want about 1.5", c.A)
	}
	if !almostEqual(c.B, -0.5, 0.15) {
		t.Fatalf("B = %v, want about -0.5", c.B)
	}
	if p := c.Prob(0); p <= 0 || p >= 1 {
		t.Fatalf("Prob(0) = %v", p)
	}
}

func TestPlattErrors(t *testing.T) {
	var c PlattCalibrator
	if err := c.FitCal([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := c.FitCal([]float64{1}, []bool{true}); err == nil {
		t.Fatal("too few points must error")
	}
	if err := c.FitCal([]float64{2, 2, 2}, []bool{true, false, true}); err == nil {
		t.Fatal("constant scores must error")
	}
	if c.Prob(1) != 0.5 {
		t.Fatal("unfitted Prob must be 0.5")
	}
}

func TestIsotonicMonotoneAndCalibrated(t *testing.T) {
	scores, labels := calibrationData(2, 3000)
	var c IsotonicCalibrator
	if err := c.FitCal(scores, labels); err != nil {
		t.Fatal(err)
	}
	// Monotone in score.
	prev := -1.0
	for s := -6.0; s <= 6.0; s += 0.25 {
		p := c.Prob(s)
		if p < prev-1e-12 {
			t.Fatalf("isotonic not monotone at %v: %v < %v", s, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		prev = p
	}
	// Mean predicted probability must match the base rate (calibration
	// in the large).
	sum := 0.0
	posRate := 0.0
	for i, s := range scores {
		sum += c.Prob(s)
		if labels[i] {
			posRate++
		}
	}
	sum /= float64(len(scores))
	posRate /= float64(len(labels))
	if !almostEqual(sum, posRate, 0.01) {
		t.Fatalf("mean prob %v vs base rate %v", sum, posRate)
	}
}

func TestIsotonicEdgeCases(t *testing.T) {
	var c IsotonicCalibrator
	if err := c.FitCal(nil, nil); err == nil {
		t.Fatal("empty must error")
	}
	if err := c.FitCal([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("mismatch must error")
	}
	if c.Prob(3) != 0.5 {
		t.Fatal("unfitted Prob must be 0.5")
	}
	// Perfectly separated data → step from 0 to 1.
	if err := c.FitCal([]float64{1, 2, 3, 4}, []bool{false, false, true, true}); err != nil {
		t.Fatal(err)
	}
	if c.Prob(0) != 0 || c.Prob(5) != 1 {
		t.Fatalf("step values: %v, %v", c.Prob(0), c.Prob(5))
	}
	// Below-range scores get the first block.
	if c.Prob(-100) != 0 {
		t.Fatal("below-range must clamp to first block")
	}
}

func TestIsotonicPreservesRanking(t *testing.T) {
	scores, labels := calibrationData(3, 500)
	var c IsotonicCalibrator
	if err := c.FitCal(scores, labels); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(scores); i++ {
		a, b := scores[i-1], scores[i]
		if a < b && c.Prob(a) > c.Prob(b) {
			t.Fatal("isotonic broke the ranking")
		}
	}
}

func TestSaveLoadLinearRoundTrip(t *testing.T) {
	train := gaussianSet(51, 300, 0.2, 2, 4)
	m := NewDirectAUC(DirectAUCConfig{Seed: 7, Generations: 10})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d"}
	var buf bytes.Buffer
	if err := SaveLinear(&buf, m, names); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := LoadLinear(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kind != "DirectAUC-ES" || len(meta.Weights) != 4 {
		t.Fatalf("meta %+v", meta)
	}
	la := loaded.(*DirectAUC)
	for i := range la.W {
		if la.W[i] != m.W[i] {
			t.Fatal("weights differ after round trip")
		}
	}
	// Loaded model scores identically.
	s1, err := m.Scores(train)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := loaded.Scores(train)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("scores differ after round trip")
		}
	}
}

func TestSaveLinearRankSVM(t *testing.T) {
	train := gaussianSet(52, 200, 0.3, 2, 3)
	m := NewRankSVM(RankSVMConfig{Seed: 1, Epochs: 2})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveLinear(&buf, m, []string{"x", "y", "z"}); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := LoadLinear(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != "RankSVM" || meta.Kind != "RankSVM" {
		t.Fatal("kind mismatch")
	}
}

func TestSaveLinearErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveLinear(&buf, NewDirectAUC(DirectAUCConfig{}), nil); err == nil {
		t.Fatal("unfitted save must error")
	}
	if err := SaveLinear(&buf, NewRankSVM(RankSVMConfig{}), nil); err == nil {
		t.Fatal("unfitted RankSVM save must error")
	}
	if err := SaveLinear(&buf, NewRankBoost(RankBoostConfig{}), nil); err == nil {
		t.Fatal("non-linear model must error")
	}
	train := gaussianSet(1, 100, 0.3, 2, 3)
	m := NewRankSVM(RankSVMConfig{Seed: 1, Epochs: 1})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := SaveLinear(&buf, m, []string{"onlyone"}); err == nil {
		t.Fatal("name/weight count mismatch must error")
	}
}

func TestLoadLinearErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"format": 2, "kind": "RankSVM", "weights": [1], "feature_names": ["a"]}`,
		`{"format": 1, "kind": "RankSVM", "weights": [], "feature_names": []}`,
		`{"format": 1, "kind": "RankSVM", "weights": [1,2], "feature_names": ["a"]}`,
		`{"format": 1, "kind": "Mystery", "weights": [1], "feature_names": ["a"]}`,
	}
	for i, c := range cases {
		if _, _, err := LoadLinear(strings.NewReader(c)); err == nil {
			t.Errorf("case %d must error", i)
		}
	}
}

// TestProbAllMatchesProb pins the batch contract: every element of
// ProbAll is bit-identical to Prob of the same score, for both
// calibrators, fitted and unfitted, with and without a reused dst.
func TestProbAllMatchesProb(t *testing.T) {
	scores, labels := calibrationData(11, 400)
	for _, cal := range []Calibrator{&PlattCalibrator{}, &IsotonicCalibrator{}} {
		// Unfitted: ProbAll must agree with Prob's 0.5 fallback.
		got := cal.ProbAll(scores[:5], nil)
		for i, p := range got {
			if p != cal.Prob(scores[i]) {
				t.Fatalf("%s unfitted: ProbAll[%d]=%v, Prob=%v", cal.Name(), i, p, cal.Prob(scores[i]))
			}
		}
		if err := cal.FitCal(scores, labels); err != nil {
			t.Fatal(err)
		}
		got = cal.ProbAll(scores, nil)
		if len(got) != len(scores) {
			t.Fatalf("%s: ProbAll returned %d probs for %d scores", cal.Name(), len(got), len(scores))
		}
		for i, p := range got {
			if p != cal.Prob(scores[i]) {
				t.Fatalf("%s: ProbAll[%d]=%v, Prob=%v", cal.Name(), i, p, cal.Prob(scores[i]))
			}
		}
		// Reusing dst must not allocate a fresh slice.
		dst := make([]float64, len(scores))
		if got := cal.ProbAll(scores, dst); &got[0] != &dst[0] {
			t.Fatalf("%s: ProbAll ignored the provided dst", cal.Name())
		}
		// Short dst falls back to allocation, long dst is truncated.
		if got := cal.ProbAll(scores, make([]float64, 3)); len(got) != len(scores) {
			t.Fatalf("%s: short dst result length %d", cal.Name(), len(got))
		}
		if got := cal.ProbAll(scores[:7], dst); len(got) != 7 {
			t.Fatalf("%s: long dst not truncated: %d", cal.Name(), len(got))
		}
	}
}
