// Region comparison: the paper evaluates on three regions with different
// ages, densities and soils, and argues its method adapts where fixed-form
// models win one region and lose another. This example reproduces that
// analysis end to end and prints the AUC and small-budget detection tables.
//
//	go run ./examples/regioncompare
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)

	opts := experiments.Options{
		Seed:    5,
		Scale:   0.1, // keep the example snappy; raise for sharper numbers
		Regions: []string{"A", "B", "C"},
		Models:  []string{"DirectAUC-ES", "RankSVM", "Logistic", "Cox", "Weibull", "TimeExp"},
	}

	results, err := experiments.RunRegions(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.T2AUCTable(results).String())
	fmt.Println()
	fmt.Print(experiments.T3BudgetTable(results).String())
	fmt.Println()

	// Who wins each region?
	for _, r := range results {
		best := r.Evals[0]
		for _, e := range r.Evals[1:] {
			if e.AUC > best.AUC {
				best = e
			}
		}
		fmt.Printf("region %s winner: %s (AUC %.4f, det@1%% %.1f%%)\n",
			r.Region, best.Model, best.AUC, 100*best.Det1)
	}
}
