package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// replayAll reopens dir and collects every replayed payload.
func replayAll(t *testing.T, dir string, opts Options) ([][]byte, *WAL) {
	t.Helper()
	var got [][]byte
	w, err := Open(dir, opts, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return got, w
}

func appendN(t *testing.T, w *WAL, n int, prefix string) [][]byte {
	t.Helper()
	var recs [][]byte
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("%s-%04d-payload", prefix, i))
		end, err := w.Append(p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := w.WaitDurable(end); err != nil {
			t.Fatalf("WaitDurable %d: %v", i, err)
		}
		recs = append(recs, p)
	}
	return recs
}

func wantRecords(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, w := replayAll(t, dir, Options{Sync: SyncAlways, MetricsName: "wal.test.rt"})
	want := appendN(t, w, 25, "rt")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, w2 := replayAll(t, dir, Options{Sync: SyncAlways, MetricsName: "wal.test.rt"})
	defer w2.Close()
	wantRecords(t, got, want)
	// The reopened log keeps appending after the recovered tail.
	more := appendN(t, w2, 3, "rt2")
	w2.Close()
	got3, w3 := replayAll(t, dir, Options{Sync: SyncAlways, MetricsName: "wal.test.rt"})
	defer w3.Close()
	wantRecords(t, got3, append(append([][]byte(nil), want...), more...))
}

// TestSyncDuringConcurrentRotation: Sync captures the active file,
// drops the lock, then fsyncs — a concurrent Append can rotate and
// close that very file first. Rotation seals the segment (flush +
// fsync) before closing it, so Sync must treat the resulting "file
// already closed" as success (the durable watermark covers its
// target), not surface a spurious error from a documented
// safe-for-concurrent-use call.
func TestSyncDuringConcurrentRotation(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Sync: SyncNever, SegmentBytes: 256, MetricsName: "wal.test.syncrot"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		payload := bytes.Repeat([]byte("x"), 64)
		for i := 0; i < 1500; i++ {
			if _, err := w.Append(payload); err != nil {
				t.Errorf("Append %d: %v", i, err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			if err := w.Sync(); err != nil {
				t.Fatalf("final Sync: %v", err)
			}
			return
		default:
			if err := w.Sync(); err != nil {
				t.Fatalf("Sync during concurrent rotation: %v", err)
			}
		}
	}
}

func TestRotationKeepsOrderAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record larger than ~64 bytes rotates.
	opts := Options{Sync: SyncAlways, SegmentBytes: 64, MetricsName: "wal.test.rot"}
	_, w := replayAll(t, dir, opts)
	want := appendN(t, w, 10, "rot")
	if w.Segments() < 3 {
		t.Fatalf("expected rotation, got %d segments", w.Segments())
	}
	w.Close()
	got, w2 := replayAll(t, dir, opts)
	defer w2.Close()
	wantRecords(t, got, want)
}

// tailPath returns the highest-numbered live segment.
func tailPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segSuffix) {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segments")
	}
	return last
}

func TestTornTailTruncatedAtFirstBadFrame(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Sync: SyncAlways, MetricsName: "wal.test.torn"}
	_, w := replayAll(t, dir, opts)
	want := appendN(t, w, 8, "torn")
	w.Close()

	// Tear the tail mid-way through the final frame.
	p := tailPath(t, dir)
	st, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	got, w2 := replayAll(t, dir, opts)
	wantRecords(t, got, want[:7])
	// The log is append-ready at the truncation point.
	more := appendN(t, w2, 1, "after")
	w2.Close()
	got2, w3 := replayAll(t, dir, opts)
	defer w3.Close()
	wantRecords(t, got2, append(append([][]byte(nil), want[:7]...), more...))
}

func TestBitFlippedTailDropsOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Sync: SyncAlways, MetricsName: "wal.test.flip"}
	_, w := replayAll(t, dir, opts)
	want := appendN(t, w, 6, "flip")
	w.Close()

	// Flip one payload bit in the 4th record: records 0-2 must survive.
	p := tailPath(t, dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(headerSize)
	for i := 0; i < 3; i++ {
		plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		off += frameHeaderSize + plen
	}
	data[off+frameHeaderSize+2] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, w2 := replayAll(t, dir, opts)
	defer w2.Close()
	wantRecords(t, got, want[:3])
}

func TestCorruptInteriorSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Sync: SyncAlways, SegmentBytes: 64, MetricsName: "wal.test.quar"}
	_, w := replayAll(t, dir, opts)
	want := appendN(t, w, 9, "quar")
	segs := w.Segments()
	if segs < 3 {
		t.Fatalf("need >=3 segments, got %d", segs)
	}
	w.Close()

	// Rot a payload bit in the second segment (interior).
	p := filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, 2, segSuffix))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameHeaderSize+1] ^= 0x01
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, w2 := replayAll(t, dir, opts)
	defer w2.Close()
	// Segment 1's records and segments 3+'s records survive; segment 2
	// contributes only its (empty) intact prefix before the flipped bit.
	var wantAfter [][]byte
	perSeg := make(map[int][][]byte)
	// Reconstruct per-segment membership by replaying sizes: with
	// 64-byte segments and ~15-byte payloads, 2 records fit per segment.
	for i, r := range want {
		perSeg[i/2+1] = append(perSeg[i/2+1], r)
	}
	wantAfter = append(wantAfter, perSeg[1]...)
	for s := 3; s <= segs; s++ {
		wantAfter = append(wantAfter, perSeg[s]...)
	}
	wantRecords(t, got, wantAfter)
	if _, err := os.Stat(p + quarantineSuffix); err != nil {
		t.Fatalf("expected quarantined segment: %v", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"always", Options{Sync: SyncAlways}},
		{"interval", Options{Sync: SyncInterval, Interval: 5 * time.Millisecond}},
		{"never", Options{Sync: SyncNever}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.opts.MetricsName = "wal.test.pol." + tc.name
			_, w := replayAll(t, dir, tc.opts)
			want := appendN(t, w, 5, tc.name)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got, w2 := replayAll(t, dir, tc.opts)
			defer w2.Close()
			wantRecords(t, got, want)
		})
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	_, w := replayAll(t, dir, Options{Sync: SyncAlways, MetricsName: "wal.test.grp"})
	const G, per = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				end, err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i)))
				if err == nil {
					err = w.WaitDurable(end)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := w.BacklogBytes(); got != 0 {
		t.Fatalf("backlog after full durability = %d, want 0", got)
	}
	w.Close()
	got, w2 := replayAll(t, dir, Options{Sync: SyncAlways, MetricsName: "wal.test.grp"})
	defer w2.Close()
	if len(got) != G*per {
		t.Fatalf("replayed %d, want %d", len(got), G*per)
	}
}

// TestCrashMatrix drives every labeled crash point with every die
// action: after the simulated death and a reopen, every acknowledged
// record must replay exactly once, in order, and the log must accept
// new appends.
func TestCrashMatrix(t *testing.T) {
	labels := []string{PointAppendEnter, PointAppendFramed, PointSynced}
	actions := []Action{Die, DieFlushHalf, DieFlushAll}
	for _, label := range labels {
		for _, act := range actions {
			t.Run(fmt.Sprintf("%s/%d", label, act), func(t *testing.T) {
				dir := t.TempDir()
				opts := Options{Sync: SyncAlways, MetricsName: "wal.test.crash"}
				_, w := replayAll(t, dir, opts)

				acked := appendN(t, w, 5, "pre") // all acknowledged

				// Arm: die on the second hit of the label, so the crash
				// lands mid-stream of the post-arm appends.
				hits := 0
				w.SetCrashHook(func(l string) Action {
					if l != label {
						return Continue
					}
					hits++
					if hits == 2 {
						return act
					}
					return Continue
				})
				var lost int
				for i := 0; i < 4; i++ {
					end, err := w.Append([]byte(fmt.Sprintf("post-%d", i)))
					if err == nil {
						err = w.WaitDurable(end)
					}
					if err == nil {
						acked = append(acked, []byte(fmt.Sprintf("post-%d", i)))
						continue
					}
					if err != ErrCrashed {
						t.Fatalf("append %d: %v", i, err)
					}
					lost++
				}
				if lost == 0 {
					t.Fatal("crash point never fired")
				}

				got, w2 := replayAll(t, dir, opts)
				defer w2.Close()
				// Every acked record survives exactly once, as a prefix;
				// unacked records may or may not follow (DieFlushAll can
				// land a durable-but-unacked record), but never torn ones.
				if len(got) < len(acked) {
					t.Fatalf("replayed %d < %d acked records", len(got), len(acked))
				}
				wantRecords(t, got[:len(acked)], acked)
				for _, extra := range got[len(acked):] {
					if !bytes.HasPrefix(extra, []byte("post-")) {
						t.Fatalf("unexpected surviving record %q", extra)
					}
				}
				if _, err := w2.Append([]byte("after-restart")); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
			})
		}
	}
}

func TestRotateCrashRecovers(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Sync: SyncAlways, SegmentBytes: 64, MetricsName: "wal.test.rotcrash"}
	_, w := replayAll(t, dir, opts)
	acked := appendN(t, w, 3, "seed")
	w.SetCrashHook(func(l string) Action {
		if l == PointRotate {
			return Die
		}
		return Continue
	})
	for i := 0; i < 4; i++ {
		end, err := w.Append([]byte(fmt.Sprintf("r-%d", i)))
		if err == nil {
			err = w.WaitDurable(end)
		}
		if err == ErrCrashed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, []byte(fmt.Sprintf("r-%d", i)))
	}
	got, w2 := replayAll(t, dir, opts)
	defer w2.Close()
	if len(got) < len(acked) {
		t.Fatalf("replayed %d < %d acked", len(got), len(acked))
	}
	wantRecords(t, got[:len(acked)], acked)
}

func TestClosedAndOversizeErrors(t *testing.T) {
	dir := t.TempDir()
	_, w := replayAll(t, dir, Options{Sync: SyncNever, MetricsName: "wal.test.err"})
	if _, err := w.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if _, err := w.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := w.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
