package eval

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestBrierKnownValues(t *testing.T) {
	// Perfect predictions → 0; inverted → 1; 0.5 everywhere → 0.25.
	if got := Brier([]float64{1, 0}, []bool{true, false}); got != 0 {
		t.Fatalf("perfect brier = %v", got)
	}
	if got := Brier([]float64{0, 1}, []bool{true, false}); got != 1 {
		t.Fatalf("inverted brier = %v", got)
	}
	if got := Brier([]float64{0.5, 0.5}, []bool{true, false}); got != 0.25 {
		t.Fatalf("uniform brier = %v", got)
	}
	if got := Brier(nil, nil); got != 0 {
		t.Fatalf("empty brier = %v", got)
	}
}

func TestBrierPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Brier([]float64{1}, []bool{true, false})
}

func TestReliabilityAndECEPerfectlyCalibrated(t *testing.T) {
	rng := stats.NewRNG(3)
	n := 60000
	probs := make([]float64, n)
	labels := make([]bool, n)
	for i := range probs {
		probs[i] = rng.Float64()
		labels[i] = rng.Bernoulli(probs[i])
	}
	rel := Reliability(probs, labels, 10)
	if len(rel) != 10 {
		t.Fatalf("bins = %d", len(rel))
	}
	total := 0
	for _, b := range rel {
		total += b.Count
		if b.Count > 0 && math.Abs(b.MeanPredicted-b.ObservedRate) > 0.05 {
			t.Fatalf("bin [%v,%v): predicted %v vs observed %v",
				b.Lo, b.Hi, b.MeanPredicted, b.ObservedRate)
		}
	}
	if total != n {
		t.Fatalf("bin counts sum to %d", total)
	}
	if e := ECE(probs, labels, 10); e > 0.02 {
		t.Fatalf("ECE of calibrated predictions = %v", e)
	}
}

func TestECEDetectsMiscalibration(t *testing.T) {
	rng := stats.NewRNG(4)
	n := 20000
	probs := make([]float64, n)
	labels := make([]bool, n)
	for i := range probs {
		probs[i] = 0.9 // overconfident
		labels[i] = rng.Bernoulli(0.1)
	}
	if e := ECE(probs, labels, 10); e < 0.7 {
		t.Fatalf("ECE should flag gross miscalibration, got %v", e)
	}
}

func TestReliabilityClampsOutOfRange(t *testing.T) {
	rel := Reliability([]float64{-0.5, 1.5}, []bool{false, true}, 5)
	if rel[0].Count != 1 || rel[4].Count != 1 {
		t.Fatalf("clamping failed: %+v", rel)
	}
	if e := ECE(nil, nil, 5); e != 0 {
		t.Fatalf("empty ECE = %v", e)
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := KendallTau(a, a); got != 1 {
		t.Fatalf("tau(a,a) = %v", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Fatalf("tau reversed = %v", got)
	}
	// One swapped adjacent pair of 4: 5 concordant, 1 discordant → 4/6.
	b := []float64{1, 3, 2, 4}
	if got := KendallTau(a, b); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Fatalf("tau = %v, want %v", got, 4.0/6.0)
	}
	if KendallTau(a, a[:2]) != 0 {
		t.Fatal("mismatched lengths must return 0")
	}
	if KendallTau([]float64{1}, []float64{1}) != 0 {
		t.Fatal("single element must return 0")
	}
}

func TestKFold(t *testing.T) {
	folds, err := KFold(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		if len(f) < 3 || len(f) > 4 {
			t.Fatalf("fold size %d", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d of 10", len(seen))
	}
	if _, err := KFold(10, 1, 1); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := KFold(3, 5, 1); err == nil {
		t.Fatal("k>n must error")
	}
	// Determinism.
	f2, err := KFold(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range folds {
		for j := range folds[i] {
			if folds[i][j] != f2[i][j] {
				t.Fatal("KFold not deterministic")
			}
		}
	}
}

func TestStratifiedKFoldPreservesPositives(t *testing.T) {
	labels := make([]bool, 100)
	for i := 0; i < 10; i++ {
		labels[i] = true // 10% positives
	}
	folds, err := StratifiedKFold(labels, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range folds {
		pos := 0
		for _, i := range f {
			if labels[i] {
				pos++
			}
		}
		if pos != 2 {
			t.Fatalf("fold %d has %d positives, want 2", fi, pos)
		}
	}
	if _, err := StratifiedKFold(labels, 1, 1); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := StratifiedKFold(labels[:2], 5, 1); err == nil {
		t.Fatal("k>n must error")
	}
}

func TestTrainIndices(t *testing.T) {
	folds := [][]int{{0, 1}, {2, 3}, {4}}
	tr, err := TrainIndices(folds, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: true, 4: true}
	if len(tr) != 3 {
		t.Fatalf("train = %v", tr)
	}
	for _, i := range tr {
		if !want[i] {
			t.Fatalf("unexpected index %d", i)
		}
	}
	if _, err := TrainIndices(folds, 9); err == nil {
		t.Fatal("bad holdout must error")
	}
}
