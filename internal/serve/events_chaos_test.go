package serve

// WAL chaos matrix at the serving layer. Each case kills the default
// shard's event log at a labeled crash point mid-ingest (in-process
// SIGKILL model: controlled loss of the user-space buffer), then boots
// a fresh server over the same directory and checks the two recovery
// invariants the durability contract promises:
//
//   1. Exactly-once: every acknowledged event survives the restart, and
//      after the client retries the full sequence, each event is applied
//      exactly once (dedup absorbs both replayed-unacked frames and
//      retries of acked ones).
//   2. Determinism: the recovered server retrains the default model to a
//      bit-identical ranking ETag as a no-crash control run over the
//      same event sequence.

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/wal"
)

// chaosEvent builds the i-th event of the fixed chaos sequence against
// sh's registry: distinct IDs, rotating pipes, distinct days.
func chaosEvent(sh *shard, i int) map[string]any {
	pipes := sh.net.Pipes()
	p := pipes[i%len(pipes)]
	return map[string]any{
		"id":      fmt.Sprintf("chaos-%d", i),
		"pipe_id": p.ID,
		"year":    sh.net.ObservedTo + 1,
		"day":     i + 1,
		"mode":    "BREAK",
	}
}

// trainedETag trains the default model and returns its ranking ETag.
func trainedETag(t *testing.T, s *Server, ts *httptest.Server) string {
	t.Helper()
	def := string(s.defaultModel)
	if code := postJSON(t, ts.URL+"/api/models/"+def+"/train", nil, nil); code != 200 {
		t.Fatalf("train status %d", code)
	}
	return fetchRankingETag(t, ts.URL+"/api/models/"+def+"/ranking")
}

func TestChaosWALIngestCrashMatrix(t *testing.T) {
	const total = 5
	cfg := EventLogConfig{Sync: wal.SyncAlways, SegmentBytes: 256}

	// No-crash control: the full sequence, then the default model's ETag.
	ctrl, ctrlTS := newEventServer(t, t.TempDir(), cfg)
	for i := 0; i < total; i++ {
		if code := postJSON(t, ctrlTS.URL+"/api/events", chaosEvent(ctrl.def, i), nil); code != 200 {
			t.Fatalf("control post %d status %d", i, code)
		}
	}
	wantETag := trainedETag(t, ctrl, ctrlTS)

	cases := []struct {
		label  string
		action wal.Action
		hit    int
	}{
		{wal.PointAppendEnter, wal.Die, 3},
		{wal.PointAppendFramed, wal.Die, 3},
		{wal.PointAppendFramed, wal.DieFlushHalf, 3},
		{wal.PointAppendFramed, wal.DieFlushAll, 3},
		{wal.PointRotate, wal.Die, 1},
		{wal.PointSynced, wal.Die, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/action%d/hit%d", tc.label, tc.action, tc.hit), func(t *testing.T) {
			dir := t.TempDir()
			s1, ts1 := newEventServer(t, dir, cfg)
			hits := 0
			s1.def.ingest.wal.SetCrashHook(func(label string) wal.Action {
				if label != tc.label {
					return wal.Continue
				}
				hits++
				if hits == tc.hit {
					return tc.action
				}
				return wal.Continue
			})
			acked := 0
			for i := 0; i < total; i++ {
				var resp eventsResponse
				code := postJSON(t, ts1.URL+"/api/events", chaosEvent(s1.def, i), &resp)
				if code != 200 {
					break // the crash: a 503, never a false ack
				}
				acked += resp.Accepted
			}
			if acked == 0 || acked == total {
				t.Fatalf("crash point never fired mid-sequence: %d/%d acked", acked, total)
			}

			// "Restart": a fresh server recovers the same directory.
			s2, ts2 := newEventServer(t, dir, cfg)
			recovered := int(s2.def.eventSeqNow())
			if recovered < acked {
				t.Fatalf("recovered %d events but %d were acknowledged — lost an ack", recovered, acked)
			}
			if recovered > total {
				t.Fatalf("recovered %d events from a %d-event sequence — duplicated on replay", recovered, total)
			}
			// Client retry of the whole sequence: dedup must absorb every
			// recovered event and fill in only the lost ones.
			var accepted, dups int
			for i := 0; i < total; i++ {
				var resp eventsResponse
				if code := postJSON(t, ts2.URL+"/api/events", chaosEvent(s2.def, i), &resp); code != 200 {
					t.Fatalf("retry post %d status %d", i, code)
				}
				accepted += resp.Accepted
				dups += resp.Duplicates
			}
			if dups != recovered || accepted != total-recovered {
				t.Fatalf("retry accepted %d / deduped %d over %d recovered — not exactly-once", accepted, dups, recovered)
			}
			if got := int(s2.def.eventSeqNow()); got != total {
				t.Fatalf("final live seq %d, want %d", got, total)
			}
			if got := trainedETag(t, s2, ts2); got != wantETag {
				t.Fatalf("recovered ETag %s != no-crash control %s", got, wantETag)
			}
		})
	}
}

// TestChaosIngestStormDuringRebuilds hammers POST /api/events from
// several goroutines while scheduler-style rebuilds run, then checks
// the final rebuild trains at the final event seq — the -race proof
// that live ingest, pipeline extension and atomic publish compose.
func TestChaosIngestStormDuringRebuilds(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	def := string(s.defaultModel)
	if code := postJSON(t, ts.URL+"/api/models/"+def+"/train", nil, nil); code != 200 {
		t.Fatal("base train failed")
	}

	const workers, perWorker = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			pipes := s.def.net.Pipes()
			for i := 0; i < perWorker; i++ {
				body := map[string]any{
					"id":      fmt.Sprintf("storm-%d-%d", w, i),
					"pipe_id": pipes[(w*perWorker+i)%len(pipes)].ID,
					"year":    s.def.net.ObservedTo + 1,
					"day":     (w*perWorker+i)%366 + 1,
				}
				if code := postJSON(t, ts.URL+"/api/events", body, nil); code != 200 {
					t.Errorf("storm post %d/%d status %d", w, i, code)
					return
				}
			}
		}()
	}
	rebuildsDone := make(chan struct{})
	go func() {
		defer close(rebuildsDone)
		for i := 0; i < 3; i++ {
			s.rebuild(s.def, def)
		}
	}()
	wg.Wait()
	<-rebuildsDone

	if got := s.def.eventSeqNow(); got != workers*perWorker {
		t.Fatalf("final seq %d, want %d", got, workers*perWorker)
	}
	// One more pass now that ingest has quiesced: the published snapshot
	// must catch up to the final seq.
	s.rebuild(s.def, def)
	tm := (*s.def.models.Load())[def]
	if tm.eventSeq != int64(workers*perWorker) {
		t.Fatalf("final snapshot trained at seq %d, want %d", tm.eventSeq, workers*perWorker)
	}
}
