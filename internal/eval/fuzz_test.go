package eval

import (
	"encoding/binary"
	"math"
	"testing"
)

// aucFuzzBytes encodes a scores/labels pair in the fuzz wire format:
// 9 bytes per item — 8 little-endian float64 bytes then a label byte
// whose low bit is the class.
func aucFuzzBytes(scores []float64, labels []bool) []byte {
	buf := make([]byte, 0, 9*len(scores))
	for i, s := range scores {
		var item [9]byte
		binary.LittleEndian.PutUint64(item[:8], math.Float64bits(s))
		if labels[i] {
			item[8] = 1
		}
		buf = append(buf, item[:]...)
	}
	return buf
}

// FuzzAUCKernelVsNaive decodes arbitrary bytes into a scores/labels pair
// and demands that the counting-rank kernel, the legacy sort kernel and
// the O(P·N) pairwise definition agree bitwise. NaN payloads are
// normalized to 0 before the comparison: the kernel's NaN behavior is a
// documented fallback to the sort path (covered by
// TestAUCKernelNaNFallsBackToSort), while the pairwise oracle has no
// meaningful NaN semantics to differ against.
func FuzzAUCKernelVsNaive(f *testing.F) {
	// All-ties: every score equal, both classes present.
	f.Add(aucFuzzBytes(
		[]float64{1.5, 1.5, 1.5, 1.5, 1.5},
		[]bool{true, false, true, false, false}))
	// Single class: AUC degenerates to 0.5 on both paths.
	f.Add(aucFuzzBytes([]float64{0.1, 0.7, 0.3}, []bool{true, true, true}))
	f.Add(aucFuzzBytes([]float64{0.1, 0.7, 0.3}, []bool{false, false, false}))
	// NaN-free adversarial: infinities, both zeros, denormals, adjacent
	// representable values, and quantized integers forcing tie groups
	// that straddle the sign boundary.
	f.Add(aucFuzzBytes(
		[]float64{math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 5e-324, -5e-324,
			1, math.Nextafter(1, 2), -2, -2, 3, 3, 0, 1},
		[]bool{true, false, true, false, true, false, true, false, true, false, true, false, true, false}))
	f.Add([]byte{})
	f.Add(aucFuzzBytes([]float64{42}, []bool{true}))

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 9
		if n > 256 {
			n = 256
		}
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := 0; i < n; i++ {
			s := math.Float64frombits(binary.LittleEndian.Uint64(data[i*9:]))
			if math.IsNaN(s) {
				s = 0
			}
			scores[i] = s
			labels[i] = data[i*9+8]&1 == 1
		}
		var k, legacy AUCKernel
		got := k.Compute(scores, labels)
		want := legacy.computeViaSort(scores, labels)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("counting kernel %v != sort kernel %v (n=%d, scores=%v, labels=%v)",
				got, want, n, scores, labels)
		}
		if pw := pairwiseAUC(scores, labels); math.Float64bits(got) != math.Float64bits(pw) {
			t.Fatalf("counting kernel %v != pairwise %v (n=%d, scores=%v, labels=%v)",
				got, pw, n, scores, labels)
		}
	})
}
