package dataset

import (
	"errors"
	"fmt"
	"strings"
)

// ValidationError aggregates every integrity problem found in a Network so
// a data-loading pipeline can report them all at once instead of failing on
// the first.
type ValidationError struct {
	Problems []string
}

// Error implements the error interface; it lists up to ten problems.
func (e *ValidationError) Error() string {
	const show = 10
	n := len(e.Problems)
	shown := e.Problems
	if n > show {
		shown = e.Problems[:show]
	}
	msg := fmt.Sprintf("dataset: %d validation problem(s): %s", n, strings.Join(shown, "; "))
	if n > show {
		msg += fmt.Sprintf("; and %d more", n-show)
	}
	return msg
}

// Validate checks the structural integrity of the network: unique pipe IDs,
// physically plausible attributes, and failures that reference existing
// pipes, valid segments, and the observation window. It returns nil when
// the network is clean, or a *ValidationError listing every problem.
func (n *Network) Validate() error {
	var probs []string
	add := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}

	if n.ObservedFrom > n.ObservedTo {
		add("observation window [%d, %d] is inverted", n.ObservedFrom, n.ObservedTo)
	}

	seen := make(map[string]bool, len(n.pipes))
	for i := range n.pipes {
		p := &n.pipes[i]
		if p.ID == "" {
			add("pipe %d has empty ID", i)
			continue
		}
		if seen[p.ID] {
			add("duplicate pipe ID %q", p.ID)
		}
		seen[p.ID] = true
		if p.DiameterMM <= 0 {
			add("pipe %q has non-positive diameter %v", p.ID, p.DiameterMM)
		}
		if p.LengthM <= 0 {
			add("pipe %q has non-positive length %v", p.ID, p.LengthM)
		}
		if p.Segments <= 0 {
			add("pipe %q has non-positive segment count %d", p.ID, p.Segments)
		}
		if p.LaidYear > n.ObservedTo {
			add("pipe %q laid in %d, after observation end %d", p.ID, p.LaidYear, n.ObservedTo)
		}
		if p.Class != ClassForDiameter(p.DiameterMM) {
			add("pipe %q class %s inconsistent with diameter %v mm", p.ID, p.Class, p.DiameterMM)
		}
		if p.DistToTrafficM < 0 {
			add("pipe %q has negative traffic distance %v", p.ID, p.DistToTrafficM)
		}
	}

	for i := range n.failures {
		f := &n.failures[i]
		p, ok := n.PipeByID(f.PipeID)
		if !ok {
			add("failure %d references unknown pipe %q", i, f.PipeID)
			continue
		}
		if f.Segment < 0 || f.Segment >= p.Segments {
			add("failure %d on pipe %q has segment %d outside [0,%d)", i, f.PipeID, f.Segment, p.Segments)
		}
		if f.Year < n.ObservedFrom || f.Year > n.ObservedTo {
			add("failure %d on pipe %q in year %d outside window [%d,%d]",
				i, f.PipeID, f.Year, n.ObservedFrom, n.ObservedTo)
		}
		if f.Year < p.LaidYear {
			add("failure %d on pipe %q predates laid year %d", i, f.PipeID, p.LaidYear)
		}
		if f.Day < 1 || f.Day > 366 {
			add("failure %d on pipe %q has day-of-year %d", i, f.PipeID, f.Day)
		}
	}

	if len(probs) == 0 {
		return nil
	}
	return &ValidationError{Problems: probs}
}

// AsValidationError unwraps err into a *ValidationError when possible.
func AsValidationError(err error) (*ValidationError, bool) {
	var ve *ValidationError
	if errors.As(err, &ve) {
		return ve, true
	}
	return nil, false
}
