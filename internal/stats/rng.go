// Package stats provides the statistical substrate for the pipefail library:
// seeded random number generation, descriptive statistics, probability
// distributions, special functions, quantiles and hypothesis tests.
//
// Every stochastic component in the repository draws randomness through this
// package so that experiments are reproducible from a single seed.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a seeded source of randomness used across the library.
// It wraps math/rand with a few extra samplers (exponential, Weibull,
// lognormal, Poisson, categorical) that the synthetic data generator and the
// evolutionary optimizer need.
//
// RNG is not safe for concurrent use; derive independent streams with Split.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new independent generator from the current one.
// The derived stream is a pure function of the parent's state, so a fixed
// seed still yields a fully reproducible tree of streams.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform float64 in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Norm returns a standard normal variate.
func (g *RNG) Norm() float64 { return g.r.NormFloat64() }

// Normal returns a normal variate with the given mean and standard deviation.
func (g *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*g.r.NormFloat64()
}

// LogNormal returns a lognormal variate where the underlying normal has the
// given mu and sigma.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exp returns an exponential variate with the given rate (rate > 0).
func (g *RNG) Exp(rate float64) float64 {
	// Inverse CDF; 1-U avoids log(0).
	return -math.Log(1-g.r.Float64()) / rate
}

// Weibull returns a Weibull variate with the given shape k and scale lambda.
func (g *RNG) Weibull(shape, scale float64) float64 {
	u := 1 - g.r.Float64()
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Poisson returns a Poisson variate with the given mean.
// It uses Knuth's method for small means and a normal approximation with
// rejection clamping for large ones, which is accurate enough for workload
// generation (mean < 1 in all uses inside this repository).
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= g.r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation for large means.
	v := g.Normal(mean, math.Sqrt(mean))
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// Categorical draws an index from the (unnormalized, non-negative) weights.
// It panics if weights is empty or sums to a non-positive value, because a
// malformed preset table is a programming error, not a runtime condition.
func (g *RNG) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: Categorical with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: Categorical with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: Categorical weights sum to zero")
	}
	u := g.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). If k >= n it returns the identity permutation of all n indices.
// The result is in random order.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return g.r.Perm(n)
	}
	// Partial Fisher-Yates over an index array.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + g.r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
