// Package serve exposes a trained-model service over HTTP: a water utility
// integration point that loads one network, trains models on demand, and
// serves rankings, per-pipe risk lookups and budget-constrained inspection
// plans as JSON. It is deliberately stdlib-only (net/http with Go 1.22
// method patterns).
package serve

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Server wires one network and its pipeline into an http.Handler.
// All handlers are safe for concurrent use; model training is
// singleflighted per model name: the first request trains, concurrent
// requests for the same model block on the in-flight run and share its
// outcome instead of being refused.
//
// Every route is wrapped in metrics middleware (request counter, latency
// histogram, error counter, in-flight gauge) recording into the default
// obs registry, which GET /metrics exposes as a JSON snapshot; DESIGN.md
// documents the catalog.
type Server struct {
	net  *pipefail.Network
	pipe *pipefail.Pipeline
	log  *log.Logger

	// trainFn runs one training pass; it defaults to (*Server).train and
	// is a seam for tests that need to inject training failures.
	trainFn func(name string) (*trainedModel, error)

	metrics serveMetrics

	mu      sync.RWMutex
	models  map[string]*trainedModel
	pending map[string]*trainJob
}

// serveMetrics caches the singleflight/in-flight metric handles so the
// request path never does a registry lookup.
type serveMetrics struct {
	inflight      *obs.Gauge
	sfHits        *obs.Counter // waiters that joined an in-flight run
	sfMisses      *obs.Counter // requests that started a training run
	sfCached      *obs.Counter // requests served from the trained cache
	trainFailures *obs.Counter
}

func newServeMetrics() serveMetrics {
	reg := obs.Default()
	return serveMetrics{
		inflight:      reg.Gauge("serve.inflight"),
		sfHits:        reg.Counter("serve.train.singleflight.hits"),
		sfMisses:      reg.Counter("serve.train.singleflight.misses"),
		sfCached:      reg.Counter("serve.train.cached_hits"),
		trainFailures: reg.Counter("serve.train.failures"),
	}
}

type trainedModel struct {
	model   pipefail.Model
	ranking *pipefail.Ranking
	// rankIdx maps pipe ID → row in ranking, built once at train time so
	// per-request handlers never scan PipeIDs.
	rankIdx    map[string]int
	calibrator core.Calibrator
	fitSeconds float64
}

// trainJob is the singleflight slot for one model name: done is closed
// when the training run finishes, after tm and err are set.
type trainJob struct {
	done chan struct{}
	tm   *trainedModel
	err  error
}

// New builds a Server around the network. Options mirror
// pipefail.NewPipeline; logger may be nil (logs are discarded into the
// default logger then).
func New(net *pipefail.Network, logger *log.Logger, opts ...pipefail.PipelineOption) (*Server, error) {
	p, err := pipefail.NewPipeline(net, opts...)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		net:     net,
		pipe:    p,
		log:     logger,
		metrics: newServeMetrics(),
		models:  make(map[string]*trainedModel),
		pending: make(map[string]*trainJob),
	}
	s.trainFn = s.train
	return s, nil
}

// Handler returns the routed http.Handler. Every route, including
// GET /metrics itself, runs inside the metrics middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /api/network", s.instrument("network", s.handleNetwork))
	mux.HandleFunc("GET /api/models", s.instrument("models", s.handleModels))
	mux.HandleFunc("POST /api/models/{name}/train", s.instrument("train", s.handleTrain))
	mux.HandleFunc("GET /api/models/{name}/ranking", s.instrument("ranking", s.handleRanking))
	mux.HandleFunc("GET /api/pipes/{id}", s.instrument("pipe", s.handlePipe))
	mux.HandleFunc("GET /api/cohorts", s.instrument("cohorts", s.handleCohorts))
	mux.HandleFunc("GET /api/hotspots", s.instrument("hotspots", s.handleHotspots))
	mux.HandleFunc("POST /api/plan", s.instrument("plan", s.handlePlan))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// instrument wraps a handler with the per-endpoint metrics: request
// counter, latency histogram, 4xx/5xx error counter and the shared
// in-flight gauge. Handles are resolved once per route at Handler()
// time, so the request path pays only atomic updates.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reg := obs.Default()
	requests := reg.Counter("serve.requests." + route)
	errors := reg.Counter("serve.errors." + route)
	latency := reg.Histogram("serve.request_seconds."+route, nil)
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inflight.Inc()
		defer s.metrics.inflight.Dec()
		requests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		latency.Observe(time.Since(start).Seconds())
		if sw.status >= 400 {
			errors.Inc()
		}
	}
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// writeJSON sets Content-Type before WriteHeader — headers changed after
// the status line is flushed are silently ignored — and reports encoding
// failures (client hung up mid-body, unencodable value) to the server
// log instead of dropping them.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Printf("serve: encode response (status %d): %v", status, err)
	}
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleMetrics serves a JSON snapshot of the default obs registry:
// per-endpoint request/latency/error series, the training singleflight
// counters, per-model fit-duration histograms and the worker-pool task
// counters (see DESIGN.md for the catalog).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, obs.Default().Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleNetwork(w http.ResponseWriter, _ *http.Request) {
	split := s.pipe.Split()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"region":     s.net.Region,
		"pipes":      s.net.NumPipes(),
		"failures":   s.net.NumFailures(),
		"observed":   []int{s.net.ObservedFrom, s.net.ObservedTo},
		"train":      []int{split.TrainFrom, split.TrainTo},
		"test_year":  split.TestYear,
		"network_km": s.net.TotalLengthM() / 1000,
	})
}

type modelStatus struct {
	Name       string  `json:"name"`
	Trained    bool    `json:"trained"`
	AUC        float64 `json:"auc,omitempty"`
	Det1       float64 `json:"detection_at_1pct,omitempty"`
	FitSeconds float64 `json:"fit_seconds,omitempty"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []modelStatus
	for _, name := range pipefail.Models() {
		st := modelStatus{Name: name}
		if tm, ok := s.models[name]; ok {
			st.Trained = true
			st.AUC = tm.ranking.AUC()
			st.Det1 = tm.ranking.DetectionAt(0.01)
			st.FitSeconds = tm.fitSeconds
		}
		out = append(out, st)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func knownModel(name string) bool {
	for _, m := range pipefail.Models() {
		if m == name {
			return true
		}
	}
	return false
}

// get returns the trained model, training it on first use. Exactly one
// goroutine trains any given model; concurrent callers block on the
// in-flight job's done channel and share its result, so the HTTP layer
// degrades to queueing (not errors) under concurrent load. A failed run
// is not cached: its waiters all receive the error, and the next request
// starts a fresh attempt.
func (s *Server) get(name string) (*trainedModel, error) {
	if !knownModel(name) {
		return nil, fmt.Errorf("unknown model %q", name)
	}
	s.mu.Lock()
	if tm, ok := s.models[name]; ok {
		s.mu.Unlock()
		s.metrics.sfCached.Inc()
		return tm, nil
	}
	if job, ok := s.pending[name]; ok {
		s.mu.Unlock()
		s.metrics.sfHits.Inc()
		<-job.done
		return job.tm, job.err
	}
	job := &trainJob{done: make(chan struct{})}
	s.pending[name] = job
	s.mu.Unlock()
	s.metrics.sfMisses.Inc()

	job.tm, job.err = s.trainFn(name)
	if job.err != nil {
		s.metrics.trainFailures.Inc()
	}

	s.mu.Lock()
	delete(s.pending, name)
	if job.err == nil {
		s.models[name] = job.tm
	}
	s.mu.Unlock()
	close(job.done)
	return job.tm, job.err
}

// train runs one full training pass for name and assembles the servable
// model with its precomputed pipe-ID index. It does not touch Server maps.
func (s *Server) train(name string) (*trainedModel, error) {
	start := time.Now()
	m, err := s.pipe.Train(name)
	if err != nil {
		return nil, fmt.Errorf("training %q: %w", name, err)
	}
	ranking, err := s.pipe.Rank(m)
	if err != nil {
		return nil, fmt.Errorf("training %q: %w", name, err)
	}
	tm := &trainedModel{
		model: m, ranking: ranking,
		rankIdx:    make(map[string]int, ranking.Len()),
		fitSeconds: time.Since(start).Seconds(),
	}
	for i, id := range ranking.PipeIDs {
		tm.rankIdx[id] = i
	}
	cal := &core.IsotonicCalibrator{}
	if cerr := cal.FitCal(ranking.Scores, ranking.Failed); cerr != nil {
		// Calibration failure is non-fatal: plans fall back to rank-only
		// probabilities.
		s.log.Printf("serve: calibration for %s failed: %v", name, cerr)
	} else {
		tm.calibrator = cal
	}
	s.log.Printf("serve: trained %s in %.2fs (AUC %.4f)", name, tm.fitSeconds, tm.ranking.AUC())
	return tm, nil
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tm, err := s.get(name)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, modelStatus{
		Name: name, Trained: true,
		AUC:        tm.ranking.AUC(),
		Det1:       tm.ranking.DetectionAt(0.01),
		FitSeconds: tm.fitSeconds,
	})
}

type rankedPipe struct {
	Rank     int     `json:"rank"`
	PipeID   string  `json:"pipe_id"`
	Score    float64 `json:"score"`
	FailProb float64 `json:"fail_prob,omitempty"`
}

func (s *Server) handleRanking(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tm, err := s.get(name)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	top := 50
	if q := r.URL.Query().Get("top"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &top); err != nil || top < 1 {
			s.writeErr(w, http.StatusBadRequest, "bad top parameter %q", q)
			return
		}
	}
	ids := tm.ranking.TopIDs(top)
	out := make([]rankedPipe, 0, len(ids))
	for i, id := range ids {
		rp := rankedPipe{Rank: i + 1, PipeID: id, Score: tm.ranking.Scores[tm.rankIdx[id]]}
		if tm.calibrator != nil {
			rp.FailProb = tm.calibrator.Prob(rp.Score)
		}
		out = append(out, rp)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePipe(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	p, ok := s.net.PipeByID(id)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "unknown pipe %q", id)
		return
	}
	resp := map[string]any{
		"id":             p.ID,
		"class":          p.Class.String(),
		"material":       string(p.Material),
		"coating":        string(p.Coating),
		"diameter":       p.DiameterMM,
		"length_m":       p.LengthM,
		"laid_year":      p.LaidYear,
		"soil":           map[string]string{"corrosivity": p.SoilCorrosivity, "expansivity": p.SoilExpansivity, "geology": p.SoilGeology, "map": p.SoilMap},
		"dist_traffic_m": p.DistToTrafficM,
		"failures":       len(s.net.FailuresOf(id)),
	}
	scores := map[string]float64{}
	s.mu.RLock()
	for name, tm := range s.models {
		if i, ok := tm.rankIdx[id]; ok {
			scores[name] = tm.ranking.Scores[i]
		}
	}
	s.mu.RUnlock()
	if len(scores) > 0 {
		resp["scores"] = scores
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCohorts(w http.ResponseWriter, r *http.Request) {
	by := r.URL.Query().Get("by")
	switch by {
	case "", "material":
		s.writeJSON(w, http.StatusOK, s.net.CohortByMaterial())
	case "age":
		rows, err := s.net.CohortByAgeBand(10)
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.writeJSON(w, http.StatusOK, rows)
	case "diameter":
		rows, err := s.net.CohortByDiameterBand([]float64{100, 200, 300, 450})
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.writeJSON(w, http.StatusOK, rows)
	default:
		s.writeErr(w, http.StatusBadRequest, "unknown cohort dimension %q (want material, age or diameter)", by)
	}
}

func (s *Server) handleHotspots(w http.ResponseWriter, r *http.Request) {
	min := 2
	if q := r.URL.Query().Get("min"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &min); err != nil || min < 1 {
			s.writeErr(w, http.StatusBadRequest, "bad min parameter %q", q)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, s.net.SegmentHotspots(min))
}

type planRequest struct {
	Model           string  `json:"model"`
	BudgetKM        float64 `json:"budget_km"`
	MaxPipes        int     `json:"max_pipes"`
	InspectionPerKM float64 `json:"inspection_per_km"`
	FailureCost     float64 `json:"failure_cost"`
}

type planResponse struct {
	Model             string   `json:"model"`
	Pipes             []string `json:"pipes"`
	TotalKM           float64  `json:"total_km"`
	InspectionCost    float64  `json:"inspection_cost"`
	ExpectedPrevented float64  `json:"expected_prevented"`
	ExpectedNet       float64  `json:"expected_net"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Model == "" {
		req.Model = pipefail.Models()[0]
	}
	if req.InspectionPerKM == 0 {
		req.InspectionPerKM = 8000
	}
	if req.FailureCost == 0 {
		req.FailureCost = 150000
	}
	tm, err := s.get(req.Model)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if tm.calibrator == nil {
		s.writeErr(w, http.StatusConflict, "model %q has no calibrator; cannot price a plan", req.Model)
		return
	}
	cands := make([]plan.Candidate, tm.ranking.Len())
	for i, id := range tm.ranking.PipeIDs {
		cands[i] = plan.Candidate{
			ID:       id,
			FailProb: tm.calibrator.Prob(tm.ranking.Scores[i]),
			LengthM:  tm.ranking.LengthM[i],
		}
	}
	cm := plan.CostModel{InspectionPerKM: req.InspectionPerKM, FailureCost: req.FailureCost}
	b := plan.Budget{MaxLengthM: req.BudgetKM * 1000, MaxCount: req.MaxPipes}
	p, err := plan.Greedy(cands, cm, b)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := planResponse{
		Model:             req.Model,
		TotalKM:           p.TotalLengthM / 1000,
		InspectionCost:    p.InspectionCost,
		ExpectedPrevented: p.ExpectedPrevented,
		ExpectedNet:       p.ExpectedNet,
	}
	for _, c := range p.Selected {
		resp.Pipes = append(resp.Pipes, c.ID)
	}
	s.writeJSON(w, http.StatusOK, resp)
}
