package eval

// Ranking kernels shared by the evaluation harness, the serve layer and
// (via core) the ES training hot path. Two disciplines hold throughout:
//
//   - Scratch ownership: kernels with reusable state (AUCKernel, Ranker)
//     are NOT safe for concurrent use; each worker owns its own instance.
//     The stateless package functions (AUC, TopK) allocate fresh scratch
//     per call and are safe anywhere.
//   - Deterministic ties: every sort orders by the (score, original
//     index) composite key. The index tiebreak makes the permutation
//     unique, so the unstable pdqsort behind slices.SortFunc yields the
//     exact ordering a stable sort on scores alone would — bit-identical
//     results across Go versions, worker counts and sort algorithms.

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/parallel"
)

// scoreIx pairs a score with its original row index — the composite sort
// key of every ranking kernel.
type scoreIx struct {
	s float64
	i int
}

// cmpScoreIxAsc orders ascending by score, ties by index. A top-level
// function, not a closure, so sorting captures no variables and performs
// no allocation.
func cmpScoreIxAsc(a, b scoreIx) int {
	if a.s < b.s {
		return -1
	}
	if a.s > b.s {
		return 1
	}
	return a.i - b.i
}

// cmpScoreIxDesc orders descending by score, ties by ascending index —
// the rank order every inspection list uses.
func cmpScoreIxDesc(a, b scoreIx) int {
	if a.s > b.s {
		return -1
	}
	if a.s < b.s {
		return 1
	}
	return a.i - b.i
}

// AUCKernel computes empirical AUCs with reusable scratch: after the
// first call at a given size, Compute performs zero allocations. One
// kernel per goroutine — the ES gives each fitness worker its own. The
// Pool field only fans *internal* loops; the kernel itself must still be
// owned by a single goroutine.
type AUCKernel struct {
	// Pool fans the negative-counting pass across workers with
	// per-worker integer count scratch. Counts are merged by integer
	// summation, so the result is bit-identical for any worker count,
	// including the zero value (fully serial). Small inputs stay serial
	// regardless, to keep goroutine overhead off the ES fitness path.
	Pool parallel.Pool

	buf []scoreIx // legacy sort scratch (NaN fallback path)

	pos    []float64 // positive-class scores (sorted in place)
	negKey []uint64  // order-keys of the negative-class scores
	val    []float64 // distinct positive score values, ascending
	valKey []uint64  // their keys, sentinel-shifted: valKey[g+1] is group g
	posCnt []int64   // positives per distinct value
	below  []int64   // per-worker strict-upper-bound buckets, W x (G+1)
	tied   []int64   // per-worker tie buckets, shifted like valKey, W x (G+1)
}

// floatOrdKey maps a non-NaN float64 to a uint64 whose unsigned order is
// the float order: positive floats get the sign bit set, negative floats
// are bitwise inverted. The map is injective on canonicalized inputs
// (-0 folded to +0), so key equality is float equality — the counting
// pass can run entirely on integer compares, which the compiler lowers
// to branchless SETcc/CMOV where float compares would emit data-dependent
// jumps.
func floatOrdKey(f float64) uint64 {
	b := math.Float64bits(f)
	return b ^ (uint64(int64(b)>>63) | 1<<63)
}

// parallelAUCMin is the negative-count below which the counting pass
// stays on the calling goroutine even when a Pool is configured:
// spawning workers costs more than binary-searching a few thousand
// values.
const parallelAUCMin = 8192

// Compute returns the empirical area under the ROC curve of scores
// against labels, using the rank-statistic formulation (ties counted
// half). Degenerate single-class or empty inputs return 0.5. It panics
// on length mismatch, which always indicates a schema bug rather than a
// data condition.
//
// The kernel is counting-rank based: it partitions the scores by class,
// sorts only the positive side (failures are the rare class in every
// pipe-year set, so this is the small side), and bucket-counts each
// negative against the distinct positive values with one binary search —
// O(P log P + N log P) instead of sorting all N+P scores. The rank walk
// then replays exactly the float operations of the classic
// sort-everything kernel: ranks and tie-group sizes are integers (exact
// in float64, so order-free), and the rankSum additions happen in the
// same ascending-group sequence, making the result bit-identical to the
// legacy kernel — the property internal/kerneltest pins against the
// stable-sort oracle. Inputs containing NaN fall back to the legacy sort
// path (NaN never orders, so no counting identity holds); real score
// vectors are NaN-free by dataset validation.
func (k *AUCKernel) Compute(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("eval: AUC length mismatch %d vs %d", len(scores), len(labels)))
	}
	n := len(scores)
	if n == 0 {
		return 0.5
	}

	// Partition by class, screening for NaN on the way. -0 is folded to
	// +0 (s + 0.0) so that float order/equality and key order/equality
	// coincide; the fold cannot change the result because the rank
	// statistic only ever compares scores and -0 == +0.
	if cap(k.pos) < n {
		k.pos = make([]float64, 0, n)
	}
	if cap(k.negKey) < n {
		k.negKey = make([]uint64, 0, n)
	}
	pos, negKey := k.pos[:0], k.negKey[:0]
	for i, s := range scores {
		if math.IsNaN(s) {
			return k.computeViaSort(scores, labels)
		}
		s += 0.0
		if labels[i] {
			pos = append(pos, s)
		} else {
			negKey = append(negKey, floatOrdKey(s))
		}
	}
	k.pos, k.negKey = pos, negKey
	if len(pos) == 0 || len(negKey) == 0 {
		return 0.5
	}

	// Sort the positive side and collapse it to distinct values, then key
	// them with a duplicated leading sentinel: valKey[g+1] is group g, and
	// valKey[0] repeats group 0 so the tie probe valKey[b] needs no b > 0
	// guard (b == 0 implies the negative is strictly below group 0, which
	// can never equal its key).
	slices.Sort(pos)
	val, cnt := k.val[:0], k.posCnt[:0]
	for i := 0; i < len(pos); {
		j := i
		for j+1 < len(pos) && pos[j+1] == pos[i] {
			j++
		}
		val = append(val, pos[i])
		cnt = append(cnt, int64(j-i+1))
		i = j + 1
	}
	k.val, k.posCnt = val, cnt
	G := len(val)
	valKey := k.valKey[:0]
	if cap(valKey) < G+1 {
		valKey = make([]uint64, 0, G+1)
	}
	valKey = append(valKey, floatOrdKey(val[0]))
	for _, v := range val {
		valKey = append(valKey, floatOrdKey(v))
	}
	k.valKey = valKey

	// Count negatives against the positive groups: below[b] buckets each
	// negative at its strict upper bound b (the number of group values at
	// or below it), so the prefix sum through g is exactly #neg < val[g];
	// tied[g+1] counts exact ties with group g. Each worker owns disjoint
	// count slabs and the merge is integer addition, so any worker count
	// yields bit-identical totals.
	pool := k.Pool
	if len(negKey) < parallelAUCMin {
		pool = parallel.Pool{}
	}
	w := pool.Workers()
	slab := G + 1
	if need := w * slab; cap(k.below) < need {
		k.below = make([]int64, need)
		k.tied = make([]int64, need)
	} else {
		k.below = k.below[:need]
		clear(k.below)
		k.tied = k.tied[:need]
		clear(k.tied)
	}
	below, tied := k.below, k.tied
	if w == 1 {
		// Inline serial pass: a closure handed to Run would escape and
		// cost one allocation per Compute, which the zero-alloc gate on
		// the ES fitness path forbids.
		countNegatives(below, tied, valKey, negKey)
	} else {
		pool.Run(len(negKey), func(worker, lo, hi int) {
			countNegatives(
				below[worker*slab:(worker+1)*slab],
				tied[worker*slab:(worker+1)*slab],
				valKey, negKey[lo:hi])
		})
	}

	// Rank walk over the positive groups in ascending order. rank, group
	// sizes and the tie averages are all integer-valued (exact in
	// float64), and rankSum receives the same addition sequence as the
	// sort-based kernel: per positive group, its average rank added once
	// per positive member.
	var rankSum float64
	var negLess, posBefore int64
	for g := 0; g < G; g++ {
		var eq int64
		for wk := 0; wk < w; wk++ {
			negLess += below[wk*slab+g]
			eq += tied[wk*slab+g+1]
		}
		rank := float64(1 + posBefore + negLess)
		size := cnt[g] + eq
		avg := (rank + rank + float64(size-1)) / 2
		for t := int64(0); t < cnt[g]; t++ {
			rankSum += avg
		}
		posBefore += cnt[g]
	}
	nPos, nNeg := float64(len(pos)), float64(len(negKey))
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// countNegatives buckets each negative key at its strict upper bound b
// among the distinct positive keys (below, length G+1) and counts exact
// ties into the sentinel-shifted slot tied[b] (group b-1). valKey is the
// sentinel-shifted key array: valKey[1:] are the G ascending group keys
// and valKey[0] duplicates the first, so the tie probe valKey[b] is
// always in bounds and can never spuriously match at b == 0.
//
// Negatives are processed in blocks of four independent search lanes.
// Each lane runs the uniform-step branchless upper bound: the interval
// length sequence depends only on G, so all four lanes execute the same
// iteration count, and each step is a compare-to-mask (SETcc) plus a
// masked add — no data-dependent jump. That removes the ~log2(G) branch
// mispredicts per negative a classic binary search pays on random
// scores, and the four independent L1 load chains overlap instead of
// serializing — the same blocked multi-accumulator idea the linalg
// kernels use, applied to searches.
func countNegatives(below, tied []int64, valKey, negKey []uint64) {
	vk := valKey[1:]
	G := len(vk)
	i := 0
	for ; i+4 <= len(negKey); i += 4 {
		kx0, kx1, kx2, kx3 := negKey[i], negKey[i+1], negKey[i+2], negKey[i+3]
		var b0, b1, b2, b3 int
		for n := G; n > 1; n -= n >> 1 {
			half := n >> 1
			var c0, c1, c2, c3 int
			if vk[b0+half-1] <= kx0 {
				c0 = 1
			}
			if vk[b1+half-1] <= kx1 {
				c1 = 1
			}
			if vk[b2+half-1] <= kx2 {
				c2 = 1
			}
			if vk[b3+half-1] <= kx3 {
				c3 = 1
			}
			b0 += half & -c0
			b1 += half & -c1
			b2 += half & -c2
			b3 += half & -c3
		}
		var c0, c1, c2, c3 int
		if vk[b0] <= kx0 {
			c0 = 1
		}
		if vk[b1] <= kx1 {
			c1 = 1
		}
		if vk[b2] <= kx2 {
			c2 = 1
		}
		if vk[b3] <= kx3 {
			c3 = 1
		}
		b0 += c0
		b1 += c1
		b2 += c2
		b3 += c3
		below[b0]++
		below[b1]++
		below[b2]++
		below[b3]++
		var e0, e1, e2, e3 int64
		if valKey[b0] == kx0 {
			e0 = 1
		}
		if valKey[b1] == kx1 {
			e1 = 1
		}
		if valKey[b2] == kx2 {
			e2 = 1
		}
		if valKey[b3] == kx3 {
			e3 = 1
		}
		tied[b0] += e0
		tied[b1] += e1
		tied[b2] += e2
		tied[b3] += e3
	}
	for ; i < len(negKey); i++ {
		kx := negKey[i]
		b := 0
		for n := G; n > 1; n -= n >> 1 {
			half := n >> 1
			var c int
			if vk[b+half-1] <= kx {
				c = 1
			}
			b += half & -c
		}
		if vk[b] <= kx {
			b++
		}
		below[b]++
		if valKey[b] == kx {
			tied[b]++
		}
	}
}

// computeViaSort is the legacy sort-everything rank-statistic kernel:
// sort (score, index) pairs, walk tie groups, average ranks. It remains
// the NaN fallback and the in-package differential oracle for the
// counting kernel (FuzzAUCKernelVsNaive and the kerneltest harness pin
// Compute against it bit for bit on NaN-free inputs).
func (k *AUCKernel) computeViaSort(scores []float64, labels []bool) float64 {
	n := len(scores)
	if n == 0 {
		return 0.5
	}
	buf := k.buf
	if cap(buf) < n {
		buf = make([]scoreIx, n)
	}
	buf = buf[:n]
	for i, s := range scores {
		buf[i] = scoreIx{s, i}
	}
	slices.SortFunc(buf, cmpScoreIxAsc)
	k.buf = buf

	var nPos, nNeg, rankSum float64
	i := 0
	rank := 1.0
	for i < n {
		j := i
		for j+1 < n && buf[j+1].s == buf[i].s {
			j++
		}
		avg := (rank + rank + float64(j-i)) / 2
		for t := i; t <= j; t++ {
			if labels[buf[t].i] {
				rankSum += avg
				nPos++
			} else {
				nNeg++
			}
		}
		rank += float64(j - i + 1)
		i = j + 1
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// Ranker produces descending rank orderings with reusable scratch. The
// slice returned by Order is owned by the Ranker and valid only until
// the next call; copy it to retain. Not safe for concurrent use.
type Ranker struct {
	buf []scoreIx
	idx []int
}

// Order returns indices sorted by score descending, breaking ties by
// original index for determinism.
func (r *Ranker) Order(scores []float64) []int {
	n := len(scores)
	if cap(r.buf) < n {
		r.buf = make([]scoreIx, n)
		r.idx = make([]int, n)
	}
	buf := r.buf[:n]
	idx := r.idx[:n]
	for i, s := range scores {
		buf[i] = scoreIx{s, i}
	}
	slices.SortFunc(buf, cmpScoreIxDesc)
	for i, p := range buf {
		idx[i] = p.i
	}
	return idx
}

// topKHeap is a fixed-capacity min-heap over the descending rank order:
// the root is the *worst* of the kept candidates, so a scan can evict it
// in O(log k) whenever a better candidate arrives.
type topKHeap []scoreIx

// worse reports whether a ranks strictly after b in the descending
// (score, index) order.
func worse(a, b scoreIx) bool {
	if a.s != b.s {
		return a.s < b.s
	}
	return a.i > b.i
}

func (h topKHeap) siftUp(c int) {
	for c > 0 {
		p := (c - 1) / 2
		if !worse(h[c], h[p]) {
			break
		}
		h[c], h[p] = h[p], h[c]
		c = p
	}
}

func (h topKHeap) siftDown(p int) {
	for {
		c := 2*p + 1
		if c >= len(h) {
			return
		}
		if c+1 < len(h) && worse(h[c+1], h[c]) {
			c++
		}
		if !worse(h[c], h[p]) {
			return
		}
		h[p], h[c] = h[c], h[p]
		p = c
	}
}

// TopK returns the indices of the k highest-scoring items in rank order
// (score descending, ties by ascending index). k is clamped to
// [0, len(scores)]. A single O(n) scan maintains a size-k heap — heap
// updates cost O(log k) and only fire when a candidate enters the
// running top k, so unordered inputs cost O(n + k log n) expected rather
// than the full O(n log n) sort — and the kept set is sorted in
// O(k log k) at the end. The selection is identical to sorting the whole
// slice and taking the first k, because the (score, index) key is a
// total order.
func TopK(scores []float64, k int) []int {
	if k < 0 {
		k = 0
	}
	if k > len(scores) {
		k = len(scores)
	}
	if k == 0 {
		return []int{}
	}
	h := make(topKHeap, 0, k)
	for i, s := range scores {
		c := scoreIx{s, i}
		if len(h) < k {
			h = append(h, c)
			h.siftUp(len(h) - 1)
			continue
		}
		if worse(c, h[0]) {
			continue
		}
		h[0] = c
		h.siftDown(0)
	}
	slices.SortFunc(h, cmpScoreIxDesc)
	out := make([]int, k)
	for i, p := range h {
		out[i] = p.i
	}
	return out
}
