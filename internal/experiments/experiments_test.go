package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/feature"
)

// fastOpts runs everything at 4 % scale with a reduced ES budget and the
// cheap model subset, so the whole experiment suite stays test-friendly.
func fastOpts() Options {
	return Options{
		Seed:          1,
		Scale:         0.04,
		Regions:       []string{"A"},
		Models:        []string{"DirectAUC-ES", "Cox", "Heuristic-Age"},
		ESGenerations: 15,
	}
}

func TestStandardRegistryInstantiatesEverything(t *testing.T) {
	reg := NewRegistry(1, 0)
	for _, name := range StandardModelNames() {
		m, err := reg.New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("model %q reports name %q", name, m.Name())
		}
	}
}

func TestRunRegionsProducesFullEvals(t *testing.T) {
	results, err := RunRegions(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("want 1 region, got %d", len(results))
	}
	r := results[0]
	if r.Region != "A" || r.Net == nil {
		t.Fatalf("region result %+v", r)
	}
	if len(r.Evals) != 3 {
		t.Fatalf("want 3 model evals, got %d", len(r.Evals))
	}
	for _, e := range r.Evals {
		if e.AUC < 0.3 || e.AUC > 1 {
			t.Fatalf("%s AUC %v implausible", e.Model, e.AUC)
		}
		if e.Det1 < 0 || e.Det1 > 1 || e.Det10 < e.Det1-1e-9 {
			t.Fatalf("%s detection rates inconsistent: %v %v", e.Model, e.Det1, e.Det10)
		}
		if len(e.Curve) == 0 || len(e.Scores) == 0 {
			t.Fatalf("%s missing curve or scores", e.Model)
		}
		if e.FitSeconds < 0 {
			t.Fatalf("negative fit time")
		}
	}
	// The learned ranker should beat the bare age heuristic on AUC.
	var direct, age float64
	for _, e := range r.Evals {
		switch e.Model {
		case "DirectAUC-ES":
			direct = e.AUC
		case "Heuristic-Age":
			age = e.AUC
		}
	}
	if direct <= age-0.03 {
		t.Fatalf("DirectAUC (%v) should not trail age heuristic (%v)", direct, age)
	}
}

func TestT1DatasetSummary(t *testing.T) {
	opts := fastOpts()
	opts.Regions = []string{"A", "B"}
	tb, err := T1DatasetSummary(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	// Each region renders All/CWM/RWM rows.
	if tb.NumRows() != 6 {
		t.Fatalf("want 6 rows, got %d:\n%s", tb.NumRows(), s)
	}
	for _, want := range []string{"region", "CWM", "RWM", "1998-2009"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestT0Cohorts(t *testing.T) {
	tb, err := T0Cohorts(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	for _, want := range []string{"CICL", "age 0-19", "<100mm", "rate/pipe-yr"} {
		if !strings.Contains(s, want) {
			t.Fatalf("T0 missing %q:\n%s", want, s)
		}
	}
	// The oldest materials (CI) must show a higher rate than PVC on an
	// ageing network: verify via CSV export round trip.
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "region,cohort") {
		t.Fatalf("csv header missing:\n%s", buf.String())
	}
}

func TestT2T3F1Tables(t *testing.T) {
	results, err := RunRegions(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	t2 := T2AUCTable(results)
	if t2.NumRows() != 3 || !strings.Contains(t2.String(), "region A") {
		t.Fatalf("T2:\n%s", t2.String())
	}
	t3 := T3BudgetTable(results)
	if t3.NumRows() != 3 || !strings.Contains(t3.String(), "/") {
		t.Fatalf("T3:\n%s", t3.String())
	}
	f1 := F1DetectionSeries(results, nil)
	if f1.NumRows() != 3 || !strings.Contains(f1.String(), "100.00%") {
		t.Fatalf("F1:\n%s", f1.String())
	}
	// Empty input keeps tables valid.
	if T2AUCTable(nil).NumRows() != 0 {
		t.Fatal("empty T2 must have no rows")
	}
	if T3BudgetTable(nil).NumRows() != 0 {
		t.Fatal("empty T3 must have no rows")
	}
}

func TestT4Significance(t *testing.T) {
	opts := fastOpts()
	opts.Models = []string{"DirectAUC-ES", "Heuristic-Age", "Random"}
	res, err := T4Significance(opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1 region x 2 baselines.
	if len(res) != 2 {
		t.Fatalf("want 2 results, got %d", len(res))
	}
	for _, r := range res {
		if r.Proposed != "DirectAUC-ES" {
			t.Fatalf("proposed = %s", r.Proposed)
		}
		if r.AUCTest.DF != 4 { // 5 rolling test years
			t.Fatalf("df = %v, want 4", r.AUCTest.DF)
		}
	}
	// Against Random the proposed method must at least have a positive
	// mean difference.
	for _, r := range res {
		if r.Baseline == "Random" && r.AUCTest.MeanDiff <= 0 {
			t.Fatalf("proposed should outrank random: %+v", r.AUCTest)
		}
	}
	tb := T4Table(res)
	if tb.NumRows() != 2 {
		t.Fatalf("T4 table rows %d", tb.NumRows())
	}
}

func TestF2WindowSweep(t *testing.T) {
	opts := fastOpts()
	opts.Models = []string{"Cox"}
	tb, err := F2WindowSweep(opts, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if !strings.Contains(tb.String(), "2y") || !strings.Contains(tb.String(), "5y") {
		t.Fatalf("window headers missing:\n%s", tb.String())
	}
}

func TestT5Ablation(t *testing.T) {
	opts := fastOpts()
	opts.Models = []string{"Logistic"} // cheap, deterministic
	res, err := T5Ablation(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 1 region x (1 full + 6 groups).
	if len(res) != 7 {
		t.Fatalf("want 7 rows, got %d", len(res))
	}
	if res[0].Dropped != "(none)" || res[0].DeltaAUC != 0 {
		t.Fatalf("first row must be the full model: %+v", res[0])
	}
	tb := T5Table(res)
	if tb.NumRows() != 7 {
		t.Fatal("T5 table rows")
	}
}

func TestF3Scalability(t *testing.T) {
	opts := fastOpts()
	opts.Models = []string{"Heuristic-Age"}
	tb, err := F3Scalability(opts, []int{300, 600})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if !strings.Contains(tb.String(), "300 pipes") {
		t.Fatalf("headers missing:\n%s", tb.String())
	}
}

func TestF4RiskMapAndSVG(t *testing.T) {
	opts := fastOpts()
	opts.Models = []string{"Cox"}
	rm, err := F4RiskMap(opts, "A")
	if err != nil {
		t.Fatal(err)
	}
	if rm.Region != "A" || rm.Model != "Cox" {
		t.Fatalf("riskmap meta %+v", rm)
	}
	if len(rm.Pipes) == 0 {
		t.Fatal("no pipes on map")
	}
	deciles := map[int]int{}
	failures := 0
	for _, p := range rm.Pipes {
		if p.Decile < 0 || p.Decile > 9 {
			t.Fatalf("decile %d out of range", p.Decile)
		}
		deciles[p.Decile]++
		if p.Failed {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no failures on map")
	}
	// Deciles should be roughly equal-sized.
	n := len(rm.Pipes)
	for d := 0; d <= 9; d++ {
		if deciles[d] < n/20 {
			t.Fatalf("decile %d has %d of %d pipes", d, deciles[d], n)
		}
	}
	if rm.TopDecileHit < 0 || rm.TopDecileHit > 1 {
		t.Fatalf("top-decile hit %v", rm.TopDecileHit)
	}
	var buf bytes.Buffer
	if err := rm.WriteSVG(&buf, 400); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, "circle") || !strings.Contains(svg, "path") {
		t.Fatal("SVG missing pipes or failure markers")
	}
}

func TestT8Sensitivity(t *testing.T) {
	opts := fastOpts()
	opts.ESGenerations = 6
	tb, err := T8Sensitivity(opts, "A", 2)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 6 {
		t.Fatalf("rows = %d:\n%s", tb.NumRows(), tb.String())
	}
	for _, want := range []string{"defaults", "cold-start", "neg-batch=1x"} {
		if !strings.Contains(tb.String(), want) {
			t.Fatalf("T8 missing %q", want)
		}
	}
}

func TestF6Staleness(t *testing.T) {
	opts := fastOpts()
	opts.Models = []string{"Logistic", "Heuristic-Age"}
	tb, err := F6Staleness(opts, "A", 6)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Train on 1998-2003 → test years 2004..2009 = 6 columns.
	if !strings.Contains(tb.String(), "2004") || !strings.Contains(tb.String(), "2009") {
		t.Fatalf("test-year columns missing:\n%s", tb.String())
	}
	if _, err := F6Staleness(opts, "A", 50); err == nil {
		t.Fatal("window consuming all years must error")
	}
}

func TestF5RenewalImpact(t *testing.T) {
	opts := fastOpts()
	opts.Models = []string{"Logistic"}
	tb, err := F5RenewalImpact(opts, "A", 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d:\n%s", tb.NumRows(), tb.String())
	}
	s := tb.String()
	for _, want := range []string{"none", "model", "oldest", "random"} {
		if !strings.Contains(s, want) {
			t.Fatalf("F5 missing policy %q:\n%s", want, s)
		}
	}
	// Errors.
	if _, err := F5RenewalImpact(opts, "A", 0, 3); err == nil {
		t.Fatal("bad fraction must error")
	}
	if _, err := F5RenewalImpact(opts, "A", 0.05, 0); err == nil {
		t.Fatal("bad horizon must error")
	}
	if _, err := F5RenewalImpact(opts, "Z", 0.05, 3); err == nil {
		t.Fatal("unknown region must error")
	}
}

func TestF4RiskMapUnknownRegion(t *testing.T) {
	if _, err := F4RiskMap(fastOpts(), "Z"); err == nil {
		t.Fatal("unknown region must error")
	}
}

func TestWriteSVGPropagatesWriterErrors(t *testing.T) {
	opts := fastOpts()
	opts.Models = []string{"Heuristic-Age"}
	rm, err := F4RiskMap(opts, "A")
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.WriteSVG(failingWriter{}, 100); err == nil {
		t.Fatal("writer failure must propagate")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, fmt.Errorf("disk full")
}

func TestGenerateRegionRejectsBadOptions(t *testing.T) {
	if _, _, err := GenerateRegion("A", Options{Seed: 1, Scale: 7}); err == nil {
		t.Fatal("scale > 1 must error")
	}
	if _, _, err := GenerateRegion("Q", Options{Seed: 1, Scale: 0.1}); err == nil {
		t.Fatal("unknown region must error")
	}
}

func TestEvaluateSplitPropagatesModelErrors(t *testing.T) {
	opts := fastOpts()
	net, _, err := GenerateRegion("A", opts)
	if err != nil {
		t.Fatal(err)
	}
	split, err := dataset.PaperSplit(net)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(1, 5)
	if _, err := EvaluateSplit(net, split, reg, []string{"not-a-model"}, feature.Groups{}); err == nil {
		t.Fatal("unknown model must error")
	}
}
