// Package pipefail is the public API of the reproduction of "Pipe Failure
// Prediction: A Data Mining Method" (Wang, Dong, Wang, Tang, Yao — ICDE
// 2013): a ranking-based data-mining toolkit for water-pipe failure
// prediction.
//
// The typical flow is: obtain a network (load a utility export with
// LoadNetwork, or simulate one with GenerateRegion), build a Pipeline for a
// temporal split, train any registered model, and consume the resulting
// Ranking — the ordered list of pipes to inspect — or the evaluation
// metrics against the held-out year.
//
//	net, _ := pipefail.GenerateRegion("A", 42, 0.25)
//	p, _ := pipefail.NewPipeline(net)
//	ranking, _ := p.TrainAndRank("DirectAUC-ES")
//	fmt.Println(ranking.AUC(), ranking.TopIDs(10))
//
// The model suite contains the paper's direct-AUC evolutionary ranker plus
// every compared baseline; Models lists the names.
package pipefail

import (
	"context"
	"fmt"

	"repro/internal/colfmt"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/obs"
	"repro/internal/synthetic"
	"repro/internal/tune"
)

// Network is a region's pipe registry plus failure log.
type Network = dataset.Network

// Pipe is one water main with its attributes and environmental factors.
type Pipe = dataset.Pipe

// Failure is one recorded failure event.
type Failure = dataset.Failure

// Split is a temporal train/test partition.
type Split = dataset.Split

// Renewal is a live registry update (pipe replaced in Year); see
// Network.ExtendLive and the streaming-ingest path in internal/serve.
type Renewal = dataset.Renewal

// Model is the interface every ranker and baseline implements.
type Model = core.Model

// CurvePoint is one point of a detection or ROC curve.
type CurvePoint = eval.CurvePoint

// Models returns the names of every available model, paper's method first.
func Models() []string { return experiments.StandardModelNames() }

// GenerateRegion simulates one of the calibrated metropolitan region
// presets ("A", "B" or "C") at the given scale (1 = full size, ~12-18k
// pipes). The same (name, seed, scale) always yields the same network.
func GenerateRegion(name string, seed int64, scale float64) (*Network, error) {
	cfg, err := synthetic.Preset(name, seed)
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.Scaled(scale)
	if err != nil {
		return nil, err
	}
	net, _, err := synthetic.Generate(cfg)
	return net, err
}

// LoadNetwork reads a network from a dataset path in either on-disk format
// — the PCOL columnar file (a bare .col file, or a directory holding
// dataset.col) or the CSV trio written by SaveNetwork — and validates it.
// The result is always a materialized row-oriented network; large columnar
// datasets that only need training should go through OpenData instead,
// which keeps the registry in columnar form.
func LoadNetwork(dir string) (*Network, error) {
	d, err := colfmt.Open(dir)
	if err != nil {
		return nil, err
	}
	return d.Network()
}

// SaveNetwork writes a network to a directory as CSV.
func SaveNetwork(net *Network, dir string) error { return dataset.SaveDir(net, dir) }

// Data is a loaded dataset behind either on-disk format (CSV trio or PCOL
// columnar). Columnar-backed Data feeds the feature pipeline straight from
// its column arrays without ever materializing per-pipe structs.
type Data = colfmt.Data

// OpenData loads the dataset at path with format sniffing: a regular file
// is read as PCOL columnar, a directory prefers dataset.col over the CSV
// trio. Pair it with NewPipelineData for the one-pass training path.
func OpenData(path string) (*Data, error) { return colfmt.Open(path) }

// Pipeline binds a network to a temporal split and a fitted feature
// encoding, and trains models against it.
type Pipeline struct {
	data  *Data
	split Split
	seed  int64

	builder *feature.Builder
	train   *feature.Set
	test    *feature.Set
	reg     *core.Registry
}

// PipelineOption customizes NewPipeline.
type PipelineOption func(*pipelineConfig)

type pipelineConfig struct {
	split   *Split
	seed    int64
	esGens  int
	groups  feature.Groups
	haveGrp bool
}

// WithSplit uses an explicit temporal split instead of the paper default
// (all years but the last for training).
func WithSplit(s Split) PipelineOption {
	return func(c *pipelineConfig) { c.split = &s }
}

// WithSeed seeds the stochastic learners (default 1).
func WithSeed(seed int64) PipelineOption {
	return func(c *pipelineConfig) { c.seed = seed }
}

// WithESGenerations overrides the DirectAUC evolution budget (useful for
// quick experiments).
func WithESGenerations(g int) PipelineOption {
	return func(c *pipelineConfig) { c.esGens = g }
}

// WithFeatureGroups restricts the feature groups (see the ablation
// experiment). The zero Groups value means all groups.
func WithFeatureGroups(g feature.Groups) PipelineOption {
	return func(c *pipelineConfig) { c.groups = g; c.haveGrp = true }
}

// FeatureGroups re-exports the feature-group selector for WithFeatureGroups.
type FeatureGroups = feature.Groups

// NewPipeline prepares the feature sets for the network under the paper's
// protocol (or the split given via WithSplit).
func NewPipeline(net *Network, opts ...PipelineOption) (*Pipeline, error) {
	if net == nil {
		return nil, fmt.Errorf("pipefail: nil network")
	}
	return NewPipelineData(colfmt.FromNetworkData(net), opts...)
}

// NewPipelineData is NewPipeline over a loaded Data handle. For
// columnar-backed data this is the million-pipe fast path: the feature
// matrices fill straight from the column arrays with no intermediate
// per-pipe structs. The default split follows the paper's protocol (all
// observed years but the last for training); note that for columnar data
// the split carries no *Network, so Split helpers that need one
// (TrainFailures, TestLabels) are unavailable unless WithSplit supplies it.
func NewPipelineData(data *Data, opts ...PipelineOption) (*Pipeline, error) {
	if data == nil {
		return nil, fmt.Errorf("pipefail: nil data")
	}
	cfg := pipelineConfig{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	var split Split
	if cfg.split != nil {
		split = *cfg.split
	} else {
		from, to := data.ObservedFrom(), data.ObservedTo()
		if to-1 < from {
			return nil, fmt.Errorf("pipefail: observation window [%d, %d] leaves no training years before the held-out year", from, to)
		}
		split = Split{TrainFrom: from, TrainTo: to - 1, TestYear: to}
	}
	b, err := feature.NewBuilderFromSource(data.Source(), feature.Options{Groups: cfg.groups, Standardize: true})
	if err != nil {
		return nil, fmt.Errorf("pipefail: %w", err)
	}
	train, err := b.TrainSet(split)
	if err != nil {
		return nil, fmt.Errorf("pipefail: %w", err)
	}
	test, err := b.TestSet(split)
	if err != nil {
		return nil, fmt.Errorf("pipefail: %w", err)
	}
	return &Pipeline{
		data: data, split: split, seed: cfg.seed,
		builder: b, train: train, test: test,
		reg: experiments.NewRegistry(cfg.seed, cfg.esGens),
	}, nil
}

// Split returns the pipeline's temporal split.
func (p *Pipeline) Split() Split { return p.split }

// FeatureNames returns the expanded design-matrix column names.
func (p *Pipeline) FeatureNames() []string { return p.builder.Names() }

// Train fits a fresh instance of the named model on the training window
// and returns it. Fit wall-clock is recorded into the per-model
// `core.fit_seconds.<model>` histogram (see DESIGN.md, Observability).
func (p *Pipeline) Train(modelName string) (Model, error) {
	return p.TrainContext(context.Background(), modelName)
}

// TrainContext is Train with cooperative cancellation: models that
// implement core.ContextFitter (the ES, RankBoost, RankNet, RankSVM and
// the Ensemble) abort promptly at their next generation/round/epoch
// boundary when ctx is cancelled; the millisecond-scale baselines are
// checked once before fitting. An uncancelled TrainContext run is
// bit-identical to Train. Cancelled fits record nothing into the
// fit-duration histogram.
func (p *Pipeline) TrainContext(ctx context.Context, modelName string) (Model, error) {
	m, err := p.reg.New(modelName)
	if err != nil {
		return nil, err
	}
	done := obs.Span("core.fit_seconds." + modelName)
	if err := core.FitModel(ctx, m, p.train); err != nil {
		return nil, fmt.Errorf("pipefail: %w", err)
	}
	done()
	return m, nil
}

// Rank scores the held-out year with a fitted model.
func (p *Pipeline) Rank(m Model) (*Ranking, error) {
	scores, err := m.Scores(p.test)
	if err != nil {
		return nil, fmt.Errorf("pipefail: %w", err)
	}
	return p.rankingFromScores(m.Name(), scores), nil
}

// TrainAndRank is Train followed by Rank.
func (p *Pipeline) TrainAndRank(modelName string) (*Ranking, error) {
	m, err := p.Train(modelName)
	if err != nil {
		return nil, err
	}
	return p.Rank(m)
}

func (p *Pipeline) rankingFromScores(model string, scores []float64) *Ranking {
	r := &Ranking{Model: model, TestYear: p.split.TestYear}
	for row, idx := range p.test.PipeIdx {
		r.PipeIDs = append(r.PipeIDs, p.data.PipeID(idx))
		r.Scores = append(r.Scores, scores[row])
		r.Failed = append(r.Failed, p.test.Label[row])
		r.LengthM = append(r.LengthM, p.test.LengthM[row])
	}
	return r
}

// SelectModel cross-validates the named models on the training window
// (stratified k-fold over pipe-year instances) and returns the winner's
// name with the per-model mean validation AUCs, best first. It never
// touches the held-out test year.
func (p *Pipeline) SelectModel(names []string, k int) (best string, meanAUC map[string]float64, err error) {
	if len(names) == 0 {
		names = Models()
	}
	cands := make([]tune.Candidate, 0, len(names))
	for _, name := range names {
		name := name
		if _, err := p.reg.New(name); err != nil {
			return "", nil, err
		}
		cands = append(cands, tune.Candidate{
			Label: name,
			Make: func() core.Model {
				m, _ := p.reg.New(name)
				return m
			},
		})
	}
	results, err := tune.SelectByCV(p.train, cands, k, p.seed)
	if err != nil {
		return "", nil, fmt.Errorf("pipefail: %w", err)
	}
	meanAUC = make(map[string]float64, len(results))
	for _, r := range results {
		meanAUC[r.Label] = r.MeanAUC
	}
	return results[0].Label, meanAUC, nil
}

// Ranking is a scored test-year snapshot: one entry per pipe that existed
// at the test year, aligned across all fields.
type Ranking struct {
	Model    string
	TestYear int
	PipeIDs  []string
	Scores   []float64
	// Failed is the test-year ground truth (available because rankings are
	// built on held-out historical data; a production deployment would
	// not have it).
	Failed  []bool
	LengthM []float64
}

// Len returns the number of ranked pipes.
func (r *Ranking) Len() int { return len(r.PipeIDs) }

// AUC returns the full ROC AUC of the ranking against the test year.
func (r *Ranking) AUC() float64 { return eval.AUC(r.Scores, r.Failed) }

// DetectionAt returns the fraction of test-year failures caught when
// inspecting the top frac of pipes.
func (r *Ranking) DetectionAt(frac float64) float64 {
	return eval.DetectionAt(r.Scores, r.Failed, frac)
}

// DetectionAtLength is DetectionAt with the budget measured in network
// length instead of pipe count.
func (r *Ranking) DetectionAtLength(frac float64) float64 {
	return eval.DetectionAtLength(r.Scores, r.Failed, r.LengthM, frac)
}

// Curve returns the detection curve with the given number of points.
func (r *Ranking) Curve(points int) []CurvePoint {
	return eval.DetectionCurve(r.Scores, r.Failed, points)
}

// TopIDs returns the k highest-risk pipe IDs in rank order.
func (r *Ranking) TopIDs(k int) []string {
	idx := eval.TopK(r.Scores, k)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = r.PipeIDs[j]
	}
	return out
}
