// Package core implements the reproduced paper's primary contribution: a
// ranking-based data-mining framework for pipe failure prediction.
//
// Instead of estimating failure probabilities, the method learns a
// real-valued scoring function H and ranks pipes by H(x). Training directly
// targets the quantity the application cares about — the bipartite ranking
// objective
//
//	AUC(H) = Σ_{z∈P, z'∈N} I(H(z) > H(z')) / (|P|·|N|)
//
// (P = failed instances, N = intact instances), which is exactly the
// empirical AUC / Wilcoxon–Mann–Whitney statistic. The package provides
// three learners for this objective:
//
//   - DirectAUC: a linear scoring function optimized by a (µ+λ) evolution
//     strategy on the (sampled) AUC itself — the paper's headline method,
//     able to optimize the non-differentiable objective directly;
//   - RankSVM: the pairwise hinge-loss convex surrogate, trained by SGD;
//   - RankBoost: bipartite RankBoost with threshold weak rankers.
//
// Scores are relative; the calibration types in this package map them to
// probabilities when a downstream cost model needs them.
package core

import (
	"context"
	"fmt"

	"repro/internal/eval"
	"repro/internal/feature"
)

// Model is the interface every failure-prediction model in the repository
// implements — the paper's learners here and the statistical baselines in
// the baseline package.
type Model interface {
	// Name returns a short stable identifier (used in result tables).
	Name() string
	// Fit trains the model on a pipe-year training set.
	Fit(train *feature.Set) error
	// Scores returns one risk score per row of the set, higher = riskier.
	// Scores are only meaningful for ranking unless the model documents
	// otherwise.
	Scores(test *feature.Set) ([]float64, error)
}

// ContextFitter is implemented by models whose training loop supports
// cooperative cancellation. FitContext behaves exactly like Fit when ctx
// is never cancelled — the cancellation checks never touch the RNG stream
// or reorder any floating-point work, so an uncancelled FitContext run is
// bit-identical to Fit. When ctx is cancelled the fit aborts promptly (at
// the next generation/round/epoch boundary), returns an error wrapping
// ctx.Err(), and leaves the model unfitted.
type ContextFitter interface {
	FitContext(ctx context.Context, train *feature.Set) error
}

// FitModel trains m under ctx: models implementing ContextFitter get the
// cancellable path; for the rest, ctx is checked once up front and the
// fit then runs to completion (every baseline fits in milliseconds, so
// boundary checks inside them buy nothing).
func FitModel(ctx context.Context, m Model, train *feature.Set) error {
	if cf, ok := m.(ContextFitter); ok {
		return cf.FitContext(ctx, train)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: fit cancelled: %w", m.Name(), err)
	}
	return m.Fit(train)
}

// Factory constructs a fresh, unfitted model. Registries hold factories so
// experiments can instantiate per-fold models.
type Factory func() Model

// Registry maps model names to factories in a stable order.
type Registry struct {
	names     []string
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory under its model's name. Registering a duplicate
// name is a programming error and panics.
func (r *Registry) Register(f Factory) {
	name := f().Name()
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("core: duplicate model %q", name))
	}
	r.names = append(r.names, name)
	r.factories[name] = f
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// New instantiates a fresh model by name.
func (r *Registry) New(name string) (Model, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown model %q (have %v)", name, r.names)
	}
	return f(), nil
}

// validateFitInputs performs the shared sanity checks of every learner.
func validateFitInputs(train *feature.Set) error {
	if train == nil || train.Len() == 0 {
		return fmt.Errorf("core: empty training set")
	}
	pos := train.Positives()
	if pos == 0 {
		return fmt.Errorf("core: training set has no positive instances")
	}
	if pos == train.Len() {
		return fmt.Errorf("core: training set has no negative instances")
	}
	return nil
}

// splitByLabel returns the row indices of positive and negative instances.
func splitByLabel(s *feature.Set) (pos, neg []int) {
	for i, v := range s.Label {
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	return pos, neg
}

// exactAUC computes the empirical AUC of scores against labels using the
// rank-statistic formulation (ties counted half), in O(n log n). It is the
// shared eval kernel; hot loops that call it repeatedly hold their own
// eval.AUCKernel instead to reuse sort scratch across calls.
func exactAUC(scores []float64, labels []bool) float64 {
	return eval.AUC(scores, labels)
}
