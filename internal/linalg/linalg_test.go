package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDotKnown(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyAndScale(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
	Scale(0.5, y)
	want = []float64{1.5, 2.5, 3.5}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Scale = %v, want %v", y, want)
		}
	}
}

func TestNorm2OverflowSafety(t *testing.T) {
	big := 1e200
	x := []float64{big, big}
	want := big * math.Sqrt2
	if got := Norm2(x); math.IsInf(got, 0) || !almostEqual(got/want, 1, 1e-12) {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
	if Norm2(nil) != 0 || Norm2([]float64{0, 0}) != 0 {
		t.Fatal("Norm2 of zero vector must be 0")
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-3, 2, 1}); got != 3 {
		t.Fatalf("NormInf = %v", got)
	}
}

func TestAddSubClone(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	s := Add(a, b)
	if s[0] != 4 || s[1] != 7 {
		t.Fatalf("Add = %v", s)
	}
	d := Sub(b, a)
	if d[0] != 2 || d[1] != 3 {
		t.Fatalf("Sub = %v", d)
	}
	c := Clone(a)
	c[0] = 99
	if a[0] == 99 {
		t.Fatal("Clone must not alias")
	}
	if len(Zeros(3)) != 3 {
		t.Fatal("Zeros length")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Fatal("Set/At broken")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) == 100 {
		t.Fatal("Clone must not alias")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestMulVecAndTMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [[1 2 3], [4 5 6]]
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	z := m.TMulVec([]float64{1, 2})
	// [1+8, 2+10, 3+12]
	if z[0] != 9 || z[1] != 12 || z[2] != 15 {
		t.Fatalf("TMulVec = %v", z)
	}
}

func TestATWAUnweightedKnown(t *testing.T) {
	a := NewMatrix(3, 2)
	copy(a.Data, []float64{1, 0, 1, 1, 0, 2})
	g := ATWA(a, nil)
	// AᵀA = [[2,1],[1,5]]
	want := []float64{2, 1, 1, 5}
	for i, w := range want {
		if g.Data[i] != w {
			t.Fatalf("ATWA = %v, want %v", g.Data, want)
		}
	}
}

func TestATWAWeighted(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	g := ATWA(a, []float64{2, 0})
	// Only row 0 contributes, weight 2: [[2,4],[4,8]]
	want := []float64{2, 4, 4, 8}
	for i, w := range want {
		if g.Data[i] != w {
			t.Fatalf("ATWA weighted = %v, want %v", g.Data, want)
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{4, 2, 2, 3})
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,sqrt(2)]]
	if !almostEqual(l.At(0, 0), 2, 1e-12) || !almostEqual(l.At(1, 0), 1, 1e-12) ||
		!almostEqual(l.At(1, 1), math.Sqrt2, 1e-12) || l.At(0, 1) != 0 {
		t.Fatalf("Cholesky = %v", l.Data)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 2, 1}) // eigenvalues 3 and -1
	if _, err := Cholesky(m); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	r := NewMatrix(2, 3)
	if _, err := Cholesky(r); err == nil {
		t.Fatal("non-square must error")
	}
}

func TestSolveCholeskyKnown(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{4, 2, 2, 3})
	x, err := SolveCholesky(m, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual.
	r := m.MulVec(x)
	if !almostEqual(r[0], 10, 1e-10) || !almostEqual(r[1], 9, 1e-10) {
		t.Fatalf("residual %v", r)
	}
}

func TestSolveCholeskyBadRHS(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 0, 0, 1})
	if _, err := SolveCholesky(m, []float64{1}); err == nil {
		t.Fatal("rhs length mismatch must error")
	}
}

func TestSolveRidgeEscalation(t *testing.T) {
	// Singular matrix: solvable only after the ridge kicks in.
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 1, 1, 1})
	x, err := SolveRidge(m, []float64{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With ridge, solution approaches [1, 1].
	if math.Abs(x[0]-x[1]) > 1e-6 {
		t.Fatalf("symmetric problem must give symmetric solution: %v", x)
	}
	if _, err := SolveRidge(m, []float64{1, 1}, -1); err == nil {
		t.Fatal("negative ridge must error")
	}
	// Does not modify the input matrix.
	if m.Data[0] != 1 || m.Data[3] != 1 {
		t.Fatal("SolveRidge mutated its input")
	}
}

// Property: solving a random SPD system reproduces the right-hand side.
func TestSolveCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		// Build A = BᵀB + I from pseudo-random B to guarantee SPD.
		n := 4
		b := NewMatrix(n+2, n)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(int64(s>>11))/float64(1<<52) - 0.5
		}
		for i := range b.Data {
			b.Data[i] = next()
		}
		a := ATWA(b, nil)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = next()
		}
		x, err := SolveCholesky(a, rhs)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range res {
			if !almostEqual(res[i], rhs[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		return Dot(a, b) == Dot(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
