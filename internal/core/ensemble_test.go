package core

import (
	"testing"

	"repro/internal/feature"
)

func TestEnsembleFusesRankers(t *testing.T) {
	train := gaussianSet(91, 800, 0.15, 2.5, 6)
	test := gaussianSet(92, 400, 0.15, 2.5, 6)
	e := NewEnsemble(nil,
		NewRankSVM(RankSVMConfig{Seed: 1}),
		NewRankBoost(RankBoostConfig{Rounds: 30}),
		NewDirectAUC(DirectAUCConfig{Seed: 2, Generations: 20}),
	)
	if e.Name() != "Ensemble" {
		t.Fatal("name")
	}
	scores := fitAndScore(t, e, train, test)
	eAUC := exactAUC(scores, test.Label)
	if eAUC < 0.9 {
		t.Fatalf("ensemble AUC = %v", eAUC)
	}
	// Fused scores are normalized ranks in [0, 1).
	for _, s := range scores {
		if s < 0 || s >= 1 {
			t.Fatalf("fused score %v out of [0,1)", s)
		}
	}
	// The ensemble should be at least close to its best member.
	svm := NewRankSVM(RankSVMConfig{Seed: 1})
	svmAUC := exactAUC(fitAndScore(t, svm, train, test), test.Label)
	if eAUC < svmAUC-0.05 {
		t.Fatalf("ensemble (%v) far below best member (%v)", eAUC, svmAUC)
	}
}

func TestEnsembleRobustToBadMember(t *testing.T) {
	train := gaussianSet(93, 600, 0.2, 2.5, 4)
	test := gaussianSet(94, 300, 0.2, 2.5, 4)
	// A deliberately inverted member: strong model with flipped ranks is
	// simulated by weighting it zero, and separately by drowning it 3-to-1.
	good1 := NewRankSVM(RankSVMConfig{Seed: 1})
	good2 := NewRankSVM(RankSVMConfig{Seed: 2})
	good3 := NewDirectAUC(DirectAUCConfig{Seed: 3, Generations: 15})
	bad := NewRankSVM(RankSVMConfig{Seed: 4, Epochs: 1, PairsPerEpoch: 1}) // nearly random
	e := NewEnsemble(nil, good1, good2, good3, bad)
	scores := fitAndScore(t, e, train, test)
	if auc := exactAUC(scores, test.Label); auc < 0.85 {
		t.Fatalf("ensemble with one weak member collapsed: AUC %v", auc)
	}
}

func TestEnsembleWeights(t *testing.T) {
	train := gaussianSet(95, 400, 0.2, 2.5, 4)
	// Zero weight silences a member entirely.
	strong := NewRankSVM(RankSVMConfig{Seed: 1})
	silent := NewRankSVM(RankSVMConfig{Seed: 9, Epochs: 1, PairsPerEpoch: 1})
	e := NewEnsemble([]float64{1, 0}, strong, silent)
	scores := fitAndScore(t, e, train, train)

	solo := NewRankSVM(RankSVMConfig{Seed: 1})
	soloScores := fitAndScore(t, solo, train, train)
	if exactAUC(scores, train.Label) != exactAUC(soloScores, train.Label) {
		t.Fatal("zero-weighted member changed the ranking")
	}
}

func TestEnsembleErrors(t *testing.T) {
	train := gaussianSet(96, 200, 0.3, 2, 3)
	if err := NewEnsemble(nil).Fit(train); err == nil {
		t.Fatal("no members must error")
	}
	if err := NewEnsemble([]float64{1}, NewRankSVM(RankSVMConfig{}), NewRankSVM(RankSVMConfig{})).Fit(train); err == nil {
		t.Fatal("weight count mismatch must error")
	}
	if err := NewEnsemble([]float64{-1}, NewRankSVM(RankSVMConfig{})).Fit(train); err == nil {
		t.Fatal("negative weight must error")
	}
	if err := NewEnsemble([]float64{0}, NewRankSVM(RankSVMConfig{})).Fit(train); err == nil {
		t.Fatal("zero-sum weights must error")
	}
	e := NewEnsemble(nil, NewRankSVM(RankSVMConfig{Seed: 1}))
	if _, err := e.Scores(train); err == nil {
		t.Fatal("Scores before Fit must error")
	}
	// A member that fails to fit propagates.
	bad := NewEnsemble(nil, NewRankSVM(RankSVMConfig{}))
	if err := bad.Fit(&feature.Set{}); err == nil {
		t.Fatal("member fit failure must propagate")
	}
}
