//go:build race

package serve

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation (and deliberate sync.Pool randomization) perturbs
// allocation counts; the AllocsPerRun gates skip themselves and run for
// real in the non-race `make verify` step.
const raceEnabled = true
