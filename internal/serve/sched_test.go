package serve

// Rebuild-scheduler tests: the background loop trains unbuilt shards,
// a forced pass rotates every published snapshot atomically (and —
// training being deterministic — bit-identically), in-flight training
// is never duplicated, and the off switch is really off.

import (
	"context"
	"testing"
	"time"
)

func TestSchedulerTrainsUnbuiltShards(t *testing.T) {
	s, _ := newMultiTestServer(t)
	passesBefore := s.metrics.schedPasses.Value()
	rebuildsBefore := s.metrics.schedRebuilds.Value()
	s.StartRebuildScheduler(50*time.Millisecond, 2)
	defer s.BeginShutdown()

	def := string(s.defaultModel)
	waitFor(t, func() bool {
		for _, sh := range s.shards {
			if _, ok := (*sh.models.Load())[def]; !ok {
				return false
			}
		}
		return true
	})
	if got := s.metrics.schedPasses.Value() - passesBefore; got < 1 {
		t.Fatalf("scheduler pass counter delta %d, want >= 1", got)
	}
	if got := s.metrics.schedRebuilds.Value() - rebuildsBefore; got < 2 {
		t.Fatalf("scheduled rebuild counter delta %d, want >= 2 (one per shard)", got)
	}
	for _, sh := range s.shards {
		if sh.rebuilds.Value() < 1 {
			t.Fatalf("shard %s rebuild counter %d, want >= 1", sh.region, sh.rebuilds.Value())
		}
	}
}

// TestSchedulerRebuildAtomicIdentical forces a rebuild of a published
// model and checks the snapshot pointer rotated (a genuinely new
// snapshot was published, atomically, while the old one kept serving)
// yet the ETag and ranking are bit-identical — deterministic training
// means a rebuild is invisible to clients and their caches.
func TestSchedulerRebuildAtomicIdentical(t *testing.T) {
	s, _ := newTestServer(t)
	before, err := s.get(context.Background(), "Heuristic-Age")
	if err != nil {
		t.Fatal(err)
	}
	s.schedInterval = time.Hour // nothing is stale; only force finds targets
	s.schedulerPass(true)

	after, ok := (*s.def.models.Load())["Heuristic-Age"]
	if !ok {
		t.Fatal("model vanished across a rebuild")
	}
	if after == before {
		t.Fatal("forced pass did not rotate the snapshot")
	}
	if after.etag != before.etag {
		t.Fatalf("rebuild changed the ETag: %s -> %s", before.etag, after.etag)
	}
	if len(after.entries) != len(before.entries) {
		t.Fatalf("rebuild changed the ranking length: %d -> %d", len(before.entries), len(after.entries))
	}
	for i := range after.entries {
		if after.entries[i] != before.entries[i] {
			t.Fatalf("entry %d diverged across rebuild: %+v -> %+v", i, before.entries[i], after.entries[i])
		}
	}
	if !after.builtAt.After(before.builtAt) {
		t.Fatalf("rebuilt snapshot builtAt %v not after original %v", after.builtAt, before.builtAt)
	}
}

// TestSchedulerSkipsInflightTraining: a (shard, model) pair already in
// the singleflight table must not get a second concurrent trainer.
func TestSchedulerSkipsInflightTraining(t *testing.T) {
	s, _ := newTestServer(t)
	job := &trainJob{done: make(chan struct{})}
	s.def.mu.Lock()
	s.def.pending["Heuristic-Age"] = job
	s.def.mu.Unlock()
	defer func() {
		s.def.mu.Lock()
		delete(s.def.pending, "Heuristic-Age")
		s.def.mu.Unlock()
	}()

	rebuildsBefore := s.metrics.schedRebuilds.Value()
	s.rebuild(s.def, "Heuristic-Age")
	if got := s.metrics.schedRebuilds.Value() - rebuildsBefore; got != 0 {
		t.Fatalf("rebuild of an in-flight model started %d trainers, want 0", got)
	}
}

func TestSchedulerDisabledAndIdempotent(t *testing.T) {
	s, _ := newTestServer(t)
	s.StartRebuildScheduler(0, 2) // interval <= 0: off
	if s.schedOn.Load() {
		t.Fatal("scheduler armed with a zero interval")
	}
	s.StartRebuildScheduler(time.Hour, 1)
	if !s.schedOn.Load() {
		t.Fatal("scheduler did not arm")
	}
	s.StartRebuildScheduler(time.Nanosecond, 8) // second start: no-op
	if s.schedInterval != time.Hour {
		t.Fatalf("second start changed the interval to %s", s.schedInterval)
	}
	s.BeginShutdown()
}
