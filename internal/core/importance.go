package core

import (
	"fmt"
	"sort"
)

// FeatureWeight pairs a design-matrix column with its learned weight.
type FeatureWeight struct {
	Name   string
	Weight float64
}

// Importance returns the feature weights of a linear scoring function
// sorted by absolute magnitude (largest first) — the interpretability
// report the application side of the paper needs: which attributes drive
// the ranking. Because features are standardized before training, weight
// magnitudes are directly comparable.
func Importance(names []string, w []float64) ([]FeatureWeight, error) {
	if len(names) != len(w) {
		return nil, fmt.Errorf("core: %d names for %d weights", len(names), len(w))
	}
	out := make([]FeatureWeight, len(w))
	for i := range w {
		out[i] = FeatureWeight{Name: names[i], Weight: w[i]}
	}
	sort.SliceStable(out, func(a, b int) bool {
		wa, wb := out[a].Weight, out[b].Weight
		if wa < 0 {
			wa = -wa
		}
		if wb < 0 {
			wb = -wb
		}
		return wa > wb
	})
	return out, nil
}

// LinearWeights extracts the weight vector of a fitted linear ranker
// (DirectAUC or RankSVM); ok is false for other model types or unfitted
// models.
func LinearWeights(m Model) (w []float64, ok bool) {
	switch v := m.(type) {
	case *DirectAUC:
		return v.W, v.W != nil
	case *RankSVM:
		return v.W, v.W != nil
	default:
		return nil, false
	}
}
