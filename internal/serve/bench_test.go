package serve

// Serve-layer hot-path benchmarks: the ranking and plan handlers driven
// exactly as a request would hit them (path value set, query string
// parsed, body decoded), but through a no-op ResponseWriter so the
// numbers measure the handler, not the test recorder. `make bench-json`
// records these into BENCH_serve.json; EXPERIMENTS.md tracks the
// before/after history.

import (
	"bytes"
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

// nopWriter discards the response body and reuses one header map across
// iterations, so a zero-allocation handler path benches at 0 allocs/op.
type nopWriter struct {
	h http.Header
}

func (w *nopWriter) Header() http.Header         { return w.h }
func (w *nopWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopWriter) WriteHeader(int)             {}

// benchServer builds a server over a mid-size synthetic region and
// trains the cheap heuristic model once, so the benchmarks measure the
// steady-state read path.
func benchServer(b *testing.B) *Server {
	b.Helper()
	net, err := pipefail.GenerateRegion("A", 7, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(net, log.New(io.Discard, "", 0), pipefail.WithESGenerations(4))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.get(context.Background(), "Heuristic-Age"); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkRankingHandler(b *testing.B) {
	s := benchServer(b)
	req := httptest.NewRequest("GET", "/api/models/Heuristic-Age/ranking?top=100", nil)
	req.SetPathValue("name", "Heuristic-Age")
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleRanking(w, req)
	}
}

func BenchmarkPlanHandler(b *testing.B) {
	s := benchServer(b)
	body := []byte(`{"model":"Heuristic-Age","budget_km":10}`)
	rdr := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/api/plan", rdr)
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdr.Reset(body)
		req.Body = io.NopCloser(rdr)
		s.handlePlan(w, req)
	}
}
