package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/feature"
)

// RiskMap is the data behind the paper's risk-map figure: every pipe with
// its location, its predicted risk decile, and whether it actually failed
// in the test year.
type RiskMap struct {
	Region string
	Model  string
	Pipes  []RiskMapPipe
	// TopDecileHit is the fraction of test-year failures that fall inside
	// the predicted top decile — the figure's headline message.
	TopDecileHit float64
}

// RiskMapPipe is one pipe on the map.
type RiskMapPipe struct {
	ID     string
	X, Y   float64
	Decile int // 0 = highest predicted risk, 9 = lowest
	Failed bool
}

// F4RiskMap ranks one region's pipes with the first configured model and
// returns the map data.
func F4RiskMap(opts Options, region string) (*RiskMap, error) {
	opts = opts.withDefaults()
	reg := NewRegistry(opts.Seed, opts.ESGenerations)
	net, _, err := GenerateRegion(region, opts)
	if err != nil {
		return nil, err
	}
	split, err := dataset.PaperSplit(net)
	if err != nil {
		return nil, err
	}
	model := opts.Models[0]
	evals, err := EvaluateSplit(net, split, reg, []string{model}, feature.Groups{})
	if err != nil {
		return nil, err
	}
	e := evals[0]

	// Deciles from the rank order. The test set has one row per pipe laid
	// before the test year, aligned with net.Pipes() via PipeIdx — here we
	// recover that alignment through the rank order of Scores.
	order := eval.TopK(e.Scores, len(e.Scores))
	decile := make([]int, len(e.Scores))
	for rank, idx := range order {
		decile[idx] = rank * 10 / len(order)
	}

	rm := &RiskMap{Region: region, Model: model}
	pipes := net.Pipes()
	// Rebuild the test-row → pipe mapping: rows were emitted in pipe order
	// for pipes with LaidYear <= test year.
	row := 0
	failTotal, failTop := 0, 0
	for i := range pipes {
		if pipes[i].LaidYear > split.TestYear {
			continue
		}
		failed := e.Labels[row]
		d := decile[row]
		rm.Pipes = append(rm.Pipes, RiskMapPipe{
			ID: pipes[i].ID, X: pipes[i].X, Y: pipes[i].Y,
			Decile: d, Failed: failed,
		})
		if failed {
			failTotal++
			if d == 0 {
				failTop++
			}
		}
		row++
	}
	if failTotal > 0 {
		rm.TopDecileHit = float64(failTop) / float64(failTotal)
	}
	return rm, nil
}

// WriteSVG renders the risk map as a standalone SVG: grey dots for low-risk
// pipes, a red-to-orange ramp for the top deciles, and black stars (crosses)
// for the pipes that actually failed in the test year.
func (rm *RiskMap) WriteSVG(w io.Writer, sizePx int) error {
	if sizePx <= 0 {
		sizePx = 800
	}
	maxC := 1.0
	for _, p := range rm.Pipes {
		maxC = math.Max(maxC, math.Max(p.X, p.Y))
	}
	scale := float64(sizePx-40) / maxC
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		sizePx, sizePx, sizePx, sizePx)
	pr(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")
	pr(`<text x="20" y="24" font-family="sans-serif" font-size="16">Risk map region %s (%s): red = top decile, stars = test-year failures (top-decile hit %.0f%%)</text>`+"\n",
		rm.Region, rm.Model, 100*rm.TopDecileHit)
	color := func(d int) string {
		switch d {
		case 0:
			return "#d62728" // red: top 10 %
		case 1:
			return "#ff7f0e" // orange: next 10 %
		case 2:
			return "#ffbb78"
		default:
			return "#c7c7c7"
		}
	}
	for _, p := range rm.Pipes {
		x := 20 + p.X*scale
		y := 20 + p.Y*scale
		pr(`<circle cx="%.1f" cy="%.1f" r="2" fill="%s"/>`+"\n", x, y, color(p.Decile))
	}
	// Failures drawn on top.
	for _, p := range rm.Pipes {
		if !p.Failed {
			continue
		}
		x := 20 + p.X*scale
		y := 20 + p.Y*scale
		pr(`<path d="M %.1f %.1f l 4 4 m -4 0 l 4 -4" stroke="black" stroke-width="1.5" fill="none"/>`+"\n",
			x-2, y-2)
	}
	pr("</svg>\n")
	return err
}
