package core

import (
	"runtime"
	"testing"
)

// workerCounts are the pool sizes every determinism test must agree
// across: fully serial, small, and whatever the host allows.
func workerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// TestDirectAUCDeterministicAcrossWorkers is the determinism contract of
// the parallel training engine: the learned weights and training AUC must
// be bit-identical (not merely close) for any worker count, because all
// RNG draws stay on the main goroutine and only pure fitness evaluations
// fan out.
func TestDirectAUCDeterministicAcrossWorkers(t *testing.T) {
	train := gaussianSet(3, 400, 0.2, 1.5, 6)
	var refW []float64
	var refAUC float64
	for _, workers := range workerCounts() {
		m := NewDirectAUC(DirectAUCConfig{Seed: 11, Generations: 15, Workers: workers})
		if err := m.Fit(train); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if refW == nil {
			refW = m.W
			refAUC = m.TrainAUC
			continue
		}
		if m.TrainAUC != refAUC {
			t.Fatalf("workers=%d: TrainAUC %v != serial %v", workers, m.TrainAUC, refAUC)
		}
		for j := range refW {
			if m.W[j] != refW[j] {
				t.Fatalf("workers=%d: W[%d] = %v != serial %v", workers, j, m.W[j], refW[j])
			}
		}
	}
}

// TestDirectAUCScoresDeterministicAcrossWorkers checks the scoring path
// (used by the exact-final re-rank and Scores) element-for-element.
func TestDirectAUCScoresDeterministicAcrossWorkers(t *testing.T) {
	train := gaussianSet(5, 300, 0.25, 2, 5)
	test := gaussianSet(6, 150, 0.25, 2, 5)
	var ref []float64
	for _, workers := range workerCounts() {
		m := NewDirectAUC(DirectAUCConfig{Seed: 2, Generations: 8, Workers: workers})
		if err := m.Fit(train); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		scores, err := m.Scores(test)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = scores
			continue
		}
		for i := range ref {
			if scores[i] != ref[i] {
				t.Fatalf("workers=%d: score[%d] = %v != serial %v", workers, i, scores[i], ref[i])
			}
		}
	}
}

// TestRankBoostDeterministicAcrossWorkers checks that the parallel stump
// search selects exactly the stumps a serial scan selects (same features,
// thresholds, signs and alphas) and that scoring matches bit-for-bit.
func TestRankBoostDeterministicAcrossWorkers(t *testing.T) {
	train := gaussianSet(7, 400, 0.2, 1.5, 6)
	test := gaussianSet(8, 120, 0.2, 1.5, 6)
	var refStumps []stump
	var refScores []float64
	for _, workers := range workerCounts() {
		m := NewRankBoost(RankBoostConfig{Rounds: 25, Workers: workers})
		if err := m.Fit(train); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		scores, err := m.Scores(test)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if refStumps == nil {
			refStumps = m.stumps
			refScores = scores
			continue
		}
		if len(m.stumps) != len(refStumps) {
			t.Fatalf("workers=%d: %d stumps != serial %d", workers, len(m.stumps), len(refStumps))
		}
		for i, st := range m.stumps {
			if st != refStumps[i] {
				t.Fatalf("workers=%d: stump %d = %+v != serial %+v", workers, i, st, refStumps[i])
			}
		}
		for i := range refScores {
			if scores[i] != refScores[i] {
				t.Fatalf("workers=%d: score[%d] = %v != serial %v", workers, i, scores[i], refScores[i])
			}
		}
	}
}

// TestRankNetScoresDeterministicAcrossWorkers checks the parallel forward
// pass (training is always serial SGD).
func TestRankNetScoresDeterministicAcrossWorkers(t *testing.T) {
	train := gaussianSet(9, 300, 0.25, 1.5, 5)
	test := gaussianSet(10, 130, 0.25, 1.5, 5)
	var ref []float64
	for _, workers := range workerCounts() {
		m := NewRankNet(RankNetConfig{Seed: 4, Epochs: 3, PairsPerEpoch: 500, Workers: workers})
		if err := m.Fit(train); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		scores, err := m.Scores(test)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = scores
			continue
		}
		for i := range ref {
			if scores[i] != ref[i] {
				t.Fatalf("workers=%d: score[%d] = %v != serial %v", workers, i, scores[i], ref[i])
			}
		}
	}
}
