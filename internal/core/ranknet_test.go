package core

import (
	"testing"

	"repro/internal/feature"
	"repro/internal/stats"
)

func TestRankNetLearnsSeparableData(t *testing.T) {
	train := gaussianSet(61, 800, 0.15, 2.5, 6)
	test := gaussianSet(62, 400, 0.15, 2.5, 6)
	m := NewRankNet(RankNetConfig{Seed: 63})
	scores := fitAndScore(t, m, train, test)
	if auc := exactAUC(scores, test.Label); auc < 0.9 {
		t.Fatalf("RankNet test AUC = %v", auc)
	}
}

// circleSet is a nonlinear problem (positives inside a ring) that a linear
// scorer cannot solve but a hidden layer can.
func circleSet(seed int64, n int) *feature.Set {
	rng := stats.NewRNG(seed)
	s := &feature.Set{Names: []string{"a", "b"}}
	for i := 0; i < n; i++ {
		a, b := rng.Normal(0, 1.5), rng.Normal(0, 1.5)
		pos := a*a+b*b < 1.5
		s.X = append(s.X, []float64{a, b})
		s.Label = append(s.Label, pos)
		s.Age = append(s.Age, 1)
		s.LengthM = append(s.LengthM, 1)
		s.PipeIdx = append(s.PipeIdx, i)
		s.Year = append(s.Year, 2000)
	}
	return s
}

func TestRankNetBeatsLinearOnNonlinearData(t *testing.T) {
	train := circleSet(71, 3000)
	test := circleSet(72, 1000)

	nn := NewRankNet(RankNetConfig{Seed: 73, Hidden: 16, Epochs: 40})
	nnScores := fitAndScore(t, nn, train, test)
	nnAUC := exactAUC(nnScores, test.Label)

	lin := NewRankSVM(RankSVMConfig{Seed: 74})
	linScores := fitAndScore(t, lin, train, test)
	linAUC := exactAUC(linScores, test.Label)

	if nnAUC < 0.75 {
		t.Fatalf("RankNet circle AUC = %v", nnAUC)
	}
	if nnAUC <= linAUC+0.1 {
		t.Fatalf("RankNet (%v) should clearly beat linear (%v) on the circle", nnAUC, linAUC)
	}
}

func TestRankNetDeterminismAndErrors(t *testing.T) {
	train := gaussianSet(81, 300, 0.2, 2, 4)
	m1 := NewRankNet(RankNetConfig{Seed: 82, Epochs: 3})
	m2 := NewRankNet(RankNetConfig{Seed: 82, Epochs: 3})
	if err := m1.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(train); err != nil {
		t.Fatal(err)
	}
	s1, err := m1.Scores(train)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Scores(train)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("RankNet not deterministic")
		}
	}

	m := NewRankNet(RankNetConfig{Seed: 1})
	if _, err := m.Scores(train); err == nil {
		t.Fatal("Scores before Fit must error")
	}
	if err := m.Fit(&feature.Set{}); err == nil {
		t.Fatal("empty train must error")
	}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Scores(gaussianSet(1, 10, 0.5, 1, 9)); err == nil {
		t.Fatal("dim mismatch must error")
	}
}
