package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
)

// This file is the warm-restart persistence layer: trained linear models
// (DirectAUC-ES, RankSVM — the only rankers with an on-disk format, see
// core.Persistable) are written to the state dir after every successful
// training run and reloaded on boot, so a restarted server answers
// ranking requests immediately with byte-identical responses (same
// scores, same ETags) instead of retraining from scratch.
//
// Layout: one <model-name>.model.json per model, written atomically
// (temp file + rename in the same directory). A single-shard server
// keeps its files directly in the state dir — the layout the
// single-region server always used — while a multi-shard server gives
// each region its own subdirectory (named by the sanitized region), so
// two shards training the same model never race on one path. Files that
// fail to load — truncated writes, hand edits, a network/feature-schema
// change since they were saved — are quarantined by renaming to
// *.corrupt and the boot continues; state is an optimization, never a
// correctness dependency, so no state-dir problem is ever fatal.

const (
	stateSuffix      = ".model.json"
	quarantineSuffix = ".corrupt"
)

// statePath returns the on-disk path for one model's saved weights in
// one shard.
func (sh *shard) statePath(name string) string {
	return filepath.Join(sh.stateDir, name+stateSuffix)
}

// SetStateDir enables warm-restart persistence rooted at dir (created if
// absent) and immediately restores any previously saved models into the
// per-shard serving snapshot maps. Call before serving traffic. Restore
// problems quarantine the offending file and keep going; only an
// unusable directory is reported as an error.
func (s *Server) SetStateDir(dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: state dir: %w", err)
	}
	s.stateDir = dir
	for _, sh := range s.shards {
		sub := dir
		if len(s.shards) > 1 {
			sub = filepath.Join(dir, obs.SanitizeMetricName(sh.region))
			if err := os.MkdirAll(sub, 0o755); err != nil {
				return fmt.Errorf("serve: state dir for region %q: %w", sh.region, err)
			}
		}
		sh.stateDir = sub
		s.restoreState(sh)
	}
	return nil
}

// saveModel persists a freshly trained model when a state dir is
// configured and the model has an on-disk format. Persistence failures
// are metered and logged but never surfaced to the request that trained
// the model — the snapshot is already published and serving.
func (s *Server) saveModel(sh *shard, name string, m pipefail.Model) {
	if sh.stateDir == "" || !core.Persistable(m) {
		return
	}
	if err := s.writeModelFile(sh, name, m); err != nil {
		s.metrics.stateSaveErrs.Inc()
		s.log.Printf("serve: persist %s: %v", name, err)
		return
	}
	s.metrics.stateSaved.Inc()
	s.log.Printf("serve: persisted %s to %s", name, sh.statePath(name))
}

// syncDirFn fsyncs a directory; a seam so tests can assert the
// directory sync actually happens on the persistence path.
var syncDirFn = syncStateDir

func syncStateDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeModelFile writes the model atomically and durably: encode into a
// temp file in the shard's state dir, fsync the file, rename over the
// final path, then fsync the directory — the rename itself lives in the
// directory's metadata, so without the final sync a power loss could
// resurface the old file (or none) even though the temp file's bytes
// were safe. A crash at any point leaves either the old complete file
// or the new complete file — never a torn one.
func (s *Server) writeModelFile(sh *shard, name string, m pipefail.Model) error {
	tmp, err := os.CreateTemp(sh.stateDir, name+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := core.SaveLinear(tmp, m, sh.pipe.FeatureNames()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), sh.statePath(name)); err != nil {
		return err
	}
	return syncDirFn(sh.stateDir)
}

// restoreState loads every *.model.json in the shard's state dir into
// its serving snapshot map. Each restored model is re-ranked against the
// shard pipeline's held-out set — scoring is deterministic, so the
// rebuilt snapshot carries the same scores and ETag the original
// training run produced — and published exactly as a fresh training run
// would be.
func (s *Server) restoreState(sh *shard) {
	entries, err := os.ReadDir(sh.stateDir)
	if err != nil {
		s.log.Printf("serve: read state dir: %v", err)
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), stateSuffix) {
			continue
		}
		path := filepath.Join(sh.stateDir, e.Name())
		name := strings.TrimSuffix(e.Name(), stateSuffix)
		if err := s.restoreModelFile(sh, path, name); err != nil {
			s.quarantine(path, err)
		}
	}
}

// restoreModelFile loads one saved model, validates it against the
// shard's network/feature schema, and publishes its snapshot. Any
// mismatch is an error (the caller quarantines): weights trained against
// a different feature layout would score garbage silently.
func (s *Server) restoreModelFile(sh *shard, path, name string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	m, sm, err := core.LoadLinear(f)
	f.Close()
	if err != nil {
		return err
	}
	if sm.Kind != name {
		return fmt.Errorf("file %s holds model kind %q", filepath.Base(path), sm.Kind)
	}
	if !knownModel(name) {
		return fmt.Errorf("unknown model kind %q", name)
	}
	// Rank against the live pipeline (base + any WAL-replayed events) so
	// the restored snapshot carries the ETag a retrain at the current
	// event seq would produce; SetEventLog must run before SetStateDir.
	pipe, seq, err := sh.trainPipeline()
	if err != nil {
		return err
	}
	want := pipe.FeatureNames()
	if len(sm.FeatureNames) != len(want) {
		return fmt.Errorf("saved with %d features, pipeline has %d", len(sm.FeatureNames), len(want))
	}
	for i := range want {
		if sm.FeatureNames[i] != want[i] {
			return fmt.Errorf("feature %d is %q, pipeline has %q", i, sm.FeatureNames[i], want[i])
		}
	}
	snap, err := s.snapshotModel(sh, pipe, seq, name, m, 0)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	sh.publishLocked(name, snap)
	sh.mu.Unlock()
	s.metrics.stateRestored.Inc()
	s.log.Printf("serve: restored %s from %s (AUC %.4f)", name, path, snap.ranking.AUC())
	return nil
}

// quarantine renames an unusable state file to *.corrupt so the next
// boot does not trip over it again, and the operator can inspect it.
func (s *Server) quarantine(path string, cause error) {
	s.metrics.stateQuarantined.Inc()
	dest := path + quarantineSuffix
	if err := os.Rename(path, dest); err != nil {
		s.log.Printf("serve: quarantine %s (cause: %v): %v", path, cause, err)
		return
	}
	s.log.Printf("serve: quarantined %s -> %s: %v", path, dest, cause)
}
