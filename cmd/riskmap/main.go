// Command riskmap renders the paper's risk-map figure: a region's pipes
// coloured by predicted risk decile with the held-out year's actual
// failures marked, written as a standalone SVG.
//
// Usage:
//
//	riskmap -region A -model DirectAUC-ES -scale 0.25 -out regionA.svg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("riskmap: ")

	region := flag.String("region", "A", "region preset: A, B or C")
	model := flag.String("model", "DirectAUC-ES", "model used for the ranking")
	seed := flag.Int64("seed", 1, "master seed")
	scale := flag.Float64("scale", 0.25, "region scale in (0,1]")
	esGens := flag.Int("esgens", 0, "override DirectAUC ES generations")
	size := flag.Int("size", 900, "SVG canvas size in pixels")
	out := flag.String("out", "riskmap.svg", "output SVG path")
	flag.Parse()

	opts := experiments.Options{
		Seed:          *seed,
		Scale:         *scale,
		Regions:       []string{*region},
		Models:        []string{*model},
		ESGenerations: *esGens,
	}
	rm, err := experiments.F4RiskMap(opts, *region)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := rm.WriteSVG(f, *size); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d pipes, top-decile hit %.1f%%\n",
		*out, len(rm.Pipes), 100*rm.TopDecileHit)
}
