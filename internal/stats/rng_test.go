package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child1 := parent.Split()
	child2 := parent.Split()
	if child1.Int63() == child2.Int63() {
		// A single collision is possible but astronomically unlikely.
		if child1.Int63() == child2.Int63() {
			t.Fatal("split streams appear identical")
		}
	}
	// Splitting must be reproducible from the parent seed.
	p2 := NewRNG(7)
	c1 := p2.Split()
	r1 := NewRNG(7).Split()
	if c1.Int63() != r1.Int63() {
		t.Fatal("split is not deterministic")
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(2)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Normal(3, 2)
	}
	if m := Mean(xs); math.Abs(m-3) > 0.05 {
		t.Fatalf("normal mean %v too far from 3", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 0.05 {
		t.Fatalf("normal sd %v too far from 2", sd)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(3)
	n := 200000
	s := 0.0
	for i := 0; i < n; i++ {
		v := g.Exp(2)
		if v < 0 {
			t.Fatal("exponential variate must be non-negative")
		}
		s += v
	}
	if m := s / float64(n); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("exp mean %v too far from 0.5", m)
	}
}

func TestWeibullMedian(t *testing.T) {
	g := NewRNG(4)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Weibull(2, 10)
	}
	// Median of Weibull(k, lambda) is lambda * (ln 2)^(1/k).
	want := 10 * math.Pow(math.Ln2, 0.5)
	if got := Median(xs); math.Abs(got-want) > 0.15 {
		t.Fatalf("weibull median %v, want about %v", got, want)
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) must be false")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) must be true")
		}
		if g.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(p<0) must be false")
		}
	}
	// Frequency check.
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	if f := float64(hits) / float64(n); math.Abs(f-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", f)
	}
}

func TestPoissonMeanSmallAndLarge(t *testing.T) {
	g := NewRNG(6)
	for _, mean := range []float64{0.05, 0.7, 4, 50} {
		n := 50000
		s := 0
		for i := 0; i < n; i++ {
			s += g.Poisson(mean)
		}
		got := float64(s) / float64(n)
		tol := 0.05 * math.Max(mean, 1)
		if math.Abs(got-mean) > tol {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	g := NewRNG(7)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 120000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	g := NewRNG(8)
	for _, w := range [][]float64{nil, {}, {0, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			g.Categorical(w)
		}()
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(9)
	got := g.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("want 4 samples, got %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
	// k >= n returns all indices.
	all := g.SampleWithoutReplacement(5, 50)
	if len(all) != 5 {
		t.Fatalf("k>=n must return n indices, got %d", len(all))
	}
}

func TestLogNormalPositive(t *testing.T) {
	g := NewRNG(10)
	for i := 0; i < 1000; i++ {
		if g.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
}
