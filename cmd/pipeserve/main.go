// Command pipeserve runs the HTTP risk service over one or more regional
// networks: rankings, per-pipe risk lookups, and budget-constrained
// inspection plans as JSON, plus streamed NDJSON bulk endpoints that fan
// one request across every region shard.
//
// Usage:
//
//	pipeserve -data data/regionA -addr :8080
//	pipeserve -data data/regionA -data data/regionB   # one shard per dataset
//	pipeserve -data data/nation -shards 8             # split one dataset by district
//	pipeserve -region B -scale 0.25 -addr :8080       # synthetic network
//
// -data accepts any dataset layout the loader sniffs: a CSV directory, a
// columnar directory (dataset.col), or a bare .col file. It is
// repeatable: each path becomes an isolated region shard with its own
// models and response cache. Alternatively -shards N splits a single
// district-structured dataset into N contiguous-district region shards.
// Duplicate region names across inputs are a startup error.
//
// Endpoints:
//
//	GET  /healthz   (liveness: 200 while the process runs)
//	GET  /readyz    (readiness: 503 once shutdown begins)
//	GET  /api/network
//	GET  /api/regions
//	GET  /api/models
//	POST /api/models/{name}/train
//	GET  /api/models/{name}/ranking?top=N
//	GET  /api/pipes/{id}
//	POST /api/plan       {"model": "...", "budget_km": 10}
//	POST /api/bulk/rank  {"regions": [...], "pipe_ids": [...], "top": N}  → NDJSON stream
//	POST /api/bulk/plan  {"regions": [...], "budget_km": 10}              → NDJSON stream
//	POST /api/events     (live failure/renewal ingest; needs -wal-dir)
//	GET  /metrics   (JSON metrics snapshot; disable with -metrics=false)
//
// Streaming ingest: with -wal-dir, POST /api/events accepts one event
// (JSON object) or a batch (NDJSON with Content-Type
// application/x-ndjson). Events are framed into a crash-safe write-ahead
// log and acknowledged only once durable under -wal-sync (always fsyncs
// before the ack — group-committed; interval syncs every
// -wal-sync-interval; never leaves it to the OS). On boot the log
// replays, truncating a torn tail and quarantining corrupt interior
// segments; event IDs deduplicate retries, so every acknowledged event
// is applied exactly once across crashes. Ingested events mark models
// stale for the -rebuild-interval scheduler, which retrains on the
// event-extended window and republishes atomically; /metrics gains
// per-region drift gauges (live-window vs train-time AUC, event counts)
// and WAL health series (backlog, size, fsync latency).
//
// Region-scoped GET endpoints take ?region=NAME; without it the first
// shard answers, so single-region deployments are unchanged.
//
// Ranking, cohort and hotspot responses are served from an in-memory
// encoded-response cache (global budget via -cache-mb, partitioned
// across shards) with strong ETags; clients sending If-None-Match get
// 304 Not-Modified.
//
// -rebuild-interval starts the background rebuild scheduler: shards
// with no trained default model, or snapshots older than the interval,
// retrain in the background (at most -rebuild-workers at once) and
// publish atomically without blocking reads.
//
// Resilience: SIGINT/SIGTERM triggers a graceful shutdown — readiness
// flips to 503, in-flight training and scheduled rebuilds are
// cancelled, open connections drain (bounded by -drain-timeout) and the
// process exits 0. -max-inflight sheds requests past a concurrency cap
// with 503 + Retry-After; -request-timeout bounds each API request.
// With -state-dir, trained linear models persist across restarts and
// are served warm on boot (see DESIGN.md, "Failure modes & resilience").
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/wal"
)

// multiFlag collects a repeatable string flag (-data a -data b).
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	os.Exit(run())
}

// run is main with an exit code: a clean signal-initiated shutdown is
// 0, anything else is 1. Deferred cleanup still runs on every path,
// which a bare os.Exit in main would skip.
func run() int {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pipeserve: ")

	var data multiFlag
	flag.Var(&data, "data", "dataset path: CSV directory, columnar directory or .col file (repeatable: one region shard per path)")
	shards := flag.Int("shards", 1, "split a single district-structured dataset into this many region shards")
	rebuildInterval := flag.Duration("rebuild-interval", 0, "background rebuild scheduler period, e.g. 10m (0 = off)")
	rebuildWorkers := flag.Int("rebuild-workers", 2, "max concurrent scheduled rebuilds (0 = GOMAXPROCS)")
	region := flag.String("region", "A", "synthetic region preset when -data is unset")
	seed := flag.Int64("seed", 1, "generator / learner seed")
	scale := flag.Float64("scale", 0.25, "synthetic region scale")
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	metrics := flag.Bool("metrics", true, "expose the GET /metrics observability endpoint")
	cacheMB := flag.Int64("cache-mb", serve.DefaultCacheBytes>>20, "response cache budget in MiB (encoded ranking/cohort/hotspot bodies)")
	stateDir := flag.String("state-dir", "", "persist trained linear models here for warm restarts (empty = off)")
	walDir := flag.String("wal-dir", "", "durable write-ahead event log root enabling POST /api/events (empty = off)")
	walSync := flag.String("wal-sync", "always", "event log fsync policy: always (fsync before ack), interval, or never")
	walSyncInterval := flag.Duration("wal-sync-interval", 100*time.Millisecond, "fsync period under -wal-sync=interval")
	walSegmentMB := flag.Int64("wal-segment-mb", 8, "event log segment rotation threshold in MiB")
	walMaxBacklogMB := flag.Int64("wal-max-backlog-mb", 16, "unsynced event-log backlog before ingest answers 429")
	eventWindowDays := flag.Int("event-window-days", 366, "rolling live-event window for the drift gauges, in days")
	maxInflight := flag.Int64("max-inflight", 0, "shed API requests past this many in flight with 503 (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline on API routes, e.g. 30s (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for open connections to finish")
	flag.Parse()
	if *cacheMB < 1 {
		log.Printf("-cache-mb must be >= 1, got %d", *cacheMB)
		return 1
	}

	var networks []*pipefail.Network
	if len(data) > 0 {
		for _, path := range data {
			network, err := pipefail.LoadNetwork(path)
			if err != nil {
				log.Print(err)
				return 1
			}
			networks = append(networks, network)
		}
	} else {
		network, err := pipefail.GenerateRegion(*region, *seed, *scale)
		if err != nil {
			log.Print(err)
			return 1
		}
		networks = append(networks, network)
	}
	if *shards > 1 {
		if len(networks) != 1 {
			log.Printf("-shards needs exactly one dataset, got %d", len(networks))
			return 1
		}
		split, err := dataset.SplitDistricts(networks[0], *shards)
		if err != nil {
			log.Print(err)
			return 1
		}
		networks = split
	}
	for _, network := range networks {
		log.Printf("serving region %s: %d pipes, %d failures", network.Region, network.NumPipes(), network.NumFailures())
	}

	// NewMulti fails fast on duplicate region names across -data inputs —
	// a silent last-write-wins registry would serve the wrong data.
	s, err := serve.NewMulti(networks, log.Default(), pipefail.WithSeed(*seed))
	if err != nil {
		log.Print(err)
		return 1
	}
	if *cacheMB<<20 != serve.DefaultCacheBytes {
		s.SetResponseCacheBytes(*cacheMB << 20)
	}
	s.SetMaxInflight(*maxInflight)
	s.SetRequestTimeout(*requestTimeout)
	// The event log opens (and replays) before the state dir restores, so
	// warm-restored models rank against the live event-extended pipeline
	// and reproduce the ETags a retrain would.
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := s.SetEventLog(serve.EventLogConfig{
			Dir:             *walDir,
			Sync:            policy,
			SyncInterval:    *walSyncInterval,
			SegmentBytes:    *walSegmentMB << 20,
			MaxBacklogBytes: *walMaxBacklogMB << 20,
			WindowDays:      *eventWindowDays,
		}); err != nil {
			log.Print(err)
			return 1
		}
	}
	if err := s.SetStateDir(*stateDir); err != nil {
		log.Print(err)
		return 1
	}
	// After SetStateDir so warm-restored snapshots count as freshly
	// built and the first pass does not immediately retrain them.
	s.StartRebuildScheduler(*rebuildInterval, *rebuildWorkers)
	handler := s.Handler()
	if !*metrics {
		handler = withoutMetrics(handler)
	}
	// Listen explicitly (instead of ListenAndServe) so :0 resolves to a
	// real port before the "listening on" line — the e2e test and local
	// scripting both scrape the bound address from it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	srv := &http.Server{
		Handler: handler,
		// Header/body read, write and idle bounds: a stalled or
		// malicious peer cannot pin a connection (and its goroutine)
		// forever. WriteTimeout is generous because POST .../train
		// responses wait on a cold training run.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM → graceful shutdown. The signal context flips once;
	// a second signal kills the process the default way (signal.Stop in
	// NotifyContext's cancel restores default handling after the first).
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("listening on %s", ln.Addr())

	select {
	case err := <-serveErr:
		// Serve only returns on listener failure here (Shutdown below is
		// the ErrServerClosed path, which this select's other arm owns).
		log.Printf("serve: %v", err)
		return 1
	case <-sigCtx.Done():
	}

	log.Printf("shutdown: signal received, draining (timeout %s)", *drainTimeout)
	s.BeginShutdown() // readiness 503, shed new work, cancel in-flight training
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: drain incomplete: %v", err)
		code = 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
		code = 1
	}
	log.Printf("shutdown: complete")
	return code
}

// withoutMetrics hides GET /metrics when the flag disables it.
func withoutMetrics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			http.NotFound(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}
