package serve

// Serve-layer hot-path benchmarks: the ranking and plan handlers driven
// exactly as a request would hit them (path value set, query string
// parsed, body decoded), but through a no-op ResponseWriter so the
// numbers measure the handler, not the test recorder. `make bench-json`
// records these into BENCH_serve.json; EXPERIMENTS.md tracks the
// before/after history.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/parallel"
	"repro/internal/wal"
)

// nopWriter discards the response body and reuses one header map across
// iterations, so a zero-allocation handler path benches at 0 allocs/op.
type nopWriter struct {
	h http.Header
}

func (w *nopWriter) Header() http.Header         { return w.h }
func (w *nopWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopWriter) WriteHeader(int)             {}

// benchServer builds a server over a mid-size synthetic region and
// trains the cheap heuristic model once, so the benchmarks measure the
// steady-state read path.
func benchServer(b *testing.B) *Server {
	b.Helper()
	net, err := pipefail.GenerateRegion("A", 7, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(net, log.New(io.Discard, "", 0), pipefail.WithESGenerations(4))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.get(context.Background(), "Heuristic-Age"); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkRankingHandler(b *testing.B) {
	s := benchServer(b)
	req := httptest.NewRequest("GET", "/api/models/Heuristic-Age/ranking?top=100", nil)
	req.SetPathValue("name", "Heuristic-Age")
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleRanking(w, req)
	}
}

// replayBody is a rewindable no-op-Close request body, so POST
// iterations reuse one reader instead of allocating a NopCloser per
// request — required for the zero-alloc cached-plan measurements.
type replayBody struct{ r *bytes.Reader }

func (rb *replayBody) Read(p []byte) (int, error) { return rb.r.Read(p) }
func (rb *replayBody) Close() error               { return nil }
func (rb *replayBody) rewind()                    { rb.r.Seek(0, io.SeekStart) }

func planBenchRequest() (*http.Request, *replayBody) {
	rb := &replayBody{r: bytes.NewReader([]byte(`{"model":"Heuristic-Age","budget_km":10}`))}
	req := httptest.NewRequest("POST", "/api/plan", nil)
	req.Body = rb
	return req, rb
}

// BenchmarkPlanHandlerCold measures a full plan computation per request
// (parse, prefix binary search, encode) with response caching defeated
// by a 1-byte cache budget — the miss-path cost.
func BenchmarkPlanHandlerCold(b *testing.B) {
	s := benchServer(b)
	s.SetResponseCacheBytes(1) // every body is oversized: nothing caches
	req, rb := planBenchRequest()
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.rewind()
		s.handlePlan(w, req)
	}
}

// BenchmarkPlanHandlerCached measures the steady state: the encoded
// response replayed from the cache with zero allocations.
func BenchmarkPlanHandlerCached(b *testing.B) {
	s := benchServer(b)
	req, rb := planBenchRequest()
	w := &nopWriter{h: make(http.Header)}
	rb.rewind()
	s.handlePlan(w, req) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.rewind()
		s.handlePlan(w, req)
	}
}

// bulkBenchRequest builds a reusable POST /api/bulk/rank request.
func bulkBenchRequest(body string) (*http.Request, *replayBody) {
	rb := &replayBody{r: bytes.NewReader([]byte(body))}
	req := httptest.NewRequest("POST", "/api/bulk/rank", nil)
	req.Body = rb
	return req, rb
}

// BenchmarkBulkRankCold measures the bulk miss path: the published
// snapshot is hot but the response cache is defeated, so every request
// pays the fan-out, the encode and the stream assembly.
func BenchmarkBulkRankCold(b *testing.B) {
	s := benchServer(b)
	s.SetResponseCacheBytes(1) // every body is oversized: nothing caches
	req, rb := bulkBenchRequest(`{"model":"Heuristic-Age","top":100}`)
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.rewind()
		s.handleBulkRank(w, req)
	}
}

// BenchmarkBulkRankCached measures the steady state the alloc gate
// locks: phase 1 resolves every segment off the cache and the writer
// splices the stored bytes — no goroutines, no channels, no heap.
func BenchmarkBulkRankCached(b *testing.B) {
	s := benchServer(b)
	req, rb := bulkBenchRequest(`{"model":"Heuristic-Age","top":100}`)
	w := &nopWriter{h: make(http.Header)}
	rb.rewind()
	s.handleBulkRank(w, req) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.rewind()
		s.handleBulkRank(w, req)
	}
}

// BenchmarkShardRebuildConcurrent measures one forced scheduler pass
// over a two-shard registry with both models published: four retrains
// fanned across the scheduler pool, each republishing atomically.
func BenchmarkShardRebuildConcurrent(b *testing.B) {
	netA, err := pipefail.GenerateRegion("A", 7, 0.04)
	if err != nil {
		b.Fatal(err)
	}
	netB, err := pipefail.GenerateRegion("B", 8, 0.04)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewMulti([]*pipefail.Network{netA, netB}, log.New(io.Discard, "", 0), pipefail.WithESGenerations(4))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, sh := range s.shards {
		for _, name := range []string{string(s.defaultModel), "Heuristic-Age"} {
			if _, err := s.getShard(ctx, sh, name); err != nil {
				b.Fatal(err)
			}
		}
	}
	s.schedInterval = time.Hour // only force finds targets
	s.schedPool = parallel.New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.schedulerPass(true)
	}
}

// benchEventsIngest drives POST /api/events through the handler with a
// fresh single-event body per iteration. Run with a fixed -benchtime
// iteration count (see make bench-ingest): the live overlays grow with
// every accepted event, and the per-request drift scan is O(overlay), so
// time-based auto-scaling would measure ever-larger windows.
func benchEventsIngest(b *testing.B, sync wal.SyncPolicy) {
	net, err := pipefail.GenerateRegion("A", 7, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(net, log.New(io.Discard, "", 0), pipefail.WithESGenerations(4))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.SetEventLog(EventLogConfig{Dir: b.TempDir(), Sync: sync}); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.closeEventLogs)
	pipes := s.def.net.Pipes()
	year := s.def.net.ObservedTo + 1
	// One checked warmup so a broken handler fails loudly instead of
	// benchmarking an error path.
	rec := httptest.NewRecorder()
	s.handleEvents(rec, httptest.NewRequest("POST", "/api/events",
		strings.NewReader(fmt.Sprintf(`{"id":"bench-warm","pipe_id":%q,"year":%d,"day":1}`, pipes[0].ID, year))))
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body)
	}
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"id":"bench-%d","pipe_id":%q,"year":%d,"day":%d}`,
			i, pipes[i%len(pipes)].ID, year, i%366+1)
		s.handleEvents(w, httptest.NewRequest("POST", "/api/events", strings.NewReader(body)))
	}
}

func BenchmarkEventsIngestAlways(b *testing.B) { benchEventsIngest(b, wal.SyncAlways) }
func BenchmarkEventsIngestNever(b *testing.B)  { benchEventsIngest(b, wal.SyncNever) }

// BenchmarkEventsIngestBatch measures the NDJSON batch path: one
// request carrying 100 events, amortizing decode, admission and fsync.
func BenchmarkEventsIngestBatch(b *testing.B) {
	net, err := pipefail.GenerateRegion("A", 7, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(net, log.New(io.Discard, "", 0), pipefail.WithESGenerations(4))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.SetEventLog(EventLogConfig{Dir: b.TempDir(), Sync: wal.SyncAlways}); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.closeEventLogs)
	pipes := s.def.net.Pipes()
	year := s.def.net.ObservedTo + 1
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		for j := 0; j < 100; j++ {
			fmt.Fprintf(&buf, "{\"id\":\"batch-%d-%d\",\"pipe_id\":%q,\"year\":%d,\"day\":%d}\n",
				i, j, pipes[j%len(pipes)].ID, year, j%366+1)
		}
		req := httptest.NewRequest("POST", "/api/events", &buf)
		req.Header.Set("Content-Type", "application/x-ndjson")
		s.handleEvents(w, req)
	}
}
