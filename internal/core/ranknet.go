package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/feature"
	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// RankNetConfig tunes the pairwise logistic ranker.
type RankNetConfig struct {
	// Seed drives pair sampling and initialization.
	Seed int64
	// Hidden is the width of the single hidden tanh layer (default 8).
	Hidden int
	// Epochs is the number of passes (default 25).
	Epochs int
	// PairsPerEpoch is the number of sampled (positive, negative) pairs
	// per epoch (default: 4x positives, at least 1000).
	PairsPerEpoch int
	// LearningRate is the SGD step (default 0.05, decayed 1/sqrt(t)).
	LearningRate float64
	// Lambda is the L2 regularization (default 1e-5).
	Lambda float64
	// Workers bounds the scoring worker pool (0 = GOMAXPROCS, 1 = serial).
	// Training is inherently sequential SGD and always runs serially;
	// scoring is a pure per-row forward pass, so results are bit-identical
	// for every worker count.
	Workers int
}

func (c *RankNetConfig) fillDefaults(numPos int) {
	if c.Hidden < 0 {
		c.Hidden = 0
	}
	if c.Hidden == 0 {
		c.Hidden = 8
	}
	if c.Epochs <= 0 {
		c.Epochs = 25
	}
	if c.PairsPerEpoch <= 0 {
		c.PairsPerEpoch = 4 * numPos
		if c.PairsPerEpoch < 1000 {
			c.PairsPerEpoch = 1000
		}
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.Lambda <= 0 {
		c.Lambda = 1e-5
	}
}

// RankNet learns a small one-hidden-layer scoring network by minimizing
// the pairwise logistic loss log(1 + exp(−(H(x⁺) − H(x⁻)))) over sampled
// positive/negative pairs — the smooth probabilistic surrogate of the AUC
// objective, and the only nonlinear scorer among the ranking learners.
type RankNet struct {
	cfg RankNetConfig
	// w1 is hidden x dim, b1 hidden, w2 hidden (output weights).
	w1     [][]float64
	b1     []float64
	w2     []float64
	fitted bool
}

// NewRankNet returns an unfitted RankNet.
func NewRankNet(cfg RankNetConfig) *RankNet {
	return &RankNet{cfg: cfg}
}

// Name implements Model.
func (m *RankNet) Name() string { return "RankNet" }

// forward computes the score of x and returns the hidden activations
// needed for backprop. Training only; scoring uses the allocation-free
// score below.
func (m *RankNet) forward(x []float64) (score float64, hidden []float64) {
	h := len(m.w2)
	hidden = make([]float64, h)
	for k := 0; k < h; k++ {
		hidden[k] = math.Tanh(linalg.Dot(m.w1[k], x) + m.b1[k])
		score += m.w2[k] * hidden[k]
	}
	return score, hidden
}

// score is forward without materializing the hidden layer — the same
// floating-point operations in the same order, so it is bit-identical to
// forward's score, with zero allocations per row.
func (m *RankNet) score(x []float64) float64 {
	var s float64
	for k := range m.w2 {
		s += m.w2[k] * math.Tanh(linalg.Dot(m.w1[k], x)+m.b1[k])
	}
	return s
}

// Fit implements Model.
func (m *RankNet) Fit(train *feature.Set) error {
	return m.FitContext(context.Background(), train)
}

// FitContext implements ContextFitter: Fit with a cancellation check at
// every epoch boundary. The checks sit outside the pair-sampling loop and
// never touch the RNG, so uncancelled runs match Fit bit for bit; a
// cancelled fit leaves the model unfitted.
func (m *RankNet) FitContext(ctx context.Context, train *feature.Set) error {
	if err := validateFitInputs(train); err != nil {
		return fmt.Errorf("%s: %w", m.Name(), err)
	}
	pos, neg := splitByLabel(train)
	cfg := m.cfg
	cfg.fillDefaults(len(pos))
	rng := stats.NewRNG(cfg.Seed)
	dim := train.Dim()
	h := cfg.Hidden

	// Xavier-ish init.
	scale := 1 / math.Sqrt(float64(dim))
	m.w1 = make([][]float64, h)
	m.b1 = make([]float64, h)
	m.w2 = make([]float64, h)
	for k := 0; k < h; k++ {
		m.w1[k] = make([]float64, dim)
		for j := range m.w1[k] {
			m.w1[k][j] = rng.Normal(0, scale)
		}
		m.w2[k] = rng.Normal(0, 1/math.Sqrt(float64(h)))
	}

	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			m.w1, m.b1, m.w2 = nil, nil, nil // cancelled fits stay unfitted
			return fmt.Errorf("%s: cancelled at epoch %d: %w", m.Name(), epoch, err)
		}
		for p := 0; p < cfg.PairsPerEpoch; p++ {
			t++
			xi := train.X[pos[rng.Intn(len(pos))]]
			xj := train.X[neg[rng.Intn(len(neg))]]
			si, hi := m.forward(xi)
			sj, hj := m.forward(xj)
			// dL/d(si−sj) = −sigma(−(si−sj)).
			g := -stats.Logistic(-(si - sj))
			lr := cfg.LearningRate / math.Sqrt(float64(t))
			for k := 0; k < h; k++ {
				// Output layer.
				gw2 := g * (hi[k] - hj[k])
				// Hidden layer (tanh' = 1 − tanh²).
				gi := g * m.w2[k] * (1 - hi[k]*hi[k])
				gj := -g * m.w2[k] * (1 - hj[k]*hj[k])
				m.w2[k] -= lr * (gw2 + cfg.Lambda*m.w2[k])
				m.b1[k] -= lr * (gi + gj)
				w1k := m.w1[k]
				for d := 0; d < dim; d++ {
					w1k[d] -= lr * (gi*xi[d] + gj*xj[d] + cfg.Lambda*w1k[d])
				}
			}
		}
	}
	m.fitted = true
	return nil
}

// Scores implements Model.
func (m *RankNet) Scores(test *feature.Set) ([]float64, error) {
	if !m.fitted {
		return nil, fmt.Errorf("%s: Scores before Fit", m.Name())
	}
	if len(m.w1) > 0 && test.Dim() != len(m.w1[0]) {
		return nil, fmt.Errorf("%s: test dim %d != model dim %d", m.Name(), test.Dim(), len(m.w1[0]))
	}
	out := make([]float64, test.Len())
	parallel.New(m.cfg.Workers).Run(test.Len(), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.score(test.X[i])
		}
	})
	return out, nil
}
