// Package dataset defines the domain model of the reproduction: water pipes
// with their physical attributes and environmental factors, the failure
// (work-order) log recorded against them, and the network container that
// every other package consumes.
//
// The model mirrors the registries water utilities keep: a pipe table keyed
// by asset ID carrying intrinsic attributes (material, diameter, length,
// laid year, coating) and environmental factors (soil characteristics,
// distance to the nearest traffic intersection), plus an event log of dated
// failures matched to pipes and pipe segments.
package dataset

import (
	"fmt"
)

// PipeClass distinguishes the two main categories of a water supply network.
type PipeClass int

const (
	// CriticalMain (CWM) pipes have diameters of 300 mm and above; they are
	// the pipes utilities proactively inspect and renew.
	CriticalMain PipeClass = iota
	// ReticulationMain (RWM) pipes have diameters below 300 mm and are
	// typically renewed reactively.
	ReticulationMain
)

// String returns the utility shorthand for the class.
func (c PipeClass) String() string {
	switch c {
	case CriticalMain:
		return "CWM"
	case ReticulationMain:
		return "RWM"
	default:
		return fmt.Sprintf("PipeClass(%d)", int(c))
	}
}

// ParsePipeClass converts the shorthand back to a PipeClass.
func ParsePipeClass(s string) (PipeClass, error) {
	switch s {
	case "CWM":
		return CriticalMain, nil
	case "RWM":
		return ReticulationMain, nil
	default:
		return 0, fmt.Errorf("dataset: unknown pipe class %q", s)
	}
}

// ClassForDiameter applies the 300 mm rule used by the source utility.
func ClassForDiameter(diameterMM float64) PipeClass {
	if diameterMM >= 300 {
		return CriticalMain
	}
	return ReticulationMain
}

// Material identifies the pipe wall material. The constants cover the
// materials common in metropolitan drinking-water networks.
type Material string

const (
	// CICL is cast iron cement lined, the dominant legacy material.
	CICL Material = "CICL"
	// CI is unlined cast iron, the oldest cohort.
	CI Material = "CI"
	// DICL is ductile iron cement lined.
	DICL Material = "DICL"
	// AC is asbestos cement.
	AC Material = "AC"
	// PVC is polyvinyl chloride.
	PVC Material = "PVC"
	// STEEL is welded steel, used for large trunk mains.
	STEEL Material = "STEEL"
	// HDPE is high-density polyethylene, the newest cohort.
	HDPE Material = "HDPE"
)

// Materials lists every known material in a stable order (useful for
// encoders and report tables).
func Materials() []Material {
	return []Material{CICL, CI, DICL, AC, PVC, STEEL, HDPE}
}

// Coating identifies the protective coating of a pipe.
type Coating string

const (
	// CoatingNone marks an uncoated pipe.
	CoatingNone Coating = "NONE"
	// CoatingPESleeve is a polyethylene sleeve.
	CoatingPESleeve Coating = "PE_SLEEVE"
	// CoatingTar is a tar/bitumen coating.
	CoatingTar Coating = "TAR"
)

// Coatings lists every known coating in a stable order.
func Coatings() []Coating {
	return []Coating{CoatingNone, CoatingPESleeve, CoatingTar}
}

// Soil categorical levels. Each soil factor partitions the region into zones;
// pipes falling in the same zone share the value.
var (
	// SoilCorrosivityLevels orders pitting risk from benign to severe.
	SoilCorrosivityLevels = []string{"LOW", "MODERATE", "HIGH", "SEVERE"}
	// SoilExpansivityLevels orders shrink-swell reactivity.
	SoilExpansivityLevels = []string{"STABLE", "SLIGHT", "MODERATE", "HIGH"}
	// SoilGeologyLevels names the dominant rock of a zone.
	SoilGeologyLevels = []string{"SANDSTONE", "SHALE", "CLAY", "ALLUVIUM", "FILL"}
	// SoilMapLevels names the landscape class of a zone.
	SoilMapLevels = []string{"FLUVIAL", "COLLUVIAL", "EROSIONAL", "RESIDUAL", "SWAMP"}
)

// Pipe is one water main: a set of segments connected in series that share
// intrinsic attributes and (approximately) environmental factors.
type Pipe struct {
	// ID is the utility asset identifier, unique within a Network.
	ID string
	// Class is the 300 mm diameter classification.
	Class PipeClass
	// Material is the wall material.
	Material Material
	// Coating is the protective coating.
	Coating Coating
	// DiameterMM is the nominal diameter in millimetres.
	DiameterMM float64
	// LengthM is the total pipe length in metres.
	LengthM float64
	// LaidYear is the year the pipe was commissioned.
	LaidYear int
	// SoilCorrosivity, SoilExpansivity, SoilGeology and SoilMap are the
	// categorical soil factors of the zone the pipe traverses.
	SoilCorrosivity string
	SoilExpansivity string
	SoilGeology     string
	SoilMap         string
	// DistToTrafficM is the distance in metres from the pipe to the closest
	// traffic intersection (road-surface pressure-change proxy).
	DistToTrafficM float64
	// X, Y locate the pipe centroid in metres within the region plane
	// (synthetic coordinates; used for risk maps and spatial summaries).
	X, Y float64
	// Segments is the number of serially connected segments; failures are
	// recorded per segment index in [0, Segments).
	Segments int
}

// AgeAt returns the pipe age in years at the start of the given calendar
// year, clamped at zero for pipes laid in the future relative to year.
func (p *Pipe) AgeAt(year int) float64 {
	age := float64(year - p.LaidYear)
	if age < 0 {
		return 0
	}
	return age
}

// SegmentLengthM returns the (uniform) segment length in metres.
// Pipes always have at least one segment.
func (p *Pipe) SegmentLengthM() float64 {
	if p.Segments <= 1 {
		return p.LengthM
	}
	return p.LengthM / float64(p.Segments)
}

// FailureMode describes what kind of event was recorded.
type FailureMode string

const (
	// ModeBreak is a structural break or burst (drinking-water networks).
	ModeBreak FailureMode = "BREAK"
	// ModeLeak is a detected leak repaired before bursting.
	ModeLeak FailureMode = "LEAK"
	// ModeBlockage is a waste-water choke (kept for schema completeness).
	ModeBlockage FailureMode = "BLOCKAGE"
)

// Failure is one work-order event: a dated failure matched to a pipe and a
// segment within it.
type Failure struct {
	// PipeID references Pipe.ID.
	PipeID string
	// Segment is the index of the failed segment within the pipe.
	Segment int
	// Year is the calendar year of the event.
	Year int
	// Day is the day-of-year (1-366) of the event.
	Day int
	// Mode is the recorded failure mode.
	Mode FailureMode
}
