package serve

// Streaming-ingest tests: the POST /api/events contract (single, NDJSON
// batch, validation, dedup, backpressure, unconfigured 503), WAL-backed
// replay on boot, and the scheduler-staleness / drift-gauge wiring.

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// newEventServer builds a single-shard server with streaming ingest
// wired into dir. Returned ready to serve; the caller owns shutdown.
func newEventServer(t *testing.T, dir string, cfg EventLogConfig) (*Server, *httptest.Server) {
	t.Helper()
	net, err := pipefail.GenerateRegion("A", 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(net, log.New(io.Discard, "", 0), pipefail.WithESGenerations(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dir = dir
	if err := s.SetEventLog(cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.BeginShutdown)
	return s, ts
}

// eventBody builds one valid failure event against the shard's first
// pipe, in the first post-observation year.
func eventBody(sh *shard, id string) map[string]any {
	p := sh.net.Pipes()[0]
	return map[string]any{
		"id":      id,
		"pipe_id": p.ID,
		"year":    sh.net.ObservedTo + 1,
		"day":     100,
		"mode":    "BREAK",
	}
}

func TestEventsUnconfigured503(t *testing.T) {
	s, ts := newTestServer(t)
	var apiErr map[string]string
	code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "e1"), &apiErr)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when no event log is configured", code)
	}
	if !strings.Contains(apiErr["error"], "not configured") {
		t.Fatalf("error %q should say the log is not configured", apiErr["error"])
	}
}

func TestEventsSingleAcceptAndDedup(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	var resp eventsResponse
	if code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "evt-1"), &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Accepted != 1 || resp.Duplicates != 0 || resp.LiveEvents != 1 {
		t.Fatalf("response %+v, want 1 accepted", resp)
	}
	// A retry with the same ID is a duplicate, applied zero more times.
	if code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "evt-1"), &resp); code != http.StatusOK {
		t.Fatalf("retry status %d", code)
	}
	if resp.Accepted != 0 || resp.Duplicates != 1 || resp.LiveEvents != 1 {
		t.Fatalf("retry response %+v, want 1 duplicate and seq still 1", resp)
	}
	if got := s.def.eventSeqNow(); got != 1 {
		t.Fatalf("eventSeqNow = %d, want 1", got)
	}
	// /api/network and /api/regions surface the live-event count.
	var netBody map[string]any
	getJSON(t, ts.URL+"/api/network", &netBody)
	if n, _ := netBody["live_events"].(float64); n != 1 {
		t.Fatalf("network live_events = %v, want 1", netBody["live_events"])
	}
	var rows []regionStatus
	getJSON(t, ts.URL+"/api/regions", &rows)
	if len(rows) != 1 || rows[0].LiveEvents != 1 || rows[0].WalSegments < 1 || rows[0].WalBytes <= 0 {
		t.Fatalf("regions row %+v, want live WAL stats", rows)
	}
}

func TestEventsNDJSONBatch(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	p := s.def.net.Pipes()[0]
	year := s.def.net.ObservedTo + 1
	var b strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, "{\"id\":\"b-%d\",\"pipe_id\":%q,\"year\":%d,\"day\":%d}\n", i, p.ID, year, i+1)
	}
	b.WriteString("\n") // blank lines are skipped
	fmt.Fprintf(&b, "{\"id\":\"b-1\",\"pipe_id\":%q,\"year\":%d,\"day\":2}\n", p.ID, year) // in-batch dup
	resp, err := http.Post(ts.URL+"/api/events", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out eventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 5 || out.Duplicates != 1 || out.LiveEvents != 5 {
		t.Fatalf("batch response %+v, want 5 accepted + 1 duplicate", out)
	}
}

func TestEventsValidationRejectsWholeBatch(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	p := s.def.net.Pipes()[0]
	year := s.def.net.ObservedTo + 1
	cases := []struct {
		name string
		body map[string]any
		frag string
	}{
		{"missing id", map[string]any{"pipe_id": p.ID, "year": year, "day": 1}, "missing event id"},
		{"unknown pipe", map[string]any{"id": "x1", "pipe_id": "no-such-pipe", "year": year, "day": 1}, "unknown pipe"},
		{"bad day", map[string]any{"id": "x2", "pipe_id": p.ID, "year": year, "day": 400}, "day 400 out of range"},
		{"bad mode", map[string]any{"id": "x3", "pipe_id": p.ID, "year": year, "day": 1, "mode": "EXPLODED"}, "unknown failure mode"},
		{"bad type", map[string]any{"id": "x4", "pipe_id": p.ID, "year": year, "type": "party"}, "unknown event type"},
		{"bad segment", map[string]any{"id": "x5", "pipe_id": p.ID, "year": year, "day": 1, "segment": 99999}, "segment"},
		{"pre-window year", map[string]any{"id": "x6", "pipe_id": p.ID, "year": 1000, "day": 1}, "precedes"},
		{"far-future year", map[string]any{"id": "x7", "pipe_id": p.ID, "year": 20266, "day": 1}, "beyond acceptance horizon"},
		{"far-future renewal", map[string]any{"id": "x8", "type": "renewal", "pipe_id": p.ID, "year": 20266}, "beyond acceptance horizon"},
	}
	for _, tc := range cases {
		var apiErr map[string]string
		code := postJSON(t, ts.URL+"/api/events", tc.body, &apiErr)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, code)
		}
		if !strings.Contains(apiErr["error"], tc.frag) {
			t.Fatalf("%s: error %q missing %q", tc.name, apiErr["error"], tc.frag)
		}
	}
	if got := s.def.eventSeqNow(); got != 0 {
		t.Fatalf("invalid requests applied %d events", got)
	}
	// One invalid line poisons a whole NDJSON batch: nothing applies.
	nd := fmt.Sprintf("{\"id\":\"ok-1\",\"pipe_id\":%q,\"year\":%d,\"day\":1}\n{\"id\":\"bad\",\"pipe_id\":\"nope\",\"year\":%d,\"day\":1}\n", p.ID, year, year)
	resp, err := http.Post(ts.URL+"/api/events", "application/x-ndjson", strings.NewReader(nd))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed batch status %d, want 400", resp.StatusCode)
	}
	if got := s.def.eventSeqNow(); got != 0 {
		t.Fatalf("poisoned batch applied %d events", got)
	}
}

// TestEventsYearHorizonRatchets locks the upper bound on event years:
// max(ObservedTo, newest applied live year, wall-clock year) + slack.
// Without it one absurd year (a typo on the unauthenticated endpoint)
// would be durably logged and make every retrain allocate rows for
// thousands of years per pipe.
func TestEventsYearHorizonRatchets(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	p := s.def.net.Pipes()[0]
	// The generated network's window ends well in the past, so the wall
	// clock dominates the initial horizon.
	horizon := time.Now().Year() + eventYearSlack
	var apiErr map[string]string
	body := map[string]any{"id": "h-reject", "pipe_id": p.ID, "year": horizon + 1, "day": 1}
	if code := postJSON(t, ts.URL+"/api/events", body, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 one year past the horizon", code)
	}
	if !strings.Contains(apiErr["error"], "beyond acceptance horizon") {
		t.Fatalf("error %q should name the horizon", apiErr["error"])
	}
	// The horizon year itself is accepted — and acceptance ratchets the
	// horizon, so the previously rejected year becomes reportable.
	var resp eventsResponse
	if code := postJSON(t, ts.URL+"/api/events", map[string]any{"id": "h-1", "pipe_id": p.ID, "year": horizon, "day": 1}, &resp); code != http.StatusOK {
		t.Fatalf("horizon-year event rejected")
	}
	if code := postJSON(t, ts.URL+"/api/events", map[string]any{"id": "h-2", "pipe_id": p.ID, "year": horizon + 1, "day": 1}, &resp); code != http.StatusOK {
		t.Fatalf("ratcheted-year event rejected")
	}
	if got := s.def.eventSeqNow(); got != 2 {
		t.Fatalf("applied %d events, want 2", got)
	}
}

// TestEventsReplaySkipsPoisonedYears proves an already-poisoned log
// (a far-future record accepted before the horizon rule, or written by
// hand) recovers on boot: replay skips the out-of-horizon record
// instead of re-wedging every retrain forever.
func TestEventsReplaySkipsPoisonedYears(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newEventServer(t, dir, EventLogConfig{Sync: wal.SyncAlways})
	p := s1.def.net.Pipes()[0]
	if code := postJSON(t, ts1.URL+"/api/events", eventBody(s1.def, "ok-1"), nil); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	s1.BeginShutdown()
	ts1.Close()

	// Poison the log out-of-band: a well-framed record with an absurd
	// year, exactly what a pre-horizon server would have logged.
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, MetricsName: "wal.test.poison"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	end, err := w.Append([]byte(fmt.Sprintf(`{"id":"poison-1","pipe_id":%q,"year":20266,"day":1,"mode":"BREAK"}`, p.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(end); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	before := obs.Default().Counter("serve.events.replay_rejected").Value()
	s2, _ := newEventServer(t, dir, EventLogConfig{Sync: wal.SyncAlways})
	if got := s2.def.eventSeqNow(); got != 1 {
		t.Fatalf("replayed seq %d, want 1 (poison record must be skipped)", got)
	}
	if got := obs.Default().Counter("serve.events.replay_rejected").Value(); got != before+1 {
		t.Fatalf("replay_rejected went %d -> %d, want exactly one skip", before, got)
	}
	if max := s2.def.maxEventYear(); max > time.Now().Year()+eventYearSlack {
		t.Fatalf("acceptance horizon %d still poisoned after replay", max)
	}
}

func TestEventsNDJSONRejectsUnknownFields(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	p := s.def.net.Pipes()[0]
	// "regon" misspells "region": it must be a 400 like on the single-
	// object path, not a silently dropped key that routes the event to
	// the default shard.
	nd := fmt.Sprintf("{\"id\":\"u-1\",\"pipe_id\":%q,\"year\":%d,\"day\":1,\"regon\":\"B\"}\n", p.ID, s.def.net.ObservedTo+1)
	resp, err := http.Post(ts.URL+"/api/events", "application/x-ndjson", strings.NewReader(nd))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for an unknown field in a batch line", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "regon") {
		t.Fatalf("error %s should name the unknown field", body)
	}
	if got := s.def.eventSeqNow(); got != 0 {
		t.Fatalf("unknown-field batch applied %d events", got)
	}
}

// TestEventsBackpressureDrainRecovers: a 429 must kick a background
// drain. Under SyncNever the backlog otherwise only shrinks at segment
// rotation, and rotation needs appends — which backpressure refuses —
// so without the drain a segment budget >= the backlog budget wedges
// ingest in permanent 429 until restart.
func TestEventsBackpressureDrainRecovers(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncNever, MaxBacklogBytes: 1})
	if code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "d-1"), nil); code != http.StatusOK {
		t.Fatalf("first status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "d-2"), nil); code != http.StatusTooManyRequests {
		t.Fatalf("over-budget status %d, want 429", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.def.ingest.wal.BacklogBytes() > 1 {
		if time.Now().After(deadline) {
			t.Fatal("backpressure drain never cleared the backlog")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var resp eventsResponse
	if code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "d-3"), &resp); code != http.StatusOK || resp.Accepted != 1 {
		t.Fatalf("post-drain status %d resp %+v, want accepted", code, resp)
	}
}

func TestEventsRenewal(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	p := s.def.net.Pipes()[0]
	body := map[string]any{"id": "r-1", "type": "renewal", "pipe_id": p.ID, "year": s.def.net.ObservedTo}
	var resp eventsResponse
	if code := postJSON(t, ts.URL+"/api/events", body, &resp); code != http.StatusOK || resp.Accepted != 1 {
		t.Fatalf("renewal rejected: code %d resp %+v", code, resp)
	}
	// The renewal reaches the live training network as a LaidYear reset.
	pipe, seq, err := s.def.trainPipeline()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || pipe == s.def.pipe {
		t.Fatalf("trainPipeline seq %d (pipe extended: %v), want live pipeline at seq 1", seq, pipe != s.def.pipe)
	}
}

func TestEventsBackpressure429(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncNever, MaxBacklogBytes: 1})
	// First request admits (backlog 0), and under SyncNever its bytes
	// stay unsynced — the second request must hit the budget.
	var resp eventsResponse
	if code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "bp-1"), &resp); code != http.StatusOK {
		t.Fatalf("first status %d", code)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/api/events", strings.NewReader(`{"id":"bp-2","pipe_id":"`+s.def.net.Pipes()[0].ID+`","year":`+fmt.Sprint(s.def.net.ObservedTo+1)+`,"day":1}`))
	req.Header.Set("Content-Type", "application/json")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 under backlog", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
}

func TestEventsReplayOnBoot(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newEventServer(t, dir, EventLogConfig{Sync: wal.SyncAlways})
	p := s1.def.net.Pipes()[0]
	year := s1.def.net.ObservedTo + 1
	for i := 0; i < 4; i++ {
		var resp eventsResponse
		body := map[string]any{"id": fmt.Sprintf("rp-%d", i), "pipe_id": p.ID, "year": year, "day": i + 1}
		if code := postJSON(t, ts1.URL+"/api/events", body, &resp); code != http.StatusOK {
			t.Fatalf("post %d status %d", i, code)
		}
	}
	s1.BeginShutdown() // seals the WAL
	ts1.Close()

	// A fresh server over the same directory replays all four and dedups
	// retries of them.
	s2, ts2 := newEventServer(t, dir, EventLogConfig{Sync: wal.SyncAlways})
	if got := s2.def.eventSeqNow(); got != 4 {
		t.Fatalf("replayed seq %d, want 4", got)
	}
	var resp eventsResponse
	body := map[string]any{"id": "rp-2", "pipe_id": p.ID, "year": year, "day": 3}
	if code := postJSON(t, ts2.URL+"/api/events", body, &resp); code != http.StatusOK {
		t.Fatalf("retry status %d", code)
	}
	if resp.Accepted != 0 || resp.Duplicates != 1 || resp.LiveEvents != 4 {
		t.Fatalf("post-replay retry %+v, want pure duplicate", resp)
	}
}

func TestEventsMarkModelsStaleAndDriftGauges(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	def := string(s.defaultModel)
	// Train the default model on the base window.
	if code := postJSON(t, ts.URL+"/api/models/"+def+"/train", nil, nil); code != http.StatusOK {
		t.Fatalf("train status %d", code)
	}
	tm0 := (*s.def.models.Load())[def]
	if tm0.eventSeq != 0 {
		t.Fatalf("base snapshot eventSeq %d, want 0", tm0.eventSeq)
	}

	// Ingest a failure: the snapshot is now stale for the scheduler.
	var resp eventsResponse
	if code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "drift-1"), &resp); code != http.StatusOK {
		t.Fatalf("event status %d", code)
	}
	if tm0.eventSeq >= s.def.eventSeqNow() {
		t.Fatal("ingest did not advance the staleness seq")
	}
	reg := obs.Default()
	if got := reg.Gauge("serve.shard.a.live_events").Value(); got != 1 {
		t.Fatalf("live_events gauge %v, want 1", got)
	}
	if got := reg.Gauge("serve.shard.a.window_events").Value(); got != 1 {
		t.Fatalf("window_events gauge %v, want 1", got)
	}
	// One failed pipe among many gives a well-defined live-window AUC.
	if got := reg.Gauge("serve.shard.a.drift.live_auc").Value(); got < 0 || got > 1 {
		t.Fatalf("drift.live_auc gauge %v, want [0,1]", got)
	}
	if got := reg.Gauge("serve.shard.a.drift.train_auc").Value(); got <= 0 || got > 1 {
		t.Fatalf("drift.train_auc gauge %v, want (0,1]", got)
	}

	// A rebuild retrains on the event-extended window and stamps the seq.
	s.rebuild(s.def, def)
	tm1 := (*s.def.models.Load())[def]
	if tm1.eventSeq != 1 {
		t.Fatalf("rebuilt snapshot eventSeq %d, want 1", tm1.eventSeq)
	}
	if tm1 == tm0 {
		t.Fatal("rebuild did not republish")
	}
}

// TestEventsRepublishRotatesCachedResponses is the regression test for
// the stale-response-cache bug: ranking/plan cache keys include the
// published snapshot's content ETag, so a live-event retrain that
// changes the ranking must rotate what /ranking serves — the old cached
// body becomes unreachable the moment the new snapshot lands, instead
// of being replayed until LRU eviction.
func TestEventsRepublishRotatesCachedResponses(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	def := string(s.defaultModel)
	if code := postJSON(t, ts.URL+"/api/models/"+def+"/train", nil, nil); code != http.StatusOK {
		t.Fatalf("train status %d", code)
	}
	url := ts.URL + "/api/models/" + def + "/ranking?top=5"
	before := fetchRankingETag(t, url) // warms the response cache
	if again := fetchRankingETag(t, url); again != before {
		t.Fatalf("cached replay changed ETag %s -> %s", before, again)
	}

	var resp eventsResponse
	if code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "cache-rotate-1"), &resp); code != http.StatusOK {
		t.Fatalf("event status %d", code)
	}
	s.rebuild(s.def, def)
	tm := (*s.def.models.Load())[def]

	after := fetchRankingETag(t, url)
	if after != tm.etag {
		t.Fatalf("post-republish ranking ETag %s, want published snapshot's %s (stale cache entry replayed)", after, tm.etag)
	}
	if after == before {
		t.Fatalf("retrain on the event-extended window left the ranking ETag unchanged (%s)", before)
	}
}

func TestEventsMultiShardRouting(t *testing.T) {
	sA, err := pipefail.GenerateRegion("A", 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := pipefail.GenerateRegion("B", 6, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewMulti([]*pipefail.Network{sA, sB}, log.New(io.Discard, "", 0), pipefail.WithESGenerations(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetEventLog(EventLogConfig{Dir: t.TempDir(), Sync: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.BeginShutdown)

	shB := s.byRegion["B"]
	body := eventBody(shB, "m-1")
	body["region"] = "B"
	var resp eventsResponse
	if code := postJSON(t, ts.URL+"/api/events", body, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if s.byRegion["A"].eventSeqNow() != 0 || shB.eventSeqNow() != 1 {
		t.Fatalf("event routed to wrong shard: A=%d B=%d", s.byRegion["A"].eventSeqNow(), shB.eventSeqNow())
	}
	body["region"] = "Z"
	body["id"] = "m-2"
	if code := postJSON(t, ts.URL+"/api/events", body, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown region status %d, want 400", code)
	}
}

func TestEventsClosedLog503(t *testing.T) {
	s, ts := newEventServer(t, t.TempDir(), EventLogConfig{Sync: wal.SyncAlways})
	s.def.ingest.wal.Close()
	code := postJSON(t, ts.URL+"/api/events", eventBody(s.def, "c-1"), nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 on closed log", code)
	}
	if got := s.def.eventSeqNow(); got != 0 {
		t.Fatalf("closed log applied %d events", got)
	}
}
