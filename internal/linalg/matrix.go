package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky-based solvers when the
// normal-equations matrix is singular or indefinite; fitters respond by
// increasing their ridge term.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed rows x cols matrix. It panics on non-positive
// dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: NewMatrix(%d, %d) non-positive dimension", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage, not a copy).
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: Clone(m.Data)}
}

// MulVec computes m * x, returning a new vector of length m.Rows.
// It panics when len(x) != m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	MatVec(out, m.Data, m.Cols, x)
	return out
}

// TMulVec computes mᵀ * x, returning a new vector of length m.Cols.
// It panics when len(x) != m.Rows.
func (m *Matrix) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: TMulVec dimension mismatch %d vs %d", len(x), m.Rows))
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), out)
	}
	return out
}

// ATWA computes Aᵀ diag(w) A for the weighted normal equations used by the
// IRLS logistic fitter. w must have length A.Rows; pass nil for unit weights.
func ATWA(a *Matrix, w []float64) *Matrix {
	out := NewMatrix(a.Cols, a.Cols)
	for i := 0; i < a.Rows; i++ {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		if wi == 0 {
			continue
		}
		row := a.Row(i)
		for p := 0; p < a.Cols; p++ {
			vp := wi * row[p]
			if vp == 0 {
				continue
			}
			orow := out.Row(p)
			for q := p; q < a.Cols; q++ {
				orow[q] += vp * row[q]
			}
		}
	}
	// Mirror the upper triangle.
	for p := 0; p < out.Rows; p++ {
		for q := p + 1; q < out.Cols; q++ {
			out.Set(q, p, out.At(p, q))
		}
	}
	return out
}

// Cholesky factors a symmetric positive-definite matrix m into L (lower
// triangular, m = L Lᵀ). It returns ErrNotPositiveDefinite when a pivot is
// non-positive. m is not modified.
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves m x = b for symmetric positive-definite m via the
// Cholesky factorization, returning a fresh solution vector.
func SolveCholesky(m *Matrix, b []float64) ([]float64, error) {
	if len(b) != m.Rows {
		return nil, fmt.Errorf("linalg: SolveCholesky rhs length %d vs %d rows", len(b), m.Rows)
	}
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	n := m.Rows
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// SolveRidge solves (m + ridge*I) x = b, retrying with a larger ridge when
// the matrix is not positive definite. It gives up after a few escalations
// and returns the underlying error; callers treat that as a fit failure.
func SolveRidge(m *Matrix, b []float64, ridge float64) ([]float64, error) {
	if ridge < 0 {
		return nil, fmt.Errorf("linalg: negative ridge %v", ridge)
	}
	cur := ridge
	for attempt := 0; attempt < 8; attempt++ {
		work := m.Clone()
		if cur > 0 {
			for i := 0; i < work.Rows; i++ {
				work.Set(i, i, work.At(i, i)+cur)
			}
		}
		x, err := SolveCholesky(work, b)
		if err == nil {
			return x, nil
		}
		if !errors.Is(err, ErrNotPositiveDefinite) {
			return nil, err
		}
		if cur == 0 {
			cur = 1e-8
		} else {
			cur *= 100
		}
	}
	return nil, ErrNotPositiveDefinite
}
