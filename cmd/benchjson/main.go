// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document, so benchmark results can be checked in and
// diffed across commits (see `make bench-json`, BENCH_core.json and
// BENCH_serve.json).
//
// Usage:
//
//	go test -run '^$' -bench . ./... | benchjson > BENCH_core.json
//	go test -run '^$' -bench . ./internal/serve/ | benchjson -o BENCH_serve.json
//
// -o writes to the named file atomically-enough for a build tree (the
// file appears complete or not at all, via a rename), which lets one
// make recipe emit several BENCH_*.json documents without shell
// redirection ordering hazards.
//
// -check flips the tool from recorder to regression gate: instead of
// emitting JSON it compares the fresh run on stdin against a checked-in
// baseline and exits nonzero on regression:
//
//	go test -run '^$' -bench . ./internal/eval/ | benchjson -check BENCH_core.json -tol 0.3
//
// A benchmark regresses when its ns/op exceeds baseline*(1+tol), when
// its allocs/op rises above the baseline count (allocation counts are
// exact, so they get no tolerance), or when a baseline benchmark is
// missing from the fresh run entirely. Benchmarks in the fresh run but
// not the baseline are ignored — new benchmarks land in the baseline via
// `make bench-json`. The gate is a pre-release check (`make
// bench-check`), not part of verify: wall-clock numbers are too
// machine-sensitive for a merge gate, but a 30% slide should never reach
// a release unnoticed.
//
// Only benchmark result lines are parsed; all other output (pass/fail
// summaries, pkg headers) is ignored. Lines that report B/op and
// allocs/op (benchmarks using b.ReportAllocs) carry those fields; others
// omit them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// so results are comparable across machines.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the reported B/op; nil when the benchmark does not
	// report allocations.
	BytesPerOp *int64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is the reported allocs/op; nil when not reported.
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkFitnessEval-8   1933   610513 ns/op   42 B/op   0 allocs/op
//	BenchmarkColRead/rows=10k   909   1324101 ns/op   368.81 MB/s   3432264 B/op   155 allocs/op
//
// The MB/s column (benchmarks using b.SetBytes) is skipped, not recorded:
// it is derived from ns/op and the fixed byte size, so ns/op already
// carries the signal.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// parse extracts benchmark results from go test -bench output.
func parse(lines []string) ([]Result, error) {
	var out []Result
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the -GOMAXPROCS suffix go test appends when parallelism > 1.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", line, err)
		}
		r := Result{Name: name, Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad B/op in %q: %w", line, err)
			}
			a, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %w", line, err)
			}
			r.BytesPerOp = &b
			r.AllocsPerOp = &a
		}
		out = append(out, r)
	}
	return out, nil
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout (written via a temp-file rename)")
	checkPath := flag.String("check", "", "compare the fresh run on stdin against this baseline JSON instead of emitting JSON; exit 1 on regression")
	tol := flag.Float64("tol", 0.30, "with -check, allowed fractional ns/op slowdown over the baseline (allocs/op gets no tolerance)")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	results, err := parse(lines)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *checkPath != "" {
		baseline, err := readBaseline(*checkPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		violations := check(results, baseline, *tol)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", v)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within %.0f%% of %s\n",
			len(baseline), *tol*100, *checkPath)
		return
	}
	if err := write(results, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// readBaseline loads a checked-in BENCH_*.json document.
func readBaseline(path string) ([]Result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var baseline []Result
	if err := json.Unmarshal(blob, &baseline); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(baseline) == 0 {
		return nil, fmt.Errorf("baseline %s: no benchmarks", path)
	}
	return baseline, nil
}

// check compares a fresh run against the baseline and returns one
// message per violation. Every baseline benchmark must be present in the
// fresh run — a silently dropped benchmark would otherwise read as a
// pass — with ns/op at most baseline*(1+tol) and allocs/op (when the
// baseline records it) not above the baseline count.
func check(fresh, baseline []Result, tol float64) []string {
	byName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	var violations []string
	for _, base := range baseline {
		got, ok := byName[base.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: in baseline but missing from this run", base.Name))
			continue
		}
		if limit := base.NsPerOp * (1 + tol); got.NsPerOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%% (limit %.0f)",
				base.Name, got.NsPerOp, base.NsPerOp, tol*100, limit))
		}
		if base.AllocsPerOp != nil {
			switch {
			case got.AllocsPerOp == nil:
				violations = append(violations, fmt.Sprintf(
					"%s: baseline records %d allocs/op but this run reports none (b.ReportAllocs dropped?)",
					base.Name, *base.AllocsPerOp))
			case *got.AllocsPerOp > *base.AllocsPerOp:
				violations = append(violations, fmt.Sprintf(
					"%s: %d allocs/op exceeds baseline %d (no tolerance on allocation counts)",
					base.Name, *got.AllocsPerOp, *base.AllocsPerOp))
			}
		}
	}
	return violations
}

// write emits the results as indented JSON to path ("" = stdout). File
// output goes through a temp file + rename so a failed run never leaves
// a truncated BENCH_*.json behind.
func write(results []Result, path string) error {
	if path == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
