package stats

import (
	"fmt"
	"math"
)

// NormalCDF returns the standard normal cumulative distribution function at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns the inverse of the standard normal CDF.
// It uses the Acklam rational approximation refined with one Halley step,
// giving ~1e-15 relative accuracy over (0, 1). It panics for p outside (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormalQuantile p=%v out of (0,1)", p))
	}
	// Coefficients for the central and tail regions (Acklam 2003).
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogGamma returns the natural log of the absolute value of the gamma
// function, delegating to the standard library but discarding the sign,
// which is always +1 for the positive arguments used in this repository.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// regularizedIncompleteBeta computes I_x(a, b) via the continued-fraction
// expansion (Numerical Recipes betacf), which converges for all 0<=x<=1.
func regularizedIncompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := LogGamma(a+b) - LogGamma(a) - LogGamma(b) +
		a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T <= t) for a Student t distribution with df degrees
// of freedom. It panics for df <= 0.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: StudentTCDF df=%v <= 0", df))
	}
	x := df / (df + t*t)
	p := 0.5 * regularizedIncompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// WeibullCDF returns the CDF of a Weibull(shape k, scale lambda) at t.
// Negative times return 0.
func WeibullCDF(t, shape, scale float64) float64 {
	if t <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(t/scale, shape))
}

// WeibullHazard returns the hazard rate h(t) = k/lambda * (t/lambda)^(k-1)
// of a Weibull(shape, scale) distribution. For shape < 1 the hazard diverges
// at t=0; callers clamp t to a small positive value.
func WeibullHazard(t, shape, scale float64) float64 {
	if t <= 0 {
		t = 1e-9
	}
	return shape / scale * math.Pow(t/scale, shape-1)
}

// ExpCDF returns the CDF of an exponential distribution with the given rate.
func ExpCDF(t, rate float64) float64 {
	if t <= 0 {
		return 0
	}
	return 1 - math.Exp(-rate*t)
}

// Logistic returns the standard logistic sigmoid 1/(1+exp(-x)), computed in
// a numerically stable branch-free-enough way.
func Logistic(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Log1pExp returns log(1+exp(x)) without overflow for large x.
func Log1pExp(x float64) float64 {
	if x > 35 {
		return x
	}
	if x < -35 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}
