package pipefail

// End-to-end test of the command-line tools: builds the binaries once and
// drives the pipegen → pipetrain workflow the README documents, plus a
// pipeeval experiment and a riskmap render. Skipped under -short.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// buildCmds compiles every cmd/ binary into a temp dir and returns their
// paths keyed by name.
func buildCmds(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := map[string]string{}
	for _, name := range []string{"pipegen", "pipetrain", "pipeeval", "riskmap", "pipeserve", "pipeconv"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	msg, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, msg)
	}
	return string(msg)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	bins := buildCmds(t)
	work := t.TempDir()
	dataDir := filepath.Join(work, "regionA")

	// 1. Generate a small region.
	out := runCmd(t, bins["pipegen"], "-region", "A", "-seed", "3", "-scale", "0.04", "-out", dataDir)
	if !strings.Contains(out, "generated region A") || !strings.Contains(out, "CWM") {
		t.Fatalf("pipegen output:\n%s", out)
	}
	for _, f := range []string{"pipes.csv", "failures.csv", "meta.csv"} {
		if _, err := os.Stat(filepath.Join(dataDir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}

	// 2. Train on it and persist the model.
	modelPath := filepath.Join(work, "model.json")
	out = runCmd(t, bins["pipetrain"],
		"-data", dataDir, "-model", "DirectAUC-ES", "-esgens", "10",
		"-top", "5", "-save", modelPath)
	if !strings.Contains(out, "AUC") || !strings.Contains(out, "top 5 pipes") {
		t.Fatalf("pipetrain output:\n%s", out)
	}
	if !strings.Contains(out, "top feature weights") {
		t.Fatalf("pipetrain missing importance table:\n%s", out)
	}
	blob, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "DirectAUC-ES") {
		t.Fatalf("persisted model malformed:\n%s", blob)
	}

	// 3. One cheap experiment through pipeeval.
	out = runCmd(t, bins["pipeeval"],
		"-exp", "T1", "-scale", "0.04", "-regions", "A")
	if !strings.Contains(out, "T1: pipe network") {
		t.Fatalf("pipeeval output:\n%s", out)
	}
	if strings.Contains(out, "== metrics ==") {
		t.Fatalf("metrics snapshot printed without -metrics:\n%s", out)
	}

	// 3b. -metrics appends a JSON snapshot with fit timings and pool
	// counters after an evaluation run.
	out = runCmd(t, bins["pipeeval"],
		"-exp", "T2", "-scale", "0.04", "-regions", "A", "-seed", "3",
		"-models", "Heuristic-Age,Logistic", "-metrics")
	idx := strings.Index(out, "== metrics ==")
	if idx < 0 {
		t.Fatalf("pipeeval -metrics missing snapshot:\n%s", out)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(out[idx+len("== metrics =="):]), &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v\n%s", err, out[idx:])
	}
	if h, ok := snap.Histograms["core.fit_seconds.Logistic"]; !ok || h.Count < 1 {
		t.Fatalf("snapshot missing core.fit_seconds.Logistic: %+v", snap.Histograms)
	}
	if _, ok := snap.Histograms["experiments.eval_seconds.A.Logistic"]; !ok {
		t.Fatalf("snapshot missing experiments.eval_seconds.A.Logistic: %+v", snap.Histograms)
	}
	if snap.Counters["parallel.run.calls"]+snap.Counters["parallel.dynamic.calls"] < 1 {
		t.Fatalf("snapshot missing parallel pool counters: %+v", snap.Counters)
	}

	// 4. Risk map SVG.
	svgPath := filepath.Join(work, "map.svg")
	out = runCmd(t, bins["riskmap"],
		"-region", "A", "-model", "Heuristic-Age", "-scale", "0.04", "-out", svgPath)
	if !strings.Contains(out, "top-decile hit") {
		t.Fatalf("riskmap output:\n%s", out)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("riskmap did not produce an SVG")
	}
}

// TestCLIColumnarEndToEnd drives the columnar data plane through the
// binaries: pipegen writes the same region in both formats, pipeconv
// round-trips between them byte-exactly, and pipetrain produces identical
// output whichever format it loads.
func TestCLIColumnarEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	bins := buildCmds(t)
	work := t.TempDir()
	csvDir := filepath.Join(work, "csvA")
	colDir := filepath.Join(work, "colA")

	// The same region in both formats.
	runCmd(t, bins["pipegen"], "-region", "A", "-seed", "3", "-scale", "0.04", "-out", csvDir)
	out := runCmd(t, bins["pipegen"], "-region", "A", "-seed", "3", "-scale", "0.04",
		"-format", "col", "-out", colDir)
	if !strings.Contains(out, "generated region A") {
		t.Fatalf("pipegen -format col output:\n%s", out)
	}
	colFile := filepath.Join(colDir, "dataset.col")
	if _, err := os.Stat(colFile); err != nil {
		t.Fatalf("missing dataset.col: %v", err)
	}

	// CSV -> columnar conversion must reproduce pipegen's columnar bytes.
	convCol := filepath.Join(work, "conv.col")
	out = runCmd(t, bins["pipeconv"], "-in", csvDir, "-out", convCol)
	if !strings.Contains(out, "pipes:") {
		t.Fatalf("pipeconv output:\n%s", out)
	}
	direct, err := os.ReadFile(colFile)
	if err != nil {
		t.Fatal(err)
	}
	converted, err := os.ReadFile(convCol)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, converted) {
		t.Fatalf("pipegen -format col (%d bytes) and pipeconv CSV->col (%d bytes) differ",
			len(direct), len(converted))
	}

	// Columnar -> CSV must reproduce the original CSV bytes.
	backDir := filepath.Join(work, "back")
	runCmd(t, bins["pipeconv"], "-in", colDir, "-out", backDir)
	for _, name := range []string{"pipes.csv", "failures.csv", "meta.csv"} {
		want, err := os.ReadFile(filepath.Join(csvDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(backDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("columnar->CSV round trip changed %s", name)
		}
	}

	// Training must not depend on which format fed it.
	trainCSV := runCmd(t, bins["pipetrain"], "-data", csvDir, "-model", "RankSVM", "-top", "5")
	trainCol := runCmd(t, bins["pipetrain"], "-data", colDir, "-model", "RankSVM", "-top", "5")
	if trainCSV != trainCol {
		t.Fatalf("pipetrain output differs across formats:\n--- csv ---\n%s\n--- col ---\n%s",
			trainCSV, trainCol)
	}
	// A bare .col file path works too.
	trainFile := runCmd(t, bins["pipetrain"], "-data", colFile, "-model", "RankSVM", "-top", "5")
	if trainFile != trainCol {
		t.Fatalf("pipetrain on bare .col differs:\n%s\nvs\n%s", trainFile, trainCol)
	}

	// pipeeval evaluates loaded datasets via -data, and refuses
	// experiments that need the synthetic generator.
	out = runCmd(t, bins["pipeeval"], "-data", csvDir+","+colDir,
		"-exp", "T2", "-models", "Heuristic-Age")
	if !strings.Contains(out, "T2:") || !strings.Contains(out, "region A") {
		t.Fatalf("pipeeval -data output:\n%s", out)
	}
	cmd := exec.Command(bins["pipeeval"], "-data", csvDir, "-exp", "T5")
	if msg, err := cmd.CombinedOutput(); err == nil || !strings.Contains(string(msg), "cannot run on loaded datasets") {
		t.Fatalf("pipeeval -data -exp T5 should refuse: err=%v\n%s", err, msg)
	}
}

// pipeserveProc is one spawned pipeserve binary: its base URL, the
// running cmd, and the stderr log accumulated so far (appended by a
// background reader; read it only after Wait).
type pipeserveProc struct {
	cmd  *exec.Cmd
	base string

	mu  sync.Mutex
	log bytes.Buffer
}

func (p *pipeserveProc) stderr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.log.String()
}

// startPipeserve launches the binary with the given extra flags on an
// ephemeral port, scrapes the bound address from the startup log, and
// keeps collecting stderr in the background.
func startPipeserve(t *testing.T, bin string, extra ...string) *pipeserveProc {
	t.Helper()
	return startPipeserveEnv(t, bin, nil, extra...)
}

// startPipeserveEnv is startPipeserve with extra environment variables
// (the crash-injection hook for the kill-mid-ingest e2e).
func startPipeserveEnv(t *testing.T, bin string, env []string, extra ...string) *pipeserveProc {
	t.Helper()
	args := append([]string{"-region", "A", "-seed", "5", "-scale", "0.04", "-addr", "127.0.0.1:0"}, extra...)
	p := &pipeserveProc{cmd: exec.Command(bin, args...)}
	if len(env) > 0 {
		p.cmd.Env = append(os.Environ(), env...)
	}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	})
	sc := bufio.NewScanner(stderr)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() && time.Now().Before(deadline) {
		line := sc.Text()
		p.mu.Lock()
		p.log.WriteString(line + "\n")
		p.mu.Unlock()
		if i := strings.Index(line, "listening on "); i >= 0 {
			p.base = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if p.base == "" {
		t.Fatalf("pipeserve never reported its address; startup log:\n%s", p.stderr())
	}
	go func() {
		for sc.Scan() {
			p.mu.Lock()
			p.log.WriteString(sc.Text() + "\n")
			p.mu.Unlock()
		}
	}()
	return p
}

// waitExit waits for the process to exit (bounded) and returns its exit
// code.
func (p *pipeserveProc) waitExit(t *testing.T, timeout time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		t.Fatalf("pipeserve did not exit within %s; stderr:\n%s", timeout, p.stderr())
	}
	return -1
}

// serveRequest performs one HTTP call against the spawned pipeserve
// binary and returns status code and body.
func serveRequest(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServeEndToEnd builds and launches the pipeserve binary on an
// ephemeral port, drives the train → ranking → plan workflow over real
// HTTP, and asserts GET /metrics reports the traffic it just served:
// request latency histograms per route, train singleflight counters, and
// the per-model fit-duration histogram.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("serve e2e skipped in -short mode")
	}
	bins := buildCmds(t)

	cmd := exec.Command(bins["pipeserve"],
		"-region", "A", "-seed", "5", "-scale", "0.04", "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The server logs "listening on HOST:PORT" once the ephemeral port
	// is bound; scrape it to find the base URL.
	var base string
	var startup []string
	sc := bufio.NewScanner(stderr)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() && time.Now().Before(deadline) {
		line := sc.Text()
		startup = append(startup, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		t.Fatalf("pipeserve never reported its address; startup log:\n%s",
			strings.Join(startup, "\n"))
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	// Happy path: train, rank, plan.
	status, body := serveRequest(t, "POST", base+"/api/models/Logistic/train", "")
	if status != http.StatusOK || !bytes.Contains(body, []byte("auc")) {
		t.Fatalf("train: status %d body %s", status, body)
	}
	status, body = serveRequest(t, "GET", base+"/api/models/Logistic/ranking?top=5", "")
	if status != http.StatusOK || !bytes.Contains(body, []byte("pipe_id")) {
		t.Fatalf("ranking: status %d body %s", status, body)
	}

	// Snapshot + response cache contract: repeated rankings replay
	// byte-identical bodies with a strong ETag and explicit
	// Content-Length, and a conditional request short-circuits to 304.
	resp1, err := http.Get(base + "/api/models/Logistic/ranking?top=5")
	if err != nil {
		t.Fatal(err)
	}
	replay, _ := io.ReadAll(resp1.Body)
	resp1.Body.Close()
	if !bytes.Equal(replay, body) {
		t.Fatalf("cached ranking replay differs:\n%s\nvs\n%s", replay, body)
	}
	etag := resp1.Header.Get("Etag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ranking ETag missing/unquoted: %q", etag)
	}
	if cl := resp1.Header.Get("Content-Length"); cl != fmt.Sprint(len(replay)) {
		t.Fatalf("ranking Content-Length %q for %d bytes", cl, len(replay))
	}
	condReq, err := http.NewRequest("GET", base+"/api/models/Logistic/ranking?top=5", nil)
	if err != nil {
		t.Fatal(err)
	}
	condReq.Header.Set("If-None-Match", etag)
	condResp, err := http.DefaultClient.Do(condReq)
	if err != nil {
		t.Fatal(err)
	}
	condBody, _ := io.ReadAll(condResp.Body)
	condResp.Body.Close()
	if condResp.StatusCode != http.StatusNotModified || len(condBody) != 0 {
		t.Fatalf("conditional ranking: status %d, %d-byte body (want 304, empty)",
			condResp.StatusCode, len(condBody))
	}

	// A top far beyond the pipe count must clamp to the full ranking —
	// not error, not over-return, not duplicate (pins eval.TopK's clamp
	// end to end through the serve layer).
	status, body = serveRequest(t, "GET", base+"/api/network", "")
	if status != http.StatusOK {
		t.Fatalf("network: status %d body %s", status, body)
	}
	var netInfo struct {
		Pipes int `json:"pipes"`
	}
	if err := json.Unmarshal(body, &netInfo); err != nil || netInfo.Pipes < 1 {
		t.Fatalf("network: bad body %s (err %v)", body, err)
	}
	status, body = serveRequest(t, "GET", base+"/api/models/Logistic/ranking?top=1000000", "")
	if status != http.StatusOK {
		t.Fatalf("oversized top: status %d body %s", status, body)
	}
	var ranked []struct {
		Rank   int    `json:"rank"`
		PipeID string `json:"pipe_id"`
	}
	if err := json.Unmarshal(body, &ranked); err != nil {
		t.Fatalf("oversized top: invalid JSON: %v\n%s", err, body)
	}
	if len(ranked) == 0 || len(ranked) > netInfo.Pipes {
		t.Fatalf("oversized top returned %d rows for a %d-pipe network", len(ranked), netInfo.Pipes)
	}
	seen := make(map[string]bool, len(ranked))
	for i, rp := range ranked {
		if rp.Rank != i+1 {
			t.Fatalf("rank %d at position %d", rp.Rank, i)
		}
		if seen[rp.PipeID] {
			t.Fatalf("duplicate pipe %s in clamped ranking", rp.PipeID)
		}
		seen[rp.PipeID] = true
	}
	status, body = serveRequest(t, "POST", base+"/api/plan",
		`{"model":"Logistic","budget_km":3}`)
	if status != http.StatusOK || !bytes.Contains(body, []byte("total_km")) {
		t.Fatalf("plan: status %d body %s", status, body)
	}

	// Error paths surface as JSON 4xx and feed the error counters.
	status, _ = serveRequest(t, "GET", base+"/api/models/NoSuchModel/ranking", "")
	if status != http.StatusBadRequest {
		t.Fatalf("unknown model: want 400, got %d", status)
	}
	status, _ = serveRequest(t, "POST", base+"/api/plan",
		`{"model":"Logistic","budget_km":-4}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad budget: want 400, got %d", status)
	}

	// The metrics snapshot must reflect everything above.
	status, body = serveRequest(t, "GET", base+"/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d body %s", status, body)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, body)
	}
	for _, route := range []string{"train", "ranking", "plan"} {
		if h, ok := snap.Histograms["serve.request_seconds."+route]; !ok || h.Count < 1 {
			t.Errorf("missing request latency histogram for %s: %+v", route, snap.Histograms)
		}
		if snap.Counters["serve.requests."+route] < 1 {
			t.Errorf("missing request counter for %s: %+v", route, snap.Counters)
		}
	}
	if snap.Counters["serve.train.singleflight.misses"] < 1 {
		t.Errorf("train singleflight misses not recorded: %+v", snap.Counters)
	}
	if h, ok := snap.Histograms["core.fit_seconds.Logistic"]; !ok || h.Count < 1 {
		t.Errorf("per-model fit duration missing: %+v", snap.Histograms)
	}
	if snap.Counters["serve.errors.ranking"] < 1 || snap.Counters["serve.errors.plan"] < 1 {
		t.Errorf("error counters did not move: %+v", snap.Counters)
	}
	// The replayed + conditional rankings above must have hit the
	// response cache, and the first encoding was its one miss.
	if snap.Counters["respcache.serve.hits"] < 2 {
		t.Errorf("response cache hits = %d, want >= 2: %+v",
			snap.Counters["respcache.serve.hits"], snap.Counters)
	}
	if snap.Counters["respcache.serve.misses"] < 1 {
		t.Errorf("response cache misses missing: %+v", snap.Counters)
	}
}

// TestServeGracefulShutdown sends SIGTERM while a cold DirectAUC-ES
// training run is in flight on a larger network and asserts the full
// resilience contract end to end: readiness flips to 503, the in-flight
// request fails fast instead of running training to completion, drain
// finishes promptly, and the process exits 0 (the ErrServerClosed path).
func TestServeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("serve e2e skipped in -short mode")
	}
	bins := buildCmds(t)
	// Scale 0.5: a cold ES train takes long enough that the signal
	// reliably lands mid-train. The bounded waitExit below is the proof
	// the run was aborted rather than drained to completion.
	p := startPipeserve(t, bins["pipeserve"], "-scale", "0.5")

	if status, _ := serveRequest(t, "GET", p.base+"/readyz", ""); status != http.StatusOK {
		t.Fatalf("readyz before shutdown: %d", status)
	}

	trainDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(p.base+"/api/models/DirectAUC-ES/train", "application/json", nil)
		if err != nil {
			trainDone <- -1 // connection torn during shutdown: acceptable
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		trainDone <- resp.StatusCode
	}()
	time.Sleep(300 * time.Millisecond) // let the POST reach the trainer

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p.waitExit(t, 30*time.Second); code != 0 {
		t.Fatalf("graceful shutdown exit code %d, want 0; stderr:\n%s", code, p.stderr())
	}
	select {
	case status := <-trainDone:
		if status == http.StatusOK {
			t.Fatal("in-flight training ran to completion despite SIGTERM")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight train request never resolved")
	}
	logTail := p.stderr()
	for _, want := range []string{"draining", "shutdown: complete"} {
		if !strings.Contains(logTail, want) {
			t.Fatalf("shutdown log missing %q:\n%s", want, logTail)
		}
	}
}

// TestServeWarmRestart trains a persistable model under -state-dir,
// restarts the process, and asserts the second instance serves the
// model as already trained with a byte-identical ranking ETag — no
// retraining on boot.
func TestServeWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("serve e2e skipped in -short mode")
	}
	bins := buildCmds(t)
	stateDir := filepath.Join(t.TempDir(), "state")

	p1 := startPipeserve(t, bins["pipeserve"], "-state-dir", stateDir)
	status, _ := serveRequest(t, "POST", p1.base+"/api/models/DirectAUC-ES/train", "")
	if status != http.StatusOK {
		t.Fatalf("train: status %d", status)
	}
	resp, err := http.Get(p1.base + "/api/models/DirectAUC-ES/ranking?top=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag1 := resp.Header.Get("Etag")
	if etag1 == "" {
		t.Fatal("first instance served no ranking ETag")
	}
	if _, err := os.Stat(filepath.Join(stateDir, "DirectAUC-ES.model.json")); err != nil {
		t.Fatalf("state file not persisted: %v", err)
	}
	if err := p1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p1.waitExit(t, 30*time.Second); code != 0 {
		t.Fatalf("first instance exit code %d; stderr:\n%s", code, p1.stderr())
	}

	// Restart over the same state dir: the model must already be
	// trained, with the identical ranking ETag, and the log must show a
	// restore rather than a training run.
	p2 := startPipeserve(t, bins["pipeserve"], "-state-dir", stateDir)
	status, body := serveRequest(t, "GET", p2.base+"/api/models", "")
	if status != http.StatusOK {
		t.Fatalf("models: status %d", status)
	}
	var models []struct {
		Name    string `json:"name"`
		Trained bool   `json:"trained"`
	}
	if err := json.Unmarshal(body, &models); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range models {
		if m.Name == "DirectAUC-ES" && m.Trained {
			found = true
		}
	}
	if !found {
		t.Fatalf("warm restart did not restore DirectAUC-ES: %s", body)
	}
	resp2, err := http.Get(p2.base + "/api/models/DirectAUC-ES/ranking?top=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if etag2 := resp2.Header.Get("Etag"); etag2 != etag1 {
		t.Fatalf("warm-restart ranking ETag %q != original %q", etag2, etag1)
	}
	if logs := p2.stderr(); !strings.Contains(logs, "restored DirectAUC-ES") {
		t.Fatalf("second instance log shows no restore:\n%s", logs)
	}
}

// TestServeMetricsDisabled verifies -metrics=false hides the endpoint.
func TestServeMetricsDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("serve e2e skipped in -short mode")
	}
	bins := buildCmds(t)
	cmd := exec.Command(bins["pipeserve"],
		"-region", "A", "-seed", "5", "-scale", "0.04",
		"-addr", "127.0.0.1:0", "-metrics=false")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if i := strings.Index(sc.Text(), "listening on "); i >= 0 {
			base = "http://" + strings.TrimSpace(sc.Text()[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		t.Fatal("pipeserve never reported its address")
	}
	go io.Copy(io.Discard, stderr)
	status, _ := serveRequest(t, "GET", base+"/metrics", "")
	if status != http.StatusNotFound {
		t.Fatalf("-metrics=false: want 404 from /metrics, got %d", status)
	}
	if status, _ = serveRequest(t, "GET", base+"/healthz", ""); status != http.StatusOK {
		t.Fatalf("healthz should stay up without metrics, got %d", status)
	}
}

// TestServeMultiRegionEndToEnd drives the sharded registry through the
// real binary: two pipegen datasets served as region shards, the admin
// view, region-scoped routing, and a streamed bulk request whose line
// payloads must match the single-region responses byte for byte.
func TestServeMultiRegionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	bins := buildCmds(t)
	dirA := filepath.Join(t.TempDir(), "regionA")
	dirB := filepath.Join(t.TempDir(), "regionB")
	runCmd(t, bins["pipegen"], "-region", "A", "-seed", "3", "-scale", "0.04", "-out", dirA)
	runCmd(t, bins["pipegen"], "-region", "B", "-seed", "4", "-scale", "0.04", "-out", dirB)

	p := startPipeserve(t, bins["pipeserve"], "-data", dirA, "-data", dirB)

	code, body := serveRequest(t, "GET", p.base+"/api/regions", "")
	if code != 200 {
		t.Fatalf("regions: %d: %s", code, body)
	}
	var regions []struct {
		Region string `json:"region"`
		Pipes  int    `json:"pipes"`
	}
	if err := json.Unmarshal(body, &regions); err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 || regions[0].Region != "A" || regions[1].Region != "B" {
		t.Fatalf("regions %+v, want A then B", regions)
	}

	code, body = serveRequest(t, "GET", p.base+"/api/network?region=B", "")
	if code != 200 || !strings.Contains(string(body), `"region":"B"`) {
		t.Fatalf("network?region=B: %d: %s", code, body)
	}

	// Bulk rank over real HTTP: NDJSON framing, request-order lines,
	// payloads byte-identical to the standalone endpoint per region.
	req, err := http.NewRequest("POST", p.base+"/api/bulk/rank",
		strings.NewReader(`{"model":"Heuristic-Age","top":5,"regions":["B","A"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("bulk rank: %d %v: %s", resp.StatusCode, err, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("bulk Content-Type %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bulk lines %d: %s", len(lines), raw)
	}
	for i, wantRegion := range []string{"B", "A"} {
		var line struct {
			Region  string          `json:"region"`
			Ranking json.RawMessage `json:"ranking"`
			Error   string          `json:"error"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &line); err != nil {
			t.Fatalf("bad bulk line %q: %v", lines[i], err)
		}
		if line.Region != wantRegion || line.Error != "" {
			t.Fatalf("line %d: %+v, want clean region %s", i, line, wantRegion)
		}
		code, single := serveRequest(t, "GET",
			p.base+"/api/models/Heuristic-Age/ranking?top=5&region="+wantRegion, "")
		if code != 200 {
			t.Fatalf("single ranking %s: %d", wantRegion, code)
		}
		if want := strings.TrimSuffix(string(single), "\n"); string(line.Ranking) != want {
			t.Fatalf("region %s: bulk payload diverges\nbulk:   %s\nsingle: %s",
				wantRegion, line.Ranking, want)
		}
	}

	p.cmd.Process.Signal(os.Interrupt)
	if code := p.waitExit(t, 30*time.Second); code != 0 {
		t.Fatalf("exit code %d; stderr:\n%s", code, p.stderr())
	}
}

// TestServeDuplicateRegionFailsFast: serving the same dataset twice
// must be a startup error, not a silently merged registry.
func TestServeDuplicateRegionFailsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	bins := buildCmds(t)
	dir := filepath.Join(t.TempDir(), "regionA")
	runCmd(t, bins["pipegen"], "-region", "A", "-seed", "3", "-scale", "0.04", "-out", dir)

	cmd := exec.Command(bins["pipeserve"], "-data", dir, "-data", dir, "-addr", "127.0.0.1:0")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if err == nil || !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("duplicate -data inputs: err %v (output %s), want exit 1", err, out)
	}
	if !strings.Contains(string(out), `duplicate region "A"`) {
		t.Fatalf("startup log %s missing the duplicate-region error", out)
	}
}

// TestServeIngestSIGKILLRestart is the cross-process durability e2e:
// ingest acknowledged events over real HTTP, SIGKILL the process (once
// externally, once from inside the WAL append path via the PIPEWAL_CRASH
// trigger), restart on the same -wal-dir, and assert every acknowledged
// event survives exactly once — replayed on boot, deduplicated on retry.
func TestServeIngestSIGKILLRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("serve e2e skipped in -short mode")
	}
	bins := buildCmds(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	p1 := startPipeserve(t, bins["pipeserve"], "-wal-dir", walDir, "-wal-sync", "always")

	// Scrape a few real pipe IDs and the observation window end so the
	// events validate.
	status, body := serveRequest(t, "POST", p1.base+"/api/models/Heuristic-Age/train", "")
	if status != http.StatusOK {
		t.Fatalf("train: status %d body %s", status, body)
	}
	status, body = serveRequest(t, "GET", p1.base+"/api/models/Heuristic-Age/ranking?top=8", "")
	if status != http.StatusOK {
		t.Fatalf("ranking: status %d", status)
	}
	var ranked []struct {
		PipeID string `json:"pipe_id"`
	}
	if err := json.Unmarshal(body, &ranked); err != nil || len(ranked) < 4 {
		t.Fatalf("ranking body %s (err %v)", body, err)
	}
	status, body = serveRequest(t, "GET", p1.base+"/api/network", "")
	if status != http.StatusOK {
		t.Fatalf("network: status %d", status)
	}
	var netInfo struct {
		TestYear int `json:"test_year"`
	}
	if err := json.Unmarshal(body, &netInfo); err != nil || netInfo.TestYear == 0 {
		t.Fatalf("network body %s (err %v)", body, err)
	}
	event := func(i int) string {
		return fmt.Sprintf(`{"id":"kill-%d","pipe_id":%q,"year":%d,"day":%d}`,
			i, ranked[i%len(ranked)].PipeID, netInfo.TestYear+1, i+1)
	}

	const acked = 6
	for i := 0; i < acked; i++ {
		status, body = serveRequest(t, "POST", p1.base+"/api/events", event(i))
		if status != http.StatusOK || !bytes.Contains(body, []byte(`"accepted":1`)) {
			t.Fatalf("event %d: status %d body %s", i, status, body)
		}
	}

	// SIGKILL: no drain, no WAL close — only fsynced bytes survive, and
	// -wal-sync=always promised all six were.
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait()

	p2 := startPipeserve(t, bins["pipeserve"], "-wal-dir", walDir, "-wal-sync", "always")
	if logs := p2.stderr(); !strings.Contains(logs, fmt.Sprintf("replayed %d live events", acked)) {
		t.Fatalf("restart log shows no replay of %d events:\n%s", acked, logs)
	}
	var netAfter struct {
		LiveEvents int `json:"live_events"`
	}
	status, body = serveRequest(t, "GET", p2.base+"/api/network", "")
	if status != http.StatusOK || json.Unmarshal(body, &netAfter) != nil || netAfter.LiveEvents != acked {
		t.Fatalf("after restart: status %d live_events %d (want %d) body %s",
			status, netAfter.LiveEvents, acked, body)
	}
	// Retries of every acknowledged event are pure duplicates.
	for i := 0; i < acked; i++ {
		status, body = serveRequest(t, "POST", p2.base+"/api/events", event(i))
		if status != http.StatusOK || !bytes.Contains(body, []byte(`"accepted":0,"duplicates":1`)) {
			t.Fatalf("retry %d: status %d body %s", i, status, body)
		}
	}

	// Part two: die from INSIDE the append path (the PIPEWAL_CRASH
	// trigger exits like SIGKILL mid-write) on the next ingest. The dying
	// request is never acknowledged, so the client retries it against the
	// restarted process.
	if err := p2.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p2.cmd.Wait()
	p3 := startPipeserveEnv(t, bins["pipeserve"],
		[]string{"PIPEWAL_CRASH=append.framed:1"},
		"-wal-dir", walDir, "-wal-sync", "always")
	resp, err := http.Post(p3.base+"/api/events", "application/json", strings.NewReader(event(acked)))
	if err == nil {
		// The process must be dying; whatever status came back, it cannot
		// be an ack.
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("crashing process acknowledged the event: %s", b)
		}
	}
	if code := p3.waitExit(t, 10*time.Second); code != 137 {
		t.Fatalf("crash trigger exit code %d, want 137", code)
	}

	p4 := startPipeserve(t, bins["pipeserve"], "-wal-dir", walDir, "-wal-sync", "always")
	status, body = serveRequest(t, "GET", p4.base+"/api/network", "")
	var netFinal struct {
		LiveEvents int `json:"live_events"`
	}
	if status != http.StatusOK || json.Unmarshal(body, &netFinal) != nil || netFinal.LiveEvents != acked {
		t.Fatalf("after mid-append crash: live_events %d, want %d (unacked event must not replay as applied twice); body %s",
			netFinal.LiveEvents, acked, body)
	}
	// The unacknowledged event retries cleanly: exactly-once overall.
	status, body = serveRequest(t, "POST", p4.base+"/api/events", event(acked))
	if status != http.StatusOK || !bytes.Contains(body, []byte(fmt.Sprintf(`"live_events":%d`, acked+1))) {
		t.Fatalf("retry of unacked event: status %d body %s", status, body)
	}
}
