package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestAUCKnownValues(t *testing.T) {
	if got := AUC([]float64{1, 2, 3, 4}, []bool{false, false, true, true}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	if got := AUC([]float64{4, 3, 2, 1}, []bool{false, false, true, true}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	if got := AUC([]float64{5, 5, 5}, []bool{true, false, true}); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	if got := AUC(nil, nil); got != 0.5 {
		t.Fatalf("empty AUC = %v", got)
	}
	if got := AUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
	// Hand-worked: scores 3,1,2 labels T,F,F → positive beats both → 1.
	if got := AUC([]float64{3, 1, 2}, []bool{true, false, false}); got != 1 {
		t.Fatalf("AUC = %v", got)
	}
	// Half: positive ties one negative, beats none of the other.
	if got := AUC([]float64{2, 2, 3}, []bool{true, false, false}); got != 0.25 {
		t.Fatalf("AUC = %v, want 0.25", got)
	}
}

func TestAUCPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	AUC([]float64{1}, []bool{true, false})
}

// Property: AUC equals the brute-force pair count.
func TestAUCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(60)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			// Coarse grid to force ties.
			scores[i] = float64(rng.Intn(6))
			labels[i] = rng.Bernoulli(0.4)
		}
		var wins, ties, pairs float64
		for i := range scores {
			if !labels[i] {
				continue
			}
			for j := range scores {
				if labels[j] {
					continue
				}
				pairs++
				if scores[i] > scores[j] {
					wins++
				} else if scores[i] == scores[j] {
					ties++
				}
			}
		}
		want := 0.5
		if pairs > 0 {
			want = (wins + ties/2) / pairs
		}
		return math.Abs(AUC(scores, labels)-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectionAtPerfectRanking(t *testing.T) {
	// 100 pipes, 10 failures, all ranked at the top.
	scores := make([]float64, 100)
	labels := make([]bool, 100)
	for i := 0; i < 10; i++ {
		scores[i] = float64(100 - i)
		labels[i] = true
	}
	for i := 10; i < 100; i++ {
		scores[i] = float64(50 - i)
	}
	if got := DetectionAt(scores, labels, 0.10); got != 1 {
		t.Fatalf("perfect detection@10%% = %v", got)
	}
	if got := DetectionAt(scores, labels, 0.05); got != 0.5 {
		t.Fatalf("perfect detection@5%% = %v", got)
	}
	if got := DetectionAt(scores, labels, 0.01); got != 0.1 {
		t.Fatalf("perfect detection@1%% = %v", got)
	}
}

func TestDetectionAtEdgeCases(t *testing.T) {
	if got := DetectionAt(nil, nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := DetectionAt([]float64{1, 2}, []bool{false, false}, 0.5); got != 0 {
		t.Fatalf("no positives = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad frac must panic")
		}
	}()
	DetectionAt([]float64{1}, []bool{true}, 0)
}

func TestDetectionCurveShape(t *testing.T) {
	rng := stats.NewRNG(5)
	n := 500
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Bernoulli(0.1)
	}
	curve := DetectionCurve(scores, labels, 50)
	if curve[0].X != 0 || curve[0].Y != 0 {
		t.Fatalf("curve must start at origin: %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.X != 1 || last.Y != 1 {
		t.Fatalf("curve must end at (1,1): %+v", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].X < curve[i-1].X || curve[i].Y < curve[i-1].Y-1e-12 {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
}

func TestDetectionCurveConsistentWithDetectionAt(t *testing.T) {
	rng := stats.NewRNG(6)
	n := 200
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Bernoulli(0.2)
	}
	curve := DetectionCurve(scores, labels, 100)
	pos := 0
	for _, v := range labels {
		if v {
			pos++
		}
	}
	// ceil(frac*n) can differ by one rank from the curve's emission point
	// when frac*n lands on a float-representation boundary, which moves the
	// detection level by at most one positive.
	tol := 1.0/float64(pos) + 1e-9
	for _, p := range curve[1:] {
		want := DetectionAt(scores, labels, p.X)
		if math.Abs(p.Y-want) > tol {
			t.Fatalf("curve(%v) = %v but DetectionAt = %v", p.X, p.Y, want)
		}
	}
}

func TestDetectionAtLength(t *testing.T) {
	// Three pipes: the top-ranked one is long, so a small length budget
	// inspects only it.
	scores := []float64{10, 5, 1}
	labels := []bool{true, true, false}
	lengths := []float64{800, 100, 100}
	// 10% of 1000m = 100m budget: inspect pipe 0 only (budget exhausted
	// after starting it) → catches 1 of 2.
	if got := DetectionAtLength(scores, labels, lengths, 0.1); got != 0.5 {
		t.Fatalf("detection@10%%length = %v", got)
	}
	if got := DetectionAtLength(scores, labels, lengths, 1); got != 1 {
		t.Fatalf("full budget = %v", got)
	}
	if got := DetectionAtLength(scores, []bool{false, false, false}, lengths, 0.5); got != 0 {
		t.Fatal("no positives must be 0")
	}
}

func TestPartialDetectionArea(t *testing.T) {
	// Perfect ranking of 10 positives among 100: detection rises linearly
	// to 1 at x=0.1; area up to 0.1 ≈ 0.05 (staircase, slightly above
	// the continuous triangle because steps complete early).
	scores := make([]float64, 100)
	labels := make([]bool, 100)
	for i := 0; i < 10; i++ {
		scores[i] = float64(100 - i)
		labels[i] = true
	}
	got := PartialDetectionArea(scores, labels, 0.1)
	if got < 0.05 || got > 0.06 {
		t.Fatalf("partial area = %v, want about 0.055", got)
	}
	// Full area of a perfect ranking ≈ 1 − posFrac/2.
	full := PartialDetectionArea(scores, labels, 1)
	if full < 0.94 || full > 0.96 {
		t.Fatalf("full area = %v", full)
	}
	// Worst ranking: positives at the bottom → tiny partial area.
	inv := make([]float64, 100)
	for i := range inv {
		inv[i] = -scores[i]
	}
	if worst := PartialDetectionArea(inv, labels, 0.1); worst != 0 {
		t.Fatalf("worst partial area = %v", worst)
	}
	if zero := PartialDetectionArea(scores, make([]bool, 100), 0.1); zero != 0 {
		t.Fatal("no positives must be 0")
	}
}

func TestROCCurveEndpointsAndMonotonicity(t *testing.T) {
	rng := stats.NewRNG(7)
	n := 300
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Bernoulli(0.3)
	}
	roc := ROCCurve(scores, labels, 50)
	if roc[0] != (CurvePoint{0, 0}) {
		t.Fatalf("ROC start %+v", roc[0])
	}
	if roc[len(roc)-1] != (CurvePoint{1, 1}) {
		t.Fatalf("ROC end %+v", roc[len(roc)-1])
	}
	for i := 1; i < len(roc); i++ {
		if roc[i].X < roc[i-1].X || roc[i].Y < roc[i-1].Y-1e-12 {
			t.Fatal("ROC not monotone")
		}
	}
	// Degenerate single-class input.
	deg := ROCCurve([]float64{1, 2}, []bool{true, true}, 10)
	if len(deg) != 2 {
		t.Fatalf("degenerate ROC %+v", deg)
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7}
	top := TopK(scores, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Fatalf("TopK = %v", top)
	}
	if got := TopK(scores, 99); len(got) != 4 {
		t.Fatal("k clamps to n")
	}
	if got := TopK(scores, -1); len(got) != 0 {
		t.Fatal("negative k clamps to 0")
	}
	// Deterministic tie-break by index.
	tie := TopK([]float64{5, 5, 5}, 2)
	if tie[0] != 0 || tie[1] != 1 {
		t.Fatalf("tie break = %v", tie)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "model", "auc")
	tb.AddRowf("Cox", 0.75)
	tb.AddRow("DirectAUC-ES") // short row padded
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "model") {
		t.Fatalf("render missing pieces:\n%s", s)
	}
	if !strings.Contains(s, "0.7500") {
		t.Fatalf("float formatting wrong:\n%s", s)
	}
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("line count %d:\n%s", len(lines), s)
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatPercent(0.8267); got != "82.67%" {
		t.Fatalf("percent = %q", got)
	}
	if got := FormatBasisPoints(0.000809); got != "8.09bp" {
		t.Fatalf("bp = %q", got)
	}
}
