package feature

import (
	"repro/internal/dataset"
)

// Source abstracts where pipe attributes and failure history come from, so
// the Builder can encode design matrices without caring whether the data
// sits in a materialized *dataset.Network or in the columnar arrays of a
// binary dataset file (internal/colfmt). Pipes are addressed by registry
// row index; implementations must present a stable order across calls —
// the Builder's vocabulary collection, row counting and fill passes all
// iterate rows 0..NumPipes()-1 and rely on seeing identical values each
// time. Because every implementation feeds the same Builder arithmetic in
// the same order, two Sources describing the same data produce bit-identical
// Sets (see TestColumnarBuilderBitIdentical in internal/colfmt).
type Source interface {
	// NumPipes returns the registry size.
	NumPipes() int
	// LaidYearAt returns pipe i's commissioning year without materializing
	// the full pipe (the row-counting passes need only this field).
	LaidYearAt(i int) int
	// PipeAt fills p with pipe i's attributes. Implementations may share
	// string backing between calls (the Builder only reads).
	PipeAt(i int, p *dataset.Pipe)
	// FailureCountAt returns how many failures pipe i had in calendar
	// years [from, to] (inclusive); [from, to] with from > to is empty.
	FailureCountAt(i, from, to int) int
	// FailedInYearAt reports whether pipe i failed at least once in year.
	FailedInYearAt(i, year int) bool
}

// networkSource adapts a materialized *dataset.Network to Source.
type networkSource struct {
	net *dataset.Network
}

// NetworkSource wraps a network as a feature Source. The network must not
// be mutated while the source is in use.
func NetworkSource(net *dataset.Network) Source {
	return networkSource{net: net}
}

func (s networkSource) NumPipes() int        { return s.net.NumPipes() }
func (s networkSource) LaidYearAt(i int) int { return s.net.Pipes()[i].LaidYear }

func (s networkSource) PipeAt(i int, p *dataset.Pipe) {
	*p = s.net.Pipes()[i]
}

func (s networkSource) FailureCountAt(i, from, to int) int {
	return s.net.FailureCount(s.net.Pipes()[i].ID, from, to)
}

func (s networkSource) FailedInYearAt(i, year int) bool {
	return s.net.FailedInYear(s.net.Pipes()[i].ID, year)
}
