// Command pipegen generates a synthetic water-pipe network — the
// documented substitution for the proprietary utility data of the
// reproduced paper — and writes it as CSV (pipes.csv, failures.csv,
// meta.csv) or as the binary columnar format (dataset.col).
//
// Generation streams: pipe rows go straight to the output writer (CSV) or
// into compact column arrays (columnar), so resident memory stays flat in
// the registry size and the nation-scale presets (~1M pipes) generate
// without materializing a []Pipe.
//
// Usage:
//
//	pipegen -region A -seed 42 -scale 0.25 -out data/regionA
//	pipegen -region nation -seed 1 -format col -out data/nation
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/colfmt"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/synthetic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipegen: ")

	region := flag.String("region", "A", "region preset: A, B, C, metro or nation")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.Float64("scale", 1.0, "network scale in (0, 1]; 1 = full paper size")
	out := flag.String("out", "", "output directory (required)")
	format := flag.String("format", "csv", "output format: csv or col")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := synthetic.Preset(*region, *seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err = cfg.Scaled(*scale)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	var sum *synthetic.StreamSummary
	switch *format {
	case "csv":
		sum, err = generateCSV(cfg, *out)
	case "col":
		sum, err = generateColumnar(cfg, *out)
	default:
		log.Fatalf("unknown -format %q (want csv or col)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}

	tb := eval.NewTable(fmt.Sprintf("generated region %s (seed %d, scale %.2f) -> %s",
		*region, *seed, *scale, *out),
		"scope", "pipes", "failures", "laid", "km")
	for _, row := range sum.Rows {
		tb.AddRow(row.Scope,
			fmt.Sprintf("%d", row.NumPipes),
			fmt.Sprintf("%d", row.NumFailures),
			fmt.Sprintf("%d-%d", row.LaidFrom, row.LaidTo),
			fmt.Sprintf("%.0f", row.TotalKM))
	}
	fmt.Print(tb.String())
	fmt.Printf("true failures before recording noise: %d\n", sum.TrueFailures)
}

// generateCSV streams pipe rows directly into pipes.csv. Failures are
// buffered (they are ~25x fewer than pipes) because the on-disk log is
// sorted by (Year, Day, PipeID) — the same stable order dataset.NewNetwork
// imposes — while generation emits them grouped by pipe.
func generateCSV(cfg synthetic.Config, dir string) (*synthetic.StreamSummary, error) {
	pipesF, err := os.Create(filepath.Join(dir, "pipes.csv"))
	if err != nil {
		return nil, err
	}
	defer pipesF.Close()
	bw := bufio.NewWriterSize(pipesF, 1<<20)
	pw, err := dataset.NewPipeWriter(bw)
	if err != nil {
		return nil, err
	}

	var fails []dataset.Failure
	sum, err := synthetic.GenerateStream(cfg,
		func(p *dataset.Pipe) error { return pw.Write(p) },
		func(f *dataset.Failure) error { fails = append(fails, *f); return nil })
	if err != nil {
		return nil, err
	}
	if err := pw.Flush(); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	if err := pipesF.Close(); err != nil {
		return nil, err
	}

	sortFailures(fails)
	if err := writeTo(filepath.Join(dir, "failures.csv"), func(w *bufio.Writer) error {
		return dataset.WriteFailures(w, fails)
	}); err != nil {
		return nil, err
	}
	if err := writeTo(filepath.Join(dir, "meta.csv"), func(w *bufio.Writer) error {
		return dataset.WriteMeta(w, cfg.Region, cfg.ObservedFrom, cfg.ObservedTo)
	}); err != nil {
		return nil, err
	}
	return sum, nil
}

// generateColumnar streams pipe rows into column arrays and writes one
// PCOL file. Events reference pipes by registry row, which is known at
// emission time (a pipe's failures follow its own row), so no ID join is
// needed; they are then sorted into the canonical (Year, Day, ID) order so
// the file is byte-identical to converting the equivalent CSV directory.
func generateColumnar(cfg synthetic.Config, dir string) (*synthetic.StreamSummary, error) {
	d := &colfmt.Dataset{
		Region:       cfg.Region,
		ObservedFrom: cfg.ObservedFrom,
		ObservedTo:   cfg.ObservedTo,
	}
	type event struct {
		pipe               uint32
		segment, year, day int32
		mode               dataset.FailureMode
	}
	var events []event

	c := &d.Pipes
	sum, err := synthetic.GenerateStream(cfg,
		func(p *dataset.Pipe) error {
			c.ID = append(c.ID, p.ID)
			c.Class = append(c.Class, p.Class)
			c.Material = append(c.Material, p.Material)
			c.Coating = append(c.Coating, p.Coating)
			c.DiameterMM = append(c.DiameterMM, p.DiameterMM)
			c.LengthM = append(c.LengthM, p.LengthM)
			c.LaidYear = append(c.LaidYear, int32(p.LaidYear))
			c.SoilCorrosivity = append(c.SoilCorrosivity, p.SoilCorrosivity)
			c.SoilExpansivity = append(c.SoilExpansivity, p.SoilExpansivity)
			c.SoilGeology = append(c.SoilGeology, p.SoilGeology)
			c.SoilMap = append(c.SoilMap, p.SoilMap)
			c.DistToTrafficM = append(c.DistToTrafficM, p.DistToTrafficM)
			c.X = append(c.X, p.X)
			c.Y = append(c.Y, p.Y)
			c.Segments = append(c.Segments, int32(p.Segments))
			return nil
		},
		func(f *dataset.Failure) error {
			// The generator emits a pipe's failures right after the pipe
			// itself, so the row reference is the last appended row.
			events = append(events, event{
				pipe:    uint32(len(c.ID) - 1),
				segment: int32(f.Segment),
				year:    int32(f.Year),
				day:     int32(f.Day),
				mode:    f.Mode,
			})
			return nil
		})
	if err != nil {
		return nil, err
	}

	sort.SliceStable(events, func(a, b int) bool {
		ea, eb := &events[a], &events[b]
		if ea.year != eb.year {
			return ea.year < eb.year
		}
		if ea.day != eb.day {
			return ea.day < eb.day
		}
		return c.ID[ea.pipe] < c.ID[eb.pipe]
	})
	e := &d.Events
	e.Pipe = make([]uint32, len(events))
	e.Segment = make([]int32, len(events))
	e.Year = make([]int32, len(events))
	e.Day = make([]int32, len(events))
	e.Mode = make([]dataset.FailureMode, len(events))
	for i := range events {
		e.Pipe[i] = events[i].pipe
		e.Segment[i] = events[i].segment
		e.Year[i] = events[i].year
		e.Day[i] = events[i].day
		e.Mode[i] = events[i].mode
	}

	if err := colfmt.WriteFile(filepath.Join(dir, colfmt.DatasetFile), d); err != nil {
		return nil, err
	}
	return sum, nil
}

func sortFailures(fails []dataset.Failure) {
	sort.SliceStable(fails, func(a, b int) bool {
		fa, fb := &fails[a], &fails[b]
		if fa.Year != fb.Year {
			return fa.Year < fb.Year
		}
		if fa.Day != fb.Day {
			return fa.Day < fb.Day
		}
		return fa.PipeID < fb.PipeID
	})
}

func writeTo(path string, fn func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := fn(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
