// Command pipetrain trains a failure-prediction model on a dataset
// (written by pipegen or exported from a utility system), ranks the pipes
// for the held-out year, prints the evaluation metrics and the top of the
// inspection list, and optionally persists linear models. The -data path
// may be a CSV directory, a columnar directory, or a .col file; columnar
// data streams straight into the feature builder.
//
// Usage:
//
//	pipetrain -data data/regionA -model DirectAUC-ES -top 20 -save model.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/linalg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipetrain: ")

	data := flag.String("data", "", "network directory (required)")
	model := flag.String("model", "DirectAUC-ES",
		"model name; one of: "+strings.Join(pipefail.Models(), ", "))
	seed := flag.Int64("seed", 1, "learner seed")
	esGens := flag.Int("esgens", 0, "override DirectAUC ES generations (0 = default)")
	top := flag.Int("top", 20, "print the top-N ranked pipes")
	save := flag.String("save", "", "persist a fitted linear model (DirectAUC-ES/RankSVM) as JSON")
	fastMath := flag.Bool("fast-math", false,
		"use reassociated multi-accumulator float kernels; faster, but fitted weights are no longer bit-comparable to exact-mode runs")
	flag.Parse()

	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	linalg.SetFastMath(*fastMath)

	// OpenData sniffs the on-disk format; columnar datasets feed the
	// feature builder straight from their column arrays, never
	// materializing a row-oriented registry.
	d, err := pipefail.OpenData(*data)
	if err != nil {
		log.Fatal(err)
	}
	p, err := pipefail.NewPipelineData(d,
		pipefail.WithSeed(*seed), pipefail.WithESGenerations(*esGens))
	if err != nil {
		log.Fatal(err)
	}
	m, err := p.Train(*model)
	if err != nil {
		log.Fatal(err)
	}
	ranking, err := p.Rank(m)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model %s on region %s: trained on %d-%d, evaluated on %d\n",
		*model, d.Region(), p.Split().TrainFrom, p.Split().TrainTo, p.Split().TestYear)
	fmt.Printf("AUC %s | detection @1%% %s @5%% %s @10%% %s\n",
		eval.FormatPercent(ranking.AUC()),
		eval.FormatPercent(ranking.DetectionAt(0.01)),
		eval.FormatPercent(ranking.DetectionAt(0.05)),
		eval.FormatPercent(ranking.DetectionAt(0.10)))

	tb := eval.NewTable(fmt.Sprintf("top %d pipes by predicted risk", *top),
		"rank", "pipe", "failed in test year")
	for i, id := range ranking.TopIDs(*top) {
		failed := ""
		for j, pid := range ranking.PipeIDs {
			if pid == id && ranking.Failed[j] {
				failed = "YES"
				break
			}
		}
		tb.AddRow(fmt.Sprintf("%d", i+1), id, failed)
	}
	fmt.Print(tb.String())

	if w, ok := core.LinearWeights(m); ok {
		imps, err := core.Importance(p.FeatureNames(), w)
		if err != nil {
			log.Fatal(err)
		}
		wt := eval.NewTable("top feature weights (standardized scale)", "feature", "weight")
		for i, fw := range imps {
			if i >= 10 {
				break
			}
			wt.AddRow(fw.Name, fmt.Sprintf("%+.3f", fw.Weight))
		}
		fmt.Print(wt.String())
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := core.SaveLinear(f, m, p.FeatureNames()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved model to %s\n", *save)
	}
}
