// Command pipeconv converts a dataset between the CSV directory layout
// (pipes.csv, failures.csv, meta.csv) and the binary columnar PCOL format
// (dataset.col). The direction is inferred from the input: a columnar
// input converts to a CSV directory, a CSV directory converts to a
// columnar file. Both directions validate the data on load, and the two
// representations produce bit-identical feature matrices downstream.
//
// Usage:
//
//	pipeconv -in data/regionA -out data/regionA-col        # CSV -> columnar
//	pipeconv -in data/regionA-col -out data/regionA-csv    # columnar -> CSV
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/colfmt"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipeconv: ")

	in := flag.String("in", "", "input dataset: CSV directory, columnar directory, or .col file (required)")
	out := flag.String("out", "", "output path: .col file or directory (required)")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	d, err := colfmt.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	loadElapsed := time.Since(start)

	var outFiles []string
	var target string
	convStart := time.Now()
	switch d.Format {
	case colfmt.FormatCSV:
		// CSV in -> columnar out. Accept either an explicit .col file path
		// or a directory (then the canonical dataset.col inside it).
		target = *out
		if !strings.HasSuffix(target, ".col") {
			if err := os.MkdirAll(target, 0o755); err != nil {
				log.Fatal(err)
			}
			target = filepath.Join(target, colfmt.DatasetFile)
		} else if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
			log.Fatal(err)
		}
		col, err := d.Columnar()
		if err != nil {
			log.Fatal(err)
		}
		if err := colfmt.WriteFile(target, col); err != nil {
			log.Fatal(err)
		}
		outFiles = []string{target}
	case colfmt.FormatColumnar:
		// Columnar in -> CSV directory out.
		net, err := d.Network()
		if err != nil {
			log.Fatal(err)
		}
		if err := dataset.SaveDir(net, *out); err != nil {
			log.Fatal(err)
		}
		target = *out
		for _, name := range []string{"pipes.csv", "failures.csv", "meta.csv"} {
			outFiles = append(outFiles, filepath.Join(*out, name))
		}
	default:
		log.Fatalf("unsupported input format %q", d.Format)
	}
	convElapsed := time.Since(convStart)

	var bytes int64
	for _, f := range outFiles {
		st, err := os.Stat(f)
		if err != nil {
			log.Fatal(err)
		}
		bytes += st.Size()
	}
	fmt.Printf("converted %s (%s) -> %s\n", *in, d.Format, target)
	fmt.Printf("pipes: %d  failures: %d  output bytes: %d\n", d.NumPipes(), d.NumFailures(), bytes)
	fmt.Printf("load: %s  convert+write: %s\n", loadElapsed.Round(time.Millisecond), convElapsed.Round(time.Millisecond))
}
