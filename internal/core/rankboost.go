package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/feature"
	"repro/internal/parallel"
)

// RankBoostConfig tunes the bipartite RankBoost learner.
type RankBoostConfig struct {
	// Rounds is the number of boosting rounds (default 100).
	Rounds int
	// Thresholds is the number of candidate thresholds examined per
	// feature per round (default 16 quantile cuts).
	Thresholds int
	// Workers bounds the stump-search and scoring worker pool
	// (0 = GOMAXPROCS, 1 = serial). Results are bit-identical for every
	// value: workers scan disjoint feature ranges and the cross-feature
	// argmax is reduced serially in feature order.
	Workers int
}

func (c *RankBoostConfig) fillDefaults() {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.Thresholds <= 0 {
		c.Thresholds = 16
	}
}

// stump is a threshold weak ranker: h(x) = 1 if x[featureIdx] > threshold
// (or <= when inverted), else 0.
type stump struct {
	FeatureIdx int
	Threshold  float64
	Inverted   bool
	Alpha      float64
}

func (s stump) eval(x []float64) float64 {
	above := x[s.FeatureIdx] > s.Threshold
	if above != s.Inverted {
		return 1
	}
	return 0
}

// RankBoost implements the bipartite variant of Freund et al.'s RankBoost:
// the pair distribution factorizes into per-instance potentials v⁺ and v⁻,
// so each round runs in O(instances × features × thresholds) instead of
// O(pairs). Weak rankers are threshold stumps on single features.
type RankBoost struct {
	cfg    RankBoostConfig
	stumps []stump
}

// NewRankBoost returns an unfitted RankBoost.
func NewRankBoost(cfg RankBoostConfig) *RankBoost {
	cfg.fillDefaults()
	return &RankBoost{cfg: cfg}
}

// Name implements Model.
func (m *RankBoost) Name() string { return "RankBoost" }

// Rounds returns the number of fitted weak rankers.
func (m *RankBoost) Rounds() int { return len(m.stumps) }

// Fit implements Model.
func (m *RankBoost) Fit(train *feature.Set) error {
	return m.FitContext(context.Background(), train)
}

// FitContext implements ContextFitter: Fit with a cancellation check at
// every boosting-round boundary. RankBoost draws no randomness, so the
// checks cannot perturb an uncancelled run; a cancelled fit leaves the
// model unfitted (no partial stump list).
func (m *RankBoost) FitContext(ctx context.Context, train *feature.Set) error {
	if err := validateFitInputs(train); err != nil {
		return fmt.Errorf("%s: %w", m.Name(), err)
	}
	pos, neg := splitByLabel(train)
	dim := train.Dim()

	// Candidate thresholds per feature from quantiles of the training
	// values, computed once per Fit and cached for all rounds. The gather
	// buffer doubles as quantileCuts' sort scratch, so the extraction
	// allocates only the cut slices themselves.
	cuts := make([][]float64, dim)
	vals := make([]float64, train.Len())
	flat, stride := train.Flat()
	for j := 0; j < dim; j++ {
		if flat != nil {
			for i := range vals {
				vals[i] = flat[i*stride+j]
			}
		} else {
			for i, row := range train.X {
				vals[i] = row[j]
			}
		}
		cuts[j] = quantileCuts(vals, m.cfg.Thresholds)
	}

	// Potentials over positives and negatives; pair weight = vPos[i]*vNeg[j].
	vPos := make([]float64, len(pos))
	vNeg := make([]float64, len(neg))
	for i := range vPos {
		vPos[i] = 1 / float64(len(pos))
	}
	for j := range vNeg {
		vNeg[j] = 1 / float64(len(neg))
	}

	// perFeature[j] holds feature j's best stump for the current round;
	// the search fans out over disjoint feature ranges (vPos/vNeg are
	// read-only during the scan) and the winner is reduced serially in
	// feature order, so the selected stump matches a serial scan exactly.
	type featureBest struct {
		r  float64
		st stump
	}
	pool := parallel.New(m.cfg.Workers)
	perFeature := make([]featureBest, dim)

	m.stumps = m.stumps[:0]
	for round := 0; round < m.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			m.stumps = nil // cancelled fits stay unfitted
			return fmt.Errorf("%s: cancelled at round %d: %w", m.Name(), round, err)
		}
		// r(h) = Σ_i vPos[i] h(x_i) − Σ_j vNeg[j] h(x_j); maximize |r|.
		pool.Run(dim, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				fb := featureBest{}
				for _, c := range cuts[j] {
					r := 0.0
					for k, i := range pos {
						if train.X[i][j] > c {
							r += vPos[k]
						}
					}
					for k, i := range neg {
						if train.X[i][j] > c {
							r -= vNeg[k]
						}
					}
					// Σ vPos = Σ vNeg after normalization, so the inverted
					// stump has ratio −r; searching |r| covers both.
					if math.Abs(r) > math.Abs(fb.r) {
						fb.r = r
						fb.st = stump{FeatureIdx: j, Threshold: c, Inverted: r < 0}
					}
				}
				perFeature[j] = fb
			}
		})
		best, bestR := stump{}, 0.0
		for j := 0; j < dim; j++ {
			if math.Abs(perFeature[j].r) > math.Abs(bestR) {
				bestR = perFeature[j].r
				best = perFeature[j].st
			}
		}
		absR := math.Abs(bestR)
		if absR < 1e-9 || absR >= 1 {
			// No discriminative stump left (or degenerate perfect split on
			// the reweighted distribution); stop early.
			if absR >= 1 {
				best.Alpha = 4 // cap: alpha = 0.5 ln((1+r)/(1-r)) → ∞
				m.stumps = append(m.stumps, best)
			}
			break
		}
		best.Alpha = 0.5 * math.Log((1+absR)/(1-absR))
		m.stumps = append(m.stumps, best)

		// Update potentials: vPos *= exp(−α h(x)), vNeg *= exp(+α h(x)).
		for k, i := range pos {
			vPos[k] *= math.Exp(-best.Alpha * best.eval(train.X[i]))
		}
		for k, i := range neg {
			vNeg[k] *= math.Exp(best.Alpha * best.eval(train.X[i]))
		}
		normalize(vPos)
		normalize(vNeg)
	}
	if len(m.stumps) == 0 {
		return fmt.Errorf("%s: no discriminative weak ranker found", m.Name())
	}
	return nil
}

// Scores implements Model.
func (m *RankBoost) Scores(test *feature.Set) ([]float64, error) {
	if len(m.stumps) == 0 {
		return nil, fmt.Errorf("%s: Scores before Fit", m.Name())
	}
	out := make([]float64, test.Len())
	parallel.New(m.cfg.Workers).Run(test.Len(), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for _, st := range m.stumps {
				s += st.Alpha * st.eval(test.X[i])
			}
			out[i] = s
		}
	})
	return out, nil
}

func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s <= 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// quantileCuts returns up to k distinct interior quantile cut points of
// xs. It sorts xs in place — callers own the buffer and refill it per
// feature, so no defensive copy is made.
func quantileCuts(xs []float64, k int) []float64 {
	sort.Float64s(xs)
	var cuts []float64
	for i := 1; i <= k; i++ {
		q := float64(i) / float64(k+1)
		v := xs[int(q*float64(len(xs)-1))]
		if len(cuts) == 0 || v != cuts[len(cuts)-1] {
			cuts = append(cuts, v)
		}
	}
	return cuts
}
