package dataset

import (
	"math"
	"testing"
)

func TestCohortByMaterial(t *testing.T) {
	n := testNetwork() // P1 CICL (1 failure), P2 PVC (0), P3 CI (3)
	rows := n.CohortByMaterial()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by rate desc: CI first (3 failures / 12 pipe-years).
	if rows[0].Cohort != "CI" {
		t.Fatalf("first cohort %s", rows[0].Cohort)
	}
	if rows[0].Failures != 3 || rows[0].Pipes != 1 {
		t.Fatalf("CI row %+v", rows[0])
	}
	if want := 3.0 / 12.0; math.Abs(rows[0].RatePerPipeYear-want) > 1e-12 {
		t.Fatalf("CI rate %v, want %v", rows[0].RatePerPipeYear, want)
	}
	// CI exposure: 12 years x 0.9 km = 10.8 km-years → 3/10.8*100 per 100km-yr.
	if want := 3.0 / 10.8 * 100; math.Abs(rows[0].RatePer100KMYear-want) > 1e-9 {
		t.Fatalf("CI km rate %v, want %v", rows[0].RatePer100KMYear, want)
	}
	// PVC has zero failures.
	for _, r := range rows {
		if r.Cohort == "PVC" && (r.Failures != 0 || r.RatePerPipeYear != 0) {
			t.Fatalf("PVC row %+v", r)
		}
	}
}

func TestCohortByAgeBand(t *testing.T) {
	n := testNetwork()
	rows, err := n.CohortByAgeBand(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no age bands")
	}
	// Total exposure across bands = sum of active years = 3 pipes x 12.
	total := 0.0
	fails := 0
	for _, r := range rows {
		total += r.PipeYears
		fails += r.Failures
	}
	if total != 36 {
		t.Fatalf("total pipe-years %v, want 36", total)
	}
	if fails != 4 {
		t.Fatalf("total failures %v, want 4", fails)
	}
	// P3 laid 1930: failure in 2001 at age 71 → band "age 70-79".
	found := false
	for _, r := range rows {
		if r.Cohort == "age 70-79" && r.Failures >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("age 70-79 band missing P3's failures: %+v", rows)
	}
	if _, err := n.CohortByAgeBand(0); err == nil {
		t.Fatal("band width 0 must error")
	}
}

func TestCohortByDiameterBand(t *testing.T) {
	n := testNetwork() // diameters 375, 100, 450
	rows, err := n.CohortByDiameterBand([]float64{300, 400})
	if err != nil {
		t.Fatal(err)
	}
	// Bands: <300 (P2), 300-400 (P1), >=400 (P3).
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Cohort != "<300mm" || rows[0].Pipes != 1 {
		t.Fatalf("first band %+v", rows[0])
	}
	if rows[2].Cohort != ">=400mm" || rows[2].Failures != 3 {
		t.Fatalf("last band %+v", rows[2])
	}
	if _, err := n.CohortByDiameterBand(nil); err == nil {
		t.Fatal("no bounds must error")
	}
	if _, err := n.CohortByDiameterBand([]float64{300, 200}); err == nil {
		t.Fatal("non-ascending bounds must error")
	}
}

func TestSegmentHotspots(t *testing.T) {
	pipes := []Pipe{
		{ID: "H", Class: ReticulationMain, Material: CICL, Coating: CoatingNone,
			DiameterMM: 100, LengthM: 100, LaidYear: 1950, Segments: 3},
	}
	fails := []Failure{
		{PipeID: "H", Segment: 1, Year: 2000, Day: 1, Mode: ModeBreak},
		{PipeID: "H", Segment: 1, Year: 2003, Day: 1, Mode: ModeBreak},
		{PipeID: "H", Segment: 1, Year: 2007, Day: 1, Mode: ModeBreak},
		{PipeID: "H", Segment: 0, Year: 2004, Day: 1, Mode: ModeLeak},
	}
	n := NewNetwork("S", 1998, 2009, pipes, fails)
	hot := n.SegmentHotspots(2)
	if len(hot) != 1 {
		t.Fatalf("hotspots %+v", hot)
	}
	if hot[0].PipeID != "H" || hot[0].Segment != 1 || hot[0].Failures != 3 {
		t.Fatalf("hotspot %+v", hot[0])
	}
	all := n.SegmentHotspots(0) // clamps to 1
	if len(all) != 2 {
		t.Fatalf("all hotspots %+v", all)
	}
	if all[0].Failures < all[1].Failures {
		t.Fatal("hotspots not sorted")
	}
}

func TestCohortEmptyBandsSkipped(t *testing.T) {
	n := testNetwork()
	rows, err := n.CohortByDiameterBand([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// All pipes land in the open-ended band.
	if len(rows) != 1 || rows[0].Cohort != ">=3mm" {
		t.Fatalf("rows %+v", rows)
	}
}
