// Package feature turns the domain model into numeric design matrices.
//
// It implements the data-mining pipeline stage of the reproduced paper:
// heterogeneous pipe attributes (categorical material, coating and soil
// factors; continuous age, diameter, length, traffic distance) and failure
// history are encoded into fixed-length vectors, with categorical levels
// one-hot encoded and continuous features log-transformed and standardized
// on the training window only.
//
// Training uses pipe-year instances: one row per pipe per training year,
// labelled with whether the pipe failed in that year, with history features
// computed strictly from years before the instance year (no leakage).
// Testing uses one row per pipe as of the held-out year.
package feature

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// Groups selects which feature groups enter the design matrix. The zero
// value selects nothing; use AllGroups for the full model. The ablation
// experiment switches groups off one at a time.
type Groups struct {
	// Material enables the material and coating one-hots.
	Material bool
	// Age enables pipe age and its log transform.
	Age bool
	// Geometry enables diameter and length.
	Geometry bool
	// Soil enables the four soil factor one-hots.
	Soil bool
	// Traffic enables the distance-to-intersection feature.
	Traffic bool
	// History enables prior-failure-count features.
	History bool
}

// AllGroups returns every group enabled.
func AllGroups() Groups {
	return Groups{Material: true, Age: true, Geometry: true, Soil: true, Traffic: true, History: true}
}

// Without returns a copy of g with the named group disabled. Valid names:
// material, age, geometry, soil, traffic, history.
func (g Groups) Without(name string) (Groups, error) {
	switch name {
	case "material":
		g.Material = false
	case "age":
		g.Age = false
	case "geometry":
		g.Geometry = false
	case "soil":
		g.Soil = false
	case "traffic":
		g.Traffic = false
	case "history":
		g.History = false
	default:
		return g, fmt.Errorf("feature: unknown group %q", name)
	}
	return g, nil
}

// Any reports whether at least one group is enabled.
func (g Groups) Any() bool {
	return g.Material || g.Age || g.Geometry || g.Soil || g.Traffic || g.History
}

// Options configures a Builder.
type Options struct {
	// Groups selects the feature groups (default: AllGroups via NewBuilder).
	Groups Groups
	// Standardize centres and scales continuous features using training
	// statistics. One-hot columns are left as 0/1.
	Standardize bool
}

// Set is a design matrix plus the metadata models need alongside it.
// Rows align across all fields.
//
// Sets built by a Builder are dense: X's rows are views into one
// contiguous row-major backing array exposed by Flat, so scoring kernels
// can stream the whole matrix without per-row pointer chasing. Sets
// assembled by hand (or row-subset views such as the CV fold splitter's)
// may populate X alone; Flat then reports no backing and callers fall
// back to the row views.
type Set struct {
	// Names are the expanded column names of X.
	Names []string
	// X holds one feature vector per instance. When the set is dense,
	// each row is a view into the flat backing array — mutating a row
	// mutates the backing and vice versa.
	X [][]float64
	// Label is the instance label: pipe failed in the instance year.
	Label []bool
	// Age is the pipe age at the instance year (survival baselines use it
	// directly, independent of whether the age group is enabled in X).
	Age []float64
	// LengthM is the pipe length (for length-weighted evaluation).
	LengthM []float64
	// PipeIdx is the index of the pipe in Network.Pipes().
	PipeIdx []int
	// Year is the instance year.
	Year []int

	// flat is the contiguous row-major backing (len == len(X)*stride)
	// when the set is dense, nil otherwise.
	flat   []float64
	stride int
}

// NewDense returns a Set with rows x dim dense storage: a single
// contiguous backing array with X's rows as capacity-clamped views into
// it, and the metadata slices preallocated to rows. dim must be positive;
// rows may be zero.
func NewDense(names []string, rows, dim int) *Set {
	if dim <= 0 {
		panic(fmt.Sprintf("feature: NewDense dim %d must be positive", dim))
	}
	if rows < 0 {
		panic(fmt.Sprintf("feature: NewDense rows %d must be non-negative", rows))
	}
	flat := make([]float64, rows*dim)
	x := make([][]float64, rows)
	for i := range x {
		x[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return &Set{
		Names:   names,
		X:       x,
		Label:   make([]bool, rows),
		Age:     make([]float64, rows),
		LengthM: make([]float64, rows),
		PipeIdx: make([]int, rows),
		Year:    make([]int, rows),
		flat:    flat,
		stride:  dim,
	}
}

// Flat returns the contiguous row-major backing array and the row stride
// (== Dim for dense sets), or (nil, 0) when the set was assembled from
// shared row views. Row i occupies flat[i*stride : (i+1)*stride]; the
// storage is shared with X, not a copy.
func (s *Set) Flat() ([]float64, int) {
	return s.flat, s.stride
}

// Len returns the number of instances.
func (s *Set) Len() int { return len(s.X) }

// Dim returns the feature dimensionality (0 for an empty set).
func (s *Set) Dim() int {
	if len(s.X) == 0 {
		return 0
	}
	return len(s.X[0])
}

// Positives returns the number of positive labels.
func (s *Set) Positives() int {
	c := 0
	for _, v := range s.Label {
		if v {
			c++
		}
	}
	return c
}

// Matrix copies X into a dense linalg.Matrix (for the Newton-step
// fitters). Dense sets copy their flat backing in one memcpy; view sets
// fall back to a row-by-row copy.
func (s *Set) Matrix() *linalg.Matrix {
	m := linalg.NewMatrix(max(1, s.Len()), max(1, s.Dim()))
	if s.flat != nil && s.stride == m.Cols {
		copy(m.Data, s.flat)
		return m
	}
	for i, row := range s.X {
		copy(m.Row(i), row)
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Builder encodes a registry's pipes into Sets. A Builder is bound to one
// Source (a materialized network or a columnar dataset); categorical
// vocabularies are collected from the full registry (attributes are known
// for all pipes up front — only labels are temporal), while numeric scaling
// statistics are fitted on the training set alone.
type Builder struct {
	src  Source
	opts Options

	materials []dataset.Material
	coatings  []dataset.Coating
	soilCorr  []string
	soilExp   []string
	soilGeo   []string
	soilMap   []string

	names []string

	// Standardization state, fitted by TrainSet.
	fitted bool
	mean   []float64
	scale  []float64
	// isNumeric marks columns that participate in standardization.
	isNumeric []bool
}

// NewBuilder returns a Builder over the network. Zero-valued Options get
// the full feature set with standardization enabled.
func NewBuilder(net *dataset.Network, opts Options) (*Builder, error) {
	if net == nil {
		return nil, fmt.Errorf("feature: nil network")
	}
	return NewBuilderFromSource(NetworkSource(net), opts)
}

// NewBuilderFromSource returns a Builder over any Source, e.g. a columnar
// dataset that never materializes []Pipe. Zero-valued Options get the full
// feature set with standardization enabled.
func NewBuilderFromSource(src Source, opts Options) (*Builder, error) {
	if src == nil {
		return nil, fmt.Errorf("feature: nil source")
	}
	if !opts.Groups.Any() {
		opts.Groups = AllGroups()
		opts.Standardize = true
	}
	b := &Builder{src: src, opts: opts}
	b.collectVocabularies()
	b.buildNames()
	if len(b.names) == 0 {
		return nil, fmt.Errorf("feature: configuration yields no features")
	}
	return b, nil
}

// collectVocabularies scans the registry for the categorical levels present,
// in sorted order for stable column layouts.
func (b *Builder) collectVocabularies() {
	mats := map[dataset.Material]bool{}
	coats := map[dataset.Coating]bool{}
	sc, se, sg, sm := map[string]bool{}, map[string]bool{}, map[string]bool{}, map[string]bool{}
	var p dataset.Pipe
	for i, n := 0, b.src.NumPipes(); i < n; i++ {
		b.src.PipeAt(i, &p)
		mats[p.Material] = true
		coats[p.Coating] = true
		sc[p.SoilCorrosivity] = true
		se[p.SoilExpansivity] = true
		sg[p.SoilGeology] = true
		sm[p.SoilMap] = true
	}
	for m := range mats {
		b.materials = append(b.materials, m)
	}
	sort.Slice(b.materials, func(i, j int) bool { return b.materials[i] < b.materials[j] })
	for c := range coats {
		b.coatings = append(b.coatings, c)
	}
	sort.Slice(b.coatings, func(i, j int) bool { return b.coatings[i] < b.coatings[j] })
	b.soilCorr = sortedKeys(sc)
	b.soilExp = sortedKeys(se)
	b.soilGeo = sortedKeys(sg)
	b.soilMap = sortedKeys(sm)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (b *Builder) buildNames() {
	g := b.opts.Groups
	var names []string
	var numeric []bool
	addNum := func(n string) { names = append(names, n); numeric = append(numeric, true) }
	addCat := func(n string) { names = append(names, n); numeric = append(numeric, false) }

	if g.Material {
		for _, m := range b.materials {
			addCat("material=" + string(m))
		}
		for _, c := range b.coatings {
			addCat("coating=" + string(c))
		}
	}
	if g.Age {
		addNum("age")
		addNum("log_age")
	}
	if g.Geometry {
		addNum("log_diameter")
		addNum("log_length")
	}
	if g.Soil {
		for _, v := range b.soilCorr {
			addCat("soil_corr=" + v)
		}
		for _, v := range b.soilExp {
			addCat("soil_exp=" + v)
		}
		for _, v := range b.soilGeo {
			addCat("soil_geo=" + v)
		}
		for _, v := range b.soilMap {
			addCat("soil_map=" + v)
		}
	}
	if g.Traffic {
		addNum("log_dist_traffic")
	}
	if g.History {
		addNum("prior_failures")
		addNum("had_failure")
	}
	b.names = names
	b.isNumeric = numeric
}

// Names returns the expanded feature names in column order.
func (b *Builder) Names() []string { return append([]string(nil), b.names...) }

// Dim returns the feature dimensionality.
func (b *Builder) Dim() int { return len(b.names) }

// rowInto encodes pipe i (attributes in p) as of a given year into x, a
// caller-owned slice of length Dim (typically a row view of the flat
// backing). historyFrom..historyTo bound the failure window visible to the
// history features.
func (b *Builder) rowInto(x []float64, i int, p *dataset.Pipe, year, historyFrom, historyTo int) {
	g := b.opts.Groups
	j := 0
	put := func(v float64) { x[j] = v; j++ }
	if g.Material {
		for _, m := range b.materials {
			put(boolTo01(p.Material == m))
		}
		for _, c := range b.coatings {
			put(boolTo01(p.Coating == c))
		}
	}
	if g.Age {
		age := p.AgeAt(year)
		put(age)
		put(math.Log1p(age))
	}
	if g.Geometry {
		put(math.Log(p.DiameterMM))
		put(math.Log(p.LengthM))
	}
	if g.Soil {
		for _, v := range b.soilCorr {
			put(boolTo01(p.SoilCorrosivity == v))
		}
		for _, v := range b.soilExp {
			put(boolTo01(p.SoilExpansivity == v))
		}
		for _, v := range b.soilGeo {
			put(boolTo01(p.SoilGeology == v))
		}
		for _, v := range b.soilMap {
			put(boolTo01(p.SoilMap == v))
		}
	}
	if g.Traffic {
		put(math.Log1p(p.DistToTrafficM))
	}
	if g.History {
		n := 0
		if historyTo >= historyFrom {
			n = b.src.FailureCountAt(i, historyFrom, historyTo)
		}
		put(float64(n))
		put(boolTo01(n > 0))
	}
}

func boolTo01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// TrainSet builds the pipe-year training set for the split and fits the
// standardization statistics. History features for an instance in year y
// use failures in [split.TrainFrom, y-1] only. The returned set is dense
// (one contiguous backing array; see Set.Flat).
func (b *Builder) TrainSet(split dataset.Split) (*Set, error) {
	numPipes := b.src.NumPipes()
	rows := 0
	for y := split.TrainFrom; y <= split.TrainTo; y++ {
		for i := 0; i < numPipes; i++ {
			if b.src.LaidYearAt(i) <= y {
				rows++
			}
		}
	}
	if rows == 0 {
		return nil, fmt.Errorf("feature: empty training set for split %+v", split)
	}
	s := NewDense(b.Names(), rows, b.Dim())
	r := 0
	var p dataset.Pipe
	for y := split.TrainFrom; y <= split.TrainTo; y++ {
		for i := 0; i < numPipes; i++ {
			if b.src.LaidYearAt(i) > y {
				continue
			}
			b.src.PipeAt(i, &p)
			b.rowInto(s.X[r], i, &p, y, split.TrainFrom, y-1)
			s.Label[r] = b.src.FailedInYearAt(i, y)
			s.Age[r] = p.AgeAt(y)
			s.LengthM[r] = p.LengthM
			s.PipeIdx[r] = i
			s.Year[r] = y
			r++
		}
	}
	b.fitScaler(s)
	b.apply(s)
	return s, nil
}

// TestSet builds the one-row-per-pipe test set for the split, using the
// standardization fitted by TrainSet. History features use the full
// training window. The returned set is dense (see Set.Flat).
func (b *Builder) TestSet(split dataset.Split) (*Set, error) {
	if !b.fitted {
		return nil, fmt.Errorf("feature: TestSet called before TrainSet")
	}
	numPipes := b.src.NumPipes()
	y := split.TestYear
	rows := 0
	for i := 0; i < numPipes; i++ {
		if b.src.LaidYearAt(i) <= y {
			rows++
		}
	}
	if rows == 0 {
		return nil, fmt.Errorf("feature: empty test set for split %+v", split)
	}
	s := NewDense(b.Names(), rows, b.Dim())
	r := 0
	var p dataset.Pipe
	for i := 0; i < numPipes; i++ {
		if b.src.LaidYearAt(i) > y {
			continue
		}
		b.src.PipeAt(i, &p)
		b.rowInto(s.X[r], i, &p, y, split.TrainFrom, split.TrainTo)
		s.Label[r] = b.src.FailedInYearAt(i, y)
		s.Age[r] = p.AgeAt(y)
		s.LengthM[r] = p.LengthM
		s.PipeIdx[r] = i
		s.Year[r] = y
		r++
	}
	b.apply(s)
	return s, nil
}

func (b *Builder) fitScaler(s *Set) {
	d := b.Dim()
	b.mean = make([]float64, d)
	b.scale = make([]float64, d)
	for j := 0; j < d; j++ {
		b.scale[j] = 1
	}
	if !b.opts.Standardize {
		b.fitted = true
		return
	}
	n := float64(s.Len())
	for j := 0; j < d; j++ {
		if !b.isNumeric[j] {
			continue
		}
		sum := 0.0
		for _, row := range s.X {
			sum += row[j]
		}
		mean := sum / n
		ss := 0.0
		for _, row := range s.X {
			dv := row[j] - mean
			ss += dv * dv
		}
		sd := math.Sqrt(ss / n)
		b.mean[j] = mean
		if sd > 1e-12 {
			b.scale[j] = sd
		}
	}
	b.fitted = true
}

func (b *Builder) apply(s *Set) {
	if !b.opts.Standardize {
		return
	}
	for _, row := range s.X {
		for j := range row {
			if b.isNumeric[j] {
				row[j] = (row[j] - b.mean[j]) / b.scale[j]
			}
		}
	}
}
