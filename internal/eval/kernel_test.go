package eval

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
)

// pairwiseAUC is the O(|P|·|N|) definition the kernel must reproduce:
// count positive-over-negative wins, half credit for ties.
func pairwiseAUC(scores []float64, labels []bool) float64 {
	var wins, pairs float64
	for i, si := range scores {
		if !labels[i] {
			continue
		}
		for j, sj := range scores {
			if labels[j] {
				continue
			}
			pairs++
			switch {
			case si > sj:
				wins++
			case si == sj:
				wins += 0.5
			}
		}
	}
	if pairs == 0 {
		return 0.5
	}
	return wins / pairs
}

// TestAUCKernelAgainstPairwiseReference checks the rank-statistic kernel
// against the naive pairwise definition on random inputs with heavy
// score ties (quantized scores force large tie groups).
func TestAUCKernelAgainstPairwiseReference(t *testing.T) {
	rng := stats.NewRNG(7)
	var k AUCKernel
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(120)
		// Quantize scores to few levels so ties dominate; occasionally use
		// continuous scores too.
		levels := 1 + rng.Intn(6)
		continuous := trial%10 == 0
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			if continuous {
				scores[i] = rng.Float64()
			} else {
				scores[i] = float64(rng.Intn(levels))
			}
			labels[i] = rng.Bernoulli(0.3)
		}
		want := pairwiseAUC(scores, labels)
		got := k.Compute(scores, labels)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (n=%d, levels=%d): kernel %v != pairwise %v",
				trial, n, levels, got, want)
		}
		// The one-shot wrapper must agree exactly.
		if w := AUC(scores, labels); w != got {
			t.Fatalf("trial %d: AUC wrapper %v != kernel %v", trial, w, got)
		}
	}
}

func TestAUCKernelDegenerate(t *testing.T) {
	var k AUCKernel
	if got := k.Compute(nil, nil); got != 0.5 {
		t.Fatalf("empty input: %v", got)
	}
	if got := k.Compute([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Fatalf("single class: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	k.Compute([]float64{1}, []bool{true, false})
}

// TestAUCKernelZeroAlloc is the allocation-regression gate for the ES
// fitness path: after the warm-up call, Compute must not allocate.
func TestAUCKernelZeroAlloc(t *testing.T) {
	rng := stats.NewRNG(3)
	n := 4096
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = float64(rng.Intn(50)) // heavy ties exercise the group walk
		labels[i] = rng.Bernoulli(0.1)
	}
	var k AUCKernel
	allocs := testing.AllocsPerRun(20, func() {
		if a := k.Compute(scores, labels); a < 0 || a > 1 {
			t.Fatalf("AUC out of range: %v", a)
		}
	})
	if allocs != 0 {
		t.Fatalf("AUCKernel.Compute allocates %v per run in steady state, want 0", allocs)
	}
}

// TestAUCKernelMatchesLegacySort is the in-package differential gate for
// the counting-rank kernel: on NaN-free input it must reproduce the
// legacy sort-everything kernel bit for bit (the counting pass replays
// the same float operation sequence), across continuous, heavily tied,
// negative, and signed-zero score distributions.
func TestAUCKernelMatchesLegacySort(t *testing.T) {
	rng := stats.NewRNG(23)
	var k, legacy AUCKernel
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(400)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			switch trial % 4 {
			case 0:
				scores[i] = rng.Uniform(-5, 5)
			case 1:
				scores[i] = float64(rng.Intn(7) - 3)
			case 2:
				scores[i] = math.Copysign(0, float64(rng.Intn(3)-1))
			default:
				scores[i] = rng.Norm() * math.Pow(10, float64(rng.Intn(13)-6))
			}
			labels[i] = rng.Bernoulli(0.25)
		}
		got := k.Compute(scores, labels)
		want := legacy.computeViaSort(scores, labels)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d (n=%d): counting %v != sort %v", trial, n, got, want)
		}
	}
}

// TestAUCKernelNaNFallsBackToSort pins the NaN escape hatch: a NaN
// score routes Compute to the legacy sort kernel, so both spellings
// agree even though no counting identity holds for unordered values.
func TestAUCKernelNaNFallsBackToSort(t *testing.T) {
	scores := []float64{0.3, math.NaN(), 0.7, 0.1, math.NaN(), 0.9}
	labels := []bool{true, false, false, true, true, false}
	var k, legacy AUCKernel
	got := k.Compute(scores, labels)
	want := legacy.computeViaSort(scores, labels)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("NaN input: Compute %v != computeViaSort %v", got, want)
	}
	// The fallback must not poison the kernel: a clean follow-up call
	// still matches the counting path.
	clean := []float64{0.2, 0.8, 0.5, 0.5}
	cleanLabels := []bool{false, true, true, false}
	if g, w := k.Compute(clean, cleanLabels), legacy.computeViaSort(clean, cleanLabels); math.Float64bits(g) != math.Float64bits(w) {
		t.Fatalf("post-NaN reuse: %v != %v", g, w)
	}
}

// referenceRankOrder is the pre-kernel implementation: stable sort by
// score descending (stability supplies the index tiebreak).
func referenceRankOrder(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

func TestRankerMatchesStableSort(t *testing.T) {
	rng := stats.NewRNG(11)
	var r Ranker
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(8)) // ties stress the index tiebreak
		}
		want := referenceRankOrder(scores)
		got := r.Order(scores)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d != %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order[%d] = %d != stable-sort %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	rng := stats.NewRNG(13)
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(300)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(10))
		}
		full := referenceRankOrder(scores)
		for _, k := range []int{-1, 0, 1, 2, n / 2, n - 1, n, n + 5} {
			want := full
			kk := k
			if kk < 0 {
				kk = 0
			}
			if kk > n {
				kk = n
			}
			want = full[:kk]
			got := TopK(scores, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: length %d != %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d: topk[%d] = %d != sorted %d", trial, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRankerTopKHeavyTiesProperty is the tie-saturation property check:
// for score vectors dominated by (or consisting entirely of) equal
// values, Ranker.Order and TopK must agree with the full stable sort at
// the exact boundary ks — 0, 1, n-1, n and n+1 — where clamping and
// heap-eviction edge cases live. The levels=1 case makes every score
// identical, so the entire ordering is decided by the index tiebreak.
func TestRankerTopKHeavyTiesProperty(t *testing.T) {
	rng := stats.NewRNG(29)
	var r Ranker
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(250)
		levels := 1 + trial%3 // 1 (all equal), 2, 3 distinct values
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(levels))
		}
		full := referenceRankOrder(scores)
		order := r.Order(scores)
		for i := range full {
			if order[i] != full[i] {
				t.Fatalf("trial %d (n=%d, levels=%d): Order[%d] = %d != stable %d",
					trial, n, levels, i, order[i], full[i])
			}
		}
		for _, k := range []int{0, 1, n - 1, n, n + 1} {
			kk := k
			if kk < 0 {
				kk = 0
			}
			if kk > n {
				kk = n
			}
			got := TopK(scores, k)
			if len(got) != kk {
				t.Fatalf("trial %d (n=%d, levels=%d) k=%d: len %d != %d",
					trial, n, levels, k, len(got), kk)
			}
			for i := 0; i < kk; i++ {
				if got[i] != full[i] {
					t.Fatalf("trial %d (n=%d, levels=%d) k=%d: TopK[%d] = %d != stable %d",
						trial, n, levels, k, i, got[i], full[i])
				}
			}
		}
	}
}

func BenchmarkAUCKernel(b *testing.B) {
	rng := stats.NewRNG(1)
	n := 100000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Bernoulli(0.03)
	}
	var k AUCKernel
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a := k.Compute(scores, labels); a < 0.4 || a > 0.6 {
			b.Fatalf("AUC %v", a)
		}
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := stats.NewRNG(3)
	n := 20000
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Norm()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ids := TopK(scores, 50); len(ids) != 50 {
			b.Fatal("bad topk")
		}
	}
}
