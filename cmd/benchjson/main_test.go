package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	lines := []string{
		"goos: linux",
		"pkg: repro/internal/core",
		"BenchmarkFitnessEval-8  \t    1933\t    610513 ns/op\t      42 B/op\t       0 allocs/op",
		"BenchmarkMatVec \t    2871\t    410645.5 ns/op",
		"BenchmarkColRead/rows=10k \t     909\t   1324101 ns/op\t 368.81 MB/s\t 3432264 B/op\t     155 allocs/op",
		"PASS",
		"ok  \trepro/internal/core\t3.1s",
	}
	got, err := parse(lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3", len(got))
	}
	fe := got[0]
	if fe.Name != "BenchmarkFitnessEval" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", fe.Name)
	}
	if fe.Iterations != 1933 || fe.NsPerOp != 610513 {
		t.Fatalf("bad numbers: %+v", fe)
	}
	if fe.BytesPerOp == nil || *fe.BytesPerOp != 42 || fe.AllocsPerOp == nil || *fe.AllocsPerOp != 0 {
		t.Fatalf("bad alloc fields: %+v", fe)
	}
	mv := got[1]
	if mv.Name != "BenchmarkMatVec" || mv.NsPerOp != 410645.5 {
		t.Fatalf("bad no-alloc line: %+v", mv)
	}
	if mv.BytesPerOp != nil || mv.AllocsPerOp != nil {
		t.Fatalf("alloc fields must be absent when not reported: %+v", mv)
	}
	// b.SetBytes benchmarks insert an MB/s column before B/op; the alloc
	// fields must still be captured (the throughput itself is derived, so
	// it is skipped, not recorded).
	cr := got[2]
	if cr.Name != "BenchmarkColRead/rows=10k" || cr.NsPerOp != 1324101 {
		t.Fatalf("bad MB/s line: %+v", cr)
	}
	if cr.BytesPerOp == nil || *cr.BytesPerOp != 3432264 || cr.AllocsPerOp == nil || *cr.AllocsPerOp != 155 {
		t.Fatalf("alloc fields lost on MB/s line: %+v", cr)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	got, err := parse([]string{"no benchmarks here"})
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("unexpected results: %+v", got)
	}
}

func intp(v int64) *int64 { return &v }

func TestCheckPassesWithinTolerance(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkAUCKernel", NsPerOp: 1000, BytesPerOp: intp(0), AllocsPerOp: intp(0)},
		{Name: "BenchmarkMatVec", NsPerOp: 500},
	}
	fresh := []Result{
		{Name: "BenchmarkAUCKernel", NsPerOp: 1200, BytesPerOp: intp(64), AllocsPerOp: intp(0)},
		{Name: "BenchmarkMatVec", NsPerOp: 400},
		{Name: "BenchmarkBrandNew", NsPerOp: 9e9}, // not in baseline: ignored
	}
	if v := check(fresh, baseline, 0.3); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCheckCatchesSlowdown(t *testing.T) {
	baseline := []Result{{Name: "BenchmarkAUCKernel", NsPerOp: 1000}}
	fresh := []Result{{Name: "BenchmarkAUCKernel", NsPerOp: 1301}}
	v := check(fresh, baseline, 0.3)
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
}

func TestCheckCatchesAllocGrowthWithoutTolerance(t *testing.T) {
	baseline := []Result{{Name: "BenchmarkAUCKernel", NsPerOp: 1000, BytesPerOp: intp(0), AllocsPerOp: intp(0)}}
	// 10% faster but one new alloc: still a regression — allocation
	// counts are exact and get no tolerance.
	fresh := []Result{{Name: "BenchmarkAUCKernel", NsPerOp: 900, BytesPerOp: intp(16), AllocsPerOp: intp(1)}}
	if v := check(fresh, baseline, 0.3); len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
	// Dropping b.ReportAllocs entirely must also fail, not silently pass.
	fresh[0].BytesPerOp, fresh[0].AllocsPerOp = nil, nil
	if v := check(fresh, baseline, 0.3); len(v) != 1 {
		t.Fatalf("want 1 violation for missing alloc fields, got %v", v)
	}
}

func TestCheckCatchesMissingBenchmark(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkAUCKernel", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 10},
	}
	fresh := []Result{{Name: "BenchmarkAUCKernel", NsPerOp: 1000}}
	v := check(fresh, baseline, 0.3)
	if len(v) != 1 {
		t.Fatalf("want 1 violation for missing benchmark, got %v", v)
	}
}

func TestReadBaselineRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(bad); err == nil {
		t.Fatal("garbage baseline accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(empty); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if _, err := readBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestWriteToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	results := []Result{{Name: "BenchmarkX", Iterations: 10, NsPerOp: 1.5}}
	if err := write(results, path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("file is not valid JSON: %v\n%s", err, blob)
	}
	if len(back) != 1 || back[0].Name != "BenchmarkX" || back[0].NsPerOp != 1.5 {
		t.Fatalf("round trip %+v", back)
	}
	// No temp droppings next to the output.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files: %v", entries)
	}
}
