// Package synthetic generates metropolitan water-pipe networks and
// multi-year failure histories from a known ground-truth hazard model.
//
// The real evaluation data of the reproduced paper is a water utility's
// proprietary registry and work-order log. This package is the documented
// substitution: it produces data with the same schema, the same scale, the
// same extreme class imbalance, and the same covariate structure (material
// cohorts with distinct ageing behaviour, diameter/length exposure effects,
// spatially coherent soil factors, traffic loading), so every model in the
// repository exercises exactly the code path it would on utility data.
package synthetic

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// MaterialHazard describes the ground-truth ageing behaviour of one
// material cohort through a Weibull-style hazard: shape > 1 means the
// cohort deteriorates with age, shape < 1 means early-life failures
// dominate (typical for PVC joints).
type MaterialHazard struct {
	// Base is the material's annual failure-rate multiplier at the
	// reference age, diameter and length.
	Base float64
	// Shape is the Weibull ageing shape parameter.
	Shape float64
	// ScaleYears is the Weibull characteristic life in years.
	ScaleYears float64
}

// HazardParams is the full ground-truth model. The annual failure intensity
// of pipe p at age t is
//
//	lambda(p, t) = GlobalRate * matBase * weibullAging(t) *
//	               (diameter/300mm)^DiameterExp * (length/100m)^LengthExp *
//	               soilCorr * soilExp * geo * map * traffic(dist) *
//	               coating * frailty(p)
//
// and the number of failures of p in a calendar year is Poisson with that
// mean (capped below 1 event/segment/year by construction at realistic
// parameter settings).
type HazardParams struct {
	// GlobalRate scales the whole intensity; the calibration target is the
	// per-pipe-year failure rate of metropolitan networks (~0.02).
	GlobalRate float64
	// Materials maps each material to its ageing behaviour.
	Materials map[dataset.Material]MaterialHazard
	// DiameterExp is the exponent on normalized diameter. Negative values
	// encode the empirical finding that small mains break more often.
	DiameterExp float64
	// LengthExp is the exponent on normalized length (1 = proportional
	// exposure, the physically expected value).
	LengthExp float64
	// SoilCorrosivity, SoilExpansivity, SoilGeology and SoilMap multiply
	// the intensity per categorical level.
	SoilCorrosivity map[string]float64
	SoilExpansivity map[string]float64
	SoilGeology     map[string]float64
	SoilMap         map[string]float64
	// Coating multiplies the intensity per coating type (sleeves protect).
	Coating map[dataset.Coating]float64
	// TrafficScaleM controls the road-pressure effect: pipes at distance d
	// from an intersection get multiplier 1 + TrafficBoost*exp(-d/TrafficScaleM).
	TrafficScaleM float64
	TrafficBoost  float64
	// FrailtySigma is the lognormal sigma of the per-pipe frailty term that
	// models unobserved heterogeneity (bedding quality, workmanship).
	FrailtySigma float64
}

// DefaultHazard returns the calibrated ground truth used by the region
// presets. The relative effects follow the water-mains deterioration
// literature: unlined cast iron worst and strongly ageing, cement lining
// helping, PVC nearly flat in age, corrosive/expansive soils and traffic
// loading each adding tens of percent.
func DefaultHazard() HazardParams {
	return HazardParams{
		GlobalRate: 0.011,
		Materials: map[dataset.Material]MaterialHazard{
			dataset.CI:    {Base: 1.9, Shape: 2.6, ScaleYears: 95},
			dataset.CICL:  {Base: 1.2, Shape: 2.2, ScaleYears: 110},
			dataset.AC:    {Base: 1.4, Shape: 2.9, ScaleYears: 80},
			dataset.DICL:  {Base: 0.7, Shape: 1.8, ScaleYears: 120},
			dataset.STEEL: {Base: 0.8, Shape: 1.6, ScaleYears: 130},
			dataset.PVC:   {Base: 0.5, Shape: 0.9, ScaleYears: 140},
			dataset.HDPE:  {Base: 0.35, Shape: 0.9, ScaleYears: 160},
		},
		DiameterExp: -1.7,
		LengthExp:   1.0,
		SoilCorrosivity: map[string]float64{
			"LOW": 0.8, "MODERATE": 1.0, "HIGH": 1.35, "SEVERE": 1.8,
		},
		SoilExpansivity: map[string]float64{
			"STABLE": 0.9, "SLIGHT": 1.0, "MODERATE": 1.2, "HIGH": 1.5,
		},
		SoilGeology: map[string]float64{
			"SANDSTONE": 0.9, "SHALE": 1.1, "CLAY": 1.3, "ALLUVIUM": 1.1, "FILL": 1.4,
		},
		SoilMap: map[string]float64{
			"FLUVIAL": 1.1, "COLLUVIAL": 1.0, "EROSIONAL": 0.95, "RESIDUAL": 0.9, "SWAMP": 1.35,
		},
		Coating: map[dataset.Coating]float64{
			dataset.CoatingNone:     1.0,
			dataset.CoatingPESleeve: 0.7,
			dataset.CoatingTar:      0.9,
		},
		TrafficScaleM: 120,
		TrafficBoost:  0.6,
		FrailtySigma:  0.45,
	}
}

// AgingFactor returns the Weibull hazard of the material at age t,
// normalized so the factor is 1 at the characteristic life's half point;
// this keeps GlobalRate interpretable across shapes.
func (h HazardParams) AgingFactor(m dataset.Material, age float64) (float64, error) {
	mh, ok := h.Materials[m]
	if !ok {
		return 0, fmt.Errorf("synthetic: no hazard parameters for material %q", m)
	}
	if age < 0.5 {
		age = 0.5 // avoid the singularity of shape<1 hazards at zero age
	}
	ref := mh.ScaleYears / 2
	hz := math.Pow(age/mh.ScaleYears, mh.Shape-1)
	hzRef := math.Pow(ref/mh.ScaleYears, mh.Shape-1)
	return hz / hzRef, nil
}

// AnnualRate returns the ground-truth expected number of failures of the
// pipe in the calendar year, given its frailty multiplier.
func (h HazardParams) AnnualRate(p *dataset.Pipe, year int, frailty float64) (float64, error) {
	age := p.AgeAt(year)
	aging, err := h.AgingFactor(p.Material, age)
	if err != nil {
		return 0, err
	}
	mh := h.Materials[p.Material]
	rate := h.GlobalRate * mh.Base * aging
	rate *= math.Pow(p.DiameterMM/300, h.DiameterExp)
	rate *= math.Pow(p.LengthM/100, h.LengthExp)
	rate *= lookupOr(h.SoilCorrosivity, p.SoilCorrosivity, 1)
	rate *= lookupOr(h.SoilExpansivity, p.SoilExpansivity, 1)
	rate *= lookupOr(h.SoilGeology, p.SoilGeology, 1)
	rate *= lookupOr(h.SoilMap, p.SoilMap, 1)
	if c, ok := h.Coating[p.Coating]; ok {
		rate *= c
	}
	rate *= 1 + h.TrafficBoost*math.Exp(-p.DistToTrafficM/h.TrafficScaleM)
	rate *= frailty
	if math.IsNaN(rate) || rate < 0 {
		return 0, fmt.Errorf("synthetic: degenerate rate for pipe %q year %d", p.ID, year)
	}
	return rate, nil
}

func lookupOr(m map[string]float64, k string, def float64) float64 {
	if v, ok := m[k]; ok {
		return v
	}
	return def
}
