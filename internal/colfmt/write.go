package colfmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/dataset"
)

// Write encodes the dataset as a PCOL file. Sections are emitted in the
// canonical order the reader requires: meta, pipe columns, event columns,
// end marker.
func Write(w io.Writer, d *Dataset) error {
	if d == nil {
		return fmt.Errorf("colfmt: nil dataset")
	}
	if err := consistentLengths(d); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Magic); err != nil {
		return fmt.Errorf("colfmt: write magic: %w", err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Version)
	binary.LittleEndian.PutUint16(hdr[2:4], 0) // flags
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("colfmt: write header: %w", err)
	}

	enc := &sectionWriter{w: bw}
	enc.meta(d)
	pipes, events := uint64(d.NumPipes()), uint64(d.NumEvents())

	enc.column(secPipe, colPipeID, encStr, pipes, func(b []byte) []byte { return appendStrCol(b, d.Pipes.ID) })
	enc.dictColumn(secPipe, colPipeClass, pipes, classStrings(d.Pipes.Class))
	enc.dictColumn(secPipe, colPipeMaterial, pipes, materialStrings(d.Pipes.Material))
	enc.dictColumn(secPipe, colPipeCoating, pipes, coatingStrings(d.Pipes.Coating))
	enc.column(secPipe, colPipeDiameter, encF64, pipes, func(b []byte) []byte { return appendF64Col(b, d.Pipes.DiameterMM) })
	enc.column(secPipe, colPipeLength, encF64, pipes, func(b []byte) []byte { return appendF64Col(b, d.Pipes.LengthM) })
	enc.column(secPipe, colPipeLaidYear, encI32, pipes, func(b []byte) []byte { return appendI32Col(b, d.Pipes.LaidYear) })
	enc.dictColumn(secPipe, colPipeSoilCorr, pipes, d.Pipes.SoilCorrosivity)
	enc.dictColumn(secPipe, colPipeSoilExp, pipes, d.Pipes.SoilExpansivity)
	enc.dictColumn(secPipe, colPipeSoilGeo, pipes, d.Pipes.SoilGeology)
	enc.dictColumn(secPipe, colPipeSoilMap, pipes, d.Pipes.SoilMap)
	enc.column(secPipe, colPipeTraffic, encF64, pipes, func(b []byte) []byte { return appendF64Col(b, d.Pipes.DistToTrafficM) })
	enc.column(secPipe, colPipeX, encF64, pipes, func(b []byte) []byte { return appendF64Col(b, d.Pipes.X) })
	enc.column(secPipe, colPipeY, encF64, pipes, func(b []byte) []byte { return appendF64Col(b, d.Pipes.Y) })
	enc.column(secPipe, colPipeSegments, encI32, pipes, func(b []byte) []byte { return appendI32Col(b, d.Pipes.Segments) })

	enc.column(secEvent, colEventPipe, encU32, events, func(b []byte) []byte { return appendU32Col(b, d.Events.Pipe) })
	enc.column(secEvent, colEventSegment, encI32, events, func(b []byte) []byte { return appendI32Col(b, d.Events.Segment) })
	enc.column(secEvent, colEventYear, encI32, events, func(b []byte) []byte { return appendI32Col(b, d.Events.Year) })
	enc.column(secEvent, colEventDay, encI32, events, func(b []byte) []byte { return appendI32Col(b, d.Events.Day) })
	enc.dictColumn(secEvent, colEventMode, events, modeStrings(d.Events.Mode))

	enc.section(secEnd, 0, 0, 0, nil)
	if enc.err != nil {
		return enc.err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("colfmt: flush: %w", err)
	}
	return nil
}

// WriteFile writes the dataset to path via a temp file + rename, so a
// crashed writer never leaves a truncated .col behind.
func WriteFile(path string, d *Dataset) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("colfmt: %w", err)
	}
	if err := Write(tmp, d); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("colfmt: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("colfmt: %w", err)
	}
	return nil
}

func consistentLengths(d *Dataset) error {
	n, e := d.NumPipes(), d.NumEvents()
	c, ev := &d.Pipes, &d.Events
	for _, l := range []int{
		len(c.Class), len(c.Material), len(c.Coating), len(c.DiameterMM),
		len(c.LengthM), len(c.LaidYear), len(c.SoilCorrosivity),
		len(c.SoilExpansivity), len(c.SoilGeology), len(c.SoilMap),
		len(c.DistToTrafficM), len(c.X), len(c.Y), len(c.Segments),
	} {
		if l != n {
			return fmt.Errorf("colfmt: pipe column length %d != %d rows", l, n)
		}
	}
	for _, l := range []int{len(ev.Segment), len(ev.Year), len(ev.Day), len(ev.Mode)} {
		if l != e {
			return fmt.Errorf("colfmt: event column length %d != %d rows", l, e)
		}
	}
	return nil
}

// sectionWriter emits sections, accumulating the first error; payloads are
// built in a scratch buffer reused across sections.
type sectionWriter struct {
	w       *bufio.Writer
	scratch []byte
	err     error
}

func (s *sectionWriter) section(kind, id, enc byte, rows uint64, payload []byte) {
	if s.err != nil {
		return
	}
	var hdr [20]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = kind, id, enc, 0
	binary.LittleEndian.PutUint64(hdr[4:12], rows)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	if _, err := s.w.Write(hdr[:]); err != nil {
		s.err = fmt.Errorf("colfmt: write section header: %w", err)
		return
	}
	if _, err := s.w.Write(payload); err != nil {
		s.err = fmt.Errorf("colfmt: write section payload: %w", err)
		return
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := s.w.Write(crc[:]); err != nil {
		s.err = fmt.Errorf("colfmt: write section checksum: %w", err)
	}
}

func (s *sectionWriter) meta(d *Dataset) {
	b := s.scratch[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.Region)))
	b = append(b, d.Region...)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(d.ObservedFrom)))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(d.ObservedTo)))
	b = binary.LittleEndian.AppendUint64(b, uint64(d.NumPipes()))
	b = binary.LittleEndian.AppendUint64(b, uint64(d.NumEvents()))
	s.scratch = b
	s.section(secMeta, 0, 0, 0, b)
}

func (s *sectionWriter) column(kind, id, enc byte, rows uint64, build func([]byte) []byte) {
	if s.err != nil {
		return
	}
	s.scratch = build(s.scratch[:0])
	s.section(kind, id, enc, rows, s.scratch)
}

func (s *sectionWriter) dictColumn(kind, id byte, rows uint64, vals []string) {
	if s.err != nil {
		return
	}
	b, err := appendDictCol(s.scratch[:0], vals)
	if err != nil {
		s.err = err
		return
	}
	s.scratch = b
	s.section(kind, id, encDict, rows, b)
}

func appendF64Col(b []byte, v []float64) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func appendI32Col(b []byte, v []int32) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}

func appendU32Col(b []byte, v []uint32) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, x)
	}
	return b
}

// appendStrCol encodes unique strings as one blob plus rows+1 offsets.
func appendStrCol(b []byte, vals []string) []byte {
	blob := 0
	for _, v := range vals {
		blob += len(v)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(blob))
	for _, v := range vals {
		b = append(b, v...)
	}
	off := uint32(0)
	b = binary.LittleEndian.AppendUint32(b, off)
	for _, v := range vals {
		off += uint32(len(v))
		b = binary.LittleEndian.AppendUint32(b, off)
	}
	return b
}

// appendDictCol dictionary-encodes a low-cardinality column: codes are
// assigned in order of first appearance, capped at 256 levels.
func appendDictCol(b []byte, vals []string) ([]byte, error) {
	var dict []string
	codes := make(map[string]int, 8)
	rowCodes := make([]byte, len(vals))
	for i, v := range vals {
		code, ok := codes[v]
		if !ok {
			code = len(dict)
			if code >= 256 {
				return nil, fmt.Errorf("colfmt: dictionary column exceeds 256 distinct values")
			}
			codes[v] = code
			dict = append(dict, v)
		}
		rowCodes[i] = byte(code)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(dict)))
	for _, v := range dict {
		if len(v) > math.MaxUint16 {
			return nil, fmt.Errorf("colfmt: dictionary entry of %d bytes too long", len(v))
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(v)))
		b = append(b, v...)
	}
	return append(b, rowCodes...), nil
}

// The typed columns reuse the generic string dict encoder through these
// cheap views (one slice header copy per column, no per-row allocation).

func classStrings(v []dataset.PipeClass) []string {
	out := make([]string, len(v))
	for i, c := range v {
		out[i] = c.String()
	}
	return out
}

func materialStrings(v []dataset.Material) []string {
	out := make([]string, len(v))
	for i, m := range v {
		out[i] = string(m)
	}
	return out
}

func coatingStrings(v []dataset.Coating) []string {
	out := make([]string, len(v))
	for i, c := range v {
		out[i] = string(c)
	}
	return out
}

func modeStrings(v []dataset.FailureMode) []string {
	out := make([]string, len(v))
	for i, m := range v {
		out[i] = string(m)
	}
	return out
}
