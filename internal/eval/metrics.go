// Package eval implements the evaluation harness of the reproduction: AUC,
// ROC and detection (CAP) curves, detection at inspection budgets, partial
// areas, and the table rendering used by the experiment runners.
//
// The central industrial metric is the detection curve: rank all pipes by
// predicted risk, inspect the top x %, and count the fraction of the test
// year's failures caught. The paper's real-world constraint is x = 1 %.
package eval

import (
	"fmt"
	"math"
)

// AUC returns the empirical area under the ROC curve of scores against
// labels, computed with the rank-statistic formulation (ties counted half)
// in O(n log n). Degenerate single-class inputs return 0.5. This is the
// one-shot convenience wrapper; callers on hot loops hold an AUCKernel
// (see kernel.go) to amortize the sort scratch.
func AUC(scores []float64, labels []bool) float64 {
	var k AUCKernel
	return k.Compute(scores, labels)
}

// CurvePoint is one point of a detection or ROC curve.
type CurvePoint struct {
	// X is the inspected fraction (detection curve) or the false-positive
	// rate (ROC).
	X float64
	// Y is the detected fraction (detection) or true-positive rate (ROC).
	Y float64
}

// rankOrder returns indices sorted by score descending, breaking ties by
// original index for determinism (a one-shot Ranker; see kernel.go).
func rankOrder(scores []float64) []int {
	var r Ranker
	return r.Order(scores)
}

// DetectionCurve returns the cumulative detection curve: after inspecting
// the top-k ranked pipes (x = k/n), the fraction of failed pipes caught
// (y). The curve is sub-sampled to at most points+1 points including the
// endpoints. It panics on length mismatch; a label set with no positives
// yields a flat zero curve.
func DetectionCurve(scores []float64, labels []bool, points int) []CurvePoint {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("eval: DetectionCurve length mismatch %d vs %d", len(scores), len(labels)))
	}
	if points < 1 {
		points = 100
	}
	n := len(scores)
	if n == 0 {
		return nil
	}
	totalPos := 0
	for _, v := range labels {
		if v {
			totalPos++
		}
	}
	order := rankOrder(scores)
	out := make([]CurvePoint, 0, points+1)
	out = append(out, CurvePoint{0, 0})
	caught := 0
	next := 1
	for k, i := range order {
		if labels[i] {
			caught++
		}
		// Emit at evenly spaced inspected fractions.
		for next <= points && (k+1)*points >= next*n {
			x := float64(next) / float64(points)
			y := 0.0
			if totalPos > 0 {
				y = float64(caught) / float64(totalPos)
			}
			out = append(out, CurvePoint{x, y})
			next++
		}
	}
	return out
}

// DetectionAt returns the fraction of failed pipes caught when inspecting
// the top frac of pipes by score (frac in (0, 1]). Zero positives yield 0.
func DetectionAt(scores []float64, labels []bool, frac float64) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("eval: DetectionAt length mismatch %d vs %d", len(scores), len(labels)))
	}
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("eval: DetectionAt frac %v out of (0,1]", frac))
	}
	n := len(scores)
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(n)))
	order := rankOrder(scores)
	totalPos, caught := 0, 0
	for _, v := range labels {
		if v {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0
	}
	for _, i := range order[:k] {
		if labels[i] {
			caught++
		}
	}
	return float64(caught) / float64(totalPos)
}

// DetectionAtLength returns the fraction of failed pipes caught when
// inspecting ranked pipes until frac of the total network length has been
// covered — the budget formulation utilities actually plan with, since
// inspection cost scales with length.
func DetectionAtLength(scores []float64, labels []bool, lengths []float64, frac float64) float64 {
	if len(scores) != len(labels) || len(scores) != len(lengths) {
		panic("eval: DetectionAtLength length mismatch")
	}
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("eval: DetectionAtLength frac %v out of (0,1]", frac))
	}
	total := 0.0
	totalPos := 0
	for i, v := range labels {
		total += lengths[i]
		if v {
			totalPos++
		}
	}
	if totalPos == 0 || total <= 0 {
		return 0
	}
	budget := frac * total
	used := 0.0
	caught := 0
	for _, i := range rankOrder(scores) {
		if used >= budget {
			break
		}
		used += lengths[i]
		if labels[i] {
			caught++
		}
	}
	return float64(caught) / float64(totalPos)
}

// PartialDetectionArea integrates the detection curve from 0 to frac of
// inspected pipes (trapezoidal over the exact step curve). The result is in
// [0, frac]; the paper's "AUC at 1 % inspected" column is this quantity.
// Reported values are often quoted in basis points (1e-4).
func PartialDetectionArea(scores []float64, labels []bool, frac float64) float64 {
	if len(scores) != len(labels) {
		panic("eval: PartialDetectionArea length mismatch")
	}
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("eval: PartialDetectionArea frac %v out of (0,1]", frac))
	}
	n := len(scores)
	if n == 0 {
		return 0
	}
	totalPos := 0
	for _, v := range labels {
		if v {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0
	}
	order := rankOrder(scores)
	kMax := frac * float64(n)
	area := 0.0
	caught := 0
	for k, i := range order {
		lo := float64(k)
		hi := float64(k + 1)
		if lo >= kMax {
			break
		}
		if hi > kMax {
			hi = kMax
		}
		// Detection level during (lo, hi] is caught-after-this-pipe for
		// the step at the pipe boundary; use the level after inspecting
		// pipe k (conservative step integration).
		if labels[i] {
			caught++
		}
		level := float64(caught) / float64(totalPos)
		area += level * (hi - lo) / float64(n)
	}
	return area
}

// ROCCurve returns the ROC curve sub-sampled to at most points+1 points.
func ROCCurve(scores []float64, labels []bool, points int) []CurvePoint {
	if len(scores) != len(labels) {
		panic("eval: ROCCurve length mismatch")
	}
	if points < 1 {
		points = 100
	}
	totalPos, totalNeg := 0, 0
	for _, v := range labels {
		if v {
			totalPos++
		} else {
			totalNeg++
		}
	}
	out := []CurvePoint{{0, 0}}
	if totalPos == 0 || totalNeg == 0 {
		return append(out, CurvePoint{1, 1})
	}
	tp, fp := 0, 0
	next := 1
	for _, i := range rankOrder(scores) {
		if labels[i] {
			tp++
		} else {
			fp++
		}
		for next <= points && fp*points >= next*totalNeg {
			out = append(out, CurvePoint{
				X: float64(fp) / float64(totalNeg),
				Y: float64(tp) / float64(totalPos),
			})
			next++
		}
	}
	if last := out[len(out)-1]; last.X != 1 || last.Y != 1 {
		out = append(out, CurvePoint{1, 1})
	}
	return out
}

