package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunCtxUncancelledMatchesRun pins the cancellation contract: with a
// live context RunCtx covers every index exactly once (like Run) and
// returns nil.
func TestRunCtxUncancelledMatchesRun(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 17, 100} {
			p := New(workers)
			hits := make([]int32, n)
			err := p.RunCtx(context.Background(), n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestRunCtxPreCancelledSkipsAllChunks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		err := New(workers).RunCtx(ctx, 50, func(_, lo, hi int) { calls.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if calls.Load() != 0 {
			t.Fatalf("workers=%d: %d chunks ran on a dead context", workers, calls.Load())
		}
	}
}

func TestForEachDynamicCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var processed atomic.Int32
	const n = 10000
	err := New(4).ForEachDynamicCtx(ctx, n, func(i int) {
		if processed.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if got := processed.Load(); got >= n {
		t.Fatalf("all %d items ran despite cancellation", got)
	}
}

func TestForEachDynamicCtxUncancelledCoversAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		hits := make([]int32, 333)
		err := New(workers).ForEachDynamicCtx(context.Background(), len(hits), func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}
