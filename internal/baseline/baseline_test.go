package baseline

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/stats"
	"repro/internal/synthetic"
)

// trainTest builds a small synthetic region and its train/test feature sets
// once for the whole package test run.
var cachedTrain, cachedTest *feature.Set

func sets(t *testing.T) (*feature.Set, *feature.Set) {
	t.Helper()
	if cachedTrain != nil {
		return cachedTrain, cachedTest
	}
	cfg, err := synthetic.RegionA(77).Scaled(0.12)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	split, err := dataset.PaperSplit(net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := feature.NewBuilder(net, feature.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cachedTrain, err = b.TrainSet(split)
	if err != nil {
		t.Fatal(err)
	}
	cachedTest, err = b.TestSet(split)
	if err != nil {
		t.Fatal(err)
	}
	return cachedTrain, cachedTest
}

// auc computes test AUC for a fitted model.
func auc(t *testing.T, m core.Model, train, test *feature.Set) float64 {
	t.Helper()
	if err := m.Fit(train); err != nil {
		t.Fatalf("%s fit: %v", m.Name(), err)
	}
	scores, err := m.Scores(test)
	if err != nil {
		t.Fatalf("%s scores: %v", m.Name(), err)
	}
	if len(scores) != test.Len() {
		t.Fatalf("%s: %d scores for %d rows", m.Name(), len(scores), test.Len())
	}
	return testAUC(scores, test.Label)
}

// testAUC is a reference AUC implementation (quadratic, test-only).
func testAUC(scores []float64, labels []bool) float64 {
	var wins, ties, pairs float64
	for i := range scores {
		if !labels[i] {
			continue
		}
		for j := range scores {
			if labels[j] {
				continue
			}
			pairs++
			switch {
			case scores[i] > scores[j]:
				wins++
			case scores[i] == scores[j]:
				ties++
			}
		}
	}
	if pairs == 0 {
		return 0.5
	}
	return (wins + ties/2) / pairs
}

func TestLogisticBeatsRandomAndIsCalibratedEnough(t *testing.T) {
	train, test := sets(t)
	m := NewLogistic(LogisticConfig{})
	a := auc(t, m, train, test)
	if a < 0.6 {
		t.Fatalf("logistic AUC = %v", a)
	}
	scores, err := m.Scores(test)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("probability score %v out of range", s)
		}
	}
	// Mean predicted probability should be near the base rate.
	mean := stats.Mean(scores)
	base := float64(test.Positives()) / float64(test.Len())
	if mean < base/3 || mean > base*3 {
		t.Fatalf("mean prob %v vs base rate %v badly calibrated", mean, base)
	}
}

func TestLogisticSeparableSanity(t *testing.T) {
	// One informative feature; logistic must find it.
	rng := stats.NewRNG(5)
	s := &feature.Set{Names: []string{"f"}}
	for i := 0; i < 600; i++ {
		pos := rng.Bernoulli(0.3)
		v := rng.Norm()
		if pos {
			v += 3
		}
		s.X = append(s.X, []float64{v})
		s.Label = append(s.Label, pos)
		s.Age = append(s.Age, 1)
		s.LengthM = append(s.LengthM, 1)
		s.PipeIdx = append(s.PipeIdx, i)
		s.Year = append(s.Year, 2000)
	}
	m := NewLogistic(LogisticConfig{})
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	if m.W[0] <= 0.5 {
		t.Fatalf("coefficient %v should be clearly positive", m.W[0])
	}
	scores, err := m.Scores(s)
	if err != nil {
		t.Fatal(err)
	}
	if a := testAUC(scores, s.Label); a < 0.95 {
		t.Fatalf("separable AUC = %v", a)
	}
}

func TestLogisticErrors(t *testing.T) {
	m := NewLogistic(LogisticConfig{})
	if err := m.Fit(nil); err == nil {
		t.Fatal("nil train must error")
	}
	if _, err := m.Scores(&feature.Set{}); err == nil {
		t.Fatal("unfitted Scores must error")
	}
	train, _ := sets(t)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	bad := &feature.Set{X: [][]float64{{1}}, Label: []bool{true}, Age: []float64{1}, LengthM: []float64{1}, PipeIdx: []int{0}, Year: []int{0}, Names: []string{"x"}}
	if _, err := m.Scores(bad); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestCoxBeatsAgeHeuristic(t *testing.T) {
	train, test := sets(t)
	cox := auc(t, NewCox(CoxConfig{}), train, test)
	age := auc(t, NewHeuristic(ByAge, 1), train, test)
	if cox < 0.6 {
		t.Fatalf("Cox AUC = %v", cox)
	}
	if cox <= age-0.02 {
		t.Fatalf("Cox (%v) should not trail the bare age heuristic (%v)", cox, age)
	}
}

func TestCoxRecovefsCovariateSign(t *testing.T) {
	// Build survival-ish data where feature 0 doubles the hazard.
	rng := stats.NewRNG(9)
	s := &feature.Set{Names: []string{"bad"}}
	row := 0
	for pipe := 0; pipe < 400; pipe++ {
		bad := rng.Bernoulli(0.5)
		x := 0.0
		if bad {
			x = 1
		}
		failed := false
		for year := 0; year < 8 && !failed; year++ {
			age := float64(20 + year)
			p := 0.02
			if bad {
				p = 0.08
			}
			failed = rng.Bernoulli(p)
			s.X = append(s.X, []float64{x})
			s.Label = append(s.Label, failed)
			s.Age = append(s.Age, age)
			s.LengthM = append(s.LengthM, 100)
			s.PipeIdx = append(s.PipeIdx, pipe)
			s.Year = append(s.Year, 2000+year)
			row++
		}
	}
	m := NewCox(CoxConfig{})
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	if m.Beta[0] <= 0.3 {
		t.Fatalf("Cox beta = %v, want clearly positive (true log HR = %v)", m.Beta[0], math.Log(4))
	}
}

func TestCoxErrors(t *testing.T) {
	m := NewCox(CoxConfig{})
	if err := m.Fit(nil); err == nil {
		t.Fatal("nil train must error")
	}
	if _, err := m.Scores(&feature.Set{}); err == nil {
		t.Fatal("unfitted Scores must error")
	}
	// No events.
	s := &feature.Set{Names: []string{"x"}}
	for i := 0; i < 10; i++ {
		s.X = append(s.X, []float64{1})
		s.Label = append(s.Label, false)
		s.Age = append(s.Age, float64(i))
		s.LengthM = append(s.LengthM, 1)
		s.PipeIdx = append(s.PipeIdx, i)
		s.Year = append(s.Year, 2000)
	}
	if err := m.Fit(s); err == nil {
		t.Fatal("no-event train must error")
	}
	for i := range s.Label {
		s.Label[i] = true
	}
	if err := m.Fit(s); err == nil {
		t.Fatal("all-event train must error")
	}
}

func TestWeibullFindsAging(t *testing.T) {
	train, test := sets(t)
	m := NewWeibullNHPP(WeibullConfig{})
	a := auc(t, m, train, test)
	if a < 0.58 {
		t.Fatalf("Weibull AUC = %v", a)
	}
	if m.Beta <= 1 {
		t.Fatalf("fitted shape %v should exceed 1 on an ageing network", m.Beta)
	}
	if m.Alpha <= 0 {
		t.Fatalf("alpha = %v", m.Alpha)
	}
}

func TestWeibullForecast(t *testing.T) {
	train, test := sets(t)
	m := NewWeibullNHPP(WeibullConfig{})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(test, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != test.Len() {
		t.Fatalf("forecast rows %d", len(fc))
	}
	scores, err := m.Scores(test)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range fc {
		if len(row) != 5 {
			t.Fatalf("horizon %d", len(row))
		}
		// Year-1 forecast must equal the model's score.
		if math.Abs(row[0]-scores[i]) > 1e-12 {
			t.Fatalf("forecast[0] %v != score %v", row[0], scores[i])
		}
		// With fitted shape > 1, expected counts must not decrease.
		for h := 1; h < 5; h++ {
			if row[h] < row[h-1]-1e-12 {
				t.Fatalf("forecast not monotone for ageing process: %v", row)
			}
		}
	}
	if _, err := m.Forecast(test, 0); err == nil {
		t.Fatal("horizon 0 must error")
	}
	unfit := NewWeibullNHPP(WeibullConfig{})
	if _, err := unfit.Forecast(test, 3); err == nil {
		t.Fatal("unfitted forecast must error")
	}
}

func TestWeibullErrors(t *testing.T) {
	m := NewWeibullNHPP(WeibullConfig{})
	if err := m.Fit(nil); err == nil {
		t.Fatal("nil train must error")
	}
	if _, err := m.Scores(&feature.Set{}); err == nil {
		t.Fatal("unfitted Scores must error")
	}
}

func TestAgeBasisDerivative(t *testing.T) {
	// Finite-difference check of dg/dβ.
	for _, a := range []float64{0, 1, 7, 40} {
		for _, b := range []float64{0.8, 1, 2.3} {
			_, dg := ageBasis(a, b)
			const h = 1e-6
			g1, _ := ageBasis(a, b+h)
			g0, _ := ageBasis(a, b-h)
			fd := (g1 - g0) / (2 * h)
			if math.Abs(fd-dg) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("dg/db mismatch at a=%v b=%v: analytic %v vs fd %v", a, b, dg, fd)
			}
		}
	}
}

func TestAgeRateModelsFitAndRank(t *testing.T) {
	train, test := sets(t)
	for _, form := range []AgeRateForm{TimeExponential, TimePower, TimeLinear} {
		m := NewAgeRateModel(form)
		a := auc(t, m, train, test)
		if a < 0.52 {
			t.Errorf("%s AUC = %v; should at least beat random", form, a)
		}
		// Rates must be non-negative everywhere.
		for age := 0.0; age < 120; age += 10 {
			if m.Rate(age) < 0 {
				t.Errorf("%s rate(%v) negative", form, age)
			}
		}
	}
}

func TestAgeRateIncreasesWithAgeOnAgingNetwork(t *testing.T) {
	train, _ := sets(t)
	m := NewAgeRateModel(TimeExponential)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if m.B <= 0 {
		t.Fatalf("time-exponential slope %v should be positive", m.B)
	}
	if m.Rate(80) <= m.Rate(10) {
		t.Fatal("rate must increase with age")
	}
}

func TestAgeRateErrors(t *testing.T) {
	m := NewAgeRateModel(TimeLinear)
	if err := m.Fit(nil); err == nil {
		t.Fatal("nil train must error")
	}
	if _, err := m.Scores(&feature.Set{}); err == nil {
		t.Fatal("unfitted Scores must error")
	}
	if NewAgeRateModel(AgeRateForm(99)).Name() == "" {
		t.Fatal("unknown form must still render a name")
	}
}

func TestHeuristics(t *testing.T) {
	train, test := sets(t)
	ageAUC := auc(t, NewHeuristic(ByAge, 0), train, test)
	if ageAUC < 0.52 {
		t.Fatalf("age heuristic AUC = %v; ageing network must reward age", ageAUC)
	}
	lenAUC := auc(t, NewHeuristic(ByLength, 0), train, test)
	if lenAUC < 0.52 {
		t.Fatalf("length heuristic AUC = %v", lenAUC)
	}
	randAUC := auc(t, NewHeuristic(Random, 123), train, test)
	if math.Abs(randAUC-0.5) > 0.06 {
		t.Fatalf("random heuristic AUC = %v, want about 0.5", randAUC)
	}
}

func TestHeuristicErrors(t *testing.T) {
	m := NewHeuristic(ByAge, 0)
	if err := m.Fit(nil); err == nil {
		t.Fatal("nil train must error")
	}
	if _, err := m.Scores(&feature.Set{}); err == nil {
		t.Fatal("unfitted Scores must error")
	}
	bad := &Heuristic{Kind: HeuristicKind(42), fitted: true}
	if _, err := bad.Scores(&feature.Set{}); err == nil {
		t.Fatal("unknown kind must error")
	}
	if bad.Name() == "" {
		t.Fatal("unknown kind must render a name")
	}
}

func TestModelsProduceStableRankings(t *testing.T) {
	// Determinism: fitting twice gives identical rankings.
	train, test := sets(t)
	for _, mk := range []func() core.Model{
		func() core.Model { return NewLogistic(LogisticConfig{}) },
		func() core.Model { return NewCox(CoxConfig{}) },
		func() core.Model { return NewWeibullNHPP(WeibullConfig{}) },
		func() core.Model { return NewAgeRateModel(TimePower) },
	} {
		m1, m2 := mk(), mk()
		if err := m1.Fit(train); err != nil {
			t.Fatal(err)
		}
		if err := m2.Fit(train); err != nil {
			t.Fatal(err)
		}
		s1, err := m1.Scores(test)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := m2.Scores(test)
		if err != nil {
			t.Fatal(err)
		}
		r1 := ranking(s1)
		r2 := ranking(s2)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("%s ranking not deterministic", m1.Name())
			}
		}
	}
}

func ranking(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}
