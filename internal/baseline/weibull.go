package baseline

import (
	"fmt"
	"math"

	"repro/internal/feature"
	"repro/internal/linalg"
)

// WeibullConfig tunes the Weibull/NHPP baseline.
type WeibullConfig struct {
	// Iterations is the number of gradient-ascent steps (default 400).
	Iterations int
	// LearningRate is the initial step size (default 0.05, decayed).
	LearningRate float64
	// Ridge penalizes the covariate coefficients (default 1e-3).
	Ridge float64
}

func (c *WeibullConfig) fillDefaults() {
	if c.Iterations <= 0 {
		c.Iterations = 400
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.Ridge <= 0 {
		c.Ridge = 1e-3
	}
}

// WeibullNHPP models pipe failures as a non-homogeneous Poisson process
// with Weibull (time-power) intensity modulated multiplicatively by
// covariates:
//
//	λ(t, x) = α·β·t^(β−1) · exp(θᵀx)
//
// The expected failure count of a pipe aged a over the next year is
// m = α((a+1)^β − a^β)·exp(θᵀx); the model is fitted by maximizing the
// Poisson likelihood of the pipe-year counts by projected gradient ascent
// on (log α, log β, θ). β > 1 corresponds to deteriorating pipes.
type WeibullNHPP struct {
	cfg WeibullConfig
	// Alpha and Beta are the Weibull process parameters.
	Alpha, Beta float64
	// Theta are the covariate coefficients.
	Theta  []float64
	fitted bool
}

// NewWeibullNHPP returns an unfitted model.
func NewWeibullNHPP(cfg WeibullConfig) *WeibullNHPP {
	cfg.fillDefaults()
	return &WeibullNHPP{cfg: cfg}
}

// Name implements core.Model.
func (m *WeibullNHPP) Name() string { return "Weibull" }

// ageBasis returns g(a) = (a+1)^β − a^β and its derivative with respect
// to β.
func ageBasis(a, beta float64) (g, dgdb float64) {
	ap := a + 1
	pa := 0.0
	la := 0.0
	if a > 0 {
		pa = math.Pow(a, beta)
		la = math.Log(a)
	}
	pap := math.Pow(ap, beta)
	lap := math.Log(ap)
	g = pap - pa
	dgdb = pap*lap - pa*la
	return g, dgdb
}

// Fit implements core.Model.
func (m *WeibullNHPP) Fit(train *feature.Set) error {
	if train == nil || train.Len() == 0 {
		return fmt.Errorf("%s: empty training set", m.Name())
	}
	if train.Positives() == 0 {
		return fmt.Errorf("%s: no failures in training window", m.Name())
	}
	n, d := train.Len(), train.Dim()
	logAlpha := math.Log(float64(train.Positives()) / float64(n))
	logBeta := math.Log(1.5)
	theta := make([]float64, d)

	y := make([]float64, n)
	for i, v := range train.Label {
		if v {
			y[i] = 1
		}
	}

	gTheta := make([]float64, d)
	for iter := 0; iter < m.cfg.Iterations; iter++ {
		alpha := math.Exp(logAlpha)
		beta := math.Exp(logBeta)
		var gA, gB float64
		for j := range gTheta {
			gTheta[j] = 0
		}
		for i := 0; i < n; i++ {
			eta := linalg.Dot(theta, train.X[i])
			if eta > 30 {
				eta = 30
			}
			g, dgdb := ageBasis(train.Age[i], beta)
			mu := alpha * g * math.Exp(eta)
			if mu > 50 {
				mu = 50 // guard against transient blow-ups early in the ascent
			}
			r := y[i] - mu
			gA += r
			if g > 0 {
				gB += r * (dgdb / g) * beta
			}
			linalg.Axpy(r, train.X[i], gTheta)
		}
		for j := range gTheta {
			gTheta[j] -= m.cfg.Ridge * float64(n) * theta[j]
		}
		lr := m.cfg.LearningRate / (1 + 0.02*float64(iter)) / float64(n)
		logAlpha += lr * gA * 4 // the scalar params get a larger relative step
		logBeta += lr * gB * 4
		linalg.Axpy(lr, gTheta, theta)
		// Keep beta in a sane range.
		if logBeta > math.Log(6) {
			logBeta = math.Log(6)
		}
		if logBeta < math.Log(0.2) {
			logBeta = math.Log(0.2)
		}
	}
	m.Alpha = math.Exp(logAlpha)
	m.Beta = math.Exp(logBeta)
	m.Theta = theta
	m.fitted = true
	return nil
}

// Forecast projects each test pipe's expected failure count over the next
// horizon years: element [i][h] is the expected count of pipe i in year
// h+1 from its test age. This is the long-range renewal-planning view a
// fitted deterioration process enables beyond single-year ranking.
func (m *WeibullNHPP) Forecast(test *feature.Set, horizon int) ([][]float64, error) {
	if !m.fitted {
		return nil, fmt.Errorf("%s: %w", m.Name(), ErrNotFitted)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("%s: horizon %d must be >= 1", m.Name(), horizon)
	}
	if test.Dim() != len(m.Theta) {
		return nil, fmt.Errorf("%s: test dim %d != model dim %d", m.Name(), test.Dim(), len(m.Theta))
	}
	out := make([][]float64, test.Len())
	for i, row := range test.X {
		eta := linalg.Dot(m.Theta, row)
		if eta > 30 {
			eta = 30
		}
		mult := m.Alpha * math.Exp(eta)
		out[i] = make([]float64, horizon)
		for h := 0; h < horizon; h++ {
			g, _ := ageBasis(test.Age[i]+float64(h), m.Beta)
			out[i][h] = mult * g
		}
	}
	return out, nil
}

// Scores implements core.Model; scores are expected next-year failure
// counts m(a, x).
func (m *WeibullNHPP) Scores(test *feature.Set) ([]float64, error) {
	if !m.fitted {
		return nil, fmt.Errorf("%s: %w", m.Name(), ErrNotFitted)
	}
	if test.Dim() != len(m.Theta) {
		return nil, fmt.Errorf("%s: test dim %d != model dim %d", m.Name(), test.Dim(), len(m.Theta))
	}
	out := make([]float64, test.Len())
	for i, row := range test.X {
		eta := linalg.Dot(m.Theta, row)
		if eta > 30 {
			eta = 30
		}
		g, _ := ageBasis(test.Age[i], m.Beta)
		out[i] = m.Alpha * g * math.Exp(eta)
	}
	return out, nil
}
