package serve

// Tests for the snapshot-and-cache read path: strict parameter parsing,
// explicit-zero plan rejection, ETag/304 handling, byte-identity with
// the per-request implementation the snapshots replaced, the
// zero-allocation cache-hit gate, and concurrent read-while-training
// behavior (run under -race by `make verify`).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/plan"
)

func TestRankingRejectsMalformedTop(t *testing.T) {
	_, ts := newTestServer(t)
	// Sscanf-style parsing accepted trailing garbage ("5x" scanned as 5);
	// strconv.Atoi must 400 every one of these.
	for _, bad := range []string{"5x", "0x5", "+5x", "%205", "5.0"} {
		var e map[string]any
		code := getJSON(t, ts.URL+"/api/models/Heuristic-Age/ranking?top="+bad, &e)
		if code != 400 {
			t.Errorf("top=%q: status %d, want 400", bad, code)
		}
	}
	// Plain integers still parse ("+3" is excluded: '+' is an encoded
	// space in a query string, so it reads as " 3" and is rightly bad).
	for _, good := range []string{"3", "%2B3"} {
		var rows []map[string]any
		if code := getJSON(t, ts.URL+"/api/models/Heuristic-Age/ranking?top="+good, &rows); code != 200 || len(rows) != 3 {
			t.Errorf("top=%q: status %d rows %d", good, code, len(rows))
		}
	}
}

func TestHotspotsRejectsMalformedMin(t *testing.T) {
	_, ts := newTestServer(t)
	for _, bad := range []string{"2x", "1e1", "%202", "0x2"} {
		if code := getJSON(t, ts.URL+"/api/hotspots?min="+bad, nil); code != 400 {
			t.Errorf("min=%q: status %d, want 400", bad, code)
		}
	}
}

func TestPlanExplicitZeroCostsRejected(t *testing.T) {
	_, ts := newTestServer(t)
	for _, req := range []map[string]any{
		{"model": "Logistic", "budget_km": 3, "inspection_per_km": 0},
		{"model": "Logistic", "budget_km": 3, "failure_cost": 0},
	} {
		var e map[string]any
		if code := postJSON(t, ts.URL+"/api/plan", req, &e); code != 400 {
			t.Fatalf("explicit zero %v: status %d, want 400", req, code)
		}
		if !strings.Contains(e["error"].(string), "explicitly 0") {
			t.Fatalf("error body %v", e)
		}
	}
	// Omitting the fields still prices with the defaults, and explicit
	// non-zero values are honored.
	var resp map[string]any
	if code := postJSON(t, ts.URL+"/api/plan",
		map[string]any{"model": "Logistic", "budget_km": 3, "inspection_per_km": 9000, "failure_cost": 120000},
		&resp); code != 200 {
		t.Fatalf("explicit non-zero costs: status %d: %v", code, resp)
	}
}

// TestRankingByteIdentityWithPerRequestPath pins the tentpole's
// compatibility contract: the snapshot-served body is byte-identical to
// what the old per-request implementation (TopIDs + rankIdx lookup +
// calibrator.Prob per row) produced.
func TestRankingByteIdentityWithPerRequestPath(t *testing.T) {
	s, ts := newTestServer(t)
	for _, top := range []int{1, 7, 50, 1 << 20} {
		resp, err := http.Get(fmt.Sprintf("%s/api/models/Logistic/ranking?top=%d", ts.URL, top))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("top=%d status %d", top, resp.StatusCode)
		}

		tm, err := s.get(context.Background(), "Logistic")
		if err != nil {
			t.Fatal(err)
		}
		ids := tm.ranking.TopIDs(top)
		legacy := make([]rankedPipe, 0, len(ids))
		for i, id := range ids {
			rp := rankedPipe{Rank: i + 1, PipeID: id, Score: tm.ranking.Scores[tm.rankIdx[id]]}
			if tm.calibrator != nil {
				rp.FailProb = tm.calibrator.Prob(rp.Score)
			}
			legacy = append(legacy, rp)
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(legacy); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want.Bytes()) {
			t.Fatalf("top=%d: snapshot body diverges from per-request encoding\ngot:  %.120s\nwant: %.120s",
				top, body, want.Bytes())
		}
		if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(body)) {
			t.Fatalf("Content-Length %q for %d-byte body", cl, len(body))
		}
	}
}

func TestRankingETagAnd304(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/api/models/Heuristic-Age/ranking?top=5"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("Etag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("missing/unquoted ETag %q", etag)
	}

	// Same URL again: byte-identical replay, same validator.
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(body1, body2) || resp.Header.Get("Etag") != etag {
		t.Fatal("replayed response differs from first encoding")
	}

	// Conditional request: 304, no body.
	req, _ := http.NewRequest("GET", url, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	notBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status %d, want 304", resp.StatusCode)
	}
	if len(notBody) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(notBody))
	}
	if resp.Header.Get("Etag") != etag {
		t.Fatalf("304 ETag %q, want %q", resp.Header.Get("Etag"), etag)
	}

	// A stale validator gets the full body again.
	req.Header.Set("If-None-Match", `"r-stale"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(body1, body3) {
		t.Fatalf("stale validator: status %d", resp.StatusCode)
	}

	// Different top values carry the same snapshot validator: the ETag
	// versions the model's ranking, per-URL.
	resp, err = http.Get(ts.URL + "/api/models/Heuristic-Age/ranking?top=9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Etag") != etag {
		t.Fatalf("top=9 ETag %q, want snapshot tag %q", resp.Header.Get("Etag"), etag)
	}
}

func TestCohortsAndHotspotsCached(t *testing.T) {
	s, ts := newTestServer(t)
	hits0 := cacheCounter("hits")
	for i := 0; i < 2; i++ {
		if code := getJSON(t, ts.URL+"/api/cohorts?by=age", nil); code != 200 {
			t.Fatalf("cohorts status %d", code)
		}
		if code := getJSON(t, ts.URL+"/api/hotspots?min=1", nil); code != 200 {
			t.Fatalf("hotspots status %d", code)
		}
	}
	// Default and explicit material share one canonical entry.
	if code := getJSON(t, ts.URL+"/api/cohorts", nil); code != 200 {
		t.Fatal("default cohorts failed")
	}
	if code := getJSON(t, ts.URL+"/api/cohorts?by=material", nil); code != 200 {
		t.Fatal("material cohorts failed")
	}
	if got := cacheCounter("hits") - hits0; got < 3 {
		t.Fatalf("response cache hits = %d, want >= 3 (repeat cohorts, repeat hotspots, canonical material)", got)
	}
	keys := s.def.cache.Keys()
	for _, k := range keys {
		if strings.HasPrefix(k, "cohorts\x00") && strings.HasSuffix(k, "\x00") {
			t.Fatalf("non-canonical empty cohort key cached: %q", keys)
		}
	}
}

// TestRankingCacheHitZeroAlloc is the `make verify` allocation gate for
// the serve fast path: once a ranking response is cached, replaying it
// (snapshot load, key build, LRU hit, header set, body write) must not
// allocate. Run outside -race, which instruments allocations.
func TestRankingCacheHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc gate runs without -race: race instrumentation and sync.Pool randomization inflate counts")
	}
	s, ts := newTestServer(t)
	defer ts.Close()
	if _, err := s.get(context.Background(), "Heuristic-Age"); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/api/models/Heuristic-Age/ranking?top=25", nil)
	req.SetPathValue("name", "Heuristic-Age")
	w := &nopWriter{h: make(http.Header)}
	s.handleRanking(w, req) // warm: fill the cache, size the pools
	allocs := testing.AllocsPerRun(500, func() {
		s.handleRanking(w, req)
	})
	if allocs != 0 {
		t.Fatalf("ranking cache hit allocated %.1f times per request, want 0", allocs)
	}

	// The 304 path must be allocation-free too.
	tm, _ := s.get(context.Background(), "Heuristic-Age")
	req.Header.Set("If-None-Match", tm.etag)
	allocs = testing.AllocsPerRun(500, func() {
		s.handleRanking(w, req)
	})
	if allocs != 0 {
		t.Fatalf("ranking 304 path allocated %.1f times per request, want 0", allocs)
	}
}

func cacheCounter(name string) int64 {
	return obs.Default().Counter("respcache.serve." + name).Value()
}

// post is a goroutine-safe POST helper (no t.Fatal): status plus body.
func post(url, body string) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// TestConcurrentReadsDuringColdTrain hammers /ranking and /plan for a
// warm model from many goroutines while a cold model trains and
// publishes, asserting every read sees a complete, consistent snapshot
// (the -race run in `make verify` additionally proves no torn reads).
func TestConcurrentReadsDuringColdTrain(t *testing.T) {
	_, ts := newTestServer(t)
	// Warm one model so readers have something to hammer.
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train", nil, nil); code != 200 {
		t.Fatal("warmup train failed")
	}
	var warmBody []byte
	{
		resp, err := http.Get(ts.URL + "/api/models/Heuristic-Age/ranking?top=10")
		if err != nil {
			t.Fatal(err)
		}
		warmBody, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
	}

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers*2+1)

	// Cold train runs concurrently with the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, body, err := post(ts.URL+"/api/models/Heuristic-Length/train", "")
		if err != nil || code != 200 {
			errs <- fmt.Sprintf("cold train status %d err %v: %s", code, err, body)
		}
	}()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Get(ts.URL + "/api/models/Heuristic-Age/ranking?top=10")
				if err != nil {
					errs <- err.Error()
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 || !bytes.Equal(body, warmBody) {
					errs <- fmt.Sprintf("torn ranking read: status %d body %.80s", resp.StatusCode, body)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				code, body, err := post(ts.URL+"/api/plan", `{"model":"Heuristic-Age","budget_km":3}`)
				if err != nil || code != 200 {
					errs <- fmt.Sprintf("plan status %d err %v: %.80s", code, err, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestFailedTrainPopulatesNothing injects training failures and asserts
// concurrent ranking requests all fail cleanly with no model published
// and no response-cache entry left behind.
func TestFailedTrainPopulatesNothing(t *testing.T) {
	s, ts := newTestServer(t)
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		return nil, errors.New("injected cold-train failure")
	}
	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/api/models/RankBoost/ranking?top=5")
			if err != nil {
				errs <- err.Error()
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 503 {
				errs <- fmt.Sprintf("failed-train ranking status %d, want 503", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if _, ok := (*s.def.models.Load())["RankBoost"]; ok {
		t.Fatal("failed train published a model snapshot")
	}
	for _, k := range s.def.cache.Keys() {
		if strings.Contains(k, "RankBoost") {
			t.Fatalf("failed train left cache entry %q", k)
		}
	}
}

// TestPlanRejectsNegativeBudgets pins the validation fix: negative
// budget dimensions used to read as "unconstrained" (the planner treats
// <= 0 as unset), silently planning against the remaining dimensions or
// none at all. They are now 400s.
func TestPlanRejectsNegativeBudgets(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"model":"Heuristic-Age","budget_km":-4}`,
		`{"model":"Heuristic-Age","budget_km":3,"max_pipes":-1}`,
		`{"model":"Heuristic-Age","budget_km":3,"max_spend":-5}`,
	} {
		code, resp, err := post(ts.URL+"/api/plan", body)
		if err != nil {
			t.Fatal(err)
		}
		if code != 400 || !strings.Contains(string(resp), "negative") {
			t.Fatalf("body %s: status %d resp %s, want 400 naming the negative field", body, code, resp)
		}
	}
}

// TestPlanMaxSpend covers the previously unreachable Budget.MaxSpend
// dimension: explicit zero is rejected like the cost parameters, and a
// positive cap both plans successfully and actually constrains spend.
func TestPlanMaxSpend(t *testing.T) {
	_, ts := newTestServer(t)
	code, resp, err := post(ts.URL+"/api/plan", `{"model":"Heuristic-Age","budget_km":3,"max_spend":0}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != 400 || !strings.Contains(string(resp), "explicitly 0") {
		t.Fatalf("explicit-zero max_spend: status %d resp %s", code, resp)
	}

	const cap = 11000.0
	var out struct {
		InspectionCost float64  `json:"inspection_cost"`
		Pipes          []string `json:"pipes"`
	}
	code, body, err := post(ts.URL+"/api/plan", fmt.Sprintf(`{"model":"Heuristic-Age","max_spend":%g}`, cap))
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 {
		t.Fatalf("max_spend-only plan: status %d resp %s", code, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.InspectionCost > cap {
		t.Fatalf("inspection cost %v exceeds max_spend %v", out.InspectionCost, cap)
	}
	if len(out.Pipes) == 0 {
		t.Fatal("spend-capped plan selected nothing")
	}
}

// TestPlanByteIdentityWithGreedy pins the tentpole's compatibility
// contract end to end: across every budget dimension, combinations and
// custom cost models, the HTTP response bytes match what the original
// per-request plan.Greedy implementation encodes from the same snapshot.
func TestPlanByteIdentityWithGreedy(t *testing.T) {
	s, ts := newTestServer(t)
	tm, err := s.get(context.Background(), "Logistic")
	if err != nil {
		t.Fatal(err)
	}
	defaults := plan.CostModel{InspectionPerKM: defaultInspectionPerKM, FailureCost: defaultFailureCost}
	cases := []struct {
		body string
		cm   plan.CostModel
		b    plan.Budget
	}{
		{`{"model":"Logistic","budget_km":3}`, defaults, plan.Budget{MaxLengthM: 3000}},
		{`{"model":"Logistic","budget_km":2,"max_pipes":5}`, defaults, plan.Budget{MaxLengthM: 2000, MaxCount: 5}},
		{`{"model":"Logistic","max_pipes":7}`, defaults, plan.Budget{MaxCount: 7}},
		{`{"model":"Logistic","max_spend":20000}`, defaults, plan.Budget{MaxSpend: 20000}},
		{`{"model":"Logistic","budget_km":2.5,"max_pipes":3,"max_spend":12345.5}`, defaults,
			plan.Budget{MaxLengthM: 2500, MaxCount: 3, MaxSpend: 12345.5}},
		{`{"model":"Logistic","budget_km":4,"max_spend":15000,"inspection_per_km":9000,"failure_cost":120000}`,
			plan.CostModel{InspectionPerKM: 9000, FailureCost: 120000},
			plan.Budget{MaxLengthM: 4000, MaxSpend: 15000}},
	}
	for _, tc := range cases {
		code, got, err := post(ts.URL+"/api/plan", tc.body)
		if err != nil {
			t.Fatal(err)
		}
		if code != 200 {
			t.Fatalf("body %s: status %d resp %s", tc.body, code, got)
		}
		p, err := plan.Greedy(tm.cands, tc.cm, tc.b)
		if err != nil {
			t.Fatalf("body %s: greedy oracle: %v", tc.body, err)
		}
		resp := planResponse{
			Model:             "Logistic",
			TotalKM:           p.TotalLengthM / 1000,
			InspectionCost:    p.InspectionCost,
			ExpectedPrevented: p.ExpectedPrevented,
			ExpectedNet:       p.ExpectedNet,
		}
		if len(p.Selected) > 0 {
			resp.Pipes = p.IDs()
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(resp); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("body %s: served plan diverges from plan.Greedy\ngot:  %.200s\nwant: %.200s", tc.body, got, want.Bytes())
		}
	}
}

// TestPlanCachedReplayETagAnd304: repeat plans replay from the response
// cache with a stable body ETag, textual aliases of one request share
// the entry, and If-None-Match turns into an empty 304.
func TestPlanCachedReplayETagAnd304(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/api/plan"
	body := `{"model":"Heuristic-Age","budget_km":3}`
	do := func(b, inm string) (*http.Response, []byte) {
		req, _ := http.NewRequest("POST", url, strings.NewReader(b))
		req.Header.Set("Content-Type", "application/json")
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, rb
	}

	resp1, body1 := do(body, "")
	if resp1.StatusCode != 200 {
		t.Fatalf("first plan: status %d resp %s", resp1.StatusCode, body1)
	}
	etag := resp1.Header.Get("Etag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("missing/unquoted plan ETag %q", etag)
	}

	hits0 := obs.Default().Counter("serve.plan.cache_hits").Value()
	resp2, body2 := do(body, "")
	if resp2.StatusCode != 200 || !bytes.Equal(body1, body2) || resp2.Header.Get("Etag") != etag {
		t.Fatal("replayed plan differs from first encoding")
	}
	// A textual alias of the same request decodes to the same canonical
	// key and shares the cache entry.
	resp3, body3 := do(`{"budget_km":3.0,"max_pipes":0,"model":"Heuristic-Age"}`, "")
	if resp3.StatusCode != 200 || !bytes.Equal(body1, body3) {
		t.Fatal("aliased request missed the canonical cache entry")
	}
	if got := obs.Default().Counter("serve.plan.cache_hits").Value() - hits0; got < 2 {
		t.Fatalf("plan cache hits advanced %d, want >= 2 (replay + alias)", got)
	}

	resp4, body4 := do(body, etag)
	if resp4.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional plan status %d, want 304", resp4.StatusCode)
	}
	if len(body4) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(body4))
	}
	if resp4.Header.Get("Etag") != etag {
		t.Fatalf("304 ETag %q, want %q", resp4.Header.Get("Etag"), etag)
	}

	// A different budget is a different plan: fresh entry, fresh tag.
	resp5, body5 := do(`{"model":"Heuristic-Age","budget_km":1}`, "")
	if resp5.StatusCode != 200 || bytes.Equal(body1, body5) {
		t.Fatal("different budget served the cached plan")
	}
}

// TestPlanCacheHitZeroAlloc is the `make verify` allocation gate for the
// cached plan path: once a plan response is cached, replaying it (body
// read into pooled scratch, fast parse, snapshot load, key build, LRU
// hit, header set, body write) must not allocate — and neither may the
// 304 path. Run outside -race, which instruments allocations.
func TestPlanCacheHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc gate runs without -race: race instrumentation and sync.Pool randomization inflate counts")
	}
	s, ts := newTestServer(t)
	defer ts.Close()
	if _, err := s.get(context.Background(), "Heuristic-Age"); err != nil {
		t.Fatal(err)
	}
	rb := &replayBody{r: bytes.NewReader([]byte(`{"model":"Heuristic-Age","budget_km":10,"max_pipes":25}`))}
	req := httptest.NewRequest("POST", "/api/plan", nil)
	req.Body = rb
	w := &nopWriter{h: make(http.Header)}
	rb.rewind()
	s.handlePlan(w, req) // warm: fill the cache, size the pools
	allocs := testing.AllocsPerRun(500, func() {
		rb.rewind()
		s.handlePlan(w, req)
	})
	if allocs != 0 {
		t.Fatalf("plan cache hit allocated %.1f times per request, want 0", allocs)
	}

	// Recover the entry's ETag through a recorder, then gate the 304 path.
	rec := httptest.NewRecorder()
	rb.rewind()
	s.handlePlan(rec, req)
	etag := rec.Header().Get("Etag")
	if etag == "" {
		t.Fatal("cached plan served no ETag")
	}
	req.Header.Set("If-None-Match", etag)
	allocs = testing.AllocsPerRun(500, func() {
		rb.rewind()
		s.handlePlan(w, req)
	})
	if allocs != 0 {
		t.Fatalf("plan 304 path allocated %.1f times per request, want 0", allocs)
	}
}

// TestQueryParamUndecodableIs400 pins the queryParam fix: a value whose
// percent-encoding fails to decode used to be passed through raw,
// masquerading as ordinary bad input; it is now a 400 naming the decode
// failure on every route that reads query parameters.
func TestQueryParamUndecodableIs400(t *testing.T) {
	_, ts := newTestServer(t)
	for _, u := range []string{
		"/api/models/Heuristic-Age/ranking?top=1%",
		"/api/hotspots?min=2%zz",
		"/api/cohorts?by=%zz",
	} {
		var e map[string]any
		code := getJSON(t, ts.URL+u, &e)
		if code != 400 {
			t.Errorf("%s: status %d, want 400", u, code)
			continue
		}
		if msg, _ := e["error"].(string); !strings.Contains(msg, "undecodable") {
			t.Errorf("%s: error %q does not name the decode failure", u, msg)
		}
	}
}
