package baseline

import (
	"testing"

	"repro/internal/feature"
	"repro/internal/stats"
)

// xorSet builds a 2-feature XOR-ish dataset that no linear model can
// separate but a depth-2 tree can.
func xorSet(seed int64, n int) *feature.Set {
	rng := stats.NewRNG(seed)
	s := &feature.Set{Names: []string{"a", "b"}}
	for i := 0; i < n; i++ {
		a, b := rng.Norm(), rng.Norm()
		pos := (a > 0) != (b > 0)
		// 10% label noise keeps leaves impure.
		if rng.Bernoulli(0.1) {
			pos = !pos
		}
		s.X = append(s.X, []float64{a, b})
		s.Label = append(s.Label, pos)
		s.Age = append(s.Age, 1)
		s.LengthM = append(s.LengthM, 1)
		s.PipeIdx = append(s.PipeIdx, i)
		s.Year = append(s.Year, 2000)
	}
	return s
}

func allRows(s *feature.Set) []int {
	rows := make([]int, s.Len())
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestCartTreeLearnsXOR(t *testing.T) {
	train := xorSet(1, 2000)
	test := xorSet(2, 800)
	tree := fitTree(train, allRows(train), TreeConfig{MaxDepth: 4, MinLeaf: 10}, nil)
	scores := make([]float64, test.Len())
	for i, row := range test.X {
		scores[i] = tree.predict(row)
	}
	if a := testAUC(scores, test.Label); a < 0.85 {
		t.Fatalf("tree XOR AUC = %v", a)
	}
	if d := tree.depth(); d < 2 || d > 4 {
		t.Fatalf("tree depth %d, want 2..4", d)
	}
}

func TestCartTreeRespectsLimits(t *testing.T) {
	train := xorSet(3, 500)
	// MaxDepth 0 is replaced by the default; use 1 for a stump.
	stump := fitTree(train, allRows(train), TreeConfig{MaxDepth: 1, MinLeaf: 10}, nil)
	if d := stump.depth(); d > 1 {
		t.Fatalf("stump depth %d", d)
	}
	// MinLeaf larger than half the data forbids any split.
	leafOnly := fitTree(train, allRows(train), TreeConfig{MaxDepth: 5, MinLeaf: 400}, nil)
	if d := leafOnly.depth(); d != 0 {
		t.Fatalf("leaf-only depth %d", d)
	}
	// Root probability equals the positive fraction.
	want := posFraction(train, allRows(train))
	if got := leafOnly.nodes[0].prob; got != want {
		t.Fatalf("root prob %v, want %v", got, want)
	}
}

func TestCartTreePureLeafStopsEarly(t *testing.T) {
	s := &feature.Set{Names: []string{"x"}}
	for i := 0; i < 100; i++ {
		s.X = append(s.X, []float64{float64(i)})
		s.Label = append(s.Label, true) // single class
		s.Age = append(s.Age, 1)
		s.LengthM = append(s.LengthM, 1)
		s.PipeIdx = append(s.PipeIdx, i)
		s.Year = append(s.Year, 2000)
	}
	tree := fitTree(s, allRows(s), TreeConfig{MaxDepth: 5, MinLeaf: 5}, nil)
	if tree.depth() != 0 {
		t.Fatal("pure node must not split")
	}
	if tree.predict([]float64{50}) != 1 {
		t.Fatal("pure positive leaf must predict 1")
	}
}

func TestRandomForestLearnsXOR(t *testing.T) {
	train := xorSet(5, 2000)
	test := xorSet(6, 800)
	m := NewRandomForest(ForestConfig{Seed: 7, Trees: 30})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 30 {
		t.Fatalf("trees = %d", m.NumTrees())
	}
	scores, err := m.Scores(test)
	if err != nil {
		t.Fatal(err)
	}
	if a := testAUC(scores, test.Label); a < 0.85 {
		t.Fatalf("forest XOR AUC = %v (a linear model would be ~0.5)", a)
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of [0,1]", s)
		}
	}
}

func TestRandomForestOnPipeData(t *testing.T) {
	train, test := sets(t)
	m := NewRandomForest(ForestConfig{Seed: 11, Trees: 25})
	if a := auc(t, m, train, test); a < 0.6 {
		t.Fatalf("forest pipe AUC = %v", a)
	}
}

func TestRandomForestDeterminism(t *testing.T) {
	train := xorSet(8, 600)
	m1 := NewRandomForest(ForestConfig{Seed: 9, Trees: 10})
	m2 := NewRandomForest(ForestConfig{Seed: 9, Trees: 10})
	if err := m1.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(train); err != nil {
		t.Fatal(err)
	}
	s1, err := m1.Scores(train)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Scores(train)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("forest not deterministic")
		}
	}
}

func TestRandomForestErrors(t *testing.T) {
	m := NewRandomForest(ForestConfig{Seed: 1})
	if err := m.Fit(nil); err == nil {
		t.Fatal("nil train must error")
	}
	if _, err := m.Scores(&feature.Set{}); err == nil {
		t.Fatal("unfitted Scores must error")
	}
	oneClass := xorSet(10, 50)
	for i := range oneClass.Label {
		oneClass.Label[i] = false
	}
	if err := m.Fit(oneClass); err == nil {
		t.Fatal("single-class train must error")
	}
}
