package dataset

import (
	"fmt"
	"sort"
)

// Network is a region's pipe registry plus its observed failure log.
// The zero value is unusable; construct with NewNetwork or the CSV loaders.
type Network struct {
	// Region names the network (e.g. "A", "B", "C").
	Region string
	// ObservedFrom and ObservedTo bound (inclusively) the calendar years in
	// which failures were recorded. Events outside this window are rejected
	// by Validate.
	ObservedFrom, ObservedTo int

	pipes    []Pipe
	failures []Failure

	byID       map[string]int
	failByPipe map[string][]int // indices into failures, sorted by (Year, Day)
}

// NewNetwork builds a Network and its indices. It copies neither slice, so
// callers must not mutate them afterwards. Use Validate to check integrity.
func NewNetwork(region string, observedFrom, observedTo int, pipes []Pipe, failures []Failure) *Network {
	n := &Network{
		Region:       region,
		ObservedFrom: observedFrom,
		ObservedTo:   observedTo,
		pipes:        pipes,
		failures:     failures,
	}
	n.reindex()
	return n
}

func (n *Network) reindex() {
	n.byID = make(map[string]int, len(n.pipes))
	for i := range n.pipes {
		n.byID[n.pipes[i].ID] = i
	}
	sort.SliceStable(n.failures, func(a, b int) bool {
		fa, fb := &n.failures[a], &n.failures[b]
		if fa.Year != fb.Year {
			return fa.Year < fb.Year
		}
		if fa.Day != fb.Day {
			return fa.Day < fb.Day
		}
		return fa.PipeID < fb.PipeID
	})
	n.failByPipe = make(map[string][]int)
	for i := range n.failures {
		id := n.failures[i].PipeID
		n.failByPipe[id] = append(n.failByPipe[id], i)
	}
}

// Pipes returns the pipe slice. Callers must treat it as read-only.
func (n *Network) Pipes() []Pipe { return n.pipes }

// Failures returns the failure log sorted by (Year, Day, PipeID).
// Callers must treat it as read-only.
func (n *Network) Failures() []Failure { return n.failures }

// NumPipes returns the number of pipes.
func (n *Network) NumPipes() int { return len(n.pipes) }

// NumFailures returns the number of recorded failures.
func (n *Network) NumFailures() int { return len(n.failures) }

// PipeByID returns the pipe with the given asset ID.
func (n *Network) PipeByID(id string) (*Pipe, bool) {
	i, ok := n.byID[id]
	if !ok {
		return nil, false
	}
	return &n.pipes[i], true
}

// PipeIndex returns the position of the pipe with the given ID in Pipes(),
// or -1 when absent.
func (n *Network) PipeIndex(id string) int {
	i, ok := n.byID[id]
	if !ok {
		return -1
	}
	return i
}

// FailuresOf returns the failures recorded against the pipe, in time order.
func (n *Network) FailuresOf(pipeID string) []Failure {
	idx := n.failByPipe[pipeID]
	out := make([]Failure, len(idx))
	for i, j := range idx {
		out[i] = n.failures[j]
	}
	return out
}

// FailureCount returns how many failures the pipe had in calendar years
// [from, to] (inclusive).
func (n *Network) FailureCount(pipeID string, from, to int) int {
	c := 0
	for _, j := range n.failByPipe[pipeID] {
		y := n.failures[j].Year
		if y >= from && y <= to {
			c++
		}
	}
	return c
}

// FailedInYear reports whether the pipe had at least one failure in year.
func (n *Network) FailedInYear(pipeID string, year int) bool {
	for _, j := range n.failByPipe[pipeID] {
		if n.failures[j].Year == year {
			return true
		}
	}
	return false
}

// FailuresInYears returns all failures with Year in [from, to].
func (n *Network) FailuresInYears(from, to int) []Failure {
	var out []Failure
	for i := range n.failures {
		if y := n.failures[i].Year; y >= from && y <= to {
			out = append(out, n.failures[i])
		}
	}
	return out
}

// SubsetByClass returns a new Network containing only pipes of the given
// class and the failures recorded against them.
func (n *Network) SubsetByClass(class PipeClass) *Network {
	keep := make(map[string]bool)
	var pipes []Pipe
	for i := range n.pipes {
		if n.pipes[i].Class == class {
			pipes = append(pipes, n.pipes[i])
			keep[n.pipes[i].ID] = true
		}
	}
	var fails []Failure
	for i := range n.failures {
		if keep[n.failures[i].PipeID] {
			fails = append(fails, n.failures[i])
		}
	}
	return NewNetwork(n.Region, n.ObservedFrom, n.ObservedTo, pipes, fails)
}

// SubsetPipes returns a new Network restricted to the pipes whose index in
// Pipes() appears in idx (failures filtered accordingly).
func (n *Network) SubsetPipes(idx []int) (*Network, error) {
	keep := make(map[string]bool, len(idx))
	pipes := make([]Pipe, 0, len(idx))
	for _, i := range idx {
		if i < 0 || i >= len(n.pipes) {
			return nil, fmt.Errorf("dataset: subset index %d out of range [0,%d)", i, len(n.pipes))
		}
		pipes = append(pipes, n.pipes[i])
		keep[n.pipes[i].ID] = true
	}
	var fails []Failure
	for i := range n.failures {
		if keep[n.failures[i].PipeID] {
			fails = append(fails, n.failures[i])
		}
	}
	return NewNetwork(n.Region, n.ObservedFrom, n.ObservedTo, pipes, fails), nil
}

// TotalLengthM returns the summed length of all pipes in metres.
func (n *Network) TotalLengthM() float64 {
	s := 0.0
	for i := range n.pipes {
		s += n.pipes[i].LengthM
	}
	return s
}

// LaidYearRange returns the earliest and latest laid years in the registry.
// It returns (0, 0) for an empty network.
func (n *Network) LaidYearRange() (min, max int) {
	if len(n.pipes) == 0 {
		return 0, 0
	}
	min, max = n.pipes[0].LaidYear, n.pipes[0].LaidYear
	for i := range n.pipes {
		y := n.pipes[i].LaidYear
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	return min, max
}

// Summary is one row of the dataset-summary table (paper Table 1 analogue).
type Summary struct {
	Region       string
	Scope        string // "All" or a PipeClass string
	NumPipes     int
	NumFailures  int
	LaidFrom     int
	LaidTo       int
	ObservedFrom int
	ObservedTo   int
	TotalKM      float64
}

// Summarize produces summary rows for the whole network and for each pipe
// class present, in a stable order (All, CWM, RWM).
func (n *Network) Summarize() []Summary {
	rows := []Summary{n.summaryRow("All", n)}
	for _, class := range []PipeClass{CriticalMain, ReticulationMain} {
		sub := n.SubsetByClass(class)
		if sub.NumPipes() > 0 {
			rows = append(rows, n.summaryRow(class.String(), sub))
		}
	}
	return rows
}

func (n *Network) summaryRow(scope string, sub *Network) Summary {
	laidFrom, laidTo := sub.LaidYearRange()
	return Summary{
		Region:       n.Region,
		Scope:        scope,
		NumPipes:     sub.NumPipes(),
		NumFailures:  sub.NumFailures(),
		LaidFrom:     laidFrom,
		LaidTo:       laidTo,
		ObservedFrom: n.ObservedFrom,
		ObservedTo:   n.ObservedTo,
		TotalKM:      sub.TotalLengthM() / 1000,
	}
}

// AnnualFailureRate returns the mean fraction of pipes failing per observed
// year, the quantity the early age-rate models regress on.
func (n *Network) AnnualFailureRate() float64 {
	years := n.ObservedTo - n.ObservedFrom + 1
	if years <= 0 || len(n.pipes) == 0 {
		return 0
	}
	return float64(len(n.failures)) / float64(years) / float64(len(n.pipes))
}
