// Command pipeserve runs the HTTP risk service over a network: rankings,
// per-pipe risk lookups, and budget-constrained inspection plans as JSON.
//
// Usage:
//
//	pipeserve -data data/regionA -addr :8080
//	pipeserve -region B -scale 0.25 -addr :8080     # synthetic network
//
// -data accepts any dataset layout the loader sniffs: a CSV directory, a
// columnar directory (dataset.col), or a bare .col file.
//
// Endpoints:
//
//	GET  /healthz   (liveness: 200 while the process runs)
//	GET  /readyz    (readiness: 503 once shutdown begins)
//	GET  /api/network
//	GET  /api/models
//	POST /api/models/{name}/train
//	GET  /api/models/{name}/ranking?top=N
//	GET  /api/pipes/{id}
//	POST /api/plan  {"model": "...", "budget_km": 10}
//	GET  /metrics   (JSON metrics snapshot; disable with -metrics=false)
//
// Ranking, cohort and hotspot responses are served from an in-memory
// encoded-response cache (size via -cache-mb) with strong ETags;
// clients sending If-None-Match get 304 Not-Modified.
//
// Resilience: SIGINT/SIGTERM triggers a graceful shutdown — readiness
// flips to 503, in-flight training is cancelled, open connections drain
// (bounded by -drain-timeout) and the process exits 0. -max-inflight
// sheds requests past a concurrency cap with 503 + Retry-After;
// -request-timeout bounds each API request. With -state-dir, trained
// linear models persist across restarts and are served warm on boot
// (see DESIGN.md, "Failure modes & resilience").
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code: a clean signal-initiated shutdown is
// 0, anything else is 1. Deferred cleanup still runs on every path,
// which a bare os.Exit in main would skip.
func run() int {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pipeserve: ")

	data := flag.String("data", "", "dataset path: CSV directory, columnar directory or .col file")
	region := flag.String("region", "A", "synthetic region preset when -data is unset")
	seed := flag.Int64("seed", 1, "generator / learner seed")
	scale := flag.Float64("scale", 0.25, "synthetic region scale")
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	metrics := flag.Bool("metrics", true, "expose the GET /metrics observability endpoint")
	cacheMB := flag.Int64("cache-mb", serve.DefaultCacheBytes>>20, "response cache budget in MiB (encoded ranking/cohort/hotspot bodies)")
	stateDir := flag.String("state-dir", "", "persist trained linear models here for warm restarts (empty = off)")
	maxInflight := flag.Int64("max-inflight", 0, "shed API requests past this many in flight with 503 (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline on API routes, e.g. 30s (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for open connections to finish")
	flag.Parse()
	if *cacheMB < 1 {
		log.Printf("-cache-mb must be >= 1, got %d", *cacheMB)
		return 1
	}

	var network *pipefail.Network
	var err error
	if *data != "" {
		network, err = pipefail.LoadNetwork(*data)
	} else {
		network, err = pipefail.GenerateRegion(*region, *seed, *scale)
	}
	if err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("serving region %s: %d pipes, %d failures", network.Region, network.NumPipes(), network.NumFailures())

	s, err := serve.New(network, log.Default(), pipefail.WithSeed(*seed))
	if err != nil {
		log.Print(err)
		return 1
	}
	if *cacheMB<<20 != serve.DefaultCacheBytes {
		s.SetResponseCacheBytes(*cacheMB << 20)
	}
	s.SetMaxInflight(*maxInflight)
	s.SetRequestTimeout(*requestTimeout)
	if err := s.SetStateDir(*stateDir); err != nil {
		log.Print(err)
		return 1
	}
	handler := s.Handler()
	if !*metrics {
		handler = withoutMetrics(handler)
	}
	// Listen explicitly (instead of ListenAndServe) so :0 resolves to a
	// real port before the "listening on" line — the e2e test and local
	// scripting both scrape the bound address from it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	srv := &http.Server{
		Handler: handler,
		// Header/body read, write and idle bounds: a stalled or
		// malicious peer cannot pin a connection (and its goroutine)
		// forever. WriteTimeout is generous because POST .../train
		// responses wait on a cold training run.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM → graceful shutdown. The signal context flips once;
	// a second signal kills the process the default way (signal.Stop in
	// NotifyContext's cancel restores default handling after the first).
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("listening on %s", ln.Addr())

	select {
	case err := <-serveErr:
		// Serve only returns on listener failure here (Shutdown below is
		// the ErrServerClosed path, which this select's other arm owns).
		log.Printf("serve: %v", err)
		return 1
	case <-sigCtx.Done():
	}

	log.Printf("shutdown: signal received, draining (timeout %s)", *drainTimeout)
	s.BeginShutdown() // readiness 503, shed new work, cancel in-flight training
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: drain incomplete: %v", err)
		code = 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
		code = 1
	}
	log.Printf("shutdown: complete")
	return code
}

// withoutMetrics hides GET /metrics when the flag disables it.
func withoutMetrics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			http.NotFound(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}
