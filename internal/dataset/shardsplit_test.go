package dataset

import (
	"fmt"
	"strings"
	"testing"
)

func TestDistrictOf(t *testing.T) {
	cases := []struct {
		id       string
		district string
		ok       bool
	}{
		{"METRO-D007-0001234", "D007", true},
		{"A-D0-0", "D0", true},
		{"a-b-c-D12-99", "D12", true}, // hyphenated region
		{"METRO-D007-", "", false},    // empty sequence
		{"METRO-D007-12x4", "", false},
		{"METRO-007-1234", "", false}, // district missing the D
		{"METRO-D-1234", "", false},   // D with no digits
		{"METRO-Dx7-1234", "", false},
		{"D007-1234", "", false}, // no region part
		{"-D007-1234", "", false},
		{"P123", "", false},
		{"", "", false},
	}
	for _, tc := range cases {
		d, ok := DistrictOf(tc.id)
		if d != tc.district || ok != tc.ok {
			t.Errorf("DistrictOf(%q) = %q, %v; want %q, %v", tc.id, d, ok, tc.district, tc.ok)
		}
	}
}

// districtNetwork builds a network whose pipes live in contiguous
// district blocks with the given per-district pipe counts, plus one
// failure on the first pipe of every district.
func districtNetwork(t *testing.T, counts []int) *Network {
	t.Helper()
	var pipes []Pipe
	var fails []Failure
	seq := 0
	for d, n := range counts {
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("R-D%03d-%07d", d, seq)
			pipes = append(pipes, Pipe{
				ID: id, Class: ReticulationMain, Material: CICL, Coating: CoatingNone,
				DiameterMM: 100, LengthM: 10, LaidYear: 1960, Segments: 1,
			})
			if i == 0 {
				fails = append(fails, Failure{PipeID: id, Segment: 0, Year: 2005, Day: 1, Mode: ModeBreak})
			}
			seq++
		}
	}
	return NewNetwork("R", 2000, 2009, pipes, fails)
}

func TestSplitDistrictsPartitions(t *testing.T) {
	n := districtNetwork(t, []int{40, 10, 10, 30, 5, 5})
	shards, err := SplitDistricts(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}

	// Region names, conservation, ordering and district contiguity.
	var gotPipes, gotFails int
	var allIDs []string
	seenDistrict := map[string]int{}
	for i, sh := range shards {
		wantName := fmt.Sprintf("R/s%02d", i+1)
		if sh.Region != wantName {
			t.Errorf("shard %d region %q, want %q", i, sh.Region, wantName)
		}
		if sh.ObservedFrom != n.ObservedFrom || sh.ObservedTo != n.ObservedTo {
			t.Errorf("shard %d window [%d,%d], want [%d,%d]",
				i, sh.ObservedFrom, sh.ObservedTo, n.ObservedFrom, n.ObservedTo)
		}
		if sh.NumPipes() == 0 {
			t.Errorf("shard %d is empty", i)
		}
		gotPipes += sh.NumPipes()
		gotFails += sh.NumFailures()
		districts := map[string]bool{}
		for _, p := range sh.Pipes() {
			allIDs = append(allIDs, p.ID)
			d, _ := DistrictOf(p.ID)
			districts[d] = true
		}
		for d := range districts {
			if prev, dup := seenDistrict[d]; dup {
				t.Errorf("district %s split across shards %d and %d", d, prev, i)
			}
			seenDistrict[d] = i
		}
		// Every failure must reference a pipe this shard owns.
		for _, f := range sh.Failures() {
			if d, _ := DistrictOf(f.PipeID); seenDistrict[d] != i {
				t.Errorf("shard %d holds failure for foreign pipe %s", i, f.PipeID)
			}
		}
	}
	if gotPipes != n.NumPipes() || gotFails != n.NumFailures() {
		t.Fatalf("conservation: %d pipes / %d failures across shards, want %d / %d",
			gotPipes, gotFails, n.NumPipes(), n.NumFailures())
	}
	// Concatenating the shards in order must reproduce the original
	// pipe sequence exactly (contiguous-district grouping).
	for i, p := range n.Pipes() {
		if allIDs[i] != p.ID {
			t.Fatalf("pipe %d: concatenated order %s, original %s", i, allIDs[i], p.ID)
		}
	}
}

func TestSplitDistrictsBalance(t *testing.T) {
	// 12 equal districts into 4 shards: a balanced split is exactly 3
	// districts (75 pipes) each.
	counts := make([]int, 12)
	for i := range counts {
		counts[i] = 25
	}
	shards, err := SplitDistricts(districtNetwork(t, counts), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shards {
		if sh.NumPipes() != 75 {
			t.Errorf("shard %d has %d pipes, want 75", i, sh.NumPipes())
		}
	}
}

func TestSplitDistrictsErrors(t *testing.T) {
	n := districtNetwork(t, []int{5, 5})
	if _, err := SplitDistricts(n, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := SplitDistricts(n, 3); err == nil || !strings.Contains(err.Error(), "only 2 districts") {
		t.Errorf("k > districts: err %v", err)
	}

	plain := NewNetwork("P", 2000, 2009, []Pipe{{
		ID: "P123", Class: ReticulationMain, Material: CICL, Coating: CoatingNone,
		DiameterMM: 100, LengthM: 10, LaidYear: 1960, Segments: 1,
	}}, nil)
	if _, err := SplitDistricts(plain, 2); err == nil || !strings.Contains(err.Error(), "no district-structured ID") {
		t.Errorf("non-district IDs: err %v", err)
	}
}
