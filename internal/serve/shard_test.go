package serve

// Multi-region registry tests: construction invariants (duplicate
// region names fail fast), ?region= routing, the /api/regions admin
// view, and the sheddable-route list that keeps every bulk and
// shard-admin endpoint behind the shed/timeout/drain middleware.

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// newMultiTestServer builds a two-shard server (regions "A" and "B")
// over small synthetic networks.
func newMultiTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	netA, err := pipefail.GenerateRegion("A", 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	netB, err := pipefail.GenerateRegion("B", 6, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewMulti([]*pipefail.Network{netA, netB}, log.New(io.Discard, "", 0), pipefail.WithESGenerations(8))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestNewMultiRejectsDuplicateRegions(t *testing.T) {
	netA1, err := pipefail.GenerateRegion("A", 5, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	netA2, err := pipefail.GenerateRegion("A", 6, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewMulti([]*pipefail.Network{netA1, netA2}, log.New(io.Discard, "", 0))
	if err == nil {
		t.Fatal("duplicate regions accepted")
	}
	if !strings.Contains(err.Error(), `duplicate region "A"`) {
		t.Fatalf("error %q does not name the duplicate region", err)
	}
	if !strings.Contains(err.Error(), "inputs 1 and 2") {
		t.Fatalf("error %q does not name the colliding inputs", err)
	}
}

func TestRegionQueryRouting(t *testing.T) {
	s, ts := newMultiTestServer(t)

	// Without ?region= the default (first) shard answers — the
	// pre-shard contract.
	var def map[string]any
	if code := getJSON(t, ts.URL+"/api/network", &def); code != 200 {
		t.Fatalf("network status %d", code)
	}
	if def["region"] != "A" {
		t.Fatalf("default shard region %v, want A", def["region"])
	}
	regions, ok := def["regions"].([]any)
	if !ok || len(regions) != 2 {
		t.Fatalf("multi-shard /api/network regions %v", def["regions"])
	}

	var other map[string]any
	if code := getJSON(t, ts.URL+"/api/network?region=B", &other); code != 200 {
		t.Fatalf("network?region=B status %d", code)
	}
	if other["region"] != "B" {
		t.Fatalf("region=B answered by %v", other["region"])
	}

	var errResp map[string]string
	if code := getJSON(t, ts.URL+"/api/network?region=Z", &errResp); code != 400 {
		t.Fatalf("unknown region status %d, want 400", code)
	}
	if !strings.Contains(errResp["error"], `unknown region "Z"`) {
		t.Fatalf("unknown region error %q", errResp["error"])
	}

	// Training is shard-scoped: training on B must not publish on A.
	if code := postJSON(t, ts.URL+"/api/models/Heuristic-Age/train?region=B", nil, nil); code != 200 {
		t.Fatalf("train on B status %d", code)
	}
	if n := len(*s.byRegion["B"].models.Load()); n != 1 {
		t.Fatalf("shard B has %d trained models, want 1", n)
	}
	if n := len(*s.def.models.Load()); n != 0 {
		t.Fatalf("shard A has %d trained models, want 0", n)
	}
}

func TestRegionsEndpoint(t *testing.T) {
	s, ts := newMultiTestServer(t)
	if _, err := s.getShard(context.Background(), s.byRegion["B"], "Heuristic-Age"); err != nil {
		t.Fatal(err)
	}
	var rows []regionStatus
	if code := getJSON(t, ts.URL+"/api/regions", &rows); code != 200 {
		t.Fatalf("regions status %d", code)
	}
	if len(rows) != 2 || rows[0].Region != "A" || rows[1].Region != "B" {
		t.Fatalf("regions rows %+v, want A then B in fan-out order", rows)
	}
	if rows[0].Pipes != s.def.net.NumPipes() || rows[1].Pipes != s.byRegion["B"].net.NumPipes() {
		t.Fatalf("pipe counts %d/%d", rows[0].Pipes, rows[1].Pipes)
	}
	if rows[0].ModelsTrained != 0 || rows[1].ModelsTrained != 1 {
		t.Fatalf("models_trained %d/%d, want 0/1", rows[0].ModelsTrained, rows[1].ModelsTrained)
	}
	for i := range rows {
		if rows[i].NetworkKM <= 0 || rows[i].Failures <= 0 {
			t.Fatalf("row %d has empty network: %+v", i, rows[i])
		}
	}
}

// TestSheddableRouteList locks the invariant that every route except
// the liveness/readiness probes runs behind the shed/timeout/drain
// middleware — including the bulk streaming and shard-admin endpoints
// added with the multi-region registry.
func TestSheddableRouteList(t *testing.T) {
	s, _ := newTestServer(t)
	want := map[string]bool{
		"GET /healthz":                   false,
		"GET /readyz":                    false,
		"GET /api/network":               true,
		"GET /api/regions":               true,
		"GET /api/models":                true,
		"POST /api/models/{name}/train":  true,
		"GET /api/models/{name}/ranking": true,
		"GET /api/pipes/{id}":            true,
		"GET /api/cohorts":               true,
		"GET /api/hotspots":              true,
		"POST /api/plan":                 true,
		"POST /api/bulk/rank":            true,
		"POST /api/bulk/plan":            true,
		"POST /api/events":               true,
		"GET /metrics":                   true,
	}
	if len(s.routes) != len(want) {
		t.Fatalf("route count %d, want %d — new routes must be classified here", len(s.routes), len(want))
	}
	for _, rt := range s.routes {
		sheddable, known := want[rt.pattern]
		if !known {
			t.Errorf("unexpected route %q — classify it as sheddable or probe", rt.pattern)
			continue
		}
		if rt.sheddable != sheddable {
			t.Errorf("route %q sheddable=%v, want %v", rt.pattern, rt.sheddable, sheddable)
		}
	}
}

// TestBulkRoutesDrainWithProbeExemption checks the behavior behind the
// list: once draining, bulk requests shed with 503 + Retry-After while
// the probes still answer.
func TestBulkRoutesDrainWithProbeExemption(t *testing.T) {
	s, ts := newMultiTestServer(t)
	s.BeginShutdown()

	resp, err := http.Post(ts.URL+"/api/bulk/rank", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining bulk status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining bulk response missing Retry-After")
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz during drain %d, want 200", code)
	}
}

// TestBulkCountsAgainstInflightCap parks a bulk request inside training
// and verifies it occupies an inflight slot (so -max-inflight covers
// the bulk endpoints), then that the probes bypass the cap.
func TestBulkCountsAgainstInflightCap(t *testing.T) {
	s, ts := newMultiTestServer(t)
	release := make(chan struct{})
	s.trainFn = func(ctx context.Context, sh *shard, name string) (*modelSnapshot, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, errors.New("parked trainer")
	}
	s.SetMaxInflight(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/api/bulk/rank", "application/json", strings.NewReader(`{}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return s.inflightReqs.Load() >= 1 })

	resp, err := http.Post(ts.URL+"/api/bulk/rank", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap bulk status %d, want 503", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz over cap %d, want 200", code)
	}
	close(release) // unpark the trainers so the first request finishes
	<-done
}
