package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestSumKahan(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms.
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1e-16)
	}
	got := Sum(xs)
	want := 1 + 1e-12
	if !almostEqual(got, want, 1e-15) {
		t.Fatalf("Sum = %.18f, want %.18f", got, want)
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator = 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of single element must be 0")
	}
	if Variance(nil) != 0 {
		t.Fatal("Variance of empty must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 {
		t.Fatalf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Fatalf("Max = %v", Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestQuantileEndpointsAndMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 {
		t.Fatal("q0 must be min")
	}
	if Quantile(xs, 1) != 5 {
		t.Fatal("q1 must be max")
	}
	if Median(xs) != 3 {
		t.Fatal("median of 1..5 must be 3")
	}
	// Even-length interpolation.
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(q=2) did not panic")
		}
	}()
	Quantile([]float64{1}, 2)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary must be zero")
	}
	if s.String() == "" {
		t.Fatal("String must be non-empty")
	}
}

func TestPearsonPerfectAndAnti(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	zs := []float64{8, 6, 4, 2}
	if got := Pearson(xs, zs); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	if Pearson(xs, []float64{1, 1, 1, 1}) != 0 {
		t.Fatal("Pearson with constant input must be 0")
	}
	if Pearson(xs, xs[:2]) != 0 {
		t.Fatal("Pearson with mismatched lengths must be 0")
	}
}

func TestRanksWithTies(t *testing.T) {
	xs := []float64{10, 20, 20, 30}
	got := Ranks(xs)
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 5, 2, 9}
	ys := []float64{10, 500, 20, 900} // monotone transform of xs
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

// Property: ranks are a permutation-of-averages whose sum equals n(n+1)/2.
func TestRanksSumProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		r := Ranks(xs)
		n := float64(len(xs))
		return almostEqual(Sum(r), n*(n+1)/2, 1e-6*n*n+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile is monotone in q and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		clamp := func(q float64) float64 {
			q = math.Abs(math.Mod(q, 1))
			return q
		}
		a, b := clamp(q1), clamp(q2)
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa <= qb && qa >= Min(xs) && qb <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation invariant.
func TestVarianceTranslationProperty(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.Abs(v) < 1e6 && !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		shift := math.Mod(shiftRaw, 100)
		if math.IsNaN(shift) {
			shift = 0
		}
		shifted := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + shift
		}
		v1, v2 := Variance(xs), Variance(shifted)
		scale := math.Max(1, math.Abs(v1))
		return almostEqual(v1, v2, 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRanksMatchSortOrder(t *testing.T) {
	xs := []float64{0.3, 0.1, 0.9, 0.5}
	r := Ranks(xs)
	type pair struct{ x, rank float64 }
	ps := make([]pair, len(xs))
	for i := range xs {
		ps[i] = pair{xs[i], r[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	for i := 1; i < len(ps); i++ {
		if ps[i].rank <= ps[i-1].rank {
			t.Fatalf("ranks not increasing with value: %+v", ps)
		}
	}
}
